// Command fitcompare runs the paper's full cross-validation pipeline: a
// beam campaign and a fault-injection campaign over the same workloads,
// followed by the FIT comparison of Figures 6-10. It also regenerates the
// static methodology tables (I, II, III) and the Section IV-D counter
// study.
//
// Usage:
//
//	fitcompare -static                  # Tables I-III only (fast)
//	fitcompare -counters                # Section IV-D counter deviations
//	fitcompare [-workloads a,b] [-faults 200] [-hours 2] [-scale tiny] [-workers N]
//	           [-trace trace.jsonl] [-prov] [-metrics-addr 127.0.0.1:9100]
//	           [-checkpoint-every 150000] [-max-checkpoints 64]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"armsefi/internal/bench"
	"armsefi/internal/core/beam"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/fit"
	"armsefi/internal/core/gefin"
	"armsefi/internal/cpu"
	"armsefi/internal/obs"
	"armsefi/internal/report"
	"armsefi/internal/rtl"
	"armsefi/internal/soc"
	"armsefi/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fitcompare:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workloads = flag.String("workloads", "", "comma-separated workloads (default: all 13)")
		faults    = flag.Int("faults", 200, "faults per component for the injection campaign")
		hours     = flag.Float64("hours", 2, "beam hours per workload")
		scaleFlag = flag.String("scale", "tiny", "input scale (tiny|small|paper)")
		seed      = flag.Int64("seed", 1, "seed for both campaigns")
		workers   = flag.Int("workers", 0, "parallel workers; 0 = GOMAXPROCS, 1 = sequential (same result either way)")
		static    = flag.Bool("static", false, "print Tables I-III and exit")
		counters  = flag.Bool("counters", false, "print the Section IV-D counter study and exit")
		jsonOut   = flag.String("json", "", "also write beam+injection results and comparisons as JSON")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
		tracePath = flag.String("trace", "", "stream both campaigns' JSONL lifecycle traces to this file")
		prov      = flag.Bool("prov", false,
			"attach the propagation-provenance probe to both campaigns (results are byte-identical either way)")
		metrics = flag.String("metrics-addr", "", "serve live metrics and pprof on HOST:PORT")
		ckEvery = flag.Uint64("checkpoint-every", soc.DefaultCheckpointEvery,
			"golden-run checkpoint-ladder rung spacing in cycles for both campaigns; 0 disables the ladder (results are bit-identical either way)")
		ckMax = flag.Int("max-checkpoints", soc.DefaultMaxCheckpoints,
			"cap on checkpoint-ladder rungs per workload (spacing grows to fit)")
		confidence = flag.Float64("confidence", 0.95,
			"confidence level for the beam-vs-injection significance verdicts (Poisson vs Wilson interval overlap)")
		prune = flag.Bool("prune", false,
			"pre-filter the injection campaign's fault plan against a liveness replay and skip provably-masked injections (results are byte-identical either way; beam strikes always execute)")
		pruneVerify = flag.Bool("prune-verify", false,
			"shadow mode for the injection campaign: predict AND simulate every injection, failing on any disagreement (implies -prune)")
		dedup = flag.Bool("dedup", false,
			"collapse the injection campaign's plan into equivalence classes and simulate one representative per class (results are byte-identical either way; beam strikes always execute)")
	)
	flag.Parse()

	scale := bench.ScaleTiny
	switch *scaleFlag {
	case "tiny":
	case "small":
		scale = bench.ScaleSmall
	case "paper":
		scale = bench.ScalePaper
	default:
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}

	specs := bench.All()
	if *workloads != "" {
		specs = specs[:0]
		for _, name := range strings.Split(*workloads, ",") {
			s, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown workload %q", name)
			}
			specs = append(specs, s)
		}
	}

	if *static {
		rows, err := MeasureTableI()
		if err != nil {
			return err
		}
		fmt.Println(report.TableI(rows))
		fmt.Println(report.TableII(soc.PresetZynq(), soc.PresetModel()))
		fmt.Println(report.TableIII(bench.All()))
		return nil
	}
	if *counters {
		return runCounterStudy(specs, scale)
	}

	// One observer spans both campaigns: strikes and injections land in the
	// same trace file (distinguished by the record kind) and the same
	// metrics registry.
	ocli, err := obs.SetupCLI(*tracePath, *metrics)
	if err != nil {
		return err
	}
	defer ocli.Close()

	// Beam campaign on the board preset.
	beamCfg := beam.Config{
		Scale: scale, Seed: *seed, BeamHours: *hours, Workers: *workers,
		CheckpointEvery: *ckEvery, MaxCheckpoints: *ckMax, Obs: ocli.Obs,
		Provenance: *prov,
	}
	var beamProg beam.Progress
	var gefinProg gefin.Progress
	if !*quiet {
		// Aggregated single-line printers: workloads run concurrently, so
		// per-workload `\r` lines would interleave. Each engine serialises
		// its events, so the closures need no locks.
		beamProg = func(ev beam.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "\rbeam  %6d/%d strikes | %d workers | %6.1f/s | ETA %-12v",
				ev.CampaignDone, ev.CampaignTotal, ev.Workers, ev.Rate, ev.ETA.Truncate(time.Second))
			if ev.CampaignDone == ev.CampaignTotal {
				fmt.Fprintln(os.Stderr)
			}
		}
		gefinProg = func(ev gefin.ProgressEvent) {
			if ev.CampaignDone%50 != 0 && ev.CampaignDone != ev.CampaignTotal {
				return
			}
			fmt.Fprintf(os.Stderr, "\rgefin %6d/%d injections | %d workers | %6.1f/s | ETA %-12v",
				ev.CampaignDone, ev.CampaignTotal, ev.Workers, ev.Rate, ev.ETA.Truncate(time.Second))
			if ev.CampaignDone == ev.CampaignTotal {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	beamRes, err := beam.Run(beamCfg, specs, beamProg)
	if err != nil {
		return err
	}

	// Injection campaign on the model preset.
	injCfg := gefin.Config{
		Scale: scale, Seed: *seed, FaultsPerComponent: *faults, Workers: *workers,
		CheckpointEvery: *ckEvery, MaxCheckpoints: *ckMax, Obs: ocli.Obs,
		Provenance: *prov, Prune: *prune, PruneVerify: *pruneVerify, Dedup: *dedup,
	}
	injRes, err := gefin.Run(injCfg, specs, gefinProg)
	if err != nil {
		return err
	}
	if err := ocli.Close(); err != nil { // flush the trace before reporting
		return err
	}

	fmt.Println(report.Fig3(beamRes))
	fmt.Println(report.Fig4(injRes))
	if s := injRes.Prune; s != nil {
		fmt.Println(report.PruneSplit(s))
	}
	if s := injRes.Dedup; s != nil {
		fmt.Println(report.DedupSplit(s))
	}

	z := stats.ConfidenceZ(*confidence)
	var injs []fit.Injection
	var comparisons []fit.Comparison
	for i := range injRes.Workloads {
		w := &injRes.Workloads[i]
		injs = append(injs, fit.FromInjection(w, fit.DefaultFITRawPerBit))
		if bw, ok := beamRes.Workload(w.Workload); ok {
			comparisons = append(comparisons, fit.CompareCI(bw, w, fit.DefaultFITRawPerBit, z))
		}
	}
	fmt.Println(report.Fig5(injs))
	fmt.Println(report.FigRatio("Figure 6: SDC FIT comparison (beam vs injection)", comparisons, fault.ClassSDC))
	fmt.Println(report.FigRatio("Figure 7: Application Crash FIT comparison", comparisons, fault.ClassAppCrash))
	fmt.Println(report.FigRatio("Figure 8: System Crash FIT comparison", comparisons, fault.ClassSysCrash))
	fmt.Println(report.Fig9(comparisons))
	fmt.Println(report.Fig10(fit.AggregateComparisons(comparisons)))
	if s := report.Significance(comparisons, *confidence); s != "" {
		fmt.Println(s)
	}
	fmt.Println(report.TableIV(injRes))
	if *jsonOut != "" {
		payload := struct {
			Beam        *beam.Result
			Injection   *gefin.Result
			Comparisons []fit.Comparison
			Aggregate   fit.Aggregate
		}{beamRes, injRes, comparisons, fit.AggregateComparisons(comparisons)}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// MeasureTableI measures the cycles/sec of each abstraction layer on this
// host, reproducing the shape of the paper's Table I.
func MeasureTableI() ([]report.AbstractionRow, error) {
	spec, ok := bench.ByName("crc32")
	if !ok {
		return nil, fmt.Errorf("crc32 workload missing")
	}
	built, err := spec.Build(soc.UserAsmConfig(), bench.ScaleSmall)
	if err != nil {
		return nil, err
	}

	simRate := func(model soc.ModelKind) (float64, error) {
		m, err := soc.NewMachine(soc.PresetModel(), model)
		if err != nil {
			return 0, err
		}
		if err := m.LoadApp(built.Program); err != nil {
			return 0, err
		}
		if err := m.PokeBytes(built.InputAddr, built.Input); err != nil {
			return 0, err
		}
		if err := m.Boot(50_000_000); err != nil {
			return 0, err
		}
		start := time.Now()
		res := m.Run(4_000_000_000)
		return float64(res.Cycles) / time.Since(start).Seconds(), nil
	}

	// Native: the Go reference computation, scored in nominal CPU cycles
	// (one cycle per processed byte-step, matching the simulated inner
	// loop's work).
	data := make([]byte, 8<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}
	start := time.Now()
	sum := nativeCRC32(data)
	nativeRate := float64(len(data)) * 9 / time.Since(start).Seconds()
	_ = sum

	atomicRate, err := simRate(soc.ModelAtomic)
	if err != nil {
		return nil, err
	}
	detailedRate, err := simRate(soc.ModelDetailed)
	if err != nil {
		return nil, err
	}

	// RTL: one gate-network evaluation per cycle.
	alu := rtl.NewALU()
	start = time.Now()
	const evals = 20000
	for i := 0; i < evals; i++ {
		alu.Exec(rtl.ALUOp(i%int(rtl.NumALUOps)), uint32(i), uint32(i*7))
	}
	rtlRate := evals / time.Since(start).Seconds()

	return []report.AbstractionRow{
		{Layer: "Software (native)", Model: "host Go reference", CyclesPerSec: nativeRate},
		{Layer: "Architecture", Model: "atomic model", CyclesPerSec: atomicRate},
		{Layer: "Microarchitecture", Model: "detailed out-of-order model", CyclesPerSec: detailedRate},
		{Layer: "RTL", Model: "gate-level ALU network", CyclesPerSec: rtlRate},
	}, nil
}

// nativeCRC32 is the host-speed reference for the Table I native row.
func nativeCRC32(data []byte) uint32 {
	var tab [256]uint32
	for i := range tab {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xEDB88320 ^ c>>1
			} else {
				c >>= 1
			}
		}
		tab[i] = c
	}
	crc := ^uint32(0)
	for _, b := range data {
		crc = crc>>8 ^ tab[(crc^uint32(b))&0xFF]
	}
	return ^crc
}

// runCounterStudy reproduces Section IV-D: run each workload on both
// platform presets and report per-counter deviations.
func runCounterStudy(specs []bench.Spec, scale bench.Scale) error {
	within := 0
	total := 0
	for _, spec := range specs {
		built, err := spec.Build(soc.UserAsmConfig(), scale)
		if err != nil {
			return err
		}
		zm, err := runOn(soc.PresetZynq(), built)
		if err != nil {
			return err
		}
		mm, err := runOn(soc.PresetModel(), built)
		if err != nil {
			return err
		}
		fmt.Println(report.CounterDeviation(spec.Name, zm, mm))
		for _, name := range cpu.CounterNames {
			zv, _ := zm.Value(name)
			mv, _ := mm.Value(name)
			total++
			if zv == 0 && mv == 0 {
				within++
				continue
			}
			if zv != 0 {
				dev := (float64(mv) - float64(zv)) / float64(zv)
				if dev < 0.10 && dev > -0.10 {
					within++
				}
			}
		}
	}
	fmt.Printf("%d of %d counters (%.0f%%) deviate by less than 10%% between the two setups\n",
		within, total, 100*float64(within)/float64(total))
	return nil
}

func runOn(preset soc.Config, built *bench.Built) (c cpu.Counters, err error) {
	m, err := soc.NewMachine(preset, soc.ModelDetailed)
	if err != nil {
		return c, err
	}
	if err := m.LoadApp(built.Program); err != nil {
		return c, err
	}
	if len(built.Input) > 0 {
		if err := m.PokeBytes(built.InputAddr, built.Input); err != nil {
			return c, err
		}
	}
	if err := m.Boot(50_000_000); err != nil {
		return c, err
	}
	m.Run(4_000_000_000)
	return m.Core().Counters(), nil
}
