// Command gefin runs microarchitectural statistical fault-injection
// campaigns (the paper's GeFIN-over-gem5 methodology) and prints the
// Figure 4 classification, the Figure 5 FIT conversion, and the Table IV
// error margins.
//
// Usage:
//
//	gefin [-workloads crc32,qsort] [-faults 1000] [-scale tiny]
//	      [-seed 1] [-workers N] [-warm] [-tlb-full] [-model detailed] [-quiet]
//	      [-components l1d,dtlb] [-trace trace.jsonl] [-prov]
//	      [-metrics-addr 127.0.0.1:9100]
//	      [-checkpoint-every 150000] [-max-checkpoints 64]
//	      [-cpuprofile cpu.prof] [-memprofile mem.prof] [-ladder-debug]
//	      [-prune] [-prune-verify] [-dedup] [-dedup-verify] [-exhaustive]
//	      [-remote http://host:8440]
//	      [-target-margin 0.04] [-confidence 0.99] [-stop-shadow]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"armsefi/internal/bench"
	"armsefi/internal/core/ace"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/fit"
	"armsefi/internal/core/gefin"
	"armsefi/internal/obs"
	"armsefi/internal/report"
	"armsefi/internal/serve"
	"armsefi/internal/soc"
)

// writeJSON exports a campaign result when a path is given.
func writeJSON(path string, v any) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gefin:", err)
		os.Exit(1)
	}
}

func selectWorkloads(list string) ([]bench.Spec, error) {
	if list == "" {
		return bench.All(), nil
	}
	var specs []bench.Spec
	for _, name := range strings.Split(list, ",") {
		s, ok := bench.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// runRemote submits the campaign to a campaignd coordinator, waits for
// it to complete, and fetches the assembled Result. By the service's
// determinism contract the Workloads are bit-identical to a local run of
// the same Config and seed, so the reporting path below is unchanged.
func runRemote(base string, cfg gefin.Config, specs []bench.Spec, quiet bool) (*gefin.Result, error) {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	client := &serve.Client{Base: base}
	id, err := client.Submit(serve.SubmitRequest{
		Kind:      serve.KindInjection,
		Injection: &cfg,
		Workloads: names,
	})
	if err != nil {
		return nil, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "submitted campaign %s to %s\n", id, base)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	for {
		st, err := client.Status(id)
		if err != nil {
			return nil, err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "\r%7d/%d injections | %d/%d shards | %s     ",
				st.ItemsDone, st.ItemsTotal, st.ShardsDone, st.ShardsTotal, st.State)
		}
		if st.State == serve.StateComplete {
			if !quiet {
				fmt.Fprintln(os.Stderr)
			}
			break
		}
		if st.State == serve.StateCancelled {
			if !quiet {
				fmt.Fprintln(os.Stderr)
			}
			return nil, fmt.Errorf("campaign %s was cancelled", id)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("interrupted waiting for campaign %s (it keeps running; re-check with -remote later)", id)
		case <-time.After(500 * time.Millisecond):
		}
	}
	return client.InjectionResults(id)
}

func run() error {
	var (
		workloads = flag.String("workloads", "", "comma-separated workload names (default: all 13)")
		faults    = flag.Int("faults", 1000, "faults per component (paper: 1000)")
		scaleFlag = flag.String("scale", "tiny", "input scale (tiny|small|paper)")
		seed      = flag.Int64("seed", 1, "campaign seed")
		workers   = flag.Int("workers", 0, "parallel workers; 0 = GOMAXPROCS, 1 = sequential (same result either way)")
		warm      = flag.Bool("warm", false, "ablation: start injection runs with warm caches")
		tlbFull   = flag.Bool("tlb-full", false, "ablation: inject whole TLB entries incl. virtual tags")
		modelFlag = flag.String("model", "detailed", "CPU model (atomic|detailed)")
		fitRaw    = flag.Float64("fitraw", fit.DefaultFITRawPerBit, "raw FIT per bit for the FIT conversion")
		aceMode   = flag.Bool("ace", false, "also run ACE lifetime analysis and compare AVFs")
		jsonOut   = flag.String("json", "", "also write the raw campaign result as JSON to this file")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
		tracePath = flag.String("trace", "", "stream a per-injection JSONL lifecycle trace to this file")
		prov      = flag.Bool("prov", false,
			"attach the propagation-provenance probe: trace records carry a mechanism verdict and lifecycle event chain (results are byte-identical either way)")
		metrics = flag.String("metrics-addr", "", "serve live metrics and pprof on HOST:PORT")
		ckEvery = flag.Uint64("checkpoint-every", soc.DefaultCheckpointEvery,
			"golden-run checkpoint-ladder rung spacing in cycles; 0 disables the ladder (results are bit-identical either way)")
		ckMax = flag.Int("max-checkpoints", soc.DefaultMaxCheckpoints,
			"cap on checkpoint-ladder rungs per workload (spacing grows to fit)")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile at campaign end to this file")
		ladderDebug = flag.Bool("ladder-debug", false,
			"cross-check every incremental dirty-page convergence check against the exact full-image comparison (slow; panics on disagreement)")
		prune = flag.Bool("prune", false,
			"pre-filter the fault plan against a liveness replay and skip provably-masked injections (results are byte-identical either way)")
		pruneVerify = flag.Bool("prune-verify", false,
			"shadow mode: predict AND simulate every injection, failing the campaign on any disagreement (implies -prune; no speedup)")
		dedup = flag.Bool("dedup", false,
			"collapse planned injections into equivalence classes (same fault site, same quiescent window) and simulate one representative per class (results are byte-identical either way)")
		dedupVerify = flag.Bool("dedup-verify", false,
			"shadow mode: simulate every class member and compare against its representative, failing the campaign on any disagreement (implies -dedup; no speedup)")
		exhaustive = flag.Bool("exhaustive", false,
			"enumerate every (fault site x quiescent window) of the selected components instead of sampling, for a population-exact AVF (local only; use -components to pick liveness-covered targets)")
		components = flag.String("components", "",
			"comma-separated component targets (regfile,l1i,l1d,l2,itlb,dtlb; default: all six)")
		remote = flag.String("remote", "",
			"submit the campaign to a campaignd coordinator at this URL instead of running locally, wait for completion, and report its results")
		targetMargin = flag.Float64("target-margin", 0,
			"sequential early stopping: truncate each component's plan at the first check boundary where every class estimate reaches this confidence-interval half-width (0 disables; the stopped Result is byte-identical to the same plan-order prefix of a full run)")
		confidence = flag.Float64("confidence", 0,
			"confidence level for -target-margin and reported margins (0 = 0.99, the paper's level)")
		stopShadow = flag.Bool("stop-shadow", false,
			"shadow mode: execute the full plan while computing the same sequential cuts and emitting the truncated aggregation (CI cross-checks it byte-for-byte against a genuinely stopped run)")
	)
	flag.Parse()

	specs, err := selectWorkloads(*workloads)
	if err != nil {
		return err
	}
	scale := bench.ScaleTiny
	switch *scaleFlag {
	case "tiny":
	case "small":
		scale = bench.ScaleSmall
	case "paper":
		scale = bench.ScalePaper
	default:
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}
	model := soc.ModelDetailed
	if *modelFlag == "atomic" {
		model = soc.ModelAtomic
	}
	ocli, err := obs.SetupCLI(*tracePath, *metrics)
	if err != nil {
		return err
	}
	defer ocli.Close()
	stopProfiles, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	var comps []fault.Component
	if *components != "" {
		for _, name := range strings.Split(*components, ",") {
			c, ok := fault.ComponentByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown component %q", name)
			}
			comps = append(comps, c)
		}
	}
	cfg := gefin.Config{
		Model:              model,
		Scale:              scale,
		FaultsPerComponent: *faults,
		Components:         comps,
		Seed:               *seed,
		Workers:            *workers,
		WarmCaches:         *warm,
		TLBFullEntry:       *tlbFull,
		CheckpointEvery:    *ckEvery,
		MaxCheckpoints:     *ckMax,
		LadderDebug:        *ladderDebug,
		Obs:                ocli.Obs,
		Provenance:         *prov,
		Prune:              *prune,
		PruneVerify:        *pruneVerify,
		Dedup:              *dedup,
		DedupVerify:        *dedupVerify,
		Exhaustive:         *exhaustive,
		TargetMargin:       *targetMargin,
		Confidence:         *confidence,
		StopShadow:         *stopShadow,
	}
	var progress gefin.Progress
	if !*quiet {
		// Workloads run concurrently, so a per-workload `\r` line would
		// interleave; print one aggregated campaign line instead. The
		// engine serialises progress events, so the closure needs no lock.
		progress = func(ev gefin.ProgressEvent) {
			if ev.CampaignDone%100 != 0 && ev.CampaignDone != ev.CampaignTotal {
				return
			}
			fmt.Fprintf(os.Stderr, "\r%7d/%d injections | %d workers | %7.1f inj/s | ETA %-12v",
				ev.CampaignDone, ev.CampaignTotal, ev.Workers, ev.Rate, ev.ETA.Truncate(time.Second))
			if ev.CampaignDone == ev.CampaignTotal {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	var res *gefin.Result
	if *remote != "" {
		if *exhaustive {
			return fmt.Errorf("-exhaustive runs locally only: the sweep plan is enumerated from each workload's liveness replay, so the campaign service cannot cut shard ranges at submission time")
		}
		res, err = runRemote(*remote, cfg, specs, *quiet)
	} else {
		res, err = gefin.Run(cfg, specs, progress)
	}
	if err != nil {
		return err
	}
	if err := stopProfiles(); err != nil { // profile the campaign, not reporting
		return err
	}
	if err := ocli.Close(); err != nil { // flush the trace before reporting
		return err
	}
	if err := writeJSON(*jsonOut, res); err != nil {
		return err
	}
	fmt.Println(report.Fig4(res))
	if s := res.Prune; s != nil {
		fmt.Println(report.PruneSplit(s))
	}
	if s := res.Dedup; s != nil {
		fmt.Println(report.DedupSplit(s))
	}
	if s := res.Sweep; s != nil {
		fmt.Println(report.SweepTable(s))
	}
	if s := res.Stop; s != nil {
		fmt.Println(report.StopInjection(s))
	}
	injs := make([]fit.Injection, 0, len(res.Workloads))
	for i := range res.Workloads {
		injs = append(injs, fit.FromInjection(&res.Workloads[i], *fitRaw))
	}
	fmt.Println(report.Fig5(injs))
	fmt.Println(report.TableIV(res))
	fmt.Println(report.StrikeContext(res))
	if *aceMode {
		for i := range res.Workloads {
			w := &res.Workloads[i]
			spec, _ := bench.ByName(w.Workload)
			aceRes, err := ace.Run(ace.Config{Scale: scale, Model: model, Obs: ocli.Obs}, spec)
			if err != nil {
				return err
			}
			var rows []report.ACERow
			for _, est := range aceRes.Components {
				if inj, ok := w.Component(est.Comp); ok {
					rows = append(rows, report.ACERow{
						Comp:         est.Comp,
						ACEAVF:       est.AVF,
						InjectionAVF: inj.AVF(),
						Margin:       inj.ErrorMargin(),
					})
				}
			}
			fmt.Println(report.ACEComparison(w.Workload, rows))
		}
	}
	return nil
}
