package main

import (
	"strings"
	"testing"
)

// TestPruneParityWarning pins the no-op note for the gefin-parity
// pre-filter flags: silent when neither flag is set, and present for any
// combination of them. The helper takes no quiet parameter on purpose —
// run() prints whatever it returns unconditionally, so -quiet cannot
// suppress the note.
func TestPruneParityWarning(t *testing.T) {
	if w := pruneParityWarning(false, false); w != "" {
		t.Fatalf("warning without pre-filter flags: %q", w)
	}
	for _, tc := range []struct {
		name               string
		prune, pruneVerify bool
	}{
		{"prune", true, false},
		{"prune-verify", false, true},
		{"both", true, true},
	} {
		w := pruneParityWarning(tc.prune, tc.pruneVerify)
		if w == "" {
			t.Errorf("%s: no warning", tc.name)
			continue
		}
		for _, want := range []string{"-prune", "no effect", "every strike executes"} {
			if !strings.Contains(w, want) {
				t.Errorf("%s: warning %q missing %q", tc.name, w, want)
			}
		}
	}
}
