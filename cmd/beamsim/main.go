// Command beamsim exposes workloads to the simulated neutron beam (the
// LANSCE stand-in) and prints the Figure 3 beam FIT rates, or measures the
// raw per-bit FIT with the Section VI L1 probe.
//
// Usage:
//
//	beamsim [-workloads crc32,qsort] [-hours 4] [-scale tiny] [-seed 1] [-workers N]
//	        [-trace trace.jsonl] [-prov] [-metrics-addr 127.0.0.1:9100]
//	        [-checkpoint-every 150000] [-max-checkpoints 64]
//	        [-cpuprofile cpu.prof] [-memprofile mem.prof] [-ladder-debug]
//	        [-remote http://host:8440]
//	        [-target-margin 0.04] [-confidence 0.99] [-stop-shadow]
//	beamsim -fitraw [-hours 20]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"armsefi/internal/bench"
	"armsefi/internal/core/beam"
	"armsefi/internal/core/fit"
	"armsefi/internal/obs"
	"armsefi/internal/report"
	"armsefi/internal/serve"
	"armsefi/internal/soc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "beamsim:", err)
		os.Exit(1)
	}
}

// runRemote submits the beam campaign to a campaignd coordinator, waits
// for completion, and fetches the assembled Result (bit-identical to a
// local run by the service's determinism contract).
func runRemote(base string, cfg beam.Config, specs []bench.Spec, quiet bool) (*beam.Result, error) {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	client := &serve.Client{Base: base}
	id, err := client.Submit(serve.SubmitRequest{
		Kind:      serve.KindBeam,
		Beam:      &cfg,
		Workloads: names,
	})
	if err != nil {
		return nil, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "submitted campaign %s to %s\n", id, base)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	for {
		st, err := client.Status(id)
		if err != nil {
			return nil, err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "\r%4d/%d chain shards | %s     ", st.ShardsDone, st.ShardsTotal, st.State)
		}
		if st.State == serve.StateComplete {
			if !quiet {
				fmt.Fprintln(os.Stderr)
			}
			break
		}
		if st.State == serve.StateCancelled {
			if !quiet {
				fmt.Fprintln(os.Stderr)
			}
			return nil, fmt.Errorf("campaign %s was cancelled", id)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("interrupted waiting for campaign %s (it keeps running; re-check with -remote later)", id)
		case <-time.After(500 * time.Millisecond):
		}
	}
	return client.BeamResults(id)
}

func run() error {
	var (
		workloads = flag.String("workloads", "", "comma-separated workload names (default: all 13)")
		hours     = flag.Float64("hours", 4, "effective beam hours per workload (paper: ~20)")
		scaleFlag = flag.String("scale", "tiny", "input scale (tiny|small|paper)")
		seed      = flag.Int64("seed", 1, "Monte-Carlo seed")
		workers   = flag.Int("workers", 0, "parallel workers; 0 = GOMAXPROCS, 1 = sequential (same result either way)")
		fitRaw    = flag.Bool("fitraw", false, "run the L1 FIT-raw probe measurement instead")
		jsonOut   = flag.String("json", "", "also write the raw campaign result as JSON to this file")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
		tracePath = flag.String("trace", "", "stream a per-strike JSONL lifecycle trace to this file")
		prov      = flag.Bool("prov", false,
			"attach the propagation-provenance probe: trace records carry a mechanism verdict and lifecycle event chain (results are byte-identical either way)")
		metrics = flag.String("metrics-addr", "", "serve live metrics and pprof on HOST:PORT")
		ckEvery = flag.Uint64("checkpoint-every", soc.DefaultCheckpointEvery,
			"golden-run checkpoint-ladder rung spacing in cycles; the ladder fast-forwards steady-state and reboot runs; 0 disables it (results are bit-identical either way)")
		ckMax = flag.Int("max-checkpoints", soc.DefaultMaxCheckpoints,
			"cap on checkpoint-ladder rungs per workload (spacing grows to fit)")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile at campaign end to this file")
		ladderDebug = flag.Bool("ladder-debug", false,
			"cross-check every incremental dirty-page convergence check against the exact full-image comparison (slow; panics on disagreement)")
		remote = flag.String("remote", "",
			"submit the campaign to a campaignd coordinator at this URL instead of running locally, wait for completion, and report its results")
		// Flag parity with gefin: the flags are accepted so campaign scripts
		// can pass one flag set to both tools, but beam strikes are never
		// pre-filtered. The liveness pre-filter classifies a pre-drawn plan
		// against one golden replay; beam strikes have no such plan — each
		// strike is drawn from the machine's *current* residency mid-run,
		// chains onto the corrupted state of the previous one, and the
		// latent-corruption follow-up execution is itself the measurement.
		prune = flag.Bool("prune", false,
			"accepted for gefin flag parity; live-board strikes are never pre-filtered (see source)")
		pruneVerify = flag.Bool("prune-verify", false,
			"accepted for gefin flag parity; live-board strikes are never pre-filtered (see source)")
		targetMargin = flag.Float64("target-margin", 0,
			"sequential early stopping: cut each component's strike chain at the first check boundary where every class estimate reaches this confidence-interval half-width (0 disables; surviving strikes are re-weighted so FIT rates stay unbiased)")
		confidence = flag.Float64("confidence", 0,
			"confidence level for -target-margin and reported margins (0 = 0.99, the paper's level)")
		stopShadow = flag.Bool("stop-shadow", false,
			"shadow mode: execute every strike while computing the same sequential cuts and emitting the truncated re-weighted result (CI cross-checks it byte-for-byte against a genuinely stopped run)")
	)
	flag.Parse()

	if w := pruneParityWarning(*prune, *pruneVerify); w != "" {
		// Deliberately not gated on -quiet: a campaign script comparing a
		// "pruned" beam arm against an unpruned one is measuring nothing,
		// and that mistake must surface even in scripted quiet runs.
		fmt.Fprintln(os.Stderr, w)
	}
	scale := bench.ScaleTiny
	switch *scaleFlag {
	case "tiny":
	case "small":
		scale = bench.ScaleSmall
	case "paper":
		scale = bench.ScalePaper
	default:
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}
	ocli, err := obs.SetupCLI(*tracePath, *metrics)
	if err != nil {
		return err
	}
	defer ocli.Close()
	stopProfiles, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	cfg := beam.Config{
		Scale: scale, Seed: *seed, BeamHours: *hours, Workers: *workers,
		CheckpointEvery: *ckEvery, MaxCheckpoints: *ckMax,
		LadderDebug: *ladderDebug, Obs: ocli.Obs,
		Provenance:   *prov,
		TargetMargin: *targetMargin, Confidence: *confidence, StopShadow: *stopShadow,
	}
	var progress beam.Progress
	if !*quiet {
		// One aggregated campaign line: per-workload `\r` lines would
		// interleave across concurrent workloads. Events are serialised by
		// the engine, so no lock is needed here.
		progress = func(ev beam.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "\r%6d/%d strikes | %d workers | %6.1f strikes/s | ETA %-12v",
				ev.CampaignDone, ev.CampaignTotal, ev.Workers, ev.Rate, ev.ETA.Truncate(time.Second))
			if ev.CampaignDone == ev.CampaignTotal {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	if *fitRaw {
		measured, res, err := beam.MeasureFITRaw(cfg, progress)
		if err != nil {
			return err
		}
		if err := stopProfiles(); err != nil {
			return err
		}
		fmt.Printf("FIT-raw probe: %d mismatches over fluence %.3g n/cm^2\n",
			res.TotalMismatches, res.Fluence)
		fmt.Printf("measured FIT_raw: %.3g FIT/bit (paper: %.3g; configured cross-section implies %.3g)\n",
			measured, fit.DefaultFITRawPerBit, beam.DefaultBitXS*beam.FluxNYC*beam.FITHours)
		return nil
	}

	var specs []bench.Spec
	if *workloads == "" {
		specs = bench.All()
	} else {
		for _, name := range strings.Split(*workloads, ",") {
			s, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown workload %q", name)
			}
			specs = append(specs, s)
		}
	}
	var res *beam.Result
	if *remote != "" {
		res, err = runRemote(*remote, cfg, specs, *quiet)
	} else {
		res, err = beam.Run(cfg, specs, progress)
	}
	if err != nil {
		return err
	}
	if err := stopProfiles(); err != nil { // profile the campaign, not reporting
		return err
	}
	if err := ocli.Close(); err != nil { // flush the trace before reporting
		return err
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
	}
	fmt.Println(report.Fig3(res))
	if s := res.Stop; s != nil {
		fmt.Println(report.StopBeam(s))
	}
	return nil
}

// pruneParityWarning is the stderr note emitted when the gefin-parity
// pre-filter flags are passed ("" when neither is set). The flags are
// accepted so one flag set drives both tools, but they never prune beam
// strikes, so the note is unconditional — not silenced by -quiet.
func pruneParityWarning(prune, pruneVerify bool) string {
	if !prune && !pruneVerify {
		return ""
	}
	return "beamsim: note: -prune/-prune-verify have no effect on beam strikes (no pre-drawn plan to pre-filter); every strike executes"
}
