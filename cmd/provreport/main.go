// Command provreport aggregates a provenance-enabled JSONL lifecycle
// trace (gefin/beamsim -trace with -prov) into paper-style per-workload
// masking-mechanism tables: for each workload x component, how many
// injected bits were never read, overwritten before use, evicted clean,
// read but logically masked, left latent, or propagated to an SDC, a
// trap, or a timeout — the "why was this fault masked?" decomposition the
// paper's Section V discusses qualitatively.
//
// Usage:
//
//	provreport trace.jsonl
//	provreport -workload crc32 trace.jsonl
//	provreport -json report.json trace.jsonl
//
// The command exits nonzero when the trace carries no provenance fields
// at all (e.g. the campaign ran without -prov).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"armsefi/internal/core/fault"
	"armsefi/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "provreport:", err)
		os.Exit(1)
	}
}

// componentReport is one workload x component row of the JSON export.
type componentReport struct {
	Workload   string                  `json:"workload"`
	Comp       fault.Component         `json:"comp"`
	Records    int                     `json:"records"`
	Mechanisms map[fault.Mechanism]int `json:"mechanisms"`
}

func run() error {
	var (
		workload = flag.String("workload", "", "restrict the report to one workload")
		jsonOut  = flag.String("json", "", "also write the aggregated report as JSON to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: provreport [-workload name] [-json out.json] trace.jsonl")
	}

	var in io.Reader
	if path := flag.Arg(0); path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	sum, err := obs.ReadSummary(in)
	if err != nil {
		return err
	}

	var rows []componentReport
	for _, kind := range []string{obs.KindInjection, obs.KindStrike} {
		k, ok := sum.ByKind[kind]
		if !ok {
			continue
		}
		for name, w := range k.Workloads {
			if *workload != "" && name != *workload {
				continue
			}
			for comp, c := range w.Components {
				if c.MechRecords == 0 {
					continue
				}
				rows = append(rows, componentReport{
					Workload:   name,
					Comp:       comp,
					Records:    c.MechRecords,
					Mechanisms: c.Mechanisms,
				})
			}
		}
	}
	if len(rows) == 0 {
		return fmt.Errorf("trace carries no provenance fields (was the campaign run with -prov?)")
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Workload != rows[j].Workload {
			return rows[i].Workload < rows[j].Workload
		}
		return rows[i].Comp < rows[j].Comp
	})

	printTables(rows)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// printTables renders one masking-mechanism table per workload: counts and
// percentages per component, with a workload-wide total row.
func printTables(rows []componentReport) {
	mechs := fault.Mechanisms()
	byWorkload := make(map[string][]componentReport)
	var names []string
	for _, r := range rows {
		if _, ok := byWorkload[r.Workload]; !ok {
			names = append(names, r.Workload)
		}
		byWorkload[r.Workload] = append(byWorkload[r.Workload], r)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("Masking mechanisms — %s\n", name)
		fmt.Printf("  %-10s %8s", "component", "records")
		for _, m := range mechs {
			fmt.Printf(" %22s", m)
		}
		fmt.Println()
		total := componentReport{Mechanisms: make(map[fault.Mechanism]int)}
		for _, r := range byWorkload[name] {
			fmt.Printf("  %-10s %8d", r.Comp, r.Records)
			for _, m := range mechs {
				fmt.Printf(" %12d (%6.2f%%)", r.Mechanisms[m], pct(r.Mechanisms[m], r.Records))
			}
			fmt.Println()
			total.Records += r.Records
			for _, m := range mechs {
				total.Mechanisms[m] += r.Mechanisms[m]
			}
		}
		fmt.Printf("  %-10s %8d", "total", total.Records)
		for _, m := range mechs {
			fmt.Printf(" %12d (%6.2f%%)", total.Mechanisms[m], pct(total.Mechanisms[m], total.Records))
		}
		fmt.Println()
		fmt.Println()
	}
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
