// Command provreport aggregates a provenance-enabled JSONL lifecycle
// trace (gefin/beamsim -trace with -prov) into paper-style per-workload
// masking-mechanism tables: for each workload x component, how many
// injected bits were never read, overwritten before use, evicted clean,
// read but logically masked, left latent, or propagated to an SDC, a
// trap, or a timeout — the "why was this fault masked?" decomposition the
// paper's Section V discusses qualitatively.
//
// For convergence-observed campaigns (gefin/beamsim -target-margin, or
// any campaign streaming estimates) it also prints the final streaming
// estimators — achieved confidence-interval margins per workload x
// component x class — and the faults saved by sequential early
// stopping.
//
// For pruned campaigns (gefin -prune) it additionally prints a
// predicted-vs-simulated split table: per component, how many planned
// injections the ACE pre-filter resolved without simulation, decomposed
// by predicted mechanism, versus how many actually ran.
//
// Usage:
//
//	provreport trace.jsonl
//	provreport -workload crc32 trace.jsonl
//	provreport -json report.json trace.jsonl
//
// The command exits nonzero when the trace carries no provenance fields
// at all (e.g. the campaign ran without -prov).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"armsefi/internal/core/fault"
	"armsefi/internal/obs"
	"armsefi/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "provreport:", err)
		os.Exit(1)
	}
}

// componentReport is one workload x component row of the JSON export.
type componentReport struct {
	Workload   string                  `json:"workload"`
	Comp       fault.Component         `json:"comp"`
	Records    int                     `json:"records"`
	Mechanisms map[fault.Mechanism]int `json:"mechanisms"`
	// Predicted counts the records the ACE pre-filter resolved without
	// simulation (pruned campaigns only); PredMechanisms splits them by
	// the predicted masking mechanism.
	Predicted      int                     `json:"predicted,omitempty"`
	PredMechanisms map[fault.Mechanism]int `json:"pred_mechanisms,omitempty"`
	// Deduped counts the records materialized from an equivalence-class
	// representative without simulation (deduplicated campaigns only).
	Deduped int `json:"deduped,omitempty"`
}

func run() error {
	var (
		workload = flag.String("workload", "", "restrict the report to one workload")
		jsonOut  = flag.String("json", "", "also write the aggregated report as JSON to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: provreport [-workload name] [-json out.json] trace.jsonl")
	}

	var in io.Reader
	if path := flag.Arg(0); path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	sum, err := obs.ReadSummary(in)
	if err != nil {
		return err
	}

	var rows []componentReport
	for _, kind := range []string{obs.KindInjection, obs.KindStrike} {
		k, ok := sum.ByKind[kind]
		if !ok {
			continue
		}
		for name, w := range k.Workloads {
			if *workload != "" && name != *workload {
				continue
			}
			for comp, c := range w.Components {
				if c.MechRecords == 0 {
					continue
				}
				row := componentReport{
					Workload:   name,
					Comp:       comp,
					Records:    c.MechRecords,
					Mechanisms: c.Mechanisms,
				}
				if c.Predicted > 0 {
					row.Predicted = c.Predicted
					row.PredMechanisms = c.PredMechanisms
				}
				if c.Deduped > 0 {
					row.Deduped = c.Deduped
				}
				rows = append(rows, row)
			}
		}
	}
	if len(rows) == 0 {
		// A convergence-only trace (campaign run with -target-margin but
		// without -prov) still has margins worth reporting.
		if printConvergence(sum, *workload) {
			return nil
		}
		return fmt.Errorf("trace carries no provenance fields (was the campaign run with -prov?)")
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Workload != rows[j].Workload {
			return rows[i].Workload < rows[j].Workload
		}
		return rows[i].Comp < rows[j].Comp
	})

	printTables(rows)
	printSplit(sum, *workload)
	printConvergence(sum, *workload)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// printTables renders one masking-mechanism table per workload: counts and
// percentages per component, with a workload-wide total row.
func printTables(rows []componentReport) {
	mechs := fault.Mechanisms()
	byWorkload := make(map[string][]componentReport)
	var names []string
	for _, r := range rows {
		if _, ok := byWorkload[r.Workload]; !ok {
			names = append(names, r.Workload)
		}
		byWorkload[r.Workload] = append(byWorkload[r.Workload], r)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("Masking mechanisms — %s\n", name)
		fmt.Printf("  %-10s %8s", "component", "records")
		for _, m := range mechs {
			fmt.Printf(" %22s", m)
		}
		fmt.Println()
		total := componentReport{Mechanisms: make(map[fault.Mechanism]int)}
		for _, r := range byWorkload[name] {
			fmt.Printf("  %-10s %8d", r.Comp, r.Records)
			for _, m := range mechs {
				fmt.Printf(" %12d (%6.2f%%)", r.Mechanisms[m], pct(r.Mechanisms[m], r.Records))
			}
			fmt.Println()
			total.Records += r.Records
			for _, m := range mechs {
				total.Mechanisms[m] += r.Mechanisms[m]
			}
		}
		fmt.Printf("  %-10s %8d", "total", total.Records)
		for _, m := range mechs {
			fmt.Printf(" %12d (%6.2f%%)", total.Mechanisms[m], pct(total.Mechanisms[m], total.Records))
		}
		fmt.Println()
		fmt.Println()
	}
}

// printSplit renders the predicted/deduped/simulated decomposition of an
// optimised injection campaign: per component, how many planned
// injections the ACE pre-filter resolved without simulation (split by
// predicted mechanism), how many materialized from an equivalence-class
// representative, and how many actually ran. Silent for plain traces.
func printSplit(sum *obs.Summary, only string) {
	k, ok := sum.ByKind[obs.KindInjection]
	if !ok {
		return
	}
	var names []string
	for name, w := range k.Workloads {
		if only != "" && name != only {
			continue
		}
		for _, c := range w.Components {
			if c.Predicted > 0 || c.Deduped > 0 {
				names = append(names, name)
				break
			}
		}
	}
	sort.Strings(names)
	for _, name := range names {
		w := k.Workloads[name]
		// Columns: only the mechanisms the pre-filter actually predicted.
		var mechs []fault.Mechanism
		for _, m := range fault.Mechanisms() {
			for _, c := range w.Components {
				if c.PredMechanisms[m] > 0 {
					mechs = append(mechs, m)
					break
				}
			}
		}
		comps := make([]fault.Component, 0, len(w.Components))
		for comp := range w.Components {
			comps = append(comps, comp)
		}
		sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })
		fmt.Printf("Campaign split: predicted vs deduped vs simulated — %s\n", name)
		fmt.Printf("  %-10s %9s %9s %9s %10s", "component", "predicted", "deduped", "simulated", "sim frac")
		for _, m := range mechs {
			fmt.Printf(" %22s", m)
		}
		fmt.Println()
		var tPred, tDedup, tSim int
		tMech := make(map[fault.Mechanism]int)
		for _, comp := range comps {
			c := w.Components[comp]
			sim := c.Records - c.Predicted - c.Deduped
			fmt.Printf("  %-10s %9d %9d %9d %9.2f%%", comp, c.Predicted, c.Deduped, sim, pct(sim, c.Records))
			for _, m := range mechs {
				fmt.Printf(" %12d (%6.2f%%)", c.PredMechanisms[m], pct(c.PredMechanisms[m], c.Records))
			}
			fmt.Println()
			tPred += c.Predicted
			tDedup += c.Deduped
			tSim += sim
			for _, m := range mechs {
				tMech[m] += c.PredMechanisms[m]
			}
		}
		total := tPred + tDedup + tSim
		fmt.Printf("  %-10s %9d %9d %9d %9.2f%%", "total", tPred, tDedup, tSim, pct(tSim, total))
		for _, m := range mechs {
			fmt.Printf(" %12d (%6.2f%%)", tMech[m], pct(tMech[m], total))
		}
		fmt.Println()
		fmt.Println()
	}
}

// printConvergence renders the final streaming-estimator states of a
// trace that carries convergence records (campaigns run with
// -target-margin, or any observed campaign's streaming estimates):
// every estimator's achieved margin, plus the faults saved by each
// component the sequential rule stopped early. It reports whether it
// printed anything.
func printConvergence(sum *obs.Summary, only string) bool {
	snaps := sum.LastConv()
	if only != "" {
		filtered := snaps[:0]
		for _, s := range snaps {
			if s.Workload == only {
				filtered = append(filtered, s)
			}
		}
		snaps = filtered
	}
	if len(snaps) == 0 {
		return false
	}
	judged := 0.0
	for _, s := range snaps {
		if s.Met || s.Stopped {
			judged = 1 // render the Met column: the campaign had a rule
			break
		}
	}
	fmt.Println(report.ConvergenceTable("Final convergence estimators (achieved margins)", snaps, judged))
	// Faults saved by sequential stopping: the planned-vs-committed gap of
	// each stopped component, counted once via its Masked-class estimator.
	saved, planned := 0, 0
	for _, s := range snaps {
		if s.Class != fault.ClassMasked {
			continue
		}
		planned += s.Planned
		if s.Stopped {
			saved += s.Planned - s.N
		}
	}
	if saved > 0 {
		fmt.Printf("sequential early stopping saved %d of %d planned faults (%.1f%%)\n\n", saved, planned, pct(saved, planned))
	}
	return true
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
