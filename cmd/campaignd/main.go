// Command campaignd is the campaign service daemon. In coordinator mode
// (the default) it serves the campaign HTTP API over a durable on-disk
// store, schedules shard leases, merges worker telemetry into
// per-campaign fleet traces, serves the live fleet dashboard, and
// optionally runs local worker loops against its own coordinator. In
// worker mode (-coordinator URL) it claims shard leases from a remote
// campaignd, executes them, and federates its trace records and health
// counters back to the coordinator, so a campaign fans out across
// machines while the coordinator keeps one correlated view of the fleet.
//
// Usage:
//
//	campaignd -store DIR [-addr :8440] [-workers N] [-max-active 2]
//	          [-lease-ttl 30s] [-straggler-after 90s] [-stalled-after 15s]
//	          [-trace trace.jsonl] [-metrics-addr :9100]
//	          [-telemetry-every 1s] [-target-margin 0.04] [-confidence 0.99]
//	campaignd -coordinator http://host:8440 [-node NAME] [-workers N]
//	          [-trace trace.jsonl] [-metrics-addr :9100]
//	          [-telemetry-every 1s]
//
// The coordinator serves the fleet dashboard at /fleet, its JSON feed at
// /api/v1/fleet, each campaign's merged fleet trace at
// /api/v1/campaigns/{id}/trace, and its merged convergence view at
// /api/v1/campaigns/{id}/convergence (watch it live with convwatch).
// -telemetry-every 0 disables federation.
//
// SIGINT/SIGTERM drain gracefully: workers stop claiming new shards,
// in-flight shards finish and report, queued telemetry is drained, then
// the process exits. Interrupted campaigns resume from the last durably
// completed shard on restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"armsefi/internal/core/sched"
	"armsefi/internal/obs"
	"armsefi/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		storeDir     = flag.String("store", "", "campaign store directory (coordinator mode; required)")
		addr         = flag.String("addr", ":8440", "HTTP listen address (coordinator mode)")
		coordinator  = flag.String("coordinator", "", "remote coordinator URL (worker mode)")
		node         = flag.String("node", "", "worker node name (default: hostname-pid)")
		workers      = flag.Int("workers", 0, "local worker loops (0 in coordinator mode = API only)")
		maxActive    = flag.Int("max-active", serve.DefaultMaxActive, "campaigns admitted concurrently")
		leaseTTL     = flag.Duration("lease-ttl", serve.DefaultLeaseTTL, "shard lease TTL before requeue")
		straggler    = flag.Duration("straggler-after", 0, "flag a shard execution as a straggler after this long (0 = 3x lease TTL)")
		stalled      = flag.Duration("stalled-after", serve.DefaultStalledAfter, "flag a quiet node as stalled after this long")
		tracePath    = flag.String("trace", "", "write a local JSONL trace of shard scheduling and injections")
		metricsAddr  = flag.String("metrics-addr", "", "serve a standalone /metrics endpoint on this address")
		telemEvery   = flag.Duration("telemetry-every", time.Second, "worker telemetry batch interval (0 disables federation)")
		poll         = flag.Duration("poll", 200*time.Millisecond, "worker idle poll interval")
		targetMargin = flag.Float64("target-margin", 0,
			"coordinator view rule: judge merged convergence views of campaigns that set no target margin of their own against this half-width (0 leaves them unjudged)")
		confidence = flag.Float64("confidence", 0,
			"confidence level of the coordinator view rule and its reported margins (0 = 0.99)")
	)
	flag.Parse()

	if *node == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "node"
		}
		*node = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ocli, err := obs.SetupCLI(*tracePath, *metricsAddr)
	if err != nil {
		return err
	}
	defer ocli.Close()

	if *coordinator != "" {
		client := &serve.Client{Base: *coordinator}
		src := serve.Source(client)
		workerObs := ocli.Obs
		var shipper *serve.Shipper
		if *telemEvery > 0 {
			if workerObs == nil {
				workerObs = obs.New(obs.Options{})
				defer workerObs.Close()
			}
			shipper = serve.NewShipper(*node, client, *telemEvery)
			shipper.ObserveMemory(workerObs.LadderMemoryTotals)
			workerObs.Tee(shipper)
			go shipper.Run(ctx)
			src = shipper.WrapSource(client)
		}
		err := runWorkers(ctx, src, *node, max(*workers, 1), *poll, nil, workerObs)
		if shipper != nil {
			if derr := shipper.Drain(); derr != nil && err == nil {
				err = derr
			}
		}
		return err
	}

	if *storeDir == "" {
		return fmt.Errorf("coordinator mode needs -store DIR (or -coordinator URL for worker mode)")
	}
	store, err := serve.OpenStore(*storeDir)
	if err != nil {
		return err
	}

	observer := ocli.Obs
	if observer == nil {
		observer = obs.New(obs.Options{})
		defer observer.Close()
	}

	coord, err := serve.NewCoordinator(serve.CoordConfig{
		Store:            store,
		MaxActive:        *maxActive,
		LeaseTTL:         *leaseTTL,
		StragglerAfter:   *straggler,
		StalledAfter:     *stalled,
		ConvTargetMargin: *targetMargin,
		ConvConfidence:   *confidence,
		Obs:              observer,
	})
	if err != nil {
		return err
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.Handler(coord, observer.Registry())}
	go srv.Serve(lis)
	fmt.Fprintf(os.Stderr, "campaignd: serving on %s, store %s (dashboard at /fleet)\n", lis.Addr(), *storeDir)

	var pool *sched.Pool
	var shipper *serve.Shipper
	workerErr := make(chan error, 1)
	if *workers > 0 {
		pool = sched.NewPool(*workers)
		observer.ObservePool(pool)
		src := serve.Source(coord)
		workerObs := observer
		if *telemEvery > 0 {
			// Local workers federate through a separate observer sharing the
			// coordinator's registry: their records reach the merged fleet
			// trace via the telemetry path, exactly like a remote node's,
			// without double-tracing the coordinator's own shard events.
			workerObs = obs.New(obs.Options{Registry: observer.Registry()})
			shipper = serve.NewShipper(*node, coord, *telemEvery)
			shipper.ObserveMemory(workerObs.LadderMemoryTotals)
			workerObs.Tee(shipper)
			go shipper.Run(ctx)
			src = shipper.WrapSource(coord)
		}
		go func() { workerErr <- runWorkers(ctx, src, *node, *workers, *poll, pool, workerObs) }()
	} else {
		workerErr <- nil
	}

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "campaignd: draining (in-flight shards finish, new claims stop)")
	err = <-workerErr // workers observe ctx, stop claiming, finish in-flight
	if shipper != nil {
		if derr := shipper.Drain(); derr != nil && err == nil {
			err = derr
		}
	}
	if pool != nil {
		// Belt and braces: hold every pool slot so nothing new can start
		// while the HTTP server shuts down.
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if derr := pool.Drain(drainCtx); derr != nil && err == nil {
			err = derr
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)
	return err
}

// runWorkers runs n worker loops against src until ctx cancels, sharing
// one pool so the simulated-machine count stays bounded. Every loop
// claims as the same node name — the Worker index distinguishes loops in
// trace records — so fleet health aggregates per machine, not per loop.
func runWorkers(ctx context.Context, src serve.Source, node string, n int, poll time.Duration, pool *sched.Pool, o *obs.Observer) error {
	if pool == nil {
		pool = sched.NewPool(n)
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := serve.RunWorker(ctx, serve.WorkerConfig{
				Node:         node,
				Source:       src,
				Pool:         pool,
				Worker:       i,
				Obs:          o,
				PollInterval: poll,
			})
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
