// Command campaignd is the campaign service daemon. In coordinator mode
// (the default) it serves the campaign HTTP API over a durable on-disk
// store, schedules shard leases, and optionally runs local worker loops
// against its own coordinator. In worker mode (-coordinator URL) it
// claims shard leases from a remote campaignd and executes them, so a
// campaign fans out across machines.
//
// Usage:
//
//	campaignd -store DIR [-addr :8440] [-workers N] [-max-active 2]
//	          [-lease-ttl 30s] [-trace trace.jsonl]
//	campaignd -coordinator http://host:8440 [-node NAME] [-workers N]
//
// SIGINT/SIGTERM drain gracefully: workers stop claiming new shards,
// in-flight shards finish and report, then the process exits. Interrupted
// campaigns resume from the last durably completed shard on restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"armsefi/internal/core/sched"
	"armsefi/internal/obs"
	"armsefi/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		storeDir    = flag.String("store", "", "campaign store directory (coordinator mode; required)")
		addr        = flag.String("addr", ":8440", "HTTP listen address (coordinator mode)")
		coordinator = flag.String("coordinator", "", "remote coordinator URL (worker mode)")
		node        = flag.String("node", "", "worker node name (default: hostname-pid)")
		workers     = flag.Int("workers", 0, "local worker loops (0 in coordinator mode = API only)")
		maxActive   = flag.Int("max-active", serve.DefaultMaxActive, "campaigns admitted concurrently")
		leaseTTL    = flag.Duration("lease-ttl", serve.DefaultLeaseTTL, "shard lease TTL before requeue")
		tracePath   = flag.String("trace", "", "write a JSONL trace of shard scheduling and injections")
		poll        = flag.Duration("poll", 200*time.Millisecond, "worker idle poll interval")
	)
	flag.Parse()

	if *node == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "node"
		}
		*node = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *coordinator != "" {
		return runWorkers(ctx, &serve.Client{Base: *coordinator}, *node, max(*workers, 1), *poll, nil)
	}

	if *storeDir == "" {
		return fmt.Errorf("coordinator mode needs -store DIR (or -coordinator URL for worker mode)")
	}
	store, err := serve.OpenStore(*storeDir)
	if err != nil {
		return err
	}

	var traceFile *os.File
	obsOpts := obs.Options{}
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer traceFile.Close()
		obsOpts.TraceWriter = traceFile
	}
	observer := obs.New(obsOpts)
	defer observer.Close()

	coord, err := serve.NewCoordinator(serve.CoordConfig{
		Store:     store,
		MaxActive: *maxActive,
		LeaseTTL:  *leaseTTL,
		Obs:       observer,
	})
	if err != nil {
		return err
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.Handler(coord, observer.Registry())}
	go srv.Serve(lis)
	fmt.Fprintf(os.Stderr, "campaignd: serving on %s, store %s\n", lis.Addr(), *storeDir)

	var pool *sched.Pool
	workerErr := make(chan error, 1)
	if *workers > 0 {
		pool = sched.NewPool(*workers)
		observer.ObservePool(pool)
		go func() { workerErr <- runWorkers(ctx, coord, *node, *workers, *poll, pool) }()
	} else {
		workerErr <- nil
	}

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "campaignd: draining (in-flight shards finish, new claims stop)")
	err = <-workerErr // workers observe ctx, stop claiming, finish in-flight
	if pool != nil {
		// Belt and braces: hold every pool slot so nothing new can start
		// while the HTTP server shuts down.
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if derr := pool.Drain(drainCtx); derr != nil && err == nil {
			err = derr
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)
	return err
}

// runWorkers runs n worker loops against src until ctx cancels, sharing
// one pool so the simulated-machine count stays bounded.
func runWorkers(ctx context.Context, src serve.Source, node string, n int, poll time.Duration, pool *sched.Pool) error {
	if pool == nil {
		pool = sched.NewPool(n)
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := serve.RunWorker(ctx, serve.WorkerConfig{
				Node:         fmt.Sprintf("%s/w%d", node, i),
				Source:       src,
				Pool:         pool,
				Worker:       i,
				PollInterval: poll,
			})
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
