// Command asmtool assembles and disassembles programs for the simulator's
// ISA.
//
// Usage:
//
//	asmtool -assemble prog.s [-text-base 0x100000 -data-base 0x200000]
//	        [-o prog.bin] [-symbols] [-disasm]
//	asmtool -workload crc32 [-scale tiny]   # disassemble a built-in workload
package main

import (
	"flag"
	"fmt"
	"os"

	"armsefi/internal/asm"
	"armsefi/internal/bench"
	"armsefi/internal/soc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asmtool:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		assemble = flag.String("assemble", "", "assembly source file")
		workload = flag.String("workload", "", "disassemble a built-in workload instead")
		scale    = flag.String("scale", "tiny", "workload scale (tiny|small|paper)")
		textBase = flag.Uint64("text-base", uint64(soc.UserTextBase), "text load address")
		dataBase = flag.Uint64("data-base", uint64(soc.UserDataBase), "data load address")
		out      = flag.String("o", "", "write the raw text image here")
		symbols  = flag.Bool("symbols", false, "print the symbol table")
		disasm   = flag.Bool("disasm", true, "print the disassembly")
	)
	flag.Parse()
	var prog *asm.Program
	switch {
	case *workload != "":
		spec, ok := bench.ByName(*workload)
		if !ok {
			return fmt.Errorf("unknown workload %q", *workload)
		}
		sc := bench.ScaleTiny
		switch *scale {
		case "tiny":
		case "small":
			sc = bench.ScaleSmall
		case "paper":
			sc = bench.ScalePaper
		default:
			return fmt.Errorf("unknown scale %q", *scale)
		}
		built, err := spec.Build(soc.UserAsmConfig(), sc)
		if err != nil {
			return err
		}
		prog = built.Program
	case *assemble != "":
		src, err := os.ReadFile(*assemble)
		if err != nil {
			return err
		}
		prog, err = asm.Assemble(*assemble, string(src),
			asm.Config{TextBase: uint32(*textBase), DataBase: uint32(*dataBase)})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -assemble file.s or -workload name")
	}
	fmt.Printf("%s: %d instruction words, %d data bytes, entry %#x\n",
		prog.Name, prog.TextWords(), len(prog.Data), prog.Entry)
	if *symbols {
		for _, name := range prog.SymbolNames() {
			fmt.Printf("  %08x  %s\n", prog.Symbols[name], name)
		}
	}
	if *disasm {
		fmt.Print(asm.Disassemble(prog))
	}
	if *out != "" {
		if err := os.WriteFile(*out, prog.Text, 0o644); err != nil {
			return err
		}
	}
	return nil
}
