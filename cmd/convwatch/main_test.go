package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"armsefi/internal/core/fault"
	"armsefi/internal/obs"
	"armsefi/internal/serve"
)

// fakeCoord is an httptest stand-in for campaignd's read endpoints: a
// mutable CampaignStatus + ConvView pair served at the paths the client
// polls, counting polls so the follow loop's exit conditions can be
// pinned deterministically.
type fakeCoord struct {
	mu    sync.Mutex
	st    serve.CampaignStatus
	cv    serve.ConvView
	polls int
	// onPoll mutates the served state before each convergence response —
	// the test's way of flipping a campaign to converged mid-follow.
	onPoll func(n int, st *serve.CampaignStatus, cv *serve.ConvView)
}

func (f *fakeCoord) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		json.NewEncoder(w).Encode([]*serve.CampaignStatus{&f.st})
	})
	mux.HandleFunc("/api/v1/campaigns/"+f.st.ID, func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		json.NewEncoder(w).Encode(&f.st)
	})
	mux.HandleFunc("/api/v1/campaigns/"+f.st.ID+"/convergence", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		f.polls++
		if f.onPoll != nil {
			f.onPoll(f.polls, &f.st, &f.cv)
		}
		json.NewEncoder(w).Encode(&f.cv)
	})
	return mux
}

func snapshot(workload string, comp fault.Component, class fault.Class, k, n int, margin float64, met bool) obs.ConvSnapshot {
	return obs.ConvSnapshot{
		ConvKey: obs.ConvKey{Workload: workload, Comp: comp, Class: class},
		K:       k, N: n, Planned: n,
		Est: float64(k) / float64(n), Margin: margin, Look: 1, Met: met,
	}
}

func runningFake() *fakeCoord {
	return &fakeCoord{
		st: serve.CampaignStatus{
			ID: "c1", Kind: "injection", State: serve.StateRunning,
			ShardsDone: 1, ShardsTotal: 4, ItemsDone: 50, ItemsTotal: 200,
		},
		cv: serve.ConvView{
			Campaign: "c1", TargetMargin: 0.05, Confidence: 0.99, Nodes: 2,
			Estimators: []obs.ConvSnapshot{
				snapshot("crc32", fault.CompRegFile, fault.ClassMasked, 40, 50, 0.12, false),
			},
		},
	}
}

// TestList pins the campaign listing (no -campaign): one line per
// campaign plus the usage hint, and the empty-store message.
func TestList(t *testing.T) {
	f := runningFake()
	srv := httptest.NewServer(f.handler())
	defer srv.Close()
	var out strings.Builder
	if err := list(&serve.Client{Base: srv.URL}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"c1", "injection", "running", "1/4 shards", "50/200 items", "convwatch -campaign ID"} {
		if !strings.Contains(got, want) {
			t.Errorf("listing missing %q:\n%s", want, got)
		}
	}

	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "[]")
	}))
	defer empty.Close()
	out.Reset()
	if err := list(&serve.Client{Base: empty.URL}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no campaigns") {
		t.Errorf("empty listing = %q", out.String())
	}
}

// TestWatchRendersTable pins one non-follow poll: the title line with
// shard/item progress and node count, the target-margin line, and the
// estimator table with the running fraction.
func TestWatchRendersTable(t *testing.T) {
	f := runningFake()
	srv := httptest.NewServer(f.handler())
	defer srv.Close()
	var out strings.Builder
	if err := watch(&serve.Client{Base: srv.URL}, "c1", false, 0, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"campaign c1 [injection, running]",
		"1/4 shards, 50/200 items",
		"merged from 2 node(s)",
		"target ±0.05 at 99% confidence",
		"crc32",
		"0.800", // 40/50 running fraction in the table
	} {
		if !strings.Contains(got, want) {
			t.Errorf("render missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "ALL MET") {
		t.Errorf("unconverged view rendered ALL MET:\n%s", got)
	}
	if f.polls != 1 {
		t.Errorf("non-follow watch polled %d times, want 1", f.polls)
	}
}

// TestWatchNoTelemetry pins the placeholder when no tallies arrived yet.
func TestWatchNoTelemetry(t *testing.T) {
	f := runningFake()
	f.cv.Estimators = nil
	srv := httptest.NewServer(f.handler())
	defer srv.Close()
	var out strings.Builder
	if err := watch(&serve.Client{Base: srv.URL}, "c1", false, 0, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no convergence telemetry yet") {
		t.Errorf("missing placeholder:\n%s", out.String())
	}
}

// TestFollowExitsOnAllMet pins the follow loop's convergence exit: the
// campaign stays running, but once the view reports every estimator met,
// the loop renders the ALL MET banner and returns instead of polling on.
func TestFollowExitsOnAllMet(t *testing.T) {
	f := runningFake()
	f.onPoll = func(n int, st *serve.CampaignStatus, cv *serve.ConvView) {
		if n >= 3 {
			cv.AllMet = true
			cv.Estimators[0].Margin = 0.04
			cv.Estimators[0].Met = true
		}
	}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()
	var out strings.Builder
	if err := watch(&serve.Client{Base: srv.URL}, "c1", true, time.Millisecond, &out); err != nil {
		t.Fatal(err)
	}
	if f.polls != 3 {
		t.Errorf("follow polled %d times, want 3 (exit on the ALL MET poll)", f.polls)
	}
	got := out.String()
	if !strings.Contains(got, "ALL MET") || !strings.Contains(got, "every estimator meets the target margin") {
		t.Errorf("converged follow missing ALL MET banner:\n%s", got)
	}
}

// TestFollowExitsOnComplete pins the follow loop's completion exit.
func TestFollowExitsOnComplete(t *testing.T) {
	f := runningFake()
	f.onPoll = func(n int, st *serve.CampaignStatus, cv *serve.ConvView) {
		if n >= 2 {
			st.State = serve.StateComplete
			st.ShardsDone, st.ItemsDone = 4, 200
		}
	}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()
	var out strings.Builder
	if err := watch(&serve.Client{Base: srv.URL}, "c1", true, time.Millisecond, &out); err != nil {
		t.Fatal(err)
	}
	// Status is fetched before convergence, so the flip lands on poll 2's
	// status read only after poll 2's convergence bump — one more loop.
	if !strings.Contains(out.String(), "complete") {
		t.Errorf("follow never rendered the complete state:\n%s", out.String())
	}
	if f.polls > 3 {
		t.Errorf("follow polled %d times after completion", f.polls)
	}
}
