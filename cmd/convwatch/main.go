// Command convwatch polls a live campaign's merged convergence view
// from a campaignd coordinator and renders the streaming estimator
// table: per-(workload, component, class) running fractions, their
// confidence-interval half-widths, and — when a target margin is set —
// which estimators have met it. With -follow it redraws until the
// campaign completes or every estimator meets the target.
//
// Usage:
//
//	convwatch -remote http://host:8440 -campaign ID [-follow] [-every 2s]
//	convwatch -remote http://host:8440        # list campaigns to watch
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"armsefi/internal/report"
	"armsefi/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "convwatch:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		remote   = flag.String("remote", "http://localhost:8440", "campaignd coordinator URL")
		campaign = flag.String("campaign", "", "campaign id to watch (empty: list campaigns and exit)")
		follow   = flag.Bool("follow", false, "keep polling until the campaign completes or every estimator meets the target margin")
		every    = flag.Duration("every", 2*time.Second, "poll interval with -follow")
	)
	flag.Parse()

	client := &serve.Client{Base: *remote}
	if *campaign == "" {
		sts, err := client.StatusAll()
		if err != nil {
			return err
		}
		if len(sts) == 0 {
			fmt.Println("no campaigns")
			return nil
		}
		for _, st := range sts {
			fmt.Printf("%s  %-9s  %-9s  %d/%d shards  %d/%d items\n",
				st.ID, st.Kind, st.State, st.ShardsDone, st.ShardsTotal, st.ItemsDone, st.ItemsTotal)
		}
		fmt.Println("\nwatch one with: convwatch -campaign ID")
		return nil
	}

	if *every <= 0 {
		*every = 2 * time.Second
	}
	for {
		st, err := client.Status(*campaign)
		if err != nil {
			return err
		}
		cv, err := client.Convergence(*campaign)
		if err != nil {
			return err
		}
		fmt.Println(render(st, cv))
		settled := st.State == serve.StateComplete || st.State == serve.StateCancelled ||
			(cv.AllMet && len(cv.Estimators) > 0)
		if !*follow || settled {
			if cv.AllMet && len(cv.Estimators) > 0 {
				fmt.Println("every estimator meets the target margin")
			}
			return nil
		}
		time.Sleep(*every)
	}
}

// render formats one poll: a status line plus the estimator table.
func render(st *serve.CampaignStatus, cv *serve.ConvView) string {
	title := fmt.Sprintf("campaign %s [%s, %s] — %d/%d shards, %d/%d items — merged from %d node(s)",
		st.ID, st.Kind, st.State, st.ShardsDone, st.ShardsTotal, st.ItemsDone, st.ItemsTotal, cv.Nodes)
	if cv.TargetMargin > 0 {
		title += fmt.Sprintf("\ntarget ±%.3g at %.0f%% confidence", cv.TargetMargin, 100*cv.Confidence)
		if cv.AllMet {
			title += " — ALL MET"
		}
	}
	if len(cv.Estimators) == 0 {
		return title + "\n(no convergence telemetry yet — workers ship estimates with -telemetry-every > 0)"
	}
	return title + "\n" + report.ConvergenceTable("", cv.Estimators, cv.TargetMargin)
}
