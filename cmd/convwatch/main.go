// Command convwatch polls a live campaign's merged convergence view
// from a campaignd coordinator and renders the streaming estimator
// table: per-(workload, component, class) running fractions, their
// confidence-interval half-widths, and — when a target margin is set —
// which estimators have met it. With -follow it redraws until the
// campaign completes or every estimator meets the target.
//
// Usage:
//
//	convwatch -remote http://host:8440 -campaign ID [-follow] [-every 2s]
//	convwatch -remote http://host:8440        # list campaigns to watch
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"armsefi/internal/report"
	"armsefi/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "convwatch:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		remote   = flag.String("remote", "http://localhost:8440", "campaignd coordinator URL")
		campaign = flag.String("campaign", "", "campaign id to watch (empty: list campaigns and exit)")
		follow   = flag.Bool("follow", false, "keep polling until the campaign completes or every estimator meets the target margin")
		every    = flag.Duration("every", 2*time.Second, "poll interval with -follow")
	)
	flag.Parse()

	client := &serve.Client{Base: *remote}
	if *campaign == "" {
		return list(client, os.Stdout)
	}
	return watch(client, *campaign, *follow, *every, os.Stdout)
}

// list prints one line per known campaign, or a hint when there are none.
func list(client *serve.Client, out io.Writer) error {
	sts, err := client.StatusAll()
	if err != nil {
		return err
	}
	if len(sts) == 0 {
		fmt.Fprintln(out, "no campaigns")
		return nil
	}
	for _, st := range sts {
		fmt.Fprintf(out, "%s  %-9s  %-9s  %d/%d shards  %d/%d items\n",
			st.ID, st.Kind, st.State, st.ShardsDone, st.ShardsTotal, st.ItemsDone, st.ItemsTotal)
	}
	fmt.Fprintln(out, "\nwatch one with: convwatch -campaign ID")
	return nil
}

// watch polls one campaign's status and convergence view, rendering a
// table per poll. Without follow it renders once; with follow it keeps
// polling until the campaign settles — completes, is cancelled, or every
// estimator meets the target margin.
func watch(client *serve.Client, campaign string, follow bool, every time.Duration, out io.Writer) error {
	if every <= 0 {
		every = 2 * time.Second
	}
	for {
		st, err := client.Status(campaign)
		if err != nil {
			return err
		}
		cv, err := client.Convergence(campaign)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, render(st, cv))
		settled := st.State == serve.StateComplete || st.State == serve.StateCancelled ||
			(cv.AllMet && len(cv.Estimators) > 0)
		if !follow || settled {
			if cv.AllMet && len(cv.Estimators) > 0 {
				fmt.Fprintln(out, "every estimator meets the target margin")
			}
			return nil
		}
		time.Sleep(every)
	}
}

// render formats one poll: a status line plus the estimator table.
func render(st *serve.CampaignStatus, cv *serve.ConvView) string {
	title := fmt.Sprintf("campaign %s [%s, %s] — %d/%d shards, %d/%d items — merged from %d node(s)",
		st.ID, st.Kind, st.State, st.ShardsDone, st.ShardsTotal, st.ItemsDone, st.ItemsTotal, cv.Nodes)
	if cv.TargetMargin > 0 {
		title += fmt.Sprintf("\ntarget ±%.3g at %.0f%% confidence", cv.TargetMargin, 100*cv.Confidence)
		if cv.AllMet {
			title += " — ALL MET"
		}
	}
	if len(cv.Estimators) == 0 {
		return title + "\n(no convergence telemetry yet — workers ship estimates with -telemetry-every > 0)"
	}
	return title + "\n" + report.ConvergenceTable("", cv.Estimators, cv.TargetMargin)
}
