// Command armsim runs a workload on the simulated ARM platform and reports
// the result and performance counters.
//
// Usage:
//
//	armsim -workload crc32 [-scale tiny|small|paper] [-preset zynq|gem5]
//	       [-model atomic|detailed] [-counters] [-max-cycles N]
//	       [-metrics-addr 127.0.0.1:9100]
//	armsim -file prog.s [-input data.bin -input-symbol input]
package main

import (
	"flag"
	"fmt"
	"os"

	"armsefi/internal/asm"
	"armsefi/internal/bench"
	"armsefi/internal/cpu"
	"armsefi/internal/isa"
	"armsefi/internal/obs"
	"armsefi/internal/report"
	"armsefi/internal/soc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "armsim:", err)
		os.Exit(1)
	}
}

func parseScale(s string) (bench.Scale, error) {
	switch s {
	case "tiny":
		return bench.ScaleTiny, nil
	case "small":
		return bench.ScaleSmall, nil
	case "paper":
		return bench.ScalePaper, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (tiny|small|paper)", s)
	}
}

func parsePreset(s string) (soc.Config, error) {
	switch s {
	case "zynq":
		return soc.PresetZynq(), nil
	case "gem5":
		return soc.PresetModel(), nil
	default:
		return soc.Config{}, fmt.Errorf("unknown preset %q (zynq|gem5)", s)
	}
}

func parseModel(s string) (soc.ModelKind, error) {
	switch s {
	case "atomic":
		return soc.ModelAtomic, nil
	case "detailed":
		return soc.ModelDetailed, nil
	default:
		return 0, fmt.Errorf("unknown model %q (atomic|detailed)", s)
	}
}

func run() error {
	var (
		workload    = flag.String("workload", "", "built-in workload name (see -list)")
		list        = flag.Bool("list", false, "list built-in workloads")
		file        = flag.String("file", "", "assemble and run a user program instead")
		inputFile   = flag.String("input", "", "binary input staged at -input-symbol")
		inputSymbol = flag.String("input-symbol", "input", "data symbol receiving -input bytes")
		scaleFlag   = flag.String("scale", "tiny", "workload input scale (tiny|small|paper)")
		presetFlag  = flag.String("preset", "zynq", "platform preset (zynq|gem5)")
		modelFlag   = flag.String("model", "detailed", "CPU model (atomic|detailed)")
		counters    = flag.Bool("counters", false, "print performance counters")
		maxCycles   = flag.Uint64("max-cycles", 4_000_000_000, "run cycle budget")
		trace       = flag.Int("trace", 0, "print the first N executed instructions (atomic model only)")
		metrics     = flag.String("metrics-addr", "", "serve pprof and runtime metrics on HOST:PORT during the run")
	)
	flag.Parse()

	if *list {
		for _, s := range bench.All() {
			fmt.Printf("%-14s %s\n", s.Name, s.Characteristics)
		}
		return nil
	}

	if *metrics != "" {
		// armsim runs no fault campaigns, so the registry is empty; the
		// endpoint still exposes /debug/pprof for profiling the simulator.
		srv, err := obs.Serve(*metrics, obs.NewRegistry())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics: serving http://%s/metrics (+ /debug/vars, /debug/pprof/)\n", srv.Addr())
	}

	preset, err := parsePreset(*presetFlag)
	if err != nil {
		return err
	}
	model, err := parseModel(*modelFlag)
	if err != nil {
		return err
	}
	scale, err := parseScale(*scaleFlag)
	if err != nil {
		return err
	}

	m, err := soc.NewMachine(preset, model)
	if err != nil {
		return err
	}

	var golden []byte
	switch {
	case *workload != "":
		spec, ok := bench.ByName(*workload)
		if !ok {
			return fmt.Errorf("unknown workload %q (try -list)", *workload)
		}
		built, err := spec.Build(soc.UserAsmConfig(), scale)
		if err != nil {
			return err
		}
		if err := m.LoadApp(built.Program); err != nil {
			return err
		}
		if len(built.Input) > 0 {
			if err := m.PokeBytes(built.InputAddr, built.Input); err != nil {
				return err
			}
		}
		golden = built.Golden
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		prog, err := asm.Assemble(*file, string(src), soc.UserAsmConfig())
		if err != nil {
			return err
		}
		if err := m.LoadApp(prog); err != nil {
			return err
		}
		if *inputFile != "" {
			data, err := os.ReadFile(*inputFile)
			if err != nil {
				return err
			}
			addr, ok := prog.Symbol(*inputSymbol)
			if !ok {
				return fmt.Errorf("program has no symbol %q", *inputSymbol)
			}
			if err := m.PokeBytes(addr, data); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("need -workload or -file (or -list)")
	}

	if *trace > 0 {
		atomicCore, ok := m.Core().(*cpu.Atomic)
		if !ok {
			return fmt.Errorf("-trace requires -model atomic")
		}
		left := *trace
		labels := map[uint32]string{}
		for name, addr := range m.Kernel.Symbols {
			labels[addr] = name
		}
		if app := m.App(); app != nil {
			for name, addr := range app.Symbols {
				labels[addr] = name
			}
		}
		atomicCore.SetTrace(func(pc uint32, mode isa.Mode, in isa.Instruction) {
			if left <= 0 {
				return
			}
			left--
			fmt.Printf("%08x %s  %s\n", pc, mode, asm.DisasmWord(pc, in.Encode(), labels))
		})
	}
	if err := m.Boot(50_000_000); err != nil {
		return err
	}
	res := m.Run(*maxCycles)
	fmt.Printf("outcome:      %v (exit code %#x)\n", res.Outcome, res.ExitCode)
	fmt.Printf("cycles:       %d\n", res.Cycles)
	fmt.Printf("instructions: %d (IPC %.2f)\n", res.Instructions,
		float64(res.Instructions)/float64(res.Cycles))
	fmt.Printf("output:       %d bytes\n", len(res.Output))
	if golden != nil {
		match := "MATCHES reference"
		if string(res.Output) != string(golden) {
			match = "DIFFERS from reference"
		}
		fmt.Printf("golden check: %s\n", match)
	}
	if *counters {
		fmt.Println()
		fmt.Print(report.CounterDeviation("run", m.Core().Counters(), m.Core().Counters()))
	}
	return nil
}
