package main

import (
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/soc"
)

func TestParseScale(t *testing.T) {
	cases := map[string]bench.Scale{
		"tiny": bench.ScaleTiny, "small": bench.ScaleSmall, "paper": bench.ScalePaper,
	}
	for in, want := range cases {
		got, err := parseScale(in)
		if err != nil || got != want {
			t.Errorf("parseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseScale("huge"); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestParsePreset(t *testing.T) {
	z, err := parsePreset("zynq")
	if err != nil || z.Name != "zynq" {
		t.Errorf("zynq preset: %v %v", z.Name, err)
	}
	g, err := parsePreset("gem5")
	if err != nil || g.Name != "gem5" {
		t.Errorf("gem5 preset: %v %v", g.Name, err)
	}
	if _, err := parsePreset("qemu"); err == nil {
		t.Error("bad preset accepted")
	}
}

func TestParseModel(t *testing.T) {
	if m, err := parseModel("atomic"); err != nil || m != soc.ModelAtomic {
		t.Error("atomic")
	}
	if m, err := parseModel("detailed"); err != nil || m != soc.ModelDetailed {
		t.Error("detailed")
	}
	if _, err := parseModel("rtl"); err == nil {
		t.Error("bad model accepted")
	}
}
