// Command perfguard gates CI on simulation-kernel performance. It parses
// `go test -bench` output and checks it against the committed baseline
// record (BENCH_kernel.json): ratio guards compare two benchmarks from
// the SAME run — e.g. the checkpointed campaign arm against the plain
// arm — so the check is independent of the host the CI job happens to
// land on, and allocation guards pin allocs/op at exactly zero for the
// steady-state cycle loop. A ratio more than -tolerance below the
// recorded value fails the build. Metric floors additionally pin custom
// b.ReportMetric columns (e.g. the pruned campaign's predicted-frac in
// BENCH_prune.json) above absolute minimums.
//
// Usage:
//
//	go test -bench ... -benchmem | perfguard -baseline BENCH_kernel.json
//	perfguard -baseline BENCH_kernel.json -input bench.txt [-tolerance 0.10]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// RatioGuard asserts fast is at least Recorded*(1-tolerance) times
// faster than slow, measured within one run.
type RatioGuard struct {
	Name string `json:"name"`
	// Fast and Slow name the two benchmarks, without the -GOMAXPROCS
	// suffix (e.g. "BenchmarkCampaignCheckpointed/checkpointed").
	Fast string `json:"fast"`
	Slow string `json:"slow"`
	// Recorded is the ns(slow)/ns(fast) ratio measured when the baseline
	// was committed.
	Recorded float64 `json:"recorded"`
}

// MetricFloor asserts a custom benchmark metric (a b.ReportMetric
// column, e.g. "predicted-frac") stays at or above an absolute floor.
type MetricFloor struct {
	Name string `json:"name"`
	// Bench names the benchmark carrying the metric, without the
	// -GOMAXPROCS suffix.
	Bench string `json:"bench"`
	// Metric is the unit column to check (everything after the value).
	Metric string `json:"metric"`
	// Floor is the absolute minimum — no tolerance is applied, so record
	// floors with headroom, not measured values.
	Floor float64 `json:"floor"`
}

// Guards is the machine-checked part of the baseline record.
type Guards struct {
	Ratios []RatioGuard `json:"ratios"`
	// ZeroAllocs lists benchmarks whose allocs/op must be exactly zero
	// (requires -benchmem or b.ReportAllocs in the benchmark).
	ZeroAllocs []string `json:"zero_allocs"`
	// MetricFloors pin custom reported metrics above absolute floors.
	MetricFloors []MetricFloor `json:"metric_floors,omitempty"`
}

// Baseline is the subset of BENCH_kernel.json perfguard reads; the file
// may carry additional documentation fields.
type Baseline struct {
	Guards Guards `json:"guards"`
}

// measurement is one parsed benchmark result line.
type measurement struct {
	nsPerOp  float64
	allocs   float64
	hasAlloc bool
	// metrics holds every other value/unit column (b.ReportMetric output);
	// repeated lines keep the minimum, so floors check the worst run.
	metrics map[string]float64
}

// parseBench extracts ns/op and allocs/op per benchmark name from go
// test -bench output. Repeated lines (-count > 1) keep the fastest
// ns/op and the worst allocs/op.
func parseBench(r io.Reader) (map[string]measurement, error) {
	out := make(map[string]measurement)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so names are host-independent.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m, seen := out[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				if !seen || v < m.nsPerOp {
					m.nsPerOp = v
				}
			case "allocs/op":
				if !m.hasAlloc || v > m.allocs {
					m.allocs = v
				}
				m.hasAlloc = true
			case "B/op", "MB/s":
				// standard columns no guard reads
			default:
				if m.metrics == nil {
					m.metrics = make(map[string]float64)
				}
				if prev, ok := m.metrics[fields[i+1]]; !ok || v < prev {
					m.metrics[fields[i+1]] = v
				}
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

func run() error {
	var (
		baselinePath = flag.String("baseline", "BENCH_kernel.json", "committed baseline record with the guard definitions")
		inputPath    = flag.String("input", "", "benchmark output file (default: stdin)")
		tolerance    = flag.Float64("tolerance", 0.10, "allowed fractional regression below each recorded ratio")
	)
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", *baselinePath, err)
	}
	if len(base.Guards.Ratios) == 0 && len(base.Guards.ZeroAllocs) == 0 {
		return fmt.Errorf("%s defines no guards", *baselinePath)
	}

	var in io.Reader = os.Stdin
	if *inputPath != "" {
		f, err := os.Open(*inputPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		return err
	}

	failed := 0
	for _, g := range base.Guards.Ratios {
		fast, okF := results[g.Fast]
		slow, okS := results[g.Slow]
		if !okF || !okS {
			fmt.Printf("FAIL %s: missing benchmark results (%s and/or %s not in input)\n", g.Name, g.Fast, g.Slow)
			failed++
			continue
		}
		ratio := slow.nsPerOp / fast.nsPerOp
		floor := g.Recorded * (1 - *tolerance)
		verdict := "ok  "
		if ratio < floor {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%s %s: %.2fx (recorded %.2fx, floor %.2fx)\n", verdict, g.Name, ratio, g.Recorded, floor)
	}
	for _, g := range base.Guards.MetricFloors {
		m, ok := results[g.Bench]
		v, has := m.metrics[g.Metric]
		switch {
		case !ok:
			fmt.Printf("FAIL %s: benchmark %s not in input\n", g.Name, g.Bench)
			failed++
		case !has:
			fmt.Printf("FAIL %s: %s reports no %q metric\n", g.Name, g.Bench, g.Metric)
			failed++
		case v < g.Floor:
			fmt.Printf("FAIL %s: %s %s = %.4g, floor %.4g\n", g.Name, g.Bench, g.Metric, v, g.Floor)
			failed++
		default:
			fmt.Printf("ok   %s: %s %s = %.4g (floor %.4g)\n", g.Name, g.Bench, g.Metric, v, g.Floor)
		}
	}
	for _, name := range base.Guards.ZeroAllocs {
		m, ok := results[name]
		switch {
		case !ok:
			fmt.Printf("FAIL zero-alloc %s: not in input\n", name)
			failed++
		case !m.hasAlloc:
			fmt.Printf("FAIL zero-alloc %s: no allocs/op column (run with -benchmem or ReportAllocs)\n", name)
			failed++
		case m.allocs != 0:
			fmt.Printf("FAIL zero-alloc %s: %.0f allocs/op, want 0\n", name, m.allocs)
			failed++
		default:
			fmt.Printf("ok   zero-alloc %s: 0 allocs/op\n", name)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d perf guard(s) failed", failed)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "perfguard:", err)
		os.Exit(1)
	}
}
