// Command tracestat recomputes campaign statistics from JSONL lifecycle
// traces (written by gefin/beamsim/fitcompare via -trace, federated by
// campaignd, or fetched from a coordinator) and optionally cross-checks
// them against the engine's own exported Result, exiting nonzero on any
// disagreement. This closes the observability loop: the trace is an
// independent record of every injection and strike, so exact agreement
// with the aggregate Result certifies both — including a multi-node
// campaign's merged fleet trace against its distributed Result.
//
// Usage:
//
//	tracestat trace.jsonl
//	tracestat node-a.jsonl node-b.jsonl          # merge several nodes' traces
//	tracestat -against gefin-result.json trace.jsonl
//	tracestat -against-beam beam-result.json trace.jsonl
//	tracestat -require-prov -against gefin-result.json trace.jsonl
//	tracestat -remote http://host:8440 -campaign ID
//
// With -remote and -campaign, the campaign's merged fleet trace and its
// assembled Result are both fetched from the coordinator and verified
// against each other (exact counts; bit-identical beam event sums).
//
// When the trace carries propagation provenance, the mechanism verdicts
// are verified to partition the outcome classes exactly (always; the
// -require-prov flag additionally fails traces without provenance).
// Pruned campaigns (gefin -prune) are accepted: their predicted records
// carry masking-mechanism verdicts even without -prov, are verified to
// be consistent (masked class, masking mechanism, bounded by the masked
// outcome count), and the trace's predicted/simulated split is
// cross-checked against the assembled Result's prune summary.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"armsefi/internal/core/beam"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/gefin"
	"armsefi/internal/obs"
	"armsefi/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		against     = flag.String("against", "", "verify the trace against a gefin campaign Result JSON")
		againstBeam = flag.String("against-beam", "", "verify the trace against a beam campaign Result JSON")
		remote      = flag.String("remote", "", "coordinator URL: fetch the campaign's merged fleet trace and Result")
		campaignID  = flag.String("campaign", "", "campaign id on the remote coordinator")
		requireProv = flag.Bool("require-prov", false,
			"fail unless every record carries a provenance mechanism verdict")
		quiet = flag.Bool("quiet", false, "suppress the summary tables; print verification results only")
	)
	flag.Parse()
	if (*remote == "") != (*campaignID == "") {
		return fmt.Errorf("-remote and -campaign go together")
	}
	if flag.NArg() == 0 && *remote == "" {
		return fmt.Errorf("usage: tracestat [-against result.json | -against-beam result.json] trace.jsonl...\n" +
			"       tracestat -remote http://host:8440 -campaign ID")
	}

	var readers []io.Reader
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	for _, path := range flag.Args() {
		if path == "-" {
			readers = append(readers, os.Stdin)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		readers = append(readers, f)
	}

	var client *serve.Client
	if *remote != "" {
		client = &serve.Client{Base: *remote}
		trace, err := client.Trace(*campaignID)
		if err != nil {
			return err
		}
		readers = append(readers, bytes.NewReader(trace))
	}

	sum, err := obs.ReadSummary(io.MultiReader(readers...))
	if err != nil {
		return err
	}
	if !*quiet {
		printSummary(sum)
	}
	failures := verifyProvenance(sum, *requireProv)
	if client != nil {
		failures += verifyRemote(sum, client, *campaignID)
	}
	if *against != "" {
		failures += verifyInjection(sum, *against)
	}
	if *againstBeam != "" {
		failures += verifyBeam(sum, *againstBeam)
	}
	if failures > 0 {
		return fmt.Errorf("%d verification failure(s)", failures)
	}
	return nil
}

// verifyRemote fetches the campaign's assembled Result from the
// coordinator and cross-checks the merged trace against it, picking the
// verifier by campaign kind.
func verifyRemote(s *obs.Summary, client *serve.Client, id string) int {
	st, err := client.Status(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		return 1
	}
	raw, err := client.RawResults(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		return 1
	}
	label := fmt.Sprintf("remote campaign %s", id)
	switch st.Kind {
	case serve.KindInjection:
		var res gefin.Result
		if err := json.Unmarshal(raw, &res); err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			return 1
		}
		return verifyInjectionResult(s, &res, label)
	case serve.KindBeam:
		var res beam.Result
		if err := json.Unmarshal(raw, &res); err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			return 1
		}
		return verifyBeamResult(s, &res, label)
	default:
		fmt.Printf("MISMATCH %s: unknown campaign kind %q\n", id, st.Kind)
		return 1
	}
}

// verifyProvenance cross-checks the mechanism verdicts against the outcome
// classes: for every workload x component carrying provenance, the verdicts
// must cover every record (all-or-none per component), each verdict must be
// consistent with its record's class, and the mechanism tallies must
// partition the class counts exactly — the masked mechanisms sum to the
// Masked count, propagated-sdc equals the SDC count, and the trap/timeout
// routes together equal the two crash counts. With require set, a trace
// without provenance is itself a failure. Returns the mismatch count.
func verifyProvenance(s *obs.Summary, require bool) int {
	failures := 0
	checked, withProv := 0, 0
	for _, kind := range []string{obs.KindInjection, obs.KindStrike} {
		k, ok := s.ByKind[kind]
		if !ok {
			continue
		}
		for name, w := range k.Workloads {
			for comp, c := range w.Components {
				checked++
				if c.MechRecords == 0 {
					if require {
						fmt.Printf("MISMATCH %s/%s: no record carries a mechanism verdict\n", name, comp)
						failures++
					}
					continue
				}
				withProv++
				if c.PredBad > 0 {
					fmt.Printf("MISMATCH %s/%s: %d predicted records are not masked with a masking mechanism\n",
						name, comp, c.PredBad)
					failures++
				}
				if c.MechRecords != c.Records {
					if c.Predicted > 0 && c.MechRecords == c.Predicted {
						// Pruned campaign without -prov: only the pre-filter's
						// predicted records carry verdicts. Those must all be
						// masking and bounded by the masked class count; the
						// full partition check needs simulated provenance too.
						predMasked := 0
						for _, n := range c.PredMechanisms {
							predMasked += n
						}
						if predMasked > c.Counts[fault.ClassMasked] {
							fmt.Printf("MISMATCH %s/%s: %d predicted-masked records exceed the %d masked outcomes\n",
								name, comp, predMasked, c.Counts[fault.ClassMasked])
							failures++
						}
						continue
					}
					fmt.Printf("MISMATCH %s/%s: %d of %d records carry a mechanism verdict\n",
						name, comp, c.MechRecords, c.Records)
					failures++
				}
				if c.MechMismatch > 0 {
					fmt.Printf("MISMATCH %s/%s: %d mechanism verdicts contradict their outcome class\n",
						name, comp, c.MechMismatch)
					failures++
				}
				masked := 0
				for _, m := range fault.Mechanisms() {
					if m.Masking() {
						masked += c.Mechanisms[m]
					}
				}
				crash := c.Mechanisms[fault.MechPropagatedTrap] + c.Mechanisms[fault.MechPropagatedTimeout]
				parts := []struct {
					label string
					got   int
					want  int
				}{
					{"masked mechanisms", masked, c.Counts[fault.ClassMasked]},
					{"propagated-sdc", c.Mechanisms[fault.MechPropagatedSDC], c.Counts[fault.ClassSDC]},
					{"crash mechanisms", crash, c.Counts[fault.ClassAppCrash] + c.Counts[fault.ClassSysCrash]},
				}
				for _, p := range parts {
					if p.got != p.want {
						fmt.Printf("MISMATCH %s/%s: %s sum to %d, classes count %d\n",
							name, comp, p.label, p.got, p.want)
						failures++
					}
				}
			}
		}
	}
	if require && withProv == 0 && failures == 0 {
		fmt.Println("MISMATCH: trace carries no provenance at all")
		failures++
	}
	if failures == 0 && withProv > 0 {
		fmt.Printf("OK: mechanism verdicts partition the outcome classes (%d workload x component groups)\n", withProv)
	}
	return failures
}

// printSummary renders the per-kind class tables, the worker distribution,
// and the wall-time quantiles.
func printSummary(s *obs.Summary) {
	fmt.Printf("trace: %d records\n", s.Records)
	for _, kind := range []string{obs.KindInjection, obs.KindStrike} {
		k, ok := s.ByKind[kind]
		if !ok {
			continue
		}
		fmt.Printf("\n%s records: %d\n", kind, k.Records)
		names := make([]string, 0, len(k.Workloads))
		for name := range k.Workloads {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("  %-12s %-10s %8s", "workload", "component", "records")
		for _, cls := range fault.Classes() {
			fmt.Printf(" %10s", cls)
		}
		fmt.Println()
		for _, name := range names {
			w := k.Workloads[name]
			comps := make([]fault.Component, 0, len(w.Components))
			for comp := range w.Components {
				comps = append(comps, comp)
			}
			sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })
			for _, comp := range comps {
				c := w.Components[comp]
				fmt.Printf("  %-12s %-10s %8d", name, comp, c.Records)
				for _, cls := range fault.Classes() {
					fmt.Printf(" %10d", c.Counts[cls])
				}
				fmt.Println()
			}
		}
	}

	workers := make([]int, 0, len(s.Workers))
	for w := range s.Workers {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	fmt.Printf("\nper-worker records:")
	for _, w := range workers {
		fmt.Printf(" w%d=%d", w, s.Workers[w])
	}
	fmt.Println()
	fmt.Printf("experiment wall time: p50=%v p90=%v p99=%v max=%v\n",
		time.Duration(s.WallQuantile(0.50)), time.Duration(s.WallQuantile(0.90)),
		time.Duration(s.WallQuantile(0.99)), time.Duration(s.WallQuantile(1.0)))
}

// verifyInjection cross-checks the trace against a gefin Result export:
// every workload x component class count must match exactly, and the trace
// must contain exactly N records per component. Returns the mismatch count.
func verifyInjection(s *obs.Summary, path string) int {
	var res gefin.Result
	if err := readJSON(path, &res); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		return 1
	}
	return verifyInjectionResult(s, &res, path)
}

func verifyInjectionResult(s *obs.Summary, res *gefin.Result, label string) int {
	failures := 0
	pred, sim := 0, 0
	for _, w := range res.Workloads {
		for _, cr := range w.Components {
			c := s.Component(obs.KindInjection, w.Workload, cr.Comp)
			pred += c.Predicted
			sim += c.Records - c.Predicted
			if c.Records != cr.N {
				fmt.Printf("MISMATCH %s/%s: trace has %d records, result expects %d\n",
					w.Workload, cr.Comp, c.Records, cr.N)
				failures++
			}
			for _, cls := range fault.Classes() {
				if c.Counts[cls] != cr.Counts[cls] {
					fmt.Printf("MISMATCH %s/%s/%s: trace counts %d, result counts %d\n",
						w.Workload, cr.Comp, cls, c.Counts[cls], cr.Counts[cls])
					failures++
				}
			}
		}
	}
	// A pruned Result carries its predicted/simulated split outside the
	// Workloads; the trace's predicted records must reproduce it exactly.
	// (Shadow-verified campaigns simulate every slot, so the trace carries
	// no predicted records there — nothing to cross-check.)
	if ps := res.Prune; ps != nil && ps.Verified == 0 {
		if pred != ps.Predicted || sim != ps.Simulated {
			fmt.Printf("MISMATCH prune split: trace has %d predicted / %d simulated records, result summarises %d / %d\n",
				pred, sim, ps.Predicted, ps.Simulated)
			failures++
		} else if pred > 0 {
			fmt.Printf("OK: trace predicted/simulated split matches the result's prune summary (%d / %d)\n", pred, sim)
		}
	}
	if failures == 0 {
		fmt.Printf("OK: trace agrees with injection result %s (%d workloads)\n", label, len(res.Workloads))
	}
	return failures
}

// verifyBeam cross-checks the trace against a beam Result export: strike
// record counts must equal SimulatedStrikes, masked counts must equal
// MaskedStrikes, and the weighted per-class event sums recomputed from the
// trace must be bit-identical to ModeledEvents. Returns the mismatch count.
func verifyBeam(s *obs.Summary, path string) int {
	var res beam.Result
	if err := readJSON(path, &res); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		return 1
	}
	return verifyBeamResult(s, &res, path)
}

func verifyBeamResult(s *obs.Summary, res *beam.Result, label string) int {
	failures := 0
	for _, w := range res.Workloads {
		records, masked := 0, 0
		for _, comp := range fault.Components() {
			c := s.Component(obs.KindStrike, w.Workload, comp)
			records += c.Records
			masked += c.Counts[fault.ClassMasked]
		}
		if records != w.SimulatedStrikes {
			fmt.Printf("MISMATCH %s: trace has %d strikes, result simulated %d\n",
				w.Workload, records, w.SimulatedStrikes)
			failures++
		}
		if masked != w.MaskedStrikes {
			fmt.Printf("MISMATCH %s: trace has %d masked strikes, result counted %d\n",
				w.Workload, masked, w.MaskedStrikes)
			failures++
		}
		modeled := s.ModeledEvents(w.Workload)
		for _, cls := range fault.Classes() {
			if modeled[cls] != w.ModeledEvents[cls] {
				fmt.Printf("MISMATCH %s/%s: trace models %.17g events, result %.17g\n",
					w.Workload, cls, modeled[cls], w.ModeledEvents[cls])
				failures++
			}
		}
	}
	if failures == 0 {
		fmt.Printf("OK: trace agrees with beam result %s (%d workloads)\n", label, len(res.Workloads))
	}
	return failures
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
