module armsefi

go 1.22
