// Beamvsinjection: the paper's headline experiment in miniature — expose a
// few workloads to the simulated neutron beam, run a fault-injection
// campaign on the same workloads, convert both to FIT, and print the
// Figure 10 style aggregate comparison.
package main

import (
	"fmt"
	"os"

	"armsefi/internal/bench"
	"armsefi/internal/core/beam"
	"armsefi/internal/core/fit"
	"armsefi/internal/core/gefin"
	"armsefi/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "beamvsinjection:", err)
		os.Exit(1)
	}
}

func run() error {
	var specs []bench.Spec
	for _, name := range []string{"crc32", "qsort", "susan_s"} {
		s, ok := bench.ByName(name)
		if !ok {
			return fmt.Errorf("workload %s missing", name)
		}
		specs = append(specs, s)
	}

	fmt.Println("beam campaign (simulated LANSCE)...")
	beamRes, err := beam.Run(beam.Config{Seed: 11, BeamHours: 1}, specs, nil)
	if err != nil {
		return err
	}
	fmt.Println("fault-injection campaign (GeFIN-style)...")
	injRes, err := gefin.Run(gefin.Config{Seed: 11, FaultsPerComponent: 60}, specs, nil)
	if err != nil {
		return err
	}

	var comparisons []fit.Comparison
	for i := range injRes.Workloads {
		inj := fit.FromInjection(&injRes.Workloads[i], fit.DefaultFITRawPerBit)
		if bw, ok := beamRes.Workload(inj.Workload); ok {
			comparisons = append(comparisons, fit.Compare(bw, inj))
		}
	}
	fmt.Println()
	fmt.Println(report.Fig3(beamRes))
	fmt.Println(report.Fig10(fit.AggregateComparisons(comparisons)))
	return nil
}
