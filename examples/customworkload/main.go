// Customworkload: bring your own assembly program under the reliability
// microscope. This example defines a small fixed-point dot-product
// workload from scratch (no bench registry), computes its golden output,
// and measures its register-file and data-cache vulnerability.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"

	"armsefi/internal/asm"
	"armsefi/internal/core/fault"
	"armsefi/internal/soc"
)

const source = `
.equ N, 64
.text
_start:
	ldr sp, =0x3F0000
	ldr r0, =vec_a
	ldr r1, =vec_b
	mov r2, #0        ; accumulator
	mov r3, #0        ; index
dot:
	ldr r4, [r0, r3, lsl #2]
	ldr r5, [r1, r3, lsl #2]
	mla r2, r4, r5
	add r3, #1
	cmp r3, #N
	blt dot
	ldr r0, =outbuf
	str r2, [r0]
	mov r1, #4
	mov r7, #2
	svc #0
	mov r0, #0
	mov r7, #1
	svc #0
.data
outbuf: .space 4
vec_a:  .space 256
vec_b:  .space 256
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "customworkload:", err)
		os.Exit(1)
	}
}

func run() error {
	prog, err := asm.Assemble("dot.s", source, soc.UserAsmConfig())
	if err != nil {
		return err
	}

	// Deterministic input vectors and the native golden result.
	rng := rand.New(rand.NewSource(99))
	a := make([]uint32, 64)
	b := make([]uint32, 64)
	var want uint32
	input := make([]byte, 512)
	for i := 0; i < 64; i++ {
		a[i] = rng.Uint32() % 1000
		b[i] = rng.Uint32() % 1000
		want += a[i] * b[i]
		binary.LittleEndian.PutUint32(input[4*i:], a[i])
		binary.LittleEndian.PutUint32(input[256+4*i:], b[i])
	}

	m, err := soc.NewMachine(soc.PresetZynq(), soc.ModelDetailed)
	if err != nil {
		return err
	}
	if err := m.LoadApp(prog); err != nil {
		return err
	}
	if err := m.PokeBytes(prog.MustSymbol("vec_a"), input); err != nil {
		return err
	}
	if err := m.Boot(50_000_000); err != nil {
		return err
	}
	snap := m.SaveSnapshot()
	golden := m.Run(10_000_000)
	if !golden.CleanExit() || !bytes.Equal(golden.Output, binary.LittleEndian.AppendUint32(nil, want)) {
		return fmt.Errorf("golden run wrong: %v % x (want %d)", golden.Outcome, golden.Output, want)
	}
	fmt.Printf("golden dot product %d in %d cycles\n", want, golden.Cycles)

	// Small per-component vulnerability scan.
	for _, comp := range []fault.Component{fault.CompRegFile, fault.CompL1D} {
		counts := map[fault.Class]int{}
		const trials = 40
		for i := 0; i < trials; i++ {
			m.RestoreSnapshot(snap, false)
			f := fault.Fault{
				Comp:  comp,
				Bit:   uint64(rng.Int63n(int64(fault.SizeBits(m, comp)))),
				Cycle: uint64(rng.Int63n(int64(golden.Cycles))),
			}
			res := m.RunWithInjection(10_000_000, f.Cycle, func() { fault.Apply(m, f) })
			counts[fault.Classify(res, golden.Output, m.Cfg.TimerPeriod)]++
		}
		fmt.Printf("%-8s masked=%2d sdc=%2d appcrash=%2d syscrash=%2d  (AVF %.2f)\n",
			comp, counts[fault.ClassMasked], counts[fault.ClassSDC],
			counts[fault.ClassAppCrash], counts[fault.ClassSysCrash],
			float64(trials-counts[fault.ClassMasked])/trials)
	}
	return nil
}
