// Quickstart: assemble a small program, boot the simulated ARM platform
// (kernel included), run it, then flip one bit mid-run and watch the
// outcome classification change.
package main

import (
	"fmt"
	"os"

	"armsefi/internal/asm"
	"armsefi/internal/core/fault"
	"armsefi/internal/soc"
)

const program = `
.text
_start:
	ldr sp, =0x3F0000
	; sum the integers 1..100 and print the result bytes
	mov r0, #0
	mov r1, #1
loop:
	add r0, r0, r1
	add r1, #1
	cmp r1, #101
	blt loop
	ldr r2, =result
	str r0, [r2]
	mov r0, r2
	mov r1, #4
	mov r7, #2        ; write(buf, len)
	svc #0
	mov r0, #0
	mov r7, #1        ; exit(0)
	svc #0
.data
result: .word 0
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	prog, err := asm.Assemble("sum.s", program, soc.UserAsmConfig())
	if err != nil {
		return err
	}

	m, err := soc.NewMachine(soc.PresetZynq(), soc.ModelDetailed)
	if err != nil {
		return err
	}
	if err := m.LoadApp(prog); err != nil {
		return err
	}
	if err := m.Boot(50_000_000); err != nil {
		return err
	}
	snap := m.SaveSnapshot()

	// Golden run.
	golden := m.Run(10_000_000)
	fmt.Printf("golden: outcome=%v output=% x cycles=%d\n",
		golden.Outcome, golden.Output, golden.Cycles)

	// Re-run with a single-bit flip in the L1 data cache halfway through.
	m.RestoreSnapshot(snap, false)
	f := fault.Fault{Comp: fault.CompL1D, Bit: 123_456, Cycle: golden.Cycles / 2}
	res := m.RunWithInjection(10_000_000, f.Cycle, func() { fault.Apply(m, f) })
	class := fault.Classify(res, golden.Output, m.Cfg.TimerPeriod)
	fmt.Printf("with %v -> %v (output=% x)\n", f, class, res.Output)

	// And one in the physical register file, which is rarely benign.
	m.RestoreSnapshot(snap, false)
	f = fault.Fault{Comp: fault.CompRegFile, Bit: 42, Cycle: golden.Cycles / 3}
	res = m.RunWithInjection(10_000_000, f.Cycle, func() { fault.Apply(m, f) })
	class = fault.Classify(res, golden.Output, m.Cfg.TimerPeriod)
	fmt.Printf("with %v -> %v\n", f, class)
	return nil
}
