// Faultcampaign: a miniature GeFIN-style statistical injection campaign on
// one workload, printing per-component AVF and the FIT conversion — the
// core of the paper's Figures 4 and 5 at example scale.
package main

import (
	"fmt"
	"os"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/fit"
	"armsefi/internal/core/gefin"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultcampaign:", err)
		os.Exit(1)
	}
}

func run() error {
	spec, ok := bench.ByName("qsort")
	if !ok {
		return fmt.Errorf("qsort workload missing")
	}
	cfg := gefin.Config{FaultsPerComponent: 60, Seed: 2024}
	res, err := gefin.RunWorkload(cfg, spec, nil)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s: golden run %d cycles, %d instructions\n\n",
		res.Workload, res.GoldenCycles, res.GoldenInstrs)
	fmt.Printf("%-10s %9s %8s %8s %8s %8s %8s\n",
		"component", "bits", "masked", "sdc", "appcrash", "syscrash", "AVF")
	for _, c := range res.Components {
		fmt.Printf("%-10s %9d %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			c.Comp, c.SizeBits,
			c.ClassFraction(fault.ClassMasked),
			c.ClassFraction(fault.ClassSDC),
			c.ClassFraction(fault.ClassAppCrash),
			c.ClassFraction(fault.ClassSysCrash),
			c.AVF())
	}
	inj := fit.FromInjection(res, fit.DefaultFITRawPerBit)
	fmt.Printf("\nFIT conversion (FIT_raw = %.3g/bit):\n", fit.DefaultFITRawPerBit)
	fmt.Printf("  SDC %.2f  AppCrash %.2f  SysCrash %.2f  total %.2f FIT\n",
		inj.PerClass[fault.ClassSDC], inj.PerClass[fault.ClassAppCrash],
		inj.PerClass[fault.ClassSysCrash], inj.Total())
	return nil
}
