// Residency: profile what actually lives in the cache hierarchy for each
// workload — the mechanism behind the paper's System-Crash analysis. The
// example contrasts the injection-campaign state (cold: caches reset, only
// the run's own traffic present) with the live-board state (warm across
// runs: kernel text, page tables, and scheduler data stay resident in the
// space small workloads leave unused).
package main

import (
	"fmt"
	"os"

	"armsefi/internal/bench"
	"armsefi/internal/soc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "residency:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("%-14s %7s | %21s | %21s\n", "", "", "L2 after cold run", "L2 on live board")
	fmt.Printf("%-14s %7s | %6s %6s %7s | %6s %6s %7s\n",
		"workload", "cycles", "lines", "kernel", "user", "lines", "kernel", "user")
	for _, name := range []string{"crc32", "qsort", "susan_s", "rijndael_e"} {
		spec, ok := bench.ByName(name)
		if !ok {
			return fmt.Errorf("workload %s missing", name)
		}
		built, err := spec.Build(soc.UserAsmConfig(), bench.ScaleTiny)
		if err != nil {
			return err
		}
		m, err := soc.NewMachine(soc.PresetZynq(), soc.ModelAtomic)
		if err != nil {
			return err
		}
		if err := m.LoadApp(built.Program); err != nil {
			return err
		}
		if len(built.Input) > 0 {
			if err := m.PokeBytes(built.InputAddr, built.Input); err != nil {
				return err
			}
		}
		if err := m.Boot(50_000_000); err != nil {
			return err
		}
		snap := m.SaveSnapshot()

		// Cold (injection-campaign) state: reset caches, one run.
		m.RestoreSnapshot(snap, false)
		res := m.Run(4_000_000_000)
		if !res.CleanExit() {
			return fmt.Errorf("%s: %v", name, res.Outcome)
		}
		cold := soc.ProfileCache(m.Mem.L2)

		// Live-board state: warm boot caches, then a run.
		m.RestoreSnapshot(snap, true)
		m.Run(4_000_000_000)
		warm := soc.ProfileCache(m.Mem.L2)

		user := func(r soc.Residency) int { return r.Total - r.KernelLines() }
		fmt.Printf("%-14s %7d | %6d %6d %7d | %6d %6d %7d\n",
			name, res.Cycles,
			cold.Total, cold.KernelLines(), user(cold),
			warm.Total, warm.KernelLines(), user(warm))
	}
	fmt.Println("\nKernel-owned lines exposed on the live board are the beam-only")
	fmt.Println("System-Crash source the paper identifies (Section V-A): injection")
	fmt.Println("campaigns reset them away, beam experiments irradiate them.")
	return nil
}
