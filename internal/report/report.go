// Package report renders the reproduction's results in the shape of the
// paper's tables and figures: plain-text tables with the same rows and
// series, suitable for terminal output and for EXPERIMENTS.md.
package report

import (
	"fmt"
	"sort"
	"strings"

	"armsefi/internal/bench"
	"armsefi/internal/core/beam"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/fit"
	"armsefi/internal/core/gefin"
	"armsefi/internal/cpu"
	"armsefi/internal/obs"
	"armsefi/internal/soc"
	"armsefi/internal/stats"
)

// Table is a generic text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// AbstractionRow is one measured row of Table I.
type AbstractionRow struct {
	Layer        string
	Model        string
	CyclesPerSec float64
}

// TableI renders the abstraction-layer throughput table.
func TableI(rows []AbstractionRow) string {
	t := Table{
		Title:  "Table I: performance of different abstraction layer models (measured)",
		Header: []string{"Abstraction Layer", "Model", "Performance (cycles/sec)"},
	}
	for _, r := range rows {
		t.Add(r.Layer, r.Model, fmt.Sprintf("%.3g", r.CyclesPerSec))
	}
	return t.String()
}

// TableII renders the setup-attribute comparison of the two platforms.
func TableII(zynq, model soc.Config) string {
	t := Table{
		Title:  "Table II: summary of setup attributes",
		Header: []string{"Property", "Beam", "Gem5"},
	}
	cacheStr := func(c soc.Config, l1 bool) string {
		if l1 {
			return fmt.Sprintf("%d KB %d-way", c.Mem.L1D.SizeBytes>>10, c.Mem.L1D.Ways)
		}
		return fmt.Sprintf("%d KB %d-way", c.Mem.L2.SizeBytes>>10, c.Mem.L2.Ways)
	}
	t.Add("Microarchitecture", "Cortex-A9", "Cortex-A9*")
	t.Add("Platform", zynq.Platform, model.Platform)
	t.Add("CPU cores", "1*", "1")
	t.Add("L1 Cache", cacheStr(zynq, true), cacheStr(model, true))
	t.Add("L2 Cache", cacheStr(zynq, false), cacheStr(model, false))
	t.Add("Kernel version", zynq.KernelVersion, model.KernelVersion)
	t.Add("TLB entries", fmt.Sprintf("%d", zynq.Mem.TLBEntries), fmt.Sprintf("%d", model.Mem.TLBEntries))
	return t.String()
}

// TableIII renders the benchmark/input table.
func TableIII(specs []bench.Spec) string {
	t := Table{
		Title:  "Table III: input used and benchmark characteristics",
		Header: []string{"Benchmark", "Input", "Characteristics"},
	}
	for _, s := range specs {
		t.Add(s.Name, s.InputDesc, s.Characteristics)
	}
	return t.String()
}

// TableIV renders the per-component error-margin summary across workloads.
func TableIV(res *gefin.Result) string {
	t := Table{
		Title:  "Table IV: min, max, and average error margin per component (99% confidence)",
		Header: []string{"Component", "Min Err", "Max Err", "Avg Err"},
	}
	for _, comp := range fault.Components() {
		var margins []float64
		for _, w := range res.Workloads {
			if c, ok := w.Component(comp); ok {
				margins = append(margins, c.ErrorMargin())
			}
		}
		s := stats.Summarise(margins)
		t.Add(fault.PaperNames[comp],
			fmt.Sprintf("%.1f %%", 100*s.Min),
			fmt.Sprintf("%.1f %%", 100*s.Max),
			fmt.Sprintf("%.1f %%", 100*s.Avg))
	}
	return t.String()
}

// Fig3 renders the beam FIT rates per workload and class.
func Fig3(res *beam.Result) string {
	t := Table{
		Title:  "Figure 3: beam FIT rates for SDCs, Application Crashes, and System Crashes",
		Header: []string{"Benchmark", "SDC FIT", "AppCrash FIT", "SysCrash FIT", "Total", "err/exec"},
	}
	for i := range res.Workloads {
		w := &res.Workloads[i]
		t.Add(w.Workload,
			fmt.Sprintf("%.2f", w.FIT(fault.ClassSDC)),
			fmt.Sprintf("%.2f", w.FIT(fault.ClassAppCrash)),
			fmt.Sprintf("%.2f", w.FIT(fault.ClassSysCrash)),
			fmt.Sprintf("%.2f", w.TotalFIT()),
			fmt.Sprintf("%.2g", w.ErrorRatePerExecution()))
	}
	return t.String()
}

// Fig4 renders the fault-injection classification (AVF) per workload and
// component.
func Fig4(res *gefin.Result) string {
	t := Table{
		Title:  "Figure 4: fault-injection effects classification (fractions of injected faults)",
		Header: []string{"Benchmark", "Component", "Masked", "SDC", "AppCrash", "SysCrash", "AVF"},
	}
	for _, w := range res.Workloads {
		for _, c := range w.Components {
			t.Add(w.Workload, c.Comp.String(),
				fmt.Sprintf("%.3f", c.ClassFraction(fault.ClassMasked)),
				fmt.Sprintf("%.3f", c.ClassFraction(fault.ClassSDC)),
				fmt.Sprintf("%.3f", c.ClassFraction(fault.ClassAppCrash)),
				fmt.Sprintf("%.3f", c.ClassFraction(fault.ClassSysCrash)),
				fmt.Sprintf("%.3f", c.AVF()))
		}
	}
	return t.String()
}

// PruneSplit renders a pruned campaign's predicted/simulated split: how
// many planned injections the liveness pre-filter proved masked without
// simulation, by masking mechanism.
func PruneSplit(s *gefin.PruneSummary) string {
	t := Table{
		Title:  "Campaign pre-filter: predicted vs simulated injections",
		Header: []string{"Verdict", "Count", "Share"},
	}
	total := s.Predicted + s.Simulated
	if s.Verified > 0 {
		total = s.Simulated
	}
	pct := func(n int) string {
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f %%", 100*float64(n)/float64(total))
	}
	mechs := make([]string, 0, len(s.ByMechanism))
	for m := range s.ByMechanism {
		mechs = append(mechs, m)
	}
	sort.Strings(mechs)
	for _, m := range mechs {
		t.Add("predicted "+m, fmt.Sprintf("%d", s.ByMechanism[m]), pct(s.ByMechanism[m]))
	}
	t.Add("predicted (all)", fmt.Sprintf("%d", s.Predicted), pct(s.Predicted))
	t.Add("simulated", fmt.Sprintf("%d", s.Simulated), pct(s.Simulated))
	if s.Verified > 0 {
		t.Add("shadow-verified", fmt.Sprintf("%d", s.Verified),
			fmt.Sprintf("%d mismatches", s.Mismatches))
	}
	return t.String()
}

// DedupSplit renders a deduplicated campaign's materialized/simulated
// split: how many planned injections resolved from an equivalence-class
// representative instead of their own simulation.
func DedupSplit(s *gefin.DedupSummary) string {
	t := Table{
		Title:  "Equivalence-class deduplication: materialized vs simulated injections",
		Header: []string{"Verdict", "Count", "Share"},
	}
	total := s.Deduped + s.Simulated
	if s.Verified > 0 {
		total = s.Simulated
	}
	pct := func(n int) string {
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f %%", 100*float64(n)/float64(total))
	}
	t.Add("deduplicated", fmt.Sprintf("%d", s.Deduped), pct(s.Deduped))
	t.Add("simulated", fmt.Sprintf("%d", s.Simulated), pct(s.Simulated))
	if s.Classes > 0 {
		t.Add("classes", fmt.Sprintf("%d", s.Classes),
			fmt.Sprintf("max size %d", s.MaxClass))
	}
	if s.Verified > 0 {
		t.Add("shadow-verified", fmt.Sprintf("%d", s.Verified),
			fmt.Sprintf("%d mismatches", s.Mismatches))
	}
	return t.String()
}

// SweepTable renders an exhaustive sweep's enumeration statistics: how
// each component's full site x cycle population collapsed into (site,
// quiescent-window) classes, and the population-exact AVF they measure.
func SweepTable(s *gefin.SweepSummary) string {
	t := Table{
		Title:  "Exhaustive sweep: site x window enumeration (population-exact AVF)",
		Header: []string{"Benchmark", "Component", "Sites", "Windows", "Population", "Mean width", "Max width", "AVF"},
	}
	for _, c := range s.Components {
		t.Add(c.Workload, c.Comp.String(),
			fmt.Sprintf("%d", c.Sites),
			fmt.Sprintf("%d", c.Windows),
			fmt.Sprintf("%d", c.Population),
			fmt.Sprintf("%.1f", c.MeanWidth),
			fmt.Sprintf("%d", c.MaxWidth),
			fmt.Sprintf("%.6f", c.AVF))
	}
	return t.String()
}

// Fig5 renders the injection-predicted FIT rates.
func Fig5(injs []fit.Injection) string {
	t := Table{
		Title:  "Figure 5: fault-injection FIT rates (FIT_raw x size x AVF)",
		Header: []string{"Benchmark", "SDC FIT", "AppCrash FIT", "SysCrash FIT", "Total"},
	}
	for _, in := range injs {
		t.Add(in.Workload,
			fmt.Sprintf("%.2f", in.PerClass[fault.ClassSDC]),
			fmt.Sprintf("%.2f", in.PerClass[fault.ClassAppCrash]),
			fmt.Sprintf("%.2f", in.PerClass[fault.ClassSysCrash]),
			fmt.Sprintf("%.2f", in.Total()))
	}
	return t.String()
}

// ratioStr formats a Figure 6-9 ratio (positive: beam higher).
func ratioStr(r float64) string {
	if r >= 0 {
		return fmt.Sprintf("beam %.1fx higher", r)
	}
	return fmt.Sprintf("injection %.1fx higher", -r)
}

// FigRatio renders one of Figures 6, 7, or 8 for a class.
func FigRatio(title string, cs []fit.Comparison, cls fault.Class) string {
	t := Table{
		Title:  title,
		Header: []string{"Benchmark", "Beam FIT", "Injection FIT", "Ratio"},
	}
	for _, c := range cs {
		t.Add(c.Workload,
			fmt.Sprintf("%.2f", c.Beam[cls]),
			fmt.Sprintf("%.2f", c.Injection[cls]),
			ratioStr(c.ClassRatio(cls)))
	}
	return t.String()
}

// Fig9 renders the combined SDC + AppCrash comparison.
func Fig9(cs []fit.Comparison) string {
	t := Table{
		Title:  "Figure 9: SDC + Application Crash FIT comparison",
		Header: []string{"Benchmark", "Beam FIT", "Injection FIT", "Ratio"},
	}
	for _, c := range cs {
		t.Add(c.Workload,
			fmt.Sprintf("%.2f", c.Beam[fault.ClassSDC]+c.Beam[fault.ClassAppCrash]),
			fmt.Sprintf("%.2f", c.Injection[fault.ClassSDC]+c.Injection[fault.ClassAppCrash]),
			ratioStr(c.SDCAppRatio()))
	}
	return t.String()
}

// Fig10 renders the aggregate beam-vs-injection overview.
func Fig10(a fit.Aggregate) string {
	t := Table{
		Title:  fmt.Sprintf("Figure 10: average FIT over %d benchmarks, beam vs fault injection", a.Workloads),
		Header: []string{"Accumulation", "Beam FIT", "Injection FIT", "Ratio"},
	}
	t.Add("SDC", fmt.Sprintf("%.2f", a.BeamSDC), fmt.Sprintf("%.2f", a.InjSDC), ratioStr(a.RatioSDC))
	t.Add("SDC+AppCrash", fmt.Sprintf("%.2f", a.BeamSDCApp), fmt.Sprintf("%.2f", a.InjSDCApp), ratioStr(a.RatioSDCApp))
	t.Add("Total", fmt.Sprintf("%.2f", a.BeamTotal), fmt.Sprintf("%.2f", a.InjTotal), ratioStr(a.RatioTotal))
	return t.String()
}

// Significance renders the interval-overlap verdicts behind the Figure
// 6-10 ratios: per workload x class, the beam FIT with its Poisson
// interval, the injection FIT with its Wilson interval, and whether the
// two agree at the chosen confidence. Comparisons without intervals
// (built by fit.Compare rather than fit.CompareCI) are skipped.
func Significance(cs []fit.Comparison, confidence float64) string {
	t := Table{
		Title: fmt.Sprintf("Beam vs injection significance at %.0f%% confidence (interval overlap)",
			100*confidence),
		Header: []string{"Benchmark", "Class", "Beam FIT (Poisson CI)", "Injection FIT (Wilson CI)", "Verdict"},
	}
	rows := 0
	for _, c := range cs {
		for _, cls := range fault.ErrorClasses() {
			v := c.Verdict(cls)
			if v == fit.VerdictNone {
				continue
			}
			rows++
			t.Add(c.Workload, cls.String(),
				fmt.Sprintf("%.2f %s", c.Beam[cls], c.BeamCI[cls]),
				fmt.Sprintf("%.2f %s", c.Injection[cls], c.InjectionCI[cls]),
				string(v))
		}
	}
	if rows == 0 {
		return ""
	}
	return t.String()
}

// CounterDeviation renders the Section IV-D perf-counter comparison
// between the two platform presets.
func CounterDeviation(workload string, zynq, model cpu.Counters) string {
	t := Table{
		Title:  fmt.Sprintf("Section IV-D: counter deviation, %s (board vs model)", workload),
		Header: []string{"Counter", "Board", "Model", "Deviation"},
	}
	for _, name := range cpu.CounterNames {
		zv, err := zynq.Value(name)
		if err != nil {
			continue
		}
		mv, _ := model.Value(name)
		dev := 0.0
		if zv != 0 {
			dev = 100 * (float64(mv) - float64(zv)) / float64(zv)
		} else if mv != 0 {
			dev = 100
		}
		t.Add(name, fmt.Sprintf("%d", zv), fmt.Sprintf("%d", mv), fmt.Sprintf("%+.1f%%", dev))
	}
	return t.String()
}

// ACERow pairs an ACE estimate with a fault-injection measurement for one
// component.
type ACERow struct {
	Comp         fault.Component
	ACEAVF       float64
	InjectionAVF float64
	Margin       float64
}

// ACEComparison renders the ACE-vs-injection study (Section II's
// methodology ladder; the over-estimation bias of Wang et al. [28]).
func ACEComparison(workload string, rows []ACERow) string {
	t := Table{
		Title:  fmt.Sprintf("ACE analysis vs statistical fault injection, %s", workload),
		Header: []string{"Component", "ACE AVF", "Injection AVF", "Margin", "ACE bias"},
	}
	for _, r := range rows {
		bias := "over-estimates"
		if r.ACEAVF < r.InjectionAVF {
			bias = "under-estimates"
		}
		t.Add(fault.PaperNames[r.Comp],
			fmt.Sprintf("%.3f", r.ACEAVF),
			fmt.Sprintf("%.3f", r.InjectionAVF),
			fmt.Sprintf("±%.3f", r.Margin),
			bias)
	}
	return t.String()
}

// StrikeContext renders the injection-observability breakdown: how many
// faults landed in live content, and which outcomes came from kernel-owned
// lines — the Section V mechanism behind System Crashes.
func StrikeContext(res *gefin.Result) string {
	t := Table{
		Title:  "Strike context (cache components): live-content hits and kernel-owned sources",
		Header: []string{"Benchmark", "Component", "live/total", "kernel-struck", "kernel SysCrash", "kernel SDC"},
	}
	cacheComps := map[fault.Component]bool{
		fault.CompL1I: true, fault.CompL1D: true, fault.CompL2: true,
	}
	for _, w := range res.Workloads {
		for _, c := range w.Components {
			if !cacheComps[c.Comp] {
				continue
			}
			valid, kernel := 0, 0
			for _, cls := range fault.Classes() {
				valid += c.ValidStruck[cls]
				kernel += c.KernelStruck[cls]
			}
			t.Add(w.Workload, c.Comp.String(),
				fmt.Sprintf("%d/%d", valid, c.N),
				fmt.Sprintf("%d", kernel),
				fmt.Sprintf("%d/%d", c.KernelStruck[fault.ClassSysCrash], c.Counts[fault.ClassSysCrash]),
				fmt.Sprintf("%d/%d", c.KernelStruck[fault.ClassSDC], c.Counts[fault.ClassSDC]))
		}
	}
	return t.String()
}

func stopTitle(noun string, target, confidence float64, planned, executed, saved int, shadow bool) string {
	mode := ""
	if shadow {
		mode = " [shadow: full plan executed, cuts cross-checked]"
	}
	return fmt.Sprintf("Sequential early stopping: target ±%.3g at %.0f%% confidence — %d of %d %s executed, %d saved%s",
		target, 100*confidence, executed, planned, noun, saved, mode)
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}

// StopInjection renders what the sequential stopping rule did to an
// injection campaign: per-component cuts, looks taken, and the achieved
// margin at the campaign's plain confidence.
func StopInjection(s *gefin.StopSummary) string {
	t := Table{
		Title:  stopTitle("injections", s.TargetMargin, s.Confidence, s.Planned, s.Executed, s.Saved, s.Shadow),
		Header: []string{"Benchmark", "Component", "Planned", "Executed", "Looks", "Achieved", "Stopped"},
	}
	for _, c := range s.Components {
		t.Add(c.Workload, c.Comp.String(),
			fmt.Sprintf("%d", c.Planned),
			fmt.Sprintf("%d", c.Executed),
			fmt.Sprintf("%d", c.Looks),
			fmt.Sprintf("±%.3f", c.Margin),
			yn(c.Stopped))
	}
	return t.String()
}

// StopBeam renders what the sequential stopping rule did to a beam
// campaign's strike chains.
func StopBeam(s *beam.StopSummary) string {
	t := Table{
		Title:  stopTitle("strikes", s.TargetMargin, s.Confidence, s.Planned, s.Executed, s.Saved, s.Shadow),
		Header: []string{"Benchmark", "Component", "Planned", "Executed", "Looks", "Achieved", "Stopped"},
	}
	for _, c := range s.Chains {
		t.Add(c.Workload, c.Comp.String(),
			fmt.Sprintf("%d", c.Planned),
			fmt.Sprintf("%d", c.Executed),
			fmt.Sprintf("%d", c.Looks),
			fmt.Sprintf("±%.3f", c.Margin),
			yn(c.Stopped))
	}
	return t.String()
}

// ConvergenceTable renders a set of streaming estimator snapshots — a
// live campaign's merged convergence view, or the final estimators of a
// finished run. A zero target leaves the "Met" column unjudged.
func ConvergenceTable(title string, snaps []obs.ConvSnapshot, target float64) string {
	header := []string{"Benchmark", "Component", "Class", "Est", "Margin", "k/n", "Planned", "Look"}
	if target > 0 {
		header = append(header, "Met")
	}
	t := Table{Title: title, Header: header}
	for _, s := range snaps {
		row := []string{
			s.Workload, s.Comp.String(), s.Class.String(),
			fmt.Sprintf("%.3f", s.Est),
			fmt.Sprintf("±%.3f", s.Margin),
			fmt.Sprintf("%d/%d", s.K, s.N),
			fmt.Sprintf("%d", s.Planned),
			fmt.Sprintf("%d", s.Look),
		}
		if target > 0 {
			met := yn(s.Met)
			if s.Stopped {
				met = "stopped"
			}
			row = append(row, met)
		}
		t.Add(row...)
	}
	return t.String()
}
