package report

import (
	"strings"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/beam"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/fit"
	"armsefi/internal/core/gefin"
	"armsefi/internal/cpu"
	"armsefi/internal/soc"
)

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "T", Header: []string{"a", "long-header"}}
	tb.Add("xx", "1")
	tb.Add("y", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "a   long-header") {
		t.Errorf("header row: %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator row: %q", lines[2])
	}
}

func TestStaticTables(t *testing.T) {
	t1 := TableI([]AbstractionRow{{Layer: "RTL", Model: "gates", CyclesPerSec: 600}})
	if !strings.Contains(t1, "RTL") || !strings.Contains(t1, "600") {
		t.Error("Table I missing content")
	}
	t2 := TableII(soc.PresetZynq(), soc.PresetModel())
	for _, frag := range []string{"Zynq 7000", "VExpress", "3.14", "3.13", "512 KB 8-way"} {
		if !strings.Contains(t2, frag) {
			t.Errorf("Table II missing %q", frag)
		}
	}
	t3 := TableIII(bench.All())
	if strings.Count(t3, "\n") < 15 {
		t.Error("Table III too short")
	}
}

func fakeCampaign() *gefin.Result {
	return &gefin.Result{Workloads: []gefin.WorkloadResult{{
		Workload: "crc32",
		Components: []gefin.ComponentResult{{
			Comp: fault.CompL1D, SizeBits: 262144, N: 100,
			Counts: map[fault.Class]int{fault.ClassMasked: 90, fault.ClassSDC: 10},
		}},
	}}}
}

func TestCampaignTables(t *testing.T) {
	res := fakeCampaign()
	t4 := TableIV(res)
	if !strings.Contains(t4, "D$ Cache") || !strings.Contains(t4, "%") {
		t.Errorf("Table IV:\n%s", t4)
	}
	f4 := Fig4(res)
	if !strings.Contains(f4, "crc32") || !strings.Contains(f4, "0.100") {
		t.Errorf("Fig 4:\n%s", f4)
	}
	inj := fit.FromInjection(&res.Workloads[0], fit.DefaultFITRawPerBit)
	f5 := Fig5([]fit.Injection{inj})
	if !strings.Contains(f5, "crc32") {
		t.Errorf("Fig 5:\n%s", f5)
	}
}

func TestBeamAndComparisonFigures(t *testing.T) {
	bw := beam.WorkloadResult{
		Workload: "crc32",
		Fluence:  1e9,
		Events: map[fault.Class]float64{
			fault.ClassSDC: 1, fault.ClassAppCrash: 2, fault.ClassSysCrash: 3,
		},
		Executions: 1e6,
	}
	bres := &beam.Result{Workloads: []beam.WorkloadResult{bw}}
	f3 := Fig3(bres)
	if !strings.Contains(f3, "crc32") {
		t.Errorf("Fig 3:\n%s", f3)
	}
	inj := fit.FromInjection(&fakeCampaign().Workloads[0], fit.DefaultFITRawPerBit)
	cmp := fit.Compare(&bw, inj)
	for _, out := range []string{
		FigRatio("Figure 6", []fit.Comparison{cmp}, fault.ClassSDC),
		Fig9([]fit.Comparison{cmp}),
		Fig10(fit.AggregateComparisons([]fit.Comparison{cmp})),
	} {
		if !strings.Contains(out, "higher") {
			t.Errorf("figure missing ratio text:\n%s", out)
		}
	}
}

func TestCounterDeviation(t *testing.T) {
	z := cpu.Counters{Cycles: 1000, L1DAccesses: 100, ITLBMisses: 10}
	m := cpu.Counters{Cycles: 1100, L1DAccesses: 100, ITLBMisses: 20}
	out := CounterDeviation("w", z, m)
	if !strings.Contains(out, "+10.0%") {
		t.Errorf("missing cycle deviation:\n%s", out)
	}
	if !strings.Contains(out, "+100.0%") {
		t.Errorf("missing itlb deviation:\n%s", out)
	}
	if !strings.Contains(out, "+0.0%") {
		t.Errorf("missing zero deviation:\n%s", out)
	}
}
