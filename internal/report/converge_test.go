package report

import (
	"strings"
	"testing"

	"armsefi/internal/core/beam"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/fit"
	"armsefi/internal/core/gefin"
	"armsefi/internal/obs"
	"armsefi/internal/stats"
)

func TestStopInjectionTable(t *testing.T) {
	out := StopInjection(&gefin.StopSummary{
		TargetMargin: 0.05,
		Confidence:   0.99,
		Planned:      1200,
		Executed:     450,
		Saved:        750,
		Components: []gefin.StopComponent{
			{Workload: "crc32", Comp: fault.CompRegFile, Planned: 200, Executed: 50,
				Looks: 1, Margin: 0.086, Stopped: true},
			{Workload: "crc32", Comp: fault.CompDTLB, Planned: 200, Executed: 200,
				Looks: 4, Margin: 0.061},
		},
	})
	for _, frag := range []string{
		"target ±0.05 at 99% confidence",
		"450 of 1200 injections executed, 750 saved",
		"regfile", "±0.086", "yes",
		"dtlb", "±0.061",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("StopInjection missing %q:\n%s", frag, out)
		}
	}
}

func TestStopBeamTable(t *testing.T) {
	out := StopBeam(&beam.StopSummary{
		TargetMargin: 0.1,
		Confidence:   0.95,
		Planned:      60,
		Executed:     40,
		Saved:        20,
		Shadow:       true,
		Chains: []beam.StopChain{
			{Workload: "qsort", Comp: fault.CompL1D, Planned: 30, Executed: 10,
				Looks: 1, Margin: 0.09, Stopped: true},
		},
	})
	for _, frag := range []string{
		"target ±0.1 at 95% confidence",
		"40 of 60 strikes executed, 20 saved",
		"[shadow: full plan executed, cuts cross-checked]",
		"qsort", "l1d", "±0.090",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("StopBeam missing %q:\n%s", frag, out)
		}
	}
}

func TestConvergenceTable(t *testing.T) {
	snaps := []obs.ConvSnapshot{
		{ConvKey: obs.ConvKey{Workload: "crc32", Comp: fault.CompRegFile, Class: fault.ClassMasked},
			K: 48, N: 50, Planned: 200, Est: 0.96, Margin: 0.086, Look: 1, Met: true, Stopped: true},
		{ConvKey: obs.ConvKey{Workload: "crc32", Comp: fault.CompRegFile, Class: fault.ClassSDC},
			K: 1, N: 50, Planned: 200, Est: 0.02, Margin: 0.074, Look: 1, Met: true},
	}
	// With a target, the Met column renders; stopped estimators say so.
	out := ConvergenceTable("Final", snaps, 0.1)
	for _, frag := range []string{"Final", "Met", "stopped", "yes", "±0.086", "48/50"} {
		if !strings.Contains(out, frag) {
			t.Errorf("ConvergenceTable missing %q:\n%s", frag, out)
		}
	}
	// Without a target, no Met column.
	out = ConvergenceTable("", snaps, 0)
	if strings.Contains(out, "Met") {
		t.Errorf("target-free table grew a Met column:\n%s", out)
	}
}

func TestSignificanceTable(t *testing.T) {
	w := &gefin.WorkloadResult{
		Workload: "crc32",
		Components: []gefin.ComponentResult{{
			Comp: fault.CompL1D, SizeBits: 262144, N: 100,
			Counts: map[fault.Class]int{fault.ClassMasked: 90, fault.ClassSDC: 10},
		}},
	}
	bw := &beam.WorkloadResult{
		Workload:      "crc32",
		Fluence:       1e9,
		Events:        map[fault.Class]float64{fault.ClassSDC: 1},
		ModeledEvents: map[fault.Class]float64{fault.ClassSDC: 1},
		StrikeCounts:  map[fault.Class]int{fault.ClassSDC: 20},
	}
	cmp := fit.CompareCI(bw, w, fit.DefaultFITRawPerBit, stats.Z95)
	out := Significance([]fit.Comparison{cmp}, 0.95)
	for _, frag := range []string{"95% confidence", "crc32", "SDC", "Verdict"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Significance missing %q:\n%s", frag, out)
		}
	}
	// Interval-free comparisons render nothing.
	plain := fit.Compare(bw, fit.FromInjection(w, fit.DefaultFITRawPerBit))
	if got := Significance([]fit.Comparison{plain}, 0.95); got != "" {
		t.Errorf("interval-free Significance = %q, want empty", got)
	}
}
