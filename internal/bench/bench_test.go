package bench_test

import (
	"bytes"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/soc"
)

// runWorkload executes a built workload on a freshly booted machine and
// returns its UART output.
func runWorkload(t *testing.T, b *bench.Built, model soc.ModelKind) []byte {
	t.Helper()
	m, err := soc.NewMachine(soc.PresetZynq(), model)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if err := m.LoadApp(b.Program); err != nil {
		t.Fatalf("LoadApp: %v", err)
	}
	if len(b.Input) > 0 {
		if err := m.PokeBytes(b.InputAddr, b.Input); err != nil {
			t.Fatalf("PokeBytes: %v", err)
		}
	}
	if err := m.Boot(50_000_000); err != nil {
		t.Fatalf("Boot: %v", err)
	}
	res := m.Run(4_000_000_000)
	if !res.CleanExit() {
		t.Fatalf("%s run: outcome=%v code=%#x pc=%#x mode=%v",
			b.Spec.Name, res.Outcome, res.ExitCode, m.Core().PC(), m.Core().Mode())
	}
	return res.Output
}

// TestWorkloadsMatchReference runs every Table III workload at tiny scale
// on the atomic model and compares the simulated output bit-for-bit with
// the native Go reference.
func TestWorkloadsMatchReference(t *testing.T) {
	for _, spec := range bench.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			b, err := spec.Build(soc.UserAsmConfig(), bench.ScaleTiny)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			out := runWorkload(t, b, soc.ModelAtomic)
			if !bytes.Equal(out, b.Golden) {
				t.Fatalf("output mismatch: got %d bytes, want %d\n got: %.64x\nwant: %.64x",
					len(out), len(b.Golden), out, b.Golden)
			}
		})
	}
}

// TestWorkloadsMatchReferenceDetailed cross-checks that the detailed
// out-of-order model computes identical outputs to the atomic model.
func TestWorkloadsMatchReferenceDetailed(t *testing.T) {
	for _, spec := range bench.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			b, err := spec.Build(soc.UserAsmConfig(), bench.ScaleTiny)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			out := runWorkload(t, b, soc.ModelDetailed)
			if !bytes.Equal(out, b.Golden) {
				t.Fatalf("output mismatch: got %d bytes, want %d", len(out), len(b.Golden))
			}
		})
	}
}

// TestPaperScaleSmoke validates the -scale paper build path for a few
// fast workloads end-to-end on the atomic model.
func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale runs are slow")
	}
	for _, name := range []string{"susan_e", "stringsearch", "dijkstra"} {
		spec, _ := bench.ByName(name)
		b, err := spec.Build(soc.UserAsmConfig(), bench.ScalePaper)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := runWorkload(t, b, soc.ModelAtomic)
		if !bytes.Equal(out, b.Golden) {
			t.Fatalf("%s: paper-scale output mismatch (%d vs %d bytes)",
				name, len(out), len(b.Golden))
		}
	}
}
