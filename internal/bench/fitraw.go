package bench

import (
	"encoding/binary"
	"fmt"

	"armsefi/internal/asm"
)

// FITRawProbeName is the registry name of the L1 data-cache probe used to
// measure the raw per-bit FIT, as in Section VI of the paper.
const FITRawProbeName = "fitraw_probe"

// fitRawPattern is the byte written to every probe location.
const fitRawPattern = 0xA5

// FITRawBufBytes is the probe buffer size: exactly the L1 data cache
// capacity, so the fill claims the whole array.
const FITRawBufBytes = 32 << 10

// fitRawDelay returns the busy-wait iterations between fill and readback —
// the exposure window during which beam strikes accumulate in the resident
// lines.
func fitRawDelay(s Scale) int {
	switch s {
	case ScaleTiny:
		return 20_000
	case ScaleSmall:
		return 100_000
	default:
		return 400_000
	}
}

// FITRawProbe is the Section VI cache-characterisation workload: fill the
// L1 data cache byte-by-byte with a known pattern, wait, read it back, and
// report mismatches. Under the beam simulator its detection rate per
// fluence yields the measured FIT_raw per bit.
var FITRawProbe = register(Spec{
	Name:            FITRawProbeName,
	InputDesc:       "L1D-sized pattern buffer (32 KB)",
	Characteristics: "Cache characterisation probe",
	build:           buildFITRawProbe,
})

func buildFITRawProbe(cfg asm.Config, scale Scale) (*Built, error) {
	src := prologue() + fmt.Sprintf(`
.equ BUFSZ, %d
.equ PATTERN, %d
.equ DELAY, %d
	ldr r0, =patbuf
	ldr r1, =BUFSZ
	mov r2, #PATTERN
	mov r3, #0
fill:
	strb r2, [r0, r3]
	add r3, #1
	cmp r3, r1
	blt fill
	; exposure window
	ldr r3, =DELAY
delay:
	sub r3, #1
	cmp r3, #0
	bgt delay
	; readback and compare
	mov r3, #0
	mov r4, #0          ; mismatch count
	mvn r7, #0          ; first mismatch index (-1)
rb:
	ldrb r6, [r0, r3]
	cmp r6, #PATTERN
	beq rb_next
	add r4, #1
	cmn r7, #1
	moveq r7, r3
rb_next:
	add r3, #1
	cmp r3, r1
	blt rb
	ldr r0, =outbuf
	str r4, [r0]
	str r7, [r0, #4]
	mov r5, #8
	b finish
`, FITRawBufBytes, fitRawPattern, fitRawDelay(scale)) + exitSnippet + fmt.Sprintf(`
.data
outbuf: .space 8
.align 32
patbuf: .space %d
`, FITRawBufBytes)
	prog, err := assemble("fitraw.s", src, cfg)
	if err != nil {
		return nil, err
	}
	golden := binary.LittleEndian.AppendUint32(nil, 0)
	golden = binary.LittleEndian.AppendUint32(golden, 0xFFFFFFFF)
	return &Built{
		Program:   prog,
		InputAddr: prog.MustSymbol("patbuf"),
		Input:     nil,
		Golden:    golden,
	}, nil
}

// FITRawMismatches decodes a probe run's output into (count, firstIndex).
func FITRawMismatches(output []byte) (uint32, uint32, error) {
	if len(output) != 8 {
		return 0, 0, fmt.Errorf("bench: probe output has %d bytes, want 8", len(output))
	}
	return binary.LittleEndian.Uint32(output), binary.LittleEndian.Uint32(output[4:]), nil
}
