package bench

import (
	"encoding/binary"
	"fmt"

	"armsefi/internal/asm"
	"armsefi/internal/soc"
)

// prologue is the common workload prelude: stack setup at the platform's
// user stack top.
func prologue() string {
	return fmt.Sprintf(".equ STACK_TOP, %d\n.text\n_start:\n\tldr sp, =STACK_TOP\n", soc.UserStackTop)
}

// CRC32 sizes per scale (the paper uses a 26.6 MB file; the platform DRAM
// caps the paper scale at 1 MB, preserving the CPU-bound streaming
// character).
func crc32Len(s Scale) int {
	switch s {
	case ScaleTiny:
		return 8 << 10
	case ScaleSmall:
		return 64 << 10
	default:
		return 1 << 20
	}
}

// CRC32 is the cyclic-redundancy-check workload of Table III.
var CRC32 = register(Spec{
	Name:            "crc32",
	InputDesc:       "26.6 MB file (scaled: 8 KB / 64 KB / 1 MB)",
	Characteristics: "CPU intensive",
	build:           buildCRC32,
})

const crc32Poly = 0xEDB88320

// refCRC32 is the native reference: the reflected IEEE CRC-32 exactly as
// the assembly computes it.
func refCRC32(data []byte) uint32 {
	var tab [256]uint32
	for i := range tab {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = crc32Poly ^ c>>1
			} else {
				c >>= 1
			}
		}
		tab[i] = c
	}
	crc := ^uint32(0)
	for _, b := range data {
		crc = crc>>8 ^ tab[(crc^uint32(b))&0xFF]
	}
	return ^crc
}

func buildCRC32(cfg asm.Config, scale Scale) (*Built, error) {
	n := crc32Len(scale)
	src := prologue() + fmt.Sprintf(`
.equ LEN, %d
	; build the reflected CRC-32 table
	ldr r0, =crctab
	ldr r9, =0xEDB88320
	mov r1, #0
tab_i:
	mov r2, r1
	mov r3, #8
tab_k:
	tst r2, #1
	lsr r2, r2, #1
	eorne r2, r2, r9
	sub r3, #1
	cmp r3, #0
	bgt tab_k
	str r2, [r0, r1, lsl #2]
	add r1, #1
	cmp r1, #256
	blt tab_i
	; stream the input
	mvn r4, #0
	ldr r6, =input
	ldr r8, =LEN
crc_loop:
	ldrb r2, [r6]
	eor r2, r2, r4
	and r2, r2, #0xff
	ldr r2, [r0, r2, lsl #2]
	lsr r4, r4, #8
	eor r4, r4, r2
	add r6, #1
	sub r8, #1
	cmp r8, #0
	bgt crc_loop
	mvn r4, r4
	ldr r0, =outbuf
	str r4, [r0]
	mov r5, #4
	b finish
`, n) + exitSnippet + `
.data
crctab: .space 1024
outbuf: .space 8
input:  .space LEN
`
	prog, err := assemble("crc32.s", src, cfg)
	if err != nil {
		return nil, err
	}
	input := newRNG(0xC0FFEE01).bytes(n)
	golden := binary.LittleEndian.AppendUint32(nil, refCRC32(input))
	return &Built{
		Program:   prog,
		InputAddr: prog.MustSymbol("input"),
		Input:     input,
		Golden:    golden,
	}, nil
}
