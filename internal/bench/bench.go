// Package bench implements the thirteen MiBench-derived workloads of the
// paper's Table III, plus the FIT-raw cache probe of Section VI, as real
// machine code for the simulated platform. Each workload ships with a
// native Go reference implementation that computes the golden output the
// experiments compare against (and doubles as the "software native" row of
// Table I).
//
// Because the simulated platform is far slower than the authors' testbed,
// input sizes are scaled: ScaleTiny for test suites and benchmarks,
// ScaleSmall for fuller runs, and ScalePaper for the closest practical
// approximation of Table III (capped by the platform's 4 MB DRAM). The
// computational character of every workload — CPU-, memory-, or
// control-intensive; small or large footprint — is preserved at all scales.
package bench

import (
	"fmt"
	"sort"

	"armsefi/internal/asm"
)

// Scale selects workload input sizes.
type Scale uint8

// Input scales.
const (
	ScaleTiny Scale = 1 + iota
	ScaleSmall
	ScalePaper
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScalePaper:
		return "paper"
	default:
		return fmt.Sprintf("scale(%d)", uint8(s))
	}
}

// Built is a workload instantiated at a scale, ready to load into a
// machine.
type Built struct {
	Spec    Spec
	Scale   Scale
	Program *asm.Program
	// Input is poked into physical memory at InputAddr before the run (the
	// experiment host loading the input vector).
	InputAddr uint32
	Input     []byte
	// Golden is the expected UART output, computed by the Go reference.
	Golden []byte
}

// Spec describes one workload (one row of Table III).
type Spec struct {
	Name            string
	InputDesc       string // paper's input description
	Characteristics string // paper's characterisation
	// SmallFootprint marks the workloads the paper identifies as leaving
	// most of the cache hierarchy unused (Dijkstra, MatMul, StringSearch,
	// the Susans) — the drivers of the beam System-Crash surplus.
	SmallFootprint bool

	build func(cfg asm.Config, scale Scale) (*Built, error)
}

// Build instantiates the workload at a scale for the platform's user-space
// assembler configuration.
func (s Spec) Build(cfg asm.Config, scale Scale) (*Built, error) {
	b, err := s.build(cfg, scale)
	if err != nil {
		return nil, fmt.Errorf("bench: building %s/%s: %w", s.Name, scale, err)
	}
	b.Spec = s
	b.Scale = scale
	return b, nil
}

// registry holds all workloads keyed by name.
var registry = map[string]Spec{}

func register(s Spec) Spec {
	if _, dup := registry[s.Name]; dup {
		panic("bench: duplicate workload " + s.Name)
	}
	registry[s.Name] = s
	return s
}

// ByName returns a workload spec.
func ByName(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// All returns the thirteen Table III workloads in the paper's order.
func All() []Spec {
	names := []string{
		"crc32", "dijkstra", "fft", "jpeg_c", "jpeg_d", "matmul", "qsort",
		"rijndael_e", "rijndael_d", "stringsearch", "susan_c", "susan_e", "susan_s",
	}
	out := make([]Spec, 0, len(names))
	for _, n := range names {
		s, ok := registry[n]
		if !ok {
			panic("bench: workload not registered: " + n)
		}
		out = append(out, s)
	}
	return out
}

// Names returns every registered workload name (including the FIT-raw
// probe), sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// rng is a splitmix64 generator: deterministic input data independent of Go
// library versions.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (r *rng) bytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		if i%8 == 0 {
			r.next()
		}
		out[i] = byte(r.state >> (8 * (i % 8)))
	}
	return out
}

func (r *rng) uint32n(n uint32) uint32 {
	return uint32(r.next() % uint64(n))
}

// float32unit returns a float in [0, 1) with a short mantissa so that
// arithmetic stays well-conditioned.
func (r *rng) float32unit() float32 {
	return float32(r.next()%(1<<20)) / (1 << 20)
}

// assemble builds a program and resolves the conventional input symbol.
func assemble(name, src string, cfg asm.Config) (*asm.Program, error) {
	prog, err := asm.Assemble(name, src, cfg)
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// exitSnippet is the common epilogue: write outbuf and exit(0). Workloads
// jump to `finish` with r5 = number of output bytes.
const exitSnippet = `
; common epilogue: r5 = output length in bytes
finish:
	ldr r0, =outbuf
	mov r1, r5
	mov r7, #2
	svc #0
	mov r0, #0
	mov r7, #1
	svc #0
`
