package bench

import (
	"bytes"
	"hash/crc32"
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"armsefi/internal/soc"
)

// The native reference implementations are the golden oracles of every
// experiment, so they get their own independent checks against stdlib or
// textbook definitions.

func TestRefCRC32MatchesStdlib(t *testing.T) {
	f := func(data []byte) bool {
		return refCRC32(data) == crc32.ChecksumIEEE(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRefHorspoolMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alphabet := []byte("abcab")
	for i := 0; i < 2000; i++ {
		text := make([]byte, rng.Intn(60))
		for j := range text {
			text[j] = alphabet[rng.Intn(len(alphabet))]
		}
		pat := make([]byte, 1+rng.Intn(6))
		for j := range pat {
			pat[j] = alphabet[rng.Intn(len(alphabet))]
		}
		want := int32(bytes.Index(text, pat))
		if len(pat) == 0 {
			want = -1
		}
		if got := refHorspool(pat, text); got != want {
			t.Fatalf("refHorspool(%q, %q) = %d, want %d", pat, text, got, want)
		}
	}
}

func TestRefDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 12
	adj := make([]uint32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Intn(3) == 0 {
				adj[i*n+j] = 1 + uint32(rng.Intn(50))
			}
		}
	}
	// Floyd-Warshall ground truth.
	const inf = int64(dijkstraInf)
	dist := make([]int64, n*n)
	for i := range dist {
		dist[i] = inf
	}
	for i := 0; i < n; i++ {
		dist[i*n+i] = 0
		for j := 0; j < n; j++ {
			if w := adj[i*n+j]; w != 0 {
				dist[i*n+j] = int64(w)
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := dist[i*n+k] + dist[k*n+j]; dist[i*n+k] < inf && dist[k*n+j] < inf && d < dist[i*n+j] {
					dist[i*n+j] = d
				}
			}
		}
	}
	got := refDijkstra(adj, n, n)
	for src := 0; src < n; src++ {
		want := uint32(dijkstraInf)
		if dist[src*n+n-1] < inf {
			want = uint32(dist[src*n+n-1])
		}
		if got[src] != want {
			t.Errorf("dist(%d -> %d) = %d, want %d", src, n-1, got[src], want)
		}
	}
}

func TestRefFFTMatchesDFT(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(13))
	a := make([]float32, 2*n)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
	}
	tw := make([]float32, n)
	for j := 0; j < n/2; j++ {
		ang := -2 * math.Pi * float64(j) / float64(n)
		tw[2*j] = float32(math.Cos(ang))
		tw[2*j+1] = float32(math.Sin(ang))
	}
	work := append([]float32(nil), a...)
	refFFT(work, tw, n)
	// Naive DFT in float64 for comparison.
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			x := complex(float64(a[2*j]), float64(a[2*j+1]))
			want += x * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		got := complex(float64(work[2*k]), float64(work[2*k+1]))
		if cmplx.Abs(got-want) > 1e-3*float64(n) {
			t.Fatalf("bin %d: fft %v vs dft %v", k, got, want)
		}
	}
}

func TestRefJpegRoundTripQuality(t *testing.T) {
	const w, h = 32, 32
	img := jpegImage(w, h)
	stream := refJpegEncode(img, w, h)
	back := refJpegDecode(stream, w, h)
	if len(back) != len(img) {
		t.Fatalf("decoded %d bytes, want %d", len(back), len(img))
	}
	// Lossy codec: require a sane PSNR rather than equality.
	var mse float64
	for i := range img {
		d := float64(img[i]) - float64(back[i])
		mse += d * d
	}
	mse /= float64(len(img))
	psnr := 10 * math.Log10(255*255/mse)
	if psnr < 25 {
		t.Errorf("round-trip PSNR = %.1f dB, implausibly low", psnr)
	}
	// The stream must be framed in triples ending with an EOB per block.
	if len(stream)%3 != 0 {
		t.Error("stream not triple-framed")
	}
}

func TestRefSusanBordersAndRange(t *testing.T) {
	const w, h = 16, 12
	img := susanImage(w, h)
	sm := refSusanSmooth(img, w, h)
	us := refSusanUSAN(img, w, h, susanEdgeT, susanEdgeG, susanEdgeAmp)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			border := x < 2 || y < 2 || x >= w-2 || y >= h-2
			if border && (sm[y*w+x] != 0 || us[y*w+x] != 0) {
				t.Fatalf("border pixel (%d,%d) not zero", x, y)
			}
		}
	}
	// The bright rectangle must produce at least some edge response.
	any := false
	for _, v := range us {
		if v > 0 {
			any = true
		}
	}
	if !any {
		t.Error("edge detector found nothing in the synthetic image")
	}
}

func TestRefMatMulAgainstFloat64(t *testing.T) {
	const n = 8
	r := newRNG(1)
	a := make([]float32, n*n)
	b := make([]float32, n*n)
	for i := range a {
		a[i], b[i] = r.float32unit(), r.float32unit()
	}
	c := refMatMul(a, b, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for k := 0; k < n; k++ {
				want += float64(a[i*n+k]) * float64(b[k*n+j])
			}
			if math.Abs(float64(c[i*n+j])-want) > 1e-4 {
				t.Fatalf("c[%d][%d] = %v, want ~%v", i, j, c[i*n+j], want)
			}
		}
	}
}

func TestBuiltWorkloadsAreDeterministic(t *testing.T) {
	for _, spec := range All() {
		a, err := spec.Build(soc.UserAsmConfig(), ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		b, err := spec.Build(soc.UserAsmConfig(), ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Program.Text, b.Program.Text) ||
			!bytes.Equal(a.Input, b.Input) || !bytes.Equal(a.Golden, b.Golden) {
			t.Errorf("%s: build not deterministic", spec.Name)
		}
	}
}

func TestScalesGrowMonotonically(t *testing.T) {
	for _, spec := range All() {
		tiny, err := spec.Build(soc.UserAsmConfig(), ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		small, err := spec.Build(soc.UserAsmConfig(), ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		if len(small.Input)+len(small.Golden) <= 0 {
			t.Errorf("%s: empty small build", spec.Name)
		}
		if len(small.Input) < len(tiny.Input) {
			t.Errorf("%s: small input (%d) smaller than tiny (%d)",
				spec.Name, len(small.Input), len(tiny.Input))
		}
	}
}

func TestQsortGoldenIsSorted(t *testing.T) {
	b, err := Qsort.Build(soc.UserAsmConfig(), ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, len(b.Golden)/4)
	for i := range vals {
		bits := uint32(b.Golden[4*i]) | uint32(b.Golden[4*i+1])<<8 |
			uint32(b.Golden[4*i+2])<<16 | uint32(b.Golden[4*i+3])<<24
		vals[i] = math.Float32frombits(bits)
	}
	if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) {
		t.Error("qsort golden output is not sorted")
	}
}

func TestFITRawProbeGolden(t *testing.T) {
	b, err := FITRawProbe.Build(soc.UserAsmConfig(), ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	count, first, err := FITRawMismatches(b.Golden)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 || first != 0xFFFFFFFF {
		t.Errorf("golden probe output = (%d, %#x)", count, first)
	}
	if _, _, err := FITRawMismatches([]byte{1, 2}); err == nil {
		t.Error("short output accepted")
	}
}
