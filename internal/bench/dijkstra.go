package bench

import (
	"encoding/binary"
	"fmt"

	"armsefi/internal/asm"
)

// Dijkstra sizes: node count and number of source nodes (the paper runs 100
// paths over a 100x100 adjacency matrix).
func dijkstraSize(s Scale) (n, nsrc int) {
	switch s {
	case ScaleTiny:
		return 20, 8
	case ScaleSmall:
		return 48, 24
	default:
		return 100, 100
	}
}

// Dijkstra is the shortest-path workload of Table III.
var Dijkstra = register(Spec{
	Name:            "dijkstra",
	InputDesc:       "100x100 integer adjacency matrix (scaled: 20/48/100 nodes)",
	Characteristics: "Control intensive, memory intensive",
	SmallFootprint:  true,
	build:           buildDijkstra,
})

const dijkstraInf = 0x7FFFFFFF

// refDijkstra computes dist(src, n-1) for each source with the exact
// selection and relaxation order of the assembly (first strict minimum).
func refDijkstra(adj []uint32, n, nsrc int) []uint32 {
	out := make([]uint32, nsrc)
	dist := make([]uint32, n)
	visited := make([]bool, n)
	for src := 0; src < nsrc; src++ {
		for i := range dist {
			dist[i] = dijkstraInf
			visited[i] = false
		}
		dist[src] = 0
		for it := 0; it < n; it++ {
			best := -1
			bestDist := uint32(dijkstraInf)
			for i := 0; i < n; i++ {
				if !visited[i] && dist[i] < bestDist {
					best, bestDist = i, dist[i]
				}
			}
			if best < 0 {
				break
			}
			visited[best] = true
			row := adj[best*n : best*n+n]
			for i, w := range row {
				if w == 0 || visited[i] {
					continue
				}
				if cand := bestDist + w; cand < dist[i] {
					dist[i] = cand
				}
			}
		}
		out[src] = dist[n-1]
	}
	return out
}

func buildDijkstra(cfg asm.Config, scale Scale) (*Built, error) {
	n, nsrc := dijkstraSize(scale)
	src := prologue() + fmt.Sprintf(`
.equ N, %d
.equ NSRC, %d
.equ INF, 0x7FFFFFFF
	mov r10, #0            ; source node
src_loop:
	ldr r0, =dist
	ldr r1, =visited
	mov r2, #0
	ldr r3, =INF
	mov r4, #0
init_loop:
	str r3, [r0, r2, lsl #2]
	str r4, [r1, r2, lsl #2]
	add r2, #1
	cmp r2, #N
	blt init_loop
	mov r2, #0
	str r2, [r0, r10, lsl #2]  ; dist[src] = 0
	mov r9, #0                 ; iteration count
iter_loop:
	mvn r6, #0                 ; best index = -1
	ldr r7, =INF               ; best distance
	mov r2, #0
find_loop:
	ldr r3, [r1, r2, lsl #2]
	cmp r3, #0
	bne find_next
	ldr r3, [r0, r2, lsl #2]
	cmp r3, r7
	bcs find_next
	mov r7, r3
	mov r6, r2
find_next:
	add r2, #1
	cmp r2, #N
	blt find_loop
	cmn r6, #1
	beq src_done               ; no reachable unvisited node
	mov r3, #1
	str r3, [r1, r6, lsl #2]   ; visited[best] = 1
	ldr r4, =input
	ldr r5, =N*4
	mul r5, r6, r5
	add r4, r4, r5             ; row base
	mov r2, #0
relax_loop:
	ldr r3, [r4, r2, lsl #2]
	cmp r3, #0
	beq relax_next
	ldr r5, [r1, r2, lsl #2]
	cmp r5, #0
	bne relax_next
	add r3, r3, r7
	ldr r5, [r0, r2, lsl #2]
	cmp r3, r5
	bcs relax_next
	str r3, [r0, r2, lsl #2]
relax_next:
	add r2, #1
	cmp r2, #N
	blt relax_loop
	add r9, #1
	cmp r9, #N
	blt iter_loop
src_done:
	ldr r0, =dist
	ldr r3, =N-1
	ldr r3, [r0, r3, lsl #2]
	ldr r0, =outbuf
	str r3, [r0, r10, lsl #2]
	add r10, #1
	cmp r10, #NSRC
	blt src_loop
	ldr r5, =NSRC*4
	b finish
`, n, nsrc) + exitSnippet + fmt.Sprintf(`
.data
dist:    .space %d
visited: .space %d
outbuf:  .space %d
input:   .space %d
`, 4*n, 4*n, 4*nsrc, 4*n*n)
	prog, err := assemble("dijkstra.s", src, cfg)
	if err != nil {
		return nil, err
	}
	r := newRNG(0xD17C5742)
	adj := make([]uint32, n*n)
	input := make([]byte, 4*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var w uint32
			if i != j && r.uint32n(100) < 35 { // sparse-ish graph
				w = 1 + r.uint32n(255)
			}
			adj[i*n+j] = w
			binary.LittleEndian.PutUint32(input[4*(i*n+j):], w)
		}
	}
	dists := refDijkstra(adj, n, nsrc)
	golden := make([]byte, 0, 4*nsrc)
	for _, d := range dists {
		golden = binary.LittleEndian.AppendUint32(golden, d)
	}
	return &Built{
		Program:   prog,
		InputAddr: prog.MustSymbol("input"),
		Input:     input,
		Golden:    golden,
	}, nil
}
