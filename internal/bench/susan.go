package bench

import (
	"fmt"

	"armsefi/internal/asm"
)

// Susan image sizes. The paper's 76x95 input is already tiny, so it is the
// paper scale; lower scales shrink further for fast campaigns.
func susanSize(s Scale) (w, h int) {
	switch s {
	case ScaleTiny:
		return 32, 40
	case ScaleSmall:
		return 56, 64
	default:
		return 76, 95
	}
}

// susanImage generates a deterministic synthetic grayscale image with
// smooth gradients, rectangular features (corners/edges to detect), and
// mild noise.
func susanImage(w, h int) []byte {
	r := newRNG(0x5A5A1337)
	img := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := uint32(x*3+y*2) & 0x7F
			if x > w/4 && x < 3*w/4 && y > h/4 && y < 3*h/4 {
				v += 90 // bright rectangle: edges and corners
			}
			v += r.uint32n(7)
			if v > 255 {
				v = 255
			}
			img[y*w+x] = byte(v)
		}
	}
	return img
}

// Susan thresholds.
const (
	susanEdgeT    = 20 // brightness-similarity threshold (edges)
	susanEdgeG    = 18 // geometric threshold 3/4 * 24
	susanEdgeAmp  = 10
	susanCornT    = 60
	susanCornG    = 12 // geometric threshold 1/2 * 24
	susanCornAmp  = 20
	susanSmoothLn = 32 // |diff| >= 32 contributes zero weight
)

// refSusanUSAN computes the generic USAN response map: for each interior
// pixel, count 5x5 neighbours within t of the centre, and respond
// (g-n)*amp when n < g.
func refSusanUSAN(img []byte, w, h, t, g, amp int) []byte {
	out := make([]byte, w*h)
	for y := 2; y < h-2; y++ {
		for x := 2; x < w-2; x++ {
			c := int(img[y*w+x])
			n := 0
			for dy := -2; dy <= 2; dy++ {
				for dx := -2; dx <= 2; dx++ {
					p := int(img[(y+dy)*w+x+dx])
					d := p - c
					if d < 0 {
						d = -d
					}
					if d < t {
						n++
					}
				}
			}
			if n < g {
				out[y*w+x] = byte((g - n) * amp)
			}
		}
	}
	return out
}

// refSusanSmooth computes the brightness-weighted 5x5 smoothing map.
func refSusanSmooth(img []byte, w, h int) []byte {
	out := make([]byte, w*h)
	for y := 2; y < h-2; y++ {
		for x := 2; x < w-2; x++ {
			c := int(img[y*w+x])
			num, den := 0, 0
			for dy := -2; dy <= 2; dy++ {
				for dx := -2; dx <= 2; dx++ {
					p := int(img[(y+dy)*w+x+dx])
					d := p - c
					if d < 0 {
						d = -d
					}
					wgt := 0
					if d < susanSmoothLn {
						wgt = 255 - 8*d
					}
					num += p * wgt
					den += wgt
				}
			}
			out[y*w+x] = byte(uint32(num) / uint32(den))
		}
	}
	return out
}

// susanUSANAsm emits the counting-kernel source shared by the edge and
// corner detectors.
func susanUSANAsm(w, h, t, g, amp int) string {
	return prologue() + fmt.Sprintf(`
.equ W, %d
.equ H, %d
.equ T, %d
.equ G, %d
.equ AMP, %d
	ldr r0, =input
	ldr r1, =outbuf
	mov r10, #2
y_loop:
	mov r9, #2
x_loop:
	ldr r3, =W
	mul r4, r10, r3
	add r4, r4, r9          ; centre index
	ldrb r5, [r0, r4]       ; c
	mov r6, #0              ; USAN count
	mvn r7, #1              ; dy = -2
dy_loop:
	mvn r8, #1              ; dx = -2
dx_loop:
	ldr r3, =W
	add r2, r10, r7
	mul r2, r2, r3
	add r3, r9, r8
	add r2, r2, r3
	ldrb r2, [r0, r2]
	sub r2, r2, r5
	cmp r2, #0
	rsblt r2, r2, #0
	cmp r2, #T
	addlt r6, r6, #1
	add r8, #1
	cmp r8, #3
	blt dx_loop
	add r7, #1
	cmp r7, #3
	blt dy_loop
	mov r2, #0
	cmp r6, #G
	bge store_out
	rsb r2, r6, #G
	mov r3, #AMP
	mul r2, r2, r3
store_out:
	strb r2, [r1, r4]
	add r9, #1
	ldr r3, =W-2
	cmp r9, r3
	blt x_loop
	add r10, #1
	ldr r3, =H-2
	cmp r10, r3
	blt y_loop
	ldr r5, =W*H
	b finish
`, w, h, t, g, amp) + exitSnippet + fmt.Sprintf(`
.data
outbuf: .space %d
input:  .space %d
`, w*h, w*h)
}

func buildSusanUSAN(cfg asm.Config, scale Scale, name string, t, g, amp int) (*Built, error) {
	w, h := susanSize(scale)
	prog, err := assemble(name+".s", susanUSANAsm(w, h, t, g, amp), cfg)
	if err != nil {
		return nil, err
	}
	img := susanImage(w, h)
	return &Built{
		Program:   prog,
		InputAddr: prog.MustSymbol("input"),
		Input:     img,
		Golden:    refSusanUSAN(img, w, h, t, g, amp),
	}, nil
}

// SusanC is the corner-detection workload of Table III.
var SusanC = register(Spec{
	Name:            "susan_c",
	InputDesc:       "76x95 pixels, 7.3 KB (scaled: 32x40 / 56x64 / 76x95)",
	Characteristics: "CPU intensive",
	SmallFootprint:  true,
	build: func(cfg asm.Config, scale Scale) (*Built, error) {
		return buildSusanUSAN(cfg, scale, "susan_c", susanCornT, susanCornG, susanCornAmp)
	},
})

// SusanE is the edge-detection workload of Table III.
var SusanE = register(Spec{
	Name:            "susan_e",
	InputDesc:       "76x95 pixels, 7.3 KB (scaled: 32x40 / 56x64 / 76x95)",
	Characteristics: "CPU intensive",
	SmallFootprint:  true,
	build: func(cfg asm.Config, scale Scale) (*Built, error) {
		return buildSusanUSAN(cfg, scale, "susan_e", susanEdgeT, susanEdgeG, susanEdgeAmp)
	},
})

// SusanS is the structure-preserving smoothing workload of Table III.
var SusanS = register(Spec{
	Name:            "susan_s",
	InputDesc:       "76x95 pixels, 7.3 KB (scaled: 32x40 / 56x64 / 76x95)",
	Characteristics: "CPU intensive",
	SmallFootprint:  true,
	build:           buildSusanS,
})

func buildSusanS(cfg asm.Config, scale Scale) (*Built, error) {
	w, h := susanSize(scale)
	src := prologue() + fmt.Sprintf(`
.equ W, %d
.equ H, %d
.equ LN, %d
	ldr r0, =input
	ldr r1, =outbuf
	mov r10, #2
sy_loop:
	mov r9, #2
sx_loop:
	ldr r3, =W
	mul r4, r10, r3
	add r4, r4, r9
	ldrb r5, [r0, r4]       ; c
	mov r6, #0              ; numerator
	mov r11, #0             ; denominator
	mvn r7, #1
sdy_loop:
	mvn r8, #1
sdx_loop:
	ldr r3, =W
	add r2, r10, r7
	mul r2, r2, r3
	add r3, r9, r8
	add r2, r2, r3
	ldrb r2, [r0, r2]       ; p
	sub r3, r2, r5
	cmp r3, #0
	rsblt r3, r3, #0        ; |p - c|
	mov r12, #0
	cmp r3, #LN
	bge sw_done
	lsl r12, r3, #3
	rsb r12, r12, #255      ; weight = 255 - 8*d
sw_done:
	mla r6, r2, r12         ; num += p * w
	add r11, r11, r12
	add r8, #1
	cmp r8, #3
	blt sdx_loop
	add r7, #1
	cmp r7, #3
	blt sdy_loop
	udiv r2, r6, r11
	strb r2, [r1, r4]
	add r9, #1
	ldr r3, =W-2
	cmp r9, r3
	blt sx_loop
	add r10, #1
	ldr r3, =H-2
	cmp r10, r3
	blt sy_loop
	ldr r5, =W*H
	b finish
`, w, h, susanSmoothLn) + exitSnippet + fmt.Sprintf(`
.data
outbuf: .space %d
input:  .space %d
`, w*h, w*h)
	prog, err := assemble("susan_s.s", src, cfg)
	if err != nil {
		return nil, err
	}
	img := susanImage(w, h)
	return &Built{
		Program:   prog,
		InputAddr: prog.MustSymbol("input"),
		Input:     img,
		Golden:    refSusanSmooth(img, w, h),
	}, nil
}
