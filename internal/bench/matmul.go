package bench

import (
	"encoding/binary"
	"fmt"
	"math"

	"armsefi/internal/asm"
)

// MatMul sizes (paper: 128x128 single-precision floats).
func matmulSize(s Scale) int {
	switch s {
	case ScaleTiny:
		return 16
	case ScaleSmall:
		return 32
	default:
		return 128
	}
}

// MatMul is the matrix-multiply workload of Table III.
var MatMul = register(Spec{
	Name:            "matmul",
	InputDesc:       "128x128 single-precision floats (scaled: 16/32/128)",
	Characteristics: "Memory intensive",
	SmallFootprint:  true,
	build:           buildMatMul,
})

// refMatMul computes C = A*B with float32 accumulation in the exact order
// of the assembly inner loop.
func refMatMul(a, b []float32, n int) []float32 {
	c := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = acc
		}
	}
	return c
}

func buildMatMul(cfg asm.Config, scale Scale) (*Built, error) {
	n := matmulSize(scale)
	src := prologue() + fmt.Sprintf(`
.equ N, %d
	ldr r0, =input          ; A
	ldr r1, =input + N*N*4  ; B
	ldr r2, =outbuf         ; C
	mov r10, #0             ; i
row_loop:
	mov r9, #0              ; j
col_loop:
	mov r8, #0              ; k
	mov r7, #0              ; acc = 0.0f
	ldr r4, =N*4
	mul r4, r10, r4
	add r4, r0, r4          ; &A[i*N]
	add r5, r1, r9, lsl #2  ; &B[0*N + j]
inner_loop:
	ldr r3, [r4, r8, lsl #2]     ; A[i*N+k]
	ldr r6, [r5]                 ; B[k*N+j]
	fmul r3, r3, r6
	fadd r7, r7, r3
	add r5, r5, #N*4
	add r8, #1
	cmp r8, #N
	blt inner_loop
	ldr r4, =N*4
	mul r4, r10, r4
	add r4, r2, r4
	str r7, [r4, r9, lsl #2]     ; C[i*N+j]
	add r9, #1
	cmp r9, #N
	blt col_loop
	add r10, #1
	cmp r10, #N
	blt row_loop
	ldr r5, =N*N*4
	b finish
`, n) + exitSnippet + fmt.Sprintf(`
.data
outbuf: .space %d
input:  .space %d
`, 4*n*n, 8*n*n)
	prog, err := assemble("matmul.s", src, cfg)
	if err != nil {
		return nil, err
	}
	r := newRNG(0x3A73A701)
	a := make([]float32, n*n)
	b := make([]float32, n*n)
	input := make([]byte, 8*n*n)
	for i := range a {
		a[i] = r.float32unit()
		binary.LittleEndian.PutUint32(input[4*i:], math.Float32bits(a[i]))
	}
	for i := range b {
		b[i] = r.float32unit()
		binary.LittleEndian.PutUint32(input[4*(n*n+i):], math.Float32bits(b[i]))
	}
	c := refMatMul(a, b, n)
	golden := make([]byte, 0, 4*n*n)
	for _, v := range c {
		golden = binary.LittleEndian.AppendUint32(golden, math.Float32bits(v))
	}
	return &Built{
		Program:   prog,
		InputAddr: prog.MustSymbol("input"),
		Input:     input,
		Golden:    golden,
	}, nil
}
