package bench

import (
	"encoding/binary"
	"fmt"

	"armsefi/internal/asm"
)

// StringSearch record geometry: fixed-size NUL-terminated slots.
const (
	ssPatSlot  = 16
	ssSentSlot = 64
)

// StringSearch pair counts (paper: 1332 words in 1332 sentences).
func stringSearchPairs(s Scale) int {
	switch s {
	case ScaleTiny:
		return 48
	case ScaleSmall:
		return 192
	default:
		return 1332
	}
}

// StringSearch is the Horspool substring-search workload of Table III.
var StringSearch = register(Spec{
	Name:            "stringsearch",
	InputDesc:       "1332 words / 1332 sentences (scaled: 48/192/1332 pairs)",
	Characteristics: "Memory intensive and Control intensive",
	SmallFootprint:  true,
	build:           buildStringSearch,
})

// refHorspool returns the first match index of pat in text, or -1, using
// the exact skip-table semantics of the assembly.
func refHorspool(pat, text []byte) int32 {
	m, n := len(pat), len(text)
	if m == 0 || m > n {
		return -1
	}
	var skip [256]int
	for i := range skip {
		skip[i] = m
	}
	for i := 0; i < m-1; i++ {
		skip[pat[i]] = m - 1 - i
	}
	pos := 0
	for pos <= n-m {
		k := 0
		for k < m && pat[k] == text[pos+k] {
			k++
		}
		if k == m {
			return int32(pos)
		}
		pos += skip[text[pos+m-1]]
	}
	return -1
}

func cstr(b []byte) []byte {
	for i, c := range b {
		if c == 0 {
			return b[:i]
		}
	}
	return b
}

func buildStringSearch(cfg asm.Config, scale Scale) (*Built, error) {
	nw := stringSearchPairs(scale)
	src := prologue() + fmt.Sprintf(`
.equ NW, %d
.equ PSZ, %d
.equ SSZ, %d
	mov r10, #0              ; pair index
pair_loop:
	ldr r0, =input
	mov r2, #PSZ
	mul r2, r10, r2
	add r0, r0, r2           ; pattern slot
	ldr r1, =input + NW*PSZ
	mov r2, #SSZ
	mul r2, r10, r2
	add r1, r1, r2           ; sentence slot
	; m = strlen(pattern), bounded by the slot
	mov r2, #0
mlen_loop:
	ldrb r3, [r0, r2]
	cmp r3, #0
	beq mlen_done
	add r2, #1
	cmp r2, #PSZ
	blt mlen_loop
mlen_done:
	mov r4, r2               ; m
	mov r2, #0
slen_loop:
	ldrb r3, [r1, r2]
	cmp r3, #0
	beq slen_done
	add r2, #1
	cmp r2, #SSZ
	blt slen_loop
slen_done:
	mov r5, r2               ; n
	mvn r9, #0               ; result = -1
	cmp r4, #0
	beq store_res
	cmp r4, r5
	bgt store_res
	; Horspool skip table
	ldr r6, =skiptab
	mov r2, #0
skip_init:
	str r4, [r6, r2, lsl #2]
	add r2, #1
	cmp r2, #256
	blt skip_init
	mov r2, #0
	sub r3, r4, #1           ; m-1
skip_fill:
	cmp r2, r3
	bge skip_done
	ldrb r7, [r0, r2]
	sub r8, r3, r2
	str r8, [r6, r7, lsl #2]
	add r2, #1
	b skip_fill
skip_done:
	mov r7, #0               ; pos
search_loop:
	sub r2, r5, r4
	cmp r7, r2
	bgt store_res
	mov r2, #0
cmp_loop:
	cmp r2, r4
	bge found
	ldrb r3, [r0, r2]
	add r8, r1, r7
	ldrb r8, [r8, r2]
	cmp r3, r8
	bne cmp_fail
	add r2, #1
	b cmp_loop
cmp_fail:
	add r8, r1, r7
	add r8, r8, r4
	ldrb r8, [r8, #-1]       ; text[pos+m-1]
	ldr r8, [r6, r8, lsl #2]
	add r7, r7, r8
	b search_loop
found:
	mov r9, r7
store_res:
	ldr r2, =outbuf
	str r9, [r2, r10, lsl #2]
	add r10, #1
	ldr r2, =NW
	cmp r10, r2
	blt pair_loop
	ldr r5, =NW*4
	b finish
`, nw, ssPatSlot, ssSentSlot) + exitSnippet + fmt.Sprintf(`
.data
skiptab: .space 1024
outbuf:  .space %d
input:   .space %d
`, 4*nw, nw*(ssPatSlot+ssSentSlot))
	prog, err := assemble("stringsearch.s", src, cfg)
	if err != nil {
		return nil, err
	}
	r := newRNG(0x57855EA7)
	letters := []byte("abcdefghijklmnopqrstuvwxyz ")
	input := make([]byte, nw*(ssPatSlot+ssSentSlot))
	pats := input[:nw*ssPatSlot]
	sents := input[nw*ssPatSlot:]
	golden := make([]byte, 0, 4*nw)
	for i := 0; i < nw; i++ {
		sent := sents[i*ssSentSlot : (i+1)*ssSentSlot]
		slen := int(20 + r.uint32n(ssSentSlot-21))
		for j := 0; j < slen; j++ {
			sent[j] = letters[r.uint32n(uint32(len(letters)))]
		}
		pat := pats[i*ssPatSlot : (i+1)*ssPatSlot]
		plen := int(3 + r.uint32n(8))
		if r.uint32n(2) == 0 {
			// Guaranteed hit: pattern is a substring of the sentence.
			off := int(r.uint32n(uint32(slen - plen)))
			copy(pat, sent[off:off+plen])
		} else {
			for j := 0; j < plen; j++ {
				pat[j] = letters[r.uint32n(uint32(len(letters)))]
			}
		}
		res := refHorspool(cstr(pat), cstr(sent))
		golden = binary.LittleEndian.AppendUint32(golden, uint32(res))
	}
	return &Built{
		Program:   prog,
		InputAddr: prog.MustSymbol("input"),
		Input:     input,
		Golden:    golden,
	}, nil
}
