package bench

import (
	"encoding/binary"
	"fmt"
	"math"

	"armsefi/internal/asm"
)

// FFT sizes (paper: 32768-point single-precision transform).
func fftSize(s Scale) int {
	switch s {
	case ScaleTiny:
		return 256
	case ScaleSmall:
		return 1024
	default:
		return 32768
	}
}

// FFT is the fast-Fourier-transform workload of Table III.
var FFT = register(Spec{
	Name:            "fft",
	InputDesc:       "32768-element float array (scaled: 256/1024/32768)",
	Characteristics: "Memory intensive",
	build:           buildFFT,
})

// refFFT performs the iterative radix-2 decimation-in-time transform with
// float32 arithmetic in exactly the assembly's operation order. a holds
// interleaved (re, im) pairs and tw the twiddle table (re, im per index).
func refFFT(a, tw []float32, n int) {
	// Bit-reverse permutation.
	logn := 0
	for 1<<logn < n {
		logn++
	}
	for i := 0; i < n; i++ {
		j := 0
		v := i
		for k := 0; k < logn; k++ {
			j = j<<1 | v&1
			v >>= 1
		}
		if i < j {
			a[2*i], a[2*j] = a[2*j], a[2*i]
			a[2*i+1], a[2*j+1] = a[2*j+1], a[2*i+1]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		half := length / 2
		step := n / length
		for i := 0; i < n; i += length {
			for j := 0; j < half; j++ {
				wr := tw[2*(j*step)]
				wi := tw[2*(j*step)+1]
				vr := a[2*(i+j+half)]
				vi := a[2*(i+j+half)+1]
				tr := vr*wr - vi*wi
				ti := vr*wi + vi*wr
				ur := a[2*(i+j)]
				ui := a[2*(i+j)+1]
				a[2*(i+j)] = ur + tr
				a[2*(i+j)+1] = ui + ti
				a[2*(i+j+half)] = ur - tr
				a[2*(i+j+half)+1] = ui - ti
			}
		}
	}
}

func buildFFT(cfg asm.Config, scale Scale) (*Built, error) {
	n := fftSize(scale)
	logn := 0
	for 1<<logn < n {
		logn++
	}
	src := prologue() + fmt.Sprintf(`
.equ N, %d
.equ LOGN, %d
	ldr r0, =input
	; bit-reverse permutation
	mov r1, #0
brv_loop:
	mov r2, #0
	mov r3, #0
	mov r4, r1
brv_inner:
	lsl r2, r2, #1
	tst r4, #1
	orrne r2, r2, #1
	lsr r4, r4, #1
	add r3, #1
	cmp r3, #LOGN
	blt brv_inner
	cmp r1, r2
	bge brv_next
	add r4, r0, r1, lsl #3
	add r5, r0, r2, lsl #3
	ldr r6, [r4]
	ldr r7, [r5]
	str r7, [r4]
	str r6, [r5]
	ldr r6, [r4, #4]
	ldr r7, [r5, #4]
	str r7, [r4, #4]
	str r6, [r5, #4]
brv_next:
	add r1, #1
	ldr r2, =N
	cmp r1, r2
	blt brv_loop
	; butterfly stages
	mov r10, #2            ; len
stage_loop:
	lsr r11, r10, #1       ; half
	ldr r2, =N
	udiv r12, r2, r10      ; twiddle stride
	mov r9, #0             ; block start
block_loop:
	mov r8, #0             ; j
bfly_loop:
	mul r2, r8, r12
	ldr r3, =input + N*8
	add r3, r3, r2, lsl #3
	ldr r4, [r3]           ; wr
	ldr r5, [r3, #4]       ; wi
	add r2, r9, r8
	add r3, r0, r2, lsl #3 ; &a[i+j]
	add r2, r2, r11
	add r2, r0, r2, lsl #3 ; &a[i+j+half]
	ldr r6, [r2]           ; vr
	ldr r7, [r2, #4]       ; vi
	fmul r1, r6, r4        ; vr*wr
	fmul r6, r6, r5        ; vr*wi
	fmul r5, r7, r5        ; vi*wi
	fmul r7, r7, r4        ; vi*wr
	fsub r1, r1, r5        ; tr
	fadd r6, r6, r7        ; ti
	ldr r4, [r3]           ; ur
	ldr r5, [r3, #4]       ; ui
	fadd r7, r4, r1
	str r7, [r3]
	fadd r7, r5, r6
	str r7, [r3, #4]
	fsub r7, r4, r1
	str r7, [r2]
	fsub r7, r5, r6
	str r7, [r2, #4]
	add r8, #1
	cmp r8, r11
	blt bfly_loop
	add r9, r9, r10
	ldr r2, =N
	cmp r9, r2
	blt block_loop
	lsl r10, r10, #1
	ldr r2, =N
	cmp r10, r2
	ble stage_loop
	; emit the transformed array
	ldr r1, =outbuf
	mov r2, #0
	ldr r4, =N*2
copy_loop:
	ldr r3, [r0, r2, lsl #2]
	str r3, [r1, r2, lsl #2]
	add r2, #1
	cmp r2, r4
	blt copy_loop
	ldr r5, =N*8
	b finish
`, n, logn) + exitSnippet + fmt.Sprintf(`
.data
outbuf: .space %d
input:  .space %d
`, 8*n, 8*n+8*n/2)
	prog, err := assemble("fft.s", src, cfg)
	if err != nil {
		return nil, err
	}
	r := newRNG(0xFF7C0DE5)
	a := make([]float32, 2*n)
	for i := range a {
		a[i] = r.float32unit()*2 - 1
	}
	tw := make([]float32, n) // n/2 complex twiddles
	for j := 0; j < n/2; j++ {
		ang := -2 * math.Pi * float64(j) / float64(n)
		tw[2*j] = float32(math.Cos(ang))
		tw[2*j+1] = float32(math.Sin(ang))
	}
	input := make([]byte, 0, 4*len(a)+4*len(tw))
	for _, v := range a {
		input = binary.LittleEndian.AppendUint32(input, math.Float32bits(v))
	}
	for _, v := range tw {
		input = binary.LittleEndian.AppendUint32(input, math.Float32bits(v))
	}
	work := append([]float32(nil), a...)
	refFFT(work, tw, n)
	golden := make([]byte, 0, 4*len(work))
	for _, v := range work {
		golden = binary.LittleEndian.AppendUint32(golden, math.Float32bits(v))
	}
	return &Built{
		Program:   prog,
		InputAddr: prog.MustSymbol("input"),
		Input:     input,
		Golden:    golden,
	}, nil
}
