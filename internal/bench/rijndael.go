package bench

import (
	"crypto/aes"
	"fmt"
	"strings"

	"armsefi/internal/asm"
)

// Rijndael sizes in bytes (paper: 3.2 MB file; capped by the data region).
func rijndaelLen(s Scale) int {
	switch s {
	case ScaleTiny:
		return 2 << 10
	case ScaleSmall:
		return 16 << 10
	default:
		return 256 << 10
	}
}

// Rijndael key used by both directions (any fixed key works; the workload
// is the cipher, not the key).
var rijndaelKey = []byte("reliability-key!")

// RijndaelE is the AES-128 encryption workload of Table III.
var RijndaelE = register(Spec{
	Name:            "rijndael_e",
	InputDesc:       "3.2 MB file (scaled: 2 KB / 16 KB / 256 KB)",
	Characteristics: "Memory intensive",
	build: func(cfg asm.Config, scale Scale) (*Built, error) {
		return buildRijndael(cfg, scale, false)
	},
})

// RijndaelD is the AES-128 decryption workload of Table III.
var RijndaelD = register(Spec{
	Name:            "rijndael_d",
	InputDesc:       "3.2 MB encrypted file (scaled: 2 KB / 16 KB / 256 KB)",
	Characteristics: "Memory intensive",
	build: func(cfg asm.Config, scale Scale) (*Built, error) {
		return buildRijndael(cfg, scale, true)
	},
})

// --- AES table generation (Go side) ---------------------------------------

// gmul multiplies in GF(2^8) with the AES polynomial.
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1B
		}
		b >>= 1
	}
	return p
}

// aesTables builds the S-box, its inverse, and the GF multiplication
// tables used by the unrolled MixColumns code.
func aesTables() (sbox, inv [256]byte, mul map[int][256]byte) {
	// Multiplicative inverse via brute force (256^2 is nothing at build
	// time), then the affine transform.
	var invEl [256]byte
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if gmul(byte(a), byte(b)) == 1 {
				invEl[a] = byte(b)
				break
			}
		}
	}
	for i := 0; i < 256; i++ {
		x := invEl[i]
		s := x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63
		sbox[i] = s
		inv[s] = byte(i)
	}
	mul = make(map[int][256]byte, 6)
	for _, n := range []int{2, 3, 9, 11, 13, 14} {
		var t [256]byte
		for i := 0; i < 256; i++ {
			t[i] = gmul(byte(i), byte(n))
		}
		mul[n] = t
	}
	return sbox, inv, mul
}

func rotl8(x byte, n uint) byte { return x<<n | x>>(8-n) }

// byteTable renders a labelled .byte table.
func byteTable(label string, data []byte) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", label)
	for i := 0; i < len(data); i += 16 {
		b.WriteString("\t.byte ")
		for j := i; j < i+16 && j < len(data); j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", data[j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// shiftRowsSrc returns the source index read into position i by ShiftRows
// (inv=false) or InvShiftRows (inv=true). State is column-major: index =
// row + 4*col.
func shiftRowsSrc(i int, inv bool) int {
	r := i & 3
	c := i >> 2
	if inv {
		return r + 4*((c-r+4)&3)
	}
	return r + 4*((c+r)&3)
}

// subShiftAsm emits the unrolled SubBytes+ShiftRows (state -> tmpst via the
// sbox table in r2).
func subShiftAsm(inv bool) string {
	var b strings.Builder
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&b, "\tldrb r7, [r0, #%d]\n", shiftRowsSrc(i, inv))
		b.WriteString("\tldrb r7, [r2, r7]\n")
		fmt.Fprintf(&b, "\tstrb r7, [r6, #%d]\n", i)
	}
	return b.String()
}

// mixColumnsAsm emits the unrolled (Inv)MixColumns from tmpst (r6) into the
// state (r0), xoring in the round key (r1 base, round in r9). coef[j][k] is
// the GF coefficient applied to a_k when producing b_j; table base
// registers per coefficient come from tabs.
func mixColumnsAsm(coef [4][4]int, withRK bool) string {
	var b strings.Builder
	for c := 0; c < 4; c++ {
		fmt.Fprintf(&b, "\tldrb r7, [r6, #%d]\n", 4*c)
		fmt.Fprintf(&b, "\tldrb r8, [r6, #%d]\n", 4*c+1)
		fmt.Fprintf(&b, "\tldrb r11, [r6, #%d]\n", 4*c+2)
		fmt.Fprintf(&b, "\tldrb r12, [r6, #%d]\n", 4*c+3)
		srcs := []string{"r7", "r8", "r11", "r12"}
		for j := 0; j < 4; j++ {
			first := true
			for k := 0; k < 4; k++ {
				term := srcs[k]
				if coef[j][k] != 1 {
					fmt.Fprintf(&b, "\tldr r10, =mul%d\n", coef[j][k])
					fmt.Fprintf(&b, "\tldrb r10, [r10, %s]\n", term)
					term = "r10"
				}
				if first {
					fmt.Fprintf(&b, "\tmov r5, %s\n", term)
					first = false
				} else {
					fmt.Fprintf(&b, "\teor r5, r5, %s\n", term)
				}
			}
			if withRK {
				b.WriteString("\tlsl r10, r9, #4\n")
				fmt.Fprintf(&b, "\tadd r10, r10, #%d\n", 4*c+j)
				b.WriteString("\tldrb r10, [r1, r10]\n")
				b.WriteString("\teor r5, r5, r10\n")
			}
			fmt.Fprintf(&b, "\tstrb r5, [r0, #%d]\n", 4*c+j)
		}
	}
	return b.String()
}

// encBlockAsm emits the AES-128 block encryption routine. Registers:
// r0=&state, r1=&rk, r2=&sbox, r6=&tmpst; r9 is the round counter.
func encBlockAsm() string {
	mc := mixColumnsAsm([4][4]int{
		{2, 3, 1, 1},
		{1, 2, 3, 1},
		{1, 1, 2, 3},
		{3, 1, 1, 2},
	}, true)
	return `
encrypt_block:
	push {r10, r11, r12, lr}
	; AddRoundKey(0)
	mov r5, #0
ark0:
	ldrb r7, [r0, r5]
	ldrb r8, [r1, r5]
	eor r7, r7, r8
	strb r7, [r0, r5]
	add r5, #1
	cmp r5, #16
	blt ark0
	mov r9, #1
enc_round:
` + subShiftAsm(false) + `
	cmp r9, #10
	beq enc_last
` + mc + `
	add r9, #1
	b enc_round
enc_last:
	mov r5, #0
lark:
	ldrb r7, [r6, r5]
	add r8, r5, #160
	ldrb r8, [r1, r8]
	eor r7, r7, r8
	strb r7, [r0, r5]
	add r5, #1
	cmp r5, #16
	blt lark
	pop {r10, r11, r12, lr}
	bx lr
`
}

// decBlockAsm emits the AES-128 block decryption routine. Registers as in
// encryption but r2=&inv_sbox.
func decBlockAsm() string {
	imc := mixColumnsAsm([4][4]int{
		{14, 11, 13, 9},
		{9, 14, 11, 13},
		{13, 9, 14, 11},
		{11, 13, 9, 14},
	}, false)
	return `
decrypt_block:
	push {r10, r11, r12, lr}
	; AddRoundKey(10)
	mov r5, #0
dark10:
	ldrb r7, [r0, r5]
	add r8, r5, #160
	ldrb r8, [r1, r8]
	eor r7, r7, r8
	strb r7, [r0, r5]
	add r5, #1
	cmp r5, #16
	blt dark10
	mov r9, #9
dec_round:
` + subShiftAsm(true) + `
	; AddRoundKey(r9) into tmpst
	mov r5, #0
dark_rk:
	lsl r8, r9, #4
	add r8, r8, r5
	ldrb r8, [r1, r8]
	ldrb r7, [r6, r5]
	eor r7, r7, r8
	strb r7, [r6, r5]
	add r5, #1
	cmp r5, #16
	blt dark_rk
	cmp r9, #0
	beq dec_done
` + imc + `
	sub r9, #1
	b dec_round
dec_done:
	; final round wrote tmpst (no InvMixColumns); copy to state
	mov r5, #0
dcopy:
	ldrb r7, [r6, r5]
	strb r7, [r0, r5]
	add r5, #1
	cmp r5, #16
	blt dcopy
	pop {r10, r11, r12, lr}
	bx lr
`
}

// keyExpandAsm emits the AES-128 key schedule. Registers: r0=&rk, r1=&key,
// r2=&sbox, r3=&rcon.
const keyExpandAsm = `
expand_key:
	mov r5, #0
ek_copy:
	ldrb r7, [r1, r5]
	strb r7, [r0, r5]
	add r5, #1
	cmp r5, #16
	blt ek_copy
	mov r5, #16
ek_loop:
	tst r5, #15
	bne ek_plain
	sub r7, r5, #3
	ldrb r7, [r0, r7]
	ldrb r7, [r2, r7]
	lsr r8, r5, #4
	sub r8, #1
	ldrb r8, [r3, r8]
	eor r7, r7, r8          ; t0
	sub r8, r5, #2
	ldrb r8, [r0, r8]
	ldrb r8, [r2, r8]       ; t1
	sub r11, r5, #1
	ldrb r11, [r0, r11]
	ldrb r11, [r2, r11]     ; t2
	sub r12, r5, #4
	ldrb r12, [r0, r12]
	ldrb r12, [r2, r12]     ; t3
	b ek_store
ek_plain:
	sub r7, r5, #4
	ldrb r7, [r0, r7]
	sub r8, r5, #3
	ldrb r8, [r0, r8]
	sub r11, r5, #2
	ldrb r11, [r0, r11]
	sub r12, r5, #1
	ldrb r12, [r0, r12]
ek_store:
	sub r9, r5, #16
	ldrb r6, [r0, r9]
	eor r6, r6, r7
	strb r6, [r0, r5]
	add r9, #1
	ldrb r6, [r0, r9]
	eor r6, r6, r8
	add r7, r5, #1
	strb r6, [r0, r7]
	add r9, #1
	ldrb r6, [r0, r9]
	eor r6, r6, r11
	add r7, r5, #2
	strb r6, [r0, r7]
	add r9, #1
	ldrb r6, [r0, r9]
	eor r6, r6, r12
	add r7, r5, #3
	strb r6, [r0, r7]
	add r5, #4
	mov r6, #176
	cmp r5, r6
	blt ek_loop
	bx lr
`

func buildRijndael(cfg asm.Config, scale Scale, decrypt bool) (*Built, error) {
	n := rijndaelLen(scale)
	nblk := n / 16
	sbox, inv, mul := aesTables()
	rcon := []byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36}

	blockRoutine := encBlockAsm()
	blockCall := "encrypt_block"
	sboxReg := "sbox"
	name := "rijndael_e"
	if decrypt {
		blockRoutine = decBlockAsm()
		blockCall = "decrypt_block"
		sboxReg = "inv_sbox"
		name = "rijndael_d"
	}

	var data strings.Builder
	data.WriteString(".data\n")
	data.WriteString(byteTable("sbox", sbox[:]))
	data.WriteString(byteTable("inv_sbox", inv[:]))
	for _, m := range []int{2, 3, 9, 11, 13, 14} {
		t := mul[m]
		data.WriteString(byteTable(fmt.Sprintf("mul%d", m), t[:]))
	}
	data.WriteString(byteTable("rcon", rcon))
	fmt.Fprintf(&data, "rk:     .space 176\nstate:  .space 16\ntmpst:  .space 16\noutbuf: .space %d\ninput:  .space %d\n", n, 16+n)

	src := prologue() + fmt.Sprintf(`
.equ NBLK, %d
	ldr r0, =rk
	ldr r1, =input          ; key occupies the first 16 bytes
	ldr r2, =sbox
	ldr r3, =rcon
	bl expand_key
	mov r10, #0
blk_loop:
	; stage block r10 into state
	ldr r0, =input + 16
	mov r1, #16
	mul r1, r10, r1
	add r0, r0, r1
	ldr r1, =state
	mov r2, #0
ld_blk:
	ldrb r3, [r0, r2]
	strb r3, [r1, r2]
	add r2, #1
	cmp r2, #16
	blt ld_blk
	ldr r0, =state
	ldr r1, =rk
	ldr r2, =%s
	ldr r6, =tmpst
	bl %s
	; copy state into outbuf
	ldr r0, =outbuf
	mov r1, #16
	mul r1, r10, r1
	add r0, r0, r1
	ldr r1, =state
	mov r2, #0
st_blk:
	ldrb r3, [r1, r2]
	strb r3, [r0, r2]
	add r2, #1
	cmp r2, #16
	blt st_blk
	add r10, #1
	ldr r2, =NBLK
	cmp r10, r2
	blt blk_loop
	ldr r5, =NBLK*16
	b finish
`, nblk, sboxReg, blockCall) + exitSnippet + "\n" +
		blockRoutine + keyExpandAsm + data.String()

	prog, err := assemble(name+".s", src, cfg)
	if err != nil {
		return nil, err
	}

	cipher, err := aes.NewCipher(rijndaelKey)
	if err != nil {
		return nil, fmt.Errorf("aes reference: %w", err)
	}
	plain := newRNG(0xAE5AE5AE).bytes(n)
	encrypted := make([]byte, n)
	for i := 0; i < n; i += 16 {
		cipher.Encrypt(encrypted[i:i+16], plain[i:i+16])
	}

	data16 := plain
	golden := encrypted
	if decrypt {
		data16, golden = encrypted, plain
	}
	input := append(append([]byte(nil), rijndaelKey...), data16...)
	return &Built{
		Program:   prog,
		InputAddr: prog.MustSymbol("input"),
		Input:     input,
		Golden:    golden,
	}, nil
}
