package bench

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"armsefi/internal/asm"
)

// Qsort sizes (paper: 50,000 doubles; our FPU is single-precision, so the
// workload sorts float32 values — documented in DESIGN.md).
func qsortSize(s Scale) int {
	switch s {
	case ScaleTiny:
		return 512
	case ScaleSmall:
		return 2048
	default:
		return 16384
	}
}

// Qsort is the quicksort workload of Table III.
var Qsort = register(Spec{
	Name:            "qsort",
	InputDesc:       "list of 50K doubles (scaled: 512/2048/16384 float32)",
	Characteristics: "Memory intensive and Control intensive",
	build:           buildQsort,
})

func buildQsort(cfg asm.Config, scale Scale) (*Built, error) {
	n := qsortSize(scale)
	// Iterative Lomuto quicksort with an explicit (lo, hi) range stack kept
	// in the stack_buf array — heavy stack-style memory traffic plus dense
	// branching, the paper's characterisation of this workload.
	src := prologue() + fmt.Sprintf(`
.equ N, %d
	ldr r0, =input
	ldr r1, =stack_buf
	; push initial range (0, N-1)
	mov r2, #0
	str r2, [r1]
	ldr r3, =N-1
	str r3, [r1, #4]
	add r1, #8
qs_loop:
	ldr r2, =stack_buf
	cmp r1, r2
	ble qs_done              ; stack empty
	sub r1, #8
	ldr r2, [r1]             ; lo
	ldr r3, [r1, #4]         ; hi
	cmp r2, r3
	bge qs_loop              ; range of <=1 element
	; partition (Lomuto, pivot = a[hi])
	ldr r4, [r0, r3, lsl #2] ; pivot
	mov r5, r2               ; store index i
	mov r6, r2               ; scan index j
part_loop:
	cmp r6, r3
	bge part_done
	ldr r7, [r0, r6, lsl #2]
	fcmp r7, r4
	bcs part_next            ; a[j] >= pivot
	ldr r8, [r0, r5, lsl #2] ; swap a[i], a[j]
	str r7, [r0, r5, lsl #2]
	str r8, [r0, r6, lsl #2]
	add r5, #1
part_next:
	add r6, #1
	b part_loop
part_done:
	ldr r7, [r0, r3, lsl #2] ; swap a[i], a[hi]
	ldr r8, [r0, r5, lsl #2]
	str r7, [r0, r5, lsl #2]
	str r8, [r0, r3, lsl #2]
	; push (lo, i-1) and (i+1, hi)
	sub r7, r5, #1
	str r2, [r1]
	str r7, [r1, #4]
	add r1, #8
	add r7, r5, #1
	str r7, [r1]
	str r3, [r1, #4]
	add r1, #8
	b qs_loop
qs_done:
	; copy sorted array to outbuf
	ldr r1, =outbuf
	ldr r4, =N
	mov r2, #0
copy_loop:
	ldr r3, [r0, r2, lsl #2]
	str r3, [r1, r2, lsl #2]
	add r2, #1
	cmp r2, r4
	blt copy_loop
	ldr r5, =N*4
	b finish
`, n) + exitSnippet + fmt.Sprintf(`
.data
stack_buf: .space %d
outbuf:    .space %d
input:     .space %d
`, 16*n, 4*n, 4*n)
	prog, err := assemble("qsort.s", src, cfg)
	if err != nil {
		return nil, err
	}
	r := newRNG(0x9507A7B3)
	vals := make([]float32, n)
	input := make([]byte, 4*n)
	for i := range vals {
		vals[i] = r.float32unit()*2000 - 1000
		binary.LittleEndian.PutUint32(input[4*i:], math.Float32bits(vals[i]))
	}
	sorted := append([]float32(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	golden := make([]byte, 0, 4*n)
	for _, v := range sorted {
		golden = binary.LittleEndian.AppendUint32(golden, math.Float32bits(v))
	}
	return &Built{
		Program:   prog,
		InputAddr: prog.MustSymbol("input"),
		Input:     input,
		Golden:    golden,
	}, nil
}
