package bench

import (
	"fmt"
	"math"
	"strings"

	"armsefi/internal/asm"
)

// Jpeg image sizes (paper: 512x512). The codec is a DCT + quantise +
// zigzag + run-length pipeline — libjpeg's computational core without its
// entropy coder (documented substitution in DESIGN.md).
func jpegSize(s Scale) (w, h int) {
	switch s {
	case ScaleTiny:
		return 32, 32
	case ScaleSmall:
		return 64, 64
	default:
		return 512, 512
	}
}

// jpegQuant is the standard JPEG luminance quantisation matrix.
var jpegQuant = [64]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// jpegZig maps zigzag scan position to row-major coefficient index.
var jpegZig = [64]byte{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// jpegCosTab returns the fixed-point DCT basis: T[u*8+y] =
// round(0.5*C(u)*cos((2y+1)u*pi/16) * 1024).
func jpegCosTab() [64]int32 {
	var t [64]int32
	for u := 0; u < 8; u++ {
		cu := 1.0
		if u == 0 {
			cu = 1 / math.Sqrt2
		}
		for y := 0; y < 8; y++ {
			v := 0.5 * cu * math.Cos(float64(2*y+1)*float64(u)*math.Pi/16) * 1024
			t[u*8+y] = int32(math.Round(v))
		}
	}
	return t
}

// jpegImage generates the deterministic test image.
func jpegImage(w, h int) []byte {
	r := newRNG(0x1457A6E5)
	img := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := uint32(128 + 80*math.Sin(float64(x)/9)*math.Cos(float64(y)/7))
			v += r.uint32n(9)
			if v > 255 {
				v = 255
			}
			img[y*w+x] = byte(v)
		}
	}
	return img
}

// refJpegEncode runs the forward pipeline with the exact integer operation
// order of the assembly.
func refJpegEncode(img []byte, w, h int) []byte {
	t := jpegCosTab()
	var out []byte
	var blk, tmp, coef [64]int32
	for by := 0; by < h/8; by++ {
		for bx := 0; bx < w/8; bx++ {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					blk[y*8+x] = int32(img[(by*8+y)*w+bx*8+x]) - 128
				}
			}
			for u := 0; u < 8; u++ { // pass 1: rows
				for x := 0; x < 8; x++ {
					var acc int32
					for y := 0; y < 8; y++ {
						acc += t[u*8+y] * blk[y*8+x]
					}
					tmp[u*8+x] = acc >> 10
				}
			}
			for u := 0; u < 8; u++ { // pass 2: columns
				for v := 0; v < 8; v++ {
					var acc int32
					for x := 0; x < 8; x++ {
						acc += t[v*8+x] * tmp[u*8+x]
					}
					coef[u*8+v] = acc >> 10
				}
			}
			for i := 0; i < 64; i++ {
				coef[i] /= jpegQuant[i]
			}
			run := byte(0)
			for k := 0; k < 64; k++ {
				c := coef[jpegZig[k]]
				if c == 0 {
					run++
					continue
				}
				out = append(out, run, byte(c), byte(c>>8))
				run = 0
			}
			out = append(out, 0xFF, 0, 0)
		}
	}
	return out
}

// refJpegDecode runs the inverse pipeline with the exact integer operation
// order of the assembly.
func refJpegDecode(stream []byte, w, h int) []byte {
	t := jpegCosTab()
	out := make([]byte, w*h)
	pos := 0
	var coef, tmp, blk [64]int32
	for by := 0; by < h/8; by++ {
		for bx := 0; bx < w/8; bx++ {
			coef = [64]int32{}
			k := int32(0)
			for {
				run := stream[pos]
				lo := stream[pos+1]
				hi := stream[pos+2]
				pos += 3
				if run == 0xFF {
					break
				}
				k += int32(run)
				v := int32(int16(uint16(lo) | uint16(hi)<<8))
				coef[jpegZig[k]] = v
				k++
			}
			for i := 0; i < 64; i++ {
				coef[i] *= jpegQuant[i]
			}
			for u := 0; u < 8; u++ { // inverse pass 1
				for x := 0; x < 8; x++ {
					var acc int32
					for v := 0; v < 8; v++ {
						acc += t[v*8+x] * coef[u*8+v]
					}
					tmp[u*8+x] = acc >> 10
				}
			}
			for y := 0; y < 8; y++ { // inverse pass 2
				for x := 0; x < 8; x++ {
					var acc int32
					for u := 0; u < 8; u++ {
						acc += t[u*8+y] * tmp[u*8+x]
					}
					blk[y*8+x] = acc >> 10
				}
			}
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					v := blk[y*8+x] + 128
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					out[(by*8+y)*w+bx*8+x] = byte(v)
				}
			}
		}
	}
	return out
}

// wordTable renders a labelled .word table of int32 values.
func wordTable(label string, data []int32) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", label)
	for i := 0; i < len(data); i += 8 {
		b.WriteString("\t.word ")
		for j := i; j < i+8 && j < len(data); j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", data[j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// jpegPass emits an 8x8 fixed-point matrix pass:
//
//	dst[i*8+j] = (sum over k of costab[tIdx] * src[sIdx]) >> 10
//
// with tIdx and sIdx given as (rowReg, colReg) pairs over the loop
// registers i=r4, j=r5, k=r7.
func jpegPass(pfx, dst, src string, tRow, tCol, sRow, sCol byte) string {
	reg := func(c byte) string {
		switch c {
		case 'i':
			return "r4"
		case 'j':
			return "r5"
		default:
			return "r7"
		}
	}
	idx := func(dest string, row, col byte) string {
		return fmt.Sprintf("\tlsl %s, %s, #3\n\tadd %s, %s, %s\n",
			dest, reg(row), dest, dest, reg(col))
	}
	return fmt.Sprintf(`
	mov r4, #0
%[1]s_i:
	mov r5, #0
%[1]s_j:
	mov r6, #0
	mov r7, #0
%[1]s_k:
	ldr r1, =costab
%[2]s	ldr r2, [r1, r2, lsl #2]
	ldr r1, =%[4]s
%[3]s	ldr r3, [r1, r3, lsl #2]
	mla r6, r2, r3
	add r7, #1
	cmp r7, #8
	blt %[1]s_k
	asr r6, r6, #10
	ldr r1, =%[5]s
	lsl r2, r4, #3
	add r2, r2, r5
	str r6, [r1, r2, lsl #2]
	add r5, #1
	cmp r5, #8
	blt %[1]s_j
	add r4, #1
	cmp r4, #8
	blt %[1]s_i
`, pfx, idx("r2", tRow, tCol), idx("r3", sRow, sCol), src, dst)
}

// JpegC is the image-encode workload of Table III.
var JpegC = register(Spec{
	Name:            "jpeg_c",
	InputDesc:       "512x512 PPM image, 786.5 KB (scaled: 32x32 / 64x64 / 512x512)",
	Characteristics: "CPU intensive",
	build: func(cfg asm.Config, scale Scale) (*Built, error) {
		return buildJpeg(cfg, scale, false)
	},
})

// JpegD is the image-decode workload of Table III.
var JpegD = register(Spec{
	Name:            "jpeg_d",
	InputDesc:       "512x512 compressed image (scaled: 32x32 / 64x64 / 512x512)",
	Characteristics: "CPU intensive",
	build: func(cfg asm.Config, scale Scale) (*Built, error) {
		return buildJpeg(cfg, scale, true)
	},
})

func jpegCommonData(w, h, outCap, inCap int) string {
	t := jpegCosTab()
	return ".data\n" +
		wordTable("costab", t[:]) +
		wordTable("quanttab", jpegQuant[:]) +
		byteTable("zigtab", jpegZig[:]) +
		fmt.Sprintf(`blockbuf: .space 256
tmpbuf:   .space 256
coefbuf:  .space 256
outptr:   .word 0
inptr:    .word 0
outbuf:   .space %d
input:    .space %d
`, outCap, inCap)
}

func buildJpeg(cfg asm.Config, scale Scale, decode bool) (*Built, error) {
	w, h := jpegSize(scale)
	img := jpegImage(w, h)
	stream := refJpegEncode(img, w, h)
	var src string
	var input, golden []byte
	if decode {
		src = jpegDecodeAsm(w, h, len(stream))
		input, golden = stream, refJpegDecode(stream, w, h)
	} else {
		src = jpegEncodeAsm(w, h, len(stream))
		input, golden = img, stream
	}
	name := "jpeg_c"
	if decode {
		name = "jpeg_d"
	}
	prog, err := assemble(name+".s", src, cfg)
	if err != nil {
		return nil, err
	}
	return &Built{
		Program:   prog,
		InputAddr: prog.MustSymbol("input"),
		Input:     input,
		Golden:    golden,
	}, nil
}

func jpegEncodeAsm(w, h, streamLen int) string {
	return prologue() + fmt.Sprintf(`
.equ W, %d
.equ H, %d
.equ WB, %d
.equ HB, %d
	ldr r1, =outptr
	ldr r2, =outbuf
	str r2, [r1]
	mov r10, #0          ; block row
enc_by:
	mov r9, #0           ; block col
enc_bx:
	; r0 = &input[(by*8)*W + bx*8]
	ldr r0, =input
	ldr r2, =W*8
	mul r2, r10, r2
	add r0, r0, r2
	add r0, r0, r9, lsl #3
	; load the block, centred at zero
	ldr r1, =blockbuf
	mov r4, #0
ldb_y:
	mov r5, #0
ldb_x:
	ldr r2, =W
	mul r2, r4, r2
	add r2, r2, r5
	ldrb r3, [r0, r2]
	sub r3, r3, #128
	lsl r6, r4, #3
	add r6, r6, r5
	str r3, [r1, r6, lsl #2]
	add r5, #1
	cmp r5, #8
	blt ldb_x
	add r4, #1
	cmp r4, #8
	blt ldb_y
`, w, h, w/8, h/8) +
		jpegPass("p1", "tmpbuf", "blockbuf", 'i', 'k', 'k', 'j') +
		jpegPass("p2", "coefbuf", "tmpbuf", 'j', 'k', 'i', 'k') + `
	; quantise
	mov r4, #0
q_loop:
	ldr r1, =coefbuf
	ldr r2, [r1, r4, lsl #2]
	ldr r3, =quanttab
	ldr r3, [r3, r4, lsl #2]
	sdiv r2, r2, r3
	str r2, [r1, r4, lsl #2]
	add r4, #1
	cmp r4, #64
	blt q_loop
	; zigzag run-length emit
	mov r4, #0
	mov r5, #0           ; run
rle_loop:
	ldr r1, =zigtab
	ldrb r2, [r1, r4]
	ldr r1, =coefbuf
	ldr r3, [r1, r2, lsl #2]
	cmp r3, #0
	addeq r5, r5, #1
	beq rle_next
	ldr r1, =outptr
	ldr r2, [r1]
	strb r5, [r2]
	strb r3, [r2, #1]
	asr r6, r3, #8
	strb r6, [r2, #2]
	add r2, #3
	str r2, [r1]
	mov r5, #0
rle_next:
	add r4, #1
	cmp r4, #64
	blt rle_loop
	ldr r1, =outptr
	ldr r2, [r1]
	mov r3, #255
	strb r3, [r2]
	mov r3, #0
	strb r3, [r2, #1]
	strb r3, [r2, #2]
	add r2, #3
	str r2, [r1]
	add r9, #1
	ldr r2, =WB
	cmp r9, r2
	blt enc_bx
	add r10, #1
	ldr r2, =HB
	cmp r10, r2
	blt enc_by
	ldr r1, =outptr
	ldr r5, [r1]
	ldr r1, =outbuf
	sub r5, r5, r1
	b finish
` + exitSnippet + jpegCommonData(w, h, streamLen+256, w*h)
}

func jpegDecodeAsm(w, h, streamLen int) string {
	return prologue() + fmt.Sprintf(`
.equ W, %d
.equ H, %d
.equ WB, %d
.equ HB, %d
	ldr r1, =inptr
	ldr r2, =input
	str r2, [r1]
	mov r10, #0
dec_by:
	mov r9, #0
dec_bx:
	; clear the coefficient block
	ldr r1, =coefbuf
	mov r2, #0
	mov r4, #0
z_loop:
	str r2, [r1, r4, lsl #2]
	add r4, #1
	cmp r4, #64
	blt z_loop
	; parse the run-length stream
	mov r4, #0           ; zigzag position
parse_loop:
	ldr r1, =inptr
	ldr r2, [r1]
	ldrb r3, [r2]
	ldrb r6, [r2, #1]
	ldrb r7, [r2, #2]
	add r2, #3
	str r2, [r1]
	cmp r3, #255
	beq parse_done
	add r4, r4, r3
	orr r6, r6, r7, lsl #8
	lsl r6, r6, #16
	asr r6, r6, #16      ; sign-extend the 16-bit value
	ldr r1, =zigtab
	ldrb r2, [r1, r4]
	ldr r1, =coefbuf
	str r6, [r1, r2, lsl #2]
	add r4, #1
	b parse_loop
parse_done:
	; dequantise
	mov r4, #0
dq_loop:
	ldr r1, =coefbuf
	ldr r2, [r1, r4, lsl #2]
	ldr r3, =quanttab
	ldr r3, [r3, r4, lsl #2]
	mul r2, r2, r3
	str r2, [r1, r4, lsl #2]
	add r4, #1
	cmp r4, #64
	blt dq_loop
`, w, h, w/8, h/8) +
		jpegPass("ip1", "tmpbuf", "coefbuf", 'k', 'j', 'i', 'k') +
		jpegPass("ip2", "blockbuf", "tmpbuf", 'k', 'i', 'k', 'j') + `
	; clamp and store pixels
	mov r4, #0
st_y:
	mov r5, #0
st_x:
	ldr r1, =blockbuf
	lsl r2, r4, #3
	add r2, r2, r5
	ldr r3, [r1, r2, lsl #2]
	add r3, r3, #128
	cmp r3, #0
	movlt r3, #0
	mov r2, #255
	cmp r3, r2
	movgt r3, r2
	ldr r1, =outbuf
	ldr r2, =W*8
	mul r2, r10, r2
	add r1, r1, r2
	add r1, r1, r9, lsl #3
	ldr r2, =W
	mul r2, r4, r2
	add r2, r2, r5
	strb r3, [r1, r2]
	add r5, #1
	cmp r5, #8
	blt st_x
	add r4, #1
	cmp r4, #8
	blt st_y
	add r9, #1
	ldr r2, =WB
	cmp r9, r2
	blt dec_bx
	add r10, #1
	ldr r2, =HB
	cmp r10, r2
	blt dec_by
	ldr r5, =W*H
	b finish
` + exitSnippet + jpegCommonData(w, h, w*h, streamLen)
}
