// Package rtl provides a structural gate-level model of the CPU's integer
// ALU datapath: explicit AND/OR/XOR/NOT gates wired into a 32-bit
// ripple-carry adder/subtractor, logic unit, and result mux.
//
// It serves two purposes in the reproduction:
//
//   - the "RTL" row of Table I: evaluating one operation through the gate
//     network is orders of magnitude slower than the behavioural models,
//     and the measured cycles/sec quantifies that step down the
//     abstraction ladder, as NCSIM does in the paper;
//   - an independent equivalence check of the behavioural ALU (the same
//     role RTL-vs-microarchitecture cross-validation plays in [24]).
package rtl

import (
	"fmt"

	"armsefi/internal/isa"
)

// GateKind is the logic function of one gate.
type GateKind uint8

// Gate kinds.
const (
	GateInput GateKind = 1 + iota
	GateNot
	GateAnd
	GateOr
	GateXor
	GateMux // out = sel ? b : a, inputs [sel, a, b]
)

// gate is one node of the network.
type gate struct {
	kind GateKind
	in   [3]int // indices of fan-in gates
	val  bool
}

// Net is a combinational gate network evaluated in topological order (the
// construction API only references already-created gates, so creation
// order is a valid evaluation order).
type Net struct {
	gates  []gate
	inputs []int
}

// NewNet creates an empty network.
func NewNet() *Net { return &Net{} }

// Gates returns the total gate count of the network.
func (n *Net) Gates() int { return len(n.gates) }

// Input adds a primary input and returns its node index.
func (n *Net) Input() int {
	n.gates = append(n.gates, gate{kind: GateInput})
	idx := len(n.gates) - 1
	n.inputs = append(n.inputs, idx)
	return idx
}

// Not adds an inverter.
func (n *Net) Not(a int) int { return n.add(GateNot, a, 0, 0) }

// And adds a 2-input AND gate.
func (n *Net) And(a, b int) int { return n.add(GateAnd, a, b, 0) }

// Or adds a 2-input OR gate.
func (n *Net) Or(a, b int) int { return n.add(GateOr, a, b, 0) }

// Xor adds a 2-input XOR gate.
func (n *Net) Xor(a, b int) int { return n.add(GateXor, a, b, 0) }

// Mux adds a 2:1 multiplexer (sel=0 passes a, sel=1 passes b).
func (n *Net) Mux(sel, a, b int) int { return n.add(GateMux, sel, a, b) }

func (n *Net) add(kind GateKind, a, b, c int) int {
	n.gates = append(n.gates, gate{kind: kind, in: [3]int{a, b, c}})
	return len(n.gates) - 1
}

// Eval evaluates the network for the given primary input values (in the
// order Input() was called) and returns a reader for node values.
func (n *Net) Eval(inputs []bool) func(int) bool {
	for i, idx := range n.inputs {
		if i < len(inputs) {
			n.gates[idx].val = inputs[i]
		} else {
			n.gates[idx].val = false
		}
	}
	for i := range n.gates {
		g := &n.gates[i]
		switch g.kind {
		case GateNot:
			g.val = !n.gates[g.in[0]].val
		case GateAnd:
			g.val = n.gates[g.in[0]].val && n.gates[g.in[1]].val
		case GateOr:
			g.val = n.gates[g.in[0]].val || n.gates[g.in[1]].val
		case GateXor:
			g.val = n.gates[g.in[0]].val != n.gates[g.in[1]].val
		case GateMux:
			if n.gates[g.in[0]].val {
				g.val = n.gates[g.in[2]].val
			} else {
				g.val = n.gates[g.in[1]].val
			}
		}
	}
	return func(idx int) bool { return n.gates[idx].val }
}

// ALUOp selects the gate-level ALU function.
type ALUOp uint8

// Gate-level ALU functions.
const (
	ALUAdd ALUOp = iota
	ALUSub
	ALUAnd
	ALUOr
	ALUXor

	// NumALUOps is the number of gate-level functions.
	NumALUOps = 5
)

// String returns the function name.
func (op ALUOp) String() string {
	return [NumALUOps]string{"add", "sub", "and", "or", "xor"}[op]
}

// ALU is the 32-bit gate-level arithmetic-logic unit.
type ALU struct {
	net      *Net
	aIn      [32]int
	bIn      [32]int
	opIn     [4]int // select lines: [sub, logicEn, s0, s1]
	outBits  [32]int
	carry    int
	overflow int
}

// NewALU wires the datapath: a ripple-carry adder with conditional operand
// inversion (subtraction), a bitwise logic unit, and an output multiplexer.
func NewALU() *ALU {
	n := NewNet()
	a := &ALU{net: n}
	for i := 0; i < 32; i++ {
		a.aIn[i] = n.Input()
	}
	for i := 0; i < 32; i++ {
		a.bIn[i] = n.Input()
	}
	for i := 0; i < 4; i++ {
		a.opIn[i] = n.Input()
	}
	sub := a.opIn[0]
	// Adder with b conditionally inverted; carry-in = sub.
	carry := sub
	var sumBits [32]int
	var carryPrev int
	for i := 0; i < 32; i++ {
		bi := n.Xor(a.bIn[i], sub)
		axb := n.Xor(a.aIn[i], bi)
		sum := n.Xor(axb, carry)
		gen := n.And(a.aIn[i], bi)
		prop := n.And(axb, carry)
		carryPrev = carry
		carry = n.Or(gen, prop)
		sumBits[i] = sum
	}
	a.carry = carry
	a.overflow = n.Xor(carry, carryPrev)
	// Logic unit: logicEn routes the logic result to the output; s0/s1
	// select among AND/OR/XOR.
	logicEn, s0, s1 := a.opIn[1], a.opIn[2], a.opIn[3]
	for i := 0; i < 32; i++ {
		andB := n.And(a.aIn[i], a.bIn[i])
		orB := n.Or(a.aIn[i], a.bIn[i])
		xorB := n.Xor(a.aIn[i], a.bIn[i])
		logic := n.Mux(s1, n.Mux(s0, andB, orB), xorB)
		a.outBits[i] = n.Mux(logicEn, sumBits[i], logic)
	}
	return a
}

// Gates returns the gate count of the ALU network.
func (a *ALU) Gates() int { return a.net.Gates() }

// Exec evaluates the gate network for one operation and returns the result
// with carry and signed-overflow flags (meaningful for add/sub only).
func (a *ALU) Exec(op ALUOp, x, y uint32) (uint32, bool, bool) {
	var in []bool
	in = make([]bool, 0, 68)
	for i := 0; i < 32; i++ {
		in = append(in, x>>i&1 != 0)
	}
	for i := 0; i < 32; i++ {
		in = append(in, y>>i&1 != 0)
	}
	var sub, logicEn, s0, s1 bool
	switch op {
	case ALUAdd:
	case ALUSub:
		sub = true
	case ALUAnd:
		logicEn = true
	case ALUOr:
		logicEn, s0 = true, true
	case ALUXor:
		logicEn, s1 = true, true
	}
	in = append(in, sub, logicEn, s0, s1)
	read := a.net.Eval(in)
	var out uint32
	for i := 0; i < 32; i++ {
		if read(a.outBits[i]) {
			out |= 1 << i
		}
	}
	return out, read(a.carry), read(a.overflow)
}

// Reference computes the same function behaviourally via the shared ISA
// semantics, for equivalence checking.
func Reference(op ALUOp, x, y uint32) (uint32, error) {
	var isaOp isa.Op
	switch op {
	case ALUAdd:
		isaOp = isa.OpADD
	case ALUSub:
		isaOp = isa.OpSUB
	case ALUAnd:
		isaOp = isa.OpAND
	case ALUOr:
		isaOp = isa.OpORR
	case ALUXor:
		isaOp = isa.OpEOR
	default:
		return 0, fmt.Errorf("rtl: unknown op %d", op)
	}
	res := isa.ExecDP(isaOp, x, y, 0, isa.Flags{}, false)
	return res.Value, nil
}
