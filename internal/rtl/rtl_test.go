package rtl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestALUEquivalence property-checks the gate network against the
// behavioural ALU for every function.
func TestALUEquivalence(t *testing.T) {
	alu := NewALU()
	for op := ALUOp(0); op < NumALUOps; op++ {
		op := op
		f := func(x, y uint32) bool {
			got, _, _ := alu.Exec(op, x, y)
			want, err := Reference(op, x, y)
			if err != nil {
				return false
			}
			return got == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%v: %v", op, err)
		}
	}
}

// TestALUFlags checks carry and overflow on known add/sub corner cases.
func TestALUFlags(t *testing.T) {
	alu := NewALU()
	cases := []struct {
		op          ALUOp
		x, y        uint32
		carry, over bool
	}{
		{ALUAdd, 0xFFFFFFFF, 1, true, false},
		{ALUAdd, 0x7FFFFFFF, 1, false, true},
		{ALUAdd, 1, 2, false, false},
		{ALUSub, 5, 3, true, false},  // no borrow
		{ALUSub, 3, 5, false, false}, // borrow
		{ALUSub, 0x80000000, 1, true, true},
	}
	for _, c := range cases {
		_, carry, over := alu.Exec(c.op, c.x, c.y)
		if carry != c.carry || over != c.over {
			t.Errorf("%v %#x,%#x: carry=%v over=%v want %v %v", c.op, c.x, c.y, carry, over, c.carry, c.over)
		}
	}
}

func TestGateCount(t *testing.T) {
	alu := NewALU()
	if alu.Gates() < 300 {
		t.Fatalf("suspiciously small network: %d gates", alu.Gates())
	}
}

func BenchmarkGateALU(b *testing.B) {
	alu := NewALU()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alu.Exec(ALUOp(i%int(NumALUOps)), rng.Uint32(), rng.Uint32())
	}
}
