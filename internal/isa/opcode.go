package isa

import "fmt"

// Op is an operation code.
type Op uint8

// Operation codes. The encoding reserves 6 bits for the opcode.
const (
	opInvalid Op = iota // zero word decodes as invalid -> undefined instruction

	// Data processing.
	OpADD // rd = rn + op2
	OpADC // rd = rn + op2 + C
	OpSUB // rd = rn - op2
	OpSBC // rd = rn - op2 - !C
	OpRSB // rd = op2 - rn
	OpAND // rd = rn & op2
	OpORR // rd = rn | op2
	OpEOR // rd = rn ^ op2
	OpBIC // rd = rn &^ op2
	OpMOV // rd = op2
	OpMVN // rd = ^op2
	OpCMP // flags(rn - op2)
	OpCMN // flags(rn + op2)
	OpTST // flags(rn & op2)
	OpTEQ // flags(rn ^ op2)
	OpLSL // rd = rn << (op2 & 31)
	OpLSR // rd = rn >> (op2 & 31) logical
	OpASR // rd = rn >> (op2 & 31) arithmetic
	OpROR // rd = rotate-right(rn, op2 & 31)

	// Multiply / divide.
	OpMUL  // rd = rn * op2 (low 32 bits)
	OpMLA  // rd = rd + rn*op2
	OpSDIV // rd = rn / op2 signed (0 on divide-by-zero, as on ARM)
	OpUDIV // rd = rn / op2 unsigned (0 on divide-by-zero)

	// Wide immediates.
	OpMOVW // rd = imm16 (upper half zeroed)
	OpMOVT // rd = (rd & 0xFFFF) | imm16<<16

	// Single-precision floating point on GPR bit patterns.
	OpFADD  // rd = rn +f op2
	OpFSUB  // rd = rn -f op2
	OpFMUL  // rd = rn *f op2
	OpFDIV  // rd = rn /f op2
	OpFCMP  // flags(rn -f op2): N=less, Z=equal, C=greaterOrEqual, V=unordered
	OpFNEG  // rd = -f op2
	OpFABS  // rd = |op2|f
	OpFSQRT // rd = sqrtf(op2)
	OpITOF  // rd = float32(int32(op2))
	OpFTOI  // rd = int32(truncate(float32 op2))

	// Memory.
	OpLDR  // rd = mem32[rn + off]
	OpLDRB // rd = zeroext(mem8[rn + off])
	OpLDRH // rd = zeroext(mem16[rn + off])
	OpSTR  // mem32[rn + off] = rd
	OpSTRB // mem8[rn + off] = rd
	OpSTRH // mem16[rn + off] = rd

	// Control flow.
	OpB  // pc += 4 + off*4
	OpBL // lr = pc + 4; pc += 4 + off*4
	OpBX // pc = rm (bit 0 ignored)

	// System.
	OpSVC  // supervisor call
	OpMRS  // rd = sysreg
	OpMSR  // sysreg = rd
	OpERET // return from exception: pc = ELR, cpsr = SPSR
	OpWFI  // wait for interrupt
	OpNOP  // no operation

	// NumOps is one past the highest defined opcode.
	NumOps
)

// Format describes how an instruction's fields are encoded.
type Format uint8

// Instruction formats.
const (
	FmtDP   Format = 1 + iota // data processing: rd, rn, op2 (reg+shift or imm12)
	FmtMovW                   // rd, imm16
	FmtMem                    // rd, [rn, op2]
	FmtBr                     // 22-bit signed word offset
	FmtBX                     // rm only
	FmtSys                    // rd and/or sysreg/imm12
)

// FU identifies the functional-unit class that executes an operation in the
// detailed CPU model.
type FU uint8

// Functional-unit classes.
const (
	FUAlu FU = 1 + iota // integer ALU
	FUMul               // multiplier / divider
	FUFpu               // floating-point unit
	FUMem               // load/store unit
	FUBr                // branch unit
	FUSys               // system unit (serialising)
)

// OpInfo is static metadata about an operation.
type OpInfo struct {
	Name       string // assembly mnemonic
	Format     Format
	Unit       FU
	Latency    int  // execute-stage latency in cycles (detailed model)
	WritesRd   bool // produces a result register
	ReadsRn    bool
	ReadsOp2   bool // reads the second operand (Rm or immediate)
	ReadsRd    bool // reads rd as a source (MLA, MOVT, stores)
	ReadsFlags bool // consumes NZCV as data (ADC/SBC carry chains)
	SetsFlags  bool // always sets flags (compare ops); others honour the S bit
	IsBranch   bool
	IsLoad     bool
	IsStore    bool
	Serialise  bool // drains the pipeline (system ops)
}

var opInfos = [NumOps]OpInfo{
	OpADD:   {Name: "add", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpADC:   {Name: "adc", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true, ReadsFlags: true},
	OpSUB:   {Name: "sub", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpSBC:   {Name: "sbc", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true, ReadsFlags: true},
	OpRSB:   {Name: "rsb", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpAND:   {Name: "and", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpORR:   {Name: "orr", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpEOR:   {Name: "eor", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpBIC:   {Name: "bic", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpMOV:   {Name: "mov", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsOp2: true},
	OpMVN:   {Name: "mvn", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsOp2: true},
	OpCMP:   {Name: "cmp", Format: FmtDP, Unit: FUAlu, Latency: 1, ReadsRn: true, ReadsOp2: true, SetsFlags: true},
	OpCMN:   {Name: "cmn", Format: FmtDP, Unit: FUAlu, Latency: 1, ReadsRn: true, ReadsOp2: true, SetsFlags: true},
	OpTST:   {Name: "tst", Format: FmtDP, Unit: FUAlu, Latency: 1, ReadsRn: true, ReadsOp2: true, SetsFlags: true},
	OpTEQ:   {Name: "teq", Format: FmtDP, Unit: FUAlu, Latency: 1, ReadsRn: true, ReadsOp2: true, SetsFlags: true},
	OpLSL:   {Name: "lsl", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpLSR:   {Name: "lsr", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpASR:   {Name: "asr", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpROR:   {Name: "ror", Format: FmtDP, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpMUL:   {Name: "mul", Format: FmtDP, Unit: FUMul, Latency: 3, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpMLA:   {Name: "mla", Format: FmtDP, Unit: FUMul, Latency: 3, WritesRd: true, ReadsRn: true, ReadsOp2: true, ReadsRd: true},
	OpSDIV:  {Name: "sdiv", Format: FmtDP, Unit: FUMul, Latency: 12, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpUDIV:  {Name: "udiv", Format: FmtDP, Unit: FUMul, Latency: 12, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpMOVW:  {Name: "movw", Format: FmtMovW, Unit: FUAlu, Latency: 1, WritesRd: true},
	OpMOVT:  {Name: "movt", Format: FmtMovW, Unit: FUAlu, Latency: 1, WritesRd: true, ReadsRd: true},
	OpFADD:  {Name: "fadd", Format: FmtDP, Unit: FUFpu, Latency: 4, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpFSUB:  {Name: "fsub", Format: FmtDP, Unit: FUFpu, Latency: 4, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpFMUL:  {Name: "fmul", Format: FmtDP, Unit: FUFpu, Latency: 5, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpFDIV:  {Name: "fdiv", Format: FmtDP, Unit: FUFpu, Latency: 15, WritesRd: true, ReadsRn: true, ReadsOp2: true},
	OpFCMP:  {Name: "fcmp", Format: FmtDP, Unit: FUFpu, Latency: 4, ReadsRn: true, ReadsOp2: true, SetsFlags: true},
	OpFNEG:  {Name: "fneg", Format: FmtDP, Unit: FUFpu, Latency: 2, WritesRd: true, ReadsOp2: true},
	OpFABS:  {Name: "fabs", Format: FmtDP, Unit: FUFpu, Latency: 2, WritesRd: true, ReadsOp2: true},
	OpFSQRT: {Name: "fsqrt", Format: FmtDP, Unit: FUFpu, Latency: 17, WritesRd: true, ReadsOp2: true},
	OpITOF:  {Name: "itof", Format: FmtDP, Unit: FUFpu, Latency: 4, WritesRd: true, ReadsOp2: true},
	OpFTOI:  {Name: "ftoi", Format: FmtDP, Unit: FUFpu, Latency: 4, WritesRd: true, ReadsOp2: true},
	OpLDR:   {Name: "ldr", Format: FmtMem, Unit: FUMem, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true, IsLoad: true},
	OpLDRB:  {Name: "ldrb", Format: FmtMem, Unit: FUMem, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true, IsLoad: true},
	OpLDRH:  {Name: "ldrh", Format: FmtMem, Unit: FUMem, Latency: 1, WritesRd: true, ReadsRn: true, ReadsOp2: true, IsLoad: true},
	OpSTR:   {Name: "str", Format: FmtMem, Unit: FUMem, Latency: 1, ReadsRn: true, ReadsOp2: true, ReadsRd: true, IsStore: true},
	OpSTRB:  {Name: "strb", Format: FmtMem, Unit: FUMem, Latency: 1, ReadsRn: true, ReadsOp2: true, ReadsRd: true, IsStore: true},
	OpSTRH:  {Name: "strh", Format: FmtMem, Unit: FUMem, Latency: 1, ReadsRn: true, ReadsOp2: true, ReadsRd: true, IsStore: true},
	OpB:     {Name: "b", Format: FmtBr, Unit: FUBr, Latency: 1, IsBranch: true},
	OpBL:    {Name: "bl", Format: FmtBr, Unit: FUBr, Latency: 1, IsBranch: true, WritesRd: true},
	OpBX:    {Name: "bx", Format: FmtBX, Unit: FUBr, Latency: 1, IsBranch: true, ReadsOp2: true},
	OpSVC:   {Name: "svc", Format: FmtSys, Unit: FUSys, Latency: 1, Serialise: true},
	OpMRS:   {Name: "mrs", Format: FmtSys, Unit: FUSys, Latency: 2, WritesRd: true, Serialise: true},
	OpMSR:   {Name: "msr", Format: FmtSys, Unit: FUSys, Latency: 2, ReadsRd: true, Serialise: true},
	OpERET:  {Name: "eret", Format: FmtSys, Unit: FUSys, Latency: 2, IsBranch: true, Serialise: true},
	OpWFI:   {Name: "wfi", Format: FmtSys, Unit: FUSys, Latency: 1, Serialise: true},
	OpNOP:   {Name: "nop", Format: FmtSys, Unit: FUAlu, Latency: 1},
}

// Info returns the static metadata for op. Undefined opcodes return a zero
// OpInfo whose Format is 0; callers treat those as undefined instructions.
func (op Op) Info() OpInfo {
	if op == opInvalid || op >= NumOps {
		return OpInfo{}
	}
	return opInfos[op]
}

// Valid reports whether op is a defined operation.
func (op Op) Valid() bool { return op > opInvalid && op < NumOps && opInfos[op].Format != 0 }

// undefInfo is the shared zero metadata InfoRef hands out for undefined
// opcodes.
var undefInfo OpInfo

// InfoRef returns the static metadata for op as a pointer into the shared
// read-only table, avoiding the copy Info performs — the detailed core
// consults the metadata for every fetched instruction. Undefined opcodes
// (Valid() false) yield a zero OpInfo whose Format is 0, exactly like
// Info. Callers must not mutate the referent.
func (op Op) InfoRef() *OpInfo {
	if op == opInvalid || op >= NumOps {
		return &undefInfo
	}
	return &opInfos[op]
}

// String returns the assembly mnemonic.
func (op Op) String() string {
	if op.Valid() {
		return opInfos[op].Name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// OpByName resolves an assembly mnemonic to its opcode. It reports false for
// unknown mnemonics.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = buildOpsByName()

func buildOpsByName() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := opInvalid + 1; op < NumOps; op++ {
		if opInfos[op].Format != 0 {
			m[opInfos[op].Name] = op
		}
	}
	return m
}

// ShiftType selects the barrel-shifter function applied to a register second
// operand.
type ShiftType uint8

// Barrel shifter functions.
const (
	ShiftLSL ShiftType = iota // logical shift left
	ShiftLSR                  // logical shift right
	ShiftASR                  // arithmetic shift right
	ShiftROR                  // rotate right
)

var shiftNames = [4]string{"lsl", "lsr", "asr", "ror"}

// String returns the assembly name of the shift.
func (s ShiftType) String() string { return shiftNames[s&3] }

// Apply applies the shift by amt (0..31) to v.
func (s ShiftType) Apply(v uint32, amt uint8) uint32 {
	amt &= 31
	if amt == 0 {
		return v
	}
	switch s {
	case ShiftLSL:
		return v << amt
	case ShiftLSR:
		return v >> amt
	case ShiftASR:
		return uint32(int32(v) >> amt)
	default: // ShiftROR
		return v>>amt | v<<(32-amt)
	}
}
