package isa

import (
	"math/rand"
	"testing"
)

// randInstr builds a random well-formed instruction for round-trip tests.
func randInstr(rng *rand.Rand) Instruction {
	ops := []Op{
		OpADD, OpSUB, OpAND, OpMOV, OpCMP, OpMUL, OpMLA, OpSDIV,
		OpFADD, OpFCMP, OpLDR, OpSTRB, OpLDRH, OpB, OpBL, OpBX,
		OpMOVW, OpMOVT, OpSVC, OpMRS, OpMSR, OpERET, OpWFI, OpNOP,
	}
	op := ops[rng.Intn(len(ops))]
	in := Instruction{Op: op, Cond: Cond(rng.Intn(NumConds))}
	info := op.Info()
	switch info.Format {
	case FmtBr:
		in.Imm = rng.Int31n(1<<21) - 1<<20
		if op == OpBL {
			in.Rd = LR
		}
	case FmtMovW:
		in.Rd = Reg(rng.Intn(NumRegs))
		in.Imm = rng.Int31n(1 << 16)
	case FmtBX:
		in.Rm = Reg(rng.Intn(NumRegs))
	case FmtSys:
		switch op {
		case OpSVC:
			in.Imm = rng.Int31n(1 << 12)
		case OpMRS, OpMSR:
			in.Rd = Reg(rng.Intn(NumRegs))
			in.Imm = rng.Int31n(NumSysRegs)
		}
	default:
		in.Rd = Reg(rng.Intn(NumRegs))
		in.Rn = Reg(rng.Intn(NumRegs))
		if info.WritesRd && rng.Intn(2) == 0 {
			in.SetFlags = true
		}
		if rng.Intn(2) == 0 {
			in.UseImm = true
			in.Imm = rng.Int31n(4096) - 2048
		} else {
			in.Rm = Reg(rng.Intn(NumRegs))
			in.Shift = ShiftType(rng.Intn(4))
			in.ShAmt = uint8(rng.Intn(32))
		}
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		in := randInstr(rng)
		got := Decode(in.Encode())
		// Normalise fields the format does not encode.
		want := in
		switch in.Op.Info().Format {
		case FmtBr, FmtBX, FmtSys:
			want.SetFlags = false
		}
		if got != want {
			t.Fatalf("round trip #%d:\n in: %+v\nout: %+v\nword %#x", i, want, got, in.Encode())
		}
	}
}

func TestDecodeInvalid(t *testing.T) {
	// The zero word and out-of-range opcodes must decode as invalid.
	for _, w := range []uint32{0, 0xFFFFFFFF, uint32(NumOps) << 22} {
		in := Decode(w)
		if in.Op.Valid() {
			t.Errorf("Decode(%#x) produced valid op %v", w, in.Op)
		}
	}
}

func TestDecodeInvalidSysReg(t *testing.T) {
	in := Instruction{Op: OpMRS, Cond: CondAL, Rd: R1, Imm: int32(NumSysRegs) + 3}
	got := Decode(in.Encode())
	if got.Op.Valid() {
		t.Errorf("corrupted sysreg index decoded as valid %v", got.Op)
	}
}

func TestBitFlipAlwaysDecodes(t *testing.T) {
	// Flipping any single bit of a valid instruction must never panic and
	// must either decode to a valid instruction or an invalid one — this
	// is the I-cache fault propagation path.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		w := randInstr(rng).Encode()
		for bit := 0; bit < 32; bit++ {
			in := Decode(w ^ 1<<bit)
			_ = in.String() // must not panic either
		}
	}
}

func TestInstructionString(t *testing.T) {
	tests := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: OpADD, Cond: CondAL, Rd: R1, Rn: R2, Rm: R3}, "add r1, r2, r3"},
		{Instruction{Op: OpADD, Cond: CondEQ, Rd: R1, Rn: R2, UseImm: true, Imm: -4}, "addeq r1, r2, #-4"},
		{Instruction{Op: OpMOV, Cond: CondAL, SetFlags: true, Rd: R0, Rm: R7}, "movs r0, r7"},
		{Instruction{Op: OpLDR, Cond: CondAL, Rd: R0, Rn: SP, UseImm: true, Imm: 8}, "ldr r0, [sp, #8]"},
		{Instruction{Op: OpSTR, Cond: CondAL, Rd: R0, Rn: R1, Rm: R2, Shift: ShiftLSL, ShAmt: 2}, "str r0, [r1, r2, lsl #2]"},
		{Instruction{Op: OpBX, Cond: CondAL, Rm: LR}, "bx lr"},
		{Instruction{Op: OpSVC, Cond: CondAL, Imm: 0}, "svc #0"},
		{Instruction{Op: OpMRS, Cond: CondAL, Rd: R2, Imm: int32(SysCPSR)}, "mrs r2, cpsr"},
		{Instruction{Op: OpERET, Cond: CondAL}, "eret"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
