package isa

import "math"

// ALUResult is the outcome of executing a data-processing operation.
type ALUResult struct {
	Value      uint32
	Flags      Flags
	FlagsValid bool // whether Flags should be committed (S bit or compare op)
}

// ExecDP executes the data-processing semantics of op with fully resolved
// operands. rn is the first operand, op2 the (already shifted) second
// operand, rdOld the prior value of the destination (used by MLA and MOVT),
// and cur the current flags (used by ADC/SBC and preserved where an
// operation leaves C/V unchanged). It is the single source of truth for ALU
// behaviour, shared by the atomic model, the detailed model, and the
// gate-level RTL checker.
func ExecDP(op Op, rn, op2, rdOld uint32, cur Flags, setFlags bool) ALUResult {
	info := op.Info()
	wantFlags := setFlags || info.SetsFlags
	switch op {
	case OpADD, OpCMN:
		v, fl := addFlags(rn, op2, 0)
		return dpResult(v, fl, wantFlags)
	case OpADC:
		var c uint32
		if cur.C {
			c = 1
		}
		v, fl := addFlags(rn, op2, c)
		return dpResult(v, fl, wantFlags)
	case OpSUB, OpCMP:
		v, fl := subFlags(rn, op2, 0)
		return dpResult(v, fl, wantFlags)
	case OpSBC:
		var b uint32
		if !cur.C {
			b = 1
		}
		v, fl := subFlags(rn, op2, b)
		return dpResult(v, fl, wantFlags)
	case OpRSB:
		v, fl := subFlags(op2, rn, 0)
		return dpResult(v, fl, wantFlags)
	case OpAND, OpTST:
		return logical(rn&op2, cur, wantFlags)
	case OpORR:
		return logical(rn|op2, cur, wantFlags)
	case OpEOR, OpTEQ:
		return logical(rn^op2, cur, wantFlags)
	case OpBIC:
		return logical(rn&^op2, cur, wantFlags)
	case OpMOV:
		return logical(op2, cur, wantFlags)
	case OpMVN:
		return logical(^op2, cur, wantFlags)
	case OpLSL:
		return logical(ShiftLSL.Apply(rn, uint8(op2)), cur, wantFlags)
	case OpLSR:
		return logical(ShiftLSR.Apply(rn, uint8(op2)), cur, wantFlags)
	case OpASR:
		return logical(ShiftASR.Apply(rn, uint8(op2)), cur, wantFlags)
	case OpROR:
		return logical(ShiftROR.Apply(rn, uint8(op2)), cur, wantFlags)
	case OpMUL:
		return logical(rn*op2, cur, wantFlags)
	case OpMLA:
		return logical(rdOld+rn*op2, cur, wantFlags)
	case OpSDIV:
		return logical(sdiv(rn, op2), cur, wantFlags)
	case OpUDIV:
		return logical(udiv(rn, op2), cur, wantFlags)
	case OpMOVW:
		return ALUResult{Value: op2 & 0xFFFF}
	case OpMOVT:
		return ALUResult{Value: rdOld&0xFFFF | op2<<16}
	case OpFADD:
		return fpResult(f32(rn)+f32(op2), cur, wantFlags)
	case OpFSUB:
		return fpResult(f32(rn)-f32(op2), cur, wantFlags)
	case OpFMUL:
		return fpResult(f32(rn)*f32(op2), cur, wantFlags)
	case OpFDIV:
		return fpResult(f32(rn)/f32(op2), cur, wantFlags)
	case OpFCMP:
		return ALUResult{Flags: fcmpFlags(f32(rn), f32(op2)), FlagsValid: true}
	case OpFNEG:
		return fpResult(-f32(op2), cur, wantFlags)
	case OpFABS:
		return fpResult(float32(math.Abs(float64(f32(op2)))), cur, wantFlags)
	case OpFSQRT:
		return fpResult(float32(math.Sqrt(float64(f32(op2)))), cur, wantFlags)
	case OpITOF:
		return fpResult(float32(int32(op2)), cur, wantFlags)
	case OpFTOI:
		return logical(ftoi(f32(op2)), cur, wantFlags)
	default:
		return ALUResult{}
	}
}

func dpResult(v uint32, fl Flags, want bool) ALUResult {
	return ALUResult{Value: v, Flags: fl, FlagsValid: want}
}

// logical computes NZ from the result and preserves C and V, as ARM
// data-processing instructions without a shifter carry-out do.
func logical(v uint32, cur Flags, want bool) ALUResult {
	fl := Flags{N: int32(v) < 0, Z: v == 0, C: cur.C, V: cur.V}
	return ALUResult{Value: v, Flags: fl, FlagsValid: want}
}

func fpResult(f float32, cur Flags, want bool) ALUResult {
	return logical(math.Float32bits(f), cur, want)
}

func addFlags(a, b, carry uint32) (uint32, Flags) {
	v := a + b + carry
	return v, Flags{
		N: int32(v) < 0,
		Z: v == 0,
		C: uint64(a)+uint64(b)+uint64(carry) > math.MaxUint32,
		V: (a^v)&(b^v)&(1<<31) != 0,
	}
}

func subFlags(a, b, borrow uint32) (uint32, Flags) {
	v := a - b - borrow
	return v, Flags{
		N: int32(v) < 0,
		Z: v == 0,
		C: uint64(a) >= uint64(b)+uint64(borrow),
		V: (a^b)&(a^v)&(1<<31) != 0,
	}
}

// sdiv follows ARM semantics: divide-by-zero yields zero and INT_MIN/-1
// yields INT_MIN (no trap).
func sdiv(a, b uint32) uint32 {
	sa, sb := int32(a), int32(b)
	if sb == 0 {
		return 0
	}
	if sa == math.MinInt32 && sb == -1 {
		return uint32(sa)
	}
	return uint32(sa / sb)
}

func udiv(a, b uint32) uint32 {
	if b == 0 {
		return 0
	}
	return a / b
}

func f32(bits uint32) float32 { return math.Float32frombits(bits) }

// ftoi truncates toward zero with saturation, NaN converting to zero, as the
// ARM VCVT instruction does.
func ftoi(f float32) uint32 {
	switch {
	case f != f: // NaN
		return 0
	case f >= math.MaxInt32:
		return uint32(int32(math.MaxInt32))
	case f <= math.MinInt32:
		return 0x8000_0000 // int32 minimum
	default:
		return uint32(int32(f))
	}
}

// fcmpFlags mirrors the ARM FPSCR->APSR mapping: N=less-than, Z=equal,
// C=greater-or-equal-or-unordered, V=unordered.
func fcmpFlags(a, b float32) Flags {
	switch {
	case a != a || b != b: // unordered
		return Flags{C: true, V: true}
	case a == b:
		return Flags{Z: true, C: true}
	case a < b:
		return Flags{N: true}
	default:
		return Flags{C: true}
	}
}
