package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCondPasses(t *testing.T) {
	flags := func(n, z, c, v bool) Flags { return Flags{N: n, Z: z, C: c, V: v} }
	tests := []struct {
		cond Cond
		f    Flags
		want bool
	}{
		{CondEQ, flags(false, true, false, false), true},
		{CondEQ, flags(false, false, false, false), false},
		{CondNE, flags(false, false, false, false), true},
		{CondCS, flags(false, false, true, false), true},
		{CondCC, flags(false, false, true, false), false},
		{CondMI, flags(true, false, false, false), true},
		{CondPL, flags(true, false, false, false), false},
		{CondVS, flags(false, false, false, true), true},
		{CondVC, flags(false, false, false, true), false},
		{CondHI, flags(false, false, true, false), true},
		{CondHI, flags(false, true, true, false), false},
		{CondLS, flags(false, true, true, false), true},
		{CondGE, flags(true, false, false, true), true},
		{CondGE, flags(true, false, false, false), false},
		{CondLT, flags(true, false, false, false), true},
		{CondGT, flags(false, false, false, false), true},
		{CondGT, flags(false, true, false, false), false},
		{CondLE, flags(false, true, false, false), true},
		{CondAL, flags(true, true, true, true), true},
	}
	for _, tt := range tests {
		if got := tt.cond.Passes(tt.f); got != tt.want {
			t.Errorf("%v.Passes(%+v) = %v, want %v", tt.cond, tt.f, got, tt.want)
		}
	}
}

func TestCondOppositePairs(t *testing.T) {
	// Conditions come in complementary pairs: 2k and 2k+1 are opposites.
	f := func(n, z, c, v bool) bool {
		fl := Flags{N: n, Z: z, C: c, V: v}
		for k := Cond(0); k < CondAL; k += 2 {
			if k.Passes(fl) == (k + 1).Passes(fl) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCPSRRoundTrip(t *testing.T) {
	f := func(n, z, c, v, irqOff bool, modeSel uint8) bool {
		mode := []Mode{ModeUser, ModeSVC, ModeIRQ}[modeSel%3]
		fl := Flags{N: n, Z: z, C: c, V: v}
		w := PackCPSR(fl, mode, irqOff)
		return w.Flags() == fl && w.Mode() == mode && w.IRQOff() == irqOff && w.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCPSRInvalidMode(t *testing.T) {
	if CPSR(0).Valid() {
		t.Error("mode 0 must be invalid")
	}
	if CPSR(31).Valid() {
		t.Error("mode 31 must be invalid")
	}
}

func TestAddSubFlags(t *testing.T) {
	tests := []struct {
		op         Op
		a, b       uint32
		want       uint32
		n, z, c, v bool
	}{
		{OpADD, 1, 2, 3, false, false, false, false},
		{OpADD, 0xFFFFFFFF, 1, 0, false, true, true, false},
		{OpADD, 0x7FFFFFFF, 1, 0x80000000, true, false, false, true},
		{OpADD, 0x80000000, 0x80000000, 0, false, true, true, true},
		{OpSUB, 5, 3, 2, false, false, true, false},
		{OpSUB, 3, 5, 0xFFFFFFFE, true, false, false, false},
		{OpSUB, 3, 3, 0, false, true, true, false},
		{OpSUB, 0x80000000, 1, 0x7FFFFFFF, false, false, true, true},
		{OpRSB, 3, 5, 2, false, false, true, false},
	}
	for _, tt := range tests {
		res := ExecDP(tt.op, tt.a, tt.b, 0, Flags{}, true)
		if res.Value != tt.want {
			t.Errorf("%v(%#x,%#x) = %#x, want %#x", tt.op, tt.a, tt.b, res.Value, tt.want)
		}
		want := Flags{N: tt.n, Z: tt.z, C: tt.c, V: tt.v}
		if res.Flags != want {
			t.Errorf("%v(%#x,%#x) flags = %+v, want %+v", tt.op, tt.a, tt.b, res.Flags, want)
		}
	}
}

func TestAdcSbcChains(t *testing.T) {
	// 64-bit add via ADD/ADC must match native 64-bit arithmetic.
	f := func(a, b uint64) bool {
		lo := ExecDP(OpADD, uint32(a), uint32(b), 0, Flags{}, true)
		hi := ExecDP(OpADC, uint32(a>>32), uint32(b>>32), 0, lo.Flags, false)
		got := uint64(hi.Value)<<32 | uint64(lo.Value)
		return got == a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// 64-bit subtract via SUB/SBC.
	g := func(a, b uint64) bool {
		lo := ExecDP(OpSUB, uint32(a), uint32(b), 0, Flags{}, true)
		hi := ExecDP(OpSBC, uint32(a>>32), uint32(b>>32), 0, lo.Flags, false)
		got := uint64(hi.Value)<<32 | uint64(lo.Value)
		return got == a-b
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	tests := []struct {
		op   Op
		a, b uint32
		want uint32
	}{
		{OpSDIV, 10, 3, 3},
		{OpSDIV, 0xFFFFFFF6, 3, 0xFFFFFFFD}, // -10 / 3 = -3
		{OpSDIV, 7, 0, 0},                   // ARM: divide by zero -> 0
		{OpUDIV, 7, 0, 0},
		{OpSDIV, 0x80000000, 0xFFFFFFFF, 0x80000000}, // INT_MIN / -1
		{OpUDIV, 0xFFFFFFFF, 2, 0x7FFFFFFF},
	}
	for _, tt := range tests {
		res := ExecDP(tt.op, tt.a, tt.b, 0, Flags{}, false)
		if res.Value != tt.want {
			t.Errorf("%v(%#x,%#x) = %#x, want %#x", tt.op, tt.a, tt.b, res.Value, tt.want)
		}
	}
}

func TestShiftApply(t *testing.T) {
	tests := []struct {
		st   ShiftType
		v    uint32
		amt  uint8
		want uint32
	}{
		{ShiftLSL, 1, 4, 16},
		{ShiftLSL, 0xFFFFFFFF, 0, 0xFFFFFFFF},
		{ShiftLSR, 0x80000000, 31, 1},
		{ShiftASR, 0x80000000, 31, 0xFFFFFFFF},
		{ShiftASR, 0x40000000, 30, 1},
		{ShiftROR, 1, 1, 0x80000000},
		{ShiftROR, 0xF000000F, 4, 0xFF000000},
	}
	for _, tt := range tests {
		if got := tt.st.Apply(tt.v, tt.amt); got != tt.want {
			t.Errorf("%v.Apply(%#x, %d) = %#x, want %#x", tt.st, tt.v, tt.amt, got, tt.want)
		}
	}
}

func TestFloatOps(t *testing.T) {
	bits := math.Float32bits
	res := ExecDP(OpFADD, bits(1.5), bits(2.25), 0, Flags{}, false)
	if math.Float32frombits(res.Value) != 3.75 {
		t.Errorf("fadd = %v", math.Float32frombits(res.Value))
	}
	res = ExecDP(OpFDIV, bits(1), bits(0), 0, Flags{}, false)
	if !math.IsInf(float64(math.Float32frombits(res.Value)), 1) {
		t.Errorf("1/0 = %v, want +Inf", math.Float32frombits(res.Value))
	}
	res = ExecDP(OpFSQRT, 0, bits(9), 0, Flags{}, false)
	if math.Float32frombits(res.Value) != 3 {
		t.Errorf("sqrt(9) = %v", math.Float32frombits(res.Value))
	}
}

func TestFCmpFlags(t *testing.T) {
	bits := math.Float32bits
	nan := math.Float32bits(float32(math.NaN()))
	tests := []struct {
		a, b uint32
		want Flags
	}{
		{bits(1), bits(2), Flags{N: true}},
		{bits(2), bits(2), Flags{Z: true, C: true}},
		{bits(3), bits(2), Flags{C: true}},
		{nan, bits(2), Flags{C: true, V: true}},
		{bits(2), nan, Flags{C: true, V: true}},
	}
	for _, tt := range tests {
		res := ExecDP(OpFCMP, tt.a, tt.b, 0, Flags{}, true)
		if res.Flags != tt.want {
			t.Errorf("fcmp(%#x,%#x) = %+v, want %+v", tt.a, tt.b, res.Flags, tt.want)
		}
	}
}

func TestFtoiSaturation(t *testing.T) {
	bits := math.Float32bits
	tests := []struct {
		in   uint32
		want uint32
	}{
		{bits(1.9), 1},
		{bits(-1.9), 0xFFFFFFFF},
		{bits(3e9), 0x7FFFFFFF},
		{bits(-3e9), 0x80000000},
		{math.Float32bits(float32(math.NaN())), 0},
	}
	for _, tt := range tests {
		res := ExecDP(OpFTOI, 0, tt.in, 0, Flags{}, false)
		if res.Value != tt.want {
			t.Errorf("ftoi(%#x) = %#x, want %#x", tt.in, res.Value, tt.want)
		}
	}
}

func TestLogicalPreservesCV(t *testing.T) {
	cur := Flags{C: true, V: true}
	res := ExecDP(OpAND, 0xF0, 0x0F, 0, cur, true)
	if res.Value != 0 || !res.Flags.Z || !res.Flags.C || !res.Flags.V {
		t.Errorf("and flags = %+v value %#x", res.Flags, res.Value)
	}
}

func TestMovwMovt(t *testing.T) {
	res := ExecDP(OpMOVW, 0, 0xBEEF, 0, Flags{}, false)
	if res.Value != 0xBEEF {
		t.Fatalf("movw = %#x", res.Value)
	}
	res = ExecDP(OpMOVT, 0, 0xDEAD, res.Value, Flags{}, false)
	if res.Value != 0xDEADBEEF {
		t.Fatalf("movt = %#x", res.Value)
	}
}

func TestMulMla(t *testing.T) {
	f := func(a, b, acc uint32) bool {
		mul := ExecDP(OpMUL, a, b, 0, Flags{}, false)
		mla := ExecDP(OpMLA, a, b, acc, Flags{}, false)
		return mul.Value == a*b && mla.Value == acc+a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := opInvalid + 1; op < NumOps; op++ {
		if !op.Valid() {
			continue
		}
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName accepted a bogus mnemonic")
	}
}

func TestVectorModes(t *testing.T) {
	for v := Vector(0); v < NumVectors; v++ {
		want := ModeSVC
		if v == VecIRQ {
			want = ModeIRQ
		}
		if v.Mode() != want {
			t.Errorf("%v.Mode() = %v, want %v", v, v.Mode(), want)
		}
	}
}
