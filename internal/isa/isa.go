// Package isa defines the instruction-set architecture executed by the
// simulated CPU models: a 32-bit, ARM-flavoured RISC ISA with sixteen
// general-purpose registers, NZCV condition flags, full conditional
// execution, privileged modes, and a single-precision FPU operating on
// IEEE-754 bit patterns held in the general-purpose registers.
//
// The ISA deliberately mirrors the architectural state classes of the ARMv7
// Cortex-A9 evaluated in the reproduced paper (register file, flags, memory,
// translation state) without reproducing ARM encodings: soft-error
// propagation depends on the former, not the latter.
package isa

import "fmt"

// Reg identifies one of the sixteen architectural general-purpose registers.
type Reg uint8

// Architectural register assignments. SP, LR, and PC follow the ARM
// convention (r13, r14, r15).
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // stack pointer (r13)
	LR // link register (r14)
	PC // program counter (r15)

	// NumRegs is the number of architectural general-purpose registers.
	NumRegs = 16
)

// String returns the canonical assembly name of the register.
func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	case PC:
		return "pc"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Cond is a condition code controlling conditional execution. Every
// instruction carries one; CondAL executes unconditionally.
type Cond uint8

// Condition codes, mirroring the ARM set.
const (
	CondEQ Cond = iota // Z set
	CondNE             // Z clear
	CondCS             // C set (unsigned >=)
	CondCC             // C clear (unsigned <)
	CondMI             // N set
	CondPL             // N clear
	CondVS             // V set
	CondVC             // V clear
	CondHI             // C set and Z clear (unsigned >)
	CondLS             // C clear or Z set (unsigned <=)
	CondGE             // N == V
	CondLT             // N != V
	CondGT             // Z clear and N == V
	CondLE             // Z set or N != V
	CondAL             // always

	// NumConds is the number of condition codes.
	NumConds = 15
)

var condNames = [NumConds]string{
	"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
	"hi", "ls", "ge", "lt", "gt", "le", "al",
}

// String returns the assembly suffix for the condition ("al" for always).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Flags holds the NZCV arithmetic flags of the processor status register.
type Flags struct {
	N bool // negative
	Z bool // zero
	C bool // carry / not-borrow
	V bool // signed overflow
}

// Passes reports whether an instruction with condition c executes under the
// given flags.
func (c Cond) Passes(f Flags) bool {
	switch c {
	case CondEQ:
		return f.Z
	case CondNE:
		return !f.Z
	case CondCS:
		return f.C
	case CondCC:
		return !f.C
	case CondMI:
		return f.N
	case CondPL:
		return !f.N
	case CondVS:
		return f.V
	case CondVC:
		return !f.V
	case CondHI:
		return f.C && !f.Z
	case CondLS:
		return !f.C || f.Z
	case CondGE:
		return f.N == f.V
	case CondLT:
		return f.N != f.V
	case CondGT:
		return !f.Z && f.N == f.V
	case CondLE:
		return f.Z || f.N != f.V
	default:
		return true
	}
}

// Mode is a processor privilege mode.
type Mode uint8

// Processor modes. User code runs in ModeUser; the kernel runs in ModeSVC;
// interrupt handlers run in ModeIRQ. ModeSVC and ModeIRQ are privileged.
const (
	ModeUser Mode = 1 + iota
	ModeSVC
	ModeIRQ
)

// String returns a short human-readable mode name.
func (m Mode) String() string {
	switch m {
	case ModeUser:
		return "usr"
	case ModeSVC:
		return "svc"
	case ModeIRQ:
		return "irq"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Privileged reports whether the mode may access kernel-only pages, system
// registers, and MMIO devices.
func (m Mode) Privileged() bool { return m == ModeSVC || m == ModeIRQ }

// CPSR is the current program status register: NZCV flags, mode bits, and
// the IRQ-disable bit, packed exactly as stored architecturally so that a
// bit flip in a saved CPSR corrupts real state.
type CPSR uint32

// CPSR bit assignments.
const (
	CPSRFlagN    CPSR = 1 << 31
	CPSRFlagZ    CPSR = 1 << 30
	CPSRFlagC    CPSR = 1 << 29
	CPSRFlagV    CPSR = 1 << 28
	CPSRIRQOff   CPSR = 1 << 7 // interrupts disabled when set
	CPSRModeMask CPSR = 0x1F
)

// PackCPSR builds a CPSR word from its components.
func PackCPSR(f Flags, m Mode, irqOff bool) CPSR {
	var w CPSR
	if f.N {
		w |= CPSRFlagN
	}
	if f.Z {
		w |= CPSRFlagZ
	}
	if f.C {
		w |= CPSRFlagC
	}
	if f.V {
		w |= CPSRFlagV
	}
	if irqOff {
		w |= CPSRIRQOff
	}
	w |= CPSR(m) & CPSRModeMask
	return w
}

// Flags extracts the NZCV flags.
func (w CPSR) Flags() Flags {
	return Flags{
		N: w&CPSRFlagN != 0,
		Z: w&CPSRFlagZ != 0,
		C: w&CPSRFlagC != 0,
		V: w&CPSRFlagV != 0,
	}
}

// Mode extracts the processor mode. A corrupted mode field decodes to an
// invalid Mode value, which the CPU treats as a fatal (system-level) fault.
func (w CPSR) Mode() Mode { return Mode(w & CPSRModeMask) }

// IRQOff reports whether interrupts are masked.
func (w CPSR) IRQOff() bool { return w&CPSRIRQOff != 0 }

// Valid reports whether the mode field holds a defined processor mode.
func (w CPSR) Valid() bool {
	m := w.Mode()
	return m == ModeUser || m == ModeSVC || m == ModeIRQ
}

// SysReg identifies a system register accessible via MRS/MSR.
type SysReg uint8

// System registers.
const (
	SysCPSR SysReg = iota // current program status register
	SysSPSR               // saved status of the current exception mode
	SysELR                // exception link register of the current mode
	SysTTBR               // translation table base register (MMU on when non-zero)
	SysVBAR               // vector base address register

	// NumSysRegs is the number of defined system registers.
	NumSysRegs = 5
)

var sysRegNames = [NumSysRegs]string{"cpsr", "spsr", "elr", "ttbr", "vbar"}

// String returns the assembly name of the system register.
func (s SysReg) String() string {
	if int(s) < len(sysRegNames) {
		return sysRegNames[s]
	}
	return fmt.Sprintf("sysreg(%d)", uint8(s))
}

// Vector is an exception vector. On an exception the CPU jumps to
// VBAR + 4*Vector in the target mode with interrupts masked.
type Vector uint8

// Exception vectors.
const (
	VecReset         Vector = iota // power-on / reset
	VecUndef                       // undefined or corrupted instruction
	VecSVC                         // supervisor call (syscall)
	VecPrefetchAbort               // instruction fetch fault (translation/permission)
	VecDataAbort                   // data access fault (translation/permission/alignment)
	VecIRQ                         // external interrupt (timer)

	// NumVectors is the number of exception vectors.
	NumVectors = 6
)

var vectorNames = [NumVectors]string{
	"reset", "undef", "svc", "prefetch-abort", "data-abort", "irq",
}

// String returns a human-readable vector name.
func (v Vector) String() string {
	if int(v) < len(vectorNames) {
		return vectorNames[v]
	}
	return fmt.Sprintf("vector(%d)", uint8(v))
}

// Mode returns the processor mode entered when the vector is taken.
func (v Vector) Mode() Mode {
	if v == VecIRQ {
		return ModeIRQ
	}
	return ModeSVC
}

// WordBytes is the size of a machine word and of an instruction in bytes.
const WordBytes = 4
