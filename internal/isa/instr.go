package isa

import (
	"fmt"
	"strings"
)

// Encoding layout (32-bit fixed width):
//
//	[31:28] cond
//	[27:22] opcode
//	[21]    I (second operand is an immediate)
//	[20]    S (update flags)
//	[19:16] Rd
//	[15:12] Rn                      (FmtDP, FmtMem)
//	[11:0]  imm12, sign-extended    (I=1)
//	[11:8]  Rm; [7:6] shift type; [5:1] shift amount   (I=0)
//	[15:0]  imm16                   (FmtMovW)
//	[21:0]  signed word offset      (FmtBr)
const (
	condShift = 28
	opShift   = 22
	opMask    = 0x3F
	immBit    = 1 << 21
	setBit    = 1 << 20
	rdShift   = 16
	rnShift   = 12
	rmShift   = 8
	shTShift  = 6
	shAShift  = 1
	imm12Mask = 0xFFF
	imm16Mask = 0xFFFF
	off22Mask = 0x3FFFFF
)

// Instruction is a decoded machine instruction.
type Instruction struct {
	Op       Op
	Cond     Cond
	SetFlags bool
	Rd       Reg // destination (link register for BL; data register for mem ops)
	Rn       Reg // first source / base register
	Rm       Reg // register second operand (when UseImm is false)
	UseImm   bool
	Imm      int32     // sign-extended imm12, zero-extended imm16, word offset, or SVC/sysreg number
	Shift    ShiftType // barrel shift applied to Rm
	ShAmt    uint8     // shift amount 0..31
}

// Encode packs the instruction into its 32-bit machine word.
func (in Instruction) Encode() uint32 {
	w := uint32(in.Cond)<<condShift | uint32(in.Op&opMask)<<opShift
	if in.SetFlags {
		w |= setBit
	}
	info := in.Op.Info()
	switch info.Format {
	case FmtBr:
		return w&^uint32(setBit) | uint32(in.Imm)&off22Mask
	case FmtMovW:
		return w | uint32(in.Rd)<<rdShift | uint32(in.Imm)&imm16Mask
	case FmtBX:
		return w | uint32(in.Rm)<<rmShift
	case FmtSys:
		return w | uint32(in.Rd)<<rdShift | uint32(in.Imm)&imm12Mask
	default: // FmtDP, FmtMem
		w |= uint32(in.Rd)<<rdShift | uint32(in.Rn)<<rnShift
		if in.UseImm {
			return w | immBit | uint32(in.Imm)&imm12Mask
		}
		return w | uint32(in.Rm)<<rmShift |
			uint32(in.Shift)<<shTShift | uint32(in.ShAmt&31)<<shAShift
	}
}

// Decode unpacks a machine word. Words with undefined opcodes or an invalid
// condition field decode to an Instruction whose Op is not Valid; executing
// one raises an undefined-instruction exception. This is the path by which a
// bit flip in instruction memory becomes a crash.
func Decode(w uint32) Instruction {
	in := Instruction{
		Op:   Op(w >> opShift & opMask),
		Cond: Cond(w >> condShift),
	}
	if !in.Op.Valid() || in.Cond >= NumConds {
		in.Op = opInvalid
		return in
	}
	info := in.Op.Info()
	switch info.Format {
	case FmtBr:
		in.Imm = signExtend(w&off22Mask, 22)
		if in.Op == OpBL {
			in.Rd = LR
		}
	case FmtMovW:
		in.Rd = Reg(w >> rdShift & 0xF)
		in.Imm = int32(w & imm16Mask)
	case FmtBX:
		in.Rm = Reg(w >> rmShift & 0xF)
	case FmtSys:
		in.Rd = Reg(w >> rdShift & 0xF)
		in.Imm = int32(w & imm12Mask)
		if (in.Op == OpMRS || in.Op == OpMSR) && in.Imm >= NumSysRegs {
			// A corrupted system-register index is an undefined instruction.
			in.Op = opInvalid
			return Instruction{Cond: in.Cond}
		}
	default: // FmtDP, FmtMem
		in.SetFlags = w&setBit != 0
		in.Rd = Reg(w >> rdShift & 0xF)
		in.Rn = Reg(w >> rnShift & 0xF)
		if w&immBit != 0 {
			in.UseImm = true
			in.Imm = signExtend(w&imm12Mask, 12)
		} else {
			in.Rm = Reg(w >> rmShift & 0xF)
			in.Shift = ShiftType(w >> shTShift & 3)
			in.ShAmt = uint8(w >> shAShift & 31)
		}
	}
	return in
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// String renders the instruction in assembly syntax.
func (in Instruction) String() string {
	if !in.Op.Valid() {
		return "<undefined>"
	}
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Cond != CondAL {
		b.WriteString(in.Cond.String())
	}
	if in.SetFlags && !in.Op.Info().SetsFlags {
		b.WriteByte('s')
	}
	info := in.Op.Info()
	switch info.Format {
	case FmtBr:
		fmt.Fprintf(&b, " %+d", in.Imm)
	case FmtMovW:
		fmt.Fprintf(&b, " %s, #%d", in.Rd, uint32(in.Imm))
	case FmtBX:
		fmt.Fprintf(&b, " %s", in.Rm)
	case FmtSys:
		switch in.Op {
		case OpSVC:
			fmt.Fprintf(&b, " #%d", in.Imm)
		case OpMRS:
			fmt.Fprintf(&b, " %s, %s", in.Rd, SysReg(in.Imm))
		case OpMSR:
			fmt.Fprintf(&b, " %s, %s", SysReg(in.Imm), in.Rd)
		}
	case FmtMem:
		fmt.Fprintf(&b, " %s, [%s", in.Rd, in.Rn)
		if in.UseImm {
			if in.Imm != 0 {
				fmt.Fprintf(&b, ", #%d", in.Imm)
			}
		} else {
			fmt.Fprintf(&b, ", %s", in.Rm)
			if in.ShAmt != 0 {
				fmt.Fprintf(&b, ", %s #%d", in.Shift, in.ShAmt)
			}
		}
		b.WriteByte(']')
	default: // FmtDP
		b.WriteByte(' ')
		args := make([]string, 0, 3)
		if info.WritesRd || info.ReadsRd {
			args = append(args, in.Rd.String())
		}
		if info.ReadsRn {
			args = append(args, in.Rn.String())
		}
		if info.ReadsOp2 {
			if in.UseImm {
				args = append(args, fmt.Sprintf("#%d", in.Imm))
			} else {
				op2 := in.Rm.String()
				if in.ShAmt != 0 {
					op2 += fmt.Sprintf(", %s #%d", in.Shift, in.ShAmt)
				}
				args = append(args, op2)
			}
		}
		b.WriteString(strings.Join(args, ", "))
	}
	return b.String()
}
