package cpu

import (
	"testing"

	"armsefi/internal/asm"
)

const benchLoop = `
	mov r0, #0
	ldr r1, =200000
loop:
	add r0, r0, r1
	eor r2, r0, r1
	and r3, r2, #0xFF
	sub r1, #1
	cmp r1, #0
	bgt loop
done:
	b done
`

func benchProg(b *testing.B) *asm.Program {
	b.Helper()
	p, err := asm.Assemble("bench.s", benchLoop, asm.Config{TextBase: 0, DataBase: 0x4000})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkAtomicModel measures functional-model simulation throughput
// (1.5M simulated cycles per op).
func BenchmarkAtomicModel(b *testing.B) {
	prog := benchProg(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := bareSystem()
		if err := sys.Bus.DRAM().LoadImage(prog.TextBase, prog.Text); err != nil {
			b.Fatal(err)
		}
		c := NewAtomic(sys, NeverIRQ{})
		b.StartTimer()
		for c.Cycles() < 1_500_000 {
			c.StepCycle()
		}
	}
}

// BenchmarkDetailedModel measures out-of-order model simulation throughput
// (1.5M simulated cycles per op).
func BenchmarkDetailedModel(b *testing.B) {
	prog := benchProg(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := bareSystem()
		if err := sys.Bus.DRAM().LoadImage(prog.TextBase, prog.Text); err != nil {
			b.Fatal(err)
		}
		c := NewDetailed(sys, NeverIRQ{}, DetailedConfig{})
		b.StartTimer()
		for c.Cycles() < 1_500_000 {
			c.StepCycle()
		}
	}
}

// BenchmarkDetailedCycleLoop isolates the steady-state cycle loop: the
// core is built and warmed outside the timer (caches filled, uop pool at
// its steady population), and each op is one simulated cycle.
// ReportAllocs pins the allocation-free contract — cmd/perfguard fails
// the build if allocs/op ever leaves zero.
func BenchmarkDetailedCycleLoop(b *testing.B) {
	prog := benchProg(b)
	sys := bareSystem()
	if err := sys.Bus.DRAM().LoadImage(prog.TextBase, prog.Text); err != nil {
		b.Fatal(err)
	}
	c := NewDetailed(sys, NeverIRQ{}, DetailedConfig{})
	for c.Cycles() < 10_000 {
		c.StepCycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.StepCycle()
	}
}
