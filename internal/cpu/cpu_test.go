package cpu

import (
	"math/rand"
	"testing"

	"armsefi/internal/asm"
	"armsefi/internal/isa"
	"armsefi/internal/mem"
)

// bareSystem builds a small memory system with no MMU (TTBR=0: identity
// mapping, full permissions) for bare-metal core tests.
func bareSystem() *mem.System {
	dram := mem.NewDRAM(1 << 20)
	bus := mem.NewBus(dram)
	return mem.NewSystem(mem.SystemConfig{
		L1I:        mem.CacheConfig{Name: "l1i", SizeBytes: 4 << 10, LineBytes: 32, Ways: 2, HitCycles: 1},
		L1D:        mem.CacheConfig{Name: "l1d", SizeBytes: 4 << 10, LineBytes: 32, Ways: 2, HitCycles: 1},
		L2:         mem.CacheConfig{Name: "l2", SizeBytes: 32 << 10, LineBytes: 32, Ways: 4, HitCycles: 4},
		TLBEntries: 8,
	}, bus)
}

// assembleAt assembles a bare-metal program with text at address 0.
func assembleAt(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble("bare.s", src, asm.Config{TextBase: 0, DataBase: 0x4000})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// load stages a program into a fresh system.
func load(t *testing.T, p *asm.Program) *mem.System {
	t.Helper()
	sys := bareSystem()
	if err := sys.Bus.DRAM().LoadImage(p.TextBase, p.Text); err != nil {
		t.Fatal(err)
	}
	if len(p.Data) > 0 {
		if err := sys.Bus.DRAM().LoadImage(p.DataBase, p.Data); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

// runSteps steps a core for a bounded number of cycles or until it spins
// on a `b .` instruction (PC stable across steps with no work in flight is
// detected by simply exhausting the budget).
func runSteps(core Core, maxCycles int) {
	for core.Cycles() < uint64(maxCycles) {
		core.StepCycle()
	}
}

// bothModels runs the program on both CPU models and invokes check on each.
func bothModels(t *testing.T, src string, cycles int, check func(name string, c Core)) {
	t.Helper()
	prog := assembleAt(t, src)
	{
		sys := load(t, prog)
		c := NewAtomic(sys, NeverIRQ{})
		runSteps(c, cycles)
		check("atomic", c)
	}
	{
		sys := load(t, prog)
		c := NewDetailed(sys, NeverIRQ{}, DetailedConfig{})
		runSteps(c, cycles)
		check("detailed", c)
	}
}

func TestBasicArithmetic(t *testing.T) {
	src := `
	mov r0, #10
	mov r1, #3
	mul r2, r0, r1
	sub r3, r2, #5
	lsl r4, r3, #2
	sdiv r5, r4, r1
	and r6, r5, #0xF
done:
	b done
`
	bothModels(t, src, 400, func(name string, c Core) {
		want := map[isa.Reg]uint32{
			isa.R2: 30, isa.R3: 25, isa.R4: 100, isa.R5: 33, isa.R6: 1,
		}
		for r, v := range want {
			if got := c.Reg(r); got != v {
				t.Errorf("%s: %v = %d, want %d", name, r, got, v)
			}
		}
	})
}

func TestConditionalExecution(t *testing.T) {
	src := `
	mov r0, #5
	cmp r0, #5
	moveq r1, #1
	movne r2, #1
	addeq r3, r0, #10
	subne r4, r0, #10
	mov r5, #7      ; unconditional afterwards still works
done:
	b done
`
	bothModels(t, src, 300, func(name string, c Core) {
		if c.Reg(isa.R1) != 1 || c.Reg(isa.R2) != 0 || c.Reg(isa.R3) != 15 ||
			c.Reg(isa.R4) != 0 || c.Reg(isa.R5) != 7 {
			t.Errorf("%s: r1=%d r2=%d r3=%d r4=%d r5=%d",
				name, c.Reg(isa.R1), c.Reg(isa.R2), c.Reg(isa.R3), c.Reg(isa.R4), c.Reg(isa.R5))
		}
	})
}

func TestLoadStoreAndForwarding(t *testing.T) {
	src := `
	ldr r0, =buf
	ldr r1, =0xCAFEBABE
	str r1, [r0]
	ldr r2, [r0]        ; forwarded or from cache
	strh r1, [r0, #8]
	ldrh r3, [r0, #8]
	strb r1, [r0, #12]
	ldrb r4, [r0, #12]
	ldr r5, [r0, #16]   ; untouched word is zero
done:
	b done
.data
buf: .space 32
`
	bothModels(t, src, 500, func(name string, c Core) {
		if c.Reg(isa.R2) != 0xCAFEBABE {
			t.Errorf("%s: word store/load = %#x", name, c.Reg(isa.R2))
		}
		if c.Reg(isa.R3) != 0xBABE {
			t.Errorf("%s: half store/load = %#x", name, c.Reg(isa.R3))
		}
		if c.Reg(isa.R4) != 0xBE {
			t.Errorf("%s: byte store/load = %#x", name, c.Reg(isa.R4))
		}
		if c.Reg(isa.R5) != 0 {
			t.Errorf("%s: clean word = %#x", name, c.Reg(isa.R5))
		}
	})
}

func TestCallAndReturn(t *testing.T) {
	src := `
	ldr sp, =0x8000
	mov r0, #4
	bl double
	mov r5, r0
	bl double
	mov r6, r0
done:
	b done
double:
	add r0, r0, r0
	bx lr
`
	bothModels(t, src, 500, func(name string, c Core) {
		if c.Reg(isa.R5) != 8 || c.Reg(isa.R6) != 16 {
			t.Errorf("%s: r5=%d r6=%d", name, c.Reg(isa.R5), c.Reg(isa.R6))
		}
	})
}

func TestLoopWithBranchPrediction(t *testing.T) {
	// A data-dependent branch pattern: count set bits of a constant.
	src := `
	ldr r0, =0xA5A5F00F
	mov r1, #0          ; popcount
	mov r2, #32
loop:
	tst r0, #1
	addne r1, r1, #1
	lsr r0, r0, #1
	sub r2, #1
	cmp r2, #0
	bgt loop
done:
	b done
`
	bothModels(t, src, 3000, func(name string, c Core) {
		if c.Reg(isa.R1) != 16 {
			t.Errorf("%s: popcount = %d, want 16", name, c.Reg(isa.R1))
		}
	})
}

func TestPCWriteIsJump(t *testing.T) {
	src := `
	ldr r0, =target
	mov pc, r0
	mov r1, #99        ; must be skipped
target:
	mov r2, #7
done:
	b done
`
	bothModels(t, src, 300, func(name string, c Core) {
		if c.Reg(isa.R1) != 0 || c.Reg(isa.R2) != 7 {
			t.Errorf("%s: r1=%d r2=%d", name, c.Reg(isa.R1), c.Reg(isa.R2))
		}
	})
}

func TestExceptionVectorAndELR(t *testing.T) {
	// Vector table at 0; a data abort must jump to vector 4 with ELR
	// pointing at the faulting instruction.
	src := `
	b start            ; 0x00 reset
	b hang             ; 0x04 undef
	b hang             ; 0x08 svc
	b hang             ; 0x0c pabort
	b dabort           ; 0x10 dabort
	b hang             ; 0x14 irq
start:
	ldr r0, =0x900000  ; beyond 1MB DRAM -> bus error -> data abort
	mov r9, #0
faulting:
	ldr r1, [r0]
	mov r9, #1         ; must be skipped
hang:
	b hang
dabort:
	mrs r2, elr
	ldr r3, =faulting
	mov r4, #1
	b hang
`
	bothModels(t, src, 800, func(name string, c Core) {
		if c.Reg(isa.R4) != 1 {
			t.Fatalf("%s: abort handler not reached", name)
		}
		if c.Reg(isa.R9) != 0 {
			t.Errorf("%s: instruction after fault committed", name)
		}
		if c.Reg(isa.R2) != c.Reg(isa.R3) {
			t.Errorf("%s: ELR = %#x, want %#x", name, c.Reg(isa.R2), c.Reg(isa.R3))
		}
	})
}

func TestSVCAndERET(t *testing.T) {
	src := `
	b start
	b hang
	b svc_handler      ; 0x08
	b hang
	b hang
	b hang
start:
	mov r0, #5
	svc #0
	mov r5, r0         ; after return: r0 was doubled by the handler
done:
	b done
hang:
	b hang
svc_handler:
	add r0, r0, r0
	eret
`
	bothModels(t, src, 500, func(name string, c Core) {
		if c.Reg(isa.R5) != 10 {
			t.Errorf("%s: r5 = %d, want 10", name, c.Reg(isa.R5))
		}
	})
}

func TestUndefInstruction(t *testing.T) {
	src := `
	b start
	b undef_handler    ; 0x04
	b hang
	b hang
	b hang
	b hang
start:
	.word 0xFFFFFFFF   ; not a valid instruction
	mov r9, #1
hang:
	b hang
undef_handler:
	mov r4, #1
	b hang
`
	// .word in .text: allowed by the assembler? Data directives are
	// section-agnostic in this assembler.
	bothModels(t, src, 400, func(name string, c Core) {
		if c.Reg(isa.R4) != 1 {
			t.Errorf("%s: undef handler not reached", name)
		}
	})
}

func TestBankedStackPointers(t *testing.T) {
	src := `
	ldr sp, =0x1000    ; SVC stack
	mrs r2, cpsr
	ldr r1, =0x83      ; IRQ mode, IRQs masked
	msr cpsr, r1
	ldr sp, =0x2000    ; IRQ stack
	mov r3, sp
	msr cpsr, r2       ; back to SVC
	mov r4, sp
done:
	b done
`
	bothModels(t, src, 400, func(name string, c Core) {
		if c.Reg(isa.R3) != 0x2000 {
			t.Errorf("%s: IRQ sp = %#x", name, c.Reg(isa.R3))
		}
		if c.Reg(isa.R4) != 0x1000 {
			t.Errorf("%s: SVC sp not restored: %#x", name, c.Reg(isa.R4))
		}
	})
}

// pulseIRQ asserts once after a trigger cycle until acknowledged by the
// test (cleared manually).
type pulseIRQ struct {
	core    Core
	at      uint64
	cleared bool
}

func (p *pulseIRQ) Pending() bool {
	return !p.cleared && p.core != nil && p.core.Cycles() >= p.at
}

func TestIRQDelivery(t *testing.T) {
	src := `
	b start
	b hang
	b hang
	b hang
	b hang
	b irq_handler      ; 0x14
start:
	mrs r0, cpsr
	bic r0, r0, #0x80  ; enable IRQs
	msr cpsr, r0
	mov r1, #0
spin:
	add r1, r1, #1
	cmp r5, #1
	bne spin
	mov r6, #1
done:
	b done
hang:
	b hang
irq_handler:
	mov r5, #1
	eret
`
	prog := assembleAt(t, src)
	for _, model := range []string{"atomic", "detailed"} {
		sys := load(t, prog)
		irq := &pulseIRQ{at: 150}
		var core Core
		if model == "atomic" {
			core = NewAtomic(sys, irq)
		} else {
			core = NewDetailed(sys, irq, DetailedConfig{})
		}
		irq.core = core
		for core.Cycles() < 2000 {
			core.StepCycle()
			if core.Reg(isa.R5) == 1 {
				irq.cleared = true
			}
		}
		if core.Reg(isa.R6) != 1 {
			t.Errorf("%s: IRQ not delivered or spin not resumed (r1=%d r5=%d)",
				model, core.Reg(isa.R1), core.Reg(isa.R5))
		}
	}
}

// TestModelEquivalenceRandomALU runs random straight-line ALU programs on
// both models and requires identical architectural results.
func TestModelEquivalenceRandomALU(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	mnems := []string{"add", "sub", "rsb", "and", "orr", "eor", "bic", "mul", "adc", "sbc"}
	for trial := 0; trial < 60; trial++ {
		src := "\tldr sp, =0x8000\n"
		// Seed registers with random constants.
		for r := 0; r < 8; r++ {
			src += "\tldr r" + itoa(r) + ", =" + itoa(int(rng.Uint32())) + "\n"
		}
		for i := 0; i < 30; i++ {
			m := mnems[rng.Intn(len(mnems))]
			if rng.Intn(3) == 0 {
				m += "s"
			}
			rd, rn, rm := rng.Intn(8), rng.Intn(8), rng.Intn(8)
			src += "\t" + m + " r" + itoa(rd) + ", r" + itoa(rn) + ", r" + itoa(rm)
			if sh := rng.Intn(4); sh == 0 {
				src += ", lsl #" + itoa(rng.Intn(31)+1)
			}
			src += "\n"
		}
		src += "done:\n\tb done\n"
		prog := assembleAt(t, src)

		results := make([][8]uint32, 2)
		for mi, model := range []string{"atomic", "detailed"} {
			sys := load(t, prog)
			var core Core
			if model == "atomic" {
				core = NewAtomic(sys, NeverIRQ{})
			} else {
				core = NewDetailed(sys, NeverIRQ{}, DetailedConfig{})
			}
			runSteps(core, 1500)
			for r := 0; r < 8; r++ {
				results[mi][r] = core.Reg(isa.Reg(r))
			}
		}
		if results[0] != results[1] {
			t.Fatalf("trial %d: models diverge\natomic:   %v\ndetailed: %v\nprogram:\n%s",
				trial, results[0], results[1], src)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	u := uint64(v)
	if neg {
		u = uint64(-int64(v))
	}
	var buf [24]byte
	i := len(buf)
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func TestRegFileInjectionSurface(t *testing.T) {
	sys := load(t, assembleAt(t, "done:\n\tb done\n"))
	d := NewDetailed(sys, NeverIRQ{}, DetailedConfig{})
	if d.RegFileBits() != 56*32 {
		t.Errorf("detailed regfile bits = %d, want %d", d.RegFileBits(), 56*32)
	}
	// Flip/unflip must be involutive on committed state.
	before := d.Reg(isa.R3)
	d.FlipRegFileBit(3*32 + 7)
	d.FlipRegFileBit(3*32 + 7)
	if d.Reg(isa.R3) != before {
		t.Error("double flip changed state")
	}
	a := NewAtomic(sys, NeverIRQ{})
	if a.RegFileBits() != 16*32 {
		t.Errorf("atomic regfile bits = %d", a.RegFileBits())
	}
}

func TestDetailedSquashesWrongPath(t *testing.T) {
	// A tight loop mispredicts at least once at the end; the detailed
	// model must report squashed uops but identical architecture.
	src := `
	mov r0, #0
	mov r1, #20
loop:
	add r0, r0, r1
	sub r1, #1
	cmp r1, #0
	bgt loop
done:
	b done
`
	prog := assembleAt(t, src)
	sys := load(t, prog)
	d := NewDetailed(sys, NeverIRQ{}, DetailedConfig{})
	runSteps(d, 2000)
	if d.Reg(isa.R0) != 210 {
		t.Fatalf("sum = %d, want 210", d.Reg(isa.R0))
	}
	if d.SquashedUops() == 0 {
		t.Error("no squashed uops in a branchy loop")
	}
	if d.Counters().BranchMisses == 0 {
		t.Error("no branch misses recorded")
	}
}

func TestSaveLoadArchRoundTrip(t *testing.T) {
	src := `
	mov r0, #42
	ldr sp, =0x3000
done:
	b done
`
	prog := assembleAt(t, src)
	sys := load(t, prog)
	d := NewDetailed(sys, NeverIRQ{}, DetailedConfig{})
	runSteps(d, 300)
	st := d.SaveArch()
	if st.Regs[0] != 42 {
		t.Fatalf("saved r0 = %d", st.Regs[0])
	}
	d2 := NewDetailed(sys, NeverIRQ{}, DetailedConfig{})
	d2.LoadArch(st)
	if d2.Reg(isa.R0) != 42 || d2.Reg(isa.SP) != 0x3000 || d2.PC() != st.PC {
		t.Error("LoadArch did not restore state")
	}
	a := NewAtomic(sys, NeverIRQ{})
	a.LoadArch(st)
	if a.Reg(isa.R0) != 42 || a.PC() != st.PC {
		t.Error("atomic LoadArch did not restore state")
	}
}

func TestTinyResourcePipelineStillCorrect(t *testing.T) {
	// A deliberately starved configuration (min physical registers, tiny
	// ROB/IQ) must still compute correctly — it exercises rename stalls
	// and free-list pressure.
	src := `
	mov r0, #0
	mov r1, #50
tight:
	add r0, r0, r1
	adds r2, r0, r0
	adc r3, r2, r1
	sub r1, #1
	cmp r1, #0
	bgt tight
done:
	b done
`
	prog := assembleAt(t, src)
	sys := load(t, prog)
	d := NewDetailed(sys, NeverIRQ{}, DetailedConfig{
		PhysRegs: numArch + 4, ROBSize: 4, IQSize: 2, FetchQueue: 2, Width: 2,
	})
	runSteps(d, 30_000)
	sys2 := load(t, prog)
	a := NewAtomic(sys2, NeverIRQ{})
	runSteps(a, 30_000)
	for r := isa.Reg(0); r < 4; r++ {
		if d.Reg(r) != a.Reg(r) {
			t.Fatalf("r%d: detailed %#x vs atomic %#x", r, d.Reg(r), a.Reg(r))
		}
	}
}

func TestSerializedOpsDrainPipeline(t *testing.T) {
	// A dense mix of system ops and ordinary code must retire in order.
	src := `
	mov r0, #1
	mrs r1, cpsr
	add r0, r0, #1
	mrs r2, cpsr
	add r0, r0, #1
	msr spsr, r0
	mrs r3, spsr
done:
	b done
`
	bothModels(t, src, 600, func(name string, c Core) {
		if c.Reg(isa.R0) != 3 {
			t.Errorf("%s: r0 = %d, want 3", name, c.Reg(isa.R0))
		}
		if c.Reg(isa.R3) != 3 {
			t.Errorf("%s: spsr readback = %d, want 3", name, c.Reg(isa.R3))
		}
		if c.Reg(isa.R1) != c.Reg(isa.R2) {
			t.Errorf("%s: cpsr reads differ: %#x vs %#x", name, c.Reg(isa.R1), c.Reg(isa.R2))
		}
	})
}

func TestStoreCommitFault(t *testing.T) {
	// A store that faults at commit must raise a precise data abort: the
	// following instruction never commits.
	src := `
	b start
	b hang
	b hang
	b hang
	b dabort
	b hang
start:
	ldr r0, =0x900000  ; outside DRAM
	mov r9, #0
	str r9, [r0]
	mov r9, #1
hang:
	b hang
dabort:
	mov r4, #1
	b hang
`
	bothModels(t, src, 800, func(name string, c Core) {
		if c.Reg(isa.R4) != 1 {
			t.Fatalf("%s: abort handler not reached", name)
		}
		if c.Reg(isa.R9) != 0 {
			t.Errorf("%s: instruction after faulting store committed", name)
		}
	})
}

func TestCounterValuesWired(t *testing.T) {
	src := `
	ldr r0, =buf
	mov r1, #0
loop:
	ldr r2, [r0, r1, lsl #2]
	add r1, #1
	cmp r1, #64
	blt loop
done:
	b done
.data
buf: .space 256
`
	prog := assembleAt(t, src)
	sys := load(t, prog)
	d := NewDetailed(sys, NeverIRQ{}, DetailedConfig{})
	runSteps(d, 3000)
	c := d.Counters()
	if c.Instructions == 0 || c.Cycles == 0 {
		t.Fatal("empty counters")
	}
	if c.L1DAccesses < 64 {
		t.Errorf("L1D accesses = %d, want >= 64", c.L1DAccesses)
	}
	if c.L1DMisses == 0 || c.L1IMisses == 0 {
		t.Errorf("cold-start misses missing: %+v", c)
	}
	if _, err := c.Value("bogus"); err == nil {
		t.Error("bogus counter accepted")
	}
}

// TestModelEquivalenceRandomMemPrograms extends the random-program
// equivalence check to loads, stores, and short forward branches: both
// models must agree on every register and on the scratch-memory image.
func TestModelEquivalenceRandomMemPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		src := "\tldr sp, =0x8000\n\tldr r7, =scratch\n"
		for r := 0; r < 6; r++ {
			src += "\tldr r" + itoa(r) + ", =" + itoa(int(rng.Uint32())) + "\n"
		}
		label := 0
		for i := 0; i < 24; i++ {
			switch rng.Intn(5) {
			case 0: // store to scratch (aligned word within 256 bytes)
				off := rng.Intn(64) * 4
				src += "\tstr r" + itoa(rng.Intn(6)) + ", [r7, #" + itoa(off) + "]\n"
			case 1: // load from scratch
				off := rng.Intn(64) * 4
				src += "\tldr r" + itoa(rng.Intn(6)) + ", [r7, #" + itoa(off) + "]\n"
			case 2: // conditional forward skip
				src += "\tcmp r" + itoa(rng.Intn(6)) + ", r" + itoa(rng.Intn(6)) + "\n"
				src += "\tbeq skip" + itoa(label) + "\n"
				src += "\tadd r" + itoa(rng.Intn(6)) + ", r" + itoa(rng.Intn(6)) + ", #1\n"
				src += "skip" + itoa(label) + ":\n"
				label++
			case 3: // byte store/load
				off := rng.Intn(250)
				src += "\tstrb r" + itoa(rng.Intn(6)) + ", [r7, #" + itoa(off) + "]\n"
				src += "\tldrb r" + itoa(rng.Intn(6)) + ", [r7, #" + itoa(off) + "]\n"
			default: // ALU op
				src += "\teor r" + itoa(rng.Intn(6)) + ", r" + itoa(rng.Intn(6)) +
					", r" + itoa(rng.Intn(6)) + ", ror #" + itoa(1+rng.Intn(30)) + "\n"
			}
		}
		src += "done:\n\tb done\n.data\nscratch: .space 256\n"
		prog := assembleAt(t, src)

		type state struct {
			regs [6]uint32
			mem  []byte
		}
		var results [2]state
		for mi, model := range []string{"atomic", "detailed"} {
			sys := load(t, prog)
			var core Core
			if model == "atomic" {
				core = NewAtomic(sys, NeverIRQ{})
			} else {
				core = NewDetailed(sys, NeverIRQ{}, DetailedConfig{})
			}
			runSteps(core, 4000)
			for r := 0; r < 6; r++ {
				results[mi].regs[r] = core.Reg(isa.Reg(r))
			}
			sys.L1D.FlushAll()
			sys.L2.FlushAll()
			results[mi].mem = sys.Bus.DRAM().PeekBytes(prog.MustSymbol("scratch"), 256)
		}
		if results[0].regs != results[1].regs {
			t.Fatalf("trial %d: registers diverge\natomic:   %v\ndetailed: %v\nprogram:\n%s",
				trial, results[0].regs, results[1].regs, src)
		}
		if string(results[0].mem) != string(results[1].mem) {
			t.Fatalf("trial %d: memory diverges\nprogram:\n%s", trial, src)
		}
	}
}
