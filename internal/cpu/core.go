// Package cpu implements the two CPU models of the simulated platform,
// mirroring the two gem5 models the paper uses:
//
//   - Atomic: a fast functional model with approximate timing, used for
//     golden runs and the architecture-level row of Table I.
//   - Detailed: a cycle-approximate out-of-order core (rename, ROB, issue
//     queue, store buffer, branch prediction) whose physical register file
//     is a fault-injection target, used for all reliability experiments.
//
// Both models execute identical ISA semantics (package isa) over the same
// memory system (package mem), so functional outputs agree bit-for-bit
// between models while timing differs.
package cpu

import (
	"fmt"

	"armsefi/internal/isa"
	"armsefi/internal/mem"
)

// IRQLine is an interrupt source sampled by the core at instruction
// boundaries (atomic) or commit (detailed).
type IRQLine interface {
	Pending() bool
}

// NeverIRQ is an IRQLine that never asserts, for bare-metal tests.
type NeverIRQ struct{}

// Pending implements IRQLine.
func (NeverIRQ) Pending() bool { return false }

// Core is the interface shared by the two CPU models.
type Core interface {
	// Reset initialises the core to the reset vector in SVC mode with
	// interrupts masked.
	Reset()
	// StepCycle advances simulated time and returns the number of cycles
	// consumed (the detailed model returns 1; the atomic model returns the
	// cost of one instruction).
	StepCycle() int
	// Cycles returns the total simulated cycles.
	Cycles() uint64
	// Instructions returns the number of committed instructions.
	Instructions() uint64
	// Counters returns the performance counters.
	Counters() Counters
	// Fatal reports whether the core has reached an unrecoverable state
	// (e.g., a corrupted CPSR mode field).
	Fatal() bool
	// Mode returns the current privilege mode.
	Mode() isa.Mode
	// PC returns the architectural (committed) program counter.
	PC() uint32
	// Reg returns the committed value of an architectural register.
	Reg(r isa.Reg) uint32
	// RegFileBits returns the size of the model's register-file injection
	// surface in bits.
	RegFileBits() uint64
	// FlipRegFileBit inverts one bit of the register file.
	FlipRegFileBit(bit uint64)
}

// Counters are the per-run performance counters compared between the two
// platform presets in the Section IV-D methodology check.
type Counters struct {
	Cycles       uint64
	Instructions uint64
	BranchMisses uint64
	L1DAccesses  uint64
	L1DMisses    uint64
	DTLBMisses   uint64
	L1IMisses    uint64
	ITLBMisses   uint64
}

// CounterNames lists the seven hardware counters of Section IV-D in
// presentation order (plus instructions, which the paper uses implicitly to
// align runs).
var CounterNames = []string{
	"cycles", "branch_misses", "l1d_accesses", "l1d_misses",
	"dtlb_misses", "l1i_misses", "itlb_misses",
}

// Value returns a counter by its Section IV-D name.
func (c Counters) Value(name string) (uint64, error) {
	switch name {
	case "cycles":
		return c.Cycles, nil
	case "instructions":
		return c.Instructions, nil
	case "branch_misses":
		return c.BranchMisses, nil
	case "l1d_accesses":
		return c.L1DAccesses, nil
	case "l1d_misses":
		return c.L1DMisses, nil
	case "dtlb_misses":
		return c.DTLBMisses, nil
	case "l1i_misses":
		return c.L1IMisses, nil
	case "itlb_misses":
		return c.ITLBMisses, nil
	default:
		return 0, fmt.Errorf("cpu: unknown counter %q", name)
	}
}

// vectorFor maps a memory fault to its exception vector, split by access
// type exactly as the hardware does.
func vectorFor(acc mem.Access, _ *mem.Fault) isa.Vector {
	if acc == mem.AccessFetch {
		return isa.VecPrefetchAbort
	}
	return isa.VecDataAbort
}

// loadStoreSize returns the access width of a memory operation.
func loadStoreSize(op isa.Op) uint32 {
	switch op {
	case isa.OpLDRB, isa.OpSTRB:
		return 1
	case isa.OpLDRH, isa.OpSTRH:
		return 2
	default:
		return 4
	}
}

// bankIndex maps a privileged mode to its banked-register slot.
func bankIndex(m isa.Mode) int {
	switch m {
	case isa.ModeUser:
		return 0
	case isa.ModeSVC:
		return 1
	case isa.ModeIRQ:
		return 2
	default:
		return 0
	}
}

// ArchState is the committed architectural state of a core, captured at a
// quiescent point (pipeline empty). It is the CPU half of a machine
// snapshot: both models can save into and load from it, which is how golden
// boot state moves between the atomic and detailed models.
type ArchState struct {
	PC     uint32
	Regs   [isa.NumRegs]uint32
	Flags  isa.Flags
	Mode   isa.Mode
	IRQOff bool
	VBAR   uint32
	SPBank [3]uint32
	ELR    [3]uint32
	SPSR   [3]isa.CPSR
	TTBR   uint32
}
