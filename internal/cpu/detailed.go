package cpu

import (
	"armsefi/internal/isa"
	"armsefi/internal/mem"
)

// DetailedConfig sizes the out-of-order core. Zero fields take Cortex-A9-
// flavoured defaults.
type DetailedConfig struct {
	Width            int // fetch/rename/commit width
	ROBSize          int
	IQSize           int
	PhysRegs         int // physical register file entries (the injection target)
	FetchQueue       int
	BTBEntries       int
	PredictorEntries int
}

func (c DetailedConfig) withDefaults() DetailedConfig {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.Width, 2)
	def(&c.ROBSize, 40)
	def(&c.IQSize, 16)
	def(&c.PhysRegs, 56)
	def(&c.FetchQueue, 8)
	def(&c.BTBEntries, 512)
	def(&c.PredictorEntries, 1024)
	return c
}

// flagsArch is the rename-map index of the NZCV flags, treated as a 17th
// architectural register so that flag-setting instructions rename like any
// other producer.
const flagsArch = isa.NumRegs

const numArch = isa.NumRegs + 1

// uopState tracks a micro-op through the backend.
type uopState uint8

const (
	uopDispatched uopState = 1 + iota
	uopExecuting
	uopDone
)

// uop is one in-flight instruction.
type uop struct {
	in  isa.Instruction
	pc  uint32
	seq uint64
	// info points into isa's read-only opcode table (or at the shared
	// zero entry for exception uops); it is never mutated or hashed —
	// in.Encode() already pins everything it derives from.
	info *isa.OpInfo

	// Renamed operands; -1 means unused.
	srcRn, srcOp2, srcRd, srcFlags int
	dst, dstFlags                  int // allocated physical destinations
	oldDst, oldDstFlags            int // previous mappings, freed at commit

	state  uopState
	doneAt uint64

	value    uint32
	flags    isa.Flags
	setFlags bool

	isBranch   bool
	predTaken  bool
	predTarget uint32
	taken      bool
	target     uint32
	mispredict bool
	writesPC   bool

	isStore   bool
	loadLat   int
	addrReady bool
	storeAddr uint32
	storeSize uint32
	storeVal  uint32

	hasExc bool
	exc    isa.Vector
	excRet uint32

	serialized bool
	condFail   bool

	// taintRead marks a uop that consumed a tainted physical register
	// (provenance probe). Deliberately not hashed by hashUop: the probe is
	// observational, and fingerprints must match with the probe on or off.
	taintRead bool
}

// physReg is one physical register file entry. The value array is the
// "Physical Register file" injection target of the paper's Figure 4.
type physReg struct {
	value uint32
	ready bool
}

// uopRing is a fixed-capacity FIFO over a power-of-two circular buffer.
// The fetch queue and ROB are bounded by config, so after LoadArch the
// ring never grows: pushes and pops are masked index arithmetic with no
// slice reallocation, unlike the `q = q[1:]` + append rolling-slice
// pattern, whose backing array walks forward and forces a fresh
// allocation every few hundred cycles.
type uopRing struct {
	buf  []*uop
	head int
	n    int
}

func (r *uopRing) init(capacity int) {
	size := 1
	for size < capacity {
		size <<= 1
	}
	if len(r.buf) != size {
		r.buf = make([]*uop, size)
	}
	r.head, r.n = 0, 0
}

func (r *uopRing) len() int      { return r.n }
func (r *uopRing) at(i int) *uop { return r.buf[(r.head+i)&(len(r.buf)-1)] }
func (r *uopRing) front() *uop   { return r.buf[r.head] }

func (r *uopRing) push(u *uop) {
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = u
	r.n++
}

func (r *uopRing) pop() *uop {
	u := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return u
}

func (r *uopRing) clear() { r.head, r.n = 0, 0 }

// btbEntry is one branch-target-buffer slot.
type btbEntry struct {
	valid  bool
	tag    uint32
	target uint32
}

// fu models one functional unit's occupancy.
type fu struct {
	kind      isa.FU
	busyUntil uint64
}

// Detailed is the cycle-approximate out-of-order core: speculative fetch
// with a 2-bit/BTB predictor, register renaming over a physical register
// file, a reorder buffer with in-order commit and precise exceptions,
// out-of-order issue, store buffering with store-to-load forwarding, and
// commit-time misprediction recovery.
type Detailed struct {
	mem *mem.System
	irq IRQLine
	cfg DetailedConfig

	cycle uint64
	seq   uint64

	// Committed architectural state.
	commitPC uint32
	mode     isa.Mode
	irqOff   bool
	vbar     uint32
	spBank   [3]uint32
	elr      [3]uint32
	spsr     [3]isa.CPSR
	fatal    bool
	wfi      bool

	prf       []physReg
	renameMap [numArch]int
	archMap   [numArch]int
	freeList  []int

	fetchPC    uint32
	fetchStall uint64 // no fetch until this cycle (I$ miss modelling)
	fetchHalt  bool   // stop fetching until the next redirect (exception/serialise)
	fetchQ     uopRing

	rob            uopRing
	iq             []*uop
	executing      []*uop
	fus            []fu
	serializeBlock bool
	commitStall    uint64

	predictor []uint8 // 2-bit counters
	btb       []btbEntry

	instrs       uint64
	branchMisses uint64
	squashed     uint64

	uopPool  []*uop
	decTags  []uint32
	decOps   []isa.Instruction
	hashFree []bool // HashMicro scratch: free-list membership, reused across calls

	// Propagation provenance taint: the physical register holding an
	// injected bit. taintProbe goes nil once the value is overwritten;
	// commitProbe survives until disarm so uops that consumed the
	// corruption can still report their architectural commit.
	taintProbe  *mem.Probe
	commitProbe *mem.Probe
	taintReg    int
}

var _ Core = (*Detailed)(nil)

// NewDetailed builds the out-of-order core over a memory system.
func NewDetailed(m *mem.System, irq IRQLine, cfg DetailedConfig) *Detailed {
	c := &Detailed{mem: m, irq: irq, cfg: cfg.withDefaults()}
	c.Reset()
	return c
}

// Reset implements Core.
func (c *Detailed) Reset() {
	cfg := c.cfg
	c.LoadArch(ArchState{Mode: isa.ModeSVC, IRQOff: true})
	c.predictor = make([]uint8, cfg.PredictorEntries)
	c.btb = make([]btbEntry, cfg.BTBEntries)
	c.fus = []fu{
		{kind: isa.FUAlu}, {kind: isa.FUAlu},
		{kind: isa.FUMul}, {kind: isa.FUFpu},
		{kind: isa.FUMem}, {kind: isa.FUBr}, {kind: isa.FUSys},
	}
}

// LoadArch installs committed architectural state into a fresh pipeline.
func (c *Detailed) LoadArch(st ArchState) {
	if c.taintProbe != nil {
		// An architectural reload wipes the whole register file. This is a
		// live-board event on the beam's restart path; fault-injection runs
		// disarm before any restore, so the hook never fires there.
		c.taintProbe.NoteOverwrite("prf")
		c.taintProbe = nil
	}
	cfg := c.cfg
	if len(c.prf) == cfg.PhysRegs {
		for i := range c.prf {
			c.prf[i] = physReg{}
		}
	} else {
		c.prf = make([]physReg, cfg.PhysRegs)
	}
	if len(c.decTags) == 0 {
		c.decTags = make([]uint32, 4096)
		c.decOps = make([]isa.Instruction, 4096)
		for i := range c.decTags {
			// 0xFFFFFFFF is safe as the empty sentinel: it decodes to an
			// invalid op, exactly what the zero Instruction in decOps says.
			c.decTags[i] = 0xFFFFFFFF
		}
	}
	if cap(c.freeList) < cfg.PhysRegs {
		c.freeList = make([]int, 0, cfg.PhysRegs)
	}
	c.freeList = c.freeList[:0]
	for i := numArch; i < cfg.PhysRegs; i++ {
		c.freeList = append(c.freeList, i)
	}
	for i := 0; i < numArch; i++ {
		c.archMap[i] = i
		c.renameMap[i] = i
		c.prf[i].ready = true
	}
	for r := 0; r < isa.NumRegs; r++ {
		c.prf[c.archMap[r]].value = st.Regs[r]
	}
	c.prf[c.archMap[flagsArch]].value = packFlags(st.Flags)
	c.commitPC = st.PC
	c.fetchPC = st.PC
	c.mode = st.Mode
	c.irqOff = st.IRQOff
	c.vbar = st.VBAR
	c.spBank = st.SPBank
	c.elr = st.ELR
	c.spsr = st.SPSR
	c.mem.SetTTBR(st.TTBR)
	c.fatal = false
	c.wfi = false
	c.fetchHalt = false
	c.fetchStall = 0
	// Recycle any in-flight uops before clearing the queues, then top the
	// pool up to the maximum live population (ROB + fetch queue; issue
	// queue and executing entries alias ROB ones). After this, the cycle
	// loop never needs a fresh heap allocation: every alloc is a pool pop.
	for i := 0; i < c.fetchQ.len(); i++ {
		c.recycleUop(c.fetchQ.at(i))
	}
	for i := 0; i < c.rob.len(); i++ {
		c.recycleUop(c.rob.at(i))
	}
	c.fetchQ.init(cfg.FetchQueue)
	c.rob.init(cfg.ROBSize)
	maxLive := cfg.ROBSize + cfg.FetchQueue
	if cap(c.uopPool) < maxLive {
		pool := make([]*uop, 0, maxLive+8)
		c.uopPool = append(pool, c.uopPool...)
	}
	for len(c.uopPool) < maxLive {
		c.uopPool = append(c.uopPool, new(uop))
	}
	if cap(c.iq) < cfg.IQSize {
		c.iq = make([]*uop, 0, cfg.IQSize)
	}
	if cap(c.executing) < cfg.ROBSize {
		c.executing = make([]*uop, 0, cfg.ROBSize)
	}
	c.iq = c.iq[:0]
	c.executing = c.executing[:0]
	c.serializeBlock = false
	c.commitStall = 0
	c.cycle = 0
	c.instrs = 0
	c.branchMisses = 0
	c.squashed = 0
	for i := range c.fus {
		c.fus[i].busyUntil = 0
	}
	// Clear prediction state so checkpoint-restored runs are cycle-exact
	// replicas of each other, as gem5 checkpoint restores are.
	for i := range c.predictor {
		c.predictor[i] = 0
	}
	for i := range c.btb {
		c.btb[i] = btbEntry{}
	}
}

// SaveArch captures committed state. Call only at a quiescent point (empty
// pipeline), e.g. right after boot convergence or a flush.
func (c *Detailed) SaveArch() ArchState {
	st := ArchState{
		PC:     c.commitPC,
		Flags:  unpackFlags(c.prf[c.archMap[flagsArch]].value),
		Mode:   c.mode,
		IRQOff: c.irqOff,
		VBAR:   c.vbar,
		SPBank: c.spBank,
		ELR:    c.elr,
		SPSR:   c.spsr,
		TTBR:   c.mem.TTBR(),
	}
	for r := 0; r < isa.NumRegs; r++ {
		st.Regs[r] = c.prf[c.archMap[r]].value
	}
	return st
}

// Cycles implements Core.
func (c *Detailed) Cycles() uint64 { return c.cycle }

// Instructions implements Core.
func (c *Detailed) Instructions() uint64 { return c.instrs }

// Fatal implements Core.
func (c *Detailed) Fatal() bool { return c.fatal }

// Mode implements Core.
func (c *Detailed) Mode() isa.Mode { return c.mode }

// PC implements Core: the committed program counter.
func (c *Detailed) PC() uint32 { return c.commitPC }

// Reg implements Core: committed register value.
func (c *Detailed) Reg(r isa.Reg) uint32 { return c.prf[c.archMap[r]].value }

// RegFileBits implements Core: the physical register file is the injection
// surface, as in GeFIN.
func (c *Detailed) RegFileBits() uint64 { return uint64(c.cfg.PhysRegs) * 32 }

// FlipRegFileBit implements Core.
func (c *Detailed) FlipRegFileBit(bit uint64) {
	bit %= c.RegFileBits()
	c.prf[bit/32].value ^= 1 << (bit % 32)
}

// TaintRegBit marks the physical register holding a linearly-addressed bit
// (same addressing as FlipRegFileBit) as tainted and arms the probe. The
// register is live when it is not on the free list: free registers'
// values are dead by construction (alloc clears ready, writeback stores
// before any read).
func (c *Detailed) TaintRegBit(bit uint64, p *mem.Probe) {
	bit %= c.RegFileBits()
	reg := int(bit / 32)
	live := true
	for _, f := range c.freeList {
		if f == reg {
			live = false
			break
		}
	}
	c.taintProbe = p
	c.commitProbe = p
	c.taintReg = reg
	p.Arm(live)
}

// ClearRegTaint drops any tracked register taint without emitting an event.
func (c *Detailed) ClearRegTaint() {
	c.taintProbe = nil
	c.commitProbe = nil
	c.taintReg = 0
}

// notePhysRead reports a consuming read of the tainted physical register.
func (c *Detailed) notePhysRead(idx int, pc uint32, reg string) {
	if c.taintProbe != nil && idx == c.taintReg {
		c.taintProbe.NoteReadReg("prf", pc, reg)
	}
}

// notePhysWrite reports that a write killed the tainted register's value.
// The commit probe stays attached: an earlier consumer may still retire.
func (c *Detailed) notePhysWrite(idx int) {
	if c.taintProbe != nil && idx == c.taintReg {
		c.taintProbe.NoteOverwrite("prf")
		c.taintProbe = nil
	}
}

// SquashedUops returns how many speculative uops were discarded; exposed
// for pipeline tests.
func (c *Detailed) SquashedUops() uint64 { return c.squashed }

// Counters implements Core.
func (c *Detailed) Counters() Counters {
	return Counters{
		Cycles:       c.cycle,
		Instructions: c.instrs,
		BranchMisses: c.branchMisses,
		L1DAccesses:  c.mem.L1D.Stats().Accesses(),
		L1DMisses:    c.mem.L1D.Stats().Misses,
		DTLBMisses:   c.mem.DTLB.Stats().Misses,
		L1IMisses:    c.mem.L1I.Stats().Misses,
		ITLBMisses:   c.mem.ITLB.Stats().Misses,
	}
}

func packFlags(f isa.Flags) uint32 {
	var v uint32
	if f.N {
		v |= 1
	}
	if f.Z {
		v |= 2
	}
	if f.C {
		v |= 4
	}
	if f.V {
		v |= 8
	}
	return v
}

func unpackFlags(v uint32) isa.Flags {
	return isa.Flags{N: v&1 != 0, Z: v&2 != 0, C: v&4 != 0, V: v&8 != 0}
}

// StepCycle implements Core: advances the pipeline by one cycle.
func (c *Detailed) StepCycle() int {
	if c.fatal {
		c.cycle++
		return 1
	}
	c.cycle++
	if c.wfi {
		if !c.irqOff && c.irq.Pending() {
			c.wfi = false
			c.takeException(isa.VecIRQ, c.commitPC)
		}
		return 1
	}
	c.commit()
	if c.fatal {
		return 1
	}
	c.writeback()
	c.issue()
	c.dispatch()
	c.fetch()
	return 1
}

// ---------------------------------------------------------------- fetch ---

func (c *Detailed) predictorIdx(pc uint32) int {
	return int(pc>>2) & (len(c.predictor) - 1)
}

func (c *Detailed) btbIdx(pc uint32) int {
	return int(pc>>2) & (len(c.btb) - 1)
}

func (c *Detailed) fetch() {
	if c.fetchHalt || c.cycle < c.fetchStall {
		return
	}
	l1iHit := c.mem.L1I.HitCycles()
	for n := 0; n < c.cfg.Width; n++ {
		if c.fetchQ.len() >= c.cfg.FetchQueue {
			return
		}
		word, lat, fault := c.mem.FetchInstr(c.fetchPC, c.mode)
		if lat > l1iHit {
			c.fetchStall = c.cycle + uint64(lat)
		}
		u := c.allocUop()
		u.pc = c.fetchPC
		u.seq = c.nextSeq()
		if fault != nil {
			u.hasExc = true
			u.exc = isa.VecPrefetchAbort
			u.excRet = c.fetchPC
			u.state = uopDone
			c.fetchQ.push(u)
			c.fetchHalt = true
			return
		}
		in := c.decode(word)
		u.in = in
		u.info = in.Op.InfoRef()
		if u.info.Format == 0 { // undefined opcode, same test as Op.Valid
			u.hasExc = true
			u.exc = isa.VecUndef
			u.excRet = c.fetchPC
			u.state = uopDone
			c.fetchQ.push(u)
			c.fetchHalt = true
			return
		}
		u.setFlags = in.SetFlags || u.info.SetsFlags
		next := c.fetchPC + 4
		switch {
		case u.info.Format == isa.FmtBr:
			u.isBranch = true
			target := c.fetchPC + 4 + uint32(in.Imm)*4
			taken := true
			if in.Cond != isa.CondAL {
				taken = c.predictor[c.predictorIdx(c.fetchPC)] >= 2
			}
			u.predTaken = taken
			u.predTarget = target
			if taken {
				next = target
			}
		case in.Op == isa.OpBX:
			u.isBranch = true
			if e := c.btb[c.btbIdx(c.fetchPC)]; e.valid && e.tag == c.fetchPC {
				u.predTaken = true
				u.predTarget = e.target
				next = e.target
			}
		case u.info.Serialise:
			// System ops redirect or drain; stop fetching past them.
			c.fetchHalt = true
		}
		c.fetchQ.push(u)
		c.fetchPC = next
		if c.fetchHalt {
			return
		}
		if lat > l1iHit {
			return // line miss: no more fetches this cycle
		}
	}
}

func (c *Detailed) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// allocUop draws a zeroed uop from the pool; recycleUop returns one. All
// in-flight uops are recycled at commit or flush, which keeps the
// per-cycle allocation rate near zero.
// noOpInfo is the metadata fresh uops carry until fetch decodes them;
// exception uops keep it (their zero-valued fields are all dispatch ever
// consults).
var noOpInfo = new(isa.OpInfo)

func (c *Detailed) allocUop() *uop {
	if n := len(c.uopPool); n > 0 {
		u := c.uopPool[n-1]
		c.uopPool = c.uopPool[:n-1]
		*u = uop{info: noOpInfo}
		return u
	}
	return &uop{info: noOpInfo}
}

func (c *Detailed) recycleUop(u *uop) {
	c.uopPool = append(c.uopPool, u)
}

// decode memoises isa.Decode by word value (a pure function) in a small
// direct-mapped cache.
func (c *Detailed) decode(word uint32) isa.Instruction {
	idx := word * 2654435761 >> 20 & uint32(len(c.decTags)-1)
	if c.decTags[idx] == word {
		return c.decOps[idx]
	}
	in := isa.Decode(word)
	c.decTags[idx] = word
	c.decOps[idx] = in
	return in
}

// ------------------------------------------------------------- dispatch ---

func (c *Detailed) dispatch() {
	for n := 0; n < c.cfg.Width; n++ {
		if c.fetchQ.len() == 0 || c.serializeBlock {
			return
		}
		u := c.fetchQ.front()
		if u.hasExc {
			if c.rob.len() >= c.cfg.ROBSize {
				return
			}
			c.fetchQ.pop()
			u.srcRn, u.srcOp2, u.srcRd, u.srcFlags = -1, -1, -1, -1
			u.dst, u.dstFlags = -1, -1
			c.rob.push(u)
			continue
		}
		if u.info.Serialise && u.in.Op != isa.OpNOP {
			if c.rob.len() > 0 {
				return // wait for the ROB to drain
			}
			c.fetchQ.pop()
			c.renameSerialized(u)
			c.rob.push(u)
			c.serializeBlock = true
			return
		}
		if c.rob.len() >= c.cfg.ROBSize || len(c.iq) >= c.cfg.IQSize {
			return
		}
		if !c.rename(u) {
			return // out of physical registers
		}
		c.fetchQ.pop()
		c.rob.push(u)
		c.iq = append(c.iq, u)
	}
}

// renameSerialized marks a system op ready to "execute" at commit.
func (c *Detailed) renameSerialized(u *uop) {
	u.srcRn, u.srcOp2, u.srcFlags = -1, -1, -1
	u.srcRd = -1
	u.dst, u.dstFlags = -1, -1
	u.oldDst, u.oldDstFlags = -1, -1
	if u.in.Op == isa.OpMRS || u.in.Op == isa.OpMSR {
		// Source/destination resolved directly against committed state at
		// commit time (the ROB is empty by construction).
		u.srcRd = c.renameMap[u.in.Rd]
	}
	u.state = uopDone
	u.serialized = true
}

// rename allocates physical registers and records source dependencies.
// It reports false when the free list cannot cover the destinations.
func (c *Detailed) rename(u *uop) bool {
	info := u.info
	needDst := info.WritesRd && u.in.Rd != isa.PC
	needFlags := u.setFlags
	need := 0
	if needDst {
		need++
	}
	if needFlags {
		need++
	}
	if len(c.freeList) < need {
		return false
	}
	u.srcRn, u.srcOp2, u.srcRd, u.srcFlags = -1, -1, -1, -1
	u.dst, u.dstFlags = -1, -1
	u.oldDst, u.oldDstFlags = -1, -1
	if info.ReadsRn && u.in.Rn != isa.PC {
		u.srcRn = c.renameMap[u.in.Rn]
	}
	if info.ReadsOp2 && !u.UsesImmOp2() && u.in.Rm != isa.PC {
		u.srcOp2 = c.renameMap[u.in.Rm]
	}
	conditional := u.in.Cond != isa.CondAL
	if conditional || info.ReadsRd || info.ReadsFlags || needFlags {
		// Conditional ops and carry consumers read the old flags; flag
		// writers merge into the renamed flag register even when
		// predicated off.
		u.srcFlags = c.renameMap[flagsArch]
	}
	if (info.ReadsRd || (conditional && needDst)) && u.in.Rd != isa.PC {
		u.srcRd = c.renameMap[u.in.Rd]
	}
	if needDst {
		u.dst = c.alloc()
		u.oldDst = c.renameMap[u.in.Rd]
		c.renameMap[u.in.Rd] = u.dst
	}
	if needFlags {
		u.dstFlags = c.alloc()
		u.oldDstFlags = c.renameMap[flagsArch]
		c.renameMap[flagsArch] = u.dstFlags
	}
	if info.WritesRd && u.in.Rd == isa.PC {
		u.writesPC = true
	}
	u.isStore = info.IsStore
	u.state = uopDispatched
	return true
}

// UsesImmOp2 reports whether the second operand is an immediate.
func (u *uop) UsesImmOp2() bool {
	return u.in.UseImm || u.info.Format == isa.FmtMovW || u.info.Format == isa.FmtBr
}

func (c *Detailed) alloc() int {
	idx := c.freeList[len(c.freeList)-1]
	c.freeList = c.freeList[:len(c.freeList)-1]
	c.prf[idx].ready = false
	return idx
}

// ---------------------------------------------------------------- issue ---

func (c *Detailed) srcReady(idx int) bool { return idx < 0 || c.prf[idx].ready }

func (c *Detailed) uopReady(u *uop) bool {
	return c.srcReady(u.srcRn) && c.srcReady(u.srcOp2) &&
		c.srcReady(u.srcRd) && c.srcReady(u.srcFlags)
}

// olderStoreBlocks reports whether a load at ROB position must wait: any
// older store with an unresolved address, or an overlapping older store
// that cannot forward exactly.
func (c *Detailed) olderStoreBlocks(u *uop, addr, size uint32) (uint32, bool, bool) {
	var fwdVal uint32
	fwd := false
	for i, n := 0, c.rob.len(); i < n; i++ {
		s := c.rob.at(i)
		if s.seq >= u.seq {
			break
		}
		if !s.isStore || s.condFail {
			continue
		}
		if !s.addrReady {
			return 0, false, true
		}
		if s.storeAddr == addr && s.storeSize == size {
			fwdVal = s.storeVal
			fwd = true
			continue
		}
		if s.storeAddr < addr+size && addr < s.storeAddr+s.storeSize {
			return 0, false, true // partial overlap: wait for drain
		}
	}
	return fwdVal, fwd, false
}

func (c *Detailed) issue() {
	issued, maxIssue := 0, c.cfg.Width+1
	for _, u := range c.iq {
		if issued >= maxIssue {
			break
		}
		if u.state != uopDispatched || !c.uopReady(u) {
			continue
		}
		unit := c.findFU(u.info.Unit)
		if unit == nil {
			continue
		}
		if c.execute(u, unit) {
			issued++
		}
	}
	// Compact the issue queue: only not-yet-issued uops stay.
	live := c.iq[:0]
	for _, u := range c.iq {
		if u.state == uopDispatched {
			live = append(live, u)
		}
	}
	c.iq = live
}

func (c *Detailed) findFU(kind isa.FU) *fu {
	for i := range c.fus {
		if c.fus[i].kind == kind && c.fus[i].busyUntil <= c.cycle {
			return &c.fus[i]
		}
	}
	return nil
}

func (c *Detailed) readSrc(idx int, pcVal uint32, r isa.Reg) uint32 {
	if r == isa.PC {
		return pcVal + 4
	}
	if idx < 0 {
		return 0
	}
	return c.prf[idx].value
}

// execute runs a uop on a functional unit; returns false if it could not
// start (e.g. a blocked load).
func (c *Detailed) execute(u *uop, unit *fu) bool {
	flags := unpackFlags(c.readSrc(u.srcFlags, u.pc, isa.R0))
	pass := u.in.Cond.Passes(flags)
	lat := u.info.Latency
	rn := c.readSrc(u.srcRn, u.pc, u.in.Rn)
	var op2 uint32
	switch {
	case u.UsesImmOp2():
		op2 = uint32(u.in.Imm)
	default:
		op2 = u.in.Shift.Apply(c.readSrc(u.srcOp2, u.pc, u.in.Rm), u.in.ShAmt)
	}
	rdOld := c.readSrc(u.srcRd, u.pc, u.in.Rd)

	if c.taintProbe != nil {
		// Source reads happen above regardless of the predicate, so a
		// predicated-off or later-squashed consumer still counts: the
		// corrupted bits left the register file toward a functional unit,
		// and the squash is itself a (microarchitectural) logical mask.
		switch t := c.taintReg; {
		case u.srcRn == t:
			u.taintRead = true
			c.taintProbe.NoteReadReg("prf", u.pc, u.in.Rn.String())
		case u.srcOp2 == t:
			u.taintRead = true
			c.taintProbe.NoteReadReg("prf", u.pc, u.in.Rm.String())
		case u.srcRd == t:
			u.taintRead = true
			c.taintProbe.NoteReadReg("prf", u.pc, u.in.Rd.String())
		case u.srcFlags == t:
			u.taintRead = true
			c.taintProbe.NoteReadReg("prf", u.pc, "flags")
		}
	}

	if !pass {
		// Predicated off: carry the old destination/flag values through.
		u.condFail = true
		u.value = rdOld
		u.flags = flags
		if u.isBranch {
			u.taken = false
			u.target = u.pc + 4
			u.mispredict = u.predTaken
		}
		u.addrReady = true
		u.isStore = false
		c.finish(u, unit, 1)
		return true
	}

	switch u.info.Format {
	case isa.FmtDP, isa.FmtMovW:
		res := isa.ExecDP(u.in.Op, rn, op2, rdOld, flags, u.in.SetFlags)
		u.value = res.Value
		if res.FlagsValid {
			u.flags = res.Flags
		} else {
			u.flags = flags
		}
		if u.writesPC {
			u.mispredict = true
			u.target = res.Value &^ 1
			u.taken = true
		}
	case isa.FmtMem:
		addr := rn + op2
		size := loadStoreSize(u.in.Op)
		if u.isStore {
			u.storeAddr = addr
			u.storeSize = size
			u.storeVal = rdOld
			u.addrReady = true
		} else {
			if !c.execLoad(u, addr, size) {
				return false
			}
			lat = u.loadLat
			if u.writesPC && !u.hasExc {
				u.mispredict = true
				u.taken = true
				u.target = u.value &^ 1
			}
		}
		u.flags = flags
	case isa.FmtBr:
		u.taken = true
		u.target = u.pc + 4 + uint32(u.in.Imm)*4
		u.value = u.pc + 4 // BL link value
		u.flags = flags
		u.mispredict = !u.predTaken || u.predTarget != u.target
	case isa.FmtSys: // only NOP reaches the backend among system ops
		u.flags = flags
	default: // FmtBX
		u.taken = true
		u.target = c.readSrc(u.srcOp2, u.pc, u.in.Rm) &^ 1
		u.flags = flags
		u.mispredict = !u.predTaken || u.predTarget != u.target
	}
	c.finish(u, unit, lat)
	return true
}

func (c *Detailed) finish(u *uop, unit *fu, lat int) {
	if lat < 1 {
		lat = 1
	}
	u.state = uopExecuting
	u.doneAt = c.cycle + uint64(lat)
	c.executing = append(c.executing, u)
	// Long-latency units (divide, sqrt) are unpipelined.
	if lat > 8 {
		unit.busyUntil = u.doneAt
	} else {
		unit.busyUntil = c.cycle + 1
	}
}

// execLoad performs the cache access for a load, honouring the store
// buffer. It reports false when the load must retry later.
func (c *Detailed) execLoad(u *uop, addr, size uint32) bool {
	fwdVal, fwd, blocked := c.olderStoreBlocks(u, addr, size)
	if blocked {
		return false
	}
	if fwd {
		u.value = fwdVal & sizeMask(size)
		u.loadLat = 1
		return true
	}
	val, lat, fault := c.mem.Load(addr, size, c.mode)
	if fault != nil {
		u.hasExc = true
		u.exc = isa.VecDataAbort
		u.excRet = u.pc
		u.loadLat = lat
		return true
	}
	u.value = val
	u.loadLat = lat
	return true
}

func sizeMask(size uint32) uint32 {
	switch size {
	case 1:
		return 0xFF
	case 2:
		return 0xFFFF
	default:
		return 0xFFFF_FFFF
	}
}

// ------------------------------------------------------------ writeback ---

func (c *Detailed) writeback() {
	live := c.executing[:0]
	for _, u := range c.executing {
		if u.doneAt > c.cycle {
			live = append(live, u)
			continue
		}
		u.state = uopDone
		if u.dst >= 0 && !u.writesPC {
			c.notePhysWrite(u.dst)
			c.prf[u.dst].value = u.value
			c.prf[u.dst].ready = true
		}
		if u.dstFlags >= 0 {
			c.notePhysWrite(u.dstFlags)
			c.prf[u.dstFlags].value = packFlags(u.flags)
			c.prf[u.dstFlags].ready = true
		}
	}
	c.executing = live
}

// --------------------------------------------------------------- commit ---

func (c *Detailed) commit() {
	if c.cycle < c.commitStall {
		return
	}
	// An interrupt is taken at a commit boundary, like any precise event.
	if !c.irqOff && c.irq.Pending() {
		c.flush()
		c.takeException(isa.VecIRQ, c.commitPC)
		return
	}
	for n := 0; n < c.cfg.Width; n++ {
		if c.rob.len() == 0 {
			return
		}
		u := c.rob.front()
		if u.state != uopDone {
			return
		}
		if u.hasExc {
			// Read the fields before flush recycles the uop.
			exc, ret := u.exc, u.excRet
			c.flush()
			c.takeException(exc, ret)
			return
		}
		if u.serialized {
			c.commitSerialized(u)
			c.recycleUop(u)
			return
		}
		if u.isStore && !u.condFail {
			lat, fault := c.mem.Store(u.storeAddr, u.storeSize, u.storeVal, c.mode)
			if fault != nil {
				pc := u.pc
				c.flush()
				c.takeException(isa.VecDataAbort, pc)
				return
			}
			if lat > 2 {
				c.commitStall = c.cycle + uint64(lat)
			}
		}
		c.rob.pop()
		c.instrs++
		c.retireRegs(u)
		if u.taintRead && c.commitProbe != nil {
			reg := ""
			if u.dst >= 0 && !u.writesPC {
				reg = u.in.Rd.String()
			}
			c.commitProbe.NoteCommit("prf", u.pc, reg)
		}
		if u.isBranch || u.writesPC {
			c.trainPredictor(u)
		}
		if (u.isBranch || u.writesPC) && u.mispredict {
			c.branchMisses++
			c.flush()
			if u.taken {
				c.redirect(u.target)
			} else {
				c.redirect(u.pc + 4)
			}
			c.commitPC = c.fetchPC
			c.recycleUop(u)
			return
		}
		if u.isBranch && u.taken {
			c.commitPC = u.target
		} else {
			c.commitPC = u.pc + 4
		}
		stallAfterStore := u.isStore && c.cycle < c.commitStall
		c.recycleUop(u)
		if stallAfterStore {
			return
		}
	}
}

// retireRegs makes a uop's renamed destinations architectural and frees the
// previous mappings.
func (c *Detailed) retireRegs(u *uop) {
	if u.dst >= 0 && !u.writesPC {
		c.freeList = append(c.freeList, c.archMap[u.in.Rd])
		c.archMap[u.in.Rd] = u.dst
	}
	if u.dstFlags >= 0 {
		c.freeList = append(c.freeList, c.archMap[flagsArch])
		c.archMap[flagsArch] = u.dstFlags
	}
}

func (c *Detailed) trainPredictor(u *uop) {
	if u.in.Op == isa.OpB || u.in.Op == isa.OpBL {
		if u.in.Cond != isa.CondAL {
			idx := c.predictorIdx(u.pc)
			if u.taken && c.predictor[idx] < 3 {
				c.predictor[idx]++
			} else if !u.taken && c.predictor[idx] > 0 {
				c.predictor[idx]--
			}
		}
		return
	}
	if u.taken {
		c.btb[c.btbIdx(u.pc)] = btbEntry{valid: true, tag: u.pc, target: u.target}
	}
}

// commitSerialized performs a system op's effect at commit. The ROB holds
// only this uop, so committed state may be mutated directly.
func (c *Detailed) commitSerialized(u *uop) {
	c.rob.pop()
	c.instrs++
	c.notePhysRead(c.archMap[flagsArch], u.pc, "flags")
	flags := unpackFlags(c.prf[c.archMap[flagsArch]].value)
	if !u.in.Cond.Passes(flags) {
		c.commitPC = u.pc + 4
		c.resume(u.pc + 4)
		return
	}
	switch u.in.Op {
	case isa.OpSVC:
		c.takeException(isa.VecSVC, u.pc+4)
	case isa.OpWFI:
		if !c.mode.Privileged() {
			c.takeException(isa.VecUndef, u.pc)
			return
		}
		c.wfi = true
		c.commitPC = u.pc + 4
		c.resume(u.pc + 4)
	case isa.OpMRS:
		v, ok := c.sysRead(isa.SysReg(u.in.Imm))
		if !ok {
			c.takeException(isa.VecUndef, u.pc)
			return
		}
		c.notePhysWrite(c.archMap[u.in.Rd])
		c.prf[c.archMap[u.in.Rd]].value = v
		c.commitPC = u.pc + 4
		c.resume(u.pc + 4)
	case isa.OpMSR:
		c.notePhysRead(c.archMap[u.in.Rd], u.pc, u.in.Rd.String())
		if !c.sysWrite(isa.SysReg(u.in.Imm), c.prf[c.archMap[u.in.Rd]].value) {
			c.takeException(isa.VecUndef, u.pc)
			return
		}
		c.commitPC = u.pc + 4
		c.resume(u.pc + 4)
	case isa.OpERET:
		c.eret(u.pc)
	default:
		c.takeException(isa.VecUndef, u.pc)
	}
}

// resume restarts fetch after a serialising instruction.
func (c *Detailed) resume(pc uint32) {
	c.serializeBlock = false
	c.fetchHalt = false
	c.fetchPC = pc
	// The fetch queue is empty by construction (fetch halted at the
	// serialising op); recycle any residue so the pool never shrinks.
	for i := 0; i < c.fetchQ.len(); i++ {
		c.recycleUop(c.fetchQ.at(i))
	}
	c.fetchQ.clear()
}

// ------------------------------------------------- flush and exceptions ---

// flush squashes every in-flight uop and resets the rename map to the
// committed state. This is the commit-time recovery path for branch
// mispredictions, exceptions, and interrupts.
func (c *Detailed) flush() {
	c.squashed += uint64(c.fetchQ.len())
	for i := 0; i < c.fetchQ.len(); i++ {
		c.recycleUop(c.fetchQ.at(i))
	}
	for i := 0; i < c.rob.len(); i++ {
		u := c.rob.at(i)
		c.squashed++
		if u.dst >= 0 && !u.writesPC {
			c.freeList = append(c.freeList, u.dst)
		}
		if u.dstFlags >= 0 {
			c.freeList = append(c.freeList, u.dstFlags)
		}
		c.recycleUop(u)
	}
	c.fetchQ.clear()
	c.rob.clear()
	c.iq = c.iq[:0]
	c.executing = c.executing[:0]
	c.renameMap = c.archMap
	c.serializeBlock = false
	c.fetchHalt = false
	c.commitStall = 0
}

func (c *Detailed) redirect(pc uint32) {
	c.fetchPC = pc
	c.fetchStall = 0
}

func (c *Detailed) curFlags() isa.Flags {
	c.notePhysRead(c.archMap[flagsArch], c.commitPC, "flags")
	return unpackFlags(c.prf[c.archMap[flagsArch]].value)
}

func (c *Detailed) setCurFlags(f isa.Flags) {
	c.notePhysWrite(c.archMap[flagsArch])
	c.prf[c.archMap[flagsArch]].value = packFlags(f)
}

// switchMode banks the committed stack pointer and changes mode.
func (c *Detailed) switchMode(m isa.Mode) {
	sp := c.archMap[isa.SP]
	// Banking a tainted SP copies the corrupted value aside for later
	// restoration (a consumption), then overwrites the register.
	c.notePhysRead(sp, c.commitPC, isa.SP.String())
	c.spBank[bankIndex(c.mode)] = c.prf[sp].value
	c.notePhysWrite(sp)
	c.prf[sp].value = c.spBank[bankIndex(m)]
	c.mode = m
}

func (c *Detailed) takeException(vec isa.Vector, retPC uint32) {
	c.flush()
	bank := bankIndex(vec.Mode())
	c.spsr[bank] = isa.PackCPSR(c.curFlags(), c.mode, c.irqOff)
	c.elr[bank] = retPC
	c.switchMode(vec.Mode())
	c.irqOff = true
	c.wfi = false
	c.commitPC = c.vbar + 4*uint32(vec)
	c.redirect(c.commitPC)
}

func (c *Detailed) sysRead(sr isa.SysReg) (uint32, bool) {
	switch sr {
	case isa.SysCPSR:
		return uint32(isa.PackCPSR(c.curFlags(), c.mode, c.irqOff)), true
	case isa.SysSPSR:
		if !c.mode.Privileged() {
			return 0, false
		}
		return uint32(c.spsr[bankIndex(c.mode)]), true
	case isa.SysELR:
		if !c.mode.Privileged() {
			return 0, false
		}
		return c.elr[bankIndex(c.mode)], true
	case isa.SysTTBR:
		if !c.mode.Privileged() {
			return 0, false
		}
		return c.mem.TTBR(), true
	case isa.SysVBAR:
		if !c.mode.Privileged() {
			return 0, false
		}
		return c.vbar, true
	default:
		return 0, false
	}
}

func (c *Detailed) sysWrite(sr isa.SysReg, v uint32) bool {
	if !c.mode.Privileged() {
		return false
	}
	switch sr {
	case isa.SysCPSR:
		w := isa.CPSR(v)
		if !w.Valid() {
			c.fatal = true
			return true
		}
		c.setCurFlags(w.Flags())
		c.irqOff = w.IRQOff()
		c.switchMode(w.Mode())
		return true
	case isa.SysSPSR:
		c.spsr[bankIndex(c.mode)] = isa.CPSR(v)
		return true
	case isa.SysELR:
		c.elr[bankIndex(c.mode)] = v
		return true
	case isa.SysTTBR:
		c.mem.SetTTBR(v)
		return true
	case isa.SysVBAR:
		c.vbar = v
		return true
	default:
		return false
	}
}

func (c *Detailed) eret(pc uint32) {
	if !c.mode.Privileged() {
		c.takeException(isa.VecUndef, pc)
		return
	}
	bank := bankIndex(c.mode)
	saved := c.spsr[bank]
	if !saved.Valid() {
		c.fatal = true
		return
	}
	target := c.elr[bank]
	c.setCurFlags(saved.Flags())
	c.irqOff = saved.IRQOff()
	c.switchMode(saved.Mode())
	c.commitPC = target
	c.resume(target)
}
