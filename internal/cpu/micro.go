// Micro-architectural checkpointing: full-pipeline state capture for the
// checkpoint ladder (ISSUE 3). Unlike ArchState, which may only be taken
// at a quiescent point, a MicroState can be captured at *any* cycle
// boundary: it carries the complete in-flight state of the core —
// counters, rename tables, free list, fetch queue, ROB, issue queue,
// in-execution uops, functional-unit occupancy, and prediction state — so
// restoring it reproduces the live machine bit-for-bit, the way a gem5
// checkpoint restores mid-run simulation.
//
// Counters (cycle, seq, instrs) are restored verbatim rather than zeroed:
// golden runs always start from LoadArch at cycle zero, so every absolute
// cycle stamp inside the pipeline (doneAt, busyUntil, stall deadlines) is
// run-relative by construction, and a verbatim restore makes the restored
// machine indistinguishable from the live one at the captured instant.
//
// HashMicro folds the *live* subset of that state into a fingerprint: it
// deliberately excludes dead state — values of free or not-yet-written
// physical registers, uop sequence numbers (only their relative order,
// already encoded by ROB position, is observable), stall deadlines already
// in the past, and pure memo/stat fields — so that a faulty run whose
// live state has re-converged with the golden run fingerprints equal even
// when dead bytes still differ.

package cpu

import (
	"armsefi/internal/isa"
	"armsefi/internal/mem"
)

// MicroState is an opaque mid-run core snapshot. A state saved from one
// model can only be loaded into the same model with the same
// configuration. It is immutable after capture and safe to restore
// concurrently into different cores.
type MicroState struct {
	atomic   *atomicMicro
	detailed *detailedMicro
}

// ------------------------------------------------------------- atomic ---

type atomicMicro struct {
	pc     uint32
	regs   [isa.NumRegs]uint32
	flags  isa.Flags
	mode   isa.Mode
	irqOff bool
	vbar   uint32
	spBank [3]uint32
	elr    [3]uint32
	spsr   [3]isa.CPSR
	wfi    bool
	ttbr   uint32
	cycles uint64
	instrs uint64
}

// SaveMicro captures the atomic core mid-run. The atomic model has no
// in-flight state, so this is ArchState plus counters and WFI.
func (c *Atomic) SaveMicro() *MicroState {
	return &MicroState{atomic: &atomicMicro{
		pc: c.pc, regs: c.regs, flags: c.flags, mode: c.mode,
		irqOff: c.irqOff, vbar: c.vbar,
		spBank: c.spBank, elr: c.elr, spsr: c.spsr,
		wfi: c.wfi, ttbr: c.mem.TTBR(),
		cycles: c.cycles, instrs: c.instrs,
	}}
}

// LoadMicro restores a state captured by SaveMicro, counters included.
func (c *Atomic) LoadMicro(ms *MicroState) {
	m := ms.atomic
	c.pc = m.pc
	c.regs = m.regs
	c.flags = m.flags
	c.mode = m.mode
	c.irqOff = m.irqOff
	c.vbar = m.vbar
	c.spBank = m.spBank
	c.elr = m.elr
	c.spsr = m.spsr
	c.mem.SetTTBR(m.ttbr)
	c.fatal = false
	c.wfi = m.wfi
	c.cycles = m.cycles
	c.instrs = m.instrs
}

// HashMicro folds the atomic core's live state into h.
func (c *Atomic) HashMicro(h *mem.Hasher) {
	h.Word(c.cycles)
	h.Word(c.instrs)
	h.Word32(c.pc)
	for _, v := range c.regs {
		h.Word32(v)
	}
	hashFlags(h, c.flags)
	h.Word(uint64(c.mode))
	h.Bool(c.irqOff)
	h.Word32(c.vbar)
	hashBanks(h, c.spBank, c.elr, c.spsr)
	h.Bool(c.wfi)
	h.Word32(c.mem.TTBR())
}

// ----------------------------------------------------------- detailed ---

type detailedMicro struct {
	cycle  uint64
	seq    uint64
	instrs uint64

	commitPC uint32
	mode     isa.Mode
	irqOff   bool
	vbar     uint32
	spBank   [3]uint32
	elr      [3]uint32
	spsr     [3]isa.CPSR
	wfi      bool
	ttbr     uint32

	prf       []physReg
	renameMap [numArch]int
	archMap   [numArch]int
	freeList  []int

	fetchPC    uint32
	fetchStall uint64
	fetchHalt  bool

	// Queues are stored by value; issue-queue and executing entries alias
	// ROB ones in the live pipeline, so they are saved as ROB positions
	// and re-aliased on restore.
	fetchQ    []uop
	rob       []uop
	iq        []int32
	executing []int32

	fuBusy         []uint64
	serializeBlock bool
	commitStall    uint64

	predictor []uint8
	btb       []btbEntry
}

// robIndex returns a uop's position in the ROB. The ROB is ordered by the
// monotonically-assigned sequence number, so a binary search suffices;
// callers only pass uops that are ROB members (issue queue and executing
// entries alias ROB ones by construction).
func (c *Detailed) robIndex(u *uop) int {
	lo, hi := 0, c.rob.len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.rob.at(mid).seq < u.seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SaveMicro captures the detailed core mid-run, deep-copying every
// in-flight structure; the result shares nothing with the live pipeline.
func (c *Detailed) SaveMicro() *MicroState {
	m := &detailedMicro{
		cycle: c.cycle, seq: c.seq, instrs: c.instrs,
		commitPC: c.commitPC, mode: c.mode, irqOff: c.irqOff, vbar: c.vbar,
		spBank: c.spBank, elr: c.elr, spsr: c.spsr,
		wfi: c.wfi, ttbr: c.mem.TTBR(),
		renameMap: c.renameMap, archMap: c.archMap,
		fetchPC: c.fetchPC, fetchStall: c.fetchStall, fetchHalt: c.fetchHalt,
		serializeBlock: c.serializeBlock, commitStall: c.commitStall,
	}
	m.prf = append([]physReg(nil), c.prf...)
	m.freeList = append([]int(nil), c.freeList...)
	m.fetchQ = make([]uop, c.fetchQ.len())
	for i := range m.fetchQ {
		m.fetchQ[i] = *c.fetchQ.at(i)
	}
	m.rob = make([]uop, c.rob.len())
	for i := range m.rob {
		m.rob[i] = *c.rob.at(i)
	}
	m.iq = make([]int32, len(c.iq))
	for i, u := range c.iq {
		m.iq[i] = int32(c.robIndex(u))
	}
	m.executing = make([]int32, len(c.executing))
	for i, u := range c.executing {
		m.executing[i] = int32(c.robIndex(u))
	}
	m.fuBusy = make([]uint64, len(c.fus))
	for i := range c.fus {
		m.fuBusy[i] = c.fus[i].busyUntil
	}
	m.predictor = append([]uint8(nil), c.predictor...)
	m.btb = append([]btbEntry(nil), c.btb...)
	return &MicroState{detailed: m}
}

// LoadMicro restores a state captured by SaveMicro on a core with the
// same configuration. The MicroState is not consumed: the pipeline
// receives fresh deep copies, so one checkpoint can be restored any
// number of times (and concurrently into different cores).
func (c *Detailed) LoadMicro(ms *MicroState) {
	m := ms.detailed
	// Recycle the uops currently in flight; fetchQ and ROB together own
	// every live uop (issue queue and executing entries alias ROB ones).
	for i := 0; i < c.fetchQ.len(); i++ {
		c.recycleUop(c.fetchQ.at(i))
	}
	for i := 0; i < c.rob.len(); i++ {
		c.recycleUop(c.rob.at(i))
	}
	c.cycle = m.cycle
	c.seq = m.seq
	c.instrs = m.instrs
	c.commitPC = m.commitPC
	c.mode = m.mode
	c.irqOff = m.irqOff
	c.vbar = m.vbar
	c.spBank = m.spBank
	c.elr = m.elr
	c.spsr = m.spsr
	c.fatal = false
	c.wfi = m.wfi
	c.mem.SetTTBR(m.ttbr)
	if len(c.prf) == len(m.prf) {
		copy(c.prf, m.prf)
	} else {
		c.prf = append([]physReg(nil), m.prf...)
	}
	c.renameMap = m.renameMap
	c.archMap = m.archMap
	c.freeList = append(c.freeList[:0], m.freeList...)
	c.fetchPC = m.fetchPC
	c.fetchStall = m.fetchStall
	c.fetchHalt = m.fetchHalt
	c.serializeBlock = m.serializeBlock
	c.commitStall = m.commitStall
	if len(c.fetchQ.buf) == 0 {
		// A core that never went through LoadArch: size the rings now.
		c.fetchQ.init(c.cfg.FetchQueue)
		c.rob.init(c.cfg.ROBSize)
	}
	c.fetchQ.clear()
	for i := range m.fetchQ {
		u := c.allocUop()
		*u = m.fetchQ[i]
		c.fetchQ.push(u)
	}
	c.rob.clear()
	for i := range m.rob {
		u := c.allocUop()
		*u = m.rob[i]
		c.rob.push(u)
	}
	c.iq = c.iq[:0]
	for _, ri := range m.iq {
		c.iq = append(c.iq, c.rob.at(int(ri)))
	}
	c.executing = c.executing[:0]
	for _, ri := range m.executing {
		c.executing = append(c.executing, c.rob.at(int(ri)))
	}
	for i := range c.fus {
		c.fus[i].busyUntil = m.fuBusy[i]
	}
	copy(c.predictor, m.predictor)
	copy(c.btb, m.btb)
	if len(c.decTags) == 0 {
		// A core that never went through LoadArch: initialise the decode
		// memo the same way (it is a pure cache, content-irrelevant).
		c.decTags = make([]uint32, 4096)
		c.decOps = make([]isa.Instruction, 4096)
		for i := range c.decTags {
			c.decTags[i] = 0xFFFFFFFF
		}
	}
}

// HashMicro folds the detailed core's live state into h. Excluded as dead
// or non-semantic: values of free physical registers (alloc clears ready
// and writeback stores before any read), values of allocated-but-unready
// registers (writeback overwrites them), uop sequence numbers (ROB order
// already encodes the only observable property), stall deadlines that
// have already expired (normalised to zero so two different stale values
// compare equal), the uop pool, the decode memo, and the branch/squash
// statistics counters.
func (c *Detailed) HashMicro(h *mem.Hasher) {
	h.Word(c.cycle)
	h.Word(c.instrs)
	h.Word32(c.commitPC)
	h.Word(uint64(c.mode))
	h.Bool(c.irqOff)
	h.Word32(c.vbar)
	hashBanks(h, c.spBank, c.elr, c.spsr)
	h.Bool(c.wfi)
	h.Word32(c.mem.TTBR())
	for _, v := range c.renameMap {
		h.Word(uint64(v))
	}
	for _, v := range c.archMap {
		h.Word(uint64(v))
	}
	if cap(c.hashFree) < len(c.prf) {
		c.hashFree = make([]bool, len(c.prf))
	}
	free := c.hashFree[:len(c.prf)]
	for i := range free {
		free[i] = false
	}
	for _, i := range c.freeList {
		free[i] = true
	}
	var bm uint64
	nbit := 0
	for i := range c.prf {
		if free[i] {
			bm |= 1 << nbit
		}
		if nbit++; nbit == 64 {
			h.Word(bm)
			bm, nbit = 0, 0
		}
	}
	if nbit > 0 {
		h.Word(bm)
	}
	for i := range c.prf {
		if free[i] {
			continue
		}
		h.Bool(c.prf[i].ready)
		if c.prf[i].ready {
			h.Word32(c.prf[i].value)
		}
	}
	h.Word32(c.fetchPC)
	h.Word(expired(c.fetchStall, c.cycle))
	h.Bool(c.fetchHalt)
	h.Bool(c.serializeBlock)
	h.Word(expired(c.commitStall, c.cycle))
	nfq := c.fetchQ.len()
	h.Word(uint64(nfq))
	for i := 0; i < nfq; i++ {
		hashUop(h, c.fetchQ.at(i))
	}
	h.Word(uint64(c.rob.len()))
	for i, n := 0, c.rob.len(); i < n; i++ {
		hashUop(h, c.rob.at(i))
	}
	// Issue-queue and executing membership by position: which ROB entries
	// are still waiting vs in flight is timing-live state. The positions
	// hashed here (fetch-queue length + ROB index) match what the old
	// map-based identity scheme produced, so fingerprints are stable.
	h.Word(uint64(len(c.iq)))
	for _, u := range c.iq {
		h.Word(uint64(nfq + c.robIndex(u)))
	}
	h.Word(uint64(len(c.executing)))
	for _, u := range c.executing {
		h.Word(uint64(nfq + c.robIndex(u)))
	}
	for i := range c.fus {
		h.Word(expired(c.fus[i].busyUntil, c.cycle))
	}
	h.Bytes(c.predictor)
	for _, e := range c.btb {
		h.Bool(e.valid)
		h.Word32(e.tag)
		h.Word32(e.target)
	}
}

// expired normalises an absolute cycle deadline: deadlines at or before
// now no longer gate anything, so all of them hash as zero.
func expired(deadline, now uint64) uint64 {
	if deadline <= now {
		return 0
	}
	return deadline
}

// hashUop folds one in-flight uop. All fields except seq are hashed: uops
// are zeroed at allocation, so unwritten fields are deterministically
// zero, and the conditionally-written ones are exactly the live payload.
func hashUop(h *mem.Hasher, u *uop) {
	h.Word32(u.in.Encode())
	h.Word32(u.pc)
	h.Word(uint64(int64(u.srcRn)))
	h.Word(uint64(int64(u.srcOp2)))
	h.Word(uint64(int64(u.srcRd)))
	h.Word(uint64(int64(u.srcFlags)))
	h.Word(uint64(int64(u.dst)))
	h.Word(uint64(int64(u.dstFlags)))
	h.Word(uint64(int64(u.oldDst)))
	h.Word(uint64(int64(u.oldDstFlags)))
	h.Word(uint64(u.state))
	h.Word(u.doneAt)
	h.Word32(u.value)
	hashFlags(h, u.flags)
	h.Bool(u.setFlags)
	h.Bool(u.isBranch)
	h.Bool(u.predTaken)
	h.Word32(u.predTarget)
	h.Bool(u.taken)
	h.Word32(u.target)
	h.Bool(u.mispredict)
	h.Bool(u.writesPC)
	h.Bool(u.isStore)
	h.Word(uint64(int64(u.loadLat)))
	h.Bool(u.addrReady)
	h.Word32(u.storeAddr)
	h.Word32(u.storeSize)
	h.Word32(u.storeVal)
	h.Bool(u.hasExc)
	h.Word(uint64(u.exc))
	h.Word32(u.excRet)
	h.Bool(u.serialized)
	h.Bool(u.condFail)
}

func hashFlags(h *mem.Hasher, f isa.Flags) {
	h.Bool(f.N)
	h.Bool(f.Z)
	h.Bool(f.C)
	h.Bool(f.V)
}

func hashBanks(h *mem.Hasher, sp [3]uint32, elr [3]uint32, spsr [3]isa.CPSR) {
	for _, v := range sp {
		h.Word32(v)
	}
	for _, v := range elr {
		h.Word32(v)
	}
	for _, v := range spsr {
		h.Word32(uint32(v))
	}
}
