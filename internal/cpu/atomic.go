package cpu

import (
	"armsefi/internal/isa"
	"armsefi/internal/mem"
)

// Atomic is the fast functional CPU model: one instruction per step, with
// timing approximated as one cycle plus memory latency. It corresponds to
// the gem5 atomic model row of Table I.
type Atomic struct {
	mem *mem.System
	irq IRQLine

	pc     uint32
	regs   [isa.NumRegs]uint32
	flags  isa.Flags
	mode   isa.Mode
	irqOff bool
	vbar   uint32

	spBank [3]uint32
	elr    [3]uint32
	spsr   [3]isa.CPSR

	fatal bool
	wfi   bool

	cycles uint64
	instrs uint64

	trace func(pc uint32, mode isa.Mode, in isa.Instruction)

	// Propagation provenance taint: the architectural register holding an
	// injected bit. A nil probe means no taint is tracked. Reset wipes the
	// fields, which is fine: probes are armed mid-run, never across boots.
	taintProbe *mem.Probe
	taintReg   int
}

var _ Core = (*Atomic)(nil)

// NewAtomic builds an atomic-model core over a memory system.
func NewAtomic(m *mem.System, irq IRQLine) *Atomic {
	c := &Atomic{mem: m, irq: irq}
	c.Reset()
	return c
}

// Reset implements Core: SVC mode, interrupts masked, PC at the reset
// vector.
func (c *Atomic) Reset() {
	*c = Atomic{mem: c.mem, irq: c.irq, trace: c.trace, mode: isa.ModeSVC, irqOff: true}
}

// SetTrace installs an instruction hook invoked after decode for every
// executed instruction; nil disables tracing.
func (c *Atomic) SetTrace(fn func(pc uint32, mode isa.Mode, in isa.Instruction)) {
	c.trace = fn
}

// Cycles implements Core.
func (c *Atomic) Cycles() uint64 { return c.cycles }

// Instructions implements Core.
func (c *Atomic) Instructions() uint64 { return c.instrs }

// Fatal implements Core.
func (c *Atomic) Fatal() bool { return c.fatal }

// Mode implements Core.
func (c *Atomic) Mode() isa.Mode { return c.mode }

// PC implements Core.
func (c *Atomic) PC() uint32 { return c.pc }

// Reg implements Core.
func (c *Atomic) Reg(r isa.Reg) uint32 { return c.regs[r] }

// SetReg sets an architectural register; used by tests and the loader.
func (c *Atomic) SetReg(r isa.Reg, v uint32) { c.regs[r] = v }

// Flags returns the current NZCV flags.
func (c *Atomic) Flags() isa.Flags { return c.flags }

// RegFileBits implements Core: the atomic model's injection surface is the
// architectural register file.
func (c *Atomic) RegFileBits() uint64 { return isa.NumRegs * 32 }

// FlipRegFileBit implements Core.
func (c *Atomic) FlipRegFileBit(bit uint64) {
	bit %= c.RegFileBits()
	c.regs[bit/32] ^= 1 << (bit % 32)
}

// TaintRegBit marks the register holding a linearly-addressed bit (same
// addressing as FlipRegFileBit) as tainted and arms the probe. The atomic
// model's architectural registers are always live. Reads commit instantly
// in this model, so consumption is reported as a single read event.
func (c *Atomic) TaintRegBit(bit uint64, p *mem.Probe) {
	bit %= c.RegFileBits()
	c.taintProbe = p
	c.taintReg = int(bit / 32)
	p.Arm(true)
}

// ClearRegTaint drops any tracked register taint without emitting an event.
func (c *Atomic) ClearRegTaint() {
	c.taintProbe = nil
	c.taintReg = 0
}

// noteRegRead reports a consuming read of the tainted register.
func (c *Atomic) noteRegRead(r isa.Reg) {
	if c.taintProbe != nil && int(r) == c.taintReg {
		c.taintProbe.NoteReadReg("regfile", c.pc, r.String())
	}
}

// noteRegWrite reports that a write killed the tainted register's value.
func (c *Atomic) noteRegWrite(r isa.Reg) {
	if c.taintProbe != nil && int(r) == c.taintReg {
		c.taintProbe.NoteOverwrite("regfile")
		c.ClearRegTaint()
	}
}

// Counters implements Core.
func (c *Atomic) Counters() Counters {
	return Counters{
		Cycles:       c.cycles,
		Instructions: c.instrs,
		L1DAccesses:  c.mem.L1D.Stats().Accesses(),
		L1DMisses:    c.mem.L1D.Stats().Misses,
		DTLBMisses:   c.mem.DTLB.Stats().Misses,
		L1IMisses:    c.mem.L1I.Stats().Misses,
		ITLBMisses:   c.mem.ITLB.Stats().Misses,
	}
}

// readReg reads a register as an operand; the PC reads as the address of
// the next instruction.
func (c *Atomic) readReg(r isa.Reg) uint32 {
	if r == isa.PC {
		return c.pc + 4
	}
	c.noteRegRead(r)
	return c.regs[r]
}

// switchMode banks the stack pointer and changes mode.
func (c *Atomic) switchMode(m isa.Mode) {
	// Banking a tainted SP copies the corrupted value aside for later
	// restoration (a consumption), then overwrites the register.
	c.noteRegRead(isa.SP)
	c.spBank[bankIndex(c.mode)] = c.regs[isa.SP]
	c.noteRegWrite(isa.SP)
	c.regs[isa.SP] = c.spBank[bankIndex(m)]
	c.mode = m
}

// takeException enters an exception vector. retPC is the address execution
// resumes at after ERET.
func (c *Atomic) takeException(vec isa.Vector, retPC uint32) {
	bank := bankIndex(vec.Mode())
	c.spsr[bank] = isa.PackCPSR(c.flags, c.mode, c.irqOff)
	c.elr[bank] = retPC
	c.switchMode(vec.Mode())
	c.irqOff = true
	c.wfi = false
	c.pc = c.vbar + 4*uint32(vec)
}

// StepCycle implements Core: executes one instruction and returns its cost
// in cycles.
func (c *Atomic) StepCycle() int {
	if c.fatal {
		c.cycles++
		return 1
	}
	if !c.irqOff && c.irq.Pending() {
		c.takeException(isa.VecIRQ, c.pc)
		c.cycles++
		return 1
	}
	if c.wfi {
		c.cycles++
		return 1
	}
	lat := c.exec()
	c.cycles += uint64(lat)
	return lat
}

// exec runs one instruction and returns its cycle cost.
func (c *Atomic) exec() int {
	word, fetchLat, fault := c.mem.FetchInstr(c.pc, c.mode)
	lat := 1 + fetchLat
	if fault != nil {
		c.takeException(isa.VecPrefetchAbort, c.pc)
		return lat
	}
	in := isa.Decode(word)
	if c.trace != nil {
		c.trace(c.pc, c.mode, in)
	}
	if !in.Op.Valid() {
		c.takeException(isa.VecUndef, c.pc)
		return lat
	}
	c.instrs++
	if !in.Cond.Passes(c.flags) {
		c.pc += 4
		return lat
	}
	info := in.Op.Info()
	switch info.Format {
	case isa.FmtDP, isa.FmtMovW:
		lat += info.Latency - 1
		c.execDP(in)
	case isa.FmtMem:
		lat += c.execMem(in)
	case isa.FmtBr:
		target := c.pc + 4 + uint32(in.Imm)*4
		if in.Op == isa.OpBL {
			c.noteRegWrite(isa.LR)
			c.regs[isa.LR] = c.pc + 4
		}
		c.pc = target
	case isa.FmtBX:
		c.pc = c.readReg(in.Rm) &^ 1
	case isa.FmtSys:
		lat += c.execSys(in)
	}
	return lat
}

func (c *Atomic) execDP(in isa.Instruction) {
	var op2 uint32
	if in.UseImm || in.Op.Info().Format == isa.FmtMovW {
		op2 = uint32(in.Imm)
	} else {
		op2 = in.Shift.Apply(c.readReg(in.Rm), in.ShAmt)
	}
	res := isa.ExecDP(in.Op, c.readReg(in.Rn), op2, c.readReg(in.Rd), c.flags, in.SetFlags)
	if res.FlagsValid {
		c.flags = res.Flags
	}
	if !in.Op.Info().WritesRd {
		c.pc += 4
		return
	}
	if in.Rd == isa.PC {
		// An ALU write to the PC is an indirect jump (and the way a
		// corrupted destination-register field turns into a wild branch).
		c.pc = res.Value &^ 1
		return
	}
	c.noteRegWrite(in.Rd)
	c.regs[in.Rd] = res.Value
	c.pc += 4
}

func (c *Atomic) execMem(in isa.Instruction) int {
	var off uint32
	if in.UseImm {
		off = uint32(in.Imm)
	} else {
		off = in.Shift.Apply(c.readReg(in.Rm), in.ShAmt)
	}
	addr := c.readReg(in.Rn) + off
	size := loadStoreSize(in.Op)
	if in.Op.Info().IsLoad {
		val, lat, fault := c.mem.Load(addr, size, c.mode)
		if fault != nil {
			c.takeException(isa.VecDataAbort, c.pc)
			return lat
		}
		if in.Rd == isa.PC {
			c.pc = val &^ 1
			return lat
		}
		c.noteRegWrite(in.Rd)
		c.regs[in.Rd] = val
		c.pc += 4
		return lat
	}
	lat, fault := c.mem.Store(addr, size, c.readReg(in.Rd), c.mode)
	if fault != nil {
		c.takeException(isa.VecDataAbort, c.pc)
		return lat
	}
	c.pc += 4
	return lat
}

func (c *Atomic) execSys(in isa.Instruction) int {
	switch in.Op {
	case isa.OpNOP:
		c.pc += 4
		return 0
	case isa.OpSVC:
		c.takeException(isa.VecSVC, c.pc+4)
		return 1
	case isa.OpWFI:
		if !c.mode.Privileged() {
			c.takeException(isa.VecUndef, c.pc)
			return 1
		}
		c.wfi = true
		c.pc += 4
		return 1
	case isa.OpMRS:
		v, ok := c.sysRead(isa.SysReg(in.Imm))
		if !ok {
			c.takeException(isa.VecUndef, c.pc)
			return 1
		}
		c.noteRegWrite(in.Rd)
		c.regs[in.Rd] = v
		c.pc += 4
		return 1
	case isa.OpMSR:
		if !c.sysWrite(isa.SysReg(in.Imm), c.readReg(in.Rd)) {
			c.takeException(isa.VecUndef, c.pc)
		} else {
			c.pc += 4
		}
		return 1
	case isa.OpERET:
		c.eret()
		return 2
	default:
		c.takeException(isa.VecUndef, c.pc)
		return 1
	}
}

func (c *Atomic) sysRead(sr isa.SysReg) (uint32, bool) {
	switch sr {
	case isa.SysCPSR:
		return uint32(isa.PackCPSR(c.flags, c.mode, c.irqOff)), true
	case isa.SysSPSR:
		if !c.mode.Privileged() {
			return 0, false
		}
		return uint32(c.spsr[bankIndex(c.mode)]), true
	case isa.SysELR:
		if !c.mode.Privileged() {
			return 0, false
		}
		return c.elr[bankIndex(c.mode)], true
	case isa.SysTTBR:
		if !c.mode.Privileged() {
			return 0, false
		}
		return c.mem.TTBR(), true
	case isa.SysVBAR:
		if !c.mode.Privileged() {
			return 0, false
		}
		return c.vbar, true
	default:
		return 0, false
	}
}

func (c *Atomic) sysWrite(sr isa.SysReg, v uint32) bool {
	if !c.mode.Privileged() {
		return false
	}
	switch sr {
	case isa.SysCPSR:
		w := isa.CPSR(v)
		if !w.Valid() {
			c.fatal = true
			return true
		}
		c.flags = w.Flags()
		c.irqOff = w.IRQOff()
		c.switchMode(w.Mode())
		return true
	case isa.SysSPSR:
		c.spsr[bankIndex(c.mode)] = isa.CPSR(v)
		return true
	case isa.SysELR:
		c.elr[bankIndex(c.mode)] = v
		return true
	case isa.SysTTBR:
		c.mem.SetTTBR(v)
		return true
	case isa.SysVBAR:
		c.vbar = v
		return true
	default:
		return false
	}
}

// eret returns from an exception. A corrupted SPSR whose mode field is
// invalid leaves the core in an unrecoverable state — the hardware
// equivalent of a system crash.
func (c *Atomic) eret() {
	if !c.mode.Privileged() {
		c.takeException(isa.VecUndef, c.pc)
		return
	}
	bank := bankIndex(c.mode)
	saved := c.spsr[bank]
	if !saved.Valid() {
		c.fatal = true
		return
	}
	c.pc = c.elr[bank]
	c.flags = saved.Flags()
	c.irqOff = saved.IRQOff()
	c.switchMode(saved.Mode())
}

// SaveArch captures the committed architectural state.
func (c *Atomic) SaveArch() ArchState {
	return ArchState{
		PC: c.pc, Regs: c.regs, Flags: c.flags, Mode: c.mode,
		IRQOff: c.irqOff, VBAR: c.vbar,
		SPBank: c.spBank, ELR: c.elr, SPSR: c.spsr,
		TTBR: c.mem.TTBR(),
	}
}

// LoadArch restores architectural state saved by SaveArch, clearing any
// fatal or wait-for-interrupt condition and zeroing the counters.
func (c *Atomic) LoadArch(st ArchState) {
	if c.taintProbe != nil {
		// An architectural reload wipes the register file (beam restart
		// path; injection runs disarm before any restore).
		c.taintProbe.NoteOverwrite("regfile")
		c.ClearRegTaint()
	}
	c.pc = st.PC
	c.regs = st.Regs
	c.flags = st.Flags
	c.mode = st.Mode
	c.irqOff = st.IRQOff
	c.vbar = st.VBAR
	c.spBank = st.SPBank
	c.elr = st.ELR
	c.spsr = st.SPSR
	c.mem.SetTTBR(st.TTBR)
	c.fatal = false
	c.wfi = false
	c.cycles = 0
	c.instrs = 0
}
