package cpu

import "testing"

// TestDetailedCycleLoopZeroAllocs pins the steady-state allocation
// contract of the out-of-order cycle loop: once the uop pool has reached
// its steady population (ROBSize+FetchQueue) and the working set is
// cache-resident, StepCycle must not touch the heap. The program mixes
// ALU ops, predicted branches, and a load/store pair so the fetch queue,
// ROB, issue queue, LSU disambiguation scan, and commit path all run.
func TestDetailedCycleLoopZeroAllocs(t *testing.T) {
	src := `
	ldr r4, =0x8000
	mov r0, #0
	ldr r1, =1000000
loop:
	add r0, r0, r1
	str r0, [r4]
	ldr r2, [r4]
	eor r3, r2, r1
	sub r1, #1
	cmp r1, #0
	bgt loop
done:
	b done
`
	prog := assembleAt(t, src)
	sys := load(t, prog)
	c := NewDetailed(sys, NeverIRQ{}, DetailedConfig{})
	// Warm-up: fill caches and the uop pool, pass the branch predictor's
	// cold mispredictions.
	runSteps(c, 20_000)
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 5_000; i++ {
			c.StepCycle()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state cycle loop allocated %.1f objects per 5000 cycles; want 0", allocs)
	}
}
