package soc

import (
	"bytes"
	"testing"

	"armsefi/internal/asm"
	"armsefi/internal/isa"
)

const helloSource = `
.equ STACK_TOP, 0x3F0000
.text
_start:
	ldr sp, =STACK_TOP
	ldr r0, =msg
	mov r1, #6
	mov r7, #2        ; write
	svc #0
	mov r0, #0
	mov r7, #1        ; exit
	svc #0
.data
msg: .asciz "hello"
`

func mustApp(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble("app.s", src, UserAsmConfig())
	if err != nil {
		t.Fatalf("assembling app: %v", err)
	}
	return p
}

func bootMachine(t *testing.T, model ModelKind, appSrc string) *Machine {
	t.Helper()
	m, err := NewMachine(PresetZynq(), model)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if err := m.LoadApp(mustApp(t, appSrc)); err != nil {
		t.Fatalf("LoadApp: %v", err)
	}
	if err := m.Boot(5_000_000); err != nil {
		t.Fatalf("Boot: %v", err)
	}
	return m
}

func TestHelloWorldAtomic(t *testing.T) {
	m := bootMachine(t, ModelAtomic, helloSource)
	res := m.Run(5_000_000)
	if res.Outcome != OutcomePowerOff {
		t.Fatalf("outcome = %v (pc=%#x mode=%v), want poweroff", res.Outcome, m.Core().PC(), m.Core().Mode())
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit code = %#x, want 0", res.ExitCode)
	}
	if want := []byte("hello\x00"); !bytes.Equal(res.Output, want) {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}

func TestHelloWorldDetailed(t *testing.T) {
	m := bootMachine(t, ModelDetailed, helloSource)
	res := m.Run(5_000_000)
	if res.Outcome != OutcomePowerOff || res.ExitCode != 0 {
		t.Fatalf("outcome = %v code=%#x (pc=%#x mode=%v)", res.Outcome, res.ExitCode, m.Core().PC(), m.Core().Mode())
	}
	if want := []byte("hello\x00"); !bytes.Equal(res.Output, want) {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}

func TestUserFaultKillsApp(t *testing.T) {
	// A user-mode store to kernel memory must be killed by the kernel with
	// exit code 0x80 + data-abort vector, not crash the system.
	src := `
.text
_start:
	ldr sp, =0x3F0000
	mov r0, #0
	str r0, [r0]      ; NULL page is kernel-only
	mov r7, #1
	svc #0
`
	m := bootMachine(t, ModelAtomic, src)
	res := m.Run(5_000_000)
	vec, killed := res.AppKilled()
	if !killed {
		t.Fatalf("app not killed: outcome=%v code=%#x", res.Outcome, res.ExitCode)
	}
	if vec != isa.VecDataAbort {
		t.Fatalf("killed by vector %v, want data-abort", vec)
	}
}

func TestHeartbeatAdvances(t *testing.T) {
	// A spinning app never exits, but the kernel heartbeat must keep
	// advancing — the "Application Crash vs System Crash" discriminator.
	src := `
.text
_start:
	b _start
`
	m := bootMachine(t, ModelAtomic, src)
	res := m.Run(500_000)
	if res.Outcome != OutcomeTimeout {
		t.Fatalf("outcome = %v, want timeout", res.Outcome)
	}
	if res.Beats < 5 {
		t.Fatalf("heartbeats = %d during 500k cycles with period %d, want several",
			res.Beats, m.Cfg.TimerPeriod)
	}
}

func TestKernelSyscallAliveAndWrite(t *testing.T) {
	src := `
.text
_start:
	ldr sp, =0x3F0000
	mov r7, #3         ; alive()
	svc #0
	mov r7, #3
	svc #0
	ldr r0, =msg
	mov r1, #3
	mov r7, #2         ; write
	svc #0
	mov r7, #99        ; unknown syscall returns -1
	svc #0
	cmn r0, #1
	moveq r0, #0       ; exit(0) if ENOSYS seen
	movne r0, #1
	mov r7, #1
	svc #0
.data
msg: .asciz "abc"
`
	m := bootMachine(t, ModelAtomic, src)
	res := m.Run(5_000_000)
	if !res.CleanExit() {
		t.Fatalf("outcome %v code %#x", res.Outcome, res.ExitCode)
	}
	if res.AppAlive != 2 {
		t.Errorf("alive count = %d, want 2", res.AppAlive)
	}
	if string(res.Output) != "abc" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestUndefInstructionKillsApp(t *testing.T) {
	src := `
.text
_start:
	ldr sp, =0x3F0000
	.word 0xFFFFFFFF
	mov r7, #1
	svc #0
`
	m := bootMachine(t, ModelAtomic, src)
	res := m.Run(5_000_000)
	vec, killed := res.AppKilled()
	if !killed || vec != isa.VecUndef {
		t.Fatalf("outcome %v code %#x vec %v", res.Outcome, res.ExitCode, vec)
	}
}

func TestWildJumpIntoKernelKillsApp(t *testing.T) {
	// Jumping to kernel text from user mode must be a prefetch-abort kill,
	// not an escalation.
	src := `
.text
_start:
	ldr sp, =0x3F0000
	mov r0, #0
	bx r0
`
	m := bootMachine(t, ModelAtomic, src)
	res := m.Run(5_000_000)
	vec, killed := res.AppKilled()
	if !killed || vec != isa.VecPrefetchAbort {
		t.Fatalf("outcome %v code %#x vec %v", res.Outcome, res.ExitCode, vec)
	}
}

func TestCorruptedVectorTableIsSystemCrash(t *testing.T) {
	// Corrupting the kernel's vector table in DRAM and forcing an
	// exception must end in a kernel panic or unrecoverable state, not a
	// clean app kill. (The app traps via a NULL store.)
	src := `
.text
_start:
	ldr sp, =0x3F0000
	mov r0, #0
	str r0, [r0]
	mov r7, #1
	svc #0
`
	m := bootMachine(t, ModelAtomic, src)
	// Trash the data-abort vector instruction (offset 0x10).
	m.DRAM.Poke(0x10, 0xFFFFFFFF)
	m.Mem.L1I.InvalidateAll() // ensure the corrupted word is fetched
	m.Mem.L2.InvalidateAll()
	res := m.Run(5_000_000)
	if res.Outcome == OutcomePowerOff && res.ExitCode != 0xDEAD {
		// Accept either an explicit panic or a hang (exception storm).
		if _, killed := res.AppKilled(); killed {
			t.Fatalf("corrupted vector table produced a clean app kill: %#x", res.ExitCode)
		}
	}
	if res.Outcome == OutcomePowerOff && res.ExitCode == 0 {
		t.Fatal("corrupted vector table produced a clean exit")
	}
}
