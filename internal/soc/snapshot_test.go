package soc

import (
	"bytes"
	"testing"
)

const snapAppSource = `
.text
_start:
	ldr sp, =0x3F0000
	ldr r0, =counter
	ldr r1, [r0]
	add r1, #1
	str r1, [r0]
	ldr r0, =counter
	mov r1, #4
	mov r7, #2
	svc #0
	mov r0, #0
	mov r7, #1
	svc #0
.data
counter: .word 0
`

func snapMachine(t *testing.T, model ModelKind) (*Machine, *Snapshot) {
	t.Helper()
	m := bootMachine(t, model, snapAppSource)
	return m, m.SaveSnapshot()
}

func TestSnapshotRestoreIsCycleExact(t *testing.T) {
	for _, model := range []ModelKind{ModelAtomic, ModelDetailed} {
		m, snap := snapMachine(t, model)
		m.RestoreSnapshot(snap, false)
		a := m.Run(5_000_000)
		m.RestoreSnapshot(snap, false)
		b := m.Run(5_000_000)
		if a.Cycles != b.Cycles || !bytes.Equal(a.Output, b.Output) {
			t.Errorf("%v: restored runs differ: %d/%d cycles, %q/%q",
				model, a.Cycles, b.Cycles, a.Output, b.Output)
		}
		if !a.CleanExit() {
			t.Errorf("%v: run not clean: %v", model, a.Outcome)
		}
	}
}

func TestColdRestoreClearsCaches(t *testing.T) {
	m, snap := snapMachine(t, ModelAtomic)
	m.Run(5_000_000)
	m.RestoreSnapshot(snap, false)
	if m.Mem.L1D.ValidLines() != 0 || m.Mem.L2.ValidLines() != 0 ||
		m.Mem.DTLB.ValidEntries() != 0 {
		t.Error("cold restore left cache/TLB state")
	}
	// The run must still work: page tables come back from the DRAM image.
	res := m.Run(5_000_000)
	if !res.CleanExit() {
		t.Fatalf("run after cold restore: %v code=%#x", res.Outcome, res.ExitCode)
	}
}

func TestWarmRestoreKeepsCaches(t *testing.T) {
	m, snap := snapMachine(t, ModelAtomic)
	m.RestoreSnapshot(snap, true)
	if m.Mem.L1D.ValidLines() == 0 && m.Mem.L2.ValidLines() == 0 {
		t.Error("warm restore dropped all cache lines")
	}
	res := m.Run(5_000_000)
	if !res.CleanExit() {
		t.Fatalf("run after warm restore: %v", res.Outcome)
	}
}

// TestRestartAppPreservesKernelState verifies the live-board restart: the
// app image is re-staged but kernel memory (jiffies etc.) keeps counting.
func TestRestartAppPreservesKernelState(t *testing.T) {
	m, snap := snapMachine(t, ModelAtomic)
	first := m.Run(5_000_000)
	if !first.CleanExit() {
		t.Fatalf("first run: %v", first.Outcome)
	}
	// The app increments `counter` in its own data and prints it; after a
	// restart the image is fresh, so the second run prints 1 again.
	m.RestartApp(snap)
	second := m.Run(5_000_000)
	if !second.CleanExit() {
		t.Fatalf("second run: %v code=%#x", second.Outcome, second.ExitCode)
	}
	if !bytes.Equal(first.Output, second.Output) {
		t.Errorf("restarted app output %q differs from first %q", second.Output, first.Output)
	}
}

func TestLoadAppValidation(t *testing.T) {
	m, err := NewMachine(PresetZynq(), ModelAtomic)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong bases must be rejected.
	p := mustApp(t, "nop\n")
	p.TextBase = 0x1234
	if err := m.LoadApp(p); err == nil {
		t.Error("wrong text base accepted")
	}
}

func TestBootIsDeterministicAcrossMachines(t *testing.T) {
	m1 := bootMachine(t, ModelDetailed, snapAppSource)
	m2 := bootMachine(t, ModelDetailed, snapAppSource)
	if m1.Core().Cycles() != m2.Core().Cycles() {
		t.Errorf("boot cycles differ: %d vs %d", m1.Core().Cycles(), m2.Core().Cycles())
	}
}

func TestRunWithInjectionAppliesLateFault(t *testing.T) {
	m, snap := snapMachine(t, ModelAtomic)
	m.RestoreSnapshot(snap, false)
	applied := false
	// Injection scheduled far beyond the run still fires (at run end) so
	// the component state carries it.
	res := m.RunWithInjection(5_000_000, 1<<62, func() { applied = true })
	if !res.CleanExit() {
		t.Fatalf("run: %v", res.Outcome)
	}
	if !applied {
		t.Error("late injection was dropped")
	}
}
