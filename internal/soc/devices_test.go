package soc

import "testing"

func TestUARTDevice(t *testing.T) {
	u := &UART{}
	if u.Read32(uartStatus) != 1 {
		t.Error("UART not ready")
	}
	u.Write32(uartTX, 'h')
	u.Write32(uartTX, 0x100|'i') // only the low byte transmits
	if got := string(u.Output()); got != "hi" {
		t.Errorf("output = %q", got)
	}
	if u.Len() != 2 {
		t.Errorf("len = %d", u.Len())
	}
	// Output returns a copy: mutating it must not affect the device.
	out := u.Output()
	out[0] = 'X'
	if string(u.Output()) != "hi" {
		t.Error("Output() aliases internal buffer")
	}
	u.Reset()
	if u.Len() != 0 {
		t.Error("reset did not clear")
	}
}

func TestTimerDevice(t *testing.T) {
	tm := &Timer{}
	tm.Tick(1000)
	if tm.Pending() {
		t.Error("disarmed timer fired")
	}
	tm.Write32(timerPeriod, 100)
	tm.Tick(99)
	if tm.Pending() {
		t.Error("fired early")
	}
	tm.Tick(1)
	if !tm.Pending() {
		t.Error("did not fire at period")
	}
	// Pending persists until acknowledged.
	tm.Tick(500)
	if !tm.Pending() {
		t.Error("pending cleared without ack")
	}
	tm.Write32(timerAck, 1)
	if tm.Pending() {
		t.Error("ack did not clear")
	}
	// Count carries over: the 500-cycle tick above banked extra periods.
	if tm.Read32(timerPeriod) != 100 {
		t.Error("period readback")
	}
	tm.Write32(timerPeriod, 50) // rearm resets count
	if tm.Read32(timerCount) != 0 {
		t.Error("rearm did not reset count")
	}
}

func TestSysCtlDevice(t *testing.T) {
	s := &SysCtl{}
	s.Write32(sysHeartbeat, 7)
	s.Write32(sysHeartbeat, 8)
	s.Write32(sysAppAlive, 1)
	if s.Beats() != 2 || s.AppAlive() != 1 {
		t.Errorf("beats=%d alive=%d", s.Beats(), s.AppAlive())
	}
	if s.Halted() {
		t.Error("halted before poweroff")
	}
	s.Write32(sysPowerOff, 42)
	if !s.Halted() || s.ExitCode() != 42 {
		t.Errorf("halted=%v code=%d", s.Halted(), s.ExitCode())
	}
	s.ClearHalt()
	if s.Halted() || s.Beats() != 2 {
		t.Error("ClearHalt must keep counters")
	}
	s.Reset()
	if s.Beats() != 0 {
		t.Error("Reset must clear counters")
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Outcome: OutcomePowerOff, ExitCode: 0}
	if !r.CleanExit() || r.KernelPanic() {
		t.Error("clean exit misclassified")
	}
	r.ExitCode = 0xDEAD
	if !r.KernelPanic() {
		t.Error("panic code not recognised")
	}
	r.ExitCode = 0x80 + 1
	if vec, ok := r.AppKilled(); !ok || vec != 1 {
		t.Error("app-kill code not recognised")
	}
	r.Outcome = OutcomeTimeout
	if _, ok := r.AppKilled(); ok {
		t.Error("timeout misread as app kill")
	}
	for _, o := range []Outcome{OutcomePowerOff, OutcomeFatal, OutcomeTimeout, Outcome(99)} {
		if o.String() == "" {
			t.Error("empty outcome name")
		}
	}
}

func TestModelKindString(t *testing.T) {
	if ModelAtomic.String() != "atomic" || ModelDetailed.String() != "detailed" {
		t.Error("model names")
	}
}
