package soc

import (
	"bytes"
	"reflect"
	"testing"

	"armsefi/internal/mem"
)

// A workload long enough to cross several small rung boundaries: a loop
// that touches memory and prints a digest, with the usual clean exit.
const ladderAppSource = `
.text
_start:
	ldr sp, =0x3F0000
	ldr r4, =buf
	mov r8, #250
outer:
	mov r5, #0
	mov r6, #0
loop:
	ldr r1, [r4, r5]
	add r6, r6, r1
	str r6, [r4, r5]
	add r5, #4
	cmp r5, #128
	blt loop
	subs r8, r8, #1
	bne outer
	ldr r0, =msg
	mov r1, #4
	mov r7, #2
	svc #0
	mov r0, #0
	mov r7, #1
	svc #0
.data
msg: .word 0x0a6b6f21
buf: .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
buf2: .word 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32
`

const ladderBudget = 5_000_000

func captureLadder(t *testing.T, model ModelKind, warm bool, every uint64) (*Machine, *Snapshot, *Ladder) {
	t.Helper()
	m := bootMachine(t, model, ladderAppSource)
	snap := m.SaveSnapshot()
	l := m.CaptureLadder(snap, warm, every, 0, ladderBudget)
	if !l.Final.CleanExit() {
		t.Fatalf("%v warm=%v: capture run not clean: %v code=%#x",
			model, warm, l.Final.Outcome, l.Final.ExitCode)
	}
	return m, snap, l
}

// TestCaptureLadderFinalMatchesPlainRun pins that the instrumented capture
// replay produces exactly the Result of an uninstrumented golden run.
func TestCaptureLadderFinalMatchesPlainRun(t *testing.T) {
	for _, model := range []ModelKind{ModelAtomic, ModelDetailed} {
		for _, warm := range []bool{false, true} {
			m, snap, l := captureLadder(t, model, warm, 2_000)
			if l.Rungs() < 3 {
				t.Fatalf("%v warm=%v: only %d rungs (golden %d cycles)",
					model, warm, l.Rungs(), l.Final.Cycles)
			}
			m.RestoreSnapshot(snap, warm)
			plain := m.Run(ladderBudget)
			if !reflect.DeepEqual(plain, l.Final) {
				t.Errorf("%v warm=%v: capture Final %+v != plain run %+v",
					model, warm, l.Final, plain)
			}
		}
	}
}

// TestRestoreCheckpointBitIdenticalToReplay verifies, for every rung, that
// restoring the rung reproduces exactly the state (fingerprint and
// architectural state) a full replay reaches at the rung cycle, and that a
// run continued from the rung completes the golden run bit-for-bit.
func TestRestoreCheckpointBitIdenticalToReplay(t *testing.T) {
	for _, model := range []ModelKind{ModelAtomic, ModelDetailed} {
		m, snap, l := captureLadder(t, model, false, 2_000)
		for i, c := range l.rungs {
			// Replay from the snapshot, sampling the fingerprint at the rung
			// cycle via the injection hook (it runs at the top of the step
			// loop, the exact point captureCheckpoint runs at).
			var replayFP uint64
			m.RestoreSnapshot(snap, false)
			m.RunWithInjection(ladderBudget, c.Cycle, func() { replayFP = m.Fingerprint() })
			if replayFP != c.Fingerprint {
				t.Errorf("%v rung %d (cycle %d): replay fingerprint %#x != captured %#x",
					model, i, c.Cycle, replayFP, c.Fingerprint)
			}

			// Restore the rung directly: same fingerprint, same arch state,
			// and the continued run must complete the golden tail exactly.
			m.RestoreCheckpoint(l, c)
			if got := m.Fingerprint(); got != c.Fingerprint {
				t.Errorf("%v rung %d: restored fingerprint %#x != captured %#x",
					model, i, got, c.Fingerprint)
			}
			if m.Core().Cycles() != c.Cycle {
				t.Errorf("%v rung %d: restored cycle %d != %d", model, i, m.Core().Cycles(), c.Cycle)
			}
			cont := m.Run(ladderBudget)
			if cont.Cycles != l.Final.Cycles-c.Cycle {
				t.Errorf("%v rung %d: continued run %d cycles, want %d",
					model, i, cont.Cycles, l.Final.Cycles-c.Cycle)
			}
			prefix := c.uart[len(snap.uart):]
			full := append(append([]byte(nil), prefix...), cont.Output...)
			if !bytes.Equal(full, l.Final.Output) {
				t.Errorf("%v rung %d: prefix+tail output %q != golden %q",
					model, i, full, l.Final.Output)
			}
			if !cont.CleanExit() {
				t.Errorf("%v rung %d: continued run not clean: %v", model, i, cont.Outcome)
			}
		}
	}
}

// TestRunLadderInjectionMatchesFullRun pins the bit-identity contract: for
// a spread of injection cycles and a real bit flip, the ladder path yields
// exactly the Result of restore-from-snapshot plus full replay.
func TestRunLadderInjectionMatchesFullRun(t *testing.T) {
	for _, model := range []ModelKind{ModelAtomic, ModelDetailed} {
		for _, warm := range []bool{false, true} {
			m, snap, l := captureLadder(t, model, warm, 2_000)
			watchdog := 2*l.Final.Cycles + 1_000_000
			for _, frac := range []uint64{0, 3, 7, 12, 19, 31, 47, 63} {
				at := l.Final.Cycles * frac / 64
				bit := (frac*977 + 13) % m.Core().RegFileBits()
				m.RestoreSnapshot(snap, warm)
				want := m.RunWithInjection(watchdog, at, func() { m.Core().FlipRegFileBit(bit) })
				got, _ := m.RunLadderInjection(l, watchdog, at, func() { m.Core().FlipRegFileBit(bit) })
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%v warm=%v at=%d bit=%d: ladder %+v != full %+v",
						model, warm, at, bit, got, want)
				}
			}
		}
	}
}

// TestRunLadderInjectionEarlyExit uses a self-cancelling injection (flip a
// bit twice) so the machine state provably rejoins the golden timeline: the
// first rung crossing after the injection must detect convergence.
func TestRunLadderInjectionEarlyExit(t *testing.T) {
	for _, model := range []ModelKind{ModelAtomic, ModelDetailed} {
		m, _, l := captureLadder(t, model, false, 2_000)
		watchdog := 2*l.Final.Cycles + 1_000_000
		at := l.Final.Cycles / 3
		inject := func() {
			m.Core().FlipRegFileBit(40)
			m.Core().FlipRegFileBit(40)
		}
		res, stats := m.RunLadderInjection(l, watchdog, at, inject)
		if !stats.EarlyExit {
			t.Fatalf("%v: no early exit for a state-neutral injection at cycle %d", model, at)
		}
		if stats.TailSaved == 0 {
			t.Errorf("%v: early exit saved no cycles", model)
		}
		if !reflect.DeepEqual(res, l.Final) {
			t.Errorf("%v: early-exit result %+v != golden %+v", model, res, l.Final)
		}
	}
}

// TestFastForwardGolden pins the beam fast-forward: restoring the end state
// returns the golden Result, and the machine is left exactly as a full
// golden run leaves it (halted, with identical fingerprint).
func TestFastForwardGolden(t *testing.T) {
	m, snap, l := captureLadder(t, ModelAtomic, true, 2_000)
	m.RestoreSnapshot(snap, true)
	plain := m.Run(ladderBudget)
	endFP := m.Fingerprint()
	res := m.FastForwardGolden(l)
	if !reflect.DeepEqual(res, plain) {
		t.Errorf("fast-forward result %+v != plain run %+v", res, plain)
	}
	if got := m.Fingerprint(); got != endFP {
		t.Errorf("fast-forwarded end state fingerprint %#x != full-run %#x", got, endFP)
	}
	if !m.SysCtl.Halted() {
		t.Error("fast-forwarded machine not halted")
	}
}

// TestCaptureLadderMaxCheckpoints bounds the ladder size.
func TestCaptureLadderMaxCheckpoints(t *testing.T) {
	m := bootMachine(t, ModelAtomic, ladderAppSource)
	snap := m.SaveSnapshot()
	l := m.CaptureLadder(snap, false, 1_000, 4, ladderBudget)
	if l.Rungs() > 5 { // rung 0 plus at most max mid-run rungs
		t.Errorf("ladder holds %d rungs, max 4 requested", l.Rungs())
	}
	if l.MemoryBytes() <= 0 {
		t.Error("MemoryBytes reported nothing retained")
	}
}

// TestLadderDebugCrossCheckAgrees runs ladder injections with the debug
// cross-check enabled: every incremental dirty-page convergence verdict
// is compared against the exact full-image comparison and panics on
// disagreement, so simply completing the spread — with results still
// bit-identical to full replays — proves the fast path agrees with the
// exact one at every rung crossing.
func TestLadderDebugCrossCheckAgrees(t *testing.T) {
	LadderDebugCompare.Store(true)
	t.Cleanup(func() { LadderDebugCompare.Store(false) })
	for _, model := range []ModelKind{ModelAtomic, ModelDetailed} {
		m, snap, l := captureLadder(t, model, false, 2_000)
		watchdog := 2*l.Final.Cycles + 1_000_000
		for _, frac := range []uint64{0, 9, 21, 42, 63} {
			at := l.Final.Cycles * frac / 64
			bit := (frac*977 + 13) % m.Core().RegFileBits()
			m.RestoreSnapshot(snap, false)
			want := m.RunWithInjection(watchdog, at, func() { m.Core().FlipRegFileBit(bit) })
			got, _ := m.RunLadderInjection(l, watchdog, at, func() { m.Core().FlipRegFileBit(bit) })
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v at=%d bit=%d: debug-checked ladder %+v != full %+v",
					model, at, bit, got, want)
			}
		}
	}
}

// TestLadderDebugCrossCheckPanicsOnDisagreement seeds a disagreement —
// a corrupted per-page fingerprint (with its diffPages bit set so the
// check visits it) for a page the workload never touches, making the
// incremental verdict false while the exact comparison still sees a
// converged machine — and requires the debug cross-check to panic.
func TestLadderDebugCrossCheckPanicsOnDisagreement(t *testing.T) {
	LadderDebugCompare.Store(true)
	t.Cleanup(func() { LadderDebugCompare.Store(false) })
	m, _, l := captureLadder(t, ModelAtomic, false, 2_000)
	watchdog := 2*l.Final.Cycles + 1_000_000
	at := l.Final.Cycles / 3
	last := (len(l.base.dram) - 1) / mem.PageBytes // top page: never written
	for _, r := range l.rungs {
		// Corrupt only rungs past the injection point: the restored rung's
		// fingerprints (shared with its page image) must stay true or the
		// comparison would see two identically-corrupted sets agree.
		if r.Cycle > at {
			r.diffPages[last>>6] |= 1 << (last & 63)
			r.pageFP[last] ^= 0xDEADBEEF
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("corrupted rung metadata did not trip the debug cross-check")
		}
	}()
	m.RunLadderInjection(l, watchdog, at, func() {
		m.Core().FlipRegFileBit(40)
		m.Core().FlipRegFileBit(40)
	})
}
