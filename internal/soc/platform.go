package soc

import (
	"armsefi/internal/asm"
	"armsefi/internal/kernel"
	"armsefi/internal/mem"
)

// Physical memory map of the platform. Virtual addresses are identity-mapped
// by the kernel's page table; protection comes from PTE permission bits.
const (
	// DRAMBytes is the physical memory size.
	DRAMBytes uint32 = 4 << 20

	// KernelTextBase holds the vector table and kernel code (read-only pages).
	KernelTextBase uint32 = 0x0000_0000
	// KernelDataBase holds kernel bookkeeping data.
	KernelDataBase uint32 = 0x0000_4000
	// PageTableBase holds the single-level page table (4096 entries, 16 KB).
	PageTableBase uint32 = 0x0000_C000
	// PTEntries is the number of page-table entries (VA space of 16 MB).
	PTEntries uint32 = 4096
	// SVCStackTop is the kernel-mode stack (grows down).
	SVCStackTop uint32 = 0x0001_1000
	// IRQStackTop is the interrupt-mode stack (grows down).
	IRQStackTop uint32 = 0x0001_2000

	// UserTextBase is the fixed application entry region.
	UserTextBase uint32 = 0x0010_0000
	// UserDataBase is the application data region.
	UserDataBase uint32 = 0x0020_0000
	// UserStackTop is the application stack (grows down).
	UserStackTop uint32 = 0x003F_0000

	// MMIOBase is the device window, just above DRAM.
	MMIOBase   uint32 = 0x0040_0000
	UARTBase   uint32 = MMIOBase + 0x0000
	TimerBase  uint32 = MMIOBase + 0x1000
	SysCtlBase uint32 = MMIOBase + 0x2000
	mmioBytes  uint32 = 0x1_0000
)

// Page ranges derived from the map, used to build the kernel page table.
const (
	kTextVPNEnd  = 0x0000_4000 >> mem.PageShift // 4 read-only kernel pages
	kDataVPNEnd  = 0x0001_2000 >> mem.PageShift // kernel data, page table, stacks
	userVPNStart = UserTextBase >> mem.PageShift
	userVPNEnd   = UserStackTop >> mem.PageShift
	mmioVPNStart = MMIOBase >> mem.PageShift
	mmioVPNEnd   = (MMIOBase + mmioBytes) >> mem.PageShift
)

// UserAsmConfig returns the assembler configuration for user programs on
// this platform.
func UserAsmConfig() asm.Config {
	return asm.Config{TextBase: UserTextBase, DataBase: UserDataBase}
}

// ModelKind selects which CPU model a machine instantiates.
type ModelKind uint8

// CPU model kinds, mirroring gem5's atomic and detailed O3 models.
const (
	ModelAtomic ModelKind = 1 + iota
	ModelDetailed
)

// String returns the model name.
func (m ModelKind) String() string {
	if m == ModelAtomic {
		return "atomic"
	}
	return "detailed"
}

// Config describes one platform preset (Table II of the paper).
type Config struct {
	Name          string
	Platform      string // "Zynq 7000" or "VExpress"
	KernelVersion string // "3.14" (board) or "3.13" (model)
	Mem           mem.SystemConfig
	TimerPeriod   uint32 // scheduler tick period in cycles
	NumTasks      uint32 // kernel task-table entries touched per tick
	TaskStructLen uint32

	// Detailed-model front-end parameters; the two presets differ slightly,
	// standing in for the documented design differences between the gem5
	// model and the real Cortex-A9 (most visible in the TLB, per [71]).
	BTBEntries       int
	PredictorEntries int

	// SecondCorePresent records that the physical SoC has a second
	// (disabled) core inside the beam spot; it contributes only to the
	// unmodelled-area overlay of the beam simulator.
	SecondCorePresent bool

	// CheckpointEvery is the golden-run checkpoint-ladder rung spacing in
	// cycles, and MaxCheckpoints caps how many rungs a ladder may hold
	// (the effective spacing grows to fit). Campaign engines inherit
	// these when their own Config leaves the knobs unset; zero disables
	// the ladder at the engine level.
	CheckpointEvery uint64
	MaxCheckpoints  int
}

// Checkpoint-ladder defaults shared by both presets: rungs every 150k
// cycles keep the fingerprint cost (one pass over DRAM and the arrays per
// rung) well under a percent of golden runtime at paper workload lengths,
// and 64 rungs bound the ladder even for long golden runs.
const (
	DefaultCheckpointEvery uint64 = 150_000
	DefaultMaxCheckpoints  int    = 64
)

// cacheDefaults returns the A9 cache geometry of Table II.
func cacheDefaults() (l1i, l1d, l2 mem.CacheConfig) {
	l1i = mem.CacheConfig{Name: "l1i", SizeBytes: 32 << 10, LineBytes: 32, Ways: 4, HitCycles: 1}
	l1d = mem.CacheConfig{Name: "l1d", SizeBytes: 32 << 10, LineBytes: 32, Ways: 4, HitCycles: 1}
	l2 = mem.CacheConfig{Name: "l2", SizeBytes: 512 << 10, LineBytes: 32, Ways: 8, HitCycles: 8}
	return l1i, l1d, l2
}

// PresetZynq models the physical board half of Table II: the Cortex-A9 in
// the Xilinx Zynq-7000 (one core enabled), Linux 3.14.
func PresetZynq() Config {
	l1i, l1d, l2 := cacheDefaults()
	return Config{
		Name:          "zynq",
		Platform:      "Zynq 7000",
		KernelVersion: "3.14",
		Mem: mem.SystemConfig{
			L1I: l1i, L1D: l1d, L2: l2,
			TLBEntries: 64,
			VPNLimit:   PTEntries,
		},
		TimerPeriod:       20_000,
		NumTasks:          32,
		TaskStructLen:     64,
		BTBEntries:        512,
		PredictorEntries:  1024,
		SecondCorePresent: true,
		CheckpointEvery:   DefaultCheckpointEvery,
		MaxCheckpoints:    DefaultMaxCheckpoints,
	}
}

// PresetModel models the simulator half of Table II: the gem5 VExpress
// Cortex-A9 lookalike, Linux 3.13. It differs from the board in TLB
// organisation and predictor sizing — the deliberate model/hardware gap
// whose effect Section IV-D quantifies with performance counters.
func PresetModel() Config {
	l1i, l1d, l2 := cacheDefaults()
	return Config{
		Name:          "gem5",
		Platform:      "VExpress",
		KernelVersion: "3.13",
		Mem: mem.SystemConfig{
			L1I: l1i, L1D: l1d, L2: l2,
			TLBEntries: 32,
			VPNLimit:   PTEntries,
		},
		TimerPeriod:       20_000,
		NumTasks:          30, // kernel 3.13 runs a slightly different task set
		TaskStructLen:     64,
		BTBEntries:        256,
		PredictorEntries:  512,
		SecondCorePresent: false,
		CheckpointEvery:   DefaultCheckpointEvery,
		MaxCheckpoints:    DefaultMaxCheckpoints,
	}
}

// kernelParams derives the kernel build parameters for this platform.
func (c Config) kernelParams() kernel.Params {
	return kernel.Params{
		TextBase:      KernelTextBase,
		DataBase:      KernelDataBase,
		PageTable:     PageTableBase,
		PTEntries:     PTEntries,
		SVCStackTop:   SVCStackTop,
		IRQStackTop:   IRQStackTop,
		AppEntry:      UserTextBase,
		UserVPNStart:  userVPNStart,
		UserVPNEnd:    userVPNEnd,
		KTextVPNEnd:   kTextVPNEnd,
		KDataVPNEnd:   kDataVPNEnd,
		MMIOVPNStart:  mmioVPNStart,
		MMIOVPNEnd:    mmioVPNEnd,
		UARTBase:      UARTBase,
		TimerBase:     TimerBase,
		SysCtlBase:    SysCtlBase,
		TimerPeriod:   c.TimerPeriod,
		NumTasks:      c.NumTasks,
		TaskStructLen: c.TaskStructLen,
	}
}
