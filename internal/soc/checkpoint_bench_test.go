package soc

import (
	"testing"

	"armsefi/internal/asm"
)

func benchLadderMachine(b *testing.B) (*Machine, *Ladder) {
	b.Helper()
	m, err := NewMachine(PresetZynq(), ModelAtomic)
	if err != nil {
		b.Fatal(err)
	}
	p, err := asm.Assemble("app.s", ladderAppSource, UserAsmConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := m.LoadApp(p); err != nil {
		b.Fatal(err)
	}
	if err := m.Boot(5_000_000); err != nil {
		b.Fatal(err)
	}
	snap := m.SaveSnapshot()
	l := m.CaptureLadder(snap, false, 2_000, 0, ladderBudget)
	if !l.Final.CleanExit() {
		b.Fatalf("capture run not clean: %v", l.Final.Outcome)
	}
	return m, l
}

// BenchmarkRungConvergence measures the cost an injection run pays at
// every rung crossing: the staged golden-convergence check (micro
// fingerprint, then DRAM). The incremental arm is the production path —
// dirty-page tracking is active after a checkpoint restore, so only
// pages written since the restore are rehashed; the full arm is the
// exact whole-image comparison the debug cross-check falls back to.
func BenchmarkRungConvergence(b *testing.B) {
	m, l := benchLadderMachine(b)
	r := l.rungs[len(l.rungs)/2]
	m.RestoreCheckpoint(l, r) // activates dirty-page tracking against l.base
	if !m.DRAM.Tracking(l.base.dram) {
		b.Fatal("tracking not active after checkpoint restore")
	}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if m.microFPSum() != r.microFP || !m.dramConverged(l, r) {
				b.Fatal("restored rung must converge to itself")
			}
		}
	})
	b.Run("full-image", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if m.microFPSum() != r.microFP || !m.DRAM.EqualBasePages(l.base.dram, r.img) {
				b.Fatal("restored rung must converge to itself")
			}
		}
	})
}
