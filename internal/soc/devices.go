// Package soc assembles the full simulated platform: memory map, MMIO
// devices, platform presets (the Zynq-like board and the gem5-like model),
// the kernel image, and the Machine that boots, runs, snapshots, and
// restores complete system states.
package soc

import "armsefi/internal/mem"

// UART is the console device: bytes written to its TX register are the
// program output compared against the golden reference.
type UART struct {
	out []byte
}

var _ mem.Device = (*UART)(nil)

// UART register offsets.
const (
	uartTX     = 0x0
	uartStatus = 0x4
)

// Name implements mem.Device.
func (u *UART) Name() string { return "uart" }

// Read32 implements mem.Device: the status register always reports ready.
func (u *UART) Read32(off uint32) uint32 {
	if off == uartStatus {
		return 1
	}
	return 0
}

// Write32 implements mem.Device: a TX write emits the low byte.
func (u *UART) Write32(off, val uint32) {
	if off == uartTX {
		u.out = append(u.out, byte(val))
	}
}

// Output returns a copy of everything transmitted so far.
func (u *UART) Output() []byte { return append([]byte(nil), u.out...) }

// Len returns the number of bytes transmitted.
func (u *UART) Len() int { return len(u.out) }

// Tail returns a copy of the bytes transmitted at or after position from.
// Result assembly uses it so each run copies only its own output, not the
// whole backlog accumulated across snapshot restores.
func (u *UART) Tail(from int) []byte {
	if from >= len(u.out) {
		return []byte{}
	}
	return append([]byte(nil), u.out[from:]...)
}

// Reset clears the transmit log.
func (u *UART) Reset() { u.out = u.out[:0] }

// Restore replaces the transmit log with b, reusing the existing buffer
// when it has capacity (snapshot restores happen once per injection run,
// so this path must not reallocate the backlog every time).
func (u *UART) Restore(b []byte) {
	if cap(u.out) < len(b) {
		u.out = make([]byte, len(b))
	} else {
		u.out = u.out[:len(b)]
	}
	copy(u.out, b)
}

// Timer is the periodic interrupt source driving the kernel scheduler
// tick. Writing a non-zero period to register 0 arms it; writing register 4
// acknowledges a pending interrupt.
type Timer struct {
	period  uint32
	count   uint64
	pending bool
}

var _ mem.Device = (*Timer)(nil)

// Timer register offsets.
const (
	timerPeriod = 0x0
	timerAck    = 0x4
	timerCount  = 0x8
)

// Name implements mem.Device.
func (t *Timer) Name() string { return "timer" }

// Read32 implements mem.Device.
func (t *Timer) Read32(off uint32) uint32 {
	switch off {
	case timerPeriod:
		return t.period
	case timerCount:
		return uint32(t.count)
	default:
		return 0
	}
}

// Write32 implements mem.Device.
func (t *Timer) Write32(off, val uint32) {
	switch off {
	case timerPeriod:
		t.period = val
		t.count = 0
	case timerAck:
		t.pending = false
	}
}

// Tick advances the timer by the given number of cycles.
func (t *Timer) Tick(cycles int) {
	if t.period == 0 {
		return
	}
	t.count += uint64(cycles)
	for t.count >= uint64(t.period) {
		t.count -= uint64(t.period)
		t.pending = true
	}
}

// Pending implements cpu.IRQLine.
func (t *Timer) Pending() bool { return t.pending }

// Reset disarms the timer.
func (t *Timer) Reset() { *t = Timer{} }

// timerState snapshots a Timer.
type timerState struct{ t Timer }

func (t *Timer) save() timerState     { return timerState{t: *t} }
func (t *Timer) restore(s timerState) { *t = s.t }

// SysCtl is the system-control device: power-off port (register 0), kernel
// heartbeat (register 4), and application-alive counter (register 8). The
// host-side watchdog of the beam setup is modeled by the Machine observing
// these registers.
type SysCtl struct {
	halted   bool
	exitCode uint32
	beats    uint64
	appAlive uint64
}

var _ mem.Device = (*SysCtl)(nil)

// SysCtl register offsets.
const (
	sysPowerOff  = 0x0
	sysHeartbeat = 0x4
	sysAppAlive  = 0x8
)

// Name implements mem.Device.
func (s *SysCtl) Name() string { return "sysctl" }

// Read32 implements mem.Device.
func (s *SysCtl) Read32(off uint32) uint32 {
	switch off {
	case sysHeartbeat:
		return uint32(s.beats)
	case sysAppAlive:
		return uint32(s.appAlive)
	default:
		return 0
	}
}

// Write32 implements mem.Device.
func (s *SysCtl) Write32(off, val uint32) {
	switch off {
	case sysPowerOff:
		s.halted = true
		s.exitCode = val
	case sysHeartbeat:
		s.beats++
	case sysAppAlive:
		s.appAlive++
	}
}

// Halted reports whether the kernel has written the power-off port.
func (s *SysCtl) Halted() bool { return s.halted }

// ExitCode returns the value written to the power-off port.
func (s *SysCtl) ExitCode() uint32 { return s.exitCode }

// Beats returns the number of kernel heartbeats observed.
func (s *SysCtl) Beats() uint64 { return s.beats }

// AppAlive returns the number of application alive() calls observed.
func (s *SysCtl) AppAlive() uint64 { return s.appAlive }

// ClearHalt re-arms the device for another run without clearing counters.
func (s *SysCtl) ClearHalt() {
	s.halted = false
	s.exitCode = 0
}

// Reset clears all state.
func (s *SysCtl) Reset() { *s = SysCtl{} }

type sysCtlState struct{ s SysCtl }

func (s *SysCtl) save() sysCtlState      { return sysCtlState{s: *s} }
func (s *SysCtl) restore(st sysCtlState) { *s = st.s }
