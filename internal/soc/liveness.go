// Instrumented golden replay for the campaign pre-filter: one fault-free
// run with liveness recorders attached to every cache and TLB, producing
// the immutable LivenessLog the ACE-style analysis queries to classify
// planned injections without simulating them.
//
// The replay loop mirrors RunWithInjection cycle-for-cycle and stamps
// every recorded event with the top-of-loop cycle value — the exact
// instants at which the injection loops fire inject(). An injection at
// cycle F therefore lands before every event stamped >= F and after
// every event stamped < F, which is what makes the log's verdicts exact
// rather than approximate.

package soc

import "armsefi/internal/mem"

// LivenessLog is the queryable result of one instrumented golden replay:
// per-structure liveness recordings plus the replay's Result (which must
// equal the golden Result — the harness validates this).
type LivenessLog struct {
	// Warm records which restore mode the replay ran under; it must match
	// the campaign's, like the ladder's.
	Warm bool
	// Final is the replay's complete Result.
	Final Result

	L1I, L1D, L2 *mem.CacheLiveness
	ITLB, DTLB   *mem.TLBLiveness

	// now is the shared event-stamp clock the recorders read; it advances
	// only during the replay and is dead weight afterwards.
	now uint64
}

// ReplayLiveness performs the instrumented golden replay: restore the
// post-boot snapshot (warm or cold exactly as injection runs will), run
// fault-free to completion with liveness recording attached, and return
// the log. The machine is left at the end state of the run.
func (m *Machine) ReplayLiveness(base *Snapshot, warm bool, budget uint64) *LivenessLog {
	m.RestoreSnapshot(base, warm)
	log := &LivenessLog{Warm: warm}
	log.L1I = m.Mem.L1I.AttachLiveness(&log.now)
	log.L1D = m.Mem.L1D.AttachLiveness(&log.now)
	log.L2 = m.Mem.L2.AttachLiveness(&log.now)
	log.ITLB = m.Mem.ITLB.AttachLiveness(&log.now)
	log.DTLB = m.Mem.DTLB.AttachLiveness(&log.now)
	defer func() {
		m.Mem.L1I.DetachLiveness()
		m.Mem.L1D.DetachLiveness()
		m.Mem.L2.DetachLiveness()
		m.Mem.ITLB.DetachLiveness()
		m.Mem.DTLB.DetachLiveness()
	}()

	uartBase := len(base.uart)
	beatsBase := base.sysctl.s.beats
	aliveBase := base.sysctl.s.appAlive
	lastBeats := m.SysCtl.Beats()
	lastBeatAbs := uint64(0)

	res := Result{}
	for {
		if m.SysCtl.Halted() {
			res.Outcome = OutcomePowerOff
			res.ExitCode = m.SysCtl.ExitCode()
			break
		}
		if m.core.Fatal() {
			res.Outcome = OutcomeFatal
			break
		}
		abs := m.core.Cycles()
		if abs >= budget {
			res.Outcome = OutcomeTimeout
			break
		}
		// Everything the coming step does is stamped with the cycle at
		// which an injection targeting it would have fired.
		log.now = abs
		d := m.core.StepCycle()
		m.Timer.Tick(d)
		if b := m.SysCtl.Beats(); b != lastBeats {
			lastBeats = b
			lastBeatAbs = m.core.Cycles()
		}
	}
	res.Cycles = m.core.Cycles()
	res.Instructions = m.core.Instructions()
	res.Output = m.UART.Tail(uartBase)
	res.Beats = m.SysCtl.Beats() - beatsBase
	res.AppAlive = m.SysCtl.AppAlive() - aliveBase
	res.LastBeatCycle = lastBeatAbs
	log.Final = res
	return log
}
