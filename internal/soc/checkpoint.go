// Checkpoint ladder: cycle-stamped mid-run machine checkpoints captured
// during one instrumented golden replay, used by the campaign engines to
// (a) fast-forward injection runs past the fault-free prefix by restoring
// the nearest rung at or below the injection cycle instead of replaying
// from the post-boot snapshot, and (b) stop a faulty run early when its
// state fingerprint matches the golden ladder's at a rung: from that
// point execution is deterministic and identical to the golden run, so
// the outcome is the golden Result — the optimisation that turns the
// dominant Masked class from full-runtime into prefix-runtime, as ARMORY
// and gem5-checkpoint (CHAOS-style) injectors do.
//
// Restores are bit-identical to full replay on the live-state surface:
// counters (cycle, instruction, sequence numbers) come back verbatim, so
// every absolute cycle stamp inside the pipeline, timer, and LRU arrays
// lines up with the golden timeline, and a fingerprint taken on a
// restored-and-resumed machine equals one taken on a machine that
// replayed every cycle.

package soc

import (
	"fmt"
	"sort"
	"sync/atomic"

	"armsefi/internal/cpu"
	"armsefi/internal/mem"
)

// LadderDebugCompare, when set, makes every incremental dirty-page DRAM
// convergence check also run the exact full-image base+delta comparison
// and panic on disagreement. It exists to cross-check the fast path (a
// disagreement means either a dirty-tracking invariant was broken or a
// page-fingerprint collision occurred) and costs a full DRAM memcmp per
// rung crossing, so it stays off outside tests and debugging sessions.
var LadderDebugCompare atomic.Bool

// Checkpoint is one ladder rung: the complete machine state at a cycle
// boundary of the golden run, with DRAM stored as an immutable
// copy-on-write page image against the post-boot snapshot (sharable
// across every worker of a pool), plus the state fingerprint used for
// the golden-convergence early exit.
type Checkpoint struct {
	// Cycle is the core cycle counter at capture (run-relative ==
	// absolute: golden runs start from LoadArch at cycle zero).
	Cycle uint64
	// Fingerprint is the 64-bit live-state hash at this rung.
	Fingerprint uint64

	// microFP is the non-DRAM prefix of Fingerprint (core micro-state,
	// caches, TLBs, devices). The early-exit check compares it first: it
	// hashes kilobytes instead of the whole DRAM image, and a diverged run
	// almost always differs here, making the per-crossing cost tiny.
	microFP uint64

	// lastBeatAbs is the capture run's last-heartbeat cycle at this rung;
	// it lives outside machine state (the run loop tracks it), so the
	// early-exit comparison checks it explicitly.
	lastBeatAbs uint64

	// pageFP holds the golden DRAM's per-page fingerprints at this rung and
	// diffPages the bitmap of pages where it differs from the base image
	// (both precomputed at capture). The early-exit check uses them to
	// compare only the pages dirtied since the last restore instead of
	// memcmp-ing the full image at every rung crossing.
	pageFP    []uint64
	diffPages []uint64

	img   *mem.PageImage
	micro *cpu.MicroState
	l1i   *mem.CacheState
	l1d   *mem.CacheState
	l2    *mem.CacheState
	itlb  *mem.TLBState
	dtlb  *mem.TLBState
	timer timerState
	sysc  sysCtlState
	uart  []byte
}

// Ladder is the checkpoint ladder of one golden run: rung 0 is the
// post-restore state at cycle zero, subsequent rungs are spaced
// EffectiveEvery cycles apart (first cycle boundary actually reached on
// the atomic model, which can skip boundaries), and end is the machine
// state the golden run left behind. Immutable after capture; safe to
// restore concurrently into sibling machines.
type Ladder struct {
	// Final is the complete golden Result of the capture run; the early
	// exit returns it verbatim.
	Final Result

	base  *Snapshot
	warm  bool
	every uint64
	rungs []*Checkpoint
	end   *Checkpoint
}

// LadderStats reports what the ladder did for one injection run.
type LadderStats struct {
	// FastForwarded is the golden-prefix cycle count skipped by the rung
	// restore (zero when the run started from rung 0).
	FastForwarded uint64
	// EarlyExit reports that the run was cut short by golden convergence.
	EarlyExit bool
	// TailSaved is the cycle count not executed thanks to the early exit
	// (golden total minus the convergence cycle).
	TailSaved uint64
	// DivergedAt is the cycle of the first rung crossing whose fingerprint
	// did NOT match golden — the cheapest upper bound on when the fault's
	// architectural effect was still visible. Zero when every crossing
	// matched (or none was compared).
	DivergedAt uint64
	// ConvergedAt is the cycle of the rung where the early exit fired
	// (zero when the run never converged back onto the golden ladder).
	ConvergedAt uint64
}

// Warm reports which restore mode the ladder was captured under.
func (l *Ladder) Warm() bool { return l.warm }

// Rungs returns the number of mid-run rungs (including rung 0).
func (l *Ladder) Rungs() int { return len(l.rungs) }

// EffectiveEvery returns the rung spacing actually used.
func (l *Ladder) EffectiveEvery() uint64 { return l.every }

// MemoryBytes estimates the ladder's retained memory: owned DRAM page
// payloads, cache and TLB copies, UART backlogs, and fixed per-rung
// bookkeeping. Page payloads interned from an earlier rung are counted
// once, by the owning rung — see SharedBytes for the saving.
func (l *Ladder) MemoryBytes() int {
	total := 0
	for _, c := range append(append([]*Checkpoint(nil), l.rungs...), l.end) {
		if c == nil {
			continue
		}
		total += c.img.Bytes() + len(c.uart) + 1024
		for _, cs := range []*mem.CacheState{c.l1i, c.l1d, c.l2} {
			total += cs.MemoryBytes()
		}
		for _, ts := range []*mem.TLBState{c.itlb, c.dtlb} {
			total += ts.MemoryBytes()
		}
	}
	return total
}

// SharedBytes reports the DRAM payload bytes the ladder's rungs share
// with earlier rungs through copy-on-write interning instead of copying —
// memory a delta-per-rung encoding would have duplicated. Additionally,
// because every rung image is immutable, all workers of a pool restore
// from the same ladder with no per-worker rung copies at all; the
// armsefi_ladder_shared_bytes metric surfaces this figure.
func (l *Ladder) SharedBytes() int {
	total := 0
	for _, c := range append(append([]*Checkpoint(nil), l.rungs...), l.end) {
		if c != nil {
			total += c.img.SharedBytes()
		}
	}
	return total
}

// RungCycleFor returns the cycle of the highest rung at or below cycle —
// the rung RunLadderInjection would restore for an injection at that
// cycle. The campaign engines use it to batch cycle-sorted injections
// that share a restore point.
func (l *Ladder) RungCycleFor(cycle uint64) uint64 { return l.rungFor(cycle).Cycle }

// rungFor returns the highest rung at or below cycle; rung 0 sits at
// cycle zero, so the result is always defined.
func (l *Ladder) rungFor(cycle uint64) *Checkpoint {
	i := sort.Search(len(l.rungs), func(i int) bool { return l.rungs[i].Cycle > cycle }) - 1
	return l.rungs[i]
}

// microFingerprint folds the machine's non-DRAM live state into h: core
// micro-state, cache and TLB live content, and device state. Only
// provably dead state (content of invalid lines, free registers, expired
// deadlines — see the HashLive/HashMicro contracts) is excluded.
func (m *Machine) microFingerprint(h *mem.Hasher) {
	m.core.HashMicro(h)
	m.Mem.L1I.HashLive(h)
	m.Mem.L1D.HashLive(h)
	m.Mem.L2.HashLive(h)
	m.Mem.ITLB.HashLive(h)
	m.Mem.DTLB.HashLive(h)
	h.Word32(m.Timer.period)
	h.Word(m.Timer.count)
	h.Bool(m.Timer.pending)
	h.Bool(m.SysCtl.halted)
	h.Word32(m.SysCtl.exitCode)
	h.Word(m.SysCtl.beats)
	h.Word(m.SysCtl.appAlive)
	h.Bytes(m.UART.out)
}

// fingerprint folds the machine's complete live state into h: the
// non-DRAM micro fingerprint followed by the DRAM image as a fold of its
// per-page fingerprints (so capture, which needs the page fingerprints
// anyway, computes both stages from one pass over memory). Everything
// that can influence future execution or the run Result is covered, so a
// fingerprint match implies the remaining execution is identical to the
// golden run's.
func (m *Machine) fingerprint(h *mem.Hasher) {
	m.microFingerprint(h)
	foldPageFP(h, m.DRAM.HashPages(nil))
}

// foldPageFP mixes a per-page fingerprint set into h: the DRAM stage of
// the full fingerprint. captureCheckpoint must fold the identical
// sequence.
func foldPageFP(h *mem.Hasher, pageFP []uint64) {
	for _, fp := range pageFP {
		h.Word(fp)
	}
}

// Fingerprint returns the machine's current live-state fingerprint
// (test and diagnostic surface).
func (m *Machine) Fingerprint() uint64 {
	h := mem.NewHasher()
	m.fingerprint(h)
	return h.Sum()
}

// microFPSum returns just the non-DRAM fingerprint stage.
func (m *Machine) microFPSum() uint64 {
	h := mem.NewHasher()
	m.microFingerprint(h)
	return h.Sum()
}

// captureCheckpoint snapshots the full machine state mid-run. basePF is
// the base image's per-page fingerprints, computed once per ladder; the
// rung's own page fingerprints are diffed against it to precompute the
// exact differs-from-base page bitmap the early-exit check consumes.
// prev is the previously captured rung (nil for rung 0): page payloads
// unchanged since it are interned — byte-verified — instead of copied.
func (m *Machine) captureCheckpoint(base *Snapshot, basePF []uint64, lastBeatAbs uint64, prev *Checkpoint) *Checkpoint {
	// One hasher pass yields both stages: microFP is the running sum
	// before the DRAM page fingerprints are folded in, Fingerprint after.
	// With dirty-page tracking active (CaptureLadder arms it), only pages
	// the replay has written are re-hashed and re-diffed; unmarked pages
	// are byte-identical to the base image, exactly.
	h := mem.NewHasher()
	m.microFingerprint(h)
	micro := h.Sum()
	var pageFP []uint64
	if m.DRAM.Tracking(base.dram) {
		pageFP = m.DRAM.HashPagesDirty(basePF)
	} else {
		pageFP = m.DRAM.HashPages(make([]uint64, 0, len(basePF)))
	}
	foldPageFP(h, pageFP)
	diffPages := mem.DiffPageBitmap(basePF, pageFP)
	var prevImg *mem.PageImage
	if prev != nil {
		prevImg = prev.img
	}
	return &Checkpoint{
		Cycle:       m.core.Cycles(),
		Fingerprint: h.Sum(),
		microFP:     micro,
		lastBeatAbs: lastBeatAbs,
		pageFP:      pageFP,
		diffPages:   diffPages,
		img:         m.DRAM.BuildPageImage(base.dram, pageFP, diffPages, prevImg),
		micro:       m.core.SaveMicro(),
		l1i:         m.Mem.L1I.SaveState(),
		l1d:         m.Mem.L1D.SaveState(),
		l2:          m.Mem.L2.SaveState(),
		itlb:        m.Mem.ITLB.SaveState(),
		dtlb:        m.Mem.DTLB.SaveState(),
		timer:       m.Timer.save(),
		sysc:        m.SysCtl.save(),
		uart:        m.UART.Output(),
	}
}

// RestoreCheckpoint brings the machine to the exact state of a ladder
// rung. The core micro-state is loaded first (it sets the TTBR, which
// may invalidate TLBs on change) and the TLB content after.
func (m *Machine) RestoreCheckpoint(l *Ladder, c *Checkpoint) {
	m.DRAM.RestorePages(l.base.dram, c.img)
	m.core.LoadMicro(c.micro)
	m.Mem.L1I.RestoreState(c.l1i)
	m.Mem.L1D.RestoreState(c.l1d)
	m.Mem.L2.RestoreState(c.l2)
	m.Mem.ITLB.RestoreState(c.itlb)
	m.Mem.DTLB.RestoreState(c.dtlb)
	m.Timer.restore(c.timer)
	m.SysCtl.restore(c.sysc)
	m.UART.Restore(c.uart)
}

// CaptureLadder performs the instrumented golden replay: restore the
// post-boot snapshot (warm or cold exactly as injection runs will), run
// fault-free to completion, and capture a rung at cycle zero, at every
// rung boundary reached, and at the end. max bounds the number of
// mid-run rungs (rung 0 and the end state are always kept). The capture
// loop mirrors RunWithInjection cycle-for-cycle, so Final is the same
// Result a plain golden run produces.
func (m *Machine) CaptureLadder(base *Snapshot, warm bool, every uint64, max int, budget uint64) *Ladder {
	if every == 0 {
		every = DefaultCheckpointEvery
	}
	l := &Ladder{base: base, warm: warm, every: every}
	basePF := mem.HashPages(base.dram, nil)
	m.RestoreSnapshot(base, warm)
	// Arm dirty-page tracking for the replay: captures then hash and diff
	// only the pages the run has written (an exact, byte-level invariant —
	// unmarked pages equal the base image RestoreSnapshot just loaded).
	// RestoreDelta with an empty delta is the canonical way to (re)base
	// the tracker; injection runs keep it armed via RestoreCheckpoint.
	m.DRAM.RestoreDelta(base.dram, &mem.Delta{})

	uartBase := len(base.uart)
	beatsBase := base.sysctl.s.beats
	aliveBase := base.sysctl.s.appAlive
	lastBeats := m.SysCtl.Beats()
	lastBeatAbs := uint64(0)

	l.rungs = append(l.rungs, m.captureCheckpoint(base, basePF, lastBeatAbs, nil))
	nextRung := every

	res := Result{}
	for {
		if m.SysCtl.Halted() {
			res.Outcome = OutcomePowerOff
			res.ExitCode = m.SysCtl.ExitCode()
			break
		}
		if m.core.Fatal() {
			res.Outcome = OutcomeFatal
			break
		}
		abs := m.core.Cycles()
		if abs >= budget {
			res.Outcome = OutcomeTimeout
			break
		}
		if abs >= nextRung && (max <= 0 || len(l.rungs) <= max) {
			// The atomic model can step several cycles at once and skip a
			// boundary; the rung lands on the first boundary actually
			// reached, and faulty runs compare only on exact hits.
			l.rungs = append(l.rungs, m.captureCheckpoint(base, basePF, lastBeatAbs, l.rungs[len(l.rungs)-1]))
			for nextRung <= abs {
				nextRung += every
			}
		}
		d := m.core.StepCycle()
		m.Timer.Tick(d)
		if b := m.SysCtl.Beats(); b != lastBeats {
			lastBeats = b
			lastBeatAbs = m.core.Cycles()
		}
	}
	res.Cycles = m.core.Cycles()
	res.Instructions = m.core.Instructions()
	res.Output = m.UART.Tail(uartBase)
	res.Beats = m.SysCtl.Beats() - beatsBase
	res.AppAlive = m.SysCtl.AppAlive() - aliveBase
	res.LastBeatCycle = lastBeatAbs
	l.Final = res
	l.end = m.captureCheckpoint(base, basePF, lastBeatAbs, l.rungs[len(l.rungs)-1])
	return l
}

// dramConverged reports whether the machine's DRAM matches rung r of l.
// When dirty-page tracking is active against the ladder's base (always
// the case after RestoreCheckpoint), only the pages written since the
// last restore are compared — via the rung's precomputed per-page golden
// fingerprints — instead of memcmp-ing the full image; the exact
// full-image comparison remains as the fallback and as the
// LadderDebugCompare cross-check.
func (m *Machine) dramConverged(l *Ladder, r *Checkpoint) bool {
	if !m.DRAM.Tracking(l.base.dram) {
		return m.DRAM.EqualBasePages(l.base.dram, r.img)
	}
	inc := m.DRAM.ConvergedPages(r.diffPages, r.pageFP)
	if LadderDebugCompare.Load() {
		full := m.DRAM.EqualBasePages(l.base.dram, r.img)
		if inc != full {
			panic(fmt.Sprintf(
				"soc: incremental DRAM convergence (%v) disagrees with full comparison (%v) at rung cycle %d",
				inc, full, r.Cycle))
		}
	}
	return inc
}

// RunLadderInjection runs one injection experiment through the ladder:
// restore the nearest rung at or below injectAt, run with the injection,
// and after the fault compare fingerprints at every rung crossing — on a
// match the rest of the run is deterministic and identical to golden, so
// the golden Final is returned immediately. The Result is bit-identical
// to RestoreSnapshot + RunWithInjection with the same arguments.
func (m *Machine) RunLadderInjection(l *Ladder, watchdog, injectAt uint64, inject func()) (Result, LadderStats) {
	rung := l.rungFor(injectAt)
	m.RestoreCheckpoint(l, rung)
	stats := LadderStats{FastForwarded: rung.Cycle}

	uartBase := len(l.base.uart)
	beatsBase := l.base.sysctl.s.beats
	aliveBase := l.base.sysctl.s.appAlive
	lastBeats := m.SysCtl.Beats()
	lastBeatAbs := rung.lastBeatAbs
	injected := false
	next := sort.Search(len(l.rungs), func(i int) bool { return l.rungs[i].Cycle > injectAt })

	res := Result{}
	for {
		if m.SysCtl.Halted() {
			res.Outcome = OutcomePowerOff
			res.ExitCode = m.SysCtl.ExitCode()
			break
		}
		if m.core.Fatal() {
			res.Outcome = OutcomeFatal
			break
		}
		abs := m.core.Cycles()
		if abs >= watchdog {
			res.Outcome = OutcomeTimeout
			break
		}
		if !injected && abs >= injectAt {
			inject()
			injected = true
		}
		if injected && next < len(l.rungs) {
			for next < len(l.rungs) && l.rungs[next].Cycle < abs {
				next++ // diverged timing skipped a boundary; no comparison
			}
			if next < len(l.rungs) && l.rungs[next].Cycle == abs {
				r := l.rungs[next]
				next++
				// Staged convergence check: the cheap non-DRAM fingerprint
				// first (a diverged run almost always differs there), then
				// the DRAM comparison — incremental over dirty pages when
				// tracking is active, exact base+delta memcmp otherwise.
				if lastBeatAbs == r.lastBeatAbs && m.microFPSum() == r.microFP &&
					m.dramConverged(l, r) {
					stats.EarlyExit = true
					stats.TailSaved = l.Final.Cycles - abs
					stats.ConvergedAt = abs
					return l.Final, stats
				}
				if stats.DivergedAt == 0 {
					stats.DivergedAt = abs
				}
			}
		}
		d := m.core.StepCycle()
		m.Timer.Tick(d)
		if b := m.SysCtl.Beats(); b != lastBeats {
			lastBeats = b
			lastBeatAbs = m.core.Cycles()
		}
	}
	if !injected {
		// The run ended before the injection time; apply it so component
		// state still carries it (mirrors RunWithInjection).
		inject()
	}
	res.Cycles = m.core.Cycles()
	res.Instructions = m.core.Instructions()
	res.Output = m.UART.Tail(uartBase)
	res.Beats = m.SysCtl.Beats() - beatsBase
	res.AppAlive = m.SysCtl.AppAlive() - aliveBase
	res.LastBeatCycle = lastBeatAbs
	return res, stats
}

// FastForwardGolden replaces a fault-free full run: it restores the
// machine to the exact end state of the golden capture run and returns
// the golden Result. The beam simulator uses it for the steady-state and
// reboot runs of its strike chains, whose live-board semantics allow no
// other reordering.
func (m *Machine) FastForwardGolden(l *Ladder) Result {
	m.RestoreCheckpoint(l, l.end)
	return l.Final
}
