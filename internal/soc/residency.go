package soc

import (
	"fmt"

	"armsefi/internal/mem"
)

// Owner classifies a physical address by the platform memory map — the
// observability the paper's Section IV-C highlights for microarchitectural
// injection (whether a fault struck kernel or user state).
type Owner uint8

// Address owners.
const (
	OwnerKernelText Owner = 1 + iota
	OwnerKernelData
	OwnerPageTable
	OwnerKernelStack
	OwnerUserText
	OwnerUserData
	OwnerUserStack
	OwnerMMIO
	OwnerUnknown
)

var ownerNames = map[Owner]string{
	OwnerKernelText:  "kernel-text",
	OwnerKernelData:  "kernel-data",
	OwnerPageTable:   "page-table",
	OwnerKernelStack: "kernel-stack",
	OwnerUserText:    "user-text",
	OwnerUserData:    "user-data",
	OwnerUserStack:   "user-stack",
	OwnerMMIO:        "mmio",
	OwnerUnknown:     "unknown",
}

// String returns the owner name.
func (o Owner) String() string {
	if s, ok := ownerNames[o]; ok {
		return s
	}
	return fmt.Sprintf("owner(%d)", uint8(o))
}

// KernelOwned reports whether the region belongs to the operating system
// (the lines whose corruption the paper links to System Crashes).
func (o Owner) KernelOwned() bool {
	switch o {
	case OwnerKernelText, OwnerKernelData, OwnerPageTable, OwnerKernelStack:
		return true
	default:
		return false
	}
}

// OwnerOf classifies a physical address against the platform memory map.
func OwnerOf(paddr uint32) Owner {
	switch {
	case paddr < KernelDataBase:
		return OwnerKernelText
	case paddr < PageTableBase:
		return OwnerKernelData
	case paddr < PageTableBase+4*PTEntries:
		return OwnerPageTable
	case paddr < IRQStackTop:
		return OwnerKernelStack
	case paddr >= MMIOBase:
		return OwnerMMIO
	case paddr >= UserStackTop-0x40000 && paddr < UserStackTop:
		return OwnerUserStack
	case paddr >= UserDataBase && paddr < UserStackTop-0x40000:
		return OwnerUserData
	case paddr >= UserTextBase && paddr < UserDataBase:
		return OwnerUserText
	default:
		return OwnerUnknown
	}
}

// Residency profiles a cache's valid lines by owner.
type Residency struct {
	Lines map[Owner]int
	Dirty map[Owner]int
	Total int
}

// ProfileCache builds the residency profile of one cache.
func ProfileCache(c *mem.Cache) Residency {
	r := Residency{Lines: map[Owner]int{}, Dirty: map[Owner]int{}}
	c.VisitValidLines(func(addr uint32, dirty bool) {
		o := OwnerOf(addr)
		r.Lines[o]++
		if dirty {
			r.Dirty[o]++
		}
		r.Total++
	})
	return r
}

// KernelLines counts kernel-owned resident lines.
func (r Residency) KernelLines() int {
	n := 0
	for o, c := range r.Lines {
		if o.KernelOwned() {
			n += c
		}
	}
	return n
}
