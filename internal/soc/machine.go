package soc

import (
	"fmt"

	"armsefi/internal/asm"
	"armsefi/internal/cpu"
	"armsefi/internal/isa"
	"armsefi/internal/kernel"
	"armsefi/internal/mem"
)

// archCore is the contract both CPU models satisfy: the generic Core
// interface plus architectural snapshot support and mid-run
// micro-architectural checkpointing for the checkpoint ladder.
type archCore interface {
	cpu.Core
	SaveArch() cpu.ArchState
	LoadArch(cpu.ArchState)
	SaveMicro() *cpu.MicroState
	LoadMicro(*cpu.MicroState)
	HashMicro(*mem.Hasher)
}

// Outcome is the machine-level result of a run.
type Outcome uint8

// Run outcomes.
const (
	// OutcomePowerOff means the kernel wrote the power-off port: a clean
	// exit, an application kill, or a kernel panic, distinguished by the
	// exit code.
	OutcomePowerOff Outcome = 1 + iota
	// OutcomeFatal means the core reached an unrecoverable hardware state.
	OutcomeFatal
	// OutcomeTimeout means the cycle budget expired (a hang).
	OutcomeTimeout
)

// String returns a short outcome name.
func (o Outcome) String() string {
	switch o {
	case OutcomePowerOff:
		return "poweroff"
	case OutcomeFatal:
		return "fatal"
	case OutcomeTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Result summarises one run of the machine.
type Result struct {
	Outcome       Outcome
	ExitCode      uint32 // value written to the power-off port
	Cycles        uint64 // cycles consumed by this run
	Instructions  uint64
	Output        []byte // UART bytes emitted during this run
	Beats         uint64 // kernel heartbeats during this run
	AppAlive      uint64 // application alive() calls during this run
	LastBeatCycle uint64 // core cycle of the last kernel heartbeat
}

// CleanExit reports a normal exit(0).
func (r Result) CleanExit() bool { return r.Outcome == OutcomePowerOff && r.ExitCode == 0 }

// KernelPanic reports that the kernel detected a privileged-mode fault.
func (r Result) KernelPanic() bool {
	return r.Outcome == OutcomePowerOff && r.ExitCode == kernel.PanicCode
}

// AppKilled reports that the kernel killed the application on a user-mode
// exception, returning the vector that caused it.
func (r Result) AppKilled() (isa.Vector, bool) {
	if r.Outcome != OutcomePowerOff {
		return 0, false
	}
	if r.ExitCode >= kernel.ExitSignalBase && r.ExitCode < kernel.ExitSignalBase+isa.NumVectors {
		return isa.Vector(r.ExitCode - kernel.ExitSignalBase), true
	}
	return 0, false
}

// Machine is one complete simulated platform instance: CPU core, memory
// system, devices, and the kernel image.
type Machine struct {
	Cfg    Config
	Model  ModelKind
	DRAM   *mem.DRAM
	Bus    *mem.Bus
	Mem    *mem.System
	UART   *UART
	Timer  *Timer
	SysCtl *SysCtl
	Kernel *asm.Program

	core archCore
	app  *asm.Program
}

// NewMachine builds a platform from a preset with the chosen CPU model and
// loads the kernel image into DRAM.
func NewMachine(cfg Config, model ModelKind) (*Machine, error) {
	dram := mem.NewDRAM(DRAMBytes)
	bus := mem.NewBus(dram)
	m := &Machine{
		Cfg:    cfg,
		Model:  model,
		DRAM:   dram,
		Bus:    bus,
		UART:   &UART{},
		Timer:  &Timer{},
		SysCtl: &SysCtl{},
	}
	for _, d := range []struct {
		base uint32
		dev  mem.Device
	}{
		{UARTBase, m.UART},
		{TimerBase, m.Timer},
		{SysCtlBase, m.SysCtl},
	} {
		if err := bus.Map(d.base, 0x1000, d.dev); err != nil {
			return nil, fmt.Errorf("soc: %w", err)
		}
	}
	m.Mem = mem.NewSystem(cfg.Mem, bus)
	switch model {
	case ModelAtomic:
		m.core = cpu.NewAtomic(m.Mem, m.Timer)
	case ModelDetailed:
		m.core = cpu.NewDetailed(m.Mem, m.Timer, cpu.DetailedConfig{
			BTBEntries:       cfg.BTBEntries,
			PredictorEntries: cfg.PredictorEntries,
		})
	default:
		return nil, fmt.Errorf("soc: unknown CPU model %d", model)
	}
	k, err := kernel.Build(cfg.kernelParams())
	if err != nil {
		return nil, fmt.Errorf("soc: building kernel: %w", err)
	}
	m.Kernel = k
	if err := m.loadProgram(k); err != nil {
		return nil, err
	}
	return m, nil
}

// Core returns the CPU core.
func (m *Machine) Core() cpu.Core { return m.core }

// App returns the loaded application, if any.
func (m *Machine) App() *asm.Program { return m.app }

func (m *Machine) loadProgram(p *asm.Program) error {
	if err := m.DRAM.LoadImage(p.TextBase, p.Text); err != nil {
		return fmt.Errorf("soc: loading %s text: %w", p.Name, err)
	}
	if len(p.Data) > 0 {
		if err := m.DRAM.LoadImage(p.DataBase, p.Data); err != nil {
			return fmt.Errorf("soc: loading %s data: %w", p.Name, err)
		}
	}
	return nil
}

// LoadApp places a user program image in memory. The program must be
// assembled for the platform's user bases and its entry must be the fixed
// application entry point the kernel jumps to.
func (m *Machine) LoadApp(p *asm.Program) error {
	if p.TextBase != UserTextBase || p.DataBase != UserDataBase {
		return fmt.Errorf("soc: app %q assembled for %#x/%#x, platform wants %#x/%#x",
			p.Name, p.TextBase, p.DataBase, UserTextBase, UserDataBase)
	}
	if p.Entry != UserTextBase {
		return fmt.Errorf("soc: app %q entry %#x must be the text base %#x (_start first)",
			p.Name, p.Entry, UserTextBase)
	}
	if err := m.loadProgram(p); err != nil {
		return err
	}
	m.app = p
	return nil
}

// PokeBytes writes harness-provided bytes (workload inputs) directly into
// physical memory, as the experiment host loads inputs before a run.
func (m *Machine) PokeBytes(addr uint32, data []byte) error {
	return m.DRAM.LoadImage(addr, data)
}

// PeekBytes reads physical memory for harness-side verification.
func (m *Machine) PeekBytes(addr, n uint32) []byte { return m.DRAM.PeekBytes(addr, n) }

// Boot resets the core and runs the kernel until it drops to user mode at
// the application entry. It returns an error if boot does not converge
// within maxCycles.
func (m *Machine) Boot(maxCycles uint64) error {
	m.core.Reset()
	for m.core.Cycles() < maxCycles {
		if m.core.Mode() == isa.ModeUser && m.core.PC() == UserTextBase {
			return nil
		}
		if m.core.Fatal() {
			return fmt.Errorf("soc: core fatal during boot at pc=%#x", m.core.PC())
		}
		if m.SysCtl.Halted() {
			return fmt.Errorf("soc: kernel powered off during boot (code %#x)", m.SysCtl.ExitCode())
		}
		d := m.core.StepCycle()
		m.Timer.Tick(d)
	}
	return fmt.Errorf("soc: boot did not reach user mode in %d cycles", maxCycles)
}

// Run executes until power-off, a fatal core state, or the cycle budget
// expires. It may be called repeatedly; each call observes only its own
// UART output and heartbeat deltas.
func (m *Machine) Run(maxCycles uint64) Result {
	return m.RunWithInjection(maxCycles, 0, nil)
}

// RunWithInjection runs like Run but invokes inject once when the run has
// consumed injectAt cycles — the single-event upset of a fault-injection or
// beam experiment. A nil inject runs undisturbed.
func (m *Machine) RunWithInjection(maxCycles, injectAt uint64, inject func()) Result {
	startCycles := m.core.Cycles()
	startInstrs := m.core.Instructions()
	uartStart := m.UART.Len()
	beatsStart := m.SysCtl.Beats()
	aliveStart := m.SysCtl.AppAlive()
	lastBeats := m.SysCtl.Beats()
	lastBeatCycle := startCycles

	res := Result{}
	for {
		if m.SysCtl.Halted() {
			res.Outcome = OutcomePowerOff
			res.ExitCode = m.SysCtl.ExitCode()
			break
		}
		if m.core.Fatal() {
			res.Outcome = OutcomeFatal
			break
		}
		if m.core.Cycles()-startCycles >= maxCycles {
			res.Outcome = OutcomeTimeout
			break
		}
		if inject != nil && m.core.Cycles()-startCycles >= injectAt {
			inject()
			inject = nil
		}
		d := m.core.StepCycle()
		m.Timer.Tick(d)
		if b := m.SysCtl.Beats(); b != lastBeats {
			lastBeats = b
			lastBeatCycle = m.core.Cycles()
		}
	}
	if inject != nil {
		// The run ended before the injection time (e.g., a strike scheduled
		// in idle tail time); apply it so component state still carries it.
		inject()
	}
	res.Cycles = m.core.Cycles() - startCycles
	res.Instructions = m.core.Instructions() - startInstrs
	res.Output = m.UART.Tail(uartStart)
	res.Beats = m.SysCtl.Beats() - beatsStart
	res.AppAlive = m.SysCtl.AppAlive() - aliveStart
	res.LastBeatCycle = lastBeatCycle - startCycles
	return res
}

// Snapshot is a complete machine state: DRAM, architectural CPU state,
// cache and TLB content, and device state. It plays the role gem5
// checkpoints play in the paper's methodology.
type Snapshot struct {
	arch   cpu.ArchState
	dram   []byte
	l1i    *mem.CacheState
	l1d    *mem.CacheState
	l2     *mem.CacheState
	itlb   *mem.TLBState
	dtlb   *mem.TLBState
	timer  timerState
	sysctl sysCtlState
	uart   []byte
}

// SaveSnapshot captures the full machine state. The core must be at a
// quiescent point (e.g., right after Boot).
func (m *Machine) SaveSnapshot() *Snapshot {
	// Build a coherent DRAM image: overlay dirty lines (L2 first, then the
	// newer L1D) so a cold restore — which invalidates the caches — does
	// not lose write-back data such as the kernel's page table.
	dram := m.DRAM.PeekBytes(0, m.DRAM.Size())
	m.Mem.L2.FlushInto(dram)
	m.Mem.L1D.FlushInto(dram)
	return &Snapshot{
		arch:   m.core.SaveArch(),
		dram:   dram,
		l1i:    m.Mem.L1I.SaveState(),
		l1d:    m.Mem.L1D.SaveState(),
		l2:     m.Mem.L2.SaveState(),
		itlb:   m.Mem.ITLB.SaveState(),
		dtlb:   m.Mem.DTLB.SaveState(),
		timer:  m.Timer.save(),
		sysctl: m.SysCtl.save(),
		uart:   m.UART.Output(),
	}
}

// RestoreSnapshot brings the machine back to a saved state. With warm=true
// the cache and TLB content is restored too (a live board that kept
// running); with warm=false caches and TLBs come back invalidated, exactly
// as the paper describes GeFIN resetting the caches on every injection run.
func (m *Machine) RestoreSnapshot(s *Snapshot, warm bool) {
	if err := m.DRAM.LoadImage(0, s.dram); err != nil {
		panic(fmt.Sprintf("soc: snapshot DRAM restore: %v", err))
	}
	if warm {
		m.Mem.L1I.RestoreState(s.l1i)
		m.Mem.L1D.RestoreState(s.l1d)
		m.Mem.L2.RestoreState(s.l2)
		m.Mem.ITLB.RestoreState(s.itlb)
		m.Mem.DTLB.RestoreState(s.dtlb)
	} else {
		m.Mem.L1I.InvalidateAll()
		m.Mem.L1D.InvalidateAll()
		m.Mem.L2.InvalidateAll()
		m.Mem.ITLB.InvalidateAll()
		m.Mem.DTLB.InvalidateAll()
	}
	m.Timer.restore(s.timer)
	m.SysCtl.restore(s.sysctl)
	m.UART.Restore(s.uart)
	m.core.LoadArch(s.arch)
}

// RestartApp re-stages only the application's memory image and the CPU
// state from the snapshot, leaving kernel DRAM, caches, and TLBs exactly as
// the previous run left them. This is how the beam experiment loops
// executions on a live board without rebooting Linux.
func (m *Machine) RestartApp(s *Snapshot) {
	// Drop any cached user-region lines (the reload writes DRAM beneath
	// the caches); kernel lines keep their residency, which is the whole
	// point of the live-board restart path.
	span := m.DRAM.Size() - UserTextBase
	m.Mem.L1I.InvalidateRange(UserTextBase, span)
	m.Mem.L1D.InvalidateRange(UserTextBase, span)
	m.Mem.L2.InvalidateRange(UserTextBase, span)
	if err := m.DRAM.LoadImage(UserTextBase, s.dram[UserTextBase:]); err != nil {
		panic(fmt.Sprintf("soc: app image restore: %v", err))
	}
	m.Mem.ITLB.InvalidateAll()
	m.Mem.DTLB.InvalidateAll()
	m.SysCtl.ClearHalt()
	m.core.LoadArch(s.arch)
}
