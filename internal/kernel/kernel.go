// Package kernel provides the miniature privileged operating system that
// runs on the simulated CPU, standing in for the Linux 3.13/3.14 stack of
// the reproduced paper. It is real machine code assembled into the
// platform's memory: its vector table, syscall dispatcher, timer interrupt
// handler, scheduler tick, and page tables all live in simulated RAM and
// therefore occupy cache lines — which is precisely the mechanism behind
// the paper's System-Crash observations (kernel state resident in the
// unused cache space of small-footprint workloads).
//
// Services provided to user programs:
//
//	svc #0 with r7=1  exit(r0)            terminate with status r0 & 0x7F
//	svc #0 with r7=2  write(r0, r1)       copy r1 bytes at r0 to the UART
//	svc #0 with r7=3  alive()             bump the app-alive MMIO register
//
// Any user-mode exception kills the application with status 0x80+vector
// (mirroring a fatal signal); any kernel-mode exception writes the panic
// code to the power-off port (mirroring a kernel oops that locks the
// machine).
package kernel

import (
	"fmt"

	"armsefi/internal/asm"
)

// Params configures the kernel build for a platform.
type Params struct {
	TextBase      uint32 // kernel text load address (the vector table sits at its start)
	DataBase      uint32 // kernel data load address
	PageTable     uint32 // physical address of the single-level page table
	PTEntries     uint32 // number of page-table entries (VA space / 4 KB)
	SVCStackTop   uint32
	IRQStackTop   uint32
	AppEntry      uint32 // fixed user program entry point
	UserVPNStart  uint32 // first user-accessible page
	UserVPNEnd    uint32 // one past the last user-accessible page
	KTextVPNEnd   uint32 // kernel text pages [0, KTextVPNEnd) mapped read-only
	KDataVPNEnd   uint32 // kernel data/stack pages [KTextVPNEnd, KDataVPNEnd) mapped RW
	MMIOVPNStart  uint32
	MMIOVPNEnd    uint32
	UARTBase      uint32
	TimerBase     uint32
	SysCtlBase    uint32
	TimerPeriod   uint32 // scheduler tick period in cycles
	NumTasks      uint32 // size of the task table walked on every tick
	TaskStructLen uint32 // bytes per task struct (spreads tasks over cache lines)
}

// ExitSignalBase is added to the exception vector number when the kernel
// kills a user program, mirroring the 128+signal convention.
const ExitSignalBase = 0x80

// PanicCode is written to the power-off port on a kernel-mode fault.
const PanicCode = 0xDEAD

// Build assembles the kernel for the given parameters.
func Build(p Params) (*asm.Program, error) {
	cfg := asm.Config{TextBase: p.TextBase, DataBase: p.DataBase}
	return asm.Assemble("kernel.s", Source(p), cfg)
}

// MustBuild assembles the kernel and panics on error; kernel source is
// in-tree, trusted data.
func MustBuild(p Params) *asm.Program {
	prog, err := Build(p)
	if err != nil {
		panic(fmt.Sprintf("kernel: %v", err))
	}
	return prog
}

// Source returns the kernel assembly specialised with the platform
// parameters.
func Source(p Params) string {
	return fmt.Sprintf(kernelTemplate,
		p.PageTable, p.PTEntries,
		p.SVCStackTop, p.IRQStackTop,
		p.AppEntry,
		p.UserVPNStart, p.UserVPNEnd,
		p.KTextVPNEnd, p.KDataVPNEnd,
		p.MMIOVPNStart, p.MMIOVPNEnd,
		p.UARTBase, p.TimerBase, p.SysCtlBase,
		p.TimerPeriod,
		p.NumTasks, p.TaskStructLen,
		p.NumTasks*p.TaskStructLen,
	)
}

// CPSR constants used by the kernel: mode bits plus the IRQ-mask bit. They
// must agree with package isa (ModeUser=1, ModeSVC=2, ModeIRQ=3, IRQOff=bit
// 7); the template below spells them numerically because the assembler has
// no visibility into Go constants.
const kernelTemplate = `
; ---------------------------------------------------------------------------
; armsefi miniature kernel
; ---------------------------------------------------------------------------
.equ PAGETABLE,    %d
.equ PT_ENTRIES,   %d
.equ KSTACK_TOP,   %d
.equ ISTACK_TOP,   %d
.equ APP_ENTRY,    %d
.equ USER_VPN_LO,  %d
.equ USER_VPN_HI,  %d
.equ KTEXT_VPN_HI, %d
.equ KDATA_VPN_HI, %d
.equ MMIO_VPN_LO,  %d
.equ MMIO_VPN_HI,  %d
.equ UART_BASE,    %d
.equ TIMER_BASE,   %d
.equ SYSCTL_BASE,  %d
.equ TICK_PERIOD,  %d
.equ NUM_TASKS,    %d
.equ TASK_SIZE,    %d
.equ TASKS_BYTES,  %d

.equ MODE_USER,    1
.equ CPSR_USER,    1          ; user mode, IRQs enabled
.equ CPSR_IRQ_OFF, 0x83       ; IRQ mode, IRQs masked
.equ PTE_VALID,    1
.equ PTE_RW,       3          ; valid | writable
.equ PTE_USER_RW,  7          ; valid | writable | user

.text
; Exception vector table. The hardware jumps to base + 4*vector.
_start:
	b reset              ; 0x00 reset
	b vec_undef          ; 0x04 undefined instruction
	b vec_svc            ; 0x08 supervisor call
	b vec_pabort         ; 0x0c prefetch abort
	b vec_dabort         ; 0x10 data abort
	b vec_irq            ; 0x14 interrupt

; ---------------------------------------------------------------- boot ----
reset:
	ldr sp, =KSTACK_TOP
	bl build_pagetable
	ldr r0, =PAGETABLE
	msr ttbr, r0
	; zero the bookkeeping counters
	ldr r0, =jiffies
	mov r1, #0
	str r1, [r0]
	ldr r0, =out_bytes
	str r1, [r0]
	ldr r0, =alive_count
	str r1, [r0]
	; give the IRQ mode its own stack
	mrs r2, cpsr
	ldr r1, =CPSR_IRQ_OFF
	msr cpsr, r1
	ldr sp, =ISTACK_TOP
	msr cpsr, r2
	; arm the scheduler tick
	ldr r0, =TIMER_BASE
	ldr r1, =TICK_PERIOD
	str r1, [r0]
	; drop to user mode at the application entry point
	ldr r0, =CPSR_USER
	msr spsr, r0
	ldr r0, =APP_ENTRY
	msr elr, r0
	eret

; Build the single-level page table:
;   kernel text           read-only, kernel
;   kernel data + stacks  read-write, kernel
;   user region           read-write, user
;   MMIO window           read-write, kernel
; Everything else stays invalid so wild pointers fault.
build_pagetable:
	ldr r0, =PAGETABLE
	mov r1, #0
	ldr r3, =PT_ENTRIES
pt_zero:
	str r1, [r0]
	add r0, #4
	sub r3, #1
	cmp r3, #0
	bgt pt_zero

	ldr r0, =PAGETABLE
	mov r1, #0                 ; vpn cursor
pt_ktext:
	lsl r2, r1, #12
	orr r2, r2, #PTE_VALID
	str r2, [r0, r1, lsl #2]
	add r1, #1
	cmp r1, #KTEXT_VPN_HI
	blt pt_ktext
pt_kdata:
	lsl r2, r1, #12
	orr r2, r2, #PTE_RW
	str r2, [r0, r1, lsl #2]
	add r1, #1
	cmp r1, #KDATA_VPN_HI
	blt pt_kdata
	ldr r1, =USER_VPN_LO
	ldr r3, =USER_VPN_HI
pt_user:
	lsl r2, r1, #12
	orr r2, r2, #PTE_USER_RW
	str r2, [r0, r1, lsl #2]
	add r1, #1
	cmp r1, r3
	blt pt_user
	ldr r1, =MMIO_VPN_LO
	ldr r3, =MMIO_VPN_HI
pt_mmio:
	lsl r2, r1, #12
	orr r2, r2, #PTE_RW
	str r2, [r0, r1, lsl #2]
	add r1, #1
	cmp r1, r3
	blt pt_mmio
	bx lr

; -------------------------------------------------------------- faults ----
vec_undef:
	mov r0, #1
	b fault_common
vec_pabort:
	mov r0, #3
	b fault_common
vec_dabort:
	mov r0, #4
	b fault_common

; A fault from user mode kills the application (exit 0x80+vector); a fault
; from a privileged mode is a kernel panic.
fault_common:
	mrs r1, spsr
	and r1, r1, #0x1f
	cmp r1, #MODE_USER
	bne kernel_panic
	add r0, r0, #ExitSignalBase
	ldr r1, =SYSCTL_BASE
	str r0, [r1]
hang_app:
	b hang_app

kernel_panic:
	ldr r1, =SYSCTL_BASE
	ldr r0, =PanicCode
	str r0, [r1]
hang_panic:
	b hang_panic

.equ ExitSignalBase, 128
.equ PanicCode, 57005

; ------------------------------------------------------------ syscalls ----
; Convention: syscall number in r7, arguments in r0..r2, result in r0.
vec_svc:
	push {r4, lr}
	cmp r7, #1
	beq sys_exit
	cmp r7, #2
	beq sys_write
	cmp r7, #3
	beq sys_alive
	mvn r0, #0              ; ENOSYS
	b svc_out

sys_exit:
	and r0, r0, #0x7f
	ldr r1, =SYSCTL_BASE
	str r0, [r1]
hang_exit:
	b hang_exit

; write(buf=r0, len=r1): copy bytes from user memory to the UART, counting
; them in kernel data so every syscall touches kernel cache lines.
sys_write:
	ldr r2, =out_bytes
	ldr r4, [r2]
	add r4, r4, r1
	str r4, [r2]
	ldr r2, =UART_BASE
wr_loop:
	cmp r1, #0
	ble wr_done
	ldrb r4, [r0]
	str r4, [r2]
	add r0, #1
	sub r1, #1
	b wr_loop
wr_done:
	mov r0, #0
	b svc_out

sys_alive:
	ldr r1, =alive_count
	ldr r0, [r1]
	add r0, #1
	str r0, [r1]
	ldr r1, =SYSCTL_BASE
	str r0, [r1, #8]
	mov r0, #0
	b svc_out

svc_out:
	pop {r4, lr}
	eret

; ------------------------------------------------------ scheduler tick ----
; The timer interrupt acknowledges the device, advances jiffies, reports
; the kernel heartbeat, and walks the task table — dirtying one cache line
; per task, exactly the resident kernel state the paper blames for beam
; System Crashes under small-footprint workloads.
vec_irq:
	push {r0, r1, r2, r3}
	ldr r0, =TIMER_BASE
	mov r1, #1
	str r1, [r0, #4]        ; ack
	ldr r0, =jiffies
	ldr r1, [r0]
	add r1, #1
	str r1, [r0]
	ldr r2, =SYSCTL_BASE
	str r1, [r2, #4]        ; kernel heartbeat
	ldr r0, =task_table
	mov r2, #0
	mov r3, #0
tick_tasks:
	ldr r1, [r0]
	add r3, r3, r1
	add r1, #1
	str r1, [r0]
	add r0, #TASK_SIZE
	add r2, #1
	cmp r2, #NUM_TASKS
	blt tick_tasks
	ldr r0, =sched_sum
	str r3, [r0]
	pop {r0, r1, r2, r3}
	eret

; ---------------------------------------------------------- kernel data ---
.data
jiffies:     .word 0
out_bytes:   .word 0
alive_count: .word 0
sched_sum:   .word 0
.align 32
task_table:  .space TASKS_BYTES
`
