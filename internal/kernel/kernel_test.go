package kernel

import (
	"strings"
	"testing"
)

func testParams() Params {
	return Params{
		TextBase:      0,
		DataBase:      0x4000,
		PageTable:     0xC000,
		PTEntries:     4096,
		SVCStackTop:   0x1_1000,
		IRQStackTop:   0x1_2000,
		AppEntry:      0x10_0000,
		UserVPNStart:  0x100,
		UserVPNEnd:    0x3F0,
		KTextVPNEnd:   4,
		KDataVPNEnd:   18,
		MMIOVPNStart:  0x400,
		MMIOVPNEnd:    0x410,
		UARTBase:      0x40_0000,
		TimerBase:     0x40_1000,
		SysCtlBase:    0x40_2000,
		TimerPeriod:   20_000,
		NumTasks:      32,
		TaskStructLen: 64,
	}
}

func TestKernelBuilds(t *testing.T) {
	prog, err := Build(testParams())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if prog.TextWords() < 100 {
		t.Errorf("kernel suspiciously small: %d words", prog.TextWords())
	}
	// The vector table is the first six words, each a branch.
	for i := 0; i < 6; i++ {
		w, ok := prog.Word(uint32(4 * i))
		if !ok {
			t.Fatalf("missing vector word %d", i)
		}
		// Branch opcode is bits [27:22] == OpB; checking the top nibble is
		// AL (0xE) and the op field is the branch op suffices here.
		if w>>28 != 0xE {
			t.Errorf("vector %d not unconditional: %#x", i, w)
		}
	}
	for _, sym := range []string{"_start", "reset", "vec_svc", "vec_irq", "vec_undef",
		"vec_dabort", "vec_pabort", "kernel_panic", "jiffies", "task_table"} {
		if _, ok := prog.Symbol(sym); !ok {
			t.Errorf("kernel missing symbol %q", sym)
		}
	}
}

func TestKernelBuildDeterministic(t *testing.T) {
	a := MustBuild(testParams())
	b := MustBuild(testParams())
	if string(a.Text) != string(b.Text) || string(a.Data) != string(b.Data) {
		t.Error("kernel build is not deterministic")
	}
}

func TestKernelSourceParametrised(t *testing.T) {
	p := testParams()
	src := Source(p)
	for _, frag := range []string{"TICK_PERIOD,  20000", "NUM_TASKS,    32", "APP_ENTRY,    1048576"} {
		if !strings.Contains(src, frag) {
			t.Errorf("source missing %q", frag)
		}
	}
	p.TimerPeriod = 999
	if !strings.Contains(Source(p), "TICK_PERIOD,  999") {
		t.Error("timer period not substituted")
	}
}

func TestKernelDataFitsBeforePageTable(t *testing.T) {
	p := testParams()
	prog := MustBuild(p)
	end := p.DataBase + uint32(len(prog.Data))
	if end > p.PageTable {
		t.Fatalf("kernel data [%#x, %#x) overlaps the page table at %#x",
			p.DataBase, end, p.PageTable)
	}
	if p.TextBase+uint32(len(prog.Text)) > p.DataBase {
		t.Fatalf("kernel text overflows into data region")
	}
}
