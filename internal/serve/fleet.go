// Fleet view of the campaign service: a live aggregate of every
// campaign's progress, every node's health (fed by telemetry heartbeats
// and lease activity), outcome-class running totals observed from
// federated trace records, and straggler/stalled detection — served as
// JSON at /api/v1/fleet and as a self-refreshing HTML dashboard at
// /fleet.

package serve

import (
	"sort"

	"armsefi/internal/obs"
	"armsefi/internal/stats"
)

// NodeStatus is the fleet view of one worker node.
type NodeStatus struct {
	Node string `json:"node"`
	// AgeMS is how long ago the node was last seen (telemetry batch or
	// lease activity).
	AgeMS int64 `json:"age_ms"`
	// Rate is the node's self-reported experiments/second over its last
	// telemetry interval; Items and Shards are lifetime totals.
	Rate   float64 `json:"rate"`
	Items  int64   `json:"items"`
	Shards int64   `json:"shards"`
	// LeasesHeld counts the shard leases the node currently holds.
	LeasesHeld int `json:"leases_held"`
	// LadderBytes / LadderSharedBytes are the node's self-reported
	// checkpoint-ladder memory: total retained bytes, and the bytes shared
	// through copy-on-write page interning rather than copied per rung.
	LadderBytes       int64 `json:"ladder_bytes,omitempty"`
	LadderSharedBytes int64 `json:"ladder_shared_bytes,omitempty"`
	// Stalled marks a node quiet for longer than the stalled threshold.
	Stalled bool `json:"stalled"`
}

// Straggler is a shard execution running longer than the straggler
// threshold. The lease is still honoured — a straggler is slow, not
// dead — but the dashboard surfaces it.
type Straggler struct {
	Campaign  string `json:"campaign"`
	Shard     int    `json:"shard"`
	Workload  string `json:"workload"`
	Node      string `json:"node"`
	RunningMS int64  `json:"running_ms"`
}

// FleetCampaign is one campaign's slice of the fleet view.
type FleetCampaign struct {
	CampaignStatus
	// Outcomes tallies outcome classes observed in federated trace
	// records since the coordinator started — a live running total, not
	// the assembled Result (workers without telemetry contribute nothing
	// here but still complete shards).
	Outcomes map[string]int `json:"outcomes,omitempty"`
	// Predicted / Deduped / Simulated split the campaign's observed
	// injections into those the pre-filter proved masked without
	// simulation, those materialized from an equivalence-class
	// representative, and those that ran (optimised injection campaigns
	// only; from federated trace records, like Outcomes).
	Predicted int `json:"predicted,omitempty"`
	Deduped   int `json:"deduped,omitempty"`
	Simulated int `json:"simulated,omitempty"`
	// Stragglers lists this campaign's over-threshold shard executions.
	Stragglers []Straggler `json:"stragglers,omitempty"`
	// Conv is the campaign's merged convergence view: every node's latest
	// estimator tallies summed, margins judged under the campaign's (or
	// coordinator's) rule. Advisory, like Outcomes.
	Conv []obs.ConvSnapshot `json:"conv,omitempty"`
}

// FleetStatus is the full fleet snapshot.
type FleetStatus struct {
	Campaigns []*FleetCampaign `json:"campaigns"`
	Nodes     []NodeStatus     `json:"nodes"`
	// StragglerAfterMS and StalledAfterMS echo the thresholds the
	// snapshot was judged against.
	StragglerAfterMS int64 `json:"straggler_after_ms"`
	StalledAfterMS   int64 `json:"stalled_after_ms"`
}

// Fleet snapshots the whole fleet: campaign progress with observed
// outcome totals and stragglers, plus per-node health.
func (c *Coordinator) Fleet() *FleetStatus {
	c.mu.Lock()
	c.sweepLocked()
	now := c.cfg.Now()
	fs := &FleetStatus{
		Campaigns:        make([]*FleetCampaign, 0, len(c.order)),
		StragglerAfterMS: c.cfg.StragglerAfter.Milliseconds(),
		StalledAfterMS:   c.cfg.StalledAfter.Milliseconds(),
	}
	leasesByNode := make(map[string]int)
	rules := make(map[string]stats.SeqRule, len(c.order))
	for _, id := range c.order {
		camp := c.camps[id]
		rules[id] = c.campaignRuleLocked(camp)
		fc := &FleetCampaign{CampaignStatus: *c.statusLocked(id, camp)}
		for shard, l := range camp.leases {
			leasesByNode[l.node]++
			if run := now.Sub(l.started); run > c.cfg.StragglerAfter {
				fc.Stragglers = append(fc.Stragglers, Straggler{
					Campaign:  id,
					Shard:     shard,
					Workload:  camp.man.Shards[shard].Workload,
					Node:      l.node,
					RunningMS: run.Milliseconds(),
				})
			}
		}
		sort.Slice(fc.Stragglers, func(i, j int) bool { return fc.Stragglers[i].Shard < fc.Stragglers[j].Shard })
		fs.Campaigns = append(fs.Campaigns, fc)
	}
	c.mu.Unlock()

	c.tmu.Lock()
	for _, fc := range fs.Campaigns {
		if t := c.tallies[fc.ID]; len(t) > 0 {
			fc.Outcomes = make(map[string]int, len(t))
			for cls, n := range t {
				fc.Outcomes[cls.String()] = n
			}
		}
		if pt := c.prunes[fc.ID]; pt != nil && (pt.predicted > 0 || pt.deduped > 0) {
			fc.Predicted = pt.predicted
			fc.Deduped = pt.deduped
			fc.Simulated = pt.simulated
		}
		if byNode := c.conv[fc.ID]; len(byNode) > 0 {
			fc.Conv = mergeConv(byNode, rules[fc.ID])
		}
	}
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	// Nodes only known through leases (no telemetry yet) still appear.
	for name := range leasesByNode {
		if _, ok := c.nodes[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		ns := NodeStatus{Node: name, LeasesHeld: leasesByNode[name]}
		if nh := c.nodes[name]; nh != nil {
			age := now.Sub(nh.lastSeen)
			ns.AgeMS = age.Milliseconds()
			ns.Rate = nh.rate
			ns.Items = nh.items
			ns.Shards = nh.shards
			ns.LadderBytes = nh.ladderBytes
			ns.LadderSharedBytes = nh.ladderShared
			ns.Stalled = age > c.cfg.StalledAfter
		}
		fs.Nodes = append(fs.Nodes, ns)
	}
	c.tmu.Unlock()
	return fs
}

// countStragglers and countStalled back the armsefi_fleet_* gauges.
func (c *Coordinator) countStragglers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	n := 0
	for _, camp := range c.camps {
		for _, l := range camp.leases {
			if now.Sub(l.started) > c.cfg.StragglerAfter {
				n++
			}
		}
	}
	return n
}

func (c *Coordinator) countStalled() int {
	c.tmu.Lock()
	defer c.tmu.Unlock()
	now := c.cfg.Now()
	n := 0
	for _, nh := range c.nodes {
		if now.Sub(nh.lastSeen) > c.cfg.StalledAfter {
			n++
		}
	}
	return n
}

// fleetHTML is the live dashboard: a static page polling /api/v1/fleet.
const fleetHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>armsefi fleet</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
table { border-collapse: collapse; min-width: 40rem; }
th, td { text-align: left; padding: .25rem .8rem; border-bottom: 1px solid #ddd; }
th { border-bottom: 2px solid #999; }
.bar { background: #eee; width: 12rem; height: .8rem; border-radius: .4rem; overflow: hidden; display: inline-block; vertical-align: middle; }
.bar i { display: block; height: 100%; background: #4a90d9; }
.chip { display: inline-block; padding: 0 .45rem; margin-right: .3rem; border-radius: .6rem; background: #eef; font-size: .85em; }
.bad { color: #b00; font-weight: 600; }
.ok { color: #2a7; }
.spark { vertical-align: middle; margin-left: .2rem; }
.conv { white-space: nowrap; }
#err { color: #b00; }
small { color: #777; }
</style>
</head>
<body>
<h1>armsefi fleet</h1>
<div id="err"></div>
<h2>Campaigns</h2>
<table id="camps"><thead><tr>
<th>id</th><th>kind</th><th>state</th><th>progress</th><th>outcomes</th><th>pre-filter / dedup</th><th>convergence</th><th>stragglers</th>
</tr></thead><tbody></tbody></table>
<h2>Nodes</h2>
<table id="nodes"><thead><tr>
<th>node</th><th>last seen</th><th>leases</th><th>rate (exp/s)</th><th>items</th><th>shards</th><th>ckpt mem</th><th>health</th>
</tr></thead><tbody></tbody></table>
<p><small>polls /api/v1/fleet every 2s · straggler &gt; <span id="strag"></span>ms · stalled &gt; <span id="stall"></span>ms</small></p>
<script>
function esc(s) { return String(s).replace(/[&<>"]/g, c => ({'&':'&amp;','<':'&lt;','>':'&gt;','"':'&quot;'}[c])); }
// Margin history rings per (campaign, workload, component): each poll
// appends the worst class margin, capped at 40 samples, rendered as an
// inline SVG sparkline so convergence is visible at a glance.
const hist = {};
function spark(key, v) {
  const h = hist[key] = (hist[key] || []).concat([v]).slice(-40);
  const max = Math.max(...h, 1e-9);
  const w = 60, ht = 14;
  const step = h.length > 1 ? w / (h.length - 1) : 0;
  const pts = h.map((m, i) => (i * step).toFixed(1) + ',' + (ht - 1 - (ht - 2) * m / max).toFixed(1)).join(' ');
  return '<svg class="spark" width="' + w + '" height="' + ht + '"><polyline points="' + pts +
    '" fill="none" stroke="#4a90d9" stroke-width="1"/></svg>';
}
function convCell(c) {
  const by = {};
  (c.conv || []).forEach(s => {
    const k = s.workload + '/' + s.comp;
    const b = by[k] = by[k] || { margin: 0, met: true, avf: null };
    b.margin = Math.max(b.margin, s.margin);
    b.met = b.met && !!s.met;
    if (s.class === 'Masked') b.avf = 1 - s.est;
  });
  const keys = Object.keys(by).sort();
  if (!keys.length) return '<small>-</small>';
  return keys.map(k => {
    const b = by[k];
    return '<span class="conv"><span class="chip">' + esc(k) +
      ' avf ' + (b.avf == null ? '?' : b.avf.toFixed(3)) +
      ' &plusmn;' + b.margin.toFixed(3) +
      (b.met ? ' <span class="ok">&#10003;</span>' : '') + '</span>' +
      spark(c.id + '|' + k, b.margin) + '</span>';
  }).join('<br>');
}
async function tick() {
  try {
    const r = await fetch('/api/v1/fleet');
    const f = await r.json();
    document.getElementById('err').textContent = '';
    document.getElementById('strag').textContent = f.straggler_after_ms;
    document.getElementById('stall').textContent = f.stalled_after_ms;
    const cb = document.querySelector('#camps tbody');
    cb.innerHTML = (f.campaigns || []).map(c => {
      const pct = c.items_total ? Math.round(100 * c.items_done / c.items_total) : 0;
      const outs = Object.entries(c.outcomes || {}).map(([k, v]) => '<span class="chip">' + esc(k) + ' ' + v + '</span>').join('');
      const pf = (c.predicted || c.deduped)
        ? ((c.predicted ? '<span class="chip">predicted ' + c.predicted + '</span>' : '') +
           (c.deduped ? '<span class="chip">deduped ' + c.deduped + '</span>' : '') +
           '<span class="chip">simulated ' + (c.simulated || 0) + '</span>')
        : '<small>off</small>';
      const strag = (c.stragglers || []).map(s => '<span class="bad">#' + s.shard + '@' + esc(s.node) + '</span>').join(' ') || '<span class="ok">none</span>';
      return '<tr><td>' + esc(c.id) + '</td><td>' + esc(c.kind) + '</td><td>' + esc(c.state) +
        '</td><td><span class="bar"><i style="width:' + pct + '%"></i></span> ' +
        c.shards_done + '/' + c.shards_total + ' shards, ' + c.items_done + '/' + c.items_total + ' items</td><td>' +
        outs + '</td><td>' + pf + '</td><td>' + convCell(c) + '</td><td>' + strag + '</td></tr>';
    }).join('');
    const mb = b => b ? (b / 1048576).toFixed(1) + ' MiB' : '-';
    const nb = document.querySelector('#nodes tbody');
    nb.innerHTML = (f.nodes || []).map(n =>
      '<tr><td>' + esc(n.node) + '</td><td>' + (n.age_ms / 1000).toFixed(1) + 's ago</td><td>' + n.leases_held +
      '</td><td>' + n.rate.toFixed(2) + '</td><td>' + n.items + '</td><td>' + n.shards +
      '</td><td>' + mb(n.ladder_bytes) + (n.ladder_shared_bytes ? ' <small>(' + mb(n.ladder_shared_bytes) + ' shared)</small>' : '') +
      '</td><td>' + (n.stalled ? '<span class="bad">stalled</span>' : '<span class="ok">live</span>') + '</td></tr>'
    ).join('');
  } catch (e) {
    document.getElementById('err').textContent = 'fleet fetch failed: ' + e;
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
