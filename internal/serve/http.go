// HTTP surface of the campaign service. The API is a thin JSON wrapper
// over the Coordinator — every endpoint is a single coordinator call —
// so local (in-process) and remote (campaignd) operation share all
// scheduling, durability, and assembly logic.
//
//	POST /api/v1/campaigns            submit a campaign     -> {"id": ...}
//	GET  /api/v1/campaigns            list campaign status
//	GET  /api/v1/campaigns/{id}       one campaign's status
//	GET  /api/v1/campaigns/{id}/results  assembled Result (complete only)
//	POST /api/v1/campaigns/{id}/cancel   cancel
//	GET  /api/v1/campaigns/{id}/trace    merged fleet trace (JSONL)
//	GET  /api/v1/campaigns/{id}/convergence  merged convergence view
//	POST /api/v1/claim                worker: lease next shard (204 = none)
//	POST /api/v1/renew                worker: extend a lease
//	POST /api/v1/complete             worker: report a shard result
//	POST /api/v1/telemetry            worker: ship a telemetry batch
//	GET  /api/v1/fleet                fleet snapshot (nodes, stragglers)
//	GET  /fleet                       live HTML dashboard
//	GET  /metrics, /debug/*           service + campaign metrics, pprof

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"armsefi/internal/core/beam"
	"armsefi/internal/core/gefin"
	"armsefi/internal/obs"
)

// SubmitRequest is the campaign-submission body. Exactly one of
// Injection / Beam must match Kind.
type SubmitRequest struct {
	// Kind is "injection" or "beam".
	Kind string `json:"kind"`
	// Injection is the gefin campaign config (injection kind). Its Seed
	// pins the pre-drawn fault plan; Workers/Trace knobs are ignored —
	// the service schedules execution itself.
	Injection *gefin.Config `json:"injection,omitempty"`
	// Beam is the beam campaign config (beam kind).
	Beam *beam.Config `json:"beam,omitempty"`
	// Workloads names the benchmarks to run.
	Workloads []string `json:"workloads"`
	// ShardSize bounds injection shard length in plan slots; zero picks
	// one shard per component. Beam campaigns ignore it (always one
	// shard per component chain).
	ShardSize int `json:"shard_size,omitempty"`
}

type claimRequest struct {
	Node string `json:"node"`
}

type leaseRequest struct {
	Node     string `json:"node"`
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
}

type completeRequest struct {
	Node     string        `json:"node"`
	Campaign string        `json:"campaign"`
	Shard    int           `json:"shard"`
	Span     int64         `json:"span"`
	Payload  *ShardPayload `json:"payload"`
}

type errorBody struct {
	Error string `json:"error"`
}

// Handler builds the service's HTTP mux over a coordinator. reg, when
// non-nil, mounts the metrics endpoints.
func Handler(c *Coordinator, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /api/v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding submission: %w", err))
			return
		}
		man, err := BuildManifest(req.Kind, req.Injection, req.Beam, req.Workloads, req.ShardSize)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, err := c.Submit(man)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": id})
	})

	mux.HandleFunc("GET /api/v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.StatusAll())
	})

	mux.HandleFunc("GET /api/v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := c.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /api/v1/campaigns/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		res, err := c.Results(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("POST /api/v1/campaigns/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if err := c.Cancel(r.PathValue("id")); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"state": StateCancelled})
	})

	mux.HandleFunc("POST /api/v1/claim", func(w http.ResponseWriter, r *http.Request) {
		var req claimRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		a, err := c.Claim(req.Node)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		if a == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, a)
	})

	mux.HandleFunc("POST /api/v1/renew", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := c.Renew(req.Node, req.Campaign, req.Shard); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /api/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if req.Payload == nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("serve: completion without payload"))
			return
		}
		if err := c.Complete(req.Node, req.Campaign, req.Shard, req.Span, req.Payload); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /api/v1/telemetry", func(w http.ResponseWriter, r *http.Request) {
		var b TelemetryBatch
		if err := json.NewDecoder(r.Body).Decode(&b); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := c.Telemetry(&b); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /api/v1/campaigns/{id}/convergence", func(w http.ResponseWriter, r *http.Request) {
		cv, err := c.Convergence(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, cv)
	})

	mux.HandleFunc("GET /api/v1/campaigns/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := c.WriteTrace(r.PathValue("id"), w); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
	})

	mux.HandleFunc("GET /api/v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Fleet())
	})

	mux.HandleFunc("GET /fleet", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, fleetHTML)
	})

	if reg != nil {
		oh := obs.Handler(reg)
		mux.Handle("/metrics", oh)
		mux.Handle("/debug/", oh)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
