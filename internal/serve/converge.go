// Convergence federation of the campaign service. Worker nodes track
// per-(workload, component, class) running estimates as they execute
// shards, ship the latest snapshots inside their telemetry batches, and
// the coordinator merges every node's tallies into one per-campaign
// convergence view — served at /api/v1/campaigns/{id}/convergence and
// on the /fleet dashboard. The merged view is advisory: a requeued
// shard whose first execution already shipped tallies double-counts
// until the winning completion's node restates its totals, so the
// byte-deterministic stopping decision stays inside the engines where
// the plan-order prefix is authoritative.

package serve

import (
	"fmt"
	"sort"

	"armsefi/internal/core/fault"
	"armsefi/internal/core/gefin"
	"armsefi/internal/obs"
	"armsefi/internal/stats"
)

// ConvUpdate is one estimator snapshot on the telemetry wire, tagged
// with its campaign (a node may run shards of several campaigns inside
// one batch interval).
type ConvUpdate struct {
	Campaign string `json:"campaign"`
	obs.ConvSnapshot
}

// ConvView is the coordinator's merged convergence view of one
// campaign: every node's latest per-estimator tallies summed, margins
// recomputed under the campaign's rule (or the coordinator's view rule
// when the campaign set none).
type ConvView struct {
	Campaign string `json:"campaign"`
	// TargetMargin / Confidence echo the rule the view was judged under.
	TargetMargin float64 `json:"target_margin,omitempty"`
	Confidence   float64 `json:"confidence"`
	// Estimators are the merged running estimates in canonical order
	// (workload, component, class).
	Estimators []obs.ConvSnapshot `json:"estimators"`
	// AllMet reports whether every estimator meets the target margin
	// (false when the rule is disabled or no tallies arrived yet).
	AllMet bool `json:"all_met"`
	// Nodes counts the worker nodes that contributed tallies.
	Nodes int `json:"nodes"`
}

// convID keys a shipper's or coordinator's latest-estimator map.
type convID struct {
	campaign string
	key      obs.ConvKey
}

// convRule builds the sequential rule a campaign config implies; zero
// confidence defaults inside stats.SeqRule.
func convRule(targetMargin, confidence float64) stats.SeqRule {
	return stats.SeqRule{TargetMargin: targetMargin, Confidence: confidence}
}

// mergeConv folds every node's latest snapshots for one campaign into
// the merged estimator list: counts sum across nodes, the look index
// and planned denominator take the maximum (they restate the same
// constants), and margins are recomputed from the merged counts under
// rule.
func mergeConv(nodes map[string]map[obs.ConvKey]obs.ConvSnapshot, rule stats.SeqRule) []obs.ConvSnapshot {
	merged := make(map[obs.ConvKey]*obs.ConvSnapshot)
	for _, byKey := range nodes {
		for key, s := range byKey {
			m := merged[key]
			if m == nil {
				m = &obs.ConvSnapshot{ConvKey: key}
				merged[key] = m
			}
			m.K += s.K
			m.N += s.N
			if s.Planned > m.Planned {
				m.Planned = s.Planned
			}
			if s.Look > m.Look {
				m.Look = s.Look
			}
			m.Stopped = m.Stopped || s.Stopped
		}
	}
	out := make([]obs.ConvSnapshot, 0, len(merged))
	for _, m := range merged {
		if m.N > 0 {
			m.Est = float64(m.K) / float64(m.N)
		}
		m.Margin = rule.Margin(m.K, m.N)
		m.Met = rule.Enabled() && m.Margin <= rule.TargetMargin
		out = append(out, *m)
	}
	obs.SortConvSnapshots(out)
	return out
}

// Convergence returns the coordinator's merged convergence view of one
// campaign. The view judges margins under the campaign's own rule when
// it set a target margin, else under the coordinator's view rule
// (campaignd -target-margin / -confidence).
func (c *Coordinator) Convergence(id string) (*ConvView, error) {
	c.mu.Lock()
	camp := c.camps[id]
	if camp == nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("serve: unknown campaign %q", id)
	}
	rule := c.campaignRuleLocked(camp)
	c.mu.Unlock()

	view := &ConvView{
		Campaign:     id,
		TargetMargin: rule.TargetMargin,
		Confidence:   rule.Confidence,
	}
	if view.Confidence == 0 {
		view.Confidence = 0.99
	}
	c.tmu.Lock()
	byNode := c.conv[id]
	view.Nodes = len(byNode)
	view.Estimators = mergeConv(byNode, rule)
	c.tmu.Unlock()
	view.AllMet = rule.Enabled() && len(view.Estimators) > 0
	for _, e := range view.Estimators {
		if !e.Met {
			view.AllMet = false
			break
		}
	}
	return view, nil
}

// campaignRuleLocked picks the rule a campaign's convergence view is
// judged under: the campaign's own, else the coordinator's. Callers
// hold mu.
func (c *Coordinator) campaignRuleLocked(camp *campaign) stats.SeqRule {
	switch {
	case camp.man.Injection != nil && camp.man.Injection.TargetMargin > 0:
		return convRule(camp.man.Injection.TargetMargin, camp.man.Injection.Confidence)
	case camp.man.Beam != nil && camp.man.Beam.TargetMargin > 0:
		return convRule(camp.man.Beam.TargetMargin, camp.man.Beam.Confidence)
	}
	return convRule(c.cfg.ConvTargetMargin, c.cfg.ConvConfidence)
}

// applyConv ingests one telemetry batch's convergence updates. Callers
// hold tmu. Latest-wins per (node, campaign, estimator): each update
// restates the node's cumulative tallies, so replacement (never
// addition) keeps at-least-once delivery safe.
func (c *Coordinator) applyConv(node string, updates []ConvUpdate) {
	for _, u := range updates {
		if u.Campaign == "" {
			continue
		}
		byNode := c.conv[u.Campaign]
		if byNode == nil {
			byNode = make(map[string]map[obs.ConvKey]obs.ConvSnapshot)
			c.conv[u.Campaign] = byNode
		}
		byKey := byNode[node]
		if byKey == nil {
			byKey = make(map[obs.ConvKey]obs.ConvSnapshot)
			byNode[node] = byKey
		}
		byKey[u.ConvKey] = u.ConvSnapshot
	}
}

// injConvTally is a worker node's running convergence tally for one
// injection campaign: cumulative per-(workload, component, class)
// counts over the shards this node executed, feeding a shared registry
// whose snapshots the telemetry shipper federates. Single worker-loop
// use; campaigns sharding across nodes merge at the coordinator.
type injConvTally struct {
	reg     *obs.ConvRegistry
	comps   []fault.Component
	perComp int
	n       map[convComp]int
	k       map[obs.ConvKey]int
	look    map[convComp]int
}

type convComp struct {
	workload string
	comp     fault.Component
}

// newInjConvTally builds the tally for one injection campaign config.
func newInjConvTally(cfg gefin.Config) *injConvTally {
	comps, perComp := gefin.PlanComponents(cfg)
	return &injConvTally{
		reg:     obs.NewConvRegistry(convRule(cfg.TargetMargin, cfg.Confidence)),
		comps:   comps,
		perComp: perComp,
		n:       make(map[convComp]int),
		k:       make(map[obs.ConvKey]int),
		look:    make(map[convComp]int),
	}
}

// record tallies one completed shard's outcomes (plan slots lo..lo+len)
// — predicted and simulated verdicts both count — and returns refreshed
// snapshots for every touched component, in canonical order.
func (t *injConvTally) record(workload string, lo int, outs []gefin.ShardOutcome) []obs.ConvSnapshot {
	touched := make(map[convComp]bool)
	for idx, o := range outs {
		ci := (lo + idx) / t.perComp
		if ci < 0 || ci >= len(t.comps) {
			continue
		}
		wc := convComp{workload, t.comps[ci]}
		t.n[wc]++
		t.k[obs.ConvKey{Workload: workload, Comp: wc.comp, Class: o.Class}]++
		touched[wc] = true
	}
	order := make([]convComp, 0, len(touched))
	for wc := range touched {
		order = append(order, wc)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].workload != order[j].workload {
			return order[i].workload < order[j].workload
		}
		return order[i].comp < order[j].comp
	})
	snaps := make([]obs.ConvSnapshot, 0, len(order)*fault.NumClasses)
	for _, wc := range order {
		t.look[wc]++
		for _, cls := range fault.Classes() {
			key := obs.ConvKey{Workload: wc.workload, Comp: wc.comp, Class: cls}
			snaps = append(snaps, t.reg.Update(key, t.k[key], t.n[wc], t.perComp, t.look[wc], false))
		}
	}
	return snaps
}
