// Worker loop of the campaign service. A worker node repeatedly claims
// shard leases from a Source (the in-process Coordinator, or a remote
// campaignd through Client — the loop cannot tell them apart), executes
// each shard through the engines' ShardRunner APIs, renews the lease in
// the background while the shard runs, and reports the durable result.
// Execution goes through the exact same per-injection code path as an
// in-process campaign, so results are bit-identical by construction.

package serve

import (
	"context"
	"fmt"
	"time"

	"armsefi/internal/bench"
	"armsefi/internal/core/beam"
	"armsefi/internal/core/gefin"
	"armsefi/internal/core/sched"
	"armsefi/internal/obs"
)

// Source is the coordinator surface a worker needs. *Coordinator
// implements it directly (local workers), *Client implements it over
// HTTP (remote workers). Complete echoes the Assignment's span so the
// coordinator can mark the winning execution in the merged fleet trace.
type Source interface {
	Claim(node string) (*Assignment, error)
	Renew(node, campaign string, shard int) error
	Complete(node, campaign string, shard int, span int64, payload *ShardPayload) error
}

// WorkerConfig parameterises one worker loop.
type WorkerConfig struct {
	// Node identifies this worker in leases and trace records.
	Node string
	// Source hands out shard leases.
	Source Source
	// Pool, when set, bounds concurrent shard execution across every
	// worker loop sharing it: the loop holds one slot per in-flight
	// shard, so N loops over a cap-K pool run at most K simulated
	// machines. Nil means unbounded.
	Pool *sched.Pool
	// Worker tags trace records emitted by this loop's shard runs.
	Worker int
	// Obs, when set, instruments shard execution: every injection/strike
	// the shard runs is traced (and, when the observer is teed into a
	// telemetry Shipper, federated to the coordinator) stamped with the
	// assignment's trace context. Nil keeps execution unobserved — the
	// engines pay zero.
	Obs *obs.Observer
	// PollInterval is the idle back-off when no shard is claimable.
	// Zero picks 200ms.
	PollInterval time.Duration
}

// RunWorker claims and executes shards until ctx is cancelled. On
// cancellation the loop stops claiming; a shard already executing
// finishes and reports (simulated machine runs are not interruptible
// mid-injection without losing the lease's work). It returns the number
// of shards completed and the first execution error, if any (claim
// errors are retried, not returned).
func RunWorker(ctx context.Context, cfg WorkerConfig) (int, error) {
	if cfg.Source == nil {
		return 0, fmt.Errorf("serve: worker needs a source")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	// One runner cache per campaign: a runner holds prepared workbenches
	// (boot + golden + ladder), so consecutive shards of the same
	// campaign and workload pay no setup.
	injRunners := make(map[string]*gefin.ShardRunner)
	beamRunners := make(map[string]*beam.ShardRunner)
	// One convergence tally per injection campaign: the node's cumulative
	// per-(workload, component, class) counts over the shards it executed,
	// emitted through the observer after each shard (the telemetry shipper
	// intercepts the records and federates the snapshots). Beam campaigns
	// stream theirs from inside the chain via ShardRunner.Conv.
	injConvs := make(map[string]*injConvTally)
	done := 0
	for {
		if ctx.Err() != nil {
			return done, nil
		}
		if cfg.Pool != nil {
			if err := cfg.Pool.AcquireCtx(ctx); err != nil {
				return done, nil // cancelled while waiting for a slot
			}
		}
		a, err := cfg.Source.Claim(cfg.Node)
		if err != nil || a == nil {
			if cfg.Pool != nil {
				cfg.Pool.Release()
			}
			select {
			case <-ctx.Done():
				return done, nil
			case <-time.After(cfg.PollInterval):
			}
			continue
		}
		payload, execErr := executeShard(ctx, cfg, a, injRunners, beamRunners, injConvs)
		if execErr == nil {
			execErr = cfg.Source.Complete(cfg.Node, a.Campaign, a.Shard, a.Span, payload)
		}
		if cfg.Pool != nil {
			cfg.Pool.Release()
		}
		if execErr != nil {
			return done, fmt.Errorf("serve: node %s campaign %s shard %d: %w", cfg.Node, a.Campaign, a.Shard, execErr)
		}
		done++
	}
}

// executeShard runs one assignment, renewing the lease at a third of its
// TTL while the simulated machine works.
func executeShard(ctx context.Context, cfg WorkerConfig, a *Assignment,
	injRunners map[string]*gefin.ShardRunner, beamRunners map[string]*beam.ShardRunner,
	injConvs map[string]*injConvTally) (*ShardPayload, error) {

	spec, ok := bench.ByName(a.Workload)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", a.Workload)
	}

	stopRenew := renewLoop(ctx, cfg, a)
	defer stopRenew()

	// tc correlates every record the shard emits with this execution:
	// campaign, shard index, this node, and the coordinator-minted span.
	tc := obs.TraceContext{Campaign: a.Campaign, Shard: a.Shard, Node: cfg.Node, Span: a.Span}

	switch a.Kind {
	case KindInjection:
		if a.Injection == nil {
			return nil, fmt.Errorf("injection assignment without config")
		}
		r, ok := injRunners[a.Campaign]
		if !ok {
			// Copy the config before attaching the worker's observer: the
			// assignment may share the coordinator's manifest pointer when
			// the source is in-process.
			cc := *a.Injection
			cc.Obs = cfg.Obs
			r = gefin.NewShardRunner(cc)
			r.Worker = cfg.Worker
			injRunners[a.Campaign] = r
		}
		r.Ctx = tc
		outs, meta, err := r.RunShard(spec, a.Lo, a.Hi)
		if err != nil {
			return nil, err
		}
		if cfg.Obs.On() {
			ct, ok := injConvs[a.Campaign]
			if !ok {
				ct = newInjConvTally(*a.Injection)
				injConvs[a.Campaign] = ct
			}
			cfg.Obs.Convergence(ct.record(a.Workload, a.Lo, outs), tc)
		}
		return &ShardPayload{InjMeta: &meta, Outcomes: outs}, nil
	case KindBeam:
		if a.Beam == nil {
			return nil, fmt.Errorf("beam assignment without config")
		}
		r, ok := beamRunners[a.Campaign]
		if !ok {
			cc := *a.Beam
			cc.Obs = cfg.Obs
			r = beam.NewShardRunner(cc)
			r.Worker = cfg.Worker
			if cfg.Obs.On() {
				// The chains stream their estimates into a campaign-wide
				// registry; the observer's records carry them to the shipper.
				r.Conv = obs.NewConvRegistry(convRule(cc.TargetMargin, cc.Confidence))
			}
			beamRunners[a.Campaign] = r
		}
		r.Ctx = tc
		chain, meta, err := r.RunShard(spec, a.Lo)
		if err != nil {
			return nil, err
		}
		return &ShardPayload{BeamMeta: &meta, Chain: chain}, nil
	default:
		return nil, fmt.Errorf("unknown campaign kind %q", a.Kind)
	}
}

// renewLoop keeps the assignment's lease alive in the background and
// returns a stop function. Renewal failures are ignored: if the lease
// was requeued, the eventual Complete is a harmless duplicate.
func renewLoop(ctx context.Context, cfg WorkerConfig, a *Assignment) func() {
	ttl := time.Duration(a.LeaseMS) * time.Millisecond
	if ttl <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				_ = cfg.Source.Renew(cfg.Node, a.Campaign, a.Shard)
			}
		}
	}()
	return func() { close(stop) }
}
