package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/gefin"
	"armsefi/internal/obs"
)

// TestHTTPEndToEnd drives the full remote path: a campaign submitted
// through the HTTP API, executed by a worker that only talks to the
// coordinator through Client (exactly what a remote campaignd does), and
// fetched back — with Workloads bytes identical to a direct in-process
// run.
func TestHTTPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real injection campaigns")
	}
	cfg := gefin.Config{
		Seed:               55,
		FaultsPerComponent: 3,
		Components:         []fault.Component{fault.CompRegFile},
		Workers:            1,
	}
	spec, _ := bench.ByName("crc32")
	direct, err := gefin.Run(cfg, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	observer := obs.New(obs.Options{})
	coord, err := NewCoordinator(CoordConfig{Store: store, LeaseTTL: time.Minute, Obs: observer})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(coord, observer.Registry()))
	defer srv.Close()
	client := &Client{Base: srv.URL}

	id, err := client.Submit(SubmitRequest{
		Kind:      KindInjection,
		Injection: &cfg,
		Workloads: []string{"crc32"},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.ItemsTotal != gefin.PlanLen(cfg) {
		t.Fatalf("items total %d, want %d", st.ItemsTotal, gefin.PlanLen(cfg))
	}

	// A "remote node": RunWorker over the HTTP client.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	workerDone := make(chan error, 1)
	go func() {
		_, err := RunWorker(ctx, WorkerConfig{Node: "remote", Source: client, PollInterval: 20 * time.Millisecond})
		workerDone <- err
	}()

	final, err := client.WaitComplete(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateComplete {
		t.Fatalf("final state %s", final.State)
	}
	cancel()
	if err := <-workerDone; err != nil {
		t.Fatal(err)
	}

	res, err := client.InjectionResults(id)
	if err != nil {
		t.Fatal(err)
	}
	dj, _ := json.Marshal(direct.Workloads)
	aj, _ := json.Marshal(res.Workloads)
	if string(dj) != string(aj) {
		t.Fatalf("remote run diverged from direct run:\n direct %s\n remote %s", dj, aj)
	}

	// Service metrics moved: shards were completed through the service.
	var counted bool
	observer.Registry().WritePrometheus(discardWriter{&counted})
	if !counted {
		t.Error("metrics registry wrote nothing")
	}

	// API error surfaces: unknown campaign, cancel-after-complete.
	if _, err := client.Status("nope"); err == nil {
		t.Error("unknown campaign status succeeded")
	}
	if err := client.Cancel(id); err == nil {
		t.Error("cancel of a complete campaign succeeded")
	}
}

type discardWriter struct{ wrote *bool }

func (d discardWriter) Write(p []byte) (int, error) {
	if len(p) > 0 {
		*d.wrote = true
	}
	return len(p), nil
}

// TestHTTPValidation pins the API's input validation without running any
// campaign.
func TestHTTPValidation(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordConfig{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(coord, nil))
	defer srv.Close()
	client := &Client{Base: srv.URL}

	if _, err := client.Submit(SubmitRequest{Kind: "bogus"}); err == nil {
		t.Error("bogus kind accepted")
	}
	if _, err := client.Submit(SubmitRequest{Kind: KindInjection, Injection: &gefin.Config{}}); err == nil {
		t.Error("submission without workloads accepted")
	}
	if a, err := client.Claim("n"); err != nil || a != nil {
		t.Errorf("claim on empty service = %+v, %v", a, err)
	}
	if err := client.Renew("n", "nope", 0); err == nil {
		t.Error("renew on unknown campaign accepted")
	}
	if err := client.Complete("n", "nope", 0, 0, &ShardPayload{}); err == nil {
		t.Error("complete on unknown campaign accepted")
	}
}
