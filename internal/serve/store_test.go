package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"armsefi/internal/core/fault"
	"armsefi/internal/core/gefin"
)

func testManifest(t *testing.T, id string, shards int) *Manifest {
	t.Helper()
	man := &Manifest{
		Version:   StoreVersion,
		ID:        id,
		Kind:      KindInjection,
		Injection: &gefin.Config{Seed: 1, FaultsPerComponent: 2, Components: []fault.Component{fault.CompRegFile}},
		Workloads: []string{"crc32"},
		Created:   time.Unix(1700000000, 0).UTC(),
	}
	for i := 0; i < shards; i++ {
		man.Shards = append(man.Shards, Shard{Workload: "crc32", Lo: i, Hi: i + 1})
	}
	return man
}

func payload(t *testing.T, marker uint64) json.RawMessage {
	t.Helper()
	data, err := json.Marshal(&ShardPayload{InjMeta: &gefin.ShardMeta{GoldenCycles: marker}})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestStoreCrashRecovery is the crash-recovery table test: every row
// mutilates a campaign's log in a specific way and pins what Replay /
// Recover must do — drop only a torn tail, count duplicates with the
// first record winning, and refuse corruption or version skew outright.
func TestStoreCrashRecovery(t *testing.T) {
	cases := []struct {
		name string
		// prepare writes the log (and may corrupt it) and returns the
		// expected completed-shard count.
		prepare func(t *testing.T, s *Store, man *Manifest) int
		wantErr string // "" means recovery must succeed
		dups    int
		torn    bool
		cancel  bool
	}{
		{
			name: "clean log",
			prepare: func(t *testing.T, s *Store, man *Manifest) int {
				l, _ := s.OpenLog(man.ID)
				defer l.Close()
				mustAppend(t, l, 0, "a", payload(t, 10))
				mustAppend(t, l, 1, "a", payload(t, 10))
				return 2
			},
		},
		{
			name: "torn tail mid-line",
			prepare: func(t *testing.T, s *Store, man *Manifest) int {
				l, _ := s.OpenLog(man.ID)
				mustAppend(t, l, 0, "a", payload(t, 10))
				l.Close()
				// A crash mid-append leaves a prefix of the next record
				// with no terminating newline.
				appendRaw(t, s.logPath(man.ID), `{"v":1,"type":"shard","shard":1,"pay`)
				return 1
			},
			torn: true,
		},
		{
			name: "torn tail garbage line",
			prepare: func(t *testing.T, s *Store, man *Manifest) int {
				l, _ := s.OpenLog(man.ID)
				mustAppend(t, l, 0, "a", payload(t, 10))
				l.Close()
				appendRaw(t, s.logPath(man.ID), "not json at all\n")
				return 1
			},
			torn: true,
		},
		{
			name: "torn tail checksum mismatch",
			prepare: func(t *testing.T, s *Store, man *Manifest) int {
				l, _ := s.OpenLog(man.ID)
				mustAppend(t, l, 0, "a", payload(t, 10))
				l.Close()
				// A parseable record whose CRC does not match its body:
				// bit rot or a partially flushed page.
				rec := logRecord{V: StoreVersion, Type: "shard", Shard: 1, Payload: payload(t, 11), CRC: 12345}
				line, _ := json.Marshal(&rec)
				appendRaw(t, s.logPath(man.ID), string(line)+"\n")
				return 1
			},
			torn: true,
		},
		{
			name: "duplicate shard completion first wins",
			prepare: func(t *testing.T, s *Store, man *Manifest) int {
				l, _ := s.OpenLog(man.ID)
				defer l.Close()
				mustAppend(t, l, 0, "a", payload(t, 10))
				mustAppend(t, l, 0, "b", payload(t, 99)) // late double-completion
				return 1
			},
			dups: 1,
		},
		{
			name: "corruption before the tail",
			prepare: func(t *testing.T, s *Store, man *Manifest) int {
				appendRaw(t, s.logPath(man.ID), "garbage\n")
				l, _ := s.OpenLog(man.ID)
				defer l.Close()
				mustAppend(t, l, 0, "a", payload(t, 10))
				return 0
			},
			wantErr: "before the tail",
		},
		{
			name: "log record version skew",
			prepare: func(t *testing.T, s *Store, man *Manifest) int {
				rec := logRecord{V: StoreVersion + 1, Type: "shard", Shard: 0, Payload: payload(t, 10)}
				rec.CRC = rec.checksum()
				line, _ := json.Marshal(&rec)
				appendRaw(t, s.logPath(man.ID), string(line)+"\n")
				return 0
			},
			wantErr: "version skew",
		},
		{
			name: "unknown record type",
			prepare: func(t *testing.T, s *Store, man *Manifest) int {
				rec := logRecord{V: StoreVersion, Type: "mystery"}
				rec.CRC = rec.checksum()
				line, _ := json.Marshal(&rec)
				appendRaw(t, s.logPath(man.ID), string(line)+"\n")
				l, _ := s.OpenLog(man.ID)
				defer l.Close()
				mustAppend(t, l, 0, "a", payload(t, 10))
				return 0
			},
			wantErr: "unknown record type",
		},
		{
			name: "shard outside manifest",
			prepare: func(t *testing.T, s *Store, man *Manifest) int {
				l, _ := s.OpenLog(man.ID)
				defer l.Close()
				mustAppend(t, l, 7, "a", payload(t, 10))
				mustAppend(t, l, 0, "a", payload(t, 10))
				return 0
			},
			wantErr: "outside manifest",
		},
		{
			name: "cancellation event",
			prepare: func(t *testing.T, s *Store, man *Manifest) int {
				l, _ := s.OpenLog(man.ID)
				defer l.Close()
				mustAppend(t, l, 0, "a", payload(t, 10))
				if err := l.AppendEvent("cancelled"); err != nil {
					t.Fatal(err)
				}
				return 1
			},
			cancel: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			man := testManifest(t, "c1", 3)
			if err := s.Create(man); err != nil {
				t.Fatal(err)
			}
			want := tc.prepare(t, s, man)
			rep, err := s.Recover(man.ID, man)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want contains %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Done) != want {
				t.Errorf("completed shards = %d, want %d", len(rep.Done), want)
			}
			if rep.Duplicates != tc.dups {
				t.Errorf("duplicates = %d, want %d", rep.Duplicates, tc.dups)
			}
			if rep.Cancelled != tc.cancel {
				t.Errorf("cancelled = %v, want %v", rep.Cancelled, tc.cancel)
			}
			if tc.torn {
				if rep.TornBytes == 0 {
					t.Error("torn tail not reported")
				}
				// Recover truncated the tail: the log must now replay
				// cleanly and accept new appends.
				rep2, err := s.Replay(man.ID, man)
				if err != nil {
					t.Fatalf("replay after recovery: %v", err)
				}
				if rep2.TornBytes != 0 {
					t.Error("torn tail survived recovery")
				}
				l, err := s.OpenLog(man.ID)
				if err != nil {
					t.Fatal(err)
				}
				mustAppend(t, l, 2, "c", payload(t, 10))
				l.Close()
				rep3, err := s.Replay(man.ID, man)
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := rep3.Done[2]; !ok {
					t.Error("append after recovery lost")
				}
			}
			if tc.dups > 0 {
				// First record wins: the marker of the first append, not
				// the duplicate's, must be durable.
				var p ShardPayload
				if err := json.Unmarshal(rep.Done[0], &p); err != nil {
					t.Fatal(err)
				}
				if p.InjMeta == nil || p.InjMeta.GoldenCycles != 10 {
					t.Errorf("duplicate overwrote the first record: %+v", p.InjMeta)
				}
			}
		})
	}
}

func mustAppend(t *testing.T, l *Log, shard int, node string, payload json.RawMessage) {
	t.Helper()
	if err := l.AppendShard(shard, node, int64(shard)+1, payload); err != nil {
		t.Fatal(err)
	}
}

func appendRaw(t *testing.T, path, s string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(s); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestStoreManifest pins manifest durability rules: bad ids rejected,
// double-create rejected, version skew rejected, id/directory mismatch
// rejected, List ordered by creation time.
func TestStoreManifest(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "a/b", `a\b`, "a.b"} {
		man := testManifest(t, id, 1)
		if err := s.Create(man); err == nil {
			t.Errorf("id %q accepted", id)
		}
	}
	man := testManifest(t, "c1", 1)
	if err := s.Create(man); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(testManifest(t, "c1", 1)); err == nil {
		t.Error("double create accepted")
	}

	// A manifest written by a future daemon must be refused, not misread.
	skew := testManifest(t, "c2", 1)
	if err := s.Create(skew); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(s.manifest("c2"))
	raw = []byte(strings.Replace(string(raw), `"version": 1`, `"version": 99`, 1))
	if err := os.WriteFile(s.manifest("c2"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadManifest("c2"); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version skew not refused: %v", err)
	}

	// A manifest whose id disagrees with its directory is refused.
	old := testManifest(t, "c3", 1)
	if err := s.Create(old); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(s.manifest("c3"))
	raw = []byte(strings.Replace(string(raw), `"id": "c3"`, `"id": "cX"`, 1))
	if err := os.WriteFile(s.manifest("c3"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadManifest("c3"); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Errorf("id mismatch not refused: %v", err)
	}

	// List skips non-campaign directories and orders by Created.
	if err := os.MkdirAll(filepath.Join(s.Root(), "not-a-campaign"), 0o755); err != nil {
		t.Fatal(err)
	}
	late := testManifest(t, "b1", 1)
	late.Created = man.Created.Add(time.Hour)
	if err := s.Create(late); err != nil {
		t.Fatal(err)
	}
	ids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "c1" || ids[1] != "b1" {
		t.Errorf("List = %v, want [c1 b1]", ids)
	}
}
