// Tests for the fleet observability layer: telemetry dedup under
// at-least-once delivery, winner-span filtering of the merged trace,
// straggler/stalled fleet health, and the end-to-end guarantee that a
// two-node campaign's merged fleet trace cross-checks exactly against
// its assembled Result.

package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"armsefi/internal/core/beam"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/gefin"
	"armsefi/internal/obs"
)

func injRecord(id string, shard int, node string, span int64, cls fault.Class) obs.Record {
	return obs.Record{
		Kind:     obs.KindInjection,
		Workload: "crc32",
		Comp:     fault.CompRegFile,
		Campaign: id,
		Shard:    shard,
		Node:     node,
		Span:     span,
		Class:    cls,
	}
}

func traceRecords(t *testing.T, c *Coordinator, id string) []obs.Record {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteTrace(id, &buf); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestTelemetryDedup pins at-least-once safety: re-delivering a batch
// (worker retry after a lost ack) must not duplicate its records in the
// merged trace, and a stale sequence number must not regress the cursor.
func TestTelemetryDedup(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, 2)
	id, _ := submitTiny(t, c)

	batch := &TelemetryBatch{
		Node:    "n1",
		Seq:     1,
		Records: []obs.Record{injRecord(id, 0, "n1", 1, fault.ClassSDC)},
		Items:   1,
	}
	if err := c.Telemetry(batch); err != nil {
		t.Fatal(err)
	}
	if err := c.Telemetry(batch); err != nil {
		t.Fatalf("redelivered batch rejected: %v", err)
	}
	// A different payload under an already-applied sequence is also a
	// duplicate: the sequence number is the identity.
	if err := c.Telemetry(&TelemetryBatch{
		Node:    "n1",
		Seq:     1,
		Records: []obs.Record{injRecord(id, 0, "n1", 1, fault.ClassMasked)},
	}); err != nil {
		t.Fatal(err)
	}
	data, err := c.cfg.Store.ReadTrace(id)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("merged trace has %d records after duplicate delivery, want 1", len(recs))
	}
	if recs[0].Class != fault.ClassSDC {
		t.Fatalf("duplicate overwrote the first delivery: %+v", recs[0])
	}

	// Fresh sequence applies.
	if err := c.Telemetry(&TelemetryBatch{
		Node:    "n1",
		Seq:     2,
		Records: []obs.Record{injRecord(id, 0, "n1", 1, fault.ClassMasked)},
	}); err != nil {
		t.Fatal(err)
	}
	data, _ = c.cfg.Store.ReadTrace(id)
	if recs, _ = obs.ReadRecords(bytes.NewReader(data)); len(recs) != 2 {
		t.Fatalf("merged trace has %d records after seq 2, want 2", len(recs))
	}
}

// TestTelemetryCursorsSurviveRestart pins that a restarted coordinator
// still deduplicates batches a worker resends from before the restart.
func TestTelemetryCursorsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	c1, err := NewCoordinator(CoordConfig{Store: store, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := submitTiny(t, c1)
	batch := &TelemetryBatch{Node: "n1", Seq: 3,
		Records: []obs.Record{injRecord(id, 0, "n1", 1, fault.ClassSDC)}}
	if err := c1.Telemetry(batch); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCoordinator(CoordConfig{Store: store2, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Telemetry(batch); err != nil {
		t.Fatal(err)
	}
	data, _ := c2.cfg.Store.ReadTrace(id)
	if recs, _ := obs.ReadRecords(bytes.NewReader(data)); len(recs) != 1 {
		t.Fatalf("restarted coordinator re-applied an old batch: %d records, want 1", len(recs))
	}
}

// TestWinnerSpanFiltering pins the double-execution story: node A runs a
// shard, its lease expires, node B re-runs it and completes. Both nodes'
// records land in the merged trace, but WriteTrace keeps only the
// winning span's experiments — so trace counts match the Result even
// though the shard executed twice.
func TestWinnerSpanFiltering(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, 2)
	id, shards := submitTiny(t, c)
	if shards != 2 {
		t.Fatalf("want 2 shards, got %d", shards)
	}

	a1, _ := c.Claim("nodeA")
	a2, _ := c.Claim("nodeA")
	if a1 == nil || a2 == nil {
		t.Fatal("nodeA could not claim both shards")
	}
	// Node A ships records for both shards, then goes silent.
	if err := c.Telemetry(&TelemetryBatch{Node: "nodeA", Seq: 1, Records: []obs.Record{
		injRecord(id, a1.Shard, "nodeA", a1.Span, fault.ClassSDC),
		injRecord(id, a2.Shard, "nodeA", a2.Span, fault.ClassMasked),
	}}); err != nil {
		t.Fatal(err)
	}

	clk.Advance(35 * time.Second) // past the 30s TTL: both leases expire
	b1, _ := c.Claim("nodeB")
	b2, _ := c.Claim("nodeB")
	if b1 == nil || b2 == nil {
		t.Fatal("nodeB could not claim the requeued shards")
	}
	if b1.Span == a1.Span || b1.Span == a2.Span {
		t.Fatalf("re-claim reused a span: %d", b1.Span)
	}
	if err := c.Telemetry(&TelemetryBatch{Node: "nodeB", Seq: 1, Records: []obs.Record{
		injRecord(id, b1.Shard, "nodeB", b1.Span, fault.ClassSDC),
		injRecord(id, b2.Shard, "nodeB", b2.Span, fault.ClassMasked),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("nodeB", id, b1.Shard, b1.Span, fakePayload(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("nodeB", id, b2.Shard, b2.Span, fakePayload(t)); err != nil {
		t.Fatal(err)
	}

	recs := traceRecords(t, c, id)
	var exp, shardEvents int
	spans := map[int64]bool{b1.Span: true, b2.Span: true}
	for _, rec := range recs {
		switch rec.Kind {
		case obs.KindInjection:
			exp++
			if !spans[rec.Span] {
				t.Errorf("losing-span record survived the filter: %+v", rec)
			}
			if rec.Node != "nodeB" {
				t.Errorf("record from dead node survived: %+v", rec)
			}
		case obs.KindShard:
			shardEvents++
		}
	}
	if exp != 2 {
		t.Errorf("filtered trace has %d experiment records, want 2", exp)
	}
	// 4 claims + 2 requeues + 2 completes, all preserved for forensics.
	if shardEvents != 8 {
		t.Errorf("filtered trace has %d shard events, want 8", shardEvents)
	}
}

// TestFleetStatus pins straggler and stalled detection against the fake
// clock: a lease held (and renewed) past the straggler threshold is
// flagged; a node quiet past the stalled threshold is flagged.
func TestFleetStatus(t *testing.T) {
	clk := newFakeClock()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(CoordConfig{
		Store:          store,
		LeaseTTL:       30 * time.Second,
		StragglerAfter: 60 * time.Second,
		StalledAfter:   15 * time.Second,
		Now:            clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := submitTiny(t, c)

	a, _ := c.Claim("n1")
	if a == nil {
		t.Fatal("claim failed")
	}
	// n2 reports telemetry once at t=0, then goes quiet.
	if err := c.Telemetry(&TelemetryBatch{Node: "n2", Seq: 1, Rate: 2.5, Items: 10, Shards: 1}); err != nil {
		t.Fatal(err)
	}

	fs := c.Fleet()
	if len(fs.Campaigns) != 1 || len(fs.Campaigns[0].Stragglers) != 0 {
		t.Fatalf("fresh claim already a straggler: %+v", fs.Campaigns)
	}

	// n1 keeps its lease alive across 65s of wall time.
	for _, step := range []time.Duration{20 * time.Second, 20 * time.Second, 15 * time.Second} {
		clk.Advance(step)
		if err := c.Renew("n1", id, a.Shard); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(10 * time.Second) // t=65: running 65s > 60s threshold

	fs = c.Fleet()
	strag := fs.Campaigns[0].Stragglers
	if len(strag) != 1 || strag[0].Shard != a.Shard || strag[0].Node != "n1" {
		t.Fatalf("stragglers = %+v, want shard %d on n1", strag, a.Shard)
	}
	if strag[0].RunningMS < 60_000 {
		t.Errorf("straggler running %dms, want >= 60000", strag[0].RunningMS)
	}
	nodes := map[string]NodeStatus{}
	for _, n := range fs.Nodes {
		nodes[n.Node] = n
	}
	if n1, ok := nodes["n1"]; !ok || n1.Stalled || n1.LeasesHeld != 1 {
		t.Errorf("n1 status %+v, want live with 1 lease", nodes["n1"])
	}
	if n2, ok := nodes["n2"]; !ok || !n2.Stalled {
		t.Errorf("n2 status %+v, want stalled", nodes["n2"])
	} else if n2.Rate != 2.5 || n2.Items != 10 || n2.Shards != 1 {
		t.Errorf("n2 telemetry %+v, want rate 2.5 items 10 shards 1", n2)
	}
	if c.countStragglers() != 1 {
		t.Errorf("countStragglers = %d, want 1", c.countStragglers())
	}
	if c.countStalled() == 0 {
		t.Error("countStalled = 0, want >= 1")
	}
}

// flakySink fails the first n deliveries, then forwards to the
// coordinator — the worker-retry path.
type flakySink struct {
	mu   sync.Mutex
	fail int
	c    *Coordinator
}

func (f *flakySink) Telemetry(b *TelemetryBatch) error {
	f.mu.Lock()
	if f.fail > 0 {
		f.fail--
		f.mu.Unlock()
		return errors.New("transient")
	}
	f.mu.Unlock()
	return f.c.Telemetry(b)
}

// TestShipperRetry pins the shipper's at-least-once delivery: a failed
// batch is retained and resent with the same sequence number, and the
// coordinator applies every record exactly once.
func TestShipperRetry(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, 2)
	id, _ := submitTiny(t, c)
	sink := &flakySink{fail: 1, c: c}
	s := NewShipper("n1", sink, time.Second)

	s.EmitRecord(injRecord(id, 0, "n1", 1, fault.ClassSDC))
	if err := s.Flush(); err == nil {
		t.Fatal("first flush should have failed")
	}
	s.EmitRecord(injRecord(id, 1, "n1", 1, fault.ClassMasked))
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	data, _ := c.cfg.Store.ReadTrace(id)
	recs, err := obs.ReadRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("merged trace has %d records after retry, want 2", len(recs))
	}
	// Drained shipper stays drained: no heartbeat batches pile up.
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

// runFederatedCampaign drives a two-node federated campaign against a
// real HTTP coordinator and returns the client and campaign id once the
// campaign is complete and both shippers are drained.
func runFederatedCampaign(t *testing.T, req SubmitRequest) (*Client, string) {
	t.Helper()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	observer := obs.New(obs.Options{})
	coord, err := NewCoordinator(CoordConfig{Store: store, LeaseTTL: time.Minute, Obs: observer})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(coord, observer.Registry()))
	t.Cleanup(srv.Close)
	client := &Client{Base: srv.URL}

	id, err := client.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	var shippers []*Shipper
	workerErrs := make(chan error, 2)
	for _, node := range []string{"node-a", "node-b"} {
		workerObs := obs.New(obs.Options{})
		shipper := NewShipper(node, client, 20*time.Millisecond)
		workerObs.Tee(shipper)
		shippers = append(shippers, shipper)
		wg.Add(2)
		go func() {
			defer wg.Done()
			shipper.Run(ctx)
		}()
		go func(node string, o *obs.Observer, src Source) {
			defer wg.Done()
			_, err := RunWorker(ctx, WorkerConfig{
				Node:         node,
				Source:       src,
				Obs:          o,
				PollInterval: 10 * time.Millisecond,
			})
			workerErrs <- err
		}(node, workerObs, shipper.WrapSource(client))
	}

	final, err := client.WaitComplete(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateComplete {
		t.Fatalf("final state %s", final.State)
	}
	cancel()
	wg.Wait()
	close(workerErrs)
	for err := range workerErrs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range shippers {
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	return client, id
}

// TestFederatedTraceCrossCheckInjection is the closure guarantee for
// injection campaigns: a two-node campaign's merged fleet trace, fetched
// from the coordinator, must agree exactly — record counts and per-class
// tallies — with the assembled distributed Result.
func TestFederatedTraceCrossCheckInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real injection campaigns")
	}
	cfg := gefin.Config{
		Seed:               55,
		FaultsPerComponent: 3,
		Components:         []fault.Component{fault.CompRegFile, fault.CompDTLB},
		Workers:            1,
	}
	client, id := runFederatedCampaign(t, SubmitRequest{
		Kind:      KindInjection,
		Injection: &cfg,
		Workloads: []string{"crc32"},
		ShardSize: 2, // odd split: shards of 2,2,2 across 6 plan slots
	})

	trace, err := client.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ReadSummary(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.InjectionResults(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Workloads {
		for _, cr := range w.Components {
			c := sum.Component(obs.KindInjection, w.Workload, cr.Comp)
			if c.Records != cr.N {
				t.Errorf("%s/%s: trace has %d records, result expects %d", w.Workload, cr.Comp, c.Records, cr.N)
			}
			for _, cls := range fault.Classes() {
				if c.Counts[cls] != cr.Counts[cls] {
					t.Errorf("%s/%s/%s: trace %d, result %d", w.Workload, cr.Comp, cls, c.Counts[cls], cr.Counts[cls])
				}
			}
		}
	}
	// Every federated record is span-stamped and campaign-correlated.
	recs, _ := obs.ReadRecords(bytes.NewReader(trace))
	for _, rec := range recs {
		if rec.Campaign != id {
			t.Fatalf("uncorrelated record in merged trace: %+v", rec)
		}
		if rec.Kind == obs.KindInjection && rec.Span == 0 {
			t.Fatalf("injection record without a span: %+v", rec)
		}
	}
}

// TestFederatedTraceCrossCheckBeam extends the closure guarantee to beam
// campaigns: the per-class weighted event sums recomputed from the
// merged two-node trace must be bit-identical to the distributed
// Result's ModeledEvents.
func TestFederatedTraceCrossCheckBeam(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real beam campaigns")
	}
	cfg := beam.Config{Seed: 99, BeamHours: 1, StrikesPerComponent: 2, Workers: 1}
	client, id := runFederatedCampaign(t, SubmitRequest{
		Kind:      KindBeam,
		Beam:      &cfg,
		Workloads: []string{"crc32"},
	})

	trace, err := client.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ReadSummary(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.BeamResults(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Workloads {
		records := 0
		for _, comp := range fault.Components() {
			records += sum.Component(obs.KindStrike, w.Workload, comp).Records
		}
		if records != w.SimulatedStrikes {
			t.Errorf("%s: trace has %d strikes, result simulated %d", w.Workload, records, w.SimulatedStrikes)
		}
		modeled := sum.ModeledEvents(w.Workload)
		for _, cls := range fault.Classes() {
			if modeled[cls] != w.ModeledEvents[cls] {
				t.Errorf("%s/%s: trace models %.17g events, result %.17g (not bit-identical)",
					w.Workload, cls, modeled[cls], w.ModeledEvents[cls])
			}
		}
	}
}
