// Campaign coordinator: owns the durable store, admits queued campaigns
// against a bounded number of active slots, leases shards to worker
// nodes (local goroutines and remote daemons use the same claim / renew
// / complete path), requeues the shards of dead nodes when their leases
// expire, and assembles completed campaigns into engine Results that are
// bit-identical to an uninterrupted in-process run.

package serve

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"armsefi/internal/bench"
	"armsefi/internal/core/beam"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/gefin"
	"armsefi/internal/obs"
)

// Campaign states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateComplete  = "complete"
	StateCancelled = "cancelled"
)

// Defaults for CoordConfig zero values.
const (
	DefaultMaxActive = 2
	DefaultLeaseTTL  = 30 * time.Second
	// DefaultStalledAfter is how long a telemetry-reporting node may go
	// quiet before the fleet view flags it stalled.
	DefaultStalledAfter = 15 * time.Second
)

// CoordConfig parameterises a Coordinator.
type CoordConfig struct {
	Store *Store
	// MaxActive bounds how many campaigns run concurrently; submissions
	// beyond it wait in the admission queue. Zero picks DefaultMaxActive.
	MaxActive int
	// LeaseTTL is how long a claimed shard stays assigned to a node
	// without a renewal before it is requeued for another node. Zero
	// picks DefaultLeaseTTL.
	LeaseTTL time.Duration
	// StragglerAfter is how long a shard execution may run before the
	// fleet view flags it a straggler (the lease is still honoured — a
	// straggler is slow, not dead). Zero picks 3x LeaseTTL.
	StragglerAfter time.Duration
	// StalledAfter is how long a node may go without telemetry or lease
	// activity before the fleet view flags it stalled. Zero picks
	// DefaultStalledAfter.
	StalledAfter time.Duration
	// ConvTargetMargin / ConvConfidence are the coordinator's view rule:
	// merged convergence views of campaigns that set no target margin of
	// their own are judged against these (campaignd -target-margin /
	// -confidence). Zero margin leaves Met unjudged; zero confidence
	// defaults to 0.99.
	ConvTargetMargin float64
	ConvConfidence   float64
	// Obs receives service metrics (queue depth, leases, shards/sec,
	// fleet health) and shard lifecycle trace records. Nil disables
	// instrumentation.
	Obs *obs.Observer
	// Now is the clock; nil picks time.Now. Tests inject a fake clock to
	// drive lease expiry deterministically.
	Now func() time.Time
}

type lease struct {
	node    string
	span    int64 // coordinator-minted span id of this execution
	expires time.Time
	started time.Time
}

type campaign struct {
	man    *Manifest
	log    *Log
	state  string
	done   map[int]json.RawMessage
	nodes  map[int]string
	winner map[int]int64 // span of the accepted completion per done shard
	pend   []int         // shard indices neither done nor leased, in claim order
	leases map[int]*lease
}

// nodeHealth is the coordinator's view of one worker node, fed by
// telemetry batches and lease activity.
type nodeHealth struct {
	lastSeen     time.Time
	rate         float64
	items        int64
	shards       int64
	ladderBytes  int64
	ladderShared int64
}

// pruneTally is a campaign's observed predicted/deduplicated/simulated
// injection split, accumulated from federated trace records.
type pruneTally struct {
	predicted int
	simulated int
	deduped   int
}

// Coordinator schedules campaigns over the durable store. All methods
// are safe for concurrent use.
type Coordinator struct {
	cfg CoordConfig

	mu       sync.Mutex
	camps    map[string]*campaign
	order    []string // submission order (store order on resume)
	nextSpan int64    // next span id to mint (resumes past replayed spans)

	// tmu guards the telemetry state: the merged per-campaign fleet
	// traces, the per-node batch cursors and health, and the observed
	// outcome tallies. It is ordered after mu (mu may be held when tmu is
	// taken, never the reverse), so shard-event tracing under mu cannot
	// deadlock against telemetry ingestion.
	tmu      sync.Mutex
	traceSeq int64 // merged-trace sequence numbers, arrival order
	cursors  map[string]int64
	nodes    map[string]*nodeHealth
	tallies  map[string]map[fault.Class]int
	prunes   map[string]*pruneTally
	// conv holds each node's latest estimator snapshots per campaign:
	// campaign id -> node -> estimator key -> snapshot. Merged on read.
	conv map[string]map[string]map[obs.ConvKey]obs.ConvSnapshot
}

// NewCoordinator opens the store, replays every stored campaign, and
// resumes the incomplete ones: their undone shards go back to pending,
// exactly as if the shards had simply not been claimed yet.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: coordinator needs a store")
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = DefaultMaxActive
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.StragglerAfter <= 0 {
		cfg.StragglerAfter = 3 * cfg.LeaseTTL
	}
	if cfg.StalledAfter <= 0 {
		cfg.StalledAfter = DefaultStalledAfter
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Coordinator{
		cfg:      cfg,
		camps:    make(map[string]*campaign),
		nextSpan: 1,
		cursors:  cfg.Store.LoadTelemetryCursors(),
		nodes:    make(map[string]*nodeHealth),
		tallies:  make(map[string]map[fault.Class]int),
		prunes:   make(map[string]*pruneTally),
		conv:     make(map[string]map[string]map[obs.ConvKey]obs.ConvSnapshot),
	}
	ids, err := cfg.Store.List()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		man, err := cfg.Store.LoadManifest(id)
		if err != nil {
			return nil, err
		}
		rep, err := cfg.Store.Recover(id, man)
		if err != nil {
			return nil, err
		}
		camp := &campaign{man: man, done: rep.Done, nodes: rep.Nodes, winner: rep.Spans, leases: make(map[int]*lease)}
		if camp.winner == nil {
			camp.winner = make(map[int]int64)
		}
		// Span minting resumes past every durably recorded span, so a
		// restarted coordinator never reissues a span id.
		for _, sp := range camp.winner {
			if sp >= c.nextSpan {
				c.nextSpan = sp + 1
			}
		}
		switch {
		case rep.Cancelled:
			camp.state = StateCancelled
		case len(rep.Done) == len(man.Shards):
			camp.state = StateComplete
		default:
			camp.state = StateQueued
			for i := range man.Shards {
				if _, ok := rep.Done[i]; !ok {
					camp.pend = append(camp.pend, i)
				}
			}
		}
		c.camps[id] = camp
		c.order = append(c.order, id)
	}
	cfg.Obs.ObserveService(
		func() float64 { return float64(c.countState(StateQueued)) },
		func() float64 { return float64(c.countState(StateRunning)) },
		func() float64 { return float64(c.countLeases()) },
	)
	cfg.Obs.ObserveFleet(
		func() float64 { return float64(c.countStragglers()) },
		func() float64 { return float64(c.countStalled()) },
	)
	return c, nil
}

// touchNode refreshes a node's last-seen time from lease activity.
// Callers may hold c.mu (tmu is ordered after mu).
func (c *Coordinator) touchNode(node string) {
	c.tmu.Lock()
	nh := c.nodes[node]
	if nh == nil {
		nh = &nodeHealth{}
		c.nodes[node] = nh
	}
	nh.lastSeen = c.cfg.Now()
	c.tmu.Unlock()
}

// appendTraceRecords re-sequences records in arrival order and appends
// them to the campaign's merged fleet trace. Per-node batches arrive in
// each node's emission order, so within one worker goroutine the merged
// trace preserves emission order — the property Summarize's Seq sort
// relies on for bit-identical beam event sums. Best-effort: the merged
// trace is an observability artifact, not the durable record.
func (c *Coordinator) appendTraceRecords(id string, recs []obs.Record) {
	if len(recs) == 0 {
		return
	}
	c.tmu.Lock()
	defer c.tmu.Unlock()
	var buf []byte
	for i := range recs {
		c.traceSeq++
		recs[i].Seq = c.traceSeq
		line, err := json.Marshal(recs[i])
		if err != nil {
			continue
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	_ = c.cfg.Store.AppendTrace(id, buf)
}

// traceShardEvent mirrors one coordinator-side shard lifecycle event
// into the campaign's merged fleet trace.
func (c *Coordinator) traceShardEvent(id string, sh Shard, shard int, node, event string, span int64, wall time.Duration) {
	c.appendTraceRecords(id, []obs.Record{{
		Kind:     obs.KindShard,
		Workload: sh.Workload,
		Campaign: id,
		Shard:    shard,
		Node:     node,
		Span:     span,
		Event:    event,
		Items:    sh.Items(),
		WallNS:   wall.Nanoseconds(),
	}})
}

func (c *Coordinator) countState(state string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, camp := range c.camps {
		if camp.state == state {
			n++
		}
	}
	return n
}

func (c *Coordinator) countLeases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, camp := range c.camps {
		n += len(camp.leases)
	}
	return n
}

// BuildManifest validates a submission and derives its deterministic
// shard table. shardSize bounds injection shard length in plan slots
// (zero picks one shard per component); beam campaigns always shard at
// the component-chain boundary.
func BuildManifest(kind string, inj *gefin.Config, bm *beam.Config, workloads []string, shardSize int) (*Manifest, error) {
	if len(workloads) == 0 {
		return nil, fmt.Errorf("serve: a campaign needs at least one workload")
	}
	for _, w := range workloads {
		if _, ok := bench.ByName(w); !ok {
			return nil, fmt.Errorf("serve: unknown workload %q", w)
		}
	}
	man := &Manifest{Version: StoreVersion, Kind: kind, Workloads: workloads}
	switch kind {
	case KindInjection:
		if inj == nil {
			return nil, fmt.Errorf("serve: injection campaign needs an injection config")
		}
		if inj.Exhaustive {
			return nil, fmt.Errorf("serve: exhaustive sweeps run locally only (the plan is enumerated from each workload's liveness replay, so shard ranges cannot be cut at submission time)")
		}
		man.Injection = inj
		planLen := gefin.PlanLen(*inj)
		comps := len(inj.Components)
		if comps == 0 {
			comps = fault.NumComponents
		}
		if shardSize <= 0 {
			shardSize = planLen / comps // one shard per component
		}
		for _, w := range workloads {
			for lo := 0; lo < planLen; lo += shardSize {
				hi := lo + shardSize
				if hi > planLen {
					hi = planLen
				}
				man.Shards = append(man.Shards, Shard{Workload: w, Lo: lo, Hi: hi})
			}
		}
	case KindBeam:
		if bm == nil {
			return nil, fmt.Errorf("serve: beam campaign needs a beam config")
		}
		man.Beam = bm
		for _, w := range workloads {
			for ci := 0; ci < beam.ShardsPerWorkload; ci++ {
				man.Shards = append(man.Shards, Shard{Workload: w, Lo: ci, Hi: ci + 1})
			}
		}
	default:
		return nil, fmt.Errorf("serve: unknown campaign kind %q", kind)
	}
	return man, nil
}

// Submit durably creates a campaign and queues it for admission. An
// empty manifest ID is assigned a fresh one; the assigned ID is
// returned.
func (c *Coordinator) Submit(man *Manifest) (string, error) {
	if man.ID == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "", fmt.Errorf("serve: %w", err)
		}
		man.ID = "c" + hex.EncodeToString(b[:])
	}
	man.Created = c.cfg.Now().UTC()
	if err := c.cfg.Store.Create(man); err != nil {
		return "", err
	}
	camp := &campaign{
		man:    man,
		state:  StateQueued,
		done:   make(map[int]json.RawMessage),
		nodes:  make(map[int]string),
		winner: make(map[int]int64),
		leases: make(map[int]*lease),
	}
	for i := range man.Shards {
		camp.pend = append(camp.pend, i)
	}
	c.mu.Lock()
	c.camps[man.ID] = camp
	c.order = append(c.order, man.ID)
	c.mu.Unlock()
	return man.ID, nil
}

// sweepLocked requeues the shards of expired leases and admits queued
// campaigns into free active slots. Callers hold c.mu.
func (c *Coordinator) sweepLocked() {
	now := c.cfg.Now()
	active := 0
	for _, id := range c.order {
		camp := c.camps[id]
		if camp.state != StateRunning {
			continue
		}
		for shard, l := range camp.leases {
			if now.After(l.expires) {
				delete(camp.leases, shard)
				camp.pend = append(camp.pend, shard)
				c.cfg.Obs.Lease("expired")
				sh := camp.man.Shards[shard]
				c.cfg.Obs.ShardEvent(id, sh.Workload, l.node,
					"requeued", shard, sh.Items(), l.span, now.Sub(l.started))
				c.traceShardEvent(id, sh, shard, l.node, "requeued", l.span, now.Sub(l.started))
			}
		}
		active++
	}
	for _, id := range c.order {
		if active >= c.cfg.MaxActive {
			break
		}
		camp := c.camps[id]
		if camp.state == StateQueued {
			camp.state = StateRunning
			active++
		}
	}
}

// Assignment is a leased shard handed to a worker node: everything the
// node needs to execute the shard independently (the configs are small;
// shipping them per-assignment keeps workers stateless).
type Assignment struct {
	Campaign  string        `json:"campaign"`
	Kind      string        `json:"kind"`
	Injection *gefin.Config `json:"injection,omitempty"`
	Beam      *beam.Config  `json:"beam,omitempty"`
	Shard     int           `json:"shard"`
	Workload  string        `json:"workload"`
	Lo        int           `json:"lo"`
	Hi        int           `json:"hi"`
	// LeaseMS is the lease TTL in milliseconds; the node must renew
	// comfortably within it or the shard is requeued.
	LeaseMS int64 `json:"lease_ms"`
	// Span is the coordinator-minted span id of this execution; the node
	// stamps it on every trace record the shard emits and echoes it back
	// on Complete.
	Span int64 `json:"span"`
}

// Claim leases the next pending shard to node, preferring earlier-
// submitted campaigns. It returns nil when nothing is claimable (no
// admitted campaign has pending shards).
func (c *Coordinator) Claim(node string) (*Assignment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	now := c.cfg.Now()
	for _, id := range c.order {
		camp := c.camps[id]
		if camp.state != StateRunning || len(camp.pend) == 0 {
			continue
		}
		shard := camp.pend[0]
		camp.pend = camp.pend[1:]
		span := c.nextSpan
		c.nextSpan++
		camp.leases[shard] = &lease{node: node, span: span, expires: now.Add(c.cfg.LeaseTTL), started: now}
		sh := camp.man.Shards[shard]
		c.cfg.Obs.Lease("granted")
		c.cfg.Obs.ShardEvent(id, sh.Workload, node, "claimed", shard, sh.Items(), span, 0)
		c.traceShardEvent(id, sh, shard, node, "claimed", span, 0)
		c.touchNode(node)
		return &Assignment{
			Campaign:  id,
			Kind:      camp.man.Kind,
			Injection: camp.man.Injection,
			Beam:      camp.man.Beam,
			Shard:     shard,
			Workload:  sh.Workload,
			Lo:        sh.Lo,
			Hi:        sh.Hi,
			LeaseMS:   c.cfg.LeaseTTL.Milliseconds(),
			Span:      span,
		}, nil
	}
	return nil, nil
}

// Renew extends node's lease on a shard. Renewing a lease that has
// already been requeued (or reassigned) fails — the node must abandon
// the shard; its eventual Complete would be a harmless duplicate.
func (c *Coordinator) Renew(node, id string, shard int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	camp, ok := c.camps[id]
	if !ok {
		return fmt.Errorf("serve: unknown campaign %s", id)
	}
	l, ok := camp.leases[shard]
	if !ok || l.node != node {
		return fmt.Errorf("serve: node %s holds no lease on %s shard %d", node, id, shard)
	}
	l.expires = c.cfg.Now().Add(c.cfg.LeaseTTL)
	c.cfg.Obs.Lease("renewed")
	c.touchNode(node)
	return nil
}

// Complete durably records a shard result. It is idempotent: a
// completion for an already-done shard (a node finishing after its lease
// expired and another node re-ran the shard) is acknowledged and
// discarded — by determinism the payloads are identical, and the first
// durable record wins. span is the Assignment span the node is echoing
// back; the accepted span becomes the shard's winner, and WriteTrace
// filters the merged trace down to winning executions.
func (c *Coordinator) Complete(node, id string, shard int, span int64, payload *ShardPayload) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	camp, ok := c.camps[id]
	if !ok {
		return fmt.Errorf("serve: unknown campaign %s", id)
	}
	if camp.state == StateCancelled {
		return nil // late completion of a cancelled campaign: drop
	}
	if shard < 0 || shard >= len(camp.man.Shards) {
		return fmt.Errorf("serve: shard %d outside campaign %s", shard, id)
	}
	if _, dup := camp.done[shard]; dup {
		return nil
	}
	if camp.log == nil {
		log, err := c.cfg.Store.OpenLog(id)
		if err != nil {
			return err
		}
		camp.log = log
	}
	// Durability first: the in-memory state only advances once the
	// record is fsync'd, so a crash between the two replays cleanly.
	if err := camp.log.AppendShard(shard, node, span, data); err != nil {
		return err
	}
	camp.done[shard] = data
	camp.nodes[shard] = node
	camp.winner[shard] = span
	var wall time.Duration
	if l, ok := camp.leases[shard]; ok {
		wall = c.cfg.Now().Sub(l.started)
		delete(camp.leases, shard)
	} else {
		// The shard was requeued (lease expired) but this node finished
		// first: pull it back out of pending.
		for i, p := range camp.pend {
			if p == shard {
				camp.pend = append(camp.pend[:i], camp.pend[i+1:]...)
				break
			}
		}
	}
	sh := camp.man.Shards[shard]
	c.cfg.Obs.ShardEvent(id, sh.Workload, node, "completed", shard, sh.Items(), span, wall)
	c.traceShardEvent(id, sh, shard, node, "completed", span, wall)
	c.touchNode(node)
	if len(camp.done) == len(camp.man.Shards) {
		camp.state = StateComplete
		camp.log.Close()
		camp.log = nil
	}
	return nil
}

// Cancel durably cancels a campaign; its pending shards are dropped and
// in-flight completions are discarded.
func (c *Coordinator) Cancel(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	camp, ok := c.camps[id]
	if !ok {
		return fmt.Errorf("serve: unknown campaign %s", id)
	}
	if camp.state == StateComplete || camp.state == StateCancelled {
		return fmt.Errorf("serve: campaign %s is already %s", id, camp.state)
	}
	if camp.log == nil {
		log, err := c.cfg.Store.OpenLog(id)
		if err != nil {
			return err
		}
		camp.log = log
	}
	if err := camp.log.AppendEvent("cancelled"); err != nil {
		return err
	}
	camp.state = StateCancelled
	camp.pend = nil
	camp.leases = make(map[int]*lease)
	camp.log.Close()
	camp.log = nil
	return nil
}

// LeaseStatus describes one live shard lease.
type LeaseStatus struct {
	Shard     int    `json:"shard"`
	Workload  string `json:"workload"`
	Node      string `json:"node"`
	ExpiresMS int64  `json:"expires_ms"`
}

// CampaignStatus is the public snapshot of one campaign.
type CampaignStatus struct {
	ID          string        `json:"id"`
	Kind        string        `json:"kind"`
	State       string        `json:"state"`
	Workloads   []string      `json:"workloads"`
	ShardsDone  int           `json:"shards_done"`
	ShardsTotal int           `json:"shards_total"`
	ItemsDone   int           `json:"items_done"`
	ItemsTotal  int           `json:"items_total"`
	Leases      []LeaseStatus `json:"leases,omitempty"`
	Created     time.Time     `json:"created"`
}

// Status snapshots one campaign.
func (c *Coordinator) Status(id string) (*CampaignStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	camp, ok := c.camps[id]
	if !ok {
		return nil, fmt.Errorf("serve: unknown campaign %s", id)
	}
	return c.statusLocked(id, camp), nil
}

// StatusAll snapshots every campaign in submission order.
func (c *Coordinator) StatusAll() []*CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	out := make([]*CampaignStatus, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.statusLocked(id, c.camps[id]))
	}
	return out
}

func (c *Coordinator) statusLocked(id string, camp *campaign) *CampaignStatus {
	now := c.cfg.Now()
	st := &CampaignStatus{
		ID:          id,
		Kind:        camp.man.Kind,
		State:       camp.state,
		Workloads:   camp.man.Workloads,
		ShardsDone:  len(camp.done),
		ShardsTotal: len(camp.man.Shards),
		Created:     camp.man.Created,
	}
	for i, sh := range camp.man.Shards {
		st.ItemsTotal += sh.Items()
		if _, ok := camp.done[i]; ok {
			st.ItemsDone += sh.Items()
		}
	}
	shards := make([]int, 0, len(camp.leases))
	for sh := range camp.leases {
		shards = append(shards, sh)
	}
	sort.Ints(shards)
	for _, sh := range shards {
		l := camp.leases[sh]
		st.Leases = append(st.Leases, LeaseStatus{
			Shard:     sh,
			Workload:  camp.man.Shards[sh].Workload,
			Node:      l.node,
			ExpiresMS: l.expires.Sub(now).Milliseconds(),
		})
	}
	return st
}

// Results assembles a completed campaign into its engine Result —
// bit-identical to an uninterrupted in-process run of the same Config
// and seed, regardless of how execution was sharded, interrupted, or
// spread over nodes. The returned value is *gefin.Result or
// *beam.Result.
func (c *Coordinator) Results(id string) (any, error) {
	c.mu.Lock()
	camp, ok := c.camps[id]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("serve: unknown campaign %s", id)
	}
	if camp.state != StateComplete {
		c.mu.Unlock()
		return nil, fmt.Errorf("serve: campaign %s is %s, not complete", id, camp.state)
	}
	man := camp.man
	done := make(map[int]json.RawMessage, len(camp.done))
	for k, v := range camp.done {
		done[k] = v
	}
	c.mu.Unlock()
	return Assemble(man, done)
}

// WriteTrace streams the campaign's merged fleet trace to w, filtered to
// winning executions: shard lifecycle records always pass, and an
// injection/strike record passes iff its span is the one whose Complete
// the coordinator accepted for that shard. Records of a double-executed
// shard (lease expiry, requeue, both nodes ran it) are thereby excluded
// exactly once, so trace counts cross-check against assembled Results.
func (c *Coordinator) WriteTrace(id string, w io.Writer) error {
	c.mu.Lock()
	camp, ok := c.camps[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("serve: unknown campaign %s", id)
	}
	winner := make(map[int]int64, len(camp.winner))
	for sh, sp := range camp.winner {
		winner[sh] = sp
	}
	c.mu.Unlock()
	c.tmu.Lock()
	data, err := c.cfg.Store.ReadTrace(id)
	c.tmu.Unlock()
	if err != nil {
		return err
	}
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec obs.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn tail of a crashed append: skip
		}
		if rec.Kind != obs.KindShard {
			sp, done := winner[rec.Shard]
			if !done || rec.Span != sp {
				continue
			}
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return err
		}
	}
	return nil
}

// Assemble reconstructs the engine Result of a fully completed campaign
// from its manifest and durable shard payloads.
func Assemble(man *Manifest, done map[int]json.RawMessage) (any, error) {
	switch man.Kind {
	case KindInjection:
		res := &gefin.Result{Config: *man.Injection}
		var prunes []*gefin.PruneSummary
		var dedups []*gefin.DedupSummary
		for _, w := range man.Workloads {
			outs := make([]gefin.ShardOutcome, 0)
			var meta *gefin.ShardMeta
			// Manifest shard order within a workload is plan order.
			for i, sh := range man.Shards {
				if sh.Workload != w {
					continue
				}
				raw, ok := done[i]
				if !ok {
					return nil, fmt.Errorf("serve: campaign %s: shard %d missing", man.ID, i)
				}
				var p ShardPayload
				if err := json.Unmarshal(raw, &p); err != nil {
					return nil, fmt.Errorf("serve: campaign %s shard %d: %w", man.ID, i, err)
				}
				if len(outs) != sh.Lo {
					return nil, fmt.Errorf("serve: campaign %s: shard %d starts at %d, have %d outcomes", man.ID, i, sh.Lo, len(outs))
				}
				outs = append(outs, p.Outcomes...)
				if meta == nil {
					meta = p.InjMeta
				}
			}
			if meta == nil {
				return nil, fmt.Errorf("serve: campaign %s: no shards for workload %s", man.ID, w)
			}
			wr, err := gefin.AssembleWorkload(*man.Injection, w, *meta, outs)
			if err != nil {
				return nil, err
			}
			res.Workloads = append(res.Workloads, *wr)
			if man.Injection.Prune || man.Injection.PruneVerify {
				prunes = append(prunes, gefin.ShardPruneSummary(outs))
			}
			if man.Injection.Dedup || man.Injection.DedupVerify {
				dedups = append(dedups, gefin.ShardDedupSummary(outs))
			}
		}
		// The predicted/deduplicated/simulated splits ride outside
		// Workloads, so remote optimised campaigns assemble byte-identical
		// Workloads to plain ones.
		res.Prune = gefin.MergePruneSummaries(prunes)
		res.Dedup = gefin.MergeDedupSummaries(dedups)
		return res, nil
	case KindBeam:
		res := &beam.Result{Config: *man.Beam}
		for _, w := range man.Workloads {
			chains := make([]*beam.ChainOutcome, beam.ShardsPerWorkload)
			var meta *beam.ShardMeta
			for i, sh := range man.Shards {
				if sh.Workload != w {
					continue
				}
				raw, ok := done[i]
				if !ok {
					return nil, fmt.Errorf("serve: campaign %s: shard %d missing", man.ID, i)
				}
				var p ShardPayload
				if err := json.Unmarshal(raw, &p); err != nil {
					return nil, fmt.Errorf("serve: campaign %s shard %d: %w", man.ID, i, err)
				}
				if sh.Lo < 0 || sh.Lo >= len(chains) {
					return nil, fmt.Errorf("serve: campaign %s: chain shard %d out of range", man.ID, sh.Lo)
				}
				chains[sh.Lo] = p.Chain
				if meta == nil {
					meta = p.BeamMeta
				}
			}
			if meta == nil {
				return nil, fmt.Errorf("serve: campaign %s: no shards for workload %s", man.ID, w)
			}
			wr, err := beam.AssembleWorkload(*man.Beam, w, *meta, chains)
			if err != nil {
				return nil, err
			}
			res.Workloads = append(res.Workloads, *wr)
		}
		return res, nil
	default:
		return nil, fmt.Errorf("serve: unknown campaign kind %q", man.Kind)
	}
}
