package serve

import (
	"testing"
	"time"

	"armsefi/internal/core/fault"
	"armsefi/internal/core/gefin"
	"armsefi/internal/obs"
)

// BenchmarkTelemetryShip measures the telemetry shipping path end to
// end in process: a worker shipper buffering a batch of injection
// records and the coordinator ingesting it into the merged campaign
// trace. The figure that matters is allocs/op — at steady state a
// fleet's coordinator ingests thousands of records per second, and the
// ingest path used to allocate a JSON line per record plus a fresh
// merge buffer per campaign per batch; the pooled trace buffers encode
// records straight into a reused merge buffer instead.
func BenchmarkTelemetryShip(b *testing.B) {
	store, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCoordinator(CoordConfig{Store: store, LeaseTTL: time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	man, err := BuildManifest(KindInjection, &gefin.Config{
		Seed:               7,
		FaultsPerComponent: 2,
		Components:         []fault.Component{fault.CompRegFile, fault.CompDTLB},
	}, nil, []string{"crc32"}, 0)
	if err != nil {
		b.Fatal(err)
	}
	id, err := c.Submit(man)
	if err != nil {
		b.Fatal(err)
	}
	s := NewShipper("n1", c, time.Second)
	rec := injRecord(id, 0, "n1", 1, fault.ClassSDC)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 256; j++ {
			s.EmitRecord(rec)
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryIngest isolates the coordinator's merge path from
// the shipper: one pre-built 256-record batch applied per iteration
// (fresh sequence numbers so none deduplicate away).
func BenchmarkTelemetryIngest(b *testing.B) {
	store, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCoordinator(CoordConfig{Store: store, LeaseTTL: time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	man, err := BuildManifest(KindInjection, &gefin.Config{
		Seed:               7,
		FaultsPerComponent: 2,
		Components:         []fault.Component{fault.CompRegFile, fault.CompDTLB},
	}, nil, []string{"crc32"}, 0)
	if err != nil {
		b.Fatal(err)
	}
	id, err := c.Submit(man)
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]obs.Record, 256)
	for i := range recs {
		recs[i] = injRecord(id, 0, "n1", 1, fault.ClassSDC)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Telemetry(&TelemetryBatch{Node: "n1", Seq: int64(i + 1), Records: recs}); err != nil {
			b.Fatal(err)
		}
	}
}
