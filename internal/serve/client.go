// HTTP client for the campaign service. It mirrors the Coordinator
// surface — Submit/Status/Results/Cancel for callers, Claim/Renew/
// Complete for worker nodes (Client implements Source, so RunWorker
// drives a remote campaignd exactly like an in-process coordinator).

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"armsefi/internal/core/beam"
	"armsefi/internal/core/gefin"
)

// Client talks to a campaignd coordinator over HTTP.
type Client struct {
	// Base is the coordinator URL, e.g. "http://localhost:8440".
	Base string
	// HTTP is the transport; nil picks a client with a 30s timeout.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// do issues one JSON request. A nil out discards the response body; 204
// responses leave out untouched.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, strings.TrimRight(c.Base, "/")+path, body)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var eb errorBody
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			return fmt.Errorf("serve: %s %s: %s", method, path, eb.Error)
		}
		return fmt.Errorf("serve: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: decoding %s %s: %w", method, path, err)
	}
	return nil
}

// Submit submits a campaign and returns its assigned ID.
func (c *Client) Submit(req SubmitRequest) (string, error) {
	var resp struct {
		ID string `json:"id"`
	}
	if err := c.do("POST", "/api/v1/campaigns", req, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Status fetches one campaign's status.
func (c *Client) Status(id string) (*CampaignStatus, error) {
	var st CampaignStatus
	if err := c.do("GET", "/api/v1/campaigns/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// StatusAll fetches every campaign's status.
func (c *Client) StatusAll() ([]*CampaignStatus, error) {
	var sts []*CampaignStatus
	if err := c.do("GET", "/api/v1/campaigns", nil, &sts); err != nil {
		return nil, err
	}
	return sts, nil
}

// InjectionResults fetches a completed injection campaign's assembled
// Result.
func (c *Client) InjectionResults(id string) (*gefin.Result, error) {
	var res gefin.Result
	if err := c.do("GET", "/api/v1/campaigns/"+id+"/results", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// BeamResults fetches a completed beam campaign's assembled Result.
func (c *Client) BeamResults(id string) (*beam.Result, error) {
	var res beam.Result
	if err := c.do("GET", "/api/v1/campaigns/"+id+"/results", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// RawResults fetches a completed campaign's Result as raw JSON, exactly
// as the coordinator serialised it (useful for byte-level comparisons).
func (c *Client) RawResults(id string) ([]byte, error) {
	req, err := http.NewRequest("GET", strings.TrimRight(c.Base, "/")+"/api/v1/campaigns/"+id+"/results", nil)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("serve: results %s: HTTP %d", id, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// Convergence fetches a campaign's merged convergence view: every
// node's latest estimator tallies summed, margins judged under the
// campaign's (or coordinator's) rule.
func (c *Client) Convergence(id string) (*ConvView, error) {
	var cv ConvView
	if err := c.do("GET", "/api/v1/campaigns/"+id+"/convergence", nil, &cv); err != nil {
		return nil, err
	}
	return &cv, nil
}

// Cancel cancels a campaign.
func (c *Client) Cancel(id string) error {
	return c.do("POST", "/api/v1/campaigns/"+id+"/cancel", struct{}{}, nil)
}

// WaitComplete polls until the campaign completes, is cancelled, or ctx
// expires. It returns the final status.
func (c *Client) WaitComplete(ctx context.Context, id string, poll time.Duration) (*CampaignStatus, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		st, err := c.Status(id)
		if err != nil {
			return nil, err
		}
		if st.State == StateComplete || st.State == StateCancelled {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Claim implements Source over HTTP; a nil Assignment means nothing is
// claimable right now (the coordinator answers 204 and do leaves the
// zero Assignment untouched).
func (c *Client) Claim(node string) (*Assignment, error) {
	var a Assignment
	if err := c.do("POST", "/api/v1/claim", claimRequest{Node: node}, &a); err != nil {
		return nil, err
	}
	if a.Campaign == "" {
		return nil, nil
	}
	return &a, nil
}

// Renew implements Source over HTTP.
func (c *Client) Renew(node, campaign string, shard int) error {
	return c.do("POST", "/api/v1/renew", leaseRequest{Node: node, Campaign: campaign, Shard: shard}, nil)
}

// Complete implements Source over HTTP.
func (c *Client) Complete(node, campaign string, shard int, span int64, payload *ShardPayload) error {
	return c.do("POST", "/api/v1/complete", completeRequest{Node: node, Campaign: campaign, Shard: shard, Span: span, Payload: payload}, nil)
}

// Telemetry implements TelemetrySink over HTTP, so a remote worker's
// Shipper federates its batches to the coordinator.
func (c *Client) Telemetry(b *TelemetryBatch) error {
	return c.do("POST", "/api/v1/telemetry", b, nil)
}

// Fleet fetches the coordinator's fleet snapshot.
func (c *Client) Fleet() (*FleetStatus, error) {
	var fs FleetStatus
	if err := c.do("GET", "/api/v1/fleet", nil, &fs); err != nil {
		return nil, err
	}
	return &fs, nil
}

// Trace fetches a campaign's merged fleet trace as JSONL, filtered to
// winning executions.
func (c *Client) Trace(id string) ([]byte, error) {
	req, err := http.NewRequest("GET", strings.TrimRight(c.Base, "/")+"/api/v1/campaigns/"+id+"/trace", nil)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("serve: trace %s: HTTP %d", id, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
