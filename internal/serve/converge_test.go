// Tests for the convergence federation: the shipper's latest-wins
// interception of convergence records, the coordinator's cross-node
// merge, and the end-to-end guarantee that a two-node campaign's merged
// convergence view agrees with its assembled Result.

package serve

import (
	"testing"
	"time"

	"armsefi/internal/core/fault"
	"armsefi/internal/core/gefin"
	"armsefi/internal/obs"
	"armsefi/internal/stats"
)

func convRecord(id string, key obs.ConvKey, k, n, planned, look int) obs.Record {
	est := 0.0
	if n > 0 {
		est = float64(k) / float64(n)
	}
	return obs.Record{
		Kind:     obs.KindConvergence,
		Campaign: id,
		Workload: key.Workload,
		Comp:     key.Comp,
		Class:    key.Class,
		K:        k,
		N:        n,
		Planned:  planned,
		Est:      est,
		Look:     look,
	}
}

// TestShipperConvergenceLatestWins pins the interception contract: a
// convergence record never lands in the trace buffer, and only the
// newest snapshot per (campaign, estimator) ships.
func TestShipperConvergenceLatestWins(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, 2)
	id, _ := submitTiny(t, c)
	s := NewShipper("n1", c, time.Second)

	key := obs.ConvKey{Workload: "crc32", Comp: fault.CompRegFile, Class: fault.ClassMasked}
	s.EmitRecord(convRecord(id, key, 3, 10, 90, 1))
	s.EmitRecord(convRecord(id, key, 12, 20, 90, 2))
	s.EmitRecord(convRecord("", key, 1, 2, 90, 1)) // uncorrelated: plain trace record
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	c.tmu.Lock()
	byKey := c.conv[id]["n1"]
	c.tmu.Unlock()
	if len(byKey) != 1 {
		t.Fatalf("coordinator holds %d estimators, want 1", len(byKey))
	}
	snap := byKey[key]
	if snap.K != 12 || snap.N != 20 || snap.Look != 2 {
		t.Fatalf("stale snapshot survived latest-wins: %+v", snap)
	}
	// The correlated convergence records must not have reached the trace.
	if data, _ := c.cfg.Store.ReadTrace(id); len(data) != 0 {
		t.Fatalf("convergence records leaked into the merged trace: %q", data)
	}
}

// TestConvergenceMerge pins the cross-node merge arithmetic: counts sum,
// planned/look take the max, and margins are recomputed from the merged
// counts — plus latest-wins replacement keeping retried batches safe.
func TestConvergenceMerge(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, 2)
	id, _ := submitTiny(t, c)

	key := obs.ConvKey{Workload: "crc32", Comp: fault.CompRegFile, Class: fault.ClassMasked}
	send := func(node string, seq int64, k, n int) {
		t.Helper()
		if err := c.Telemetry(&TelemetryBatch{
			Node: node,
			Seq:  seq,
			Convergence: []ConvUpdate{{Campaign: id, ConvSnapshot: obs.ConvSnapshot{
				ConvKey: key, K: k, N: n, Planned: 2, Look: int(seq),
			}}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	send("n1", 1, 3, 10)
	send("n2", 1, 5, 10)
	// n1 restates its cumulative tally — replacement, not addition.
	send("n1", 2, 6, 20)

	cv, err := c.Convergence(id)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Nodes != 2 || len(cv.Estimators) != 1 {
		t.Fatalf("view = %+v", cv)
	}
	e := cv.Estimators[0]
	if e.K != 11 || e.N != 30 || e.Planned != 2 || e.Look != 2 {
		t.Fatalf("merged estimator = %+v", e)
	}
	// submitTiny's campaign sets no rule, so the coordinator's view rule
	// (zero margin) judges: margin still reported at the default 0.99.
	rule := stats.SeqRule{}
	if want := rule.Margin(11, 30); e.Margin != want {
		t.Fatalf("merged margin %v, want %v", e.Margin, want)
	}
	if e.Met || cv.AllMet {
		t.Fatalf("ruleless view judged met: %+v", cv)
	}
	if cv.Confidence != 0.99 {
		t.Fatalf("view confidence %v", cv.Confidence)
	}

	// Unknown campaigns 404.
	if _, err := c.Convergence("nope"); err == nil {
		t.Fatal("unknown campaign produced a view")
	}

	// The fleet snapshot carries the same merged estimators.
	fs := c.Fleet()
	if len(fs.Campaigns) != 1 || len(fs.Campaigns[0].Conv) != 1 {
		t.Fatalf("fleet conv missing: %+v", fs.Campaigns[0])
	}
	if fs.Campaigns[0].Conv[0] != e {
		t.Fatalf("fleet conv %+v != view %+v", fs.Campaigns[0].Conv[0], e)
	}
}

// TestConvergenceViewRule pins rule selection: a campaign that set its
// own target margin is judged under it, and a loose margin over settled
// tallies reports AllMet.
func TestConvergenceViewRule(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, 2)
	cfg := &gefin.Config{
		Seed:               7,
		FaultsPerComponent: 2,
		Components:         []fault.Component{fault.CompRegFile},
		TargetMargin:       0.9,
	}
	man, err := BuildManifest(KindInjection, cfg, nil, []string{"crc32"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Submit(man)
	if err != nil {
		t.Fatal(err)
	}
	key := obs.ConvKey{Workload: "crc32", Comp: fault.CompRegFile, Class: fault.ClassMasked}
	if err := c.Telemetry(&TelemetryBatch{
		Node: "n1", Seq: 1,
		Convergence: []ConvUpdate{{Campaign: id, ConvSnapshot: obs.ConvSnapshot{
			ConvKey: key, K: 50, N: 100, Planned: 100, Look: 1,
		}}},
	}); err != nil {
		t.Fatal(err)
	}
	cv, err := c.Convergence(id)
	if err != nil {
		t.Fatal(err)
	}
	if cv.TargetMargin != 0.9 || cv.Confidence != 0.99 {
		t.Fatalf("rule echo = %+v", cv)
	}
	if !cv.Estimators[0].Met || !cv.AllMet {
		t.Fatalf("loose margin not met: %+v", cv.Estimators[0])
	}
}

// TestConvergenceEndToEnd drives a real two-node federated injection
// campaign and checks the merged convergence view against the assembled
// Result: every component's estimator tallies exactly the slots the
// campaign executed.
func TestConvergenceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real injection campaigns")
	}
	cfg := gefin.Config{
		Seed:               55,
		FaultsPerComponent: 3,
		Components:         []fault.Component{fault.CompRegFile, fault.CompDTLB},
		Workers:            1,
	}
	client, id := runFederatedCampaign(t, SubmitRequest{
		Kind:      KindInjection,
		Injection: &cfg,
		Workloads: []string{"crc32"},
		ShardSize: 2,
	})

	cv, err := client.Convergence(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.InjectionResults(id)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[obs.ConvKey]obs.ConvSnapshot, len(cv.Estimators))
	for _, e := range cv.Estimators {
		byKey[e.ConvKey] = e
	}
	for _, w := range res.Workloads {
		for _, cr := range w.Components {
			for _, cls := range fault.Classes() {
				e, ok := byKey[obs.ConvKey{Workload: w.Workload, Comp: cr.Comp, Class: cls}]
				if !ok {
					t.Errorf("%s/%s/%s: no merged estimator", w.Workload, cr.Comp, cls)
					continue
				}
				if e.K != cr.Counts[cls] || e.N != cr.N || e.Planned != 3 {
					t.Errorf("%s/%s/%s: estimator k=%d n=%d planned=%d, result k=%d n=%d",
						w.Workload, cr.Comp, cls, e.K, e.N, e.Planned, cr.Counts[cls], cr.N)
				}
			}
		}
	}
}
