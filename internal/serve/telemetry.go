// Telemetry federation of the campaign service. Worker nodes batch
// their trace records (stamped with the coordinator-minted trace
// context) and health counters into sequenced TelemetryBatches and ship
// them to the coordinator, which merges every node's stream into one
// per-campaign fleet trace and aggregates per-node health for the
// /v1/fleet view. Delivery is at-least-once: a worker resends a batch
// until it is acknowledged, and the coordinator deduplicates by the
// per-node batch sequence number — so a retried batch is applied exactly
// once and the merged trace never double-counts an experiment.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"sync"
	"time"

	"armsefi/internal/core/fault"
	"armsefi/internal/obs"
)

// traceBuf pairs a per-campaign trace merge buffer with a JSON encoder
// writing into it. Buffers are pooled across Telemetry calls: at steady
// state the coordinator ingests thousands of records per second, and
// encoding each one with json.Marshal plus growing a fresh merge slice
// per batch made the ingest path allocation-bound. Encoder.Encode
// appends the JSONL newline itself and writes straight into the pooled
// buffer, skipping Marshal's per-record result copy and the merge-slice
// regrowth (BenchmarkTelemetryIngest: ~372 KB/op -> ~104 KB/op for a
// 256-record batch).
type traceBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var traceBufPool = sync.Pool{New: func() any {
	tb := &traceBuf{}
	tb.enc = json.NewEncoder(&tb.buf)
	return tb
}}

// TelemetryBatch is one worker-to-coordinator telemetry shipment.
type TelemetryBatch struct {
	// Node identifies the shipping worker node.
	Node string `json:"node"`
	// Seq is the node's monotonic batch sequence number, starting at 1.
	// The coordinator ignores any batch whose Seq it has already applied,
	// making retries (at-least-once delivery) safe.
	Seq int64 `json:"seq"`
	// Records are the trace records emitted since the previous batch, in
	// the node's emission order.
	Records []obs.Record `json:"records,omitempty"`
	// Rate is the node's experiments/second over the batch interval;
	// Items and Shards are lifetime totals for the node.
	Rate   float64 `json:"rate"`
	Items  int64   `json:"items"`
	Shards int64   `json:"shards"`
	// RenewNS are lease-renew round-trip latencies observed since the
	// previous batch, in nanoseconds.
	RenewNS []int64 `json:"renew_ns,omitempty"`
	// Convergence carries the node's latest estimator snapshots per
	// campaign — cumulative tallies restated whole each time, so the
	// coordinator replaces (never adds) and retries stay safe.
	Convergence []ConvUpdate `json:"convergence,omitempty"`
	// LadderBytes / LadderSharedBytes snapshot the node's checkpoint-ladder
	// memory across its cached workbenches: total retained bytes, and the
	// bytes shared through copy-on-write page interning instead of copied.
	LadderBytes       int64 `json:"ladder_bytes,omitempty"`
	LadderSharedBytes int64 `json:"ladder_shared_bytes,omitempty"`
}

// TelemetrySink receives telemetry batches. *Coordinator implements it
// directly (local workers), *Client implements it over HTTP.
type TelemetrySink interface {
	Telemetry(b *TelemetryBatch) error
}

// Telemetry ingests one worker batch: deduplicates by the node's batch
// sequence, merges the batch's records into the per-campaign fleet
// traces (re-sequenced in arrival order), updates the node's health and
// the fleet metrics, and tallies observed outcome classes per campaign.
func (c *Coordinator) Telemetry(b *TelemetryBatch) error {
	if b == nil || b.Node == "" {
		return nil
	}
	c.tmu.Lock()
	defer c.tmu.Unlock()
	nh := c.nodes[b.Node]
	if nh == nil {
		nh = &nodeHealth{}
		c.nodes[b.Node] = nh
	}
	nh.lastSeen = c.cfg.Now()
	if b.Seq > 0 && b.Seq <= c.cursors[b.Node] {
		return nil // duplicate of an already-applied batch: acknowledge, drop
	}
	nh.rate = b.Rate
	nh.items = b.Items
	nh.shards = b.Shards
	nh.ladderBytes = b.LadderBytes
	nh.ladderShared = b.LadderSharedBytes
	c.cfg.Obs.FleetNode(b.Node, b.Rate, b.Items, b.Shards)
	for _, ns := range b.RenewNS {
		c.cfg.Obs.FleetRenew(b.Node, float64(ns)/1e9)
	}
	// Merge records into per-campaign traces, preserving batch order (the
	// node's emission order), re-sequenced in coordinator arrival order.
	var perCamp map[string]*traceBuf
	for i := range b.Records {
		rec := b.Records[i]
		if rec.Campaign == "" {
			continue // not correlated to a campaign: nothing to merge into
		}
		c.traceSeq++
		rec.Seq = c.traceSeq
		tb := perCamp[rec.Campaign]
		if tb == nil {
			if perCamp == nil {
				perCamp = make(map[string]*traceBuf)
			}
			tb = traceBufPool.Get().(*traceBuf)
			tb.buf.Reset()
			perCamp[rec.Campaign] = tb
		}
		pre := tb.buf.Len()
		if err := tb.enc.Encode(rec); err != nil {
			tb.buf.Truncate(pre) // drop the partial line, keep prior records
			continue
		}
		if rec.Kind == obs.KindInjection || rec.Kind == obs.KindStrike {
			t := c.tallies[rec.Campaign]
			if t == nil {
				t = make(map[fault.Class]int)
				c.tallies[rec.Campaign] = t
			}
			t[rec.Class]++
			if rec.Kind == obs.KindInjection {
				pt := c.prunes[rec.Campaign]
				if pt == nil {
					pt = &pruneTally{}
					c.prunes[rec.Campaign] = pt
				}
				switch {
				case rec.Predicted:
					pt.predicted++
				case rec.Dedup:
					pt.deduped++
				default:
					pt.simulated++
				}
			}
		}
	}
	for id, tb := range perCamp {
		_ = c.cfg.Store.AppendTrace(id, tb.buf.Bytes()) // best-effort observability artifact
		traceBufPool.Put(tb)
	}
	c.applyConv(b.Node, b.Convergence)
	if b.Seq > 0 {
		c.cursors[b.Node] = b.Seq
		_ = c.cfg.Store.SaveTelemetryCursors(c.cursors) // best-effort; loss re-applies idempotent-enough batches
	}
	return nil
}

// Shipper batches a worker node's trace records and health counters and
// ships them to a TelemetrySink. It implements obs.RecordSink, so it is
// attached to the worker's observer with Observer.Tee; wrap the worker's
// Source with WrapSource to also observe lease-renew latency and shard
// completions. Safe for concurrent use.
type Shipper struct {
	node  string
	sink  TelemetrySink
	every time.Duration
	// memStats, when set, is sampled at each flush to report the node's
	// checkpoint-ladder memory (Observer.LadderMemoryTotals fits).
	memStats func() (total, shared int64)

	mu         sync.Mutex
	buf        []obs.Record
	renews     []int64
	conv       map[convID]obs.ConvSnapshot // latest estimator state per campaign
	pending    *TelemetryBatch             // built but unacknowledged: resend before building the next
	seq        int64
	items      int64
	shards     int64
	itemsDelta int64
	last       time.Time
}

// NewShipper builds a shipper for node over sink, flushing every
// interval (zero picks 1s) while Run is active.
func NewShipper(node string, sink TelemetrySink, every time.Duration) *Shipper {
	if every <= 0 {
		every = time.Second
	}
	return &Shipper{node: node, sink: sink, every: every, last: time.Now()}
}

// ObserveMemory attaches a checkpoint-memory sampler whose figures ride
// in every batch. Attach before Run.
func (s *Shipper) ObserveMemory(fn func() (total, shared int64)) { s.memStats = fn }

// EmitRecord queues one trace record for the next batch (obs.RecordSink).
// Convergence records are intercepted rather than queued: only the
// latest estimator state matters, so the shipper keeps one snapshot per
// (campaign, estimator) and ships the survivors as ConvUpdates — a
// chain emitting thousands of looks costs one wire entry per estimator
// per batch instead of thousands of trace records.
func (s *Shipper) EmitRecord(rec obs.Record) {
	s.mu.Lock()
	if rec.Kind == obs.KindConvergence && rec.Campaign != "" {
		if s.conv == nil {
			s.conv = make(map[convID]obs.ConvSnapshot)
		}
		key := obs.ConvKey{Workload: rec.Workload, Comp: rec.Comp, Class: rec.Class}
		s.conv[convID{campaign: rec.Campaign, key: key}] = obs.ConvSnapshot{
			ConvKey: key,
			K:       rec.K,
			N:       rec.N,
			Planned: rec.Planned,
			Est:     rec.Est,
			Margin:  rec.Margin,
			Look:    rec.Look,
			Met:     rec.Met,
			Stopped: rec.Stopped,
		}
		s.mu.Unlock()
		return
	}
	s.buf = append(s.buf, rec)
	if rec.Kind == obs.KindInjection || rec.Kind == obs.KindStrike {
		s.items++
		s.itemsDelta++
	}
	s.mu.Unlock()
}

func (s *Shipper) renewObserved(d time.Duration) {
	s.mu.Lock()
	s.renews = append(s.renews, d.Nanoseconds())
	s.mu.Unlock()
}

func (s *Shipper) shardDone() {
	s.mu.Lock()
	s.shards++
	s.mu.Unlock()
}

// Flush ships one batch: the pending unacknowledged batch if there is
// one (at-least-once delivery — its sequence number is unchanged, so the
// coordinator deduplicates), otherwise a fresh batch of everything
// queued since the last flush. An empty fresh batch still ships — it is
// the node's heartbeat, keeping its last-seen time and rate current.
func (s *Shipper) Flush() error {
	s.mu.Lock()
	b := s.pending
	if b == nil {
		now := time.Now()
		rate := 0.0
		if el := now.Sub(s.last).Seconds(); el > 0 {
			rate = float64(s.itemsDelta) / el
		}
		s.seq++
		b = &TelemetryBatch{
			Node:    s.node,
			Seq:     s.seq,
			Records: s.buf,
			Rate:    rate,
			Items:   s.items,
			Shards:  s.shards,
			RenewNS: s.renews,
		}
		if s.memStats != nil {
			b.LadderBytes, b.LadderSharedBytes = s.memStats()
		}
		if len(s.conv) > 0 {
			b.Convergence = make([]ConvUpdate, 0, len(s.conv))
			for id, snap := range s.conv {
				b.Convergence = append(b.Convergence, ConvUpdate{Campaign: id.campaign, ConvSnapshot: snap})
			}
			sort.Slice(b.Convergence, func(i, j int) bool {
				a, c := b.Convergence[i], b.Convergence[j]
				if a.Campaign != c.Campaign {
					return a.Campaign < c.Campaign
				}
				if a.Workload != c.Workload {
					return a.Workload < c.Workload
				}
				if a.Comp != c.Comp {
					return a.Comp < c.Comp
				}
				return a.Class < c.Class
			})
			s.conv = nil
		}
		s.buf = nil
		s.renews = nil
		s.itemsDelta = 0
		s.last = now
		s.pending = b
	}
	s.mu.Unlock()
	err := s.sink.Telemetry(b)
	s.mu.Lock()
	if err == nil && s.pending == b {
		s.pending = nil
	}
	s.mu.Unlock()
	return err
}

// Run flushes on a ticker until ctx is cancelled. Call Drain afterwards
// to ship whatever the final tick missed.
func (s *Shipper) Run(ctx context.Context) {
	t := time.NewTicker(s.every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = s.Flush()
		}
	}
}

// Drain ships every queued record, retrying once on failure. It checks
// for emptiness before flushing, so a drained shipper does not emit a
// gratuitous heartbeat batch.
func (s *Shipper) Drain() error {
	fails := 0
	for {
		s.mu.Lock()
		empty := s.pending == nil && len(s.buf) == 0 && len(s.renews) == 0 && len(s.conv) == 0
		s.mu.Unlock()
		if empty {
			return nil
		}
		if err := s.Flush(); err != nil {
			if fails++; fails >= 2 {
				return err
			}
			time.Sleep(100 * time.Millisecond)
			continue
		}
		fails = 0
	}
}

// WrapSource instruments a worker Source with the shipper: lease-renew
// round-trips feed the renew-latency histogram and accepted completions
// bump the node's shard counter.
func (s *Shipper) WrapSource(src Source) Source {
	return &shippedSource{src: src, sh: s}
}

type shippedSource struct {
	src Source
	sh  *Shipper
}

func (w *shippedSource) Claim(node string) (*Assignment, error) { return w.src.Claim(node) }

func (w *shippedSource) Renew(node, campaign string, shard int) error {
	t0 := time.Now()
	err := w.src.Renew(node, campaign, shard)
	if err == nil {
		w.sh.renewObserved(time.Since(t0))
	}
	return err
}

func (w *shippedSource) Complete(node, campaign string, shard int, span int64, payload *ShardPayload) error {
	err := w.src.Complete(node, campaign, shard, span, payload)
	if err == nil {
		w.sh.shardDone()
	}
	return err
}
