package serve

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"armsefi/internal/bench"
	"armsefi/internal/core/beam"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/gefin"
)

// killSource wraps a Source and cancels a context after n completions —
// the in-process analogue of SIGKILLing a worker daemon mid-campaign
// (the CI smoke job does it to a real process; this pins the same
// contract at unit speed).
type killSource struct {
	Source
	remaining int
	kill      context.CancelFunc
}

func (k *killSource) Complete(node, campaign string, shard int, span int64, p *ShardPayload) error {
	err := k.Source.Complete(node, campaign, shard, span, p)
	k.remaining--
	if k.remaining == 0 {
		k.kill()
	}
	return err
}

// TestKillResumeDeterminism is the service's determinism pin: a campaign
// killed mid-run — with a torn shard-log tail, as a real crash leaves —
// and resumed by a fresh coordinator over the same store must produce
// Workloads bytes identical to an uninterrupted single-process run of
// the same Config and seed.
func TestKillResumeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real injection campaigns")
	}
	cfg := gefin.Config{
		Seed:               1234,
		FaultsPerComponent: 4,
		Components:         []fault.Component{fault.CompRegFile, fault.CompDTLB},
		Workers:            1,
	}
	spec, ok := bench.ByName("crc32")
	if !ok {
		t.Fatal("crc32 missing")
	}
	direct, err := gefin.Run(cfg, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	c1, err := NewCoordinator(CoordConfig{Store: store, LeaseTTL: time.Hour, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	man, err := BuildManifest(KindInjection, &cfg, nil, []string{"crc32"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c1.Submit(man)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Shards) != 4 {
		t.Fatalf("want 4 shards, got %d", len(man.Shards))
	}

	// Phase 1: a worker completes two shards, then the process "dies".
	ctx1, kill := context.WithCancel(context.Background())
	defer kill()
	done1, err := RunWorker(ctx1, WorkerConfig{
		Node:   "victim",
		Source: &killSource{Source: c1, remaining: 2, kill: kill},
	})
	if err != nil {
		t.Fatal(err)
	}
	if done1 != 2 {
		t.Fatalf("victim completed %d shards, want 2", done1)
	}
	// The crash also tore the log tail mid-append.
	appendRaw(t, store.logPath(id), `{"v":1,"type":"shard","sha`)

	// Phase 2: a fresh coordinator over the same store recovers the torn
	// tail and resumes. Its victim's leases are still live (TTL 1h), so
	// resume must come from the durable log, not lease bookkeeping.
	c2, err := NewCoordinator(CoordConfig{Store: store, LeaseTTL: time.Hour, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardsDone != 2 {
		t.Fatalf("resumed with %d shards done, want 2", st.ShardsDone)
	}
	ctx2, cancel := context.WithCancel(context.Background())
	go func() {
		// Stop the resuming worker once the campaign completes.
		for {
			if s, err := c2.Status(id); err == nil && s.State == StateComplete {
				cancel()
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	if _, err := RunWorker(ctx2, WorkerConfig{Node: "resumer", Source: c2, PollInterval: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	cancel()

	res, err := c2.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	assembled, ok := res.(*gefin.Result)
	if !ok {
		t.Fatalf("results type %T", res)
	}
	dj, _ := json.Marshal(direct.Workloads)
	aj, _ := json.Marshal(assembled.Workloads)
	if string(dj) != string(aj) {
		t.Fatalf("kill/resume diverged from uninterrupted run:\n direct  %s\n resumed %s", dj, aj)
	}
}

// TestDedupServiceDeterminism pins the deduplicator through the
// campaign service: a deduplicating remote run assembles to the same
// Workloads bytes as a plain (non-dedup) local run, and the wire
// outcomes reassemble the dedup split for the coordinator's summary.
func TestDedupServiceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real injection campaigns")
	}
	plain := gefin.Config{
		Seed:               5,
		FaultsPerComponent: 150,
		Components:         []fault.Component{fault.CompDTLB},
		Workers:            1,
	}
	spec, ok := bench.ByName("crc32")
	if !ok {
		t.Fatal("crc32 missing")
	}
	direct, err := gefin.Run(plain, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	c, err := NewCoordinator(CoordConfig{Store: store, LeaseTTL: time.Hour, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	dcfg := plain
	dcfg.Dedup = true
	// One full-plan shard: the shard-local partition then equals the
	// campaign partition, so the wire split carries every class.
	man, err := BuildManifest(KindInjection, &dcfg, nil, []string{"crc32"}, gefin.PlanLen(dcfg))
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Submit(man)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for {
			if s, err := c.Status(id); err == nil && s.State == StateComplete {
				cancel()
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	if _, err := RunWorker(ctx, WorkerConfig{Node: "n", Source: c, PollInterval: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	cancel()

	res, err := c.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	assembled := res.(*gefin.Result)
	dj, _ := json.Marshal(direct.Workloads)
	aj, _ := json.Marshal(assembled.Workloads)
	if string(dj) != string(aj) {
		t.Fatalf("service dedup run diverged from plain run:\n direct  %s\n service %s", dj, aj)
	}
	if assembled.Dedup == nil {
		t.Fatal("assembled result carries no DedupSummary")
	}
	if s := assembled.Dedup; s.Deduped == 0 || s.Deduped+s.Simulated != gefin.PlanLen(dcfg) {
		t.Fatalf("assembled dedup split %d/%d over plan %d", s.Deduped, s.Simulated, gefin.PlanLen(dcfg))
	}
}

// TestBeamServiceDeterminism pins the beam half end to end through the
// coordinator: chain shards executed through the service assemble to the
// same Workloads bytes as beam.Run.
func TestBeamServiceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real beam campaigns")
	}
	cfg := beam.Config{Seed: 99, BeamHours: 1, StrikesPerComponent: 2, Workers: 1}
	spec, ok := bench.ByName("crc32")
	if !ok {
		t.Fatal("crc32 missing")
	}
	direct, err := beam.Run(cfg, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	c, err := NewCoordinator(CoordConfig{Store: store, LeaseTTL: time.Hour, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	man, err := BuildManifest(KindBeam, nil, &cfg, []string{"crc32"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Submit(man)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Shards) != beam.ShardsPerWorkload {
		t.Fatalf("want %d chain shards, got %d", beam.ShardsPerWorkload, len(man.Shards))
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for {
			if s, err := c.Status(id); err == nil && s.State == StateComplete {
				cancel()
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	if _, err := RunWorker(ctx, WorkerConfig{Node: "n", Source: c, PollInterval: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	cancel()

	res, err := c.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	assembled := res.(*beam.Result)
	dj, _ := json.Marshal(direct.Workloads)
	aj, _ := json.Marshal(assembled.Workloads)
	if string(dj) != string(aj) {
		t.Fatalf("service beam run diverged from direct run:\n direct  %s\n service %s", dj, aj)
	}
}
