package serve

import (
	"strings"
	"sync"
	"testing"
	"time"

	"armsefi/internal/core/fault"
	"armsefi/internal/core/gefin"
)

// fakeClock is an injectable clock for deterministic lease-expiry tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0).UTC()}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func testCoordinator(t *testing.T, clk *fakeClock, maxActive int) *Coordinator {
	t.Helper()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(CoordConfig{
		Store:     store,
		MaxActive: maxActive,
		LeaseTTL:  30 * time.Second,
		Now:       clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func submitTiny(t *testing.T, c *Coordinator) (string, int) {
	t.Helper()
	cfg := &gefin.Config{
		Seed:               7,
		FaultsPerComponent: 2,
		Components:         []fault.Component{fault.CompRegFile, fault.CompDTLB},
	}
	man, err := BuildManifest(KindInjection, cfg, nil, []string{"crc32"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Submit(man)
	if err != nil {
		t.Fatal(err)
	}
	return id, len(man.Shards)
}

func fakePayload(t *testing.T) *ShardPayload {
	t.Helper()
	return &ShardPayload{InjMeta: &gefin.ShardMeta{GoldenCycles: 1}}
}

// TestLeaseExpiryTwoNodes pins the dead-node story: node A claims both
// shards and goes silent; after its leases expire node B claims the
// requeued shards and finishes the campaign. A's late renewal is
// refused, and A's late completion of a shard B already finished is a
// discarded duplicate.
func TestLeaseExpiryTwoNodes(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, 2)
	id, shards := submitTiny(t, c)
	if shards != 2 {
		t.Fatalf("want 2 shards, got %d", shards)
	}

	// Node A claims everything, then dies.
	a1, err := c.Claim("nodeA")
	if err != nil || a1 == nil {
		t.Fatalf("claim 1: %v %v", a1, err)
	}
	a2, err := c.Claim("nodeA")
	if err != nil || a2 == nil {
		t.Fatalf("claim 2: %v %v", a2, err)
	}
	if b, _ := c.Claim("nodeB"); b != nil {
		t.Fatalf("nodeB claimed %+v while all shards are leased", b)
	}

	// Within the TTL nothing is requeued.
	clk.Advance(10 * time.Second)
	if b, _ := c.Claim("nodeB"); b != nil {
		t.Fatalf("nodeB claimed %+v before lease expiry", b)
	}

	// Past the TTL both shards requeue and node B picks them up.
	clk.Advance(25 * time.Second)
	b1, err := c.Claim("nodeB")
	if err != nil || b1 == nil {
		t.Fatalf("nodeB claim after expiry: %v %v", b1, err)
	}
	b2, err := c.Claim("nodeB")
	if err != nil || b2 == nil {
		t.Fatalf("nodeB second claim after expiry: %v %v", b2, err)
	}
	if got := map[int]bool{b1.Shard: true, b2.Shard: true}; !got[a1.Shard] || !got[a2.Shard] {
		t.Fatalf("requeued shards %v do not cover A's %d,%d", got, a1.Shard, a2.Shard)
	}

	// A's lease is gone: renewal fails.
	if err := c.Renew("nodeA", id, a1.Shard); err == nil {
		t.Error("dead node's renewal accepted")
	}

	// B completes one shard; A's zombie completion of the same shard is
	// acknowledged and discarded (first durable record wins).
	if err := c.Complete("nodeB", id, b1.Shard, b1.Span, fakePayload(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("nodeA", id, b1.Shard, b1.Span, fakePayload(t)); err != nil {
		t.Fatalf("duplicate completion not acknowledged: %v", err)
	}
	if err := c.Complete("nodeB", id, b2.Shard, b2.Span, fakePayload(t)); err != nil {
		t.Fatal(err)
	}

	st, err := c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateComplete || st.ShardsDone != 2 {
		t.Fatalf("state %s done %d, want complete 2", st.State, st.ShardsDone)
	}
}

// TestZombieCompletionBeatsRequeue pins the other race: A's lease
// expires and the shard requeues, but A finishes before anyone claims
// it. The completion lands, and the shard leaves the pending queue.
func TestZombieCompletionBeatsRequeue(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, 2)
	id, _ := submitTiny(t, c)

	a1, _ := c.Claim("nodeA")
	clk.Advance(time.Minute) // lease expires
	// A status poll runs the sweep, requeueing A's shard.
	if _, err := c.Status(id); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("nodeA", id, a1.Shard, a1.Span, fakePayload(t)); err != nil {
		t.Fatal(err)
	}
	// The completed shard must not be claimable again.
	seen := map[int]bool{}
	for {
		a, err := c.Claim("nodeB")
		if err != nil {
			t.Fatal(err)
		}
		if a == nil {
			break
		}
		if a.Shard == a1.Shard {
			t.Fatalf("completed shard %d re-leased", a1.Shard)
		}
		seen[a.Shard] = true
	}
	if len(seen) != 1 {
		t.Fatalf("expected exactly the one remaining shard, saw %v", seen)
	}
}

// TestAdmissionQueue pins the bounded-concurrency contract: with
// MaxActive=1 the second campaign's shards are unclaimable until the
// first completes.
func TestAdmissionQueue(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, 1)
	id1, _ := submitTiny(t, c)
	id2, _ := submitTiny(t, c)

	// Drain campaign 1; every claim must come from it.
	var claims []*Assignment
	for {
		a, err := c.Claim("n")
		if err != nil {
			t.Fatal(err)
		}
		if a == nil {
			break
		}
		if a.Campaign != id1 {
			t.Fatalf("claimed from %s while %s is queued ahead", a.Campaign, id1)
		}
		claims = append(claims, a)
	}
	st2, _ := c.Status(id2)
	if st2.State != StateQueued {
		t.Fatalf("campaign 2 is %s, want queued", st2.State)
	}
	for _, a := range claims {
		if err := c.Complete("n", id1, a.Shard, a.Span, fakePayload(t)); err != nil {
			t.Fatal(err)
		}
	}
	// Campaign 1 complete: campaign 2 is admitted on the next claim.
	a, err := c.Claim("n")
	if err != nil || a == nil {
		t.Fatalf("claim after admission: %v %v", a, err)
	}
	if a.Campaign != id2 {
		t.Fatalf("claimed from %s, want %s", a.Campaign, id2)
	}
}

// TestCoordinatorResume pins crash-restart: a fresh coordinator over the
// same store sees the completed shards as done and hands out exactly the
// incomplete ones.
func TestCoordinatorResume(t *testing.T) {
	clk := newFakeClock()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cc := CoordConfig{Store: store, LeaseTTL: 30 * time.Second, Now: clk.Now}
	c1, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	id, shards := submitTiny(t, c1)
	a, _ := c1.Claim("n")
	if err := c1.Complete("n", id, a.Shard, a.Span, fakePayload(t)); err != nil {
		t.Fatal(err)
	}
	// "Crash": c1 is dropped with one shard done and nothing closed
	// cleanly. A new coordinator over the same store resumes.
	c2, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardsDone != 1 || st.ShardsTotal != shards {
		t.Fatalf("resumed status %d/%d, want 1/%d", st.ShardsDone, st.ShardsTotal, shards)
	}
	seen := map[int]bool{}
	for {
		got, err := c2.Claim("n2")
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			break
		}
		if got.Shard == a.Shard {
			t.Fatalf("already-completed shard %d re-leased after resume", a.Shard)
		}
		seen[got.Shard] = true
	}
	if len(seen) != shards-1 {
		t.Fatalf("resume handed out %d shards, want %d", len(seen), shards-1)
	}
}

// TestCancel pins cancellation: pending shards are dropped, late
// completions are discarded, cancelling twice fails, and the state
// survives restart.
func TestCancel(t *testing.T) {
	clk := newFakeClock()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cc := CoordConfig{Store: store, Now: clk.Now}
	c1, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := submitTiny(t, c1)
	a, _ := c1.Claim("n")
	if err := c1.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if err := c1.Cancel(id); err == nil {
		t.Error("double cancel accepted")
	}
	if err := c1.Complete("n", id, a.Shard, a.Span, fakePayload(t)); err != nil {
		t.Fatalf("late completion after cancel should be discarded, got %v", err)
	}
	if got, _ := c1.Claim("n"); got != nil {
		t.Fatalf("claim from cancelled campaign: %+v", got)
	}
	if _, err := c1.Results(id); err == nil {
		t.Error("results of a cancelled campaign")
	}

	c2, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("state after restart = %s, want cancelled", st.State)
	}
}

// TestBuildManifestValidation pins submission-time validation.
func TestBuildManifestValidation(t *testing.T) {
	inj := &gefin.Config{Seed: 1, FaultsPerComponent: 2}
	if _, err := BuildManifest(KindInjection, inj, nil, nil, 0); err == nil {
		t.Error("no workloads accepted")
	}
	if _, err := BuildManifest(KindInjection, inj, nil, []string{"no-such"}, 0); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := BuildManifest(KindInjection, nil, nil, []string{"crc32"}, 0); err == nil {
		t.Error("injection kind without config accepted")
	}
	if _, err := BuildManifest(KindBeam, nil, nil, []string{"crc32"}, 0); err == nil {
		t.Error("beam kind without config accepted")
	}
	if _, err := BuildManifest("other", inj, nil, []string{"crc32"}, 0); err == nil {
		t.Error("unknown kind accepted")
	}
	exh := &gefin.Config{Seed: 1, Exhaustive: true}
	if _, err := BuildManifest(KindInjection, exh, nil, []string{"crc32"}, 0); err == nil {
		t.Error("exhaustive sweep accepted for remote fan-out (its plan is data-dependent, not derivable from the manifest)")
	}
	man, err := BuildManifest(KindInjection, inj, nil, []string{"crc32"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Plan length 6x2=12 at shard size 3 -> 4 shards covering [0,12).
	if len(man.Shards) != 4 || man.Shards[3].Hi != gefin.PlanLen(*inj) {
		t.Fatalf("shards = %+v", man.Shards)
	}
	covered := 0
	for _, sh := range man.Shards {
		covered += sh.Items()
	}
	if covered != gefin.PlanLen(*inj) {
		t.Fatalf("shards cover %d slots, want %d", covered, gefin.PlanLen(*inj))
	}
}

// TestResultsIncomplete pins that Results refuses campaigns that are not
// complete, and that the error names the state.
func TestResultsIncomplete(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(t, clk, 1)
	id, _ := submitTiny(t, c)
	if _, err := c.Results(id); err == nil || !strings.Contains(err.Error(), "not complete") {
		t.Errorf("incomplete results error = %v", err)
	}
	if _, err := c.Results("nope"); err == nil {
		t.Error("unknown campaign accepted")
	}
}
