// Durable campaign store of the campaign service: one directory per
// campaign holding an immutable manifest (the campaign as submitted,
// with its deterministic shard table) and an append-only, fsync'd,
// CRC-guarded shard-result log. The store is the service's source of
// truth: a daemon killed at any instant — including mid-append — replays
// the log on restart, drops at most the torn tail record, and resumes
// the campaign from its last durably completed shard. Because shard
// outcomes are deterministic, re-executing a lost tail shard reproduces
// it exactly, so crash recovery never perturbs the final Results.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"armsefi/internal/core/beam"
	"armsefi/internal/core/gefin"
)

// StoreVersion is the on-disk format version stamped into every manifest
// and log record; Open-time checks reject skewed stores instead of
// misreading them.
const StoreVersion = 1

// Campaign kinds.
const (
	KindInjection = "injection"
	KindBeam      = "beam"
)

// Shard is one schedulable, durably-completable unit of a campaign: a
// contiguous pre-drawn plan range [Lo, Hi) of one workload for injection
// campaigns, or a single component strike chain (Lo = component index,
// Hi = Lo+1) for beam campaigns.
type Shard struct {
	Workload string `json:"workload"`
	Lo       int    `json:"lo"`
	Hi       int    `json:"hi"`
}

// Items returns the number of experiments the shard covers.
func (s Shard) Items() int { return s.Hi - s.Lo }

// Manifest is the immutable description of a campaign, written once at
// submission. The shard table is part of the manifest, so the shard
// decomposition can never drift between a crash and a resume.
type Manifest struct {
	Version   int           `json:"version"`
	ID        string        `json:"id"`
	Kind      string        `json:"kind"`
	Injection *gefin.Config `json:"injection,omitempty"`
	Beam      *beam.Config  `json:"beam,omitempty"`
	Workloads []string      `json:"workloads"`
	Shards    []Shard       `json:"shards"`
	Created   time.Time     `json:"created"`
}

// ShardPayload is the wire/durable record of one completed shard.
type ShardPayload struct {
	// Injection shards: the workload meta and the per-slot outcomes of
	// the shard's plan range.
	InjMeta  *gefin.ShardMeta     `json:"inj_meta,omitempty"`
	Outcomes []gefin.ShardOutcome `json:"outcomes,omitempty"`
	// Beam shards: the workload meta and the chain outcome.
	BeamMeta *beam.ShardMeta    `json:"beam_meta,omitempty"`
	Chain    *beam.ChainOutcome `json:"chain,omitempty"`
}

// logRecord is one line of the append-only shard log. Type "shard"
// carries a completed shard's payload; type "event" marks a campaign
// lifecycle transition (cancelled). CRC is crc32-IEEE over the fields
// the record's identity and payload comprise, so a corrupted-but-
// parseable line is detected, not silently merged.
type logRecord struct {
	V     int    `json:"v"`
	Type  string `json:"type"`
	Shard int    `json:"shard,omitempty"`
	Node  string `json:"node,omitempty"`
	// Span is the coordinator-minted span id of the shard execution whose
	// completion this record accepted; trace records stamped with the same
	// span are the canonical records of the shard. Observability metadata,
	// deliberately outside the CRC so pre-span logs replay unchanged.
	Span    int64           `json:"span,omitempty"`
	Event   string          `json:"event,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	CRC     uint32          `json:"crc"`
}

func (r *logRecord) checksum() uint32 {
	h := crc32.NewIEEE()
	fmt.Fprintf(h, "%d|%s|%d|%s|%s|", r.V, r.Type, r.Shard, r.Node, r.Event)
	h.Write(r.Payload)
	return h.Sum32()
}

// Store is a root directory of campaign subdirectories.
type Store struct {
	root string
}

// OpenStore opens (creating if needed) a campaign store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) dir(id string) string      { return filepath.Join(s.root, id) }
func (s *Store) manifest(id string) string { return filepath.Join(s.dir(id), "manifest.json") }
func (s *Store) logPath(id string) string  { return filepath.Join(s.dir(id), "shards.log") }

// Create durably records a new campaign: the manifest is written to a
// temp file, fsync'd, renamed into place, and the directory entries are
// fsync'd — after Create returns, a crash cannot lose or half-write the
// campaign.
func (s *Store) Create(man *Manifest) error {
	if man.ID == "" || strings.ContainsAny(man.ID, "/\\.") {
		return fmt.Errorf("serve: store: bad campaign id %q", man.ID)
	}
	man.Version = StoreVersion
	dir := s.dir(man.ID)
	if _, err := os.Stat(dir); err == nil {
		return fmt.Errorf("serve: store: campaign %s already exists", man.ID)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	tmp := s.manifest(man.ID) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	if err := os.Rename(tmp, s.manifest(man.ID)); err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	return syncDir(dir)
}

// List returns the ids of all stored campaigns, oldest manifest first.
func (s *Store) List() ([]string, error) {
	ents, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	type stamped struct {
		id string
		t  time.Time
	}
	var found []stamped
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		man, err := s.LoadManifest(e.Name())
		if err != nil {
			continue // not a campaign directory
		}
		found = append(found, stamped{e.Name(), man.Created})
	}
	sort.Slice(found, func(a, b int) bool {
		if !found[a].t.Equal(found[b].t) {
			return found[a].t.Before(found[b].t)
		}
		return found[a].id < found[b].id
	})
	ids := make([]string, len(found))
	for i, f := range found {
		ids[i] = f.id
	}
	return ids, nil
}

// LoadManifest reads and version-checks a campaign manifest.
func (s *Store) LoadManifest(id string) (*Manifest, error) {
	data, err := os.ReadFile(s.manifest(id))
	if err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("serve: store: manifest %s: %w", id, err)
	}
	if man.Version != StoreVersion {
		return nil, fmt.Errorf("serve: store: manifest %s has version %d, this daemon speaks %d",
			id, man.Version, StoreVersion)
	}
	if man.ID != id {
		return nil, fmt.Errorf("serve: store: manifest id %q does not match directory %q", man.ID, id)
	}
	return &man, nil
}

// Replay is the crash-safe reading of a campaign's shard log.
type Replay struct {
	// Done maps completed shard indices to their durable payloads; on a
	// duplicate completion the first record wins (later ones are
	// byte-identical by determinism — Duplicates counts them).
	Done  map[int]json.RawMessage
	Nodes map[int]string
	// Spans maps completed shard indices to the span id of the accepted
	// execution (zero for pre-span log records) — the winner set that
	// filters a campaign's merged fleet trace down to its canonical
	// records.
	Spans      map[int]int64
	Cancelled  bool
	Duplicates int
	// TornBytes is the length of a torn (crashed-mid-append) tail that
	// was dropped; Recover truncates it off so appends can resume.
	TornBytes int
}

// Replay reads the shard log, validating every record's version and CRC.
// A torn or corrupt tail record — the signature of a crash mid-append —
// is dropped and reported; corruption before the tail is an error, and a
// record with an unknown version is an error everywhere (version skew is
// never silently skipped: it means a newer daemon wrote this log).
func (s *Store) Replay(id string, man *Manifest) (*Replay, error) {
	data, err := os.ReadFile(s.logPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return &Replay{Done: map[int]json.RawMessage{}, Nodes: map[int]string{}, Spans: map[int]int64{}}, nil
		}
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	rep := &Replay{Done: map[int]json.RawMessage{}, Nodes: map[int]string{}, Spans: map[int]int64{}}
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// No terminator: the append was cut mid-line.
			rep.TornBytes = len(data) - off
			break
		}
		line := data[off : off+nl]
		next := off + nl + 1
		var rec logRecord
		bad := ""
		switch err := json.Unmarshal(line, &rec); {
		case err != nil:
			bad = fmt.Sprintf("unparseable record: %v", err)
		case rec.V != StoreVersion:
			return nil, fmt.Errorf("serve: store: log %s: record version %d, this daemon speaks %d (version skew)",
				id, rec.V, StoreVersion)
		case rec.CRC != rec.checksum():
			bad = "checksum mismatch"
		}
		if bad != "" {
			if next >= len(data) {
				// Torn tail: the crash hit mid-append after the previous
				// fsync; drop it (the shard will simply re-run).
				rep.TornBytes = len(data) - off
				off = len(data)
				break
			}
			return nil, fmt.Errorf("serve: store: log %s: %s before the tail — store is corrupt", id, bad)
		}
		switch rec.Type {
		case "shard":
			if man != nil && (rec.Shard < 0 || rec.Shard >= len(man.Shards)) {
				return nil, fmt.Errorf("serve: store: log %s: shard %d outside manifest's %d shards",
					id, rec.Shard, len(man.Shards))
			}
			if _, dup := rep.Done[rec.Shard]; dup {
				rep.Duplicates++
			} else {
				rep.Done[rec.Shard] = rec.Payload
				rep.Nodes[rec.Shard] = rec.Node
				rep.Spans[rec.Shard] = rec.Span
			}
		case "event":
			if rec.Event == "cancelled" {
				rep.Cancelled = true
			}
		default:
			return nil, fmt.Errorf("serve: store: log %s: unknown record type %q", id, rec.Type)
		}
		off = next
	}
	return rep, nil
}

// Recover replays the log and, when a torn tail is found, truncates it
// off so the log ends on a record boundary and appends can resume.
func (s *Store) Recover(id string, man *Manifest) (*Replay, error) {
	rep, err := s.Replay(id, man)
	if err != nil {
		return nil, err
	}
	if rep.TornBytes > 0 {
		info, err := os.Stat(s.logPath(id))
		if err != nil {
			return nil, fmt.Errorf("serve: store: %w", err)
		}
		if err := os.Truncate(s.logPath(id), info.Size()-int64(rep.TornBytes)); err != nil {
			return nil, fmt.Errorf("serve: store: truncating torn tail: %w", err)
		}
	}
	return rep, nil
}

// Log is an append handle on a campaign's shard log. Every append is a
// single write of one JSON line followed by fsync, so a record is either
// durable and complete or (after a crash) a torn tail the next Replay
// drops.
type Log struct {
	f *os.File
}

// OpenLog opens the campaign's shard log for appending.
func (s *Store) OpenLog(id string) (*Log, error) {
	f, err := os.OpenFile(s.logPath(id), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	return &Log{f: f}, nil
}

// AppendShard durably records a completed shard, tagged with the span id
// of the execution whose completion was accepted.
func (l *Log) AppendShard(shard int, node string, span int64, payload json.RawMessage) error {
	return l.append(logRecord{V: StoreVersion, Type: "shard", Shard: shard, Node: node, Span: span, Payload: payload})
}

// AppendEvent durably records a campaign lifecycle event.
func (l *Log) AppendEvent(event string) error {
	return l.append(logRecord{V: StoreVersion, Type: "event", Event: event})
}

func (l *Log) append(rec logRecord) error {
	rec.CRC = rec.checksum()
	line, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	if _, err := l.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	return nil
}

// Close closes the append handle.
func (l *Log) Close() error { return l.f.Close() }

// TracePath is the campaign's merged fleet trace: JSONL records shipped
// by worker telemetry plus the coordinator's own shard lifecycle
// records, living next to the shard log.
func (s *Store) TracePath(id string) string { return filepath.Join(s.dir(id), "trace.jsonl") }

// AppendTrace appends pre-marshalled JSONL trace data to the campaign's
// merged fleet trace. The trace is observability, not source of truth,
// so appends are not fsync'd; ids are validated like Create because
// worker-shipped records name the campaign.
func (s *Store) AppendTrace(id string, data []byte) error {
	if id == "" || strings.ContainsAny(id, "/\\.") {
		return fmt.Errorf("serve: store: bad campaign id %q", id)
	}
	if _, err := os.Stat(s.dir(id)); err != nil {
		return fmt.Errorf("serve: store: unknown campaign %s", id)
	}
	f, err := os.OpenFile(s.TracePath(id), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	_, err = f.Write(data)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("serve: store: trace: %w", err)
	}
	return nil
}

// ReadTrace returns the campaign's merged fleet trace, empty if no
// telemetry has arrived yet.
func (s *Store) ReadTrace(id string) ([]byte, error) {
	data, err := os.ReadFile(s.TracePath(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	return data, nil
}

// cursorsPath holds the telemetry dedup cursors (highest applied batch
// sequence number per node).
func (s *Store) cursorsPath() string { return filepath.Join(s.root, "telemetry-cursors.json") }

// LoadTelemetryCursors restores the per-node telemetry batch cursors.
// Best-effort: a missing or unreadable file yields an empty map (at
// worst a redelivered batch duplicates trace records, which tracestat
// detects; shard results are never affected).
func (s *Store) LoadTelemetryCursors() map[string]int64 {
	cur := make(map[string]int64)
	data, err := os.ReadFile(s.cursorsPath())
	if err != nil {
		return cur
	}
	if json.Unmarshal(data, &cur) != nil {
		return make(map[string]int64)
	}
	return cur
}

// SaveTelemetryCursors persists the per-node telemetry batch cursors via
// temp-file rename (no fsync: cursors are best-effort dedup state).
func (s *Store) SaveTelemetryCursors(cur map[string]int64) error {
	data, err := json.Marshal(cur)
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	tmp := s.cursorsPath() + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	if err := os.Rename(tmp, s.cursorsPath()); err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	return nil
}
