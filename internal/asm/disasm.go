package asm

import (
	"encoding/binary"
	"fmt"
	"strings"

	"armsefi/internal/isa"
)

// Disassemble renders the text section of a program as address-annotated
// assembly, resolving branch targets against the symbol table.
func Disassemble(p *Program) string {
	labels := make(map[uint32]string, len(p.Symbols))
	for name, addr := range p.Symbols {
		labels[addr] = name
	}
	var b strings.Builder
	for off := 0; off+4 <= len(p.Text); off += 4 {
		addr := p.TextBase + uint32(off)
		if name, ok := labels[addr]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		word := binary.LittleEndian.Uint32(p.Text[off:])
		fmt.Fprintf(&b, "  %08x:  %08x  %s\n", addr, word, DisasmWord(addr, word, labels))
	}
	return b.String()
}

// DisasmWord disassembles a single instruction word at addr, substituting a
// label for branch targets when available.
func DisasmWord(addr, word uint32, labels map[uint32]string) string {
	in := isa.Decode(word)
	if !in.Op.Valid() {
		return "<undefined>"
	}
	if in.Op.Info().Format == isa.FmtBr {
		target := addr + 4 + uint32(in.Imm)*4
		name, ok := labels[target]
		if !ok {
			name = fmt.Sprintf("%#x", target)
		}
		suffix := ""
		if in.Cond != isa.CondAL {
			suffix = in.Cond.String()
		}
		return fmt.Sprintf("%s%s %s", in.Op, suffix, name)
	}
	return in.String()
}
