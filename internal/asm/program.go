// Package asm implements a two-pass assembler and a disassembler for the
// simulator's ISA (package isa). Workloads and the miniature kernel are
// written in this assembly so that their instruction and data bits reside in
// the simulated memory hierarchy, where the fault injector and the beam
// simulator can flip them.
//
// Syntax summary:
//
//	; comment            @ comment            // comment
//	.text / .data        section switch
//	.equ NAME, expr      assemble-time constant
//	.align N             pad current section to an N-byte boundary
//	.space N [, fill]    reserve N bytes
//	.word e1, e2, ...    32-bit little-endian values (labels allowed)
//	.half / .byte        16- / 8-bit values
//	.float f1, f2, ...   IEEE-754 single-precision bit patterns
//	.asciz "s"           NUL-terminated string (escapes: \n \t \0 \\ \")
//	label:               define a label at the current location
//
//	add r0, r1, r2, lsl #3      data processing, optional shifted operand
//	addeq / adds / addseq       condition and/or S suffixes
//	ldr r0, [r1, #-8]           memory, signed 12-bit offset
//	str r0, [r1, r2, lsl #2]    memory, scaled register offset
//	b loop / bl fn / bx lr      control flow
//	ldr r0, =expr               pseudo: 32-bit constant or address (movw+movt)
//	adr r0, label               pseudo: address of label (movw+movt)
//	push {r4-r6, lr}            pseudo: multi-register store
//	pop {r4-r6, lr}             pseudo: multi-register load
package asm

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Program is the output of assembling one source unit: two loadable images
// and a symbol table.
type Program struct {
	Name     string
	TextBase uint32
	Text     []byte // little-endian instruction words
	DataBase uint32
	Data     []byte
	Symbols  map[string]uint32
	Entry    uint32 // address of `_start` if defined, else TextBase
}

// Word returns the instruction word at the given text address.
func (p *Program) Word(addr uint32) (uint32, bool) {
	off := addr - p.TextBase
	if addr < p.TextBase || int(off)+4 > len(p.Text) {
		return 0, false
	}
	return binary.LittleEndian.Uint32(p.Text[off:]), true
}

// Symbol resolves a label to its address.
func (p *Program) Symbol(name string) (uint32, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// MustSymbol resolves a label and panics if undefined. Intended for test and
// harness code that assembles trusted sources.
func (p *Program) MustSymbol(name string) uint32 {
	v, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("asm: program %q has no symbol %q", p.Name, name))
	}
	return v
}

// SymbolNames returns all defined symbols in sorted order.
func (p *Program) SymbolNames() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TextWords returns the number of encoded instruction words.
func (p *Program) TextWords() int { return len(p.Text) / 4 }
