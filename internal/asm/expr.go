package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// exprParser evaluates integer constant expressions. Supported: decimal,
// hexadecimal (0x) and binary (0b) literals, character literals, symbol
// references, parentheses, unary - and ~, and the binary operators
// * / % << >> & ^ | + - with C-like precedence.
type exprParser struct {
	src     string
	pos     int
	resolve func(name string) (int64, bool)
}

// evalExpr evaluates src, resolving identifiers through resolve.
func evalExpr(src string, resolve func(string) (int64, bool)) (int64, error) {
	p := &exprParser{src: src, resolve: resolve}
	v, err := p.parseBinary(0)
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("unexpected %q in expression %q", p.src[p.pos:], src)
	}
	return v, nil
}

// Binary operator precedence levels, loosest first.
var exprOps = [][]string{
	{"|"},
	{"^"},
	{"&"},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *exprParser) parseBinary(level int) (int64, error) {
	if level == len(exprOps) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return 0, err
	}
	for {
		op, ok := p.peekOp(level)
		if !ok {
			return left, nil
		}
		right, err := p.parseBinary(level + 1)
		if err != nil {
			return 0, err
		}
		switch op {
		case "|":
			left |= right
		case "^":
			left ^= right
		case "&":
			left &= right
		case "<<":
			left <<= uint(right) & 63
		case ">>":
			left >>= uint(right) & 63
		case "+":
			left += right
		case "-":
			left -= right
		case "*":
			left *= right
		case "/":
			if right == 0 {
				return 0, fmt.Errorf("division by zero in expression %q", p.src)
			}
			left /= right
		case "%":
			if right == 0 {
				return 0, fmt.Errorf("modulo by zero in expression %q", p.src)
			}
			left %= right
		}
	}
}

// peekOp consumes and returns an operator of the given precedence level if
// one is next.
func (p *exprParser) peekOp(level int) (string, bool) {
	p.skipSpace()
	rest := p.src[p.pos:]
	for _, op := range exprOps[level] {
		if !strings.HasPrefix(rest, op) {
			continue
		}
		// Avoid eating "<<" as "<" etc. (single-char ops that prefix a
		// longer op at another level don't exist in this grammar, but "-"
		// must not grab the start of a negative literal after an operator —
		// that case never reaches here because parseBinary always consumes
		// a full operand first.)
		if op == "<" || op == ">" {
			continue
		}
		p.pos += len(op)
		return op, true
	}
	return "", false
}

func (p *exprParser) parseUnary() (int64, error) {
	p.skipSpace()
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '-':
			p.pos++
			v, err := p.parseUnary()
			return -v, err
		case '~':
			p.pos++
			v, err := p.parseUnary()
			return ^v, err
		case '+':
			p.pos++
			return p.parseUnary()
		}
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (int64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, fmt.Errorf("unexpected end of expression %q", p.src)
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		v, err := p.parseBinary(0)
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return 0, fmt.Errorf("missing ')' in expression %q", p.src)
		}
		p.pos++
		return v, nil
	case c == '\'':
		return p.parseChar()
	case c >= '0' && c <= '9':
		return p.parseNumber()
	case isIdentStart(c):
		return p.parseIdent()
	default:
		return 0, fmt.Errorf("unexpected %q in expression %q", string(c), p.src)
	}
}

func (p *exprParser) parseChar() (int64, error) {
	rest := p.src[p.pos:]
	if len(rest) >= 4 && rest[1] == '\\' && rest[3] == '\'' {
		v, ok := unescape(rest[2])
		if !ok {
			return 0, fmt.Errorf("bad escape in char literal %q", rest[:4])
		}
		p.pos += 4
		return int64(v), nil
	}
	if len(rest) >= 3 && rest[2] == '\'' {
		p.pos += 3
		return int64(rest[1]), nil
	}
	return 0, fmt.Errorf("bad char literal in expression %q", p.src)
}

func (p *exprParser) parseNumber() (int64, error) {
	start := p.pos
	for p.pos < len(p.src) && isNumChar(p.src[p.pos]) {
		p.pos++
	}
	tok := p.src[start:p.pos]
	v, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		// Retry as unsigned for literals such as 0xFFFFFFFF.
		u, uerr := strconv.ParseUint(tok, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad number %q: %v", tok, err)
		}
		v = int64(u)
	}
	return v, nil
}

func (p *exprParser) parseIdent() (int64, error) {
	start := p.pos
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
		p.pos++
	}
	name := p.src[start:p.pos]
	if p.resolve == nil {
		return 0, fmt.Errorf("symbol %q not allowed here", name)
	}
	v, ok := p.resolve(name)
	if !ok {
		return 0, fmt.Errorf("undefined symbol %q", name)
	}
	return v, nil
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isNumChar(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' ||
		c == 'x' || c == 'X' || c == 'b' || c == 'B' || c == 'o' || c == 'O'
}

func unescape(c byte) (byte, bool) {
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\':
		return '\\', true
	case '\'':
		return '\'', true
	case '"':
		return '"', true
	default:
		return 0, false
	}
}
