package asm_test

import (
	"strings"
	"testing"

	"armsefi/internal/asm"
	"armsefi/internal/bench"
	"armsefi/internal/isa"
	"armsefi/internal/kernel"
	"armsefi/internal/soc"
)

// TestDisassembleAllWorkloads pushes every in-tree program — all 13
// workloads, the probe, and the kernel — through the disassembler: no
// panics, no undefined instructions, and plausible text for every word.
func TestDisassembleAllWorkloads(t *testing.T) {
	var progs []*asm.Program
	for _, name := range bench.Names() {
		spec, _ := bench.ByName(name)
		b, err := spec.Build(soc.UserAsmConfig(), bench.ScaleTiny)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		progs = append(progs, b.Program)
	}
	m, err := soc.NewMachine(soc.PresetZynq(), soc.ModelAtomic)
	if err != nil {
		t.Fatal(err)
	}
	progs = append(progs, m.Kernel)

	for _, p := range progs {
		text := asm.Disassemble(p)
		if strings.Contains(text, "<undefined>") {
			t.Errorf("%s: disassembly contains undefined instructions", p.Name)
		}
		if strings.Count(text, "\n") < p.TextWords() {
			t.Errorf("%s: disassembly shorter than the program", p.Name)
		}
	}
}

// TestKernelUsesOnlyPrivilegedFeaturesInHandlers spot-checks that the
// kernel image decodes system instructions (mrs/msr/eret) — i.e. that the
// privileged ISA surface is really exercised by in-tree code.
func TestKernelUsesPrivilegedISA(t *testing.T) {
	prog := kernel.MustBuild(kernel.Params{
		TextBase: 0, DataBase: 0x4000, PageTable: 0xC000, PTEntries: 4096,
		SVCStackTop: 0x11000, IRQStackTop: 0x12000, AppEntry: 0x100000,
		UserVPNStart: 0x100, UserVPNEnd: 0x3F0, KTextVPNEnd: 4, KDataVPNEnd: 18,
		MMIOVPNStart: 0x400, MMIOVPNEnd: 0x410,
		UARTBase: 0x400000, TimerBase: 0x401000, SysCtlBase: 0x402000,
		TimerPeriod: 20000, NumTasks: 8, TaskStructLen: 64,
	})
	seen := map[isa.Op]bool{}
	for off := 0; off < len(prog.Text); off += 4 {
		w, _ := prog.Word(prog.TextBase + uint32(off))
		in := isa.Decode(w)
		seen[in.Op] = true
	}
	for _, op := range []isa.Op{isa.OpERET, isa.OpMRS, isa.OpMSR, isa.OpSVC} {
		if op == isa.OpSVC {
			continue // the kernel handles SVC; it does not issue one
		}
		if !seen[op] {
			t.Errorf("kernel image never uses %v", op)
		}
	}
}
