package asm

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"armsefi/internal/isa"
)

func testCfg() Config { return Config{TextBase: 0x1000, DataBase: 0x8000} }

func mustAsm(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble("test.s", src, testCfg())
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func word(t *testing.T, p *Program, idx int) uint32 {
	t.Helper()
	w, ok := p.Word(p.TextBase + uint32(4*idx))
	if !ok {
		t.Fatalf("no word %d", idx)
	}
	return w
}

func TestEvalExpr(t *testing.T) {
	resolve := func(name string) (int64, bool) {
		if name == "sym" {
			return 100, true
		}
		return 0, false
	}
	tests := []struct {
		src  string
		want int64
	}{
		{"42", 42},
		{"0x2A", 42},
		{"0b101", 5},
		{"'A'", 65},
		{"'\\n'", 10},
		{"-7", -7},
		{"~0", -1},
		{"2+3*4", 14},
		{"(2+3)*4", 20},
		{"1<<10", 1024},
		{"256>>4", 16},
		{"0xFF & 0x0F", 15},
		{"8 | 1", 9},
		{"5 ^ 1", 4},
		{"17 % 5", 2},
		{"sym + 4", 104},
		{"sym*2-1", 199},
		{"10/3", 3},
	}
	for _, tt := range tests {
		got, err := evalExpr(tt.src, resolve)
		if err != nil {
			t.Errorf("evalExpr(%q): %v", tt.src, err)
			continue
		}
		if got != tt.want {
			t.Errorf("evalExpr(%q) = %d, want %d", tt.src, got, tt.want)
		}
	}
}

func TestEvalExprErrors(t *testing.T) {
	for _, src := range []string{"", "1+", "nosuch", "1/0", "(1", "1 2", "5%0"} {
		if _, err := evalExpr(src, func(string) (int64, bool) { return 0, false }); err == nil {
			t.Errorf("evalExpr(%q) succeeded, want error", src)
		}
	}
}

func TestBasicEncodings(t *testing.T) {
	p := mustAsm(t, `
	add r1, r2, r3
	subs r4, r5, #12
	moveq r0, r1
	cmp r2, r3, lsl #4
	ldr r0, [r1, #-8]
	strb r2, [r3, r4]
	bx lr
	svc #3
	mrs r2, spsr
	msr ttbr, r0
	nop
`)
	want := []isa.Instruction{
		{Op: isa.OpADD, Cond: isa.CondAL, Rd: isa.R1, Rn: isa.R2, Rm: isa.R3},
		{Op: isa.OpSUB, Cond: isa.CondAL, SetFlags: true, Rd: isa.R4, Rn: isa.R5, UseImm: true, Imm: 12},
		{Op: isa.OpMOV, Cond: isa.CondEQ, Rd: isa.R0, Rm: isa.R1},
		{Op: isa.OpCMP, Cond: isa.CondAL, Rn: isa.R2, Rm: isa.R3, Shift: isa.ShiftLSL, ShAmt: 4},
		{Op: isa.OpLDR, Cond: isa.CondAL, Rd: isa.R0, Rn: isa.R1, UseImm: true, Imm: -8},
		{Op: isa.OpSTRB, Cond: isa.CondAL, Rd: isa.R2, Rn: isa.R3, Rm: isa.R4},
		{Op: isa.OpBX, Cond: isa.CondAL, Rm: isa.LR},
		{Op: isa.OpSVC, Cond: isa.CondAL, Imm: 3},
		{Op: isa.OpMRS, Cond: isa.CondAL, Rd: isa.R2, Imm: int32(isa.SysSPSR)},
		{Op: isa.OpMSR, Cond: isa.CondAL, Rd: isa.R0, Imm: int32(isa.SysTTBR)},
		{Op: isa.OpNOP, Cond: isa.CondAL},
	}
	if p.TextWords() != len(want) {
		t.Fatalf("assembled %d words, want %d", p.TextWords(), len(want))
	}
	for i, w := range want {
		got := isa.Decode(word(t, p, i))
		if got != w {
			t.Errorf("instr %d:\n got %+v\nwant %+v", i, got, w)
		}
	}
}

func TestTwoOperandShorthand(t *testing.T) {
	p := mustAsm(t, "add r1, #4\nsub r2, r3\n")
	in := isa.Decode(word(t, p, 0))
	if in.Rd != isa.R1 || in.Rn != isa.R1 || !in.UseImm || in.Imm != 4 {
		t.Errorf("add shorthand decoded as %+v", in)
	}
	in = isa.Decode(word(t, p, 1))
	if in.Rd != isa.R2 || in.Rn != isa.R2 || in.Rm != isa.R3 {
		t.Errorf("sub shorthand decoded as %+v", in)
	}
}

func TestBranchTargets(t *testing.T) {
	p := mustAsm(t, `
start:
	b next
	nop
next:
	bne start
	bl start
`)
	// b next: from 0x1000 to 0x1008 -> offset (0x1008-0x1004)/4 = 1.
	in := isa.Decode(word(t, p, 0))
	if in.Op != isa.OpB || in.Imm != 1 {
		t.Errorf("b next = %+v", in)
	}
	// bne start: from 0x1008 to 0x1000 -> (0x1000-0x100C)/4 = -3.
	in = isa.Decode(word(t, p, 2))
	if in.Op != isa.OpB || in.Cond != isa.CondNE || in.Imm != -3 {
		t.Errorf("bne start = %+v", in)
	}
	in = isa.Decode(word(t, p, 3))
	if in.Op != isa.OpBL || in.Rd != isa.LR {
		t.Errorf("bl start = %+v", in)
	}
}

func TestLdrPseudo(t *testing.T) {
	p := mustAsm(t, `
	ldr r3, =0xDEADBEEF
	ldr r4, =buf
	adr r5, lbl
lbl:
	nop
.data
buf: .word 1
`)
	in0 := isa.Decode(word(t, p, 0))
	in1 := isa.Decode(word(t, p, 1))
	if in0.Op != isa.OpMOVW || uint32(in0.Imm) != 0xBEEF {
		t.Errorf("movw = %+v", in0)
	}
	if in1.Op != isa.OpMOVT || uint32(in1.Imm) != 0xDEAD {
		t.Errorf("movt = %+v", in1)
	}
	in2 := isa.Decode(word(t, p, 2))
	if uint32(in2.Imm) != p.MustSymbol("buf")&0xFFFF {
		t.Errorf("ldr =buf low half = %#x", in2.Imm)
	}
	in4 := isa.Decode(word(t, p, 4))
	if uint32(in4.Imm) != p.MustSymbol("lbl")&0xFFFF {
		t.Errorf("adr low half = %#x", in4.Imm)
	}
}

func TestPushPopExpansion(t *testing.T) {
	p := mustAsm(t, "push {r4-r6, lr}\npop {r4-r6, lr}\n")
	// push: sub sp + 4 stores; pop: 4 loads + add sp.
	if p.TextWords() != 10 {
		t.Fatalf("expanded to %d words, want 10", p.TextWords())
	}
	in := isa.Decode(word(t, p, 0))
	if in.Op != isa.OpSUB || in.Rd != isa.SP || in.Imm != 16 {
		t.Errorf("push prologue = %+v", in)
	}
	in = isa.Decode(word(t, p, 1))
	if in.Op != isa.OpSTR || in.Rd != isa.R4 || in.Rn != isa.SP || in.Imm != 0 {
		t.Errorf("push first store = %+v", in)
	}
	in = isa.Decode(word(t, p, 9))
	if in.Op != isa.OpADD || in.Rd != isa.SP || in.Imm != 16 {
		t.Errorf("pop epilogue = %+v", in)
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAsm(t, `
.data
w: .word 1, -1, 0x1234, after
h: .half 2, 0xFFFF
b: .byte 1, 2, 255
s: .asciz "hi\n"
.align 8
f: .float 1.5
after:
sp: .space 4, 0xAB
`)
	data := p.Data
	if binary.LittleEndian.Uint32(data[0:]) != 1 ||
		binary.LittleEndian.Uint32(data[4:]) != 0xFFFFFFFF ||
		binary.LittleEndian.Uint32(data[8:]) != 0x1234 {
		t.Errorf("word data wrong: % x", data[:16])
	}
	if binary.LittleEndian.Uint32(data[12:]) != p.MustSymbol("after") {
		t.Errorf("label in .word = %#x, want %#x", binary.LittleEndian.Uint32(data[12:]), p.MustSymbol("after"))
	}
	hOff := p.MustSymbol("h") - p.DataBase
	if binary.LittleEndian.Uint16(data[hOff:]) != 2 || binary.LittleEndian.Uint16(data[hOff+2:]) != 0xFFFF {
		t.Errorf("half data wrong")
	}
	bOff := p.MustSymbol("b") - p.DataBase
	if data[bOff] != 1 || data[bOff+2] != 255 {
		t.Errorf("byte data wrong")
	}
	sOff := p.MustSymbol("s") - p.DataBase
	if string(data[sOff:sOff+4]) != "hi\n\x00" {
		t.Errorf("asciz = %q", data[sOff:sOff+4])
	}
	fOff := p.MustSymbol("f") - p.DataBase
	if fOff%8 != 0 {
		t.Errorf(".align 8 violated: offset %d", fOff)
	}
	if math.Float32frombits(binary.LittleEndian.Uint32(data[fOff:])) != 1.5 {
		t.Errorf("float data wrong")
	}
	spOff := p.MustSymbol("sp") - p.DataBase
	if data[spOff] != 0xAB || data[spOff+3] != 0xAB {
		t.Errorf(".space fill wrong: % x", data[spOff:spOff+4])
	}
}

func TestEquAndComments(t *testing.T) {
	p := mustAsm(t, `
.equ SIZE, 16
.equ DOUBLE, SIZE*2   ; trailing comment
	mov r0, #SIZE      @ another style
	mov r1, #DOUBLE    // third style
`)
	if in := isa.Decode(word(t, p, 0)); in.Imm != 16 {
		t.Errorf("SIZE = %d", in.Imm)
	}
	if in := isa.Decode(word(t, p, 1)); in.Imm != 32 {
		t.Errorf("DOUBLE = %d", in.Imm)
	}
}

func TestEntryPoint(t *testing.T) {
	p := mustAsm(t, "nop\n_start:\nnop\n")
	if p.Entry != p.TextBase+4 {
		t.Errorf("entry = %#x, want %#x", p.Entry, p.TextBase+4)
	}
	p = mustAsm(t, "nop\n")
	if p.Entry != p.TextBase {
		t.Errorf("default entry = %#x, want text base", p.Entry)
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		frag string
	}{
		{"unknown mnemonic", "frobnicate r0\n", "unknown mnemonic"},
		{"imm range", "mov r0, #4096\n", "out of signed 12-bit range"},
		{"movw range", "movw r0, #70000\n", "16-bit range"},
		{"undefined symbol", "b nowhere\n", "undefined symbol"},
		{"duplicate label", "a:\na:\n", "redefined"},
		{"bad register", "mov r16, #0\n", "expected register"},
		{"data in text", ".word 1\n.text\n", ""}, // .word allowed in text? no section switch: .word at top goes to text... base case below
		{"instr in data", ".data\nmov r0, #1\n", "outside .text"},
		{"shift range", "add r0, r1, r2, lsl #32\n", "out of range"},
		{"pc in reglist", "push {r0, pc}\n", "pc not allowed"},
		{"bad directive", ".bogus 1\n", "unknown directive"},
		{"svc range", "svc #9999\n", "out of range"},
		{"equ conflict", ".equ x, 1\nx:\n", "conflicts"},
	}
	for _, tt := range tests {
		if tt.frag == "" {
			continue
		}
		_, err := Assemble("err.s", tt.src, testCfg())
		if err == nil {
			t.Errorf("%s: no error", tt.name)
			continue
		}
		if !strings.Contains(err.Error(), tt.frag) {
			t.Errorf("%s: error %q does not contain %q", tt.name, err, tt.frag)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("lines.s", "nop\nnop\nbadop r1\n", testCfg())
	if err == nil || !strings.Contains(err.Error(), "lines.s:3") {
		t.Errorf("error %v does not carry file:line", err)
	}
}

func TestMnemonicSuffixAmbiguity(t *testing.T) {
	// "bls" must parse as b+ls (branch if lower-or-same), never bl+s.
	p := mustAsm(t, "x:\nbls x\nteq r0, r1\nmuls r2, r3, r4\n")
	in := isa.Decode(word(t, p, 0))
	if in.Op != isa.OpB || in.Cond != isa.CondLS {
		t.Errorf("bls = %v %v", in.Op, in.Cond)
	}
	// "teq" must not parse as t+eq.
	in = isa.Decode(word(t, p, 1))
	if in.Op != isa.OpTEQ || in.Cond != isa.CondAL {
		t.Errorf("teq = %v %v", in.Op, in.Cond)
	}
	in = isa.Decode(word(t, p, 2))
	if in.Op != isa.OpMUL || !in.SetFlags {
		t.Errorf("muls = %+v", in)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
_start:
	ldr sp, =0x3F0000
	mov r0, #1
loop:
	add r0, r0, #1
	cmp r0, #10
	blt loop
	bx lr
`
	p := mustAsm(t, src)
	text := Disassemble(p)
	for _, frag := range []string{"_start:", "loop:", "blt loop", "bx lr", "movw sp"} {
		if !strings.Contains(text, frag) {
			t.Errorf("disassembly missing %q:\n%s", frag, text)
		}
	}
}

func TestRegisterAliases(t *testing.T) {
	p := mustAsm(t, "mov fp, sp\nmov ip, lr\nmov r13, r14\n")
	in := isa.Decode(word(t, p, 0))
	if in.Rd != isa.R11 || in.Rm != isa.SP {
		t.Errorf("fp/sp alias = %+v", in)
	}
	in = isa.Decode(word(t, p, 1))
	if in.Rd != isa.R12 || in.Rm != isa.LR {
		t.Errorf("ip/lr alias = %+v", in)
	}
	in = isa.Decode(word(t, p, 2))
	if in.Rd != isa.SP || in.Rm != isa.LR {
		t.Errorf("r13/r14 alias = %+v", in)
	}
}
