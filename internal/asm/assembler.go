package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Config sets the load addresses of the two sections.
type Config struct {
	TextBase uint32
	DataBase uint32
}

// DefaultUserConfig places sections at the conventional user-space bases
// used by the platform memory map.
func DefaultUserConfig() Config {
	return Config{TextBase: 0x0010_0000, DataBase: 0x0020_0000}
}

type section uint8

const (
	secText section = 1 + iota
	secData
)

// stmt is one parsed statement with its assigned address, encoded in pass 2.
type stmt struct {
	line   int
	sec    section
	addr   uint32
	size   uint32
	mnem   string   // instruction mnemonic ("" for data statements)
	ops    []string // raw operand strings
	dir    string   // directive name for data statements
	args   []string
	strArg string // for .asciz
	fill   byte   // for .space
}

// assembler carries the state of one assembly unit.
type assembler struct {
	name  string
	cfg   Config
	stmts []*stmt
	syms  map[string]uint32 // labels
	equs  map[string]int64  // .equ constants
	text  []byte
	data  []byte
}

// Assemble translates source into a Program. Errors carry file:line context.
func Assemble(name, source string, cfg Config) (*Program, error) {
	a := &assembler{
		name: name,
		cfg:  cfg,
		syms: make(map[string]uint32),
		equs: make(map[string]int64),
	}
	if err := a.pass1(source); err != nil {
		return nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	prog := &Program{
		Name:     name,
		TextBase: cfg.TextBase,
		Text:     a.text,
		DataBase: cfg.DataBase,
		Data:     a.data,
		Symbols:  a.syms,
		Entry:    cfg.TextBase,
	}
	if e, ok := a.syms["_start"]; ok {
		prog.Entry = e
	}
	return prog, nil
}

// MustAssemble assembles trusted, in-tree sources and panics on error.
func MustAssemble(name, source string, cfg Config) *Program {
	p, err := Assemble(name, source, cfg)
	if err != nil {
		panic(fmt.Sprintf("asm: %v", err))
	}
	return p
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", a.name, line, fmt.Sprintf(format, args...))
}

// pass1 parses every line, expands statement sizes, and assigns addresses
// and label values.
func (a *assembler) pass1(source string) error {
	textAddr := a.cfg.TextBase
	dataAddr := a.cfg.DataBase
	cur := secText
	addr := func() *uint32 {
		if cur == secText {
			return &textAddr
		}
		return &dataAddr
	}
	for i, raw := range strings.Split(source, "\n") {
		line := i + 1
		src := stripComment(raw)
		// Peel off any leading labels.
		for {
			src = strings.TrimSpace(src)
			idx := labelEnd(src)
			if idx < 0 {
				break
			}
			label := src[:idx]
			if _, dup := a.syms[label]; dup {
				return a.errf(line, "label %q redefined", label)
			}
			if _, dup := a.equs[label]; dup {
				return a.errf(line, "label %q conflicts with .equ", label)
			}
			a.syms[label] = *addr()
			src = src[idx+1:]
		}
		if src == "" {
			continue
		}
		if strings.HasPrefix(src, ".") {
			s, newSec, err := a.parseDirective(line, cur, src)
			if err != nil {
				return err
			}
			cur = newSec
			if s == nil {
				continue
			}
			s.addr = *addr()
			if s.dir == ".align" {
				n, err := a.constExpr(line, s.args[0])
				if err != nil {
					return err
				}
				if n <= 0 || n&(n-1) != 0 {
					return a.errf(line, ".align requires a positive power of two, got %d", n)
				}
				aligned := (*addr() + uint32(n) - 1) &^ (uint32(n) - 1)
				s.size = aligned - *addr()
			}
			*addr() += s.size
			a.stmts = append(a.stmts, s)
			continue
		}
		s, err := a.parseInstr(line, src)
		if err != nil {
			return err
		}
		if cur != secText {
			return a.errf(line, "instruction %q outside .text", s.mnem)
		}
		s.sec = secText
		s.addr = textAddr
		textAddr += s.size
		a.stmts = append(a.stmts, s)
	}
	return nil
}

// labelEnd returns the index of the ':' terminating a leading label, or -1.
func labelEnd(s string) int {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ':' {
			if i == 0 {
				return -1
			}
			return i
		}
		if i == 0 && !isIdentStart(c) || i > 0 && !isIdentChar(c) {
			return -1
		}
	}
	return -1
}

func stripComment(s string) string {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"', '\'':
			q := s[i]
			for i++; i < len(s); i++ {
				if s[i] == '\\' {
					i++
				} else if s[i] == q {
					break
				}
			}
		case ';', '@':
			_ = depth
			return s[:i]
		case '/':
			if i+1 < len(s) && s[i+1] == '/' {
				return s[:i]
			}
		}
	}
	return s
}

// parseDirective handles one directive line. It returns a nil stmt for
// directives fully handled in pass 1 (.text/.data/.equ).
func (a *assembler) parseDirective(line int, cur section, src string) (*stmt, section, error) {
	name, rest := splitMnemonic(src)
	switch name {
	case ".text":
		return nil, secText, nil
	case ".data":
		return nil, secData, nil
	case ".equ":
		args := splitOperands(rest)
		if len(args) != 2 {
			return nil, cur, a.errf(line, ".equ needs NAME, expr")
		}
		v, err := a.constExpr(line, args[1])
		if err != nil {
			return nil, cur, err
		}
		if _, dup := a.equs[args[0]]; dup {
			return nil, cur, a.errf(line, ".equ %q redefined", args[0])
		}
		if _, dup := a.syms[args[0]]; dup {
			return nil, cur, a.errf(line, ".equ %q conflicts with a label", args[0])
		}
		a.equs[args[0]] = v
		return nil, cur, nil
	}

	s := &stmt{line: line, sec: cur, dir: name}
	switch name {
	case ".align":
		args := splitOperands(rest)
		if len(args) != 1 {
			return nil, cur, a.errf(line, ".align needs one argument")
		}
		s.args = args // size computed by caller
	case ".space":
		args := splitOperands(rest)
		if len(args) < 1 || len(args) > 2 {
			return nil, cur, a.errf(line, ".space needs size [, fill]")
		}
		n, err := a.constExpr(line, args[0])
		if err != nil {
			return nil, cur, err
		}
		if n < 0 || n > 1<<24 {
			return nil, cur, a.errf(line, ".space size %d out of range", n)
		}
		if len(args) == 2 {
			f, err := a.constExpr(line, args[1])
			if err != nil {
				return nil, cur, err
			}
			s.fill = byte(f)
		}
		s.size = uint32(n)
	case ".word", ".float":
		s.args = splitOperands(rest)
		if len(s.args) == 0 {
			return nil, cur, a.errf(line, "%s needs at least one value", name)
		}
		s.size = uint32(4 * len(s.args))
	case ".half":
		s.args = splitOperands(rest)
		if len(s.args) == 0 {
			return nil, cur, a.errf(line, ".half needs at least one value")
		}
		s.size = uint32(2 * len(s.args))
	case ".byte":
		s.args = splitOperands(rest)
		if len(s.args) == 0 {
			return nil, cur, a.errf(line, ".byte needs at least one value")
		}
		s.size = uint32(len(s.args))
	case ".asciz":
		str, err := parseString(strings.TrimSpace(rest))
		if err != nil {
			return nil, cur, a.errf(line, "%v", err)
		}
		s.strArg = str
		s.size = uint32(len(str) + 1)
	default:
		return nil, cur, a.errf(line, "unknown directive %q", name)
	}
	return s, cur, nil
}

// parseInstr splits a machine or pseudo instruction and computes its size.
func (a *assembler) parseInstr(line int, src string) (*stmt, error) {
	mnem, rest := splitMnemonic(src)
	s := &stmt{line: line, mnem: mnem, ops: splitOperands(rest), size: 4}
	switch {
	case mnem == "push" || mnem == "pop":
		regs, err := parseRegList(s.ops)
		if err != nil {
			return nil, a.errf(line, "%v", err)
		}
		s.size = uint32(4 * (len(regs) + 1))
	case mnem == "adr":
		s.size = 8
	case strings.HasPrefix(mnem, "ldr") && len(s.ops) == 2 && strings.HasPrefix(s.ops[1], "="):
		s.size = 8
	}
	return s, nil
}

// pass2 encodes every statement now that all label addresses are known.
func (a *assembler) pass2() error {
	for _, s := range a.stmts {
		var buf []byte
		var err error
		if s.mnem != "" {
			buf, err = a.encodeInstr(s)
		} else {
			buf, err = a.encodeData(s)
		}
		if err != nil {
			return err
		}
		if uint32(len(buf)) != s.size {
			return a.errf(s.line, "internal: statement size changed between passes (%d != %d)", len(buf), s.size)
		}
		if s.sec == secText {
			a.text = append(a.text, buf...)
		} else {
			a.data = append(a.data, buf...)
		}
	}
	return nil
}

// resolve looks up labels and .equ constants for pass-2 expressions.
func (a *assembler) resolve(name string) (int64, bool) {
	if v, ok := a.syms[name]; ok {
		return int64(v), true
	}
	v, ok := a.equs[name]
	return v, ok
}

// constExpr evaluates a pass-1 expression (numbers and .equ constants and
// already-defined labels only).
func (a *assembler) constExpr(line int, src string) (int64, error) {
	v, err := evalExpr(strings.TrimSpace(src), a.resolve)
	if err != nil {
		return 0, a.errf(line, "%v", err)
	}
	return v, nil
}

func (a *assembler) encodeData(s *stmt) ([]byte, error) {
	switch s.dir {
	case ".align":
		return make([]byte, s.size), nil
	case ".space":
		buf := make([]byte, s.size)
		if s.fill != 0 {
			for i := range buf {
				buf[i] = s.fill
			}
		}
		return buf, nil
	case ".asciz":
		return append([]byte(s.strArg), 0), nil
	case ".float":
		buf := make([]byte, 0, 4*len(s.args))
		for _, arg := range s.args {
			f, err := strconv.ParseFloat(strings.TrimSpace(arg), 32)
			if err != nil {
				return nil, a.errf(s.line, "bad float %q: %v", arg, err)
			}
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(f)))
		}
		return buf, nil
	}
	width := map[string]int{".word": 4, ".half": 2, ".byte": 1}[s.dir]
	buf := make([]byte, 0, width*len(s.args))
	for _, arg := range s.args {
		v, err := a.constExpr(s.line, arg)
		if err != nil {
			return nil, err
		}
		switch width {
		case 4:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		case 2:
			if v < math.MinInt16 || v > math.MaxUint16 {
				return nil, a.errf(s.line, ".half value %d out of range", v)
			}
			buf = binary.LittleEndian.AppendUint16(buf, uint16(v))
		default:
			if v < math.MinInt8 || v > math.MaxUint8 {
				return nil, a.errf(s.line, ".byte value %d out of range", v)
			}
			buf = append(buf, byte(v))
		}
	}
	return buf, nil
}

func splitMnemonic(src string) (string, string) {
	src = strings.TrimSpace(src)
	idx := strings.IndexAny(src, " \t")
	if idx < 0 {
		return strings.ToLower(src), ""
	}
	return strings.ToLower(src[:idx]), src[idx+1:]
}

// splitOperands splits on top-level commas, honouring brackets, braces, and
// quotes.
func splitOperands(src string) []string {
	src = strings.TrimSpace(src)
	if src == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '[', '{', '(':
			depth++
		case ']', '}', ')':
			depth--
		case '"', '\'':
			q := src[i]
			for i++; i < len(src); i++ {
				if src[i] == '\\' {
					i++
				} else if src[i] == q {
					break
				}
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(src[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(src[start:]))
	return out
}

func parseString(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	var b strings.Builder
	for i := 1; i < len(s)-1; i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s)-1 {
			return "", fmt.Errorf("dangling escape in %q", s)
		}
		u, ok := unescape(s[i])
		if !ok {
			return "", fmt.Errorf("bad escape \\%c in %q", s[i], s)
		}
		b.WriteByte(u)
	}
	return b.String(), nil
}
