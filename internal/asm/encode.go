package asm

import (
	"encoding/binary"
	"fmt"
	"strings"

	"armsefi/internal/isa"
)

// regNames maps register spellings to register numbers.
var regNames = map[string]isa.Reg{
	"r0": isa.R0, "r1": isa.R1, "r2": isa.R2, "r3": isa.R3,
	"r4": isa.R4, "r5": isa.R5, "r6": isa.R6, "r7": isa.R7,
	"r8": isa.R8, "r9": isa.R9, "r10": isa.R10, "r11": isa.R11,
	"r12": isa.R12, "r13": isa.SP, "r14": isa.LR, "r15": isa.PC,
	"sp": isa.SP, "lr": isa.LR, "pc": isa.PC, "fp": isa.R11, "ip": isa.R12,
}

var condByName = map[string]isa.Cond{
	"eq": isa.CondEQ, "ne": isa.CondNE, "cs": isa.CondCS, "cc": isa.CondCC,
	"mi": isa.CondMI, "pl": isa.CondPL, "vs": isa.CondVS, "vc": isa.CondVC,
	"hi": isa.CondHI, "ls": isa.CondLS, "ge": isa.CondGE, "lt": isa.CondLT,
	"gt": isa.CondGT, "le": isa.CondLE, "al": isa.CondAL,
	"hs": isa.CondCS, "lo": isa.CondCC,
}

var sysRegByName = map[string]isa.SysReg{
	"cpsr": isa.SysCPSR, "spsr": isa.SysSPSR, "elr": isa.SysELR,
	"ttbr": isa.SysTTBR, "vbar": isa.SysVBAR,
}

// parseMnemonic splits a mnemonic such as "addseq" into (op, cond, setFlags)
// following the UAL suffix order op + "s"? + cond?.
func parseMnemonic(mnem string) (isa.Op, isa.Cond, bool, bool) {
	type cand struct {
		base string
		cond isa.Cond
		set  bool
	}
	// Candidate order matters: the bare mnemonic wins over any suffix
	// reading ("teq" is TEQ, not T+EQ), and a condition suffix wins over
	// the S suffix ("bls" is B+LS, never BL+S).
	cands := []cand{{mnem, isa.CondAL, false}}
	if n := len(mnem); n > 2 {
		if c, ok := condByName[mnem[n-2:]]; ok {
			rest := mnem[:n-2]
			cands = append(cands, cand{rest, c, false})
			if m := len(rest); m > 1 && rest[m-1] == 's' {
				cands = append(cands, cand{rest[:m-1], c, true})
			}
		}
	}
	if n := len(mnem); n > 1 && mnem[n-1] == 's' {
		cands = append(cands, cand{mnem[:n-1], isa.CondAL, true})
	}
	for _, c := range cands {
		if op, ok := isa.OpByName(c.base); ok {
			return op, c.cond, c.set, true
		}
	}
	return 0, 0, false, false
}

// encodeInstr encodes one (possibly pseudo) instruction statement.
func (a *assembler) encodeInstr(s *stmt) ([]byte, error) {
	switch s.mnem {
	case "push", "pop":
		return a.encodePushPop(s)
	case "adr":
		return a.encodeLoadAddr(s, s.ops, isa.CondAL)
	}
	op, cond, set, ok := parseMnemonic(s.mnem)
	if !ok {
		// `ldreq r0, =x` style pseudo with condition is not supported;
		// report the plain unknown-mnemonic error.
		return nil, a.errf(s.line, "unknown mnemonic %q", s.mnem)
	}
	if op == isa.OpLDR && len(s.ops) == 2 && strings.HasPrefix(s.ops[1], "=") {
		if cond != isa.CondAL {
			return nil, a.errf(s.line, "ldr=%s pseudo cannot be conditional", s.ops[1])
		}
		return a.encodeLoadAddr(s, []string{s.ops[0], strings.TrimPrefix(s.ops[1], "=")}, cond)
	}
	in := isa.Instruction{Op: op, Cond: cond, SetFlags: set}
	info := op.Info()
	if set && !info.WritesRd {
		return nil, a.errf(s.line, "%s cannot take the s suffix", op)
	}
	var err error
	switch info.Format {
	case isa.FmtDP:
		err = a.parseDPOperands(s, &in)
	case isa.FmtMem:
		err = a.parseMemOperands(s, &in)
	case isa.FmtMovW:
		err = a.parseMovWOperands(s, &in)
	case isa.FmtBr:
		err = a.parseBranchOperands(s, &in)
	case isa.FmtBX:
		err = a.parseBXOperands(s, &in)
	case isa.FmtSys:
		err = a.parseSysOperands(s, &in)
	}
	if err != nil {
		return nil, err
	}
	return binary.LittleEndian.AppendUint32(nil, in.Encode()), nil
}

func (a *assembler) reg(line int, tok string) (isa.Reg, error) {
	r, ok := regNames[strings.ToLower(strings.TrimSpace(tok))]
	if !ok {
		return 0, a.errf(line, "expected register, got %q", tok)
	}
	return r, nil
}

// parseOp2 parses a second operand: "#expr", or "rM" with an optional
// trailing shift operand consumed from ops.
func (a *assembler) parseOp2(s *stmt, in *isa.Instruction, ops []string) error {
	if len(ops) == 0 {
		return a.errf(s.line, "missing second operand for %s", in.Op)
	}
	tok := ops[0]
	if strings.HasPrefix(tok, "#") {
		v, err := a.constExpr(s.line, strings.TrimPrefix(tok, "#"))
		if err != nil {
			return err
		}
		if v < -2048 || v > 2047 {
			return a.errf(s.line, "immediate %d out of signed 12-bit range (use ldr %s, =%d)", v, in.Rd, v)
		}
		if len(ops) > 1 {
			return a.errf(s.line, "unexpected operand %q", ops[1])
		}
		in.UseImm = true
		in.Imm = int32(v)
		return nil
	}
	r, err := a.reg(s.line, tok)
	if err != nil {
		return err
	}
	in.Rm = r
	if len(ops) == 1 {
		return nil
	}
	if len(ops) > 2 {
		return a.errf(s.line, "too many operands")
	}
	return a.parseShift(s, in, ops[1])
}

func (a *assembler) parseShift(s *stmt, in *isa.Instruction, tok string) error {
	parts := strings.Fields(tok)
	if len(parts) != 2 {
		return a.errf(s.line, "bad shift operand %q", tok)
	}
	var st isa.ShiftType
	switch strings.ToLower(parts[0]) {
	case "lsl":
		st = isa.ShiftLSL
	case "lsr":
		st = isa.ShiftLSR
	case "asr":
		st = isa.ShiftASR
	case "ror":
		st = isa.ShiftROR
	default:
		return a.errf(s.line, "bad shift type %q", parts[0])
	}
	amt, err := a.constExpr(s.line, strings.TrimPrefix(parts[1], "#"))
	if err != nil {
		return err
	}
	if amt < 0 || amt > 31 {
		return a.errf(s.line, "shift amount %d out of range 0..31", amt)
	}
	in.Shift = st
	in.ShAmt = uint8(amt)
	return nil
}

func (a *assembler) parseDPOperands(s *stmt, in *isa.Instruction) error {
	info := in.Op.Info()
	ops := s.ops
	switch {
	case info.WritesRd && info.ReadsRn: // three-operand (two-operand shorthand allowed)
		if len(ops) < 2 {
			return a.errf(s.line, "%s needs at least rd, op2", in.Op)
		}
		rd, err := a.reg(s.line, ops[0])
		if err != nil {
			return err
		}
		in.Rd = rd
		if len(ops) == 2 || strings.HasPrefix(ops[1], "#") {
			// "add rd, op2" or "add rd, #imm[, shift]" shorthand: rn = rd.
			in.Rn = rd
			return a.parseOp2(s, in, ops[1:])
		}
		rn, err := a.reg(s.line, ops[1])
		if err != nil {
			return err
		}
		in.Rn = rn
		return a.parseOp2(s, in, ops[2:])
	case info.WritesRd || info.ReadsRd: // mov-class: rd, op2
		if len(ops) < 2 {
			return a.errf(s.line, "%s needs rd, op2", in.Op)
		}
		rd, err := a.reg(s.line, ops[0])
		if err != nil {
			return err
		}
		in.Rd = rd
		return a.parseOp2(s, in, ops[1:])
	default: // compare-class: rn, op2
		if len(ops) < 2 {
			return a.errf(s.line, "%s needs rn, op2", in.Op)
		}
		rn, err := a.reg(s.line, ops[0])
		if err != nil {
			return err
		}
		in.Rn = rn
		return a.parseOp2(s, in, ops[1:])
	}
}

func (a *assembler) parseMemOperands(s *stmt, in *isa.Instruction) error {
	if len(s.ops) != 2 {
		return a.errf(s.line, "%s needs rd, [rn, off]", in.Op)
	}
	rd, err := a.reg(s.line, s.ops[0])
	if err != nil {
		return err
	}
	in.Rd = rd
	addr := s.ops[1]
	if len(addr) < 2 || addr[0] != '[' || addr[len(addr)-1] != ']' {
		return a.errf(s.line, "expected [base, offset] address, got %q", addr)
	}
	parts := splitOperands(addr[1 : len(addr)-1])
	if len(parts) == 0 || len(parts) > 3 {
		return a.errf(s.line, "bad address %q", addr)
	}
	rn, err := a.reg(s.line, parts[0])
	if err != nil {
		return err
	}
	in.Rn = rn
	if len(parts) == 1 {
		in.UseImm = true
		in.Imm = 0
		return nil
	}
	return a.parseOp2(s, in, parts[1:])
}

func (a *assembler) parseMovWOperands(s *stmt, in *isa.Instruction) error {
	if len(s.ops) != 2 {
		return a.errf(s.line, "%s needs rd, #imm16", in.Op)
	}
	rd, err := a.reg(s.line, s.ops[0])
	if err != nil {
		return err
	}
	in.Rd = rd
	v, err := a.constExpr(s.line, strings.TrimPrefix(s.ops[1], "#"))
	if err != nil {
		return err
	}
	if v < 0 || v > 0xFFFF {
		return a.errf(s.line, "%s immediate %d out of 16-bit range", in.Op, v)
	}
	in.Imm = int32(v)
	return nil
}

func (a *assembler) parseBranchOperands(s *stmt, in *isa.Instruction) error {
	if len(s.ops) != 1 {
		return a.errf(s.line, "%s needs a target", in.Op)
	}
	target, err := a.constExpr(s.line, strings.TrimPrefix(s.ops[0], "#"))
	if err != nil {
		return err
	}
	delta := target - int64(s.addr) - 4
	if delta%4 != 0 {
		return a.errf(s.line, "branch target %#x misaligned", target)
	}
	words := delta / 4
	if words < -(1<<21) || words >= 1<<21 {
		return a.errf(s.line, "branch target %#x out of range", target)
	}
	in.Imm = int32(words)
	if in.Op == isa.OpBL {
		in.Rd = isa.LR
	}
	return nil
}

func (a *assembler) parseBXOperands(s *stmt, in *isa.Instruction) error {
	if len(s.ops) != 1 {
		return a.errf(s.line, "bx needs a register")
	}
	rm, err := a.reg(s.line, s.ops[0])
	if err != nil {
		return err
	}
	in.Rm = rm
	return nil
}

func (a *assembler) parseSysOperands(s *stmt, in *isa.Instruction) error {
	switch in.Op {
	case isa.OpSVC:
		if len(s.ops) != 1 {
			return a.errf(s.line, "svc needs #imm")
		}
		v, err := a.constExpr(s.line, strings.TrimPrefix(s.ops[0], "#"))
		if err != nil {
			return err
		}
		if v < 0 || v > 0xFFF {
			return a.errf(s.line, "svc number %d out of range", v)
		}
		in.Imm = int32(v)
	case isa.OpMRS:
		if len(s.ops) != 2 {
			return a.errf(s.line, "mrs needs rd, sysreg")
		}
		rd, err := a.reg(s.line, s.ops[0])
		if err != nil {
			return err
		}
		sr, ok := sysRegByName[strings.ToLower(s.ops[1])]
		if !ok {
			return a.errf(s.line, "unknown system register %q", s.ops[1])
		}
		in.Rd = rd
		in.Imm = int32(sr)
	case isa.OpMSR:
		if len(s.ops) != 2 {
			return a.errf(s.line, "msr needs sysreg, rd")
		}
		sr, ok := sysRegByName[strings.ToLower(s.ops[0])]
		if !ok {
			return a.errf(s.line, "unknown system register %q", s.ops[0])
		}
		rd, err := a.reg(s.line, s.ops[1])
		if err != nil {
			return err
		}
		in.Imm = int32(sr)
		in.Rd = rd
	default: // eret, wfi, nop
		if len(s.ops) != 0 {
			return a.errf(s.line, "%s takes no operands", in.Op)
		}
	}
	return nil
}

// encodeLoadAddr expands `ldr rd, =expr` / `adr rd, label` into movw+movt.
func (a *assembler) encodeLoadAddr(s *stmt, ops []string, cond isa.Cond) ([]byte, error) {
	if len(ops) != 2 {
		return nil, a.errf(s.line, "%s needs rd, value", s.mnem)
	}
	rd, err := a.reg(s.line, ops[0])
	if err != nil {
		return nil, err
	}
	v, err := a.constExpr(s.line, strings.TrimPrefix(strings.TrimPrefix(ops[1], "="), "#"))
	if err != nil {
		return nil, err
	}
	u := uint32(v)
	movw := isa.Instruction{Op: isa.OpMOVW, Cond: cond, Rd: rd, Imm: int32(u & 0xFFFF)}
	movt := isa.Instruction{Op: isa.OpMOVT, Cond: cond, Rd: rd, Imm: int32(u >> 16)}
	buf := binary.LittleEndian.AppendUint32(nil, movw.Encode())
	return binary.LittleEndian.AppendUint32(buf, movt.Encode()), nil
}

// parseRegList parses "{r4-r6, lr}" into an ascending register list.
func parseRegList(ops []string) ([]isa.Reg, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("empty register list")
	}
	joined := strings.Join(ops, ",")
	joined = strings.TrimSpace(joined)
	if len(joined) < 2 || joined[0] != '{' || joined[len(joined)-1] != '}' {
		return nil, fmt.Errorf("expected {reglist}, got %q", joined)
	}
	var seen [isa.NumRegs]bool
	for _, part := range strings.Split(joined[1:len(joined)-1], ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lo, hi := part, part
		if idx := strings.IndexByte(part, '-'); idx >= 0 {
			lo, hi = strings.TrimSpace(part[:idx]), strings.TrimSpace(part[idx+1:])
		}
		rlo, ok := regNames[strings.ToLower(lo)]
		if !ok {
			return nil, fmt.Errorf("bad register %q in list", lo)
		}
		rhi, ok := regNames[strings.ToLower(hi)]
		if !ok {
			return nil, fmt.Errorf("bad register %q in list", hi)
		}
		if rhi < rlo {
			return nil, fmt.Errorf("descending range %q", part)
		}
		for r := rlo; r <= rhi; r++ {
			if r == isa.PC {
				return nil, fmt.Errorf("pc not allowed in register list")
			}
			seen[r] = true
		}
	}
	var regs []isa.Reg
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if seen[r] {
			regs = append(regs, r)
		}
	}
	if len(regs) == 0 {
		return nil, fmt.Errorf("empty register list")
	}
	return regs, nil
}

// encodePushPop expands push/pop into sp-adjust plus individual word
// stores/loads, keeping the CPU model free of multi-register memory ops.
func (a *assembler) encodePushPop(s *stmt) ([]byte, error) {
	regs, err := parseRegList(s.ops)
	if err != nil {
		return nil, a.errf(s.line, "%v", err)
	}
	n := int32(len(regs))
	var buf []byte
	emit := func(in isa.Instruction) {
		in.Cond = isa.CondAL
		buf = binary.LittleEndian.AppendUint32(buf, in.Encode())
	}
	if s.mnem == "push" {
		emit(isa.Instruction{Op: isa.OpSUB, Rd: isa.SP, Rn: isa.SP, UseImm: true, Imm: 4 * n})
		for i, r := range regs {
			emit(isa.Instruction{Op: isa.OpSTR, Rd: r, Rn: isa.SP, UseImm: true, Imm: int32(4 * i)})
		}
		return buf, nil
	}
	for i, r := range regs {
		emit(isa.Instruction{Op: isa.OpLDR, Rd: r, Rn: isa.SP, UseImm: true, Imm: int32(4 * i)})
	}
	emit(isa.Instruction{Op: isa.OpADD, Rd: isa.SP, Rn: isa.SP, UseImm: true, Imm: 4 * n})
	return buf, nil
}
