package asm

import (
	"testing"

	"armsefi/internal/isa"
)

// FuzzAssemble feeds arbitrary source through the assembler: it must
// either produce a program or an error, never panic.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"nop\n",
		"add r1, r2, r3\n",
		"ldr r0, =0xDEADBEEF\nb x\nx:\n",
		".data\nbuf: .space 16\n.word buf, 1+2*3\n",
		"push {r4-r6, lr}\npop {r4-r6, lr}\n",
		".equ N, 4\nmov r0, #N\n",
		"label: b label ; comment\n",
		".asciz \"hi\\n\"\n",
		"add r0, r1, r2, lsl #31\n",
		"\x00\x01\x02",
		".word",
		"mov pc, lr\n",
		"bls bls\nbls:\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble("fuzz.s", src, Config{TextBase: 0x1000, DataBase: 0x8000})
		if err != nil {
			return
		}
		// Whatever assembles must also disassemble without panicking.
		_ = Disassemble(prog)
	})
}

// FuzzEvalExpr checks the expression evaluator never panics.
func FuzzEvalExpr(f *testing.F) {
	for _, s := range []string{"1+2", "(3*4)>>1", "~0", "'a'", "0xFF&sym", "1/0", "((((", "--1"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = evalExpr(src, func(name string) (int64, bool) {
			return int64(len(name)), name != "undefined"
		})
	})
}

// FuzzDecode checks that every 32-bit word decodes and renders without
// panicking — the property the I-cache fault path depends on.
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	f.Add(isa.Instruction{Op: isa.OpADD, Cond: isa.CondAL, Rd: isa.R1, Rn: isa.R2, Rm: isa.R3}.Encode())
	f.Fuzz(func(t *testing.T, word uint32) {
		in := isa.Decode(word)
		_ = in.String()
		if in.Op.Valid() {
			// A valid decode must re-encode to something that decodes to
			// the same instruction (encode/decode stability).
			again := isa.Decode(in.Encode())
			if again != in {
				t.Fatalf("unstable decode: %#x -> %+v -> %+v", word, in, again)
			}
		}
	})
}
