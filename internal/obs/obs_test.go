package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"armsefi/internal/core/fault"
	"armsefi/internal/core/sched"
)

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", "k", "v")
	b := r.Counter("x_total", "help", "k", "v")
	if a != b {
		t.Error("same name+labels must return the same counter")
	}
	if c := r.Counter("x_total", "help", "k", "w"); c == a {
		t.Error("different labels must return a different counter")
	}
	if g := r.Gauge("x_total", "help"); g == nil {
		t.Error("gauges and counters live in separate namespaces")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	g := r.Gauge("g", "")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Errorf("gauge = %f", g.Value())
	}
	g.SetFunc(func() float64 { return 7 })
	if g.Value() != 7 {
		t.Error("gauge callback not consulted")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 106.5 {
		t.Errorf("sum = %f", h.Sum())
	}
	// le is inclusive: 0.5 and 1 land in le=1, 5 in le=10, 100 in +Inf.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`h_seconds_bucket{le="1"} 2`,
		`h_seconds_bucket{le="10"} 3`,
		`h_seconds_bucket{le="+Inf"} 4`,
		`h_seconds_sum 106.5`,
		`h_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("armsefi_outcomes_total", "outcomes", "class", "SDC").Add(3)
	r.Gauge("armsefi_campaign_done", "done").Set(12)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP armsefi_outcomes_total outcomes",
		"# TYPE armsefi_outcomes_total counter",
		`armsefi_outcomes_total{class="SDC"} 3`,
		"# TYPE armsefi_campaign_done gauge",
		"armsefi_campaign_done 12",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteJSONParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", "k", "v").Inc()
	r.Gauge("g", "").Set(1.5)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v\n%s", err, buf.String())
	}
	if m[`c_total{k="v"}`] != 1.0 {
		t.Errorf("counter missing from JSON: %v", m)
	}
	h, ok := m["h"].(map[string]any)
	if !ok || h["count"] != 1.0 {
		t.Errorf("histogram missing from JSON: %v", m)
	}
}

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	const n = 200
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				tr.Emit(&Record{Kind: KindInjection, Workload: "crc32",
					Comp: fault.CompL1D, Worker: g, Class: fault.ClassMasked})
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Emitted() != n {
		t.Errorf("emitted = %d", tr.Emitted())
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	seen := make(map[int64]bool, n)
	for _, rec := range recs {
		if seen[rec.Seq] {
			t.Fatalf("duplicate seq %d", rec.Seq)
		}
		seen[rec.Seq] = true
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Emit(&Record{})
	if err := tr.Flush(); err != nil || tr.Emitted() != 0 {
		t.Error("nil tracer must be a silent no-op")
	}
	var o *Observer
	if o.On() || o.Tracing() || o.Registry() != nil {
		t.Error("nil observer must report off")
	}
	o.Record(Record{}, time.Time{}, time.Time{})
	o.MeterTick(sched.Snapshot{})
	o.ObservePool(sched.NewPool(1))
	o.CloneTry(true)
	if err := o.Close(); err != nil {
		t.Error("nil observer Close must succeed")
	}
}

func TestObserverRecord(t *testing.T) {
	var buf bytes.Buffer
	o := New(Options{TraceWriter: &buf})
	if !o.On() || !o.Tracing() {
		t.Fatal("observer with trace writer must be on and tracing")
	}
	start := time.Now()
	o.Record(Record{Kind: KindInjection, Workload: "crc32", Comp: fault.CompL1D,
		Class: fault.ClassSDC, Outcome: "ok"}, start, start.Add(3*time.Millisecond))
	o.CloneTry(true)
	o.CloneTry(false)
	o.MeterTick(sched.Snapshot{Done: 1, Total: 10, Workers: 2, Rate: 4})
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("trace has %d records", len(recs))
	}
	if recs[0].WallNS != (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("wall = %d ns", recs[0].WallNS)
	}
	if recs[0].Class != fault.ClassSDC || recs[0].Comp != fault.CompL1D {
		t.Errorf("record = %+v", recs[0])
	}

	reg := o.Registry()
	if v := reg.Counter("armsefi_outcomes_total", "",
		"kind", KindInjection, "class", "SDC", "comp", "l1d").Value(); v != 1 {
		t.Errorf("outcome counter = %d", v)
	}
	if v := reg.Counter("armsefi_clone_acquires_total", "", "result", "granted").Value(); v != 1 {
		t.Errorf("granted = %d", v)
	}
	if v := reg.Counter("armsefi_clone_acquires_total", "", "result", "denied").Value(); v != 1 {
		t.Errorf("denied = %d", v)
	}
	if v := reg.Gauge("armsefi_campaign_done", "").Value(); v != 1 {
		t.Errorf("done gauge = %f", v)
	}
	if h := reg.Histogram("armsefi_experiment_wall_seconds", "", nil, "kind", KindInjection); h.Count() != 1 {
		t.Errorf("latency histogram count = %d", h.Count())
	}
}

func TestObservePool(t *testing.T) {
	o := New(Options{})
	p := sched.NewPool(3)
	o.ObservePool(p)
	p.Acquire()
	p.Acquire()
	reg := o.Registry()
	if v := reg.Gauge("armsefi_pool_in_use", "").Value(); v != 2 {
		t.Errorf("in-use gauge = %f", v)
	}
	if v := reg.Gauge("armsefi_pool_capacity", "").Value(); v != 3 {
		t.Errorf("capacity gauge = %f", v)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "c_total 1") {
		t.Errorf("/metrics: %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 {
		t.Errorf("/debug/vars: %d", code)
	} else {
		var m map[string]any
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Errorf("/debug/vars not JSON: %v", err)
		}
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: %d", code)
	}
	if code, _ := get("/"); code != 200 {
		t.Errorf("/: %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("/nope: %d, want 404", code)
	}
}

func TestServeAndClose(t *testing.T) {
	s, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Kind: KindStrike, Seq: 2, Workload: "w", Comp: fault.CompL1D,
			Class: fault.ClassSDC, Weight: 0.5, WallNS: 30, Worker: 1},
		{Kind: KindStrike, Seq: 0, Workload: "w", Comp: fault.CompL1D,
			Class: fault.ClassSDC, Weight: 0.25, WallNS: 10, Worker: 0},
		{Kind: KindStrike, Seq: 1, Workload: "w", Comp: fault.CompL1D,
			Class: fault.ClassMasked, Weight: 1, WallNS: 20, Worker: 0},
	}
	s := Summarize(recs)
	if s.Records != 3 {
		t.Errorf("records = %d", s.Records)
	}
	c := s.Component(KindStrike, "w", fault.CompL1D)
	if c.Records != 3 || c.Counts[fault.ClassSDC] != 2 || c.Counts[fault.ClassMasked] != 1 {
		t.Errorf("component summary = %+v", c)
	}
	// Masked strikes never contribute weight; SDC weights accumulate in
	// seq order (0.25 then 0.5).
	if c.Weights[fault.ClassSDC] != 0.75 {
		t.Errorf("SDC weight = %f", c.Weights[fault.ClassSDC])
	}
	if _, ok := c.Weights[fault.ClassMasked]; ok {
		t.Error("masked strikes must not accumulate weight")
	}
	if c.WallNS != 60 || c.MaxWallNS != 30 {
		t.Errorf("wall = %d max %d", c.WallNS, c.MaxWallNS)
	}
	if s.Workers[0] != 2 || s.Workers[1] != 1 {
		t.Errorf("workers = %v", s.Workers)
	}
	if s.WallQuantile(0) != 10 || s.WallQuantile(0.5) != 20 || s.WallQuantile(1) != 30 {
		t.Errorf("quantiles = %d %d %d", s.WallQuantile(0), s.WallQuantile(0.5), s.WallQuantile(1))
	}
	me := s.ModeledEvents("w")
	if me[fault.ClassSDC] != 0.75 || me[fault.ClassMasked] != 0 {
		t.Errorf("modeled events = %v", me)
	}
	// Accessors on missing keys must be usable, never nil.
	if s.Component(KindInjection, "nope", fault.CompL2).Records != 0 {
		t.Error("missing component summary must be empty")
	}
	if s.Kind("nope").Records != 0 {
		t.Error("missing kind summary must be empty")
	}
}

func TestReadSummaryRejectsGarbage(t *testing.T) {
	if _, err := ReadSummary(strings.NewReader("{\"kind\":\"injection\"}\nnot json\n")); err == nil {
		t.Error("garbage line must fail")
	}
	s, err := ReadSummary(strings.NewReader(""))
	if err != nil || s.Records != 0 {
		t.Errorf("empty trace: %v, %d records", err, s.Records)
	}
}
