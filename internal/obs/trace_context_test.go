package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"armsefi/internal/core/fault"
)

// TestFormatFloatPrecision pins the histogram bound rendering: the old
// %f formatting collapsed every bound below 1e-6 to "0", making the
// sub-microsecond lease-renew buckets indistinguishable. 'g' formatting
// keeps them exact in both expositions while leaving integral bounds
// rendered as before.
func TestFormatFloatPrecision(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("renew_seconds", "", RenewLatencyBuckets())
	h.Observe(5e-7) // lands in the 1e-6 bucket, not the 2.5e-7 one

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`renew_seconds_bucket{le="2.5e-07"} 0`,
		`renew_seconds_bucket{le="1e-06"} 1`,
		`renew_seconds_bucket{le="0.0001"} 1`,
		`renew_seconds_bucket{le="5"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `le="0"`) {
		t.Errorf("a sub-microsecond bound collapsed to 0:\n%s", out)
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("WriteJSON with tiny bounds is not valid JSON: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "2.5e-07") {
		t.Errorf("JSON exposition lost the 2.5e-07 bound:\n%s", buf.String())
	}
}

// TestShardEventCardinality pins the metric-label contract: shard
// lifecycle counters are labelled by event name only, so series count
// grows with distinct events — never with campaigns, shards, or nodes.
func TestShardEventCardinality(t *testing.T) {
	o := New(Options{})
	for i := 0; i < 50; i++ {
		campaign := strings.Repeat("c", i%7+1)
		node := strings.Repeat("n", i%5+1)
		o.ShardEvent(campaign, "crc32", node, "claimed", i, 10, int64(i+1), 0)
		o.ShardEvent(campaign, "crc32", node, "completed", i, 10, int64(i+1), time.Second)
	}
	var buf bytes.Buffer
	if err := o.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "armsefi_serve_shard_events_total{") {
			series++
		}
	}
	if series != 2 {
		t.Errorf("shard-event series = %d, want 2 (one per event name):\n%s", series, buf.String())
	}
	if v := o.Registry().Counter("armsefi_serve_shard_events_total", "", "event", "claimed").Value(); v != 50 {
		t.Errorf("claimed counter = %d, want 50", v)
	}
	if v := o.Registry().Counter("armsefi_serve_items_total", "").Value(); v != 500 {
		t.Errorf("items counter = %d, want 500", v)
	}
}

// TestSummarizeShardRecords pins the summary's view of a federated
// trace: shard lifecycle records tally under their own kind (events and
// nodes), round-trip through JSON despite having no component or class,
// and never pollute the experiment counts.
func TestSummarizeShardRecords(t *testing.T) {
	recs := []Record{
		{Kind: KindInjection, Seq: 1, Workload: "crc32", Comp: fault.CompRegFile,
			Class: fault.ClassSDC, Campaign: "c1", Shard: 0, Node: "a", Span: 1},
		{Kind: KindInjection, Seq: 2, Workload: "crc32", Comp: fault.CompRegFile,
			Class: fault.ClassMasked, Campaign: "c1", Shard: 1, Node: "b", Span: 2},
		{Kind: KindShard, Seq: 3, Workload: "crc32", Campaign: "c1", Shard: 0, Node: "a", Span: 1, Event: "claimed", Items: 3},
		{Kind: KindShard, Seq: 4, Workload: "crc32", Campaign: "c1", Shard: 0, Node: "a", Span: 1, Event: "requeued", Items: 3},
		{Kind: KindShard, Seq: 5, Workload: "crc32", Campaign: "c1", Shard: 0, Node: "b", Span: 3, Event: "completed", Items: 3},
	}

	// Round-trip through JSONL exactly as a trace file or the telemetry
	// path would.
	var buf bytes.Buffer
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	sum, err := ReadSummary(&buf)
	if err != nil {
		t.Fatalf("a trace with shard records failed to read back: %v", err)
	}

	if sum.Records != 5 {
		t.Fatalf("records = %d, want 5", sum.Records)
	}
	shard := sum.Kind(KindShard)
	if shard.Records != 3 {
		t.Errorf("shard records = %d, want 3", shard.Records)
	}
	for event, want := range map[string]int{"claimed": 1, "requeued": 1, "completed": 1} {
		if shard.Events[event] != want {
			t.Errorf("events[%s] = %d, want %d", event, shard.Events[event], want)
		}
	}
	if got := sum.Nodes["a"]; got != 3 {
		t.Errorf("node a records = %d, want 3", got)
	}
	if got := sum.Nodes["b"]; got != 2 {
		t.Errorf("node b records = %d, want 2", got)
	}

	// Experiment tallies see only experiment records.
	inj := sum.Component(KindInjection, "crc32", fault.CompRegFile)
	if inj.Records != 2 || inj.Counts[fault.ClassSDC] != 1 || inj.Counts[fault.ClassMasked] != 1 {
		t.Errorf("injection tally polluted by shard records: %+v", inj)
	}
}

// TestTraceContextStamp pins the stamping contract: a zero context
// leaves the record untouched (in-process campaigns emit byte-identical
// traces), a populated one stamps all four correlation fields.
func TestTraceContextStamp(t *testing.T) {
	rec := Record{Kind: KindInjection, Workload: "crc32"}
	(TraceContext{}).Stamp(&rec)
	if rec.Campaign != "" || rec.Shard != 0 || rec.Node != "" || rec.Span != 0 {
		t.Errorf("zero context stamped fields: %+v", rec)
	}
	tc := TraceContext{Campaign: "c9", Shard: 4, Node: "worker-1", Span: 17}
	tc.Stamp(&rec)
	if rec.Campaign != "c9" || rec.Shard != 4 || rec.Node != "worker-1" || rec.Span != 17 {
		t.Errorf("stamp incomplete: %+v", rec)
	}
}

type captureSink struct {
	recs []Record
}

func (c *captureSink) EmitRecord(rec Record) { c.recs = append(c.recs, rec) }

// TestTracerTee pins the federation tap: a teed sink sees every record
// after sequence assignment, alongside (not instead of) the writer; a
// sink-only tracer (nil writer) still assigns sequence numbers; and
// Observer.Tee works on an observer that had no trace writer at all.
func TestTracerTee(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sink := &captureSink{}
	tr.Tee(sink)
	tr.Emit(&Record{Kind: KindInjection, Workload: "crc32"})
	tr.Emit(&Record{Kind: KindStrike, Workload: "crc32"})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(sink.recs) != 2 {
		t.Fatalf("sink saw %d records, want 2", len(sink.recs))
	}
	if sink.recs[0].Seq != 0 || sink.recs[1].Seq != 1 {
		t.Errorf("sink records missing sequence numbers: %+v", sink.recs)
	}
	if recs, err := ReadRecords(&buf); err != nil || len(recs) != 2 {
		t.Fatalf("writer lost records when teed: %d, %v", len(recs), err)
	}

	// Sink-only tracer: no writer, sequence numbers still flow.
	tr2 := NewTracer(nil)
	sink2 := &captureSink{}
	tr2.Tee(sink2)
	tr2.Emit(&Record{Kind: KindInjection})
	if err := tr2.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(sink2.recs) != 1 || tr2.Emitted() != 1 {
		t.Fatalf("sink-only tracer: %d records, emitted %d", len(sink2.recs), tr2.Emitted())
	}

	// Observer without a trace writer: Tee retrofits a sink-only tracer,
	// and Record()-emitted records reach the sink stamped and sequenced.
	o := New(Options{})
	if o.Tracing() {
		t.Fatal("observer without writer should not be tracing yet")
	}
	sink3 := &captureSink{}
	o.Tee(sink3)
	if !o.Tracing() {
		t.Fatal("teed observer must report tracing")
	}
	start := time.Now()
	rec := Record{Kind: KindInjection, Workload: "crc32", Comp: fault.CompL1D, Class: fault.ClassSDC}
	(TraceContext{Campaign: "c1", Shard: 2, Node: "n", Span: 5}).Stamp(&rec)
	o.Record(rec, start, start.Add(time.Millisecond))
	if len(sink3.recs) != 1 {
		t.Fatalf("observer sink saw %d records, want 1", len(sink3.recs))
	}
	got := sink3.recs[0]
	if got.Campaign != "c1" || got.Span != 5 || got.Node != "n" || got.Shard != 2 {
		t.Errorf("federated record lost its trace context: %+v", got)
	}
	if got.WallNS != time.Millisecond.Nanoseconds() {
		t.Errorf("federated record lost observer finalisation: wall %d", got.WallNS)
	}
}
