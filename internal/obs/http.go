// Live HTTP exposition of the metrics registry: Prometheus text format on
// /metrics, expvar-style JSON on /debug/vars, and net/http/pprof mounted
// under /debug/pprof/ so a running campaign can be profiled for free.

package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler builds the exposition mux for a registry.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "armsefi campaign observability\n\n"+
			"  /metrics       Prometheus text exposition\n"+
			"  /debug/vars    expvar-style JSON\n"+
			"  /debug/pprof/  Go runtime profiles\n")
	})
	return mux
}

// Server is a live exposition endpoint.
type Server struct {
	srv *http.Server
	lis net.Listener
}

// Serve starts serving the registry on addr (HOST:PORT; :0 picks a free
// port — read it back with Addr). The server runs until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics endpoint: %w", err)
	}
	s := &Server{srv: &http.Server{Handler: Handler(reg)}, lis: lis}
	go s.srv.Serve(lis)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }
