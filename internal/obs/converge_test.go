package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"armsefi/internal/core/fault"
	"armsefi/internal/stats"
)

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_test", "", []float64{1, 2, 4, 8})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	// 10 samples in (1,2], 10 in (2,4].
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
		h.Observe(3)
	}
	// Median rank = 10 lands exactly at the top of the (1,2] bucket.
	if got := h.Quantile(0.5); math.Abs(got-2) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
	// Rank 15 is halfway through the (2,4] bucket: 2 + 2*(5/10) = 3.
	if got := h.Quantile(0.75); math.Abs(got-3) > 1e-9 {
		t.Errorf("Quantile(0.75) = %v, want 3", got)
	}
	// Rank 5 is halfway through the (0,1]..(1,2]? No: first bucket (le=1)
	// is empty, so rank 5 interpolates inside (1,2]: 1 + 1*(5/10) = 1.5.
	if got := h.Quantile(0.25); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("Quantile(0.25) = %v, want 1.5", got)
	}
	// Quantiles are monotone in q and clamped to [0,1].
	prev := h.Quantile(0)
	for q := 0.05; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev-1e-12 {
			t.Fatalf("quantile not monotone at q=%f: %v < %v", q, v, prev)
		}
		prev = v
	}
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("out-of-range q must clamp")
	}
}

func TestHistogramQuantileOverflow(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_overflow", "", []float64{1, 2})
	h.Observe(100) // lands in +Inf
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want clamp to last bound 2", got)
	}
}

func TestConvRegistry(t *testing.T) {
	rule := stats.SeqRule{TargetMargin: 0.04, Confidence: 0.99}
	r := NewConvRegistry(rule)
	key := ConvKey{Workload: "crc32", Comp: fault.CompRegFile, Class: fault.ClassMasked}
	r.Update(key, 90, 100, 1000, 2, false)
	snaps := r.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	s := snaps[0]
	if s.K != 90 || s.N != 100 || s.Planned != 1000 || s.Look != 2 {
		t.Errorf("snapshot tallies = %+v", s)
	}
	if math.Abs(s.Est-0.9) > 1e-12 {
		t.Errorf("Est = %v", s.Est)
	}
	wLo, wHi := stats.WilsonCI(90, 100, stats.Z99)
	if math.Abs(s.Margin-(wHi-wLo)/2) > 1e-12 {
		t.Errorf("Margin = %v, want Wilson half-width %v", s.Margin, (wHi-wLo)/2)
	}
	if s.Met {
		t.Error("half-width 0.079 at n=100 must not meet a 4% margin")
	}
	// Updates overwrite in place; a second key sorts after the first.
	r.Update(key, 900, 1000, 1000, 5, true)
	r.Update(ConvKey{Workload: "crc32", Comp: fault.CompRegFile, Class: fault.ClassSDC}, 50, 1000, 1000, 5, true)
	snaps = r.Snapshots()
	if len(snaps) != 2 || snaps[0].Class != fault.ClassMasked || !snaps[0].Stopped {
		t.Errorf("snapshots = %+v", snaps)
	}
	if snaps[0].N != 1000 || snaps[0].Look != 5 {
		t.Errorf("update did not overwrite: %+v", snaps[0])
	}
	// Nil registry is a no-op.
	var nilReg *ConvRegistry
	nilReg.Update(key, 1, 1, 1, 1, false)
	if nilReg.Snapshots() != nil {
		t.Error("nil registry must return nil snapshots")
	}
	if nilReg.Rule().Enabled() {
		t.Error("nil registry rule must be disabled")
	}
}

func TestObserverConvergence(t *testing.T) {
	var buf bytes.Buffer
	o := New(Options{TraceWriter: &buf})
	snaps := []ConvSnapshot{
		{
			ConvKey: ConvKey{Workload: "crc32", Comp: fault.CompL1D, Class: fault.ClassMasked},
			K:       80, N: 100, Planned: 1000, Est: 0.8, Margin: 0.1, Look: 1,
		},
		{
			ConvKey: ConvKey{Workload: "crc32", Comp: fault.CompL1D, Class: fault.ClassSDC},
			K:       5, N: 100, Planned: 1000, Est: 0.05, Margin: 0.06, Look: 1,
		},
	}
	o.Convergence(snaps, TraceContext{Campaign: "c1", Shard: 2, Node: "n1", Span: 7})
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := ReadSummary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Kind(KindConvergence).Records; got != 2 {
		t.Fatalf("convergence records = %d, want 2", got)
	}
	last := sum.LastConv()
	if len(last) != 2 {
		t.Fatalf("LastConv = %d entries", len(last))
	}
	if last[0].Class != fault.ClassMasked || last[0].K != 80 || last[0].Est != 0.8 {
		t.Errorf("LastConv[0] = %+v", last[0])
	}
	// Records carry the trace context.
	recs, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Campaign != "c1" || rec.Node != "n1" || rec.Span != 7 {
			t.Errorf("record missing trace context: %+v", rec)
		}
	}
	// Gauges: armsefi_avf from the Masked snapshot, armsefi_margin per class.
	var prom strings.Builder
	if err := o.Registry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	if !strings.Contains(text, `armsefi_avf{workload="crc32",comp="l1d"} 0.19`) {
		t.Errorf("missing AVF gauge in:\n%s", text)
	}
	if !strings.Contains(text, `armsefi_margin{workload="crc32",comp="l1d",class="SDC"} 0.06`) {
		t.Errorf("missing margin gauge in:\n%s", text)
	}
	// Nil observer no-op.
	var nilObs *Observer
	nilObs.Convergence(snaps, TraceContext{})
}

func TestConvergenceRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	o := New(Options{TraceWriter: &buf})
	// An injection record emitted alongside convergence records must stay
	// free of the convergence-only JSON fields.
	o.Convergence([]ConvSnapshot{{
		ConvKey: ConvKey{Workload: "w", Comp: fault.CompRegFile, Class: fault.ClassMasked},
		K:       1, N: 2, Planned: 10, Est: 0.5, Margin: 0.3, Look: 1,
	}}, TraceContext{})
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	for _, want := range []string{`"kind":"convergence"`, `"k":1`, `"n":2`, `"planned":10`, `"est":0.5`, `"margin":0.3`, `"look":1`} {
		if !strings.Contains(line, want) {
			t.Errorf("trace line missing %s: %s", want, line)
		}
	}
	for _, reject := range []string{`"met"`, `"stopped"`} {
		if strings.Contains(line, reject) {
			t.Errorf("zero-valued %s must be omitted: %s", reject, line)
		}
	}
}
