// Trace emitter of the observability layer: one structured JSONL record
// per injection/strike, covering the full lifecycle of the experiment —
// the fault as drawn (component, bit, cycle), the workbench that executed
// it, wall-clock start/duration, the simulated cycle count and raw
// machine outcome of the faulty run, and the final classification.
//
// Records are marshalled outside the tracer lock and appended to a shared
// buffer under a short critical section; the buffer is written out in
// 64 KiB batches. A campaign worker therefore pays one JSON marshal and a
// brief mutex per injection — negligible against a simulated machine run.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"armsefi/internal/core/fault"
	"armsefi/internal/mem"
)

// Record kinds.
const (
	// KindInjection marks a GeFIN-style fault-injection experiment.
	KindInjection = "injection"
	// KindStrike marks a beam-simulator strike on the live board.
	KindStrike = "strike"
	// KindShard marks a campaign-service shard lifecycle event (claimed,
	// completed, requeued); the fault fields are zero and the Campaign /
	// Shard / Node fields locate the event instead.
	KindShard = "shard"
	// KindConvergence marks a streaming statistical-convergence snapshot:
	// one (workload, component, outcome-class) estimator's running
	// estimate, confidence-interval half-width, and sequential-stopping
	// state, emitted periodically while a campaign runs. The fault fields
	// are zero; Est/Margin/K/N and friends carry the estimator state.
	KindConvergence = "convergence"
)

// Record is one JSONL trace line: the full lifecycle of a single
// injection or strike.
type Record struct {
	// Kind is KindInjection or KindStrike.
	Kind string `json:"kind"`
	// Seq is the global emission sequence number (monotonic per tracer;
	// records of one worker/chain appear in execution order).
	Seq int64 `json:"seq"`
	// Workload names the benchmark under test.
	Workload string `json:"workload"`
	// Comp, Bit, Cycle are the fault as drawn from the seeded RNG. Comp
	// is omitted when zero (shard lifecycle records have no component),
	// so every record kind round-trips through JSON.
	Comp  fault.Component `json:"comp,omitzero"`
	Bit   uint64          `json:"bit"`
	Cycle uint64          `json:"cycle"`
	// Worker is the workbench that executed the experiment (0 is the
	// workload's primary workbench, clones count from 1).
	Worker int `json:"worker"`
	// StartNS is the wall-clock start offset from the observer's epoch;
	// WallNS is the experiment's wall duration.
	StartNS int64 `json:"start_ns"`
	WallNS  int64 `json:"wall_ns"`
	// ExecCycles is the simulated cycle count of the faulty run.
	ExecCycles uint64 `json:"exec_cycles"`
	// Outcome is the raw machine-level outcome (power-off, fatal,
	// timeout) before host-side classification.
	Outcome string `json:"outcome"`
	// Class is the final Masked/SDC/AppCrash/SysCrash classification
	// (omitted on shard lifecycle records, which classify nothing).
	Class fault.Class `json:"class,omitzero"`
	// Valid and Kernel report the injection-time strike context (gefin
	// records only): live content, kernel-owned line.
	Valid  bool `json:"valid,omitempty"`
	Kernel bool `json:"kernel,omitempty"`
	// Weight is the stratification weight a beam strike contributes to
	// its class's event count (strike records only).
	Weight float64 `json:"weight,omitempty"`
	// Followup marks a beam strike reclassified by the latent-corruption
	// follow-up execution.
	Followup bool `json:"followup,omitempty"`
	// FFCycles is the golden-prefix cycle count the checkpoint ladder
	// skipped for this run via a rung restore; EarlyExit marks a run cut
	// short by golden convergence (ladder-enabled campaigns only).
	FFCycles  uint64 `json:"ff_cycles,omitempty"`
	EarlyExit bool   `json:"early_exit,omitempty"`
	// Mechanism is the propagation-provenance verdict explaining how the
	// injected bit reached its class (provenance-enabled runs only; every
	// traced record of a provenance campaign carries one).
	Mechanism string `json:"mechanism,omitempty"`
	// Predicted marks an injection the campaign pre-filter proved masked
	// from the liveness log without simulating it (pruned campaigns only).
	// The record's Class/Valid/Kernel/Mechanism are the predicted verdict —
	// by construction exactly what simulation would have concluded — and
	// ExecCycles/Outcome are the golden run's.
	Predicted bool `json:"predicted,omitempty"`
	// Dedup marks a class member resolved from its equivalence-class
	// representative without simulation (deduplicated campaigns only).
	// The record's own Bit/Cycle locate the member's planned injection;
	// Class/Valid/Kernel/Mechanism/ExecCycles/Outcome are the
	// representative's — by construction exactly what simulating the
	// member would have produced.
	Dedup bool `json:"dedup,omitempty"`
	// ReadCycle/ReadPC/ReadReg locate the first consuming read of the
	// corrupted value (provenance records whose chain has a read event).
	ReadCycle uint64 `json:"read_cycle,omitempty"`
	ReadPC    uint32 `json:"read_pc,omitempty"`
	ReadReg   string `json:"read_reg,omitempty"`
	// ProvEvents is the probe's bounded lifecycle event chain; ProvDropped
	// counts events past the cap.
	ProvEvents  []mem.ProbeEvent `json:"prov_events,omitempty"`
	ProvDropped int              `json:"prov_dropped,omitempty"`
	// Campaign, Shard, Node, and Span correlate the record across a
	// distributed campaign: the campaign id, the shard index into its
	// manifest, the worker node that executed it, and the coordinator-
	// minted span id of the shard execution (every claim gets a fresh
	// span, so the records of a re-executed shard are distinguishable
	// from the execution whose Complete was accepted). Injection/strike
	// records of federated campaigns carry all four via TraceContext;
	// in-process campaigns leave them zero.
	//
	// Event and Items are KindShard extras: what happened ("claimed",
	// "completed", "requeued") and how many experiments the shard covers.
	Campaign string `json:"campaign,omitempty"`
	Shard    int    `json:"shard,omitempty"`
	Node     string `json:"node,omitempty"`
	Span     int64  `json:"span,omitempty"`
	Event    string `json:"event,omitempty"`
	Items    int    `json:"items,omitempty"`
	// DivergedAt/ConvergedAt are the ladder-rung cycles bounding the
	// fault's architecturally-visible lifetime: the first rung whose
	// fingerprint diverged from golden and the rung where the run
	// converged back (ladder-enabled provenance runs only).
	DivergedAt  uint64 `json:"diverged_at,omitempty"`
	ConvergedAt uint64 `json:"converged_at,omitempty"`
	// Est, Margin, K, N, Planned, Look, Met, and Stopped are
	// KindConvergence extras: the estimator's running class fraction, its
	// Wilson half-width at the campaign's confidence, the class tally and
	// committed plan-order prefix it was computed from, the planned total,
	// the sequential look index, whether the target margin is met, and
	// whether the estimator's component has been truncated by the
	// sequential stopping rule. All omitted when zero, so other record
	// kinds round-trip byte-identically.
	Est     float64 `json:"est,omitempty"`
	Margin  float64 `json:"margin,omitempty"`
	K       int     `json:"k,omitempty"`
	N       int     `json:"n,omitempty"`
	Planned int     `json:"planned,omitempty"`
	Look    int     `json:"look,omitempty"`
	Met     bool    `json:"met,omitempty"`
	Stopped bool    `json:"stopped,omitempty"`
}

// TraceContext correlates the trace records of one distributed shard
// execution. The coordinator mints a monotonic span id per shard claim;
// the worker carries the context into the engines, which stamp it onto
// every injection/strike record they emit — so N nodes' trace streams
// merge into one coherent campaign tree, and the records of a shard that
// ran twice (lease expiry, requeue) are distinguishable by span.
type TraceContext struct {
	Campaign string
	Shard    int
	Node     string
	Span     int64
}

// Stamp writes the context onto a record. The zero context — in-process,
// non-federated campaigns — stamps nothing, keeping their records
// byte-identical to pre-federation traces.
func (tc TraceContext) Stamp(rec *Record) {
	if tc.Campaign == "" {
		return
	}
	rec.Campaign = tc.Campaign
	rec.Shard = tc.Shard
	rec.Node = tc.Node
	rec.Span = tc.Span
}

// RecordSink receives every record a tracer emits, after sequence
// assignment. Implementations must be safe for concurrent use; the
// campaign service's telemetry shipper is one.
type RecordSink interface {
	EmitRecord(rec Record)
}

// traceFlushBytes is the buffered-writer batch size.
const traceFlushBytes = 64 << 10

// Tracer streams Records as JSON lines to a writer. Safe for concurrent
// use by many campaign workers; a nil *Tracer discards everything. A
// tracer built over a nil writer only assigns sequence numbers and feeds
// its sink — workers federating telemetry without a local trace file use
// that shape.
type Tracer struct {
	seq  atomic.Int64
	sink atomic.Pointer[RecordSink]

	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error
}

// NewTracer builds a tracer over w (nil for a sink-only tracer). The
// caller owns w and closes it after Flush.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, buf: make([]byte, 0, traceFlushBytes+4096)}
}

// Tee attaches a sink that receives a copy of every record emitted from
// now on, in addition to (not instead of) the writer. Attach before the
// campaign starts; the last sink attached wins.
func (t *Tracer) Tee(s RecordSink) {
	if t == nil || s == nil {
		return
	}
	t.sink.Store(&s)
}

// Emit assigns the record its sequence number and queues it for writing.
func (t *Tracer) Emit(rec *Record) {
	if t == nil {
		return
	}
	rec.Seq = t.seq.Add(1) - 1
	if sp := t.sink.Load(); sp != nil {
		(*sp).EmitRecord(*rec)
	}
	if t.w == nil {
		return
	}
	line, err := json.Marshal(rec) // outside the lock: the expensive part
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		if t.err == nil {
			t.err = fmt.Errorf("obs: marshalling trace record: %w", err)
		}
		return
	}
	t.buf = append(t.buf, line...)
	t.buf = append(t.buf, '\n')
	if len(t.buf) >= traceFlushBytes {
		t.flushLocked()
	}
}

func (t *Tracer) flushLocked() {
	if t.err != nil || len(t.buf) == 0 {
		t.buf = t.buf[:0]
		return
	}
	_, err := t.w.Write(t.buf)
	t.buf = t.buf[:0]
	if err != nil {
		t.err = fmt.Errorf("obs: writing trace: %w", err)
	}
}

// Flush writes any buffered records and reports the first error the
// tracer has seen.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushLocked()
	return t.err
}

// Emitted returns the number of records emitted so far.
func (t *Tracer) Emitted() int64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}
