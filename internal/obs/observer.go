// Package obs is the campaign observability layer: per-injection
// lifecycle traces (trace.go), a metrics registry with atomic hot-path
// updates (metrics.go), live HTTP exposition with pprof (http.go), and a
// trace reader that recomputes campaign statistics from a JSONL file so a
// trace can be cross-checked against the engine's own Result
// (summary.go).
//
// The campaign engines (internal/core/gefin, internal/core/beam) accept
// an *Observer in their Config and call its hooks from the worker hot
// path; a nil Observer makes every hook a no-op, so untraced campaigns
// pay nothing.
package obs

import (
	"io"
	"sync"
	"time"

	"armsefi/internal/core/fault"
	"armsefi/internal/core/sched"
	"armsefi/internal/soc"
)

// Options parameterises an Observer.
type Options struct {
	// TraceWriter receives the JSONL lifecycle trace; nil disables
	// tracing (metrics still work).
	TraceWriter io.Writer
	// Registry receives the campaign metrics; nil allocates a private
	// registry (reachable via Registry()).
	Registry *Registry
}

// Observer bundles a campaign's trace emitter and metrics and is the
// hook surface the engines instrument against. All methods are safe on a
// nil receiver (no-ops) and for concurrent use.
type Observer struct {
	trace *Tracer
	reg   *Registry
	epoch time.Time

	// ladderMu guards the per-workload checkpoint-memory snapshot behind
	// LadderMemoryTotals (telemetry reads it off the hot path).
	ladderMu     sync.Mutex
	ladderTotal  map[string]int
	ladderShared map[string]int

	outcomes   map[outcomeKey]*Counter
	latency    map[string]*Histogram
	granted    *Counter
	denied     *Counter
	rungHits   *Counter
	ffCycles   *Counter
	earlyExits *Counter
	done       *Gauge
	total      *Gauge
	workers    *Gauge
	rate       *Gauge
}

type outcomeKey struct {
	kind  string
	comp  fault.Component
	class fault.Class
}

// New builds an Observer. The epoch for trace start offsets is the call
// instant.
func New(opts Options) *Observer {
	reg := opts.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	o := &Observer{
		reg:      reg,
		epoch:    time.Now(),
		outcomes: make(map[outcomeKey]*Counter),
		latency:  make(map[string]*Histogram),
	}
	if opts.TraceWriter != nil {
		o.trace = NewTracer(opts.TraceWriter)
	}
	// Pre-resolve the class x component counter grid for both kinds so
	// the per-injection path is a map read plus an atomic add.
	for _, kind := range []string{KindInjection, KindStrike} {
		for _, comp := range fault.Components() {
			for _, cls := range fault.Classes() {
				o.outcomes[outcomeKey{kind, comp, cls}] = reg.Counter(
					"armsefi_outcomes_total", "experiment outcomes by kind, class, and component",
					"kind", kind, "class", cls.String(), "comp", comp.String())
			}
		}
		o.latency[kind] = reg.Histogram(
			"armsefi_experiment_wall_seconds", "wall time of one injection or strike",
			DefaultLatencyBuckets(), "kind", kind)
	}
	o.granted = reg.Counter("armsefi_clone_acquires_total",
		"clone workbench pool-slot acquisitions by result", "result", "granted")
	o.denied = reg.Counter("armsefi_clone_acquires_total",
		"clone workbench pool-slot acquisitions by result", "result", "denied")
	o.rungHits = reg.Counter("armsefi_ladder_rung_hits_total",
		"injection runs fast-forwarded by a checkpoint-ladder rung restore")
	o.ffCycles = reg.Counter("armsefi_ladder_fastforward_cycles_total",
		"simulated cycles skipped by rung restores and golden-convergence early exits")
	o.earlyExits = reg.Counter("armsefi_ladder_early_exits_total",
		"injection runs cut short by golden convergence")
	o.done = reg.Gauge("armsefi_campaign_done", "experiments completed so far")
	o.total = reg.Gauge("armsefi_campaign_total", "experiments planned (grows as workloads register)")
	o.workers = reg.Gauge("armsefi_campaign_workers", "live campaign workers")
	o.rate = reg.Gauge("armsefi_campaign_rate", "aggregate campaign throughput, experiments/sec")
	return o
}

// On reports whether hooks do anything; engines may use it to skip
// record assembly entirely.
func (o *Observer) On() bool { return o != nil }

// Tracing reports whether a trace consumer (writer or teed sink) is
// attached.
func (o *Observer) Tracing() bool { return o != nil && o.trace != nil }

// Tee routes a copy of every trace record this observer emits into s,
// creating a sink-only tracer if no trace writer was configured. The
// campaign-service worker tees its observer into the telemetry shipper
// so records federate to the coordinator whether or not a local -trace
// file is open. Attach before the campaign starts.
func (o *Observer) Tee(s RecordSink) {
	if o == nil || s == nil {
		return
	}
	if o.trace == nil {
		o.trace = NewTracer(nil)
	}
	o.trace.Tee(s)
}

// Registry returns the metrics registry (nil on a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Record finalises one experiment: stamps the record's wall-clock fields
// from start/stop, streams it to the trace, and updates the outcome
// counters and latency histogram.
func (o *Observer) Record(rec Record, start, stop time.Time) {
	if o == nil {
		return
	}
	rec.StartNS = start.Sub(o.epoch).Nanoseconds()
	rec.WallNS = stop.Sub(start).Nanoseconds()
	if c, ok := o.outcomes[outcomeKey{rec.Kind, rec.Comp, rec.Class}]; ok {
		c.Inc()
	} else { // ablation components outside the pre-resolved grid
		o.reg.Counter("armsefi_outcomes_total", "experiment outcomes by kind, class, and component",
			"kind", rec.Kind, "class", rec.Class.String(), "comp", rec.Comp.String()).Inc()
	}
	if h, ok := o.latency[rec.Kind]; ok {
		h.Observe(float64(rec.WallNS) / 1e9)
	}
	o.trace.Emit(&rec)
}

// MeterTick feeds a sched.Meter snapshot into the campaign gauges. The
// engines call it from inside Meter.Tick, so values are monotone per
// campaign.
func (o *Observer) MeterTick(s sched.Snapshot) {
	if o == nil {
		return
	}
	o.done.Set(float64(s.Done))
	o.total.Set(float64(s.Total))
	o.workers.Set(float64(s.Workers))
	o.rate.Set(s.Rate)
}

// ObservePool binds the pool-occupancy gauges to the campaign's worker
// pool (rebinding is fine: fitcompare runs two campaigns back to back).
func (o *Observer) ObservePool(p *sched.Pool) {
	if o == nil || p == nil {
		return
	}
	o.reg.GaugeFunc("armsefi_pool_in_use", "worker-pool tokens currently held",
		func() float64 { return float64(p.InUse()) })
	o.reg.GaugeFunc("armsefi_pool_capacity", "worker-pool token capacity",
		func() float64 { return float64(p.Cap()) })
}

// LadderRun records what the checkpoint ladder did for one experiment: a
// rung restore above cycle zero (with the golden-prefix cycles it
// skipped) and/or a golden-convergence early exit (with the tail cycles
// it saved). Campaigns without a ladder never call it.
func (o *Observer) LadderRun(s soc.LadderStats) {
	if o == nil {
		return
	}
	if s.FastForwarded > 0 {
		o.rungHits.Inc()
		o.ffCycles.Add(int64(s.FastForwarded))
	}
	if s.EarlyExit {
		o.earlyExits.Inc()
		o.ffCycles.Add(int64(s.TailSaved))
	}
}

// Mechanism records one propagation-provenance verdict into the
// mechanism x component x workload counter grid. Only provenance-enabled
// campaigns call it, so the on-demand counter resolution is off the
// plain hot path.
func (o *Observer) Mechanism(workload string, comp fault.Component, m fault.Mechanism) {
	if o == nil {
		return
	}
	o.reg.Counter("armsefi_mechanism_total",
		"propagation-provenance mechanism verdicts by workload and component",
		"workload", workload, "comp", comp.String(), "mechanism", m.String()).Inc()
}

// Predicted records one campaign pre-filter verdict: an injection proven
// masked from the liveness log and excluded from simulation. It feeds
// the predicted counter grid only — the outcome grid is updated by the
// Record call the engine emits for the predicted record, keeping
// armsefi_outcomes_total consistent with the (byte-identical) Result,
// while armsefi_mechanism_total stays simulated-only so the
// predicted/simulated split is recoverable from metrics alone.
func (o *Observer) Predicted(workload string, comp fault.Component, m fault.Mechanism) {
	if o == nil {
		return
	}
	o.reg.Counter("armsefi_predicted_total",
		"injections proven masked by the campaign pre-filter, by workload, component, and mechanism",
		"workload", workload, "comp", comp.String(), "mechanism", m.String()).Inc()
}

// Deduped records one equivalence-class materialization: a class member
// resolved from its representative's simulated outcome. Like Predicted
// it feeds its own counter grid only — the outcome grid is updated by
// the dedup-tagged Record the engine emits — so the
// simulated/deduplicated split is recoverable from metrics alone.
func (o *Observer) Deduped(workload string, comp fault.Component) {
	if o == nil {
		return
	}
	o.reg.Counter("armsefi_dedup_total",
		"injections resolved from an equivalence-class representative, by workload and component",
		"workload", workload, "comp", comp.String()).Inc()
}

// DedupClasses publishes a workload plan's equivalence-class size
// distribution: one histogram observation per multi-member class. The
// buckets cover the plausible collision range of a sampled campaign —
// classes bigger than the top bound land in +Inf.
func (o *Observer) DedupClasses(workload string, sizes []int) {
	if o == nil || len(sizes) == 0 {
		return
	}
	h := o.reg.Histogram("armsefi_dedup_class_size",
		"equivalence-class sizes (members per multi-member class) of deduplicated campaign plans",
		[]float64{2, 3, 4, 6, 8, 12, 16, 24, 32, 64},
		"workload", workload)
	for _, n := range sizes {
		h.Observe(float64(n))
	}
}

// LadderMemory publishes a workload ladder's checkpoint memory: total
// retained bytes and the bytes shared across rungs by copy-on-write page
// interning (bytes a delta-per-rung encoding would have duplicated —
// and, because rung images are immutable, the same figure every
// additional worker avoids re-materialising).
func (o *Observer) LadderMemory(workload string, total, shared int) {
	if o == nil {
		return
	}
	o.reg.Gauge("armsefi_ladder_memory_bytes",
		"checkpoint-ladder retained memory by workload", "workload", workload).Set(float64(total))
	o.reg.Gauge("armsefi_ladder_shared_bytes",
		"checkpoint-ladder bytes shared through copy-on-write page interning, by workload",
		"workload", workload).Set(float64(shared))
	o.ladderMu.Lock()
	if o.ladderTotal == nil {
		o.ladderTotal = make(map[string]int)
		o.ladderShared = make(map[string]int)
	}
	o.ladderTotal[workload] = total
	o.ladderShared[workload] = shared
	o.ladderMu.Unlock()
}

// LadderMemoryTotals sums the latest per-workload checkpoint-memory
// figures across workloads — the node-level numbers telemetry federates
// to the fleet view.
func (o *Observer) LadderMemoryTotals() (total, shared int64) {
	if o == nil {
		return 0, 0
	}
	o.ladderMu.Lock()
	defer o.ladderMu.Unlock()
	for _, n := range o.ladderTotal {
		total += int64(n)
	}
	for _, n := range o.ladderShared {
		shared += int64(n)
	}
	return total, shared
}

// AceRun records one ACE-analysis lifetime pass: the workload/component
// analysed and its resulting AVF estimate (0..1). ACE runs are golden
// replays, not injections, so they feed gauges rather than the outcome
// grid.
func (o *Observer) AceRun(workload string, comp fault.Component, avf float64, wall time.Duration) {
	if o == nil {
		return
	}
	o.reg.Counter("armsefi_ace_runs_total", "ACE lifetime-analysis passes",
		"workload", workload, "comp", comp.String()).Inc()
	o.reg.Gauge("armsefi_ace_avf", "ACE-estimated architectural vulnerability factor",
		"workload", workload, "comp", comp.String()).Set(avf)
	o.reg.Histogram("armsefi_ace_wall_seconds", "wall time of one ACE analysis pass",
		DefaultLatencyBuckets()).Observe(wall.Seconds())
}

// ShardEvent traces one campaign-service shard lifecycle event
// (claimed / completed / requeued) and updates the shard counters. It
// bypasses the outcome grid — shards are scheduling units, not
// experiments — but shares the tracer, so a campaign's JSONL trace
// interleaves shard scheduling with the injections it covers.
// The metric labels carry only the event name — campaign ids, shard
// indices, and node names are unbounded and belong in the trace record,
// not in metric cardinality.
func (o *Observer) ShardEvent(campaign, workload, node, event string, shard, items int, span int64, wall time.Duration) {
	if o == nil {
		return
	}
	o.reg.Counter("armsefi_serve_shard_events_total",
		"campaign-service shard lifecycle events", "event", event).Inc()
	if event == "completed" {
		o.reg.Counter("armsefi_serve_items_total",
			"experiments completed through the campaign service").Add(int64(items))
	}
	if o.trace != nil {
		now := time.Now()
		o.trace.Emit(&Record{
			Kind:     KindShard,
			Workload: workload,
			Campaign: campaign,
			Shard:    shard,
			Node:     node,
			Span:     span,
			Event:    event,
			Items:    items,
			StartNS:  now.Add(-wall).Sub(o.epoch).Nanoseconds(),
			WallNS:   wall.Nanoseconds(),
		})
	}
}

// Lease records campaign-service lease-manager activity: grants, renews,
// and expiries (an expiry requeues the shard for another node).
func (o *Observer) Lease(event string) {
	if o == nil {
		return
	}
	o.reg.Counter("armsefi_serve_leases_total",
		"campaign-service shard lease events", "event", event).Inc()
}

// ObserveService binds the campaign-service gauges: admission-queue
// depth, campaigns actively running, and live shard leases.
func (o *Observer) ObserveService(queued, active, leases func() float64) {
	if o == nil {
		return
	}
	o.reg.GaugeFunc("armsefi_serve_queue_depth",
		"campaigns waiting for admission", queued)
	o.reg.GaugeFunc("armsefi_serve_active_campaigns",
		"campaigns currently running", active)
	o.reg.GaugeFunc("armsefi_serve_live_leases",
		"shard leases currently held by worker nodes", leases)
}

// FleetNode records one node's telemetry snapshot into the per-node
// fleet gauges: reported throughput, cumulative experiments, and
// cumulative shards. The coordinator calls it per telemetry batch, so
// the node label cardinality is bounded by the fleet size.
func (o *Observer) FleetNode(node string, rate float64, items, shards int64) {
	if o == nil {
		return
	}
	o.reg.Gauge("armsefi_fleet_node_rate",
		"per-node experiment throughput reported via telemetry, experiments/sec",
		"node", node).Set(rate)
	o.reg.Gauge("armsefi_fleet_node_items",
		"cumulative experiments a node has reported via telemetry",
		"node", node).Set(float64(items))
	o.reg.Gauge("armsefi_fleet_node_shards",
		"cumulative shards a node has completed, as reported via telemetry",
		"node", node).Set(float64(shards))
}

// FleetRenew records one lease-renew round-trip latency observed by a
// worker node (shipped to the coordinator in its telemetry batches).
func (o *Observer) FleetRenew(node string, seconds float64) {
	if o == nil {
		return
	}
	o.reg.Histogram("armsefi_fleet_renew_seconds",
		"lease-renew round-trip latency by node",
		RenewLatencyBuckets(), "node", node).Observe(seconds)
}

// ObserveFleet binds the fleet-health gauges: shard executions running
// past the straggler threshold and telemetry-reporting nodes that have
// gone quiet past the stalled threshold.
func (o *Observer) ObserveFleet(stragglers, stalled func() float64) {
	if o == nil {
		return
	}
	o.reg.GaugeFunc("armsefi_fleet_stragglers",
		"shard executions running past the straggler threshold", stragglers)
	o.reg.GaugeFunc("armsefi_fleet_stalled_nodes",
		"telemetry-reporting nodes not heard from within the stalled threshold", stalled)
}

// CloneTry records one clone-slot acquisition attempt; the granted/denied
// ratio is the clone-acquire success rate.
func (o *Observer) CloneTry(ok bool) {
	if o == nil {
		return
	}
	if ok {
		o.granted.Inc()
	} else {
		o.denied.Inc()
	}
}

// Close flushes the trace and reports any write error. The observer
// stays usable for metrics afterwards.
func (o *Observer) Close() error {
	if o == nil {
		return nil
	}
	return o.trace.Flush()
}
