// Statistical-convergence observability: a registry of streaming
// binomial estimators — one per (workload, component, outcome class) —
// that the campaign engines feed from their serialized plan-order
// tallies (predicted and simulated verdicts both count). Snapshots flow
// out three ways: periodic KindConvergence trace records, the
// armsefi_avf / armsefi_margin gauges, and (through the telemetry
// shipper) the coordinator's per-campaign merged convergence view.

package obs

import (
	"sort"
	"sync"
	"time"

	"armsefi/internal/core/fault"
	"armsefi/internal/stats"
)

// ConvKey identifies one streaming estimator.
type ConvKey struct {
	Workload string          `json:"workload"`
	Comp     fault.Component `json:"comp"`
	Class    fault.Class     `json:"class"`
}

// ConvSnapshot is one estimator's state at a look: the running class
// fraction over the committed plan-order prefix, its Wilson half-width
// at the campaign's confidence, and the sequential-stopping state. The
// Masked-class snapshot doubles as the AVF estimator — AVF = 1 - Est
// with the identical margin (the Wilson half-width is symmetric under
// k -> n-k).
type ConvSnapshot struct {
	ConvKey
	// K successes in N committed trials out of Planned drawn.
	K       int `json:"k"`
	N       int `json:"n"`
	Planned int `json:"planned"`
	// Est is K/N; Margin the Wilson half-width at the rule's confidence.
	Est    float64 `json:"est"`
	Margin float64 `json:"margin"`
	// Look is the sequential look index the estimator last evaluated at;
	// Met reports whether Margin is at or below the target; Stopped
	// whether the component has been truncated by the stopping rule.
	Look    int  `json:"look"`
	Met     bool `json:"met,omitempty"`
	Stopped bool `json:"stopped,omitempty"`
}

// ConvRegistry is the estimator registry of one campaign run. Engines
// feed it from their serialized plan-order commit paths; readers pull
// deterministic sorted snapshots for traces, gauges, and telemetry.
type ConvRegistry struct {
	rule stats.SeqRule

	mu   sync.Mutex
	est  map[ConvKey]*ConvSnapshot
	keys []ConvKey
}

// NewConvRegistry builds a registry judging margins under rule.
func NewConvRegistry(rule stats.SeqRule) *ConvRegistry {
	return &ConvRegistry{rule: rule, est: make(map[ConvKey]*ConvSnapshot)}
}

// Rule returns the registry's stopping rule.
func (r *ConvRegistry) Rule() stats.SeqRule {
	if r == nil {
		return stats.SeqRule{}
	}
	return r.rule
}

// Update records one estimator's plan-order tally — k occurrences of the
// key's class in the first n committed slots of planned — and returns
// the estimator's refreshed snapshot. Safe on a nil registry (campaigns
// without convergence tracking pay nothing).
func (r *ConvRegistry) Update(key ConvKey, k, n, planned, look int, stopped bool) ConvSnapshot {
	if r == nil {
		return ConvSnapshot{ConvKey: key}
	}
	margin := r.rule.Margin(k, n)
	est := 0.0
	if n > 0 {
		est = float64(k) / float64(n)
	}
	r.mu.Lock()
	s, ok := r.est[key]
	if !ok {
		s = &ConvSnapshot{ConvKey: key}
		r.est[key] = s
		r.keys = append(r.keys, key)
	}
	s.K, s.N, s.Planned, s.Look = k, n, planned, look
	s.Est, s.Margin = est, margin
	s.Met = r.rule.Enabled() && margin <= r.rule.TargetMargin
	s.Stopped = stopped
	snap := *s
	r.mu.Unlock()
	return snap
}

// Snapshots returns every estimator's latest state, sorted by workload,
// component, class — a deterministic order for traces and tables.
func (r *ConvRegistry) Snapshots() []ConvSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]ConvSnapshot, 0, len(r.keys))
	for _, k := range r.keys {
		out = append(out, *r.est[k])
	}
	r.mu.Unlock()
	SortConvSnapshots(out)
	return out
}

// SortConvSnapshots orders snapshots by workload, component, class —
// the canonical order of convergence tables and merged views.
func SortConvSnapshots(s []ConvSnapshot) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Workload != s[j].Workload {
			return s[i].Workload < s[j].Workload
		}
		if s[i].Comp != s[j].Comp {
			return s[i].Comp < s[j].Comp
		}
		return s[i].Class < s[j].Class
	})
}

// Convergence publishes a batch of estimator snapshots: one
// KindConvergence trace record per snapshot (stamped with tc) plus the
// armsefi_avf{workload,comp} and armsefi_margin{workload,comp,class}
// gauges. The AVF gauge is fed from the Masked-class snapshot (AVF is
// its complement); the margin gauge covers every class.
func (o *Observer) Convergence(snaps []ConvSnapshot, tc TraceContext) {
	if o == nil || len(snaps) == 0 {
		return
	}
	now := time.Now()
	for _, s := range snaps {
		if s.Class == fault.ClassMasked {
			o.reg.Gauge("armsefi_avf",
				"running AVF estimate over the committed plan-order prefix",
				"workload", s.Workload, "comp", s.Comp.String()).Set(1 - s.Est)
		}
		o.reg.Gauge("armsefi_margin",
			"confidence-interval half-width of the running class-fraction estimate",
			"workload", s.Workload, "comp", s.Comp.String(), "class", s.Class.String()).Set(s.Margin)
		if o.trace != nil {
			rec := Record{
				Kind:     KindConvergence,
				Workload: s.Workload,
				Comp:     s.Comp,
				Class:    s.Class,
				K:        s.K,
				N:        s.N,
				Planned:  s.Planned,
				Est:      s.Est,
				Margin:   s.Margin,
				Look:     s.Look,
				Met:      s.Met,
				Stopped:  s.Stopped,
				StartNS:  now.Sub(o.epoch).Nanoseconds(),
			}
			tc.Stamp(&rec)
			o.trace.Emit(&rec)
		}
	}
}
