// Profile capture for batch campaign runs: the -cpuprofile and
// -memprofile flags map onto pprof files without needing the live
// HTTP endpoint's /debug/pprof/ handlers.

package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling into cpuPath (if non-empty) and
// arranges a heap profile to be written to memPath (if non-empty). The
// returned stop function must be called exactly once when the campaign
// finishes — typically deferred right after a successful Start — and it
// stops the CPU profile, forces a GC, and writes the heap profile.
// Either path may be empty; with both empty the stop function is a
// no-op.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		cpuF = f
	}
	return func() error {
		var first error
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				first = fmt.Errorf("obs: cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("obs: mem profile: %w", err)
				}
				return first
			}
			runtime.GC() // materialise up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("obs: mem profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("obs: mem profile: %w", err)
			}
		}
		return first
	}, nil
}
