// Trace reader: recomputes campaign statistics from a JSONL lifecycle
// trace, so a trace file can be cross-checked against the engine's own
// Result (cmd/tracestat drives this; the engines' obs tests assert exact
// agreement at every worker count).

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"armsefi/internal/core/fault"
)

// ComponentSummary aggregates one workload x component's trace records.
type ComponentSummary struct {
	// Records counts trace records for this component.
	Records int
	// Counts is the per-class outcome tally — for injection traces this
	// must equal the engine's ComponentResult.Counts exactly.
	Counts map[fault.Class]int
	// Weights is the per-class sum of stratification weights, accumulated
	// in sequence order so it reproduces the beam engine's per-chain
	// floating-point accumulation bit-for-bit.
	Weights map[fault.Class]float64
	// WallNS is total wall time spent executing this component's
	// experiments; MaxWallNS the slowest single experiment.
	WallNS    int64
	MaxWallNS int64
	// Mechanisms tallies the propagation-provenance verdicts of records
	// that carry one; MechRecords counts those records. For a provenance
	// campaign the mechanism tallies must partition Counts exactly —
	// cmd/tracestat enforces it.
	Mechanisms  map[fault.Mechanism]int
	MechRecords int
	// MechMismatch counts records whose mechanism verdict contradicts
	// their outcome class (or failed to parse) — always zero for a
	// healthy trace.
	MechMismatch int
	// Predicted counts records resolved by the ACE pre-filter without
	// simulation; PredMechanisms tallies their mechanism verdicts. A
	// predicted record must be ClassMasked with a valid mechanism —
	// PredBad counts violations (always zero for a healthy trace).
	Predicted      int
	PredMechanisms map[fault.Mechanism]int
	PredBad        int
	// Deduped counts records materialized from an equivalence-class
	// representative without simulation.
	Deduped int
}

// WorkloadSummary aggregates one workload's trace records.
type WorkloadSummary struct {
	Components map[fault.Component]*ComponentSummary
}

// KindSummary aggregates all records of one kind (injection, strike, or
// shard).
type KindSummary struct {
	Records   int
	Workloads map[string]*WorkloadSummary
	// Events tallies KindShard records by lifecycle event (claimed /
	// completed / requeued); empty for experiment kinds.
	Events map[string]int
}

// Summary is the recomputed view of a whole trace file.
type Summary struct {
	// Records is the total line count.
	Records int
	// ByKind splits the trace by record kind.
	ByKind map[string]*KindSummary
	// Workers counts records per executing workbench id.
	Workers map[int]int
	// Nodes counts records per fleet node (records without a node label —
	// in-process campaigns — land under "").
	Nodes map[string]int
	// Wall holds every record's wall duration (ns), sorted ascending —
	// the source for latency quantiles.
	Wall []int64
	// Conv holds the KindConvergence records in sequence order; the last
	// record per (workload, comp, class) is each estimator's final state
	// (see LastConv).
	Conv []Record
}

// Kind returns the summary for one record kind, never nil.
func (s *Summary) Kind(kind string) *KindSummary {
	if k, ok := s.ByKind[kind]; ok {
		return k
	}
	return &KindSummary{Workloads: map[string]*WorkloadSummary{}, Events: map[string]int{}}
}

// Component returns the per-component tally for a kind, workload, and
// component, never nil.
func (s *Summary) Component(kind, workload string, comp fault.Component) *ComponentSummary {
	if w, ok := s.Kind(kind).Workloads[workload]; ok {
		if c, ok := w.Components[comp]; ok {
			return c
		}
	}
	return &ComponentSummary{
		Counts:         map[fault.Class]int{},
		Weights:        map[fault.Class]float64{},
		Mechanisms:     map[fault.Mechanism]int{},
		PredMechanisms: map[fault.Mechanism]int{},
	}
}

// LastConv returns each convergence estimator's final state: the
// highest-sequence KindConvergence record per (workload, comp, class),
// in canonical snapshot order.
func (s *Summary) LastConv() []ConvSnapshot {
	last := make(map[ConvKey]ConvSnapshot)
	var keys []ConvKey
	for _, rec := range s.Conv { // Conv is already sequence-sorted
		key := ConvKey{Workload: rec.Workload, Comp: rec.Comp, Class: rec.Class}
		if _, ok := last[key]; !ok {
			keys = append(keys, key)
		}
		last[key] = ConvSnapshot{
			ConvKey: key,
			K:       rec.K, N: rec.N, Planned: rec.Planned,
			Est: rec.Est, Margin: rec.Margin,
			Look: rec.Look, Met: rec.Met, Stopped: rec.Stopped,
		}
	}
	out := make([]ConvSnapshot, 0, len(keys))
	for _, k := range keys {
		out = append(out, last[k])
	}
	SortConvSnapshots(out)
	return out
}

// WallQuantile returns the q-th latency quantile (0..1) in nanoseconds.
func (s *Summary) WallQuantile(q float64) int64 {
	if len(s.Wall) == 0 {
		return 0
	}
	i := int(q * float64(len(s.Wall)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(s.Wall) {
		i = len(s.Wall) - 1
	}
	return s.Wall[i]
}

// ReadSummary parses a JSONL trace and recomputes its aggregate
// statistics. Records are re-ordered by sequence number before weight
// accumulation, restoring each worker chain's execution order.
func ReadSummary(r io.Reader) (*Summary, error) {
	recs, err := ReadRecords(r)
	if err != nil {
		return nil, err
	}
	return Summarize(recs), nil
}

// ReadRecords parses every line of a JSONL trace.
func ReadRecords(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return recs, nil
}

// Summarize aggregates parsed records into a Summary.
func Summarize(recs []Record) *Summary {
	sorted := append([]Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	s := &Summary{
		ByKind:  make(map[string]*KindSummary),
		Workers: make(map[int]int),
		Nodes:   make(map[string]int),
	}
	for _, rec := range sorted {
		s.Records++
		s.Workers[rec.Worker]++
		s.Nodes[rec.Node]++
		s.Wall = append(s.Wall, rec.WallNS)
		k, ok := s.ByKind[rec.Kind]
		if !ok {
			k = &KindSummary{Workloads: make(map[string]*WorkloadSummary), Events: make(map[string]int)}
			s.ByKind[rec.Kind] = k
		}
		k.Records++
		if rec.Event != "" {
			k.Events[rec.Event]++
		}
		if rec.Kind == KindConvergence {
			s.Conv = append(s.Conv, rec)
		}
		w, ok := k.Workloads[rec.Workload]
		if !ok {
			w = &WorkloadSummary{Components: make(map[fault.Component]*ComponentSummary)}
			k.Workloads[rec.Workload] = w
		}
		c, ok := w.Components[rec.Comp]
		if !ok {
			c = &ComponentSummary{
				Counts:         make(map[fault.Class]int),
				Weights:        make(map[fault.Class]float64),
				Mechanisms:     make(map[fault.Mechanism]int),
				PredMechanisms: make(map[fault.Mechanism]int),
			}
			w.Components[rec.Comp] = c
		}
		c.Records++
		c.Counts[rec.Class]++
		if rec.Predicted {
			c.Predicted++
			if m, ok := fault.MechanismByName(rec.Mechanism); ok && m.Masking() && rec.Class == fault.ClassMasked {
				c.PredMechanisms[m]++
			} else {
				c.PredBad++
			}
		}
		if rec.Dedup {
			c.Deduped++
		}
		if rec.Mechanism != "" {
			c.MechRecords++
			if m, ok := fault.MechanismByName(rec.Mechanism); ok {
				c.Mechanisms[m]++
				if !m.Matches(rec.Class) {
					c.MechMismatch++
				}
			} else {
				c.MechMismatch++
			}
		}
		if rec.Weight != 0 && rec.Class != fault.ClassMasked {
			c.Weights[rec.Class] += rec.Weight
		}
		c.WallNS += rec.WallNS
		if rec.WallNS > c.MaxWallNS {
			c.MaxWallNS = rec.WallNS
		}
	}
	sort.Slice(s.Wall, func(i, j int) bool { return s.Wall[i] < s.Wall[j] })
	return s
}

// ModeledEvents recomputes a workload's per-class weighted event counts
// from a strike trace, merging components in the beam engine's canonical
// order so the sums are bit-identical to Result.ModeledEvents.
func (s *Summary) ModeledEvents(workload string) map[fault.Class]float64 {
	out := make(map[fault.Class]float64, fault.NumClasses)
	for _, comp := range fault.Components() {
		c := s.Component(KindStrike, workload, comp)
		for _, cls := range fault.Classes() {
			if v, ok := c.Weights[cls]; ok {
				out[cls] += v
			}
		}
	}
	return out
}
