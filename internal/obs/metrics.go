// Metrics registry of the observability layer: counters, gauges, and
// histograms with atomic hot-path updates, exposed as Prometheus text and
// expvar-style JSON by the HTTP handler in http.go.
//
// The registry mutex guards only metric creation and exposition; every
// update (Counter.Add, Gauge.Set, Histogram.Observe) is a plain atomic
// operation, so instrumented campaign workers never serialise on the
// registry. Callers resolve their metric handles once at campaign start
// and hold the pointers.

package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	name, labels, help string
	v                  atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, or be backed by a callback
// evaluated at exposition time (for values owned elsewhere, like pool
// occupancy).
type Gauge struct {
	name, labels, help string
	bits               atomic.Uint64 // float64 bits
	mu                 sync.Mutex
	fn                 func() float64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetFunc makes the gauge read v() at exposition time, replacing any
// previous callback or stored value.
func (g *Gauge) SetFunc(fn func() float64) {
	g.mu.Lock()
	g.fn = fn
	g.mu.Unlock()
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	fn := g.fn
	g.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution (Prometheus-style cumulative
// exposition). Observations are lock-free.
type Histogram struct {
	name, labels, help string
	bounds             []float64 // ascending upper bounds; +Inf is implicit
	counts             []atomic.Int64
	sumBits            atomic.Uint64 // float64 bits, CAS-accumulated
	count              atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le is inclusive)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-th quantile (0..1) of the observed
// distribution by linear interpolation over the cumulative bucket
// counts, Prometheus histogram_quantile style: the target rank is
// located in its bucket, then interpolated linearly between the
// bucket's bounds. Estimates in the overflow bucket clamp to the
// highest finite bound; an empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, b := range h.bounds {
		prev := cum
		cum += h.counts[i].Load()
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			in := h.counts[i].Load()
			if in == 0 {
				return b
			}
			frac := (rank - float64(prev)) / float64(in)
			if frac < 0 {
				frac = 0
			}
			return lower + (b-lower)*frac
		}
	}
	// Rank falls in the +Inf overflow bucket: clamp to the last bound.
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefaultLatencyBuckets spans the per-injection wall times of the campaign
// engines, from sub-millisecond atomic-model runs to multi-second detailed
// runs at paper scale.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
	}
}

// RenewLatencyBuckets spans lease-renew round trips, from sub-microsecond
// in-process coordinator calls to multi-second WAN hiccups. The
// sub-microsecond bounds rely on formatFloat rendering tiny bounds
// exactly ('g' format), not collapsing them to "0".
func RenewLatencyBuckets() []float64 {
	return []float64{
		2.5e-7, 1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1, 5,
	}
}

// Registry holds a campaign's metrics. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// formatLabels renders alternating key, value pairs as a Prometheus label
// set ("" for none).
func formatLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter with the given name and alternating label
// key, value pairs, creating it on first use.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	lbl := formatLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + lbl
	if c, ok := r.counters[key]; ok {
		return c
	}
	c := &Counter{name: name, labels: lbl, help: help}
	r.counters[key] = c
	return c
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	lbl := formatLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + lbl
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g := &Gauge{name: name, labels: lbl, help: help}
	r.gauges[key] = g
	return g
}

// GaugeFunc returns the gauge with the given name and labels bound to the
// callback fn, replacing any previous callback (campaigns run one after
// another in fitcompare and rebind the pool gauges).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) *Gauge {
	g := r.Gauge(name, help, kv...)
	g.SetFunc(fn)
	return g
}

// Histogram returns the histogram with the given name, labels, and bucket
// upper bounds, creating it on first use (bounds of an existing histogram
// are kept).
func (r *Registry) Histogram(name, help string, bounds []float64, kv ...string) *Histogram {
	lbl := formatLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + lbl
	if h, ok := r.histograms[key]; ok {
		return h
	}
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	h := &Histogram{
		name: name, labels: lbl, help: help,
		bounds: sorted,
		counts: make([]atomic.Int64, len(sorted)+1),
	}
	r.histograms[key] = h
	return h
}

// snapshot returns the registered metrics in deterministic order.
func (r *Registry) snapshot() (cs []*Counter, gs []*Gauge, hs []*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		cs = append(cs, c)
	}
	for _, g := range r.gauges {
		gs = append(gs, g)
	}
	for _, h := range r.histograms {
		hs = append(hs, h)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].name+cs[i].labels < cs[j].name+cs[j].labels })
	sort.Slice(gs, func(i, j int) bool { return gs[i].name+gs[i].labels < gs[j].name+gs[j].labels })
	sort.Slice(hs, func(i, j int) bool { return hs[i].name+hs[i].labels < hs[j].name+hs[j].labels })
	return cs, gs, hs
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (families sorted by name, HELP/TYPE emitted once per family).
func (r *Registry) WritePrometheus(w io.Writer) error {
	cs, gs, hs := r.snapshot()
	var err error
	emitHeader := func(last *string, name, help, typ string) {
		if err != nil || *last == name {
			return
		}
		*last = name
		if help != "" {
			_, err = fmt.Fprintf(w, "# HELP %s %s\n", name, help)
			if err != nil {
				return
			}
		}
		_, err = fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	}
	last := ""
	for _, c := range cs {
		emitHeader(&last, c.name, c.help, "counter")
		if err == nil {
			_, err = fmt.Fprintf(w, "%s%s %d\n", c.name, c.labels, c.Value())
		}
	}
	last = ""
	for _, g := range gs {
		emitHeader(&last, g.name, g.help, "gauge")
		if err == nil {
			_, err = fmt.Fprintf(w, "%s%s %g\n", g.name, g.labels, g.Value())
		}
	}
	last = ""
	for _, h := range hs {
		emitHeader(&last, h.name, h.help, "histogram")
		if err != nil {
			break
		}
		// Prometheus histograms are cumulative over ascending le bounds.
		inner := strings.TrimSuffix(strings.TrimPrefix(h.labels, "{"), "}")
		sep := ""
		if inner != "" {
			sep = ","
		}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err = fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", h.name, inner, sep, formatFloat(b), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err = fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", h.name, inner, sep, cum); err != nil {
			return err
		}
		if _, err = fmt.Fprintf(w, "%s_sum%s %g\n", h.name, h.labels, h.Sum()); err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s_count%s %d\n", h.name, h.labels, h.Count())
	}
	return err
}

// formatFloat renders a histogram bucket bound exactly: shortest decimal
// string that round-trips the float64. The %f-based formatting this
// replaces collapsed sub-microsecond bounds to "0" (every lease-renew
// bucket below 1e-6 became indistinguishable) and bloated large bounds
// with trailing zero noise.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders the registry as an expvar-style JSON object: one key
// per series (name plus label set), histograms as {count, sum, buckets}.
func (r *Registry) WriteJSON(w io.Writer) error {
	cs, gs, hs := r.snapshot()
	var b strings.Builder
	b.WriteString("{")
	first := true
	key := func(name, labels string) {
		if !first {
			b.WriteString(",\n ")
		} else {
			b.WriteString("\n ")
		}
		first = false
		fmt.Fprintf(&b, "%q: ", name+labels)
	}
	for _, c := range cs {
		key(c.name, c.labels)
		fmt.Fprintf(&b, "%d", c.Value())
	}
	for _, g := range gs {
		key(g.name, g.labels)
		fmt.Fprintf(&b, "%g", g.Value())
	}
	for _, h := range hs {
		key(h.name, h.labels)
		fmt.Fprintf(&b, "{\"count\": %d, \"sum\": %g, \"buckets\": {", h.Count(), h.Sum())
		for i, bd := range h.bounds {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%q: %d", formatFloat(bd), h.counts[i].Load())
		}
		if len(h.bounds) > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "\"+Inf\": %d}}", h.counts[len(h.bounds)].Load())
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
