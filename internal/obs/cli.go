// CLI wiring shared by the campaign commands: the -trace and
// -metrics-addr flags map onto one Observer plus an optional live
// exposition server.

package obs

import (
	"fmt"
	"os"
)

// CLI bundles the observability resources a campaign command owns.
type CLI struct {
	// Obs is nil when neither flag was given: campaigns run with zero
	// observability overhead.
	Obs *Observer
	// Server is the live exposition endpoint (nil unless -metrics-addr).
	Server *Server
	file   *os.File
}

// SetupCLI builds the observability stack from the campaign commands'
// flag conventions: tracePath ("" disables the JSONL trace) and
// metricsAddr ("" disables the HTTP endpoint). Call Close when the
// campaign finishes.
func SetupCLI(tracePath, metricsAddr string) (*CLI, error) {
	c := &CLI{}
	if tracePath == "" && metricsAddr == "" {
		return c, nil
	}
	opts := Options{}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, fmt.Errorf("obs: trace file: %w", err)
		}
		c.file = f
		opts.TraceWriter = f
	}
	c.Obs = New(opts)
	if metricsAddr != "" {
		srv, err := Serve(metricsAddr, c.Obs.Registry())
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Server = srv
		fmt.Fprintf(os.Stderr, "metrics: serving http://%s/metrics (+ /debug/vars, /debug/pprof/)\n", srv.Addr())
	}
	return c, nil
}

// Close flushes the trace, closes its file, and stops the exposition
// server. Safe on a CLI with neither flag set.
func (c *CLI) Close() error {
	var first error
	if err := c.Obs.Close(); err != nil {
		first = err
	}
	if c.file != nil {
		if err := c.file.Close(); err != nil && first == nil {
			first = err
		}
		c.file = nil
	}
	if c.Server != nil {
		c.Server.Close()
		c.Server = nil
	}
	return first
}
