package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

// emptyDelta is a delta with no spans (golden content equals base).
func emptyDelta() *Delta { return &Delta{} }

// TestRestoreDeltaPageBoundaryWrites pins the dirty-tracking invariant at
// page edges: a write that straddles a page boundary must mark both
// pages, or the tracked restore leaves stale bytes behind in the page
// that was missed.
func TestRestoreDeltaPageBoundaryWrites(t *testing.T) {
	dram := NewDRAM(4 * PageBytes)
	rng := rand.New(rand.NewSource(7))
	scribble(dram, rng, 40)
	base := append([]byte(nil), dram.data...)

	// Establish tracking with an empty delta: content == base, no dirty pages.
	dram.RestoreDelta(base, emptyDelta())
	if !dram.Tracking(base) {
		t.Fatal("tracking not established by RestoreDelta")
	}

	line := make([]byte, 32)
	for i := range line {
		line[i] = 0xA5
	}
	writes := []uint32{
		0,                       // first bytes of page 0
		PageBytes - 16,          // straddles the page 0/1 boundary
		2*PageBytes - 4,         // last word of page 1 via Poke
		uint32(len(base)) - 32,  // last line of the last page
		3*PageBytes - uint32(8), // straddle into the final page
	}
	for _, a := range writes {
		if a == 2*PageBytes-4 {
			dram.Poke(a, 0xDEADBEEF)
			continue
		}
		if !dram.WriteLine(a, line) {
			t.Fatalf("WriteLine(%#x) failed", a)
		}
	}

	// The tracked restore copies back only dirty pages; any page missed by
	// markDirty would keep the 0xA5 bytes.
	dram.RestoreDelta(base, emptyDelta())
	if !bytes.Equal(dram.data, base) {
		t.Fatal("tracked restore left stale bytes after page-boundary writes")
	}
}

// TestRestoreDeltaEdgeSpans exercises deltas whose spans sit at the very
// start and end of the image and cross page boundaries.
func TestRestoreDeltaEdgeSpans(t *testing.T) {
	dram := NewDRAM(4 * PageBytes)
	rng := rand.New(rand.NewSource(8))
	scribble(dram, rng, 40)
	base := append([]byte(nil), dram.data...)

	// Build golden content whose diff spans hit the edges.
	line := make([]byte, 32)
	rng.Read(line)
	dram.WriteLine(0, line)
	rng.Read(line)
	dram.WriteLine(PageBytes-16, line) // crosses page 0/1
	rng.Read(line)
	dram.WriteLine(dram.Size()-32, line) // final bytes of the image
	delta := dram.DiffAgainst(base)
	want := append([]byte(nil), base...)
	delta.Apply(want)

	// Un-tracked restore, then repeated tracked restores with interleaved
	// divergence.
	dram2 := NewDRAM(4 * PageBytes)
	for round := 0; round < 3; round++ {
		dram2.RestoreDelta(base, delta)
		if !bytes.Equal(dram2.data, want) {
			t.Fatalf("round %d: edge-span restore diverged", round)
		}
		scribble(dram2, rng, 30)
		dram2.Poke(PageBytes, rng.Uint32())
	}
}

// TestConvergedPagesMatchesExact is the correctness property the ladder's
// fast path rests on: for tracked DRAM, the incremental dirty-page
// verdict must agree with the exact EqualBaseDelta comparison (modulo
// page-hash collisions, which the fixed seeds below do not hit).
func TestConvergedPagesMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dram := NewDRAM(16 * PageBytes)
	scribble(dram, rng, 100)
	base := append([]byte(nil), dram.data...)
	basePF := HashPages(base, nil)

	// A golden image (base+delta) and its per-page fingerprints.
	scribble(dram, rng, 60)
	golden := dram.DiffAgainst(base)
	goldenPF := dram.HashPages(nil)
	diffPages := DiffPageBitmap(basePF, goldenPF)

	check := func(what string) {
		t.Helper()
		inc := dram.ConvergedPages(diffPages, goldenPF)
		full := dram.EqualBaseDelta(base, golden)
		if inc != full {
			t.Fatalf("%s: incremental verdict %v != exact verdict %v", what, inc, full)
		}
	}

	// Converged: restore exactly to golden.
	dram.RestoreDelta(base, golden)
	check("restored to golden")
	if !dram.ConvergedPages(diffPages, goldenPF) {
		t.Fatal("restored-to-golden state must report converged")
	}

	// Diverged in a dirty page: the rehash catches it.
	dram.Poke(0, dram.Peek(0)^1)
	check("flip inside a dirty page")

	// Restore to base only: golden-differs pages are now clean, so the
	// bitmap check alone proves divergence without hashing anything.
	dram.RestoreDelta(base, emptyDelta())
	check("restored to base with golden != base")
	if dram.ConvergedPages(diffPages, goldenPF) {
		t.Fatal("base-only content must not report converged to golden")
	}

	// Randomized agreement sweep: partial restores and scribbles.
	for i := 0; i < 50; i++ {
		if i%7 == 0 {
			dram.RestoreDelta(base, golden)
		} else if i%11 == 0 {
			dram.RestoreDelta(base, emptyDelta())
		}
		scribble(dram, rng, rng.Intn(8))
		check("randomized sweep")
	}
}

// TestHashPagesAndDiffBitmap pins the page-fingerprint plumbing: one
// fingerprint per page including a short final page, and bitmap bits set
// exactly where pages differ.
func TestHashPagesAndDiffBitmap(t *testing.T) {
	img := make([]byte, 3*PageBytes+100) // short trailing page
	rng := rand.New(rand.NewSource(10))
	rng.Read(img)
	pf := HashPages(img, nil)
	if len(pf) != 4 {
		t.Fatalf("HashPages returned %d fingerprints, want 4", len(pf))
	}
	other := append([]byte(nil), img...)
	other[PageBytes+5] ^= 0x10        // page 1
	other[3*PageBytes+99] ^= 0x01     // short page 3
	pf2 := HashPages(other, pf[:0:0]) // fresh dst
	bm := DiffPageBitmap(pf, pf2)
	if want := uint64(1<<1 | 1<<3); bm[0] != want {
		t.Fatalf("DiffPageBitmap = %#x, want %#x", bm[0], want)
	}
	// Appending into a reused dst extends rather than overwrites.
	both := HashPages(img, pf2)
	if len(both) != 8 || both[0] != pf2[0] {
		t.Fatalf("HashPages append semantics broken: len=%d", len(both))
	}
}

// TestDirtyCaptureMatchesFullScan pins the tracked capture paths to their
// full-scan counterparts: with dirty-page tracking armed, DiffAgainstDirty
// must emit span-for-span the delta DiffAgainst computes, and
// HashPagesDirty the fingerprints HashPages computes — on every round of
// a randomized write workload, including a short trailing page.
func TestDirtyCaptureMatchesFullScan(t *testing.T) {
	// A size that is not page-aligned exercises the last-page clamps.
	dram := NewDRAM(6*PageBytes - 100)
	rng := rand.New(rand.NewSource(23))
	scribble(dram, rng, 30)
	base := append([]byte(nil), dram.data...)
	basePF := HashPages(base, nil)
	dram.RestoreDelta(base, emptyDelta())

	for round := 0; round < 30; round++ {
		switch rng.Intn(4) {
		case 0:
			scribble(dram, rng, 1+rng.Intn(8))
		case 1:
			// Straddle a page boundary.
			p := uint32(1+rng.Intn(4)) * PageBytes
			dram.Poke(p-2, rng.Uint32())
		case 2:
			// Touch the short final page.
			dram.Poke(dram.Size()-4, rng.Uint32())
		case 3:
			// Write a page back to its base content: the page stays
			// dirty but contributes no spans.
			p := uint32(rng.Intn(5)) * PageBytes
			for off := uint32(0); off < PageBytes; off += 32 {
				dram.WriteLine(p+off, base[p+off:p+off+32])
			}
		}

		want, got := dram.DiffAgainst(base), dram.DiffAgainstDirty(base)
		if len(want.spans) != len(got.spans) || want.changed != got.changed {
			t.Fatalf("round %d: dirty diff shape %d spans/%d changed, full scan %d/%d",
				round, len(got.spans), got.changed, len(want.spans), want.changed)
		}
		for i := range want.spans {
			if want.spans[i].off != got.spans[i].off || !bytes.Equal(want.spans[i].data, got.spans[i].data) {
				t.Fatalf("round %d: span %d differs: dirty off=%d full off=%d",
					round, i, got.spans[i].off, want.spans[i].off)
			}
		}

		wantPF := dram.HashPages(nil)
		gotPF := dram.HashPagesDirty(basePF)
		if len(wantPF) != len(gotPF) {
			t.Fatalf("round %d: page fingerprint count %d != %d", round, len(gotPF), len(wantPF))
		}
		for p := range wantPF {
			if wantPF[p] != gotPF[p] {
				t.Fatalf("round %d: page %d fingerprint mismatch", round, p)
			}
		}
	}
}
