package mem

// LifetimeTracker accumulates ACE-style residency statistics for one cache
// or TLB: for every value held by an entry it measures the interval during
// which the value still mattered (from fill/write to its last consuming
// read, or to writeback for dirty data). Dividing the accumulated
// ACE-cycles by capacity x time yields the ACE estimate of the structure's
// AVF — the single-simulation alternative to statistical fault injection
// that the paper's Section II surveys (Mukherjee et al. [12], Wang et al.
// [28]).
//
// Granularity is one line (or TLB entry): all bits of an entry share the
// lifetime of its current value. This is the classic coarse ACE
// approximation; it over-estimates against fault injection because not
// every bit of a live line is consumed — exactly the bias [28] reports.
type LifetimeTracker struct {
	clock func() uint64
	lives []valueLife
	start uint64

	aceCycles   uint64
	valuesTotal uint64
	valuesRead  uint64
}

// valueLife tracks the current value of one entry.
type valueLife struct {
	valid    bool
	dirty    bool
	birth    uint64
	lastRead uint64
	reads    uint32
}

// NewLifetimeTracker creates a tracker for a structure with the given
// number of entries; clock supplies the current simulation cycle.
func NewLifetimeTracker(entries int, clock func() uint64) *LifetimeTracker {
	return &LifetimeTracker{clock: clock, lives: make([]valueLife, entries), start: clock()}
}

// open begins a new value lifetime (fill or write-allocate).
func (t *LifetimeTracker) open(idx int, dirty bool) {
	now := t.clock()
	t.closeValue(idx, now, false)
	t.lives[idx] = valueLife{valid: true, dirty: dirty, birth: now}
	t.valuesTotal++
}

// read marks a consuming read of the current value.
func (t *LifetimeTracker) read(idx int) {
	l := &t.lives[idx]
	if !l.valid {
		return
	}
	if l.reads == 0 {
		t.valuesRead++
	}
	l.reads++
	l.lastRead = t.clock()
}

// write replaces the value in place: the previous value's lifetime closes
// and a new dirty value begins.
func (t *LifetimeTracker) write(idx int) {
	t.open(idx, true)
}

// closeValue ends the current value's lifetime. If the value leaves by
// writeback (dirty), it stays ACE until departure; otherwise its ACE span
// ends at its last read.
func (t *LifetimeTracker) closeValue(idx int, now uint64, writeback bool) {
	l := &t.lives[idx]
	if !l.valid {
		return
	}
	switch {
	case writeback && l.dirty:
		t.aceCycles += now - l.birth
	case l.reads > 0:
		t.aceCycles += l.lastRead - l.birth
	}
	l.valid = false
}

// evict ends a lifetime on eviction or invalidation.
func (t *LifetimeTracker) evict(idx int, writeback bool) {
	t.closeValue(idx, t.clock(), writeback)
}

// Finalize closes every live value at the end of the observation window
// (dirty values count as ACE to the end: they would be written back) and
// returns the ACE AVF estimate.
func (t *LifetimeTracker) Finalize() float64 {
	now := t.clock()
	for i := range t.lives {
		if t.lives[i].valid {
			t.closeValue(i, now, t.lives[i].dirty)
		}
	}
	window := now - t.start
	if window == 0 || len(t.lives) == 0 {
		return 0
	}
	return float64(t.aceCycles) / (float64(window) * float64(len(t.lives)))
}

// ACECycles returns the accumulated entry-cycles of ACE residency.
func (t *LifetimeTracker) ACECycles() uint64 { return t.aceCycles }

// Values returns how many value lifetimes were opened and how many were
// read at least once.
func (t *LifetimeTracker) Values() (total, read uint64) {
	return t.valuesTotal, t.valuesRead
}

// --- Cache integration -----------------------------------------------------

// AttachLifetimeTracker instruments the cache with ACE lifetime tracking
// from the current cycle onward. Passing the core's cycle counter as clock
// ties residency to simulated time.
func (c *Cache) AttachLifetimeTracker(clock func() uint64) *LifetimeTracker {
	c.life = NewLifetimeTracker(int(c.sets)*c.cfg.Ways, clock)
	return c.life
}

// DetachLifetimeTracker removes the instrumentation.
func (c *Cache) DetachLifetimeTracker() { c.life = nil }

func (c *Cache) lifeIdx(set uint32, way int) int { return int(set)*c.cfg.Ways + way }

// --- TLB integration ---------------------------------------------------------

// AttachLifetimeTracker instruments the TLB with ACE lifetime tracking.
func (t *TLB) AttachLifetimeTracker(clock func() uint64) *LifetimeTracker {
	t.life = NewLifetimeTracker(len(t.entries), clock)
	return t.life
}

// DetachLifetimeTracker removes the instrumentation.
func (t *TLB) DetachLifetimeTracker() { t.life = nil }
