package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

// scribble writes pseudo-random runs into d through its public write
// paths, so dirty-page tracking sees every mutation.
func scribble(d *DRAM, rng *rand.Rand, writes int) {
	line := make([]byte, 32)
	for i := 0; i < writes; i++ {
		rng.Read(line)
		addr := uint32(rng.Intn(int(d.Size())-len(line))) &^ 31
		d.WriteLine(addr, line)
	}
}

func TestDiffBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := make([]byte, 1<<16)
	rng.Read(base)
	cur := append([]byte(nil), base...)
	for i := 0; i < 40; i++ {
		off := rng.Intn(len(cur) - 64)
		rng.Read(cur[off : off+1+rng.Intn(63)])
	}
	d := DiffBytes(base, cur)
	img := append([]byte(nil), base...)
	d.Apply(img)
	if !bytes.Equal(img, cur) {
		t.Fatal("base+delta does not reproduce the diffed image")
	}
	if d.Changed() == 0 || d.Bytes() == 0 {
		t.Fatalf("delta accounting empty: changed=%d bytes=%d", d.Changed(), d.Bytes())
	}
}

// TestRestoreDeltaTracked pins the dirty-page fast path: repeated
// restores against the same base, interleaved with writes through every
// DRAM mutation path, must leave exactly base+delta behind each time.
func TestRestoreDeltaTracked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dram := NewDRAM(1 << 18)
	scribble(dram, rng, 200)
	base := append([]byte(nil), dram.data...)

	// Two checkpoints' deltas over diverging content.
	scribble(dram, rng, 100)
	deltaA := dram.DiffAgainst(base)
	scribble(dram, rng, 100)
	deltaB := dram.DiffAgainst(base)

	want := func(d *Delta) []byte {
		img := append([]byte(nil), base...)
		d.Apply(img)
		return img
	}
	for round := 0; round < 4; round++ {
		for _, d := range []*Delta{deltaA, deltaB} {
			dram.RestoreDelta(base, d)
			if !bytes.Equal(dram.data, want(d)) {
				t.Fatalf("round %d: tracked restore diverged from full copy+apply", round)
			}
			// Dirty the machine through each write path before the next
			// restore, including one full-image load (marks everything).
			scribble(dram, rng, 50)
			dram.Poke(64, rng.Uint32())
			if round == 2 {
				img := make([]byte, dram.Size())
				rng.Read(img)
				if err := dram.LoadImage(0, img); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Switching to a different base must drop tracking and still restore
	// exactly.
	base2 := append([]byte(nil), dram.data...)
	scribble(dram, rng, 50)
	delta2 := dram.DiffAgainst(base2)
	scribble(dram, rng, 50)
	dram.RestoreDelta(base2, delta2)
	img := append([]byte(nil), base2...)
	delta2.Apply(img)
	if !bytes.Equal(dram.data, img) {
		t.Fatal("restore against a new base diverged")
	}
}

func TestEqualBaseDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dram := NewDRAM(1 << 16)
	scribble(dram, rng, 80)
	base := append([]byte(nil), dram.data...)
	scribble(dram, rng, 40)
	delta := dram.DiffAgainst(base)

	if !dram.EqualBaseDelta(base, delta) {
		t.Fatal("content must equal its own base+delta")
	}
	// A flip inside a span payload region.
	dram.data[delta.spans[0].off] ^= 0x40
	if dram.EqualBaseDelta(base, delta) {
		t.Fatal("span-region divergence not detected")
	}
	dram.data[delta.spans[0].off] ^= 0x40
	// A flip in a gap region (equal to base before the flip).
	var gap uint32
	for g := uint32(0); g < dram.Size(); g++ {
		covered := false
		for _, s := range delta.spans {
			if g >= s.off && g < s.off+uint32(len(s.data)) {
				covered = true
				break
			}
		}
		if !covered {
			gap = g
			break
		}
	}
	dram.data[gap] ^= 0x01
	if dram.EqualBaseDelta(base, delta) {
		t.Fatal("gap-region divergence not detected")
	}
}
