package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

// checkMirror verifies the packed tag/valid mirror agrees with the line
// array, and that the mirror-backed lookup returns the FIRST matching way
// of a set — FlipTagBit can alias two ways onto one tag, and the
// machine-visible semantics are first-match.
func checkMirror(t *testing.T, c *Cache) {
	t.Helper()
	for s := range c.lines {
		for w := range c.lines[s] {
			i := s*c.cfg.Ways + w
			if c.mirTags[i] != c.lines[s][w].tag || c.mirValid[i] != c.lines[s][w].valid {
				t.Fatalf("mirror out of sync at set %d way %d: mirror (%#x,%v) line (%#x,%v)",
					s, w, c.mirTags[i], c.mirValid[i], c.lines[s][w].tag, c.lines[s][w].valid)
			}
		}
		// Reference first-match scan over the line array itself.
		for w := range c.lines[s] {
			ln := &c.lines[s][w]
			if !ln.valid {
				continue
			}
			want := -1
			for v := range c.lines[s] {
				if c.lines[s][v].valid && c.lines[s][v].tag == ln.tag {
					want = v
					break
				}
			}
			if got := c.lookup(ln.tag, uint32(s)); got != want {
				t.Fatalf("lookup(tag %#x, set %d) = way %d, want first match %d", ln.tag, s, got, want)
			}
		}
	}
}

// statesEqual deep-compares two cache states way by way.
func statesEqual(a, b *CacheState) bool {
	if a.tick != b.tick || a.stats != b.stats || len(a.lines) != len(b.lines) {
		return false
	}
	for s := range a.lines {
		for w := range a.lines[s] {
			x, y := a.lines[s][w], b.lines[s][w]
			if x.valid != y.valid || x.dirty != y.dirty || x.tag != y.tag || x.lru != y.lru ||
				!bytes.Equal(x.data, y.data) {
				return false
			}
		}
	}
	return true
}

// TestCacheStateRoundTripRandomized drives a cache through random reads,
// writes, tag flips, invalidations, and flushes; snapshots it; diverges
// it further; and then restores — the restored cache must be deep-equal
// to the snapshot with a coherent lookup mirror at every step.
func TestCacheStateRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dram := NewDRAM(1 << 16)
	bus := NewBus(dram)
	c := NewCache(smallCacheCfg("c"), bus)

	step := func() {
		addr := uint32(rng.Intn(1<<14)) &^ 3
		switch rng.Intn(10) {
		case 0:
			c.FlipTagBit(uint64(rng.Int63n(int64(c.TotalTagBits()))))
		case 1:
			c.InvalidateRange(addr&^31, 256)
		case 2:
			c.FlushAll()
		case 3:
			c.InvalidateAll()
		case 4, 5, 6:
			// Flipped tags can point writebacks at nonexistent addresses;
			// a failed access is acceptable, incoherent state is not.
			c.Write(addr, 4, rng.Uint32())
		default:
			c.Read(addr, 4)
		}
	}

	for round := 0; round < 20; round++ {
		for i := 0; i < 200; i++ {
			step()
		}
		checkMirror(t, c)
		st := c.SaveState()
		for i := 0; i < 150; i++ {
			step()
		}
		c.RestoreState(st)
		checkMirror(t, c)
		if again := c.SaveState(); !statesEqual(st, again) {
			t.Fatalf("round %d: restored cache state differs from snapshot", round)
		}
	}
}
