package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

// captureImage snapshots d's current divergence from base as a PageImage
// the way the checkpoint ladder does: fingerprint pages, diff against the
// base fingerprints, build.
func captureImage(d *DRAM, base []byte, basePF []uint64, prev *PageImage) *PageImage {
	var fp []uint64
	if d.Tracking(base) {
		fp = d.HashPagesDirty(basePF)
	} else {
		fp = d.HashPages(nil)
	}
	return d.BuildPageImage(base, fp, DiffPageBitmap(basePF, fp), prev)
}

// TestRestorePagesBitIdentity pins the copy-on-write restore contract:
// whatever sequence of restores and interleaved writes runs, RestorePages
// must leave exactly base+image behind, bit for bit.
func TestRestorePagesBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dram := NewDRAM(1 << 18)
	scribble(dram, rng, 150)
	base := append([]byte(nil), dram.data...)
	basePF := HashPages(base, nil)

	// Two checkpoint images over diverging content, the second interning
	// against the first.
	scribble(dram, rng, 60)
	imgA := captureImage(dram, base, basePF, nil)
	scribble(dram, rng, 60)
	imgB := captureImage(dram, base, basePF, imgA)

	want := func(img *PageImage) []byte {
		out := append([]byte(nil), base...)
		for i, p := range img.idx {
			copy(out[int(p)<<pageShift:], img.data[i])
		}
		return out
	}
	wantA, wantB := want(imgA), want(imgB)

	// Cold restore, same-image re-restores, and image switches, each with
	// writes in between so the dirty overlay has work to do.
	seq := []struct {
		img  *PageImage
		want []byte
	}{{imgA, wantA}, {imgA, wantA}, {imgB, wantB}, {imgB, wantB}, {imgA, wantA}, {imgB, wantB}}
	for round, s := range seq {
		dram.RestorePages(base, s.img)
		if !bytes.Equal(dram.data, s.want) {
			t.Fatalf("round %d: restored image differs from base+pages", round)
		}
		if !dram.EqualBasePages(base, s.img) {
			t.Fatalf("round %d: EqualBasePages disagrees with bytes.Equal", round)
		}
		scribble(dram, rng, 30)
	}

	// The interned image shares payload bytes with its predecessor and
	// accounts them as shared, not owned.
	if imgB.SharedBytes() == 0 {
		t.Error("consecutive checkpoints shared no page payloads")
	}
	if imgA.Bytes() == 0 || imgA.Pages() == 0 {
		t.Errorf("image accounting empty: %d bytes %d pages", imgA.Bytes(), imgA.Pages())
	}
}

// TestRestorePagesThenDelta pins the transition back to plain delta
// tracking: RestoreDelta after a RestorePages must revert the image's
// pages too, not just the dirty ones.
func TestRestorePagesThenDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dram := NewDRAM(1 << 18)
	scribble(dram, rng, 100)
	base := append([]byte(nil), dram.data...)
	basePF := HashPages(base, nil)

	scribble(dram, rng, 50)
	img := captureImage(dram, base, basePF, nil)
	delta := dram.DiffAgainst(base)

	dram.RestorePages(base, img)
	scribble(dram, rng, 20)
	// Back to delta restoration against the same base: the result must be
	// base+delta even though lastImg's pages were in place.
	dram.RestoreDelta(base, &Delta{})
	if !bytes.Equal(dram.data, base) {
		t.Fatal("empty-delta restore after RestorePages left image pages behind")
	}
	dram.RestoreDelta(base, delta)
	wantImg := append([]byte(nil), base...)
	delta.Apply(wantImg)
	if !bytes.Equal(dram.data, wantImg) {
		t.Fatal("delta restore after RestorePages diverges from base+delta")
	}
}

// TestConvergedPagesWithImage checks golden-convergence detection while a
// restored image is in place: content equal to base+image's own rung must
// NOT be mistaken for converged-to-base, and genuinely reverting to base
// content must be.
func TestConvergedPagesWithImage(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dram := NewDRAM(1 << 18)
	scribble(dram, rng, 100)
	base := append([]byte(nil), dram.data...)
	basePF := HashPages(base, nil)

	scribble(dram, rng, 50)
	img := captureImage(dram, base, basePF, nil)
	dram.RestorePages(base, img)

	if img.Pages() > 0 && dram.ConvergedPages(DiffPageBitmap(basePF, basePF), basePF) {
		t.Fatal("image content counted as converged to base")
	}
	// Revert the image's pages to base content through the write path: the
	// pages go dirty, rehash equal to base, and convergence must hold.
	for i, p := range img.idx {
		start := int(p) << pageShift
		for off := 0; off < len(img.data[i]); off += 32 {
			dram.WriteLine(uint32(start+off), base[start+off:start+off+32])
		}
	}
	if !dram.ConvergedPages(DiffPageBitmap(basePF, basePF), basePF) {
		t.Fatal("base content not detected as converged while image set")
	}
}
