package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"armsefi/internal/isa"
)

func smallCacheCfg(name string) CacheConfig {
	return CacheConfig{Name: name, SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, HitCycles: 1}
}

func newTestHierarchy(t *testing.T) (*System, *DRAM) {
	t.Helper()
	dram := NewDRAM(1 << 20)
	bus := NewBus(dram)
	sys := NewSystem(SystemConfig{
		L1I:        smallCacheCfg("l1i"),
		L1D:        smallCacheCfg("l1d"),
		L2:         CacheConfig{Name: "l2", SizeBytes: 8 << 10, LineBytes: 32, Ways: 4, HitCycles: 4},
		TLBEntries: 8,
		VPNLimit:   256,
	}, bus)
	return sys, dram
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{},
		{Name: "x", SizeBytes: 1024, LineBytes: 24, Ways: 2},       // line not power of two
		{Name: "x", SizeBytes: 1000, LineBytes: 32, Ways: 2},       // size not divisible
		{Name: "x", SizeBytes: 32 * 2 * 3, LineBytes: 32, Ways: 2}, // sets not power of two
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid geometry", cfg)
		}
	}
	good := smallCacheCfg("ok")
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	if good.Sets() != 16 {
		t.Errorf("Sets() = %d, want 16", good.Sets())
	}
}

// TestCacheMirrorsMemory is the core data-path invariant: an arbitrary
// sequence of reads and writes through the cache hierarchy must be
// indistinguishable from direct access to a flat memory.
func TestCacheMirrorsMemory(t *testing.T) {
	dram := NewDRAM(1 << 16)
	bus := NewBus(dram)
	l2 := NewCache(CacheConfig{Name: "l2", SizeBytes: 2 << 10, LineBytes: 32, Ways: 4, HitCycles: 1}, bus)
	l1 := NewCache(smallCacheCfg("l1"), l2)
	mirror := make([]byte, 1<<16)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		addr := uint32(rng.Intn(1 << 16))
		size := uint32(1 << rng.Intn(3))
		addr &^= size - 1
		if rng.Intn(2) == 0 {
			val := rng.Uint32()
			if _, ok := l1.Write(addr, size, val); !ok {
				t.Fatalf("write %#x failed", addr)
			}
			for b := uint32(0); b < size; b++ {
				mirror[addr+b] = byte(val >> (8 * b))
			}
		} else {
			got, _, ok := l1.Read(addr, size)
			if !ok {
				t.Fatalf("read %#x failed", addr)
			}
			var want uint32
			for b := uint32(0); b < size; b++ {
				want |= uint32(mirror[addr+b]) << (8 * b)
			}
			if got != want {
				t.Fatalf("read %#x size %d = %#x, want %#x (iteration %d)", addr, size, got, want, i)
			}
		}
	}
	// After flushing everything, DRAM must equal the mirror.
	l1.FlushAll()
	l2.FlushAll()
	for addr := uint32(0); addr < 1<<16; addr += 4 {
		if dram.Peek(addr) != uint32(mirror[addr])|uint32(mirror[addr+1])<<8|
			uint32(mirror[addr+2])<<16|uint32(mirror[addr+3])<<24 {
			t.Fatalf("post-flush mismatch at %#x", addr)
		}
	}
}

func TestCacheStatsAndEviction(t *testing.T) {
	dram := NewDRAM(1 << 16)
	bus := NewBus(dram)
	c := NewCache(smallCacheCfg("c"), bus) // 1KB, 2-way, 32B lines, 16 sets
	// Same set: addresses 32*16 apart. Three distinct tags evict the LRU.
	a0, a1, a2 := uint32(0), uint32(512), uint32(1024)
	c.Read(a0, 4)
	c.Read(a1, 4)
	if got := c.Stats().Misses; got != 2 {
		t.Fatalf("misses = %d, want 2", got)
	}
	c.Read(a0, 4) // hit, refreshes a0
	if got := c.Stats().Misses; got != 2 {
		t.Fatalf("hit counted as miss")
	}
	c.Read(a2, 4) // evicts a1 (LRU)
	c.Read(a0, 4) // still resident
	if got := c.Stats().Misses; got != 3 {
		t.Fatalf("misses = %d, want 3 (a0 must still be resident)", got)
	}
	c.Read(a1, 4) // must miss again
	if got := c.Stats().Misses; got != 4 {
		t.Fatalf("misses = %d, want 4", got)
	}
}

func TestCacheWritebackOnlyWhenDirty(t *testing.T) {
	dram := NewDRAM(1 << 16)
	bus := NewBus(dram)
	c := NewCache(smallCacheCfg("c"), bus)
	dram.Poke(0, 0x11111111)
	c.Read(0, 4)
	c.Write(512, 4, 0xABCD) // same set, clean fill then dirty
	c.Read(1024, 4)         // evicts LRU (addr 0, clean: no writeback)
	if c.Stats().Writebacks != 0 {
		t.Fatalf("clean eviction wrote back")
	}
	c.Read(1536, 4) // evicts 512 (dirty)
	if c.Stats().Writebacks != 1 {
		t.Fatalf("dirty eviction did not write back")
	}
	if dram.Peek(512) != 0xABCD {
		t.Fatalf("writeback lost data: %#x", dram.Peek(512))
	}
}

// TestFaultHealingOnCleanLine shows the masking mechanism the paper relies
// on: corrupting a clean line is healed by re-fetch after eviction.
func TestFaultHealingOnCleanLine(t *testing.T) {
	dram := NewDRAM(1 << 16)
	bus := NewBus(dram)
	c := NewCache(smallCacheCfg("c"), bus)
	dram.Poke(0, 0x55AA55AA)
	c.Read(0, 4)
	// Find and flip a bit of the cached copy of address 0.
	flipped := false
	for bit := uint64(0); bit < c.SizeBits(); bit++ {
		c.FlipDataBit(bit)
		if v, _, _ := c.Read(0, 4); v != 0x55AA55AA {
			flipped = true
			break
		}
		c.FlipDataBit(bit) // undo
	}
	if !flipped {
		t.Fatal("could not corrupt the cached line")
	}
	// Evict it (clean!) by touching two more tags in set 0, then re-read:
	// the corruption must heal from DRAM.
	c.Read(512, 4)
	c.Read(1024, 4)
	if v, _, _ := c.Read(0, 4); v != 0x55AA55AA {
		t.Fatalf("clean corrupted line did not heal: %#x", v)
	}
	if dram.Peek(0) != 0x55AA55AA {
		t.Fatalf("DRAM corrupted by a clean line")
	}
}

// TestFaultPropagationOnDirtyLine shows the complementary mechanism: a
// corrupted dirty line writes the corruption back.
func TestFaultPropagationOnDirtyLine(t *testing.T) {
	dram := NewDRAM(1 << 16)
	bus := NewBus(dram)
	c := NewCache(smallCacheCfg("c"), bus)
	c.Write(0, 4, 0x01020304)
	for bit := uint64(0); bit < c.SizeBits(); bit++ {
		c.FlipDataBit(bit)
		if v, _, _ := c.Read(0, 4); v != 0x01020304 {
			break
		}
		c.FlipDataBit(bit)
	}
	corrupted, _, _ := c.Read(0, 4)
	if corrupted == 0x01020304 {
		t.Fatal("could not corrupt the dirty line")
	}
	c.FlushAll()
	if dram.Peek(0) != corrupted {
		t.Fatalf("dirty corruption not written back: %#x vs %#x", dram.Peek(0), corrupted)
	}
}

func TestFlushInto(t *testing.T) {
	dram := NewDRAM(1 << 16)
	bus := NewBus(dram)
	c := NewCache(smallCacheCfg("c"), bus)
	c.Write(64, 4, 0xFEEDFACE)
	img := dram.PeekBytes(0, dram.Size())
	if img[64] == 0xCE {
		t.Fatal("dirty data unexpectedly already in DRAM")
	}
	c.FlushInto(img)
	if img[64] != 0xCE || img[67] != 0xFE {
		t.Fatalf("FlushInto missed the dirty line: % x", img[64:68])
	}
	// FlushInto must not alter the cache itself.
	if c.DirtyLines() != 1 {
		t.Fatal("FlushInto disturbed cache state")
	}
}

func TestInvalidateRange(t *testing.T) {
	dram := NewDRAM(1 << 16)
	bus := NewBus(dram)
	c := NewCache(smallCacheCfg("c"), bus)
	c.Write(0, 4, 1)
	c.Write(4096, 4, 2)
	c.InvalidateRange(4096, 4096)
	if c.ValidLines() != 1 {
		t.Fatalf("valid lines = %d, want 1", c.ValidLines())
	}
	if v, _, _ := c.Read(0, 4); v != 1 {
		t.Fatal("in-range line was dropped")
	}
}

func TestCacheStateSaveRestore(t *testing.T) {
	dram := NewDRAM(1 << 16)
	bus := NewBus(dram)
	c := NewCache(smallCacheCfg("c"), bus)
	c.Write(0, 4, 0xAAAA)
	st := c.SaveState()
	c.Write(0, 4, 0xBBBB)
	c.InvalidateAll()
	c.RestoreState(st)
	if v, _, _ := c.Read(0, 4); v != 0xAAAA {
		t.Fatalf("restored read = %#x", v)
	}
}

func TestTLBEntryBitLayout(t *testing.T) {
	e := TLBEntry{bits: packTLBEntry(0xABCDE, 0x12345, true, false)}
	if e.VPN() != 0xABCDE || e.PPN() != 0x12345 || !e.User() || e.Writable() || !e.Valid() {
		t.Fatalf("entry fields wrong: %+v", e)
	}
}

func TestTLBLookupInsertEvict(t *testing.T) {
	tlb := NewTLB("t", 2)
	tlb.Insert(1, 100, true, true)
	tlb.Insert(2, 200, true, true)
	if _, hit := tlb.Lookup(1); !hit {
		t.Fatal("miss on resident entry")
	}
	tlb.Insert(3, 300, true, true) // evicts LRU = vpn 2
	if _, hit := tlb.Lookup(2); hit {
		t.Fatal("evicted entry still hits")
	}
	if _, hit := tlb.Lookup(1); !hit {
		t.Fatal("recently used entry was evicted")
	}
	if tlb.ValidEntries() != 2 {
		t.Fatalf("valid entries = %d", tlb.ValidEntries())
	}
}

func TestTLBTagFlipCausesMissOnly(t *testing.T) {
	tlb := NewTLB("t", 4)
	tlb.Insert(5, 500, true, true)
	// Flip a VPN tag bit of entry 0: lookups must miss, not mistranslate.
	tlb.FlipBit(0*TLBEntryBits + 1)
	if _, hit := tlb.Lookup(5); hit {
		t.Fatal("tag-corrupted entry still matched its old VPN")
	}
}

func TestTLBPPNFlipMistranslates(t *testing.T) {
	tlb := NewTLB("t", 4)
	tlb.Insert(5, 500, true, true)
	tlb.FlipPPNBit(0, 0)
	e, hit := tlb.Lookup(5)
	if !hit {
		t.Fatal("PPN flip should not unmap the entry")
	}
	if e.PPN() == 500 {
		t.Fatal("PPN unchanged after flip")
	}
}

func installPT(sys *System, dram *DRAM, ttbr uint32) {
	// Identity map the first 64 pages: kernel pages 0-3 (no user), user
	// pages 4+ (user, writable).
	for vpn := uint32(0); vpn < 64; vpn++ {
		pte := vpn<<PageShift | PTEValid | PTEWrite
		if vpn >= 4 {
			pte |= PTEUser
		}
		dram.Poke(ttbr+vpn*4, pte)
	}
	sys.SetTTBR(ttbr)
}

func TestTranslatePermissions(t *testing.T) {
	sys, dram := newTestHierarchy(t)
	installPT(sys, dram, 0x8000)
	// Kernel page from user mode: permission fault.
	if _, _, fault := sys.Load(0x1000, 4, isa.ModeUser); fault == nil || fault.Kind != FaultPermission {
		t.Errorf("user access to kernel page: %v", fault)
	}
	// Same access from SVC mode succeeds.
	if _, _, fault := sys.Load(0x1000, 4, isa.ModeSVC); fault != nil {
		t.Errorf("kernel access failed: %v", fault)
	}
	// User page works from user mode.
	if _, fault := sys.Store(0x5000, 4, 7, isa.ModeUser); fault != nil {
		t.Errorf("user store failed: %v", fault)
	}
	// Unmapped page.
	if _, _, fault := sys.Load(64*PageSize, 4, isa.ModeSVC); fault == nil || fault.Kind != FaultUnmapped {
		t.Errorf("unmapped access: %v", fault)
	}
	// Beyond the VPN limit.
	if _, _, fault := sys.Load(0xFFF0_0000, 4, isa.ModeSVC); fault == nil || fault.Kind != FaultUnmapped {
		t.Errorf("beyond VPN limit: %v", fault)
	}
}

func TestAlignmentFaults(t *testing.T) {
	sys, _ := newTestHierarchy(t)
	if _, _, fault := sys.Load(1, 4, isa.ModeSVC); fault == nil || fault.Kind != FaultAlignment {
		t.Errorf("unaligned word load: %v", fault)
	}
	if _, fault := sys.Store(3, 2, 0, isa.ModeSVC); fault == nil || fault.Kind != FaultAlignment {
		t.Errorf("unaligned half store: %v", fault)
	}
	if _, _, fault := sys.Load(1, 1, isa.ModeSVC); fault != nil {
		t.Errorf("byte access needs no alignment: %v", fault)
	}
	if _, _, fault := sys.FetchInstr(2, isa.ModeSVC); fault == nil || fault.Kind != FaultAlignment {
		t.Errorf("unaligned fetch: %v", fault)
	}
}

func TestMMIORouting(t *testing.T) {
	dram := NewDRAM(1 << 16)
	bus := NewBus(dram)
	dev := &stubDevice{}
	if err := bus.Map(0x2_0000, 0x1000, dev); err != nil {
		t.Fatal(err)
	}
	if err := bus.Map(0x2_0800, 0x1000, dev); err == nil {
		t.Fatal("overlapping window accepted")
	}
	if err := bus.Map(0x100, 0x10, dev); err == nil {
		t.Fatal("window over DRAM accepted")
	}
	sys := NewSystem(SystemConfig{
		L1I: smallCacheCfg("l1i"), L1D: smallCacheCfg("l1d"),
		L2:         CacheConfig{Name: "l2", SizeBytes: 8 << 10, LineBytes: 32, Ways: 4, HitCycles: 4},
		TLBEntries: 8,
	}, bus)
	if _, fault := sys.Store(0x2_0004, 4, 99, isa.ModeSVC); fault != nil {
		t.Fatalf("MMIO store: %v", fault)
	}
	if dev.last != 99 || dev.lastOff != 4 {
		t.Fatalf("device saw %d@%d", dev.last, dev.lastOff)
	}
	if v, _, fault := sys.Load(0x2_0004, 4, isa.ModeSVC); fault != nil || v != 42 {
		t.Fatalf("MMIO load = %d, %v", v, fault)
	}
	// Sub-word MMIO access faults.
	if _, _, fault := sys.Load(0x2_0004, 1, isa.ModeSVC); fault == nil {
		t.Fatal("byte MMIO access accepted")
	}
	// Bus error outside DRAM and windows.
	if _, _, fault := sys.Load(0x9_0000, 4, isa.ModeSVC); fault == nil || fault.Kind != FaultBusError {
		t.Fatalf("bus error: %v", fault)
	}
}

type stubDevice struct {
	last    uint32
	lastOff uint32
}

func (d *stubDevice) Name() string { return "stub" }
func (d *stubDevice) Read32(off uint32) uint32 {
	return 42
}
func (d *stubDevice) Write32(off, val uint32) { d.last, d.lastOff = val, off }

func TestPageWalkThroughCaches(t *testing.T) {
	sys, dram := newTestHierarchy(t)
	installPT(sys, dram, 0x8000)
	before := sys.WalkStats().Walks
	sys.Load(0x5000, 4, isa.ModeUser)
	sys.Load(0x5004, 4, isa.ModeUser) // TLB hit: no second walk
	if got := sys.WalkStats().Walks - before; got != 1 {
		t.Fatalf("walks = %d, want 1", got)
	}
	if sys.DTLB.Stats().Misses != 1 {
		t.Fatalf("dtlb misses = %d, want 1", sys.DTLB.Stats().Misses)
	}
}

func TestTLBCoherenceAfterTTBRChange(t *testing.T) {
	sys, dram := newTestHierarchy(t)
	installPT(sys, dram, 0x8000)
	sys.Load(0x5000, 4, isa.ModeUser)
	if sys.DTLB.ValidEntries() == 0 {
		t.Fatal("no TLB entry after load")
	}
	sys.SetTTBR(0xC000)
	if sys.DTLB.ValidEntries() != 0 {
		t.Fatal("TLB survived a TTBR change")
	}
}

func TestDRAMBounds(t *testing.T) {
	d := NewDRAM(1024)
	if d.LoadImage(1000, make([]byte, 100)) == nil {
		t.Fatal("out-of-bounds image accepted")
	}
	if d.PeekBytes(2000, 4) != nil {
		t.Fatal("out-of-bounds peek returned data")
	}
	buf := make([]byte, 32)
	if d.ReadLine(1020, buf) {
		t.Fatal("out-of-bounds line read succeeded")
	}
}

func TestFlipDataBitAddressing(t *testing.T) {
	// Property: FlipDataBit twice restores the original state.
	dram := NewDRAM(1 << 16)
	bus := NewBus(dram)
	c := NewCache(smallCacheCfg("c"), bus)
	c.Write(0, 4, 0x12345678)
	f := func(bit uint64) bool {
		bit %= c.SizeBits()
		c.FlipDataBit(bit)
		c.FlipDataBit(bit)
		v, _, _ := c.Read(0, 4)
		return v == 0x12345678
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
