package mem

import (
	"fmt"
	"sort"
)

// Device is a memory-mapped peripheral. Offsets are relative to the device
// base and always word-sized: the bus only routes aligned 32-bit accesses to
// devices.
type Device interface {
	// Name identifies the device in diagnostics.
	Name() string
	// Read32 reads the register at the given byte offset.
	Read32(off uint32) uint32
	// Write32 writes the register at the given byte offset.
	Write32(off, val uint32)
}

type busWindow struct {
	base uint32
	size uint32
	dev  Device
}

// Bus routes physical addresses to the DRAM or to MMIO devices, and adapts
// the DRAM to the cache Backing interface. Device windows are uncached.
type Bus struct {
	dram       *DRAM
	windows    []busWindow
	DRAMCycles int // latency of a DRAM line transfer
	MMIOCycles int // latency of a device register access
}

// NewBus wraps a DRAM with default access latencies.
func NewBus(dram *DRAM) *Bus {
	return &Bus{dram: dram, DRAMCycles: 60, MMIOCycles: 10}
}

var _ Backing = (*Bus)(nil)

// Map registers a device window. Windows must not overlap DRAM or each
// other.
func (b *Bus) Map(base, size uint32, dev Device) error {
	if base < b.dram.Size() {
		return fmt.Errorf("mem: device %q window %#x overlaps DRAM", dev.Name(), base)
	}
	for _, w := range b.windows {
		if base < w.base+w.size && w.base < base+size {
			return fmt.Errorf("mem: device %q window %#x overlaps %q", dev.Name(), base, w.dev.Name())
		}
	}
	b.windows = append(b.windows, busWindow{base: base, size: size, dev: dev})
	sort.Slice(b.windows, func(i, j int) bool { return b.windows[i].base < b.windows[j].base })
	return nil
}

// DRAM returns the physical memory behind the bus.
func (b *Bus) DRAM() *DRAM { return b.dram }

// device finds the window containing addr.
func (b *Bus) device(addr uint32) (busWindow, bool) {
	for _, w := range b.windows {
		if addr >= w.base && addr < w.base+w.size {
			return w, true
		}
	}
	return busWindow{}, false
}

// IsMMIO reports whether the physical address falls in a device window.
func (b *Bus) IsMMIO(addr uint32) bool {
	_, ok := b.device(addr)
	return ok
}

// FetchLine implements Backing over the DRAM. Lines never overlap device
// windows: device pages are accessed uncached via ReadWord/WriteWord.
func (b *Bus) FetchLine(addr uint32, buf []byte) (int, bool) {
	if !b.dram.ReadLine(addr, buf) {
		return b.DRAMCycles, false
	}
	return b.DRAMCycles, true
}

// WriteBackLine implements Backing over the DRAM.
func (b *Bus) WriteBackLine(addr uint32, buf []byte) (int, bool) {
	if !b.dram.WriteLine(addr, buf) {
		return b.DRAMCycles, false
	}
	return b.DRAMCycles, true
}

// AbsorbTaint forwards a migrating taint to the DRAM (provenance probe).
func (b *Bus) AbsorbTaint(addr uint32, p *Probe) {
	b.dram.AbsorbTaint(addr, p)
}

// ReadWord performs an uncached word read, for MMIO.
func (b *Bus) ReadWord(addr uint32) (uint32, int, bool) {
	w, ok := b.device(addr)
	if !ok {
		return 0, b.MMIOCycles, false
	}
	return w.dev.Read32(addr - w.base), b.MMIOCycles, true
}

// WriteWord performs an uncached word write, for MMIO.
func (b *Bus) WriteWord(addr, val uint32) (int, bool) {
	w, ok := b.device(addr)
	if !ok {
		return b.MMIOCycles, false
	}
	w.dev.Write32(addr-w.base, val)
	return b.MMIOCycles, true
}
