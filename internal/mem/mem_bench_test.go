package mem

import "testing"

func benchCache(b *testing.B) *Cache {
	b.Helper()
	dram := NewDRAM(1 << 20)
	bus := NewBus(dram)
	return NewCache(CacheConfig{Name: "c", SizeBytes: 32 << 10, LineBytes: 32, Ways: 4, HitCycles: 1}, bus)
}

// BenchmarkCacheHit measures the simulator's hot cache-access path.
func BenchmarkCacheHit(b *testing.B) {
	c := benchCache(b)
	c.Read(64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(64, 4)
	}
}

// BenchmarkCacheMissStream measures fill/evict throughput on a streaming
// access pattern.
func BenchmarkCacheMissStream(b *testing.B) {
	c := benchCache(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(uint32(i*32)&0xFFFFF, 4)
	}
}

// BenchmarkTLBLookup measures the translation hot path.
func BenchmarkTLBLookup(b *testing.B) {
	t := NewTLB("t", 64)
	for v := uint32(0); v < 64; v++ {
		t.Insert(v, v, true, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(uint32(i) & 63)
	}
}

// BenchmarkSnapshotRestore measures the checkpoint-restore cost that every
// injection run pays.
func BenchmarkSnapshotRestore(b *testing.B) {
	c := benchCache(b)
	for a := uint32(0); a < 32<<10; a += 32 {
		c.Write(a, 4, a)
	}
	st := c.SaveState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RestoreState(st)
	}
}

// BenchmarkHasherBytes measures fingerprint throughput across the size
// classes the machine hashes: a cache line, one page, and a full DRAM
// image (where the four-lane fold dominates).
func BenchmarkHasherBytes(b *testing.B) {
	for _, size := range []int{32, 4096, 4 << 20} {
		buf := make([]byte, size)
		b.Run(sizeName(size), func(b *testing.B) {
			b.SetBytes(int64(size))
			h := NewHasher()
			for i := 0; i < b.N; i++ {
				h.Bytes(buf)
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return itoa(n>>20) + "MiB"
	case n >= 1<<10:
		return itoa(n>>10) + "KiB"
	default:
		return itoa(n) + "B"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkConvergedPages compares the rung-crossing DRAM check over a
// 4 MiB image: incremental dirty-page hashing (a handful of touched
// pages) against the exact full-image span comparison.
func BenchmarkConvergedPages(b *testing.B) {
	dram := NewDRAM(4 << 20)
	base := make([]byte, dram.Size())
	basePF := HashPages(base, nil)
	dram.RestoreDelta(base, &Delta{})
	line := make([]byte, 32)
	for i := range line {
		line[i] = byte(i)
	}
	// Dirty a workload-sized set: 16 pages.
	for p := uint32(0); p < 16; p++ {
		dram.WriteLine(p*PageBytes+64, line)
	}
	golden := dram.DiffAgainst(base)
	goldenPF := dram.HashPages(nil)
	diffPages := DiffPageBitmap(basePF, goldenPF)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !dram.ConvergedPages(diffPages, goldenPF) {
				b.Fatal("must converge to own content")
			}
		}
	})
	b.Run("full-image", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !dram.EqualBaseDelta(base, golden) {
				b.Fatal("must converge to own content")
			}
		}
	})
}
