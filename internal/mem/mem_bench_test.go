package mem

import "testing"

func benchCache(b *testing.B) *Cache {
	b.Helper()
	dram := NewDRAM(1 << 20)
	bus := NewBus(dram)
	return NewCache(CacheConfig{Name: "c", SizeBytes: 32 << 10, LineBytes: 32, Ways: 4, HitCycles: 1}, bus)
}

// BenchmarkCacheHit measures the simulator's hot cache-access path.
func BenchmarkCacheHit(b *testing.B) {
	c := benchCache(b)
	c.Read(64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(64, 4)
	}
}

// BenchmarkCacheMissStream measures fill/evict throughput on a streaming
// access pattern.
func BenchmarkCacheMissStream(b *testing.B) {
	c := benchCache(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(uint32(i*32)&0xFFFFF, 4)
	}
}

// BenchmarkTLBLookup measures the translation hot path.
func BenchmarkTLBLookup(b *testing.B) {
	t := NewTLB("t", 64)
	for v := uint32(0); v < 64; v++ {
		t.Insert(v, v, true, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(uint32(i) & 63)
	}
}

// BenchmarkSnapshotRestore measures the checkpoint-restore cost that every
// injection run pays.
func BenchmarkSnapshotRestore(b *testing.B) {
	c := benchCache(b)
	for a := uint32(0); a < 32<<10; a += 32 {
		c.Write(a, 4, a)
	}
	st := c.SaveState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RestoreState(st)
	}
}
