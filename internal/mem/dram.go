// Package mem models the memory system of the simulated SoC: a physical
// DRAM, a device bus, set-associative write-back caches that store real data
// bits, translation lookaside buffers, and a hardware page-table walker.
//
// Every array models its content bits explicitly, because the fault injector
// and the beam simulator corrupt *stored bits*, and the propagation physics
// the reproduced paper measures (clean corrupted lines healing on refill,
// dirty lines writing corruption back, TLB tag flips causing only misses)
// must emerge from the data paths rather than be scripted.
package mem

import (
	"encoding/binary"
	"fmt"
)

// DRAM is the flat physical memory backing the cache hierarchy. On the
// physical test board the DDR sits outside the irradiated chip area, so DRAM
// bits are never fault-injection targets — matching the paper's beam spot,
// which covered the SoC but not the on-board DDR.
type DRAM struct {
	data []byte

	// Dirty-page tracking for RestoreDelta: once a restore establishes a
	// tracked base image, every write marks its 4 KiB pages, and the next
	// restore against the same base copies back only the marked pages
	// instead of the whole image. trackedBase identifies the base by its
	// backing array; nil means no tracking is active.
	dirty       []uint64
	trackedBase *byte

	// lastImg is the copy-on-write page image last applied by RestorePages.
	// While set, the tracking invariant generalises to: every page not
	// marked dirty equals lastImg's payload for that page, or the base page
	// where lastImg carries none. RestoreDelta reverts to plain tracking.
	lastImg *PageImage

	// Propagation provenance taint: the byte a dirty writeback deposited
	// corruption into. DRAM is never a fault target itself (it sits
	// outside the beam spot); it only absorbs migrated taint.
	taintProbe *Probe
	taintAddr  uint32
}

// pageShift is the dirty-tracking granule (4 KiB pages).
const pageShift = 12

// markDirty records that [addr, addr+n) has been written. A no-op until
// RestoreDelta starts tracking; every DRAM mutation path must call it.
func (d *DRAM) markDirty(addr, n uint32) {
	if d.trackedBase == nil || n == 0 {
		return
	}
	for p := addr >> pageShift; p <= (addr+n-1)>>pageShift; p++ {
		d.dirty[p>>6] |= 1 << (p & 63)
	}
}

// NewDRAM allocates a physical memory of the given size in bytes.
func NewDRAM(size uint32) *DRAM {
	return &DRAM{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (d *DRAM) Size() uint32 { return uint32(len(d.data)) }

// Contains reports whether the physical address range [addr, addr+n) is
// inside the DRAM.
func (d *DRAM) Contains(addr, n uint32) bool {
	end := uint64(addr) + uint64(n)
	return end <= uint64(len(d.data))
}

// ReadLine copies an aligned line into buf. It reports false if the range
// falls outside physical memory.
func (d *DRAM) ReadLine(addr uint32, buf []byte) bool {
	if !d.Contains(addr, uint32(len(buf))) {
		return false
	}
	copy(buf, d.data[addr:])
	if d.taintProbe != nil && d.taintOverlaps(addr, uint32(len(buf))) {
		// A refill consumed the corrupted byte back into the hierarchy.
		d.taintProbe.NoteRead("dram")
	}
	return true
}

// taintOverlaps reports whether [addr, addr+n) covers the tainted byte.
func (d *DRAM) taintOverlaps(addr, n uint32) bool {
	return addr <= d.taintAddr && uint64(d.taintAddr) < uint64(addr)+uint64(n)
}

// WriteLine stores an aligned line from buf. It reports false if the range
// falls outside physical memory.
func (d *DRAM) WriteLine(addr uint32, buf []byte) bool {
	if !d.Contains(addr, uint32(len(buf))) {
		return false
	}
	copy(d.data[addr:], buf)
	d.markDirty(addr, uint32(len(buf)))
	if d.taintProbe != nil && d.taintOverlaps(addr, uint32(len(buf))) {
		d.taintProbe.NoteOverwrite("dram")
		d.ClearTaint()
	}
	return true
}

// LoadImage copies a program image into physical memory at load time,
// bypassing the cache hierarchy (as a DMA or boot loader would).
func (d *DRAM) LoadImage(addr uint32, image []byte) error {
	if !d.Contains(addr, uint32(len(image))) {
		return fmt.Errorf("mem: image of %d bytes at %#x exceeds DRAM size %#x",
			len(image), addr, len(d.data))
	}
	copy(d.data[addr:], image)
	d.markDirty(addr, uint32(len(image)))
	if d.taintProbe != nil && d.taintOverlaps(addr, uint32(len(image))) {
		d.taintProbe.NoteOverwrite("dram")
		d.ClearTaint()
	}
	return nil
}

// Peek reads a 32-bit word directly from physical memory, bypassing caches.
// Harness-only: used by loaders and test oracles, never by simulated code.
func (d *DRAM) Peek(addr uint32) uint32 {
	if !d.Contains(addr, 4) {
		return 0
	}
	return binary.LittleEndian.Uint32(d.data[addr:])
}

// Poke writes a 32-bit word directly to physical memory, bypassing caches.
func (d *DRAM) Poke(addr, val uint32) {
	if d.Contains(addr, 4) {
		binary.LittleEndian.PutUint32(d.data[addr:], val)
		d.markDirty(addr, 4)
		if d.taintProbe != nil && d.taintOverlaps(addr, 4) {
			d.taintProbe.NoteOverwrite("dram")
			d.ClearTaint()
		}
	}
}

// PeekBytes copies n bytes starting at addr, bypassing caches.
func (d *DRAM) PeekBytes(addr, n uint32) []byte {
	if !d.Contains(addr, n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.data[addr:])
	return out
}

// Reset zeroes all of physical memory.
func (d *DRAM) Reset() {
	for i := range d.data {
		d.data[i] = 0
	}
	d.markDirty(0, uint32(len(d.data)))
	if d.taintProbe != nil {
		d.taintProbe.NoteOverwrite("dram")
		d.ClearTaint()
	}
}

// AbsorbTaint takes over a taint pushed out of the cache hierarchy by a
// dirty writeback of the corrupted line.
func (d *DRAM) AbsorbTaint(addr uint32, p *Probe) {
	d.taintProbe = p
	d.taintAddr = addr
}

// ClearTaint drops any tracked taint without emitting an event.
func (d *DRAM) ClearTaint() {
	d.taintProbe = nil
	d.taintAddr = 0
}
