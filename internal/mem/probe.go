// Fault-propagation provenance probe (ISSUE 4). A Probe shadows one
// injected bit from flip time onward: the faulted component marks the
// corrupted cell as tainted, and the ordinary data paths — cache reads and
// refills, TLB lookups and inserts, writebacks, DRAM traffic, register
// reads and renames — report lifecycle events on the tainted state as they
// happen. The probe is purely observational: no data path branches on it
// beyond a nil-pointer check, so simulation results are bit-identical with
// the probe attached or absent.
//
// Taint is single-location: the corrupted bit lives in exactly one array
// at a time, and a dirty writeback *moves* it down the hierarchy (the
// level below absorbs the taint via AbsorbTaint). A refill that copies a
// corrupted line upward is reported as a consuming read instead — the
// corrupted bits left the tainted array toward the core — which keeps the
// tracking O(1) while preserving the question the verdict answers: was the
// corruption ever consumed, and if not, what erased it?
package mem

import "fmt"

// ProbeEventKind identifies one lifecycle event on tainted state.
type ProbeEventKind uint8

// Probe lifecycle events.
const (
	// ProbeRead is a consuming read: the corrupted state was returned to a
	// consumer (core register read, cache line fetch, TLB translation hit)
	// while still corrupted.
	ProbeRead ProbeEventKind = 1 + iota
	// ProbeOverwrite means fresh data replaced the corrupted state before
	// any writeback — the taint is dead.
	ProbeOverwrite
	// ProbeCleanEvict means the corrupted state was discarded without a
	// writeback (clean line eviction, invalidation, TLB flush) — the taint
	// is dead.
	ProbeCleanEvict
	// ProbeWriteback means a dirty writeback pushed the corrupted state to
	// the level below, which absorbed the taint — still alive, new home.
	ProbeWriteback
	// ProbeCommit means the detailed core architecturally committed an
	// instruction that consumed the corrupted value.
	ProbeCommit
)

var probeEventNames = [...]string{
	ProbeRead:       "read",
	ProbeOverwrite:  "overwrite",
	ProbeCleanEvict: "clean-evict",
	ProbeWriteback:  "writeback",
	ProbeCommit:     "commit",
}

// String returns the event kind's short name.
func (k ProbeEventKind) String() string {
	if int(k) < len(probeEventNames) && probeEventNames[k] != "" {
		return probeEventNames[k]
	}
	return fmt.Sprintf("probe-event(%d)", uint8(k))
}

// MarshalText renders the kind as its short name (JSONL trace field).
func (k ProbeEventKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a short name produced by MarshalText.
func (k *ProbeEventKind) UnmarshalText(text []byte) error {
	s := string(text)
	for i, n := range probeEventNames {
		if n != "" && n == s {
			*k = ProbeEventKind(i)
			return nil
		}
	}
	return fmt.Errorf("mem: unknown probe event kind %q", s)
}

// ProbeEvent is one observation on the tainted state.
type ProbeEvent struct {
	Kind  ProbeEventKind `json:"kind"`
	Cycle uint64         `json:"cycle"`
	// Loc names the array holding the taint when the event fired
	// (cache/TLB name, "dram", "regfile", "prf").
	Loc string `json:"loc"`
	// PC is the program counter at the event, when one is known.
	PC uint32 `json:"pc,omitempty"`
	// Reg names the destination register of a consuming read or commit,
	// when the CPU layer knows it.
	Reg string `json:"reg,omitempty"`
}

// ProbeEventCap bounds the recorded event chain per injection; summary
// state (consumed, cleared-by) keeps accumulating past the cap and
// Dropped counts the overflow.
const ProbeEventCap = 16

// Probe tracks one injected bit. It is owned by a single worker and its
// workbench: no synchronisation, no allocation after the first arming.
// The zero value is ready for Reset.
type Probe struct {
	clock func() uint64
	pc    func() uint32

	armed      bool
	liveAtFlip bool
	consumed   bool
	cleared    ProbeEventKind // 0 while the taint is still alive
	dropped    int
	events     []ProbeEvent
}

// Reset prepares the probe for a new injection: clock supplies event
// cycle stamps and pc the committed program counter for mem-layer events
// (either may be nil). The event buffer is reused across injections.
func (p *Probe) Reset(clock func() uint64, pc func() uint32) {
	events := p.events[:0]
	*p = Probe{clock: clock, pc: pc, events: events}
}

// Arm marks the probe live on a freshly tainted cell; live reports whether
// the cell held live (valid) state at flip time. Called by the component's
// Taint* method, once per injection.
func (p *Probe) Arm(live bool) {
	p.armed = true
	p.liveAtFlip = live
}

func (p *Probe) now() uint64 {
	if p.clock != nil {
		return p.clock()
	}
	return 0
}

func (p *Probe) curPC() uint32 {
	if p.pc != nil {
		return p.pc()
	}
	return 0
}

func (p *Probe) add(kind ProbeEventKind, loc string, pc uint32, reg string) {
	if len(p.events) >= ProbeEventCap {
		p.dropped++
		return
	}
	p.events = append(p.events, ProbeEvent{Kind: kind, Cycle: p.now(), Loc: loc, PC: pc, Reg: reg})
}

// NoteRead records a consuming read observed by a mem-layer array; the PC
// stamp is the core's committed PC (an approximation for the detailed
// model, exact for the atomic one).
func (p *Probe) NoteRead(loc string) {
	if p == nil || !p.armed {
		return
	}
	p.consumed = true
	p.add(ProbeRead, loc, p.curPC(), "")
}

// NoteReadReg records a consuming read with an exact PC and destination
// register, as the CPU layer sees them.
func (p *Probe) NoteReadReg(loc string, pc uint32, reg string) {
	if p == nil || !p.armed {
		return
	}
	p.consumed = true
	p.add(ProbeRead, loc, pc, reg)
}

// NoteOverwrite records that fresh data replaced the corrupted state.
func (p *Probe) NoteOverwrite(loc string) {
	if p == nil || !p.armed {
		return
	}
	if p.cleared == 0 {
		p.cleared = ProbeOverwrite
	}
	p.add(ProbeOverwrite, loc, p.curPC(), "")
}

// NoteCleanEvict records that the corrupted state was discarded without a
// writeback.
func (p *Probe) NoteCleanEvict(loc string) {
	if p == nil || !p.armed {
		return
	}
	if p.cleared == 0 {
		p.cleared = ProbeCleanEvict
	}
	p.add(ProbeCleanEvict, loc, p.curPC(), "")
}

// NoteWriteback records that a dirty writeback moved the corrupted state
// (and the taint) to the level below.
func (p *Probe) NoteWriteback(loc string) {
	if p == nil || !p.armed {
		return
	}
	p.add(ProbeWriteback, loc, p.curPC(), "")
}

// NoteCommit records an architectural commit of an instruction that
// consumed the corrupted value (detailed core).
func (p *Probe) NoteCommit(loc string, pc uint32, reg string) {
	if p == nil || !p.armed {
		return
	}
	p.add(ProbeCommit, loc, pc, reg)
}

// Armed reports whether a component accepted the taint for this injection.
func (p *Probe) Armed() bool { return p != nil && p.armed }

// LiveAtFlip reports whether the faulted cell held live state at flip time.
func (p *Probe) LiveAtFlip() bool { return p.liveAtFlip }

// Consumed reports whether the corrupted state was ever read.
func (p *Probe) Consumed() bool { return p.consumed }

// Alive reports whether the taint survived to the end of the run
// (latent corruption: never overwritten, never discarded).
func (p *Probe) Alive() bool { return p.cleared == 0 }

// ClearedBy returns the event kind that killed the taint (ProbeOverwrite
// or ProbeCleanEvict), or zero while the taint is alive.
func (p *Probe) ClearedBy() ProbeEventKind { return p.cleared }

// Events returns the recorded event chain. The slice aliases the probe's
// buffer and is valid until the next Reset.
func (p *Probe) Events() []ProbeEvent {
	if p == nil {
		return nil
	}
	return p.events
}

// Dropped returns how many events overflowed ProbeEventCap.
func (p *Probe) Dropped() int { return p.dropped }

// FirstRead returns the first consuming-read event, if any was recorded.
func (p *Probe) FirstRead() (ProbeEvent, bool) {
	for _, e := range p.events {
		if e.Kind == ProbeRead {
			return e, true
		}
	}
	return ProbeEvent{}, false
}

// taintAbsorber is implemented by backing levels that can take over a
// tainted location when a dirty writeback pushes corrupted data down the
// hierarchy.
type taintAbsorber interface {
	AbsorbTaint(addr uint32, p *Probe)
}
