package mem

import (
	"encoding/json"
	"testing"
)

// TestProbeNilSafety pins the observer contract's cheapest path: every
// Note* hook and accessor must be a no-op on a nil probe, so the data
// paths can call them unconditionally.
func TestProbeNilSafety(t *testing.T) {
	var p *Probe
	p.NoteRead("l1d")
	p.NoteReadReg("regfile", 0x100, "r3")
	p.NoteOverwrite("l1d")
	p.NoteCleanEvict("l1d")
	p.NoteWriteback("l1d")
	p.NoteCommit("prf", 0x104, "r4")
	if p.Armed() {
		t.Error("nil probe reports armed")
	}
	if p.Events() != nil {
		t.Error("nil probe reports events")
	}
}

// TestProbeIgnoresEventsWhileDisarmed: a probe that no component armed
// (e.g. a tag-array injection) must record nothing.
func TestProbeIgnoresEventsWhileDisarmed(t *testing.T) {
	p := &Probe{}
	p.Reset(nil, nil)
	p.NoteRead("l1d")
	p.NoteOverwrite("l1d")
	if p.Armed() || p.Consumed() || len(p.Events()) != 0 {
		t.Errorf("disarmed probe recorded state: armed=%v consumed=%v events=%d",
			p.Armed(), p.Consumed(), len(p.Events()))
	}
}

// TestProbeLifecycle walks one full taint life: arm on live state, a
// consuming read, a writeback migration (taint stays alive), then an
// overwrite that kills it. A later clean-evict must not change the
// recorded cause of death — the first clearing event wins.
func TestProbeLifecycle(t *testing.T) {
	var now uint64
	var pc uint32
	p := &Probe{}
	p.Reset(func() uint64 { return now }, func() uint32 { return pc })
	p.Arm(true)
	if !p.Armed() || !p.LiveAtFlip() {
		t.Fatalf("armed=%v liveAtFlip=%v after Arm(true)", p.Armed(), p.LiveAtFlip())
	}
	if p.Consumed() || !p.Alive() || p.ClearedBy() != 0 {
		t.Fatal("fresh probe already has lifecycle state")
	}

	now, pc = 100, 0x8000
	p.NoteRead("l1d")
	if !p.Consumed() {
		t.Error("read did not mark the probe consumed")
	}
	now = 200
	p.NoteWriteback("l1d")
	if !p.Alive() {
		t.Error("writeback killed the taint (it only migrates it)")
	}
	now = 300
	p.NoteOverwrite("dram")
	if p.Alive() || p.ClearedBy() != ProbeOverwrite {
		t.Errorf("after overwrite: alive=%v clearedBy=%v", p.Alive(), p.ClearedBy())
	}
	now = 400
	p.NoteCleanEvict("dram")
	if p.ClearedBy() != ProbeOverwrite {
		t.Errorf("later clean-evict rewrote cause of death: %v", p.ClearedBy())
	}

	events := p.Events()
	wantKinds := []ProbeEventKind{ProbeRead, ProbeWriteback, ProbeOverwrite, ProbeCleanEvict}
	wantCycles := []uint64{100, 200, 300, 400}
	if len(events) != len(wantKinds) {
		t.Fatalf("recorded %d events, want %d", len(events), len(wantKinds))
	}
	for i, e := range events {
		if e.Kind != wantKinds[i] || e.Cycle != wantCycles[i] {
			t.Errorf("event %d = %v@%d, want %v@%d", i, e.Kind, e.Cycle, wantKinds[i], wantCycles[i])
		}
	}
	if events[0].PC != 0x8000 {
		t.Errorf("read event PC = %#x, want %#x", events[0].PC, 0x8000)
	}
}

// TestProbeEventCap: the chain is bounded at ProbeEventCap; summary state
// keeps accumulating past the cap and Dropped counts the overflow.
func TestProbeEventCap(t *testing.T) {
	p := &Probe{}
	p.Reset(nil, nil)
	p.Arm(true)
	const n = ProbeEventCap + 5
	for i := 0; i < n; i++ {
		p.NoteWriteback("l2")
	}
	p.NoteRead("dram") // past the cap, but the summary bit must still land
	if len(p.Events()) != ProbeEventCap {
		t.Errorf("event chain length %d, want cap %d", len(p.Events()), ProbeEventCap)
	}
	if p.Dropped() != n+1-ProbeEventCap {
		t.Errorf("dropped = %d, want %d", p.Dropped(), n+1-ProbeEventCap)
	}
	if !p.Consumed() {
		t.Error("read past the cap was not counted in the summary state")
	}
}

// TestProbeFirstRead: FirstRead returns the earliest consuming read, not
// just any event, and reports absence.
func TestProbeFirstRead(t *testing.T) {
	var now uint64
	p := &Probe{}
	p.Reset(func() uint64 { return now }, nil)
	p.Arm(true)
	if _, ok := p.FirstRead(); ok {
		t.Error("FirstRead on a read-free probe")
	}
	now = 10
	p.NoteWriteback("l1d")
	now = 20
	p.NoteReadReg("regfile", 0x9000, "r5")
	now = 30
	p.NoteRead("l2")
	ev, ok := p.FirstRead()
	if !ok || ev.Cycle != 20 || ev.Reg != "r5" || ev.PC != 0x9000 {
		t.Errorf("FirstRead = %+v, %v; want the cycle-20 register read", ev, ok)
	}
}

// TestProbeResetReuse: Reset must return the probe to its zero lifecycle
// for the next injection while reusing the event buffer.
func TestProbeResetReuse(t *testing.T) {
	p := &Probe{}
	p.Reset(nil, nil)
	p.Arm(true)
	for i := 0; i < ProbeEventCap+2; i++ {
		p.NoteRead("l1d")
	}
	p.NoteOverwrite("l1d")
	p.Reset(nil, nil)
	if p.Armed() || p.Consumed() || !p.Alive() || p.ClearedBy() != 0 ||
		p.Dropped() != 0 || len(p.Events()) != 0 {
		t.Errorf("state survived Reset: %+v", p)
	}
	p.Arm(false)
	if p.LiveAtFlip() {
		t.Error("liveAtFlip survived Reset")
	}
}

// TestProbeEventKindText: the JSONL trace round-trips event kinds by
// short name.
func TestProbeEventKindText(t *testing.T) {
	kinds := []ProbeEventKind{ProbeRead, ProbeOverwrite, ProbeCleanEvict, ProbeWriteback, ProbeCommit}
	for _, k := range kinds {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back ProbeEventKind
		if err := back.UnmarshalText(text); err != nil || back != k {
			t.Errorf("round-trip %v: got %v, err %v", k, back, err)
		}
	}
	var k ProbeEventKind
	if err := k.UnmarshalText([]byte("nope")); err == nil {
		t.Error("unknown kind name parsed")
	}

	ev := ProbeEvent{Kind: ProbeRead, Cycle: 7, Loc: "l1d", PC: 0x8000, Reg: "r1"}
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var back ProbeEvent
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != ev {
		t.Errorf("JSON round-trip: %+v vs %+v", back, ev)
	}
}
