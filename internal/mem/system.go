package mem

import (
	"fmt"

	"armsefi/internal/isa"
)

// FaultKind classifies a failed memory access.
type FaultKind uint8

// Memory fault kinds.
const (
	FaultUnmapped   FaultKind = 1 + iota // no valid translation
	FaultPermission                      // mode/write permission violation
	FaultAlignment                       // misaligned word/halfword access
	FaultBusError                        // physical address decodes to nothing
)

var faultNames = map[FaultKind]string{
	FaultUnmapped:   "unmapped",
	FaultPermission: "permission",
	FaultAlignment:  "alignment",
	FaultBusError:   "bus-error",
}

// String returns a short fault name.
func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault describes a failed access. A nil *Fault means success.
type Fault struct {
	Kind FaultKind
	Addr uint32 // faulting virtual address
}

// Error implements error for diagnostics; simulated code sees vectors, not
// Go errors.
func (f *Fault) Error() string { return fmt.Sprintf("%s fault at %#x", f.Kind, f.Addr) }

// Access is the kind of memory access being translated.
type Access uint8

// Access kinds.
const (
	AccessFetch Access = 1 + iota
	AccessLoad
	AccessStore
)

// Page-table entry bits, as written by the kernel and read by the hardware
// walker.
const (
	PTEValid          = 1 << 0
	PTEWrite          = 1 << 1
	PTEUser           = 1 << 2
	PTEPPNMask uint32 = 0xFFFFF000
)

// WalkStats counts hardware page-table walks.
type WalkStats struct {
	Walks uint64
}

// SystemConfig gathers the geometry of a platform's memory system.
type SystemConfig struct {
	L1I, L1D, L2 CacheConfig
	TLBEntries   int
	// VPNLimit bounds the virtual address space covered by the single-level
	// page table: virtual pages >= VPNLimit fault as unmapped. Zero means
	// the full 20-bit VPN space.
	VPNLimit uint32
}

// System is the full memory system seen by a CPU core: split L1 caches and
// TLBs, a unified L2, the hardware page walker, and the bus. All simulated
// code — user and kernel alike — goes through this path, so kernel text and
// data occupy cache lines exactly as on the physical board.
type System struct {
	Bus  *Bus
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	ITLB *TLB
	DTLB *TLB

	ttbr      uint32
	vpnLimit  uint32
	walkStats WalkStats
}

// NewSystem wires a memory system over the given bus.
func NewSystem(cfg SystemConfig, bus *Bus) *System {
	l2 := NewCache(cfg.L2, bus)
	limit := cfg.VPNLimit
	if limit == 0 {
		limit = 1 << 20
	}
	return &System{
		Bus:      bus,
		vpnLimit: limit,
		L2:       l2,
		L1I:      NewCache(cfg.L1I, l2),
		L1D:      NewCache(cfg.L1D, l2),
		ITLB:     NewTLB("itlb", cfg.TLBEntries),
		DTLB:     NewTLB("dtlb", cfg.TLBEntries),
	}
}

// SetTTBR points the walker at a page table; zero disables translation
// (boot-time identity mapping with full permissions).
func (s *System) SetTTBR(ttbr uint32) {
	if ttbr != s.ttbr {
		s.ITLB.InvalidateAll()
		s.DTLB.InvalidateAll()
	}
	s.ttbr = ttbr
}

// TTBR returns the current translation table base.
func (s *System) TTBR() uint32 { return s.ttbr }

// WalkStats returns page-walk counters.
func (s *System) WalkStats() WalkStats { return s.walkStats }

// translate resolves a virtual address. Page-table walks read through the
// L1 data cache (keeping the walker coherent with the kernel's page-table
// stores, which sit dirty in L1D right after boot), so page-table lines
// occupy cache space like any other kernel data.
func (s *System) translate(vaddr uint32, acc Access, mode isa.Mode) (uint32, int, *Fault) {
	if s.ttbr == 0 {
		return vaddr, 0, nil
	}
	vpn := vaddr >> PageShift
	if vpn >= s.vpnLimit {
		return 0, 0, &Fault{Kind: FaultUnmapped, Addr: vaddr}
	}
	tlb := s.DTLB
	if acc == AccessFetch {
		tlb = s.ITLB
	}
	lat := 0
	entry, hit := tlb.Lookup(vpn)
	if !hit {
		s.walkStats.Walks++
		pte, walkLat, ok := s.L1D.Read(s.ttbr+vpn*4, 4)
		lat += walkLat + 1
		if !ok {
			return 0, lat, &Fault{Kind: FaultBusError, Addr: vaddr}
		}
		if pte&PTEValid == 0 {
			return 0, lat, &Fault{Kind: FaultUnmapped, Addr: vaddr}
		}
		tlb.Insert(vpn, pte&PTEPPNMask>>PageShift, pte&PTEUser != 0, pte&PTEWrite != 0)
		entry, _ = tlb.Lookup(vpn)
	}
	if mode == isa.ModeUser && !entry.User() {
		return 0, lat, &Fault{Kind: FaultPermission, Addr: vaddr}
	}
	if acc == AccessStore && !entry.Writable() {
		return 0, lat, &Fault{Kind: FaultPermission, Addr: vaddr}
	}
	return entry.PPN()<<PageShift | vaddr&(PageSize-1), lat, nil
}

// FetchInstr reads one instruction word at the virtual PC.
func (s *System) FetchInstr(vaddr uint32, mode isa.Mode) (uint32, int, *Fault) {
	if vaddr&3 != 0 {
		return 0, 0, &Fault{Kind: FaultAlignment, Addr: vaddr}
	}
	paddr, lat, fault := s.translate(vaddr, AccessFetch, mode)
	if fault != nil {
		return 0, lat, fault
	}
	if s.Bus.IsMMIO(paddr) {
		return 0, lat, &Fault{Kind: FaultPermission, Addr: vaddr}
	}
	word, readLat, ok := s.L1I.Read(paddr, 4)
	lat += readLat
	if !ok {
		return 0, lat, &Fault{Kind: FaultBusError, Addr: vaddr}
	}
	return word, lat, nil
}

// Load reads size bytes (1, 2, or 4) at a virtual address.
func (s *System) Load(vaddr, size uint32, mode isa.Mode) (uint32, int, *Fault) {
	if fault := checkAlign(vaddr, size); fault != nil {
		return 0, 0, fault
	}
	paddr, lat, fault := s.translate(vaddr, AccessLoad, mode)
	if fault != nil {
		return 0, lat, fault
	}
	if s.Bus.IsMMIO(paddr) {
		if size != 4 {
			return 0, lat, &Fault{Kind: FaultAlignment, Addr: vaddr}
		}
		val, mmioLat, ok := s.Bus.ReadWord(paddr)
		lat += mmioLat
		if !ok {
			return 0, lat, &Fault{Kind: FaultBusError, Addr: vaddr}
		}
		return val, lat, nil
	}
	val, readLat, ok := s.L1D.Read(paddr, size)
	lat += readLat
	if !ok {
		return 0, lat, &Fault{Kind: FaultBusError, Addr: vaddr}
	}
	return val, lat, nil
}

// Store writes size bytes (1, 2, or 4) at a virtual address.
func (s *System) Store(vaddr, size, val uint32, mode isa.Mode) (int, *Fault) {
	if fault := checkAlign(vaddr, size); fault != nil {
		return 0, fault
	}
	paddr, lat, fault := s.translate(vaddr, AccessStore, mode)
	if fault != nil {
		return lat, fault
	}
	if s.Bus.IsMMIO(paddr) {
		if size != 4 {
			return lat, &Fault{Kind: FaultAlignment, Addr: vaddr}
		}
		mmioLat, ok := s.Bus.WriteWord(paddr, val)
		lat += mmioLat
		if !ok {
			return lat, &Fault{Kind: FaultBusError, Addr: vaddr}
		}
		return lat, nil
	}
	writeLat, ok := s.L1D.Write(paddr, size, val)
	lat += writeLat
	if !ok {
		return lat, &Fault{Kind: FaultBusError, Addr: vaddr}
	}
	return lat, nil
}

func checkAlign(vaddr, size uint32) *Fault {
	if size != 1 && vaddr&(size-1) != 0 {
		return &Fault{Kind: FaultAlignment, Addr: vaddr}
	}
	return nil
}

// Reset invalidates all caches and TLBs without flushing, as a platform
// power cycle does.
func (s *System) Reset() {
	s.L1I.InvalidateAll()
	s.L1D.InvalidateAll()
	s.L2.InvalidateAll()
	s.ITLB.InvalidateAll()
	s.DTLB.InvalidateAll()
	s.ttbr = 0
	s.walkStats = WalkStats{}
}
