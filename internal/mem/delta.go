// Delta encoding and state fingerprinting for the checkpoint ladder.
//
// A mid-run checkpoint stores DRAM as a sparse delta against the post-boot
// snapshot image instead of a second full copy: workloads touch a few tens
// of kilobytes of a multi-megabyte DRAM, so the ladder's memory cost is
// dominated by what actually changed. The Hasher gives every machine
// structure a cheap way to fold its live content into a single 64-bit
// fingerprint; HashLive on caches and TLBs deliberately skips *dead* state
// (content of invalid lines/entries, which is overwritten before any read)
// so that a fault flipped into dead state still fingerprints equal to the
// golden run once the live state has re-converged.

package mem

import (
	"bytes"
	"encoding/binary"
	"math/bits"
)

// FNV-1a constants, applied word-at-a-time rather than byte-at-a-time so
// hashing a full DRAM image costs one multiply per 8 bytes.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Hasher folds machine state into a 64-bit fingerprint. It is not
// cryptographic; it only needs to make accidental collisions between a
// diverged and a converged machine state astronomically unlikely.
type Hasher struct {
	h uint64
}

// NewHasher returns a Hasher at the canonical initial state.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset} }

// Word mixes one 64-bit value.
func (s *Hasher) Word(v uint64) { s.h = (s.h ^ v) * fnvPrime }

// Word32 mixes one 32-bit value.
func (s *Hasher) Word32(v uint32) { s.Word(uint64(v)) }

// Bool mixes a boolean.
func (s *Hasher) Bool(b bool) {
	if b {
		s.Word(1)
	} else {
		s.Word(0)
	}
}

// Bytes mixes a byte slice, length-prefixed so concatenations of different
// slices cannot alias.
func (s *Hasher) Bytes(b []byte) {
	s.Word(uint64(len(b)))
	i := 0
	for ; i+8 <= len(b); i += 8 {
		s.Word(binary.LittleEndian.Uint64(b[i:]))
	}
	if i < len(b) {
		var tail uint64
		for j := 0; i < len(b); i, j = i+1, j+8 {
			tail |= uint64(b[i]) << j
		}
		s.Word(tail)
	}
}

// Sum returns the fingerprint accumulated so far.
func (s *Hasher) Sum() uint64 { return s.h }

// deltaGap is the minimum run of equal bytes that ends a span; shorter
// equal runs are absorbed into the surrounding span so a sprinkling of
// single matching bytes does not explode the span count.
const deltaGap = 16

type deltaSpan struct {
	off  uint32
	data []byte
}

// Delta is a sparse span diff between two equal-length byte images.
// Applying it to the base image reproduces the current image exactly.
type Delta struct {
	spans   []deltaSpan
	changed int
}

// DiffBytes computes the delta that turns base into cur. The images must
// have equal length.
func DiffBytes(base, cur []byte) *Delta {
	d := &Delta{}
	n := len(base)
	i := 0
	for i < n {
		// Skip equal content a word at a time.
		for i+8 <= n && binary.LittleEndian.Uint64(base[i:]) == binary.LittleEndian.Uint64(cur[i:]) {
			i += 8
		}
		for i < n && base[i] == cur[i] {
			i++
		}
		if i >= n {
			break
		}
		// Extend the span until at least deltaGap equal bytes follow.
		j := i + 1
		for j < n {
			k := j
			for k < n && k-j < deltaGap && base[k] == cur[k] {
				k++
			}
			if k-j >= deltaGap || k == n {
				break
			}
			j = k + 1
		}
		d.spans = append(d.spans, deltaSpan{off: uint32(i), data: append([]byte(nil), cur[i:j]...)})
		d.changed += j - i
		i = j
	}
	return d
}

// Apply overlays the delta's spans onto img, turning a copy of the base
// image into the captured image.
func (d *Delta) Apply(img []byte) {
	for _, s := range d.spans {
		copy(img[s.off:], s.data)
	}
}

// Bytes returns the approximate memory footprint of the delta (payload
// plus per-span bookkeeping), for the ladder's memory accounting.
func (d *Delta) Bytes() int {
	n := 0
	for _, s := range d.spans {
		n += len(s.data) + 32
	}
	return n
}

// Spans returns the number of spans (diagnostics).
func (d *Delta) Spans() int { return len(d.spans) }

// Changed returns the number of differing bytes the delta carries.
func (d *Delta) Changed() int { return d.changed }

// DiffAgainst returns the sparse delta that turns base into the DRAM's
// current raw content. base must be Size() bytes.
func (d *DRAM) DiffAgainst(base []byte) *Delta { return DiffBytes(base, d.data) }

// RestoreDelta sets the DRAM's content to base with delta applied: the
// checkpoint-restore path for physical memory. The first restore against a
// base copies the whole image and starts dirty-page tracking; subsequent
// restores against the same base copy back only the pages written since —
// a campaign's repeated restores then cost kilobytes, not the full image.
func (d *DRAM) RestoreDelta(base []byte, delta *Delta) {
	if d.trackedBase != &base[0] {
		copy(d.data, base)
		if d.dirty == nil {
			d.dirty = make([]uint64, (len(d.data)>>pageShift+63)/64)
		} else {
			clear(d.dirty)
		}
		d.trackedBase = &base[0]
	} else {
		for i := range d.dirty {
			w := d.dirty[i]
			if w == 0 {
				continue
			}
			d.dirty[i] = 0
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &^= 1 << b
				p := (i<<6 + b) << pageShift
				end := p + 1<<pageShift
				if end > len(d.data) {
					end = len(d.data)
				}
				copy(d.data[p:end], base[p:end])
			}
		}
	}
	for _, s := range delta.spans {
		copy(d.data[s.off:], s.data)
		d.markDirty(s.off, uint32(len(s.data)))
	}
}

// CopyInto copies the raw DRAM content into dst (which must be Size()
// bytes), the allocation-free sibling of PeekBytes for snapshot capture.
func (d *DRAM) CopyInto(dst []byte) { copy(dst, d.data) }

// HashInto mixes the raw DRAM content into h.
func (d *DRAM) HashInto(h *Hasher) { h.Bytes(d.data) }

// EqualBaseDelta reports whether the DRAM's current content equals base
// with delta applied, without materialising the patched image: gap
// regions compare directly against base and span regions against the
// delta payload. The comparison runs at memcmp speed and is exact, so the
// ladder's early-exit check prefers it over hashing the full image at
// every rung crossing.
func (d *DRAM) EqualBaseDelta(base []byte, delta *Delta) bool {
	prev := 0
	for _, s := range delta.spans {
		off := int(s.off)
		if !bytes.Equal(d.data[prev:off], base[prev:off]) {
			return false
		}
		if !bytes.Equal(d.data[off:off+len(s.data)], s.data) {
			return false
		}
		prev = off + len(s.data)
	}
	return bytes.Equal(d.data[prev:], base[prev:])
}

// HashLive mixes the cache's live state into h: a line-validity bitmap,
// then tag/dirty/lru/data of each valid line, then the LRU tick. Content
// of invalid lines is dead — fill() overwrites tag, dirty, and data before
// any read, and victim() returns invalid ways before consulting lru — so
// it is excluded, letting faults flipped into invalid lines fingerprint as
// converged. Event counters are excluded: they never feed back into the
// data path or the campaign Result.
func (c *Cache) HashLive(h *Hasher) {
	var bm uint64
	nbit := 0
	for s := range c.lines {
		for w := range c.lines[s] {
			if c.lines[s][w].valid {
				bm |= 1 << nbit
			}
			if nbit++; nbit == 64 {
				h.Word(bm)
				bm, nbit = 0, 0
			}
		}
	}
	if nbit > 0 {
		h.Word(bm)
	}
	for s := range c.lines {
		for w := range c.lines[s] {
			ln := &c.lines[s][w]
			if !ln.valid {
				continue
			}
			h.Word32(ln.tag)
			h.Bool(ln.dirty)
			h.Word(ln.lru)
			h.Bytes(ln.data)
		}
	}
	h.Word(c.tick)
}

// HashLive mixes the TLB's live state into h: an entry-validity bitmap,
// then bits/lru of each valid entry, then the LRU tick. Invalid entries'
// translation bits and lru are dead state (Insert fully overwrites the
// victim entry and prefers invalid victims unconditionally) and are
// excluded; a fault that flips the valid bit itself changes the bitmap and
// is caught.
func (t *TLB) HashLive(h *Hasher) {
	var bm uint64
	nbit := 0
	for i := range t.entries {
		if t.entries[i].Valid() {
			bm |= 1 << nbit
		}
		if nbit++; nbit == 64 {
			h.Word(bm)
			bm, nbit = 0, 0
		}
	}
	if nbit > 0 {
		h.Word(bm)
	}
	for i := range t.entries {
		if !t.entries[i].Valid() {
			continue
		}
		h.Word(t.entries[i].bits)
		h.Word(t.entries[i].lru)
	}
	h.Word(t.tick)
}
