// Delta encoding and state fingerprinting for the checkpoint ladder.
//
// A mid-run checkpoint stores DRAM as a sparse delta against the post-boot
// snapshot image instead of a second full copy: workloads touch a few tens
// of kilobytes of a multi-megabyte DRAM, so the ladder's memory cost is
// dominated by what actually changed. The Hasher gives every machine
// structure a cheap way to fold its live content into a single 64-bit
// fingerprint; HashLive on caches and TLBs deliberately skips *dead* state
// (content of invalid lines/entries, which is overwritten before any read)
// so that a fault flipped into dead state still fingerprints equal to the
// golden run once the live state has re-converged.

package mem

import (
	"bytes"
	"encoding/binary"
	"math/bits"
)

// FNV-1a constants, applied word-at-a-time rather than byte-at-a-time so
// hashing a full DRAM image costs one multiply per 8 bytes.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Hasher folds machine state into a 64-bit fingerprint. It is not
// cryptographic; it only needs to make accidental collisions between a
// diverged and a converged machine state astronomically unlikely.
type Hasher struct {
	h uint64
}

// NewHasher returns a Hasher at the canonical initial state.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset} }

// Word mixes one 64-bit value.
func (s *Hasher) Word(v uint64) { s.h = (s.h ^ v) * fnvPrime }

// Word32 mixes one 32-bit value.
func (s *Hasher) Word32(v uint32) { s.Word(uint64(v)) }

// Bool mixes a boolean.
func (s *Hasher) Bool(b bool) {
	if b {
		s.Word(1)
	} else {
		s.Word(0)
	}
}

// Bytes lane seeds: arbitrary odd constants that give the four parallel
// accumulators distinct starting points.
const (
	laneSeed1 uint64 = 0x9E3779B97F4A7C15
	laneSeed2 uint64 = 0xC2B2AE3D27D4EB4F
	laneSeed3 uint64 = 0x165667B19E3779F9
)

// Bytes mixes a byte slice, length-prefixed so concatenations of different
// slices cannot alias. Large slices fold through four independent FNV
// lanes whose multiplies overlap in the pipeline — the serial
// word-at-a-time loop is latency-bound on one 64-bit multiply per 8
// bytes — and the lane sums fold back into the running state. The result
// is deterministic but not the serial FNV value; fingerprints are only
// ever compared against fingerprints computed the same way, so only
// collision resistance matters.
func (s *Hasher) Bytes(b []byte) {
	s.Word(uint64(len(b)))
	i := 0
	if len(b) >= 128 {
		h0, h1, h2, h3 := s.h, s.h^laneSeed1, s.h^laneSeed2, s.h^laneSeed3
		for ; i+32 <= len(b); i += 32 {
			h0 = (h0 ^ binary.LittleEndian.Uint64(b[i:])) * fnvPrime
			h1 = (h1 ^ binary.LittleEndian.Uint64(b[i+8:])) * fnvPrime
			h2 = (h2 ^ binary.LittleEndian.Uint64(b[i+16:])) * fnvPrime
			h3 = (h3 ^ binary.LittleEndian.Uint64(b[i+24:])) * fnvPrime
		}
		s.Word(h0)
		s.Word(h1)
		s.Word(h2)
		s.Word(h3)
	}
	for ; i+8 <= len(b); i += 8 {
		s.Word(binary.LittleEndian.Uint64(b[i:]))
	}
	if i < len(b) {
		var tail uint64
		for j := 0; i < len(b); i, j = i+1, j+8 {
			tail |= uint64(b[i]) << j
		}
		s.Word(tail)
	}
}

// Sum returns the fingerprint accumulated so far.
func (s *Hasher) Sum() uint64 { return s.h }

// deltaGap is the minimum run of equal bytes that ends a span; shorter
// equal runs are absorbed into the surrounding span so a sprinkling of
// single matching bytes does not explode the span count.
const deltaGap = 16

type deltaSpan struct {
	off  uint32
	data []byte
}

// Delta is a sparse span diff between two equal-length byte images.
// Applying it to the base image reproduces the current image exactly.
type Delta struct {
	spans   []deltaSpan
	changed int
}

// DiffBytes computes the delta that turns base into cur. The images must
// have equal length.
func DiffBytes(base, cur []byte) *Delta {
	d := &Delta{}
	diffRegion(d, base, cur, 0, len(base))
	return d
}

// diffRegion appends the spans for differences found inside [lo, hi) to d.
// Span extension applies the full-image gap rule past hi, so scanning
// disjoint regions separated by at least deltaGap equal bytes emits
// exactly the spans one full scan would.
func diffRegion(d *Delta, base, cur []byte, lo, hi int) {
	n := len(base)
	i := lo
	for i < hi {
		// Skip equal content a word at a time.
		for i+8 <= hi && binary.LittleEndian.Uint64(base[i:]) == binary.LittleEndian.Uint64(cur[i:]) {
			i += 8
		}
		for i < hi && base[i] == cur[i] {
			i++
		}
		if i >= hi {
			break
		}
		// Extend the span until at least deltaGap equal bytes follow.
		j := i + 1
		for j < n {
			k := j
			for k < n && k-j < deltaGap && base[k] == cur[k] {
				k++
			}
			if k-j >= deltaGap || k == n {
				break
			}
			j = k + 1
		}
		d.spans = append(d.spans, deltaSpan{off: uint32(i), data: append([]byte(nil), cur[i:j]...)})
		d.changed += j - i
		i = j
	}
}

// Apply overlays the delta's spans onto img, turning a copy of the base
// image into the captured image.
func (d *Delta) Apply(img []byte) {
	for _, s := range d.spans {
		copy(img[s.off:], s.data)
	}
}

// Bytes returns the approximate memory footprint of the delta (payload
// plus per-span bookkeeping), for the ladder's memory accounting.
func (d *Delta) Bytes() int {
	n := 0
	for _, s := range d.spans {
		n += len(s.data) + 32
	}
	return n
}

// Spans returns the number of spans (diagnostics).
func (d *Delta) Spans() int { return len(d.spans) }

// Changed returns the number of differing bytes the delta carries.
func (d *Delta) Changed() int { return d.changed }

// DiffAgainst returns the sparse delta that turns base into the DRAM's
// current raw content. base must be Size() bytes.
func (d *DRAM) DiffAgainst(base []byte) *Delta { return DiffBytes(base, d.data) }

// DiffAgainstDirty returns the delta DiffAgainst would, scanning only the
// pages written since the last RestoreDelta. The caller must ensure
// Tracking(base): every unmarked page is then byte-identical to base and
// cannot contribute spans. Runs of consecutive dirty pages scan as one
// region, and clean inter-region gaps exceed the span gap rule, so the
// spans match a full scan's exactly.
func (d *DRAM) DiffAgainstDirty(base []byte) *Delta {
	dl := &Delta{}
	n := len(d.data)
	npages := (n + PageBytes - 1) >> pageShift
	for p := 0; p < npages; {
		if d.dirty[p>>6]&(1<<(p&63)) == 0 {
			p++
			continue
		}
		q := p + 1
		for q < npages && d.dirty[q>>6]&(1<<(q&63)) != 0 {
			q++
		}
		hi := q << pageShift
		if hi > n {
			hi = n
		}
		diffRegion(dl, base, d.data, p<<pageShift, hi)
		p = q
	}
	return dl
}

// RestoreDelta sets the DRAM's content to base with delta applied: the
// checkpoint-restore path for physical memory. The first restore against a
// base copies the whole image and starts dirty-page tracking; subsequent
// restores against the same base copy back only the pages written since —
// a campaign's repeated restores then cost kilobytes, not the full image.
func (d *DRAM) RestoreDelta(base []byte, delta *Delta) {
	if d.trackedBase != &base[0] {
		copy(d.data, base)
		if d.dirty == nil {
			d.dirty = make([]uint64, (len(d.data)>>pageShift+63)/64)
		} else {
			clear(d.dirty)
		}
		d.trackedBase = &base[0]
		d.lastImg = nil
	} else {
		if last := d.lastImg; last != nil {
			// Pages still holding a copy-on-write image's payload are not
			// marked dirty; revert them to base before plain tracking
			// resumes its "non-dirty page equals base" invariant.
			for _, p := range last.idx {
				if d.dirty[p>>6]&(1<<(p&63)) != 0 {
					continue
				}
				start := int(p) << pageShift
				end := start + PageBytes
				if end > len(d.data) {
					end = len(d.data)
				}
				copy(d.data[start:end], base[start:end])
			}
			d.lastImg = nil
		}
		for i := range d.dirty {
			w := d.dirty[i]
			if w == 0 {
				continue
			}
			d.dirty[i] = 0
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &^= 1 << b
				p := (i<<6 + b) << pageShift
				end := p + 1<<pageShift
				if end > len(d.data) {
					end = len(d.data)
				}
				copy(d.data[p:end], base[p:end])
			}
		}
	}
	for _, s := range delta.spans {
		copy(d.data[s.off:], s.data)
		d.markDirty(s.off, uint32(len(s.data)))
	}
}

// CopyInto copies the raw DRAM content into dst (which must be Size()
// bytes), the allocation-free sibling of PeekBytes for snapshot capture.
func (d *DRAM) CopyInto(dst []byte) { copy(dst, d.data) }

// HashInto mixes the raw DRAM content into h.
func (d *DRAM) HashInto(h *Hasher) { h.Bytes(d.data) }

// PageBytes is the dirty-tracking granule (4 KiB), exported for the
// checkpoint ladder's per-page golden fingerprints.
const PageBytes = 1 << pageShift

// pageHash fingerprints one page with a fresh hasher state.
func pageHash(page []byte) uint64 {
	h := Hasher{h: fnvOffset}
	h.Bytes(page)
	return h.Sum()
}

// HashPages appends one fingerprint per PageBytes page of img to dst and
// returns the extended slice. The last page may be short.
func HashPages(img []byte, dst []uint64) []uint64 {
	for p := 0; p < len(img); p += PageBytes {
		end := p + PageBytes
		if end > len(img) {
			end = len(img)
		}
		dst = append(dst, pageHash(img[p:end]))
	}
	return dst
}

// HashPages appends the DRAM's per-page fingerprints to dst.
func (d *DRAM) HashPages(dst []uint64) []uint64 { return HashPages(d.data, dst) }

// HashPagesDirty returns the DRAM's per-page fingerprints like HashPages,
// but re-hashes only the pages written since the last RestoreDelta and
// reuses basePF — the tracked base image's fingerprints — for the rest.
// The caller must ensure Tracking(base) holds for the base basePF was
// computed from: unmarked pages are then byte-identical to it.
func (d *DRAM) HashPagesDirty(basePF []uint64) []uint64 {
	out := append([]uint64(nil), basePF...)
	for i, w := range d.dirty {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << b
			p := i<<6 + b
			start := p << pageShift
			end := start + PageBytes
			if end > len(d.data) {
				end = len(d.data)
			}
			out[p] = pageHash(d.data[start:end])
		}
	}
	return out
}

// Tracking reports whether dirty-page tracking is active against base:
// every page not marked dirty is then byte-identical to base.
func (d *DRAM) Tracking(base []byte) bool {
	return len(base) > 0 && d.trackedBase == &base[0]
}

// ConvergedPages reports whether the DRAM's current content equals a
// golden image described by diffPages (the exact bitmap of pages where
// the golden image differs from the tracked base) and pageFP (the golden
// image's per-page fingerprints), touching only the pages dirtied since
// the last restore. The caller must ensure Tracking(base) holds for the
// base both arguments were computed against. Under plain delta tracking a
// non-dirty page is byte-identical to base, so a golden-differs page that
// is not dirty proves divergence outright; under copy-on-write restore a
// non-dirty page holds lastImg's content, whose true fingerprint is
// lastImg.fp — the fingerprint sets are compared directly wherever either
// side deviates from base. Only dirty pages need rehashing either way.
func (d *DRAM) ConvergedPages(diffPages, pageFP []uint64) bool {
	last := d.lastImg
	for i, w := range d.dirty {
		if last != nil {
			// Non-dirty pages hold lastImg content: any page where either
			// image deviates from base must have matching fingerprints.
			for cand := (last.diff[i] | diffPages[i]) &^ w; cand != 0; {
				b := bits.TrailingZeros64(cand)
				cand &^= 1 << b
				p := i<<6 + b
				if last.fp[p] != pageFP[p] {
					return false
				}
			}
		} else if diffPages[i]&^w != 0 {
			return false
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << b
			p := i<<6 + b
			start := p << pageShift
			end := start + PageBytes
			if end > len(d.data) {
				end = len(d.data)
			}
			if pageHash(d.data[start:end]) != pageFP[p] {
				return false
			}
		}
	}
	return true
}

// DiffPageBitmap returns the bitmap (one bit per page, 64 pages per word)
// of pages whose fingerprints differ between two per-page fingerprint
// sets of equal length.
func DiffPageBitmap(a, b []uint64) []uint64 {
	bm := make([]uint64, (len(a)+63)/64)
	for p := range a {
		if a[p] != b[p] {
			bm[p>>6] |= 1 << (p & 63)
		}
	}
	return bm
}

// EqualBaseDelta reports whether the DRAM's current content equals base
// with delta applied, without materialising the patched image: gap
// regions compare directly against base and span regions against the
// delta payload. The comparison runs at memcmp speed and is exact, so the
// ladder's early-exit check prefers it over hashing the full image at
// every rung crossing.
func (d *DRAM) EqualBaseDelta(base []byte, delta *Delta) bool {
	prev := 0
	for _, s := range delta.spans {
		off := int(s.off)
		if !bytes.Equal(d.data[prev:off], base[prev:off]) {
			return false
		}
		if !bytes.Equal(d.data[off:off+len(s.data)], s.data) {
			return false
		}
		prev = off + len(s.data)
	}
	return bytes.Equal(d.data[prev:], base[prev:])
}

// HashLive mixes the cache's live state into h: a line-validity bitmap,
// then tag/dirty/lru/data of each valid line, then the LRU tick. Content
// of invalid lines is dead — fill() overwrites tag, dirty, and data before
// any read, and victim() returns invalid ways before consulting lru — so
// it is excluded, letting faults flipped into invalid lines fingerprint as
// converged. Event counters are excluded: they never feed back into the
// data path or the campaign Result.
func (c *Cache) HashLive(h *Hasher) {
	var bm uint64
	nbit := 0
	for s := range c.lines {
		for w := range c.lines[s] {
			if c.lines[s][w].valid {
				bm |= 1 << nbit
			}
			if nbit++; nbit == 64 {
				h.Word(bm)
				bm, nbit = 0, 0
			}
		}
	}
	if nbit > 0 {
		h.Word(bm)
	}
	for s := range c.lines {
		for w := range c.lines[s] {
			ln := &c.lines[s][w]
			if !ln.valid {
				continue
			}
			h.Word32(ln.tag)
			h.Bool(ln.dirty)
			h.Word(ln.lru)
			h.Bytes(ln.data)
		}
	}
	h.Word(c.tick)
}

// HashLive mixes the TLB's live state into h: an entry-validity bitmap,
// then bits/lru of each valid entry, then the LRU tick. Invalid entries'
// translation bits and lru are dead state (Insert fully overwrites the
// victim entry and prefers invalid victims unconditionally) and are
// excluded; a fault that flips the valid bit itself changes the bitmap and
// is caught.
func (t *TLB) HashLive(h *Hasher) {
	var bm uint64
	nbit := 0
	for i := range t.entries {
		if t.entries[i].Valid() {
			bm |= 1 << nbit
		}
		if nbit++; nbit == 64 {
			h.Word(bm)
			bm, nbit = 0, 0
		}
	}
	if nbit > 0 {
		h.Word(bm)
	}
	for i := range t.entries {
		if !t.entries[i].Valid() {
			continue
		}
		h.Word(t.entries[i].bits)
		h.Word(t.entries[i].lru)
	}
	h.Word(t.tick)
}
