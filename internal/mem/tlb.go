package mem

// PageShift is log2 of the page size (4 KB pages).
const PageShift = 12

// PageSize is the virtual-memory page size in bytes.
const PageSize = 1 << PageShift

// TLBEntry is one translation, stored with an explicit bit layout so that a
// fault can flip any individual architectural bit:
//
//	bits  0..19  VPN (virtual tag)
//	bits 20..39  PPN (physical page number)
//	bit  40      user-accessible
//	bit  41      writable
//	bit  42      valid
//
// The paper observes that flips in the virtual tag are almost always benign
// (they cause a miss and a page re-walk) while flips in the physical page or
// permission bits cause wrong translations and crashes; this layout lets the
// injector distinguish those regions.
type TLBEntry struct {
	bits uint64
	lru  uint64
}

// TLBEntryBits is the number of modeled bits per TLB entry.
const TLBEntryBits = 43

// Bit offsets within a TLB entry.
const (
	tlbVPNShift  = 0
	tlbPPNShift  = 20
	tlbUserBit   = 40
	tlbWriteBit  = 41
	tlbValidBit  = 42
	tlbFieldMask = 0xFFFFF // 20 bits
)

// VPN returns the virtual page number tag.
func (e TLBEntry) VPN() uint32 { return uint32(e.bits >> tlbVPNShift & tlbFieldMask) }

// PPN returns the physical page number.
func (e TLBEntry) PPN() uint32 { return uint32(e.bits >> tlbPPNShift & tlbFieldMask) }

// User reports whether user mode may access the page.
func (e TLBEntry) User() bool { return e.bits>>tlbUserBit&1 != 0 }

// Writable reports whether the page may be written.
func (e TLBEntry) Writable() bool { return e.bits>>tlbWriteBit&1 != 0 }

// Valid reports whether the entry holds a translation.
func (e TLBEntry) Valid() bool { return e.bits>>tlbValidBit&1 != 0 }

func packTLBEntry(vpn, ppn uint32, user, writable bool) uint64 {
	bits := uint64(vpn&tlbFieldMask)<<tlbVPNShift | uint64(ppn&tlbFieldMask)<<tlbPPNShift
	if user {
		bits |= 1 << tlbUserBit
	}
	if writable {
		bits |= 1 << tlbWriteBit
	}
	return bits | 1<<tlbValidBit
}

// TLBStats counts translation events.
type TLBStats struct {
	Lookups uint64
	Misses  uint64
}

// TLB is a fully-associative translation lookaside buffer with LRU
// replacement.
type TLB struct {
	name    string
	entries []TLBEntry
	tick    uint64
	stats   TLBStats
	life    *LifetimeTracker
	rec     *TLBLiveness

	// mru remembers the index of the last hit so the steady-state case —
	// the same page translated cycle after cycle — skips the associative
	// scan. The shortcut is taken only while dups is false: valid VPNs are
	// then unique, so the hinted entry IS the first match. Bit flips (and
	// pathological inserts) can alias two valid entries onto one tag; they
	// set dups and the scan's first-match order takes over.
	mru  int
	dups bool

	// Propagation provenance taint: the entry holding an injected bit.
	// A nil probe means no taint is tracked.
	taintProbe *Probe
	taintIdx   int
}

// NewTLB builds a TLB with the given number of entries.
func NewTLB(name string, entries int) *TLB {
	return &TLB{name: name, entries: make([]TLBEntry, entries)}
}

// Name returns the TLB's name ("itlb"/"dtlb").
func (t *TLB) Name() string { return t.name }

// Entries returns the number of entries.
func (t *TLB) Entries() int { return len(t.entries) }

// SizeBits returns the number of modeled bits, the Size term of the FIT
// conversion.
func (t *TLB) SizeBits() uint64 { return uint64(len(t.entries)) * TLBEntryBits }

// Stats returns the lookup/miss counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// Lookup finds a valid entry whose VPN tag matches. A tag corrupted by a
// fault simply fails to match here — a miss, then a fresh page walk: the
// benign outcome the paper reports for virtual-tag flips.
func (t *TLB) Lookup(vpn uint32) (TLBEntry, bool) {
	t.stats.Lookups++
	// One mask-compare per entry: valid bit set AND the 20-bit VPN field
	// equal to vpn. A vpn wider than the field can never match, exactly
	// like the field-extraction comparison it replaces.
	const mask = uint64(1)<<tlbValidBit | uint64(tlbFieldMask)<<tlbVPNShift
	want := uint64(1)<<tlbValidBit | uint64(vpn)<<tlbVPNShift
	if !t.dups && t.entries[t.mru].bits&mask == want {
		return t.hit(t.mru), true
	}
	for i := range t.entries {
		if t.entries[i].bits&mask == want {
			t.mru = i
			return t.hit(i), true
		}
	}
	t.stats.Misses++
	return TLBEntry{}, false
}

// hit applies the bookkeeping every lookup hit performs regardless of how
// the entry was found: LRU touch, lifetime read, taint consumption.
func (t *TLB) hit(i int) TLBEntry {
	t.tick++
	t.entries[i].lru = t.tick
	if t.life != nil {
		t.life.read(i)
	}
	if t.rec != nil {
		t.rec.read(i)
	}
	if t.taintProbe != nil && i == t.taintIdx {
		// A hit on the corrupted entry consumes the (possibly wrong)
		// translation. A corrupted VPN tag never reaches here: it fails
		// to match, which is exactly the benign miss-and-rewalk the
		// paper reports.
		t.taintProbe.NoteRead(t.name)
	}
	return t.entries[i]
}

// Insert installs a translation, evicting the LRU entry.
func (t *TLB) Insert(vpn, ppn uint32, user, writable bool) {
	victim, bestTick := 0, ^uint64(0)
	for i := range t.entries {
		if !t.entries[i].Valid() {
			victim = i
			break
		}
		if t.entries[i].lru < bestTick {
			victim, bestTick = i, t.entries[i].lru
		}
	}
	// An insert normally follows a miss, so no surviving valid entry can
	// carry this tag; a caller that inserts an already-present tag would
	// break the VPN uniqueness the mru shortcut relies on — detect it and
	// fall back to first-match scans.
	for i := range t.entries {
		if i != victim && t.entries[i].Valid() && t.entries[i].VPN() == vpn {
			t.dups = true
		}
	}
	t.tick++
	t.entries[victim] = TLBEntry{bits: packTLBEntry(vpn, ppn, user, writable), lru: t.tick}
	if t.life != nil {
		t.life.open(victim, false)
	}
	if t.rec != nil {
		t.rec.insert(victim)
	}
	if t.taintProbe != nil && victim == t.taintIdx {
		// A fresh translation replaced the corrupted entry.
		t.taintProbe.NoteOverwrite(t.name)
		t.ClearTaint()
	}
}

// InvalidateAll clears every entry (TLB flush on reset).
func (t *TLB) InvalidateAll() {
	if p := t.taintProbe; p != nil {
		if t.entries[t.taintIdx].Valid() {
			p.NoteCleanEvict(t.name)
		} else {
			// The flush zeroes the corrupted bits of an invalid entry.
			p.NoteOverwrite(t.name)
		}
		t.ClearTaint()
	}
	for i := range t.entries {
		if t.life != nil && t.entries[i].Valid() {
			t.life.evict(i, false)
		}
		if t.rec != nil && t.entries[i].Valid() {
			t.rec.invalidate(i)
		}
		t.entries[i] = TLBEntry{}
	}
	t.stats = TLBStats{}
	// No valid entries remain, so the LRU clock can restart: cold restores
	// become bit-deterministic for the checkpoint-ladder fingerprints.
	t.tick = 0
	t.mru, t.dups = 0, false
}

// FlipBit inverts one bit of the TLB array, addressed linearly:
// entry = bit / TLBEntryBits, bit-in-entry = bit % TLBEntryBits.
func (t *TLB) FlipBit(bit uint64) {
	idx := bit / TLBEntryBits % uint64(len(t.entries))
	t.entries[idx].bits ^= 1 << (bit % TLBEntryBits)
	// A tag or valid flip can alias two valid entries onto one VPN, where
	// first-match order matters: disable the mru shortcut for this run.
	t.dups = true
}

// FlipPPNBit inverts a bit in the physical-page/permission region of a given
// entry — the harmful region per the paper's analysis. off selects among the
// 22 PPN+perm bits.
func (t *TLB) FlipPPNBit(entry int, off uint) {
	t.entries[entry].bits ^= 1 << (tlbPPNShift + off%23)
	// The span includes the valid bit: a flip can revive a stale entry
	// whose tag duplicates a live one, so the mru shortcut must yield to
	// first-match scans.
	t.dups = true
}

// ValidEntries counts valid translations.
func (t *TLB) ValidEntries() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid() {
			n++
		}
	}
	return n
}

// TLBState is a deep copy of TLB content for machine snapshots.
type TLBState struct {
	entries []TLBEntry
	tick    uint64
	stats   TLBStats
	dups    bool
}

// SaveState deep-copies the TLB content.
func (t *TLB) SaveState() *TLBState {
	return &TLBState{
		entries: append([]TLBEntry(nil), t.entries...),
		tick:    t.tick,
		stats:   t.stats,
		dups:    t.dups,
	}
}

// RestoreState restores content captured by SaveState on a TLB of the same
// geometry.
func (t *TLB) RestoreState(st *TLBState) {
	copy(t.entries, st.entries)
	t.tick = st.tick
	t.stats = st.stats
	t.dups = st.dups
}

// MemoryBytes estimates the retained size of the saved content
// (checkpoint-ladder memory accounting).
func (st *TLBState) MemoryBytes() int { return len(st.entries)*16 + 24 }

// Physical-region bit span of a TLB entry: the PPN, permission, and valid
// bits (everything except the virtual tag). The paper's injections target
// this region; tag-bit injection is the near-zero-AVF ablation.
const (
	TLBPhysRegionStart = tlbPPNShift
	TLBPhysRegionBits  = TLBEntryBits - tlbPPNShift
)

// TLBModelBits is the number of physical-region bits per entry whose
// liveness intervals the recorder models: the PPN and permission bits.
// The valid bit (the last physical-region bit) toggles entry existence
// itself, so live-interval equivalence does not apply to it and
// WindowOf/EnumWindows decline it.
const TLBModelBits = tlbValidBit - tlbPPNShift

// EntryValid reports whether the indexed entry currently holds a
// translation (injection-context observability).
func (t *TLB) EntryValid(i int) bool { return t.entries[i].Valid() }

// TaintBit marks the entry holding a linearly-addressed bit (same
// addressing as FlipBit) as tainted and arms the probe. Called at flip
// time, before the flip lands, so liveness reflects the struck state —
// note a valid-bit flip can make a dead entry consumable afterwards.
func (t *TLB) TaintBit(bit uint64, p *Probe) {
	t.taintProbe = p
	t.taintIdx = int(bit / TLBEntryBits % uint64(len(t.entries)))
	p.Arm(t.entries[t.taintIdx].Valid())
}

// ClearTaint drops any tracked taint without emitting an event.
func (t *TLB) ClearTaint() {
	t.taintProbe = nil
	t.taintIdx = 0
}
