// Liveness recorder for the ACE-style campaign pre-filter: during one
// instrumented golden replay it records, per cache way / TLB entry, the
// chronological event stream (covering reads, covering writes, refills,
// evictions) and the generation history (which value occupied the slot
// over which stamp interval, and at what physical address). A planned
// injection can then be classified *without simulating it*: if the first
// post-flip event covering the struck byte is a write, the fault is
// provably overwritten; a clean eviction provably discards it; no event at
// all leaves it latent; an invalid slot at the flip instant was never
// read. Any covering read — or a dirty eviction, which migrates the
// corruption down the hierarchy — leaves the verdict undecided and the
// fault goes to the simulator.
//
// Stamps are the replay loop's top-of-loop cycle values (the loop sets
// *clock before each StepCycle), the same instants at which the injection
// loops fire inject(). An injection at cycle F therefore lands before
// every event stamped >= F and after every event stamped < F, exactly;
// no guard band is needed.
package mem

import (
	"math"
	"sort"
)

// LiveVerdict is the pre-filter's classification of one planned injection.
type LiveVerdict uint8

// Pre-filter verdicts. All decided verdicts imply a Masked outcome: the
// corrupted bits provably never influence execution, so the run is
// byte-identical to golden.
const (
	// LiveUndecided: the analysis cannot prove masking (a covering read,
	// a dirty eviction, an unpredictable bit, or event overflow); the
	// fault must be simulated.
	LiveUndecided LiveVerdict = iota
	// LiveNeverRead: the slot held no valid content at the flip instant.
	LiveNeverRead
	// LiveOverwritten: a write (or full refill) replaced the corrupted
	// byte before anything read it.
	LiveOverwritten
	// LiveEvictedClean: the corrupted line/entry was dropped without
	// writeback before any covering read.
	LiveEvictedClean
	// LiveLatent: no event ever touched the corrupted byte again; the
	// corruption sits unread in the array when the run ends.
	LiveLatent
)

// LiveQuery is the result of classifying one bit/cycle against the log.
type LiveQuery struct {
	Verdict LiveVerdict
	// Valid reports whether the slot held live content at the flip
	// instant (mirrors fault.Context.LineValid).
	Valid bool
	// LineAddr is the physical address of the struck line's content at
	// the flip instant (caches only, valid slots only) — the input to
	// kernel-ownership classification.
	LineAddr uint32
}

// Event kinds of the per-way stream.
const (
	liveRead       uint8 = iota // covering read of [lo, hi)
	liveWrite                   // covering write of [lo, hi)
	liveFill                    // full refill: a new generation begins
	liveEvictClean              // content dropped without writeback
	liveEvictDirty              // dirty writeback: content migrated below
)

// liveEvent is one recorded event; lo/hi bound the covered byte range
// within the line ([0, lineBytes) for whole-slot events).
type liveEvent struct {
	stamp  uint64
	lo, hi uint16
	kind   uint8
}

// liveGen is one value generation of a slot: content installed at stamp
// birth (-1 for content already present when recording started), cleared
// at stamp death (MaxUint64 while still live), holding the line at addr.
type liveGen struct {
	birth int64
	death uint64
	addr  uint32
}

// liveEventCap bounds the per-way event list. A way hot enough to
// overflow it is read near-continuously, so its faults would classify
// undecided anyway; overflow just makes that conservative answer
// explicit.
const liveEventCap = 16384

// liveWay is the recording of one cache way or TLB entry.
type liveWay struct {
	events   []liveEvent
	gens     []liveGen
	overflow bool
}

func (w *liveWay) note(stamp uint64, kind uint8, lo, hi uint16) {
	if w.overflow {
		return
	}
	if len(w.events) >= liveEventCap {
		w.overflow = true
		return
	}
	w.events = append(w.events, liveEvent{stamp: stamp, kind: kind, lo: lo, hi: hi})
}

func (w *liveWay) open(stamp int64, addr uint32) {
	w.gens = append(w.gens, liveGen{birth: stamp, death: math.MaxUint64, addr: addr})
}

func (w *liveWay) close(stamp uint64) {
	if n := len(w.gens); n > 0 && w.gens[n-1].death == math.MaxUint64 {
		w.gens[n-1].death = stamp
	}
}

// query classifies a flip of byteOff at cycle flipAt against the way's
// recording. Shared by the cache and TLB paths: only the event kinds each
// recorder emits differ.
func (w *liveWay) query(byteOff uint16, flipAt uint64) LiveQuery {
	if w.overflow {
		return LiveQuery{}
	}
	// The generation live at the flip: born strictly before it, cleared
	// at or after it (a clearing event stamped == flipAt runs after the
	// injection fires, so the flip still hits this generation).
	gi := sort.Search(len(w.gens), func(i int) bool { return w.gens[i].birth >= int64(flipAt) }) - 1
	if gi < 0 || flipAt > w.gens[gi].death {
		return LiveQuery{Verdict: LiveNeverRead}
	}
	gen := w.gens[gi]
	q := LiveQuery{Valid: true, LineAddr: gen.addr}
	ei := sort.Search(len(w.events), func(i int) bool { return w.events[i].stamp >= flipAt })
	for ; ei < len(w.events); ei++ {
		ev := w.events[ei]
		covers := ev.lo <= byteOff && byteOff < ev.hi
		switch ev.kind {
		case liveRead:
			if covers {
				return q // consumed: undecided
			}
		case liveWrite:
			if covers {
				q.Verdict = LiveOverwritten
				return q
			}
		case liveFill:
			// The generation's own death event always precedes its
			// slot's refill, so this is defensive — and a full refill
			// overwrites every byte regardless.
			q.Verdict = LiveOverwritten
			return q
		case liveEvictClean:
			q.Verdict = LiveEvictedClean
			return q
		case liveEvictDirty:
			return q // corruption migrated below: undecided
		}
	}
	q.Verdict = LiveLatent
	return q
}

// windowOf returns the index of the inter-event quiescent window that
// contains flipAt for byteOff — the count of covering events stamped
// strictly before the flip, so two flips share a window exactly when no
// covering event separates them — plus an FNV-1a fingerprint of the
// site's full covering-event sequence and generation history. Two flips
// of the same site in the same window are provably equivalent: the
// machine evolves identically up to the first covering event at or after
// either flip, at which instant its state is golden-plus-flip in both
// cases. ok is false when the recording overflowed (window membership
// would be a guess).
func (w *liveWay) windowOf(byteOff uint16, flipAt uint64) (win int, sig uint64, ok bool) {
	if w.overflow {
		return 0, 0, false
	}
	sig = sigInit
	for _, ev := range w.events {
		if ev.lo > byteOff || byteOff >= ev.hi {
			continue
		}
		if ev.stamp < flipAt {
			win++
		}
		sig = sigFold(sig, ev.stamp, uint64(ev.kind)<<32|uint64(ev.lo)<<16|uint64(ev.hi))
	}
	for _, g := range w.gens {
		sig = sigFold(sig, uint64(g.birth), g.death^uint64(g.addr))
	}
	return win, sig, true
}

// enumWindows walks byteOff's quiescent windows over cycles [0, maxCycle):
// fn receives each non-empty window's first cycle and width in cycles.
// The windows tile [0, maxCycle) exactly (zero-width windows from
// duplicate event stamps are skipped), so Σ width == maxCycle — the
// invariant an exhaustive sweep's population-exact accounting rests on.
// ok is false (fn never called) when the recording overflowed.
func (w *liveWay) enumWindows(byteOff uint16, maxCycle uint64, fn func(start, width uint64)) bool {
	if w.overflow {
		return false
	}
	start := uint64(0)
	for _, ev := range w.events {
		if ev.lo > byteOff || byteOff >= ev.hi {
			continue
		}
		// The window ends at the event's stamp inclusive: an injection at
		// cycle F lands before every event stamped >= F, so flips at the
		// stamp itself still precede the event.
		end := ev.stamp + 1
		if end > maxCycle {
			end = maxCycle
		}
		if end > start {
			fn(start, end-start)
			start = end
		}
	}
	if maxCycle > start {
		fn(start, maxCycle-start)
	}
	return true
}

// sigInit/sigFold are the FNV-1a fingerprint the window signature uses.
const sigInit = uint64(1469598103934665603)

func sigFold(h, a, b uint64) uint64 {
	for _, v := range [2]uint64{a, b} {
		for i := 0; i < 8; i++ {
			h ^= v >> (8 * i) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// --- Cache recorder --------------------------------------------------------

// CacheLiveness records the liveness log of one cache during a golden
// replay. Attach with AttachLiveness before the replay, detach after; the
// recorder is then an immutable query structure shared by all workers.
type CacheLiveness struct {
	clock     *uint64
	ways      []liveWay // set-major, way-minor
	nways     int
	sets      uint64
	lineBytes uint64
}

// AttachLiveness instruments the cache with liveness recording. clock
// points at the replay loop's top-of-loop cycle stamp. Content valid at
// attach time is seeded as generations with birth -1 (live from before
// recording started).
func (c *Cache) AttachLiveness(clock *uint64) *CacheLiveness {
	r := &CacheLiveness{
		clock:     clock,
		ways:      make([]liveWay, int(c.sets)*c.cfg.Ways),
		nways:     c.cfg.Ways,
		sets:      uint64(c.sets),
		lineBytes: uint64(c.cfg.LineBytes),
	}
	for s := range c.lines {
		for w := range c.lines[s] {
			if c.lines[s][w].valid {
				r.ways[c.lifeIdx(uint32(s), w)].open(-1, c.lineAddr(c.lines[s][w].tag, uint32(s)))
			}
		}
	}
	c.rec = r
	return r
}

// DetachLiveness stops recording; the returned log stays queryable.
func (c *Cache) DetachLiveness() { c.rec = nil }

func (r *CacheLiveness) evict(set uint32, way int, dirty bool) {
	w := &r.ways[int(set)*r.nways+way]
	kind := liveEvictClean
	if dirty {
		kind = liveEvictDirty
	}
	w.note(*r.clock, kind, 0, uint16(r.lineBytes))
	w.close(*r.clock)
}

func (r *CacheLiveness) fill(set uint32, way int, addr uint32) {
	w := &r.ways[int(set)*r.nways+way]
	w.note(*r.clock, liveFill, 0, uint16(r.lineBytes))
	w.open(int64(*r.clock), addr)
}

func (r *CacheLiveness) access(set uint32, way int, off, n uint32, write bool) {
	kind := liveRead
	if write {
		kind = liveWrite
	}
	r.ways[int(set)*r.nways+way].note(*r.clock, kind, uint16(off), uint16(off+n))
}

// QueryBit classifies a data-array flip (FlipDataBit addressing) at cycle
// flipAt against the recording.
func (r *CacheLiveness) QueryBit(bit uint64, flipAt uint64) LiveQuery {
	lineBits := r.lineBytes * 8
	wayBits := lineBits * uint64(r.nways)
	set := bit / wayBits % r.sets
	way := bit % wayBits / lineBits
	byteOff := uint16(bit % lineBits / 8)
	return r.ways[set*uint64(r.nways)+way].query(byteOff, flipAt)
}

// WindowOf returns the quiescent-window index containing flipAt for a
// data-array bit, with the struck byte's covering-event fingerprint. Two
// flips of the same bit are outcome-equivalent iff they share (window,
// sig); ok is false when the way's recording overflowed.
func (r *CacheLiveness) WindowOf(bit, flipAt uint64) (window int, sig uint64, ok bool) {
	lineBits := r.lineBytes * 8
	wayBits := lineBits * uint64(r.nways)
	set := bit / wayBits % r.sets
	way := bit % wayBits / lineBits
	byteOff := uint16(bit % lineBits / 8)
	return r.ways[set*uint64(r.nways)+way].windowOf(byteOff, flipAt)
}

// EnumWindows walks a data-array bit's quiescent windows over cycles
// [0, maxCycle): fn receives each window's first cycle and width, tiling
// the cycle range exactly. Returns false (fn never called) when the
// way's recording overflowed.
func (r *CacheLiveness) EnumWindows(bit, maxCycle uint64, fn func(start, width uint64)) bool {
	lineBits := r.lineBytes * 8
	wayBits := lineBits * uint64(r.nways)
	set := bit / wayBits % r.sets
	way := bit % wayBits / lineBits
	byteOff := uint16(bit % lineBits / 8)
	return r.ways[set*uint64(r.nways)+way].enumWindows(byteOff, maxCycle, fn)
}

// Overflowed reports how many ways hit the event cap (diagnostics: their
// faults classify undecided).
func (r *CacheLiveness) Overflowed() int {
	n := 0
	for i := range r.ways {
		if r.ways[i].overflow {
			n++
		}
	}
	return n
}

// --- TLB recorder ----------------------------------------------------------

// TLBLiveness records the liveness log of one TLB during a golden replay.
type TLBLiveness struct {
	clock   *uint64
	ways    []liveWay // one per entry
	entries uint64
}

// AttachLiveness instruments the TLB with liveness recording; see
// Cache.AttachLiveness.
func (t *TLB) AttachLiveness(clock *uint64) *TLBLiveness {
	r := &TLBLiveness{clock: clock, ways: make([]liveWay, len(t.entries)), entries: uint64(len(t.entries))}
	for i := range t.entries {
		if t.entries[i].Valid() {
			r.ways[i].open(-1, 0)
		}
	}
	t.rec = r
	return r
}

// DetachLiveness stops recording; the returned log stays queryable.
func (t *TLB) DetachLiveness() { t.rec = nil }

func (r *TLBLiveness) read(i int) {
	r.ways[i].note(*r.clock, liveRead, 0, TLBEntryBits)
}

func (r *TLBLiveness) insert(i int) {
	w := &r.ways[i]
	w.note(*r.clock, liveFill, 0, TLBEntryBits)
	w.close(*r.clock)
	w.open(int64(*r.clock), 0)
}

func (r *TLBLiveness) invalidate(i int) {
	w := &r.ways[i]
	w.note(*r.clock, liveEvictClean, 0, TLBEntryBits)
	w.close(*r.clock)
}

// QueryBit classifies a TLB flip (FlipBit addressing) at cycle flipAt.
// Only bits of the physical page and permission fields (PPN, user,
// writable) are predictable: they never influence Lookup's match — a hit
// that returns the entry is a consuming read the scan sees. Flips of the
// VPN field or the valid bit change *which* entries match, which the
// event stream cannot model, so they classify undecided unconditionally.
func (r *TLBLiveness) QueryBit(bit uint64, flipAt uint64) LiveQuery {
	b := bit % TLBEntryBits
	if b < tlbPPNShift || b >= tlbValidBit {
		return LiveQuery{}
	}
	idx := bit / TLBEntryBits % r.entries
	q := r.ways[idx].query(uint16(b), flipAt)
	q.LineAddr = 0 // TLB entries carry no owning line address
	return q
}

// WindowOf returns the quiescent-window index containing flipAt for a
// TLB entry bit, with the entry's covering-event fingerprint. Like
// QueryBit, only the physical-page/permission bits are modelable — a
// VPN or valid-bit flip changes which entries match, which the event
// stream cannot express — so ok is false for any other bit, and for
// overflowed recordings.
func (r *TLBLiveness) WindowOf(bit, flipAt uint64) (window int, sig uint64, ok bool) {
	b := bit % TLBEntryBits
	if b < tlbPPNShift || b >= tlbValidBit {
		return 0, 0, false
	}
	idx := bit / TLBEntryBits % r.entries
	return r.ways[idx].windowOf(uint16(b), flipAt)
}

// EnumWindows walks a TLB entry bit's quiescent windows over cycles
// [0, maxCycle); see CacheLiveness.EnumWindows. False for unmodelable
// bits (outside the physical-page/permission region) and overflowed
// recordings.
func (r *TLBLiveness) EnumWindows(bit, maxCycle uint64, fn func(start, width uint64)) bool {
	b := bit % TLBEntryBits
	if b < tlbPPNShift || b >= tlbValidBit {
		return false
	}
	idx := bit / TLBEntryBits % r.entries
	return r.ways[idx].enumWindows(uint16(b), maxCycle, fn)
}

// Overflowed reports how many entries hit the event cap.
func (r *TLBLiveness) Overflowed() int {
	n := 0
	for i := range r.ways {
		if r.ways[i].overflow {
			n++
		}
	}
	return n
}
