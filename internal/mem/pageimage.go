// Copy-on-write DRAM checkpoint images. A PageImage is an immutable,
// page-granular encoding of a DRAM state as "base image plus these
// replaced pages". Because it is never mutated after capture, one image
// is safely shared by every worker machine of a pool (and by every
// campaign of a daemon): each DRAM keeps only its private dirty-page
// bitmap as the copy-on-write overlay, and RestorePages re-copies just
// the pages a run actually touched instead of re-materialising the
// image. Consecutive checkpoints usually replace the same few pages with
// mostly-unchanged content, so capture additionally interns page payloads
// against the previous image — byte-verified, so sharing can never alter
// restored state.

package mem

import (
	"bytes"
	"math/bits"
	"sort"
)

// PageImage is one immutable DRAM checkpoint: the sorted set of pages
// whose content differs from the base image, with full-page payloads.
type PageImage struct {
	idx  []uint32 // page numbers, sorted ascending
	data [][]byte // payloads parallel to idx; may alias earlier images
	// fp is the image's complete per-page fingerprint set (true content
	// hashes, also for pages equal to base) and diff the bitmap of pages
	// whose fingerprint differs from the base's — both retained by
	// reference for the convergence fast path.
	fp   []uint64
	diff []uint64
	// owned / shared split the payload bytes into this image's own copies
	// and slices interned from a previous image.
	owned  int
	shared int
}

// page returns the payload replacing page p, if the image carries one.
func (img *PageImage) page(p uint32) ([]byte, bool) {
	i := sort.Search(len(img.idx), func(i int) bool { return img.idx[i] >= p })
	if i < len(img.idx) && img.idx[i] == p {
		return img.data[i], true
	}
	return nil, false
}

// Pages returns how many pages the image replaces.
func (img *PageImage) Pages() int { return len(img.idx) }

// Bytes returns the memory the image itself retains: owned payloads plus
// per-page bookkeeping. Interned payloads are counted by the image that
// owns them.
func (img *PageImage) Bytes() int { return img.owned + len(img.idx)*32 }

// SharedBytes returns the payload bytes this image shares with an
// earlier image instead of copying.
func (img *PageImage) SharedBytes() int { return img.shared }

// BuildPageImage captures the DRAM's current difference from base as an
// immutable page image. fp must be the DRAM's complete per-page
// fingerprints and diff the fingerprint-derived difference bitmap — both
// are retained by reference. With dirty-page tracking active against
// base, only pages that can deviate from it (dirtied pages, plus the
// last restored image's pages) are scanned; otherwise every page is.
// Page payloads byte-equal to the same page of prev are shared with it
// rather than copied.
func (d *DRAM) BuildPageImage(base []byte, fp, diff []uint64, prev *PageImage) *PageImage {
	img := &PageImage{fp: fp, diff: diff}
	n := len(d.data)
	npages := (n + PageBytes - 1) >> pageShift
	addPage := func(p int) {
		start := p << pageShift
		end := start + PageBytes
		if end > n {
			end = n
		}
		cur := d.data[start:end]
		if bytes.Equal(cur, base[start:end]) {
			return
		}
		img.idx = append(img.idx, uint32(p))
		if prev != nil {
			if pd, ok := prev.page(uint32(p)); ok && bytes.Equal(pd, cur) {
				img.data = append(img.data, pd)
				img.shared += len(pd)
				return
			}
		}
		img.data = append(img.data, append([]byte(nil), cur...))
		img.owned += len(cur)
	}
	if !d.Tracking(base) {
		for p := 0; p < npages; p++ {
			addPage(p)
		}
		return img
	}
	candidates := d.dirty
	if last := d.lastImg; last != nil {
		candidates = append([]uint64(nil), d.dirty...)
		for _, p := range last.idx {
			candidates[p>>6] |= 1 << (p & 63)
		}
	}
	for i, w := range candidates {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << b
			addPage(i<<6 + b)
		}
	}
	return img
}

// RestorePages sets the DRAM's content to base with img's pages applied —
// the copy-on-write restore path. The first restore against a base copies
// the full image and starts dirty-page tracking; after that only three
// page sets are ever touched: the pages this DRAM dirtied since the last
// restore, and (on an image switch) the pages where the outgoing and
// incoming images deviate from base. Restoring the same image a worker
// already sits on — the rung-batched execution pattern — therefore costs
// only the run's own dirty pages.
func (d *DRAM) RestorePages(base []byte, img *PageImage) {
	copyPage := func(p uint32) {
		start := int(p) << pageShift
		end := start + PageBytes
		if end > len(d.data) {
			end = len(d.data)
		}
		if pd, ok := img.page(p); ok {
			copy(d.data[start:end], pd)
		} else {
			copy(d.data[start:end], base[start:end])
		}
	}
	if d.trackedBase != &base[0] {
		copy(d.data, base)
		if d.dirty == nil {
			d.dirty = make([]uint64, (len(d.data)>>pageShift+63)/64)
		} else {
			clear(d.dirty)
		}
		d.trackedBase = &base[0]
		for i, p := range img.idx {
			start := int(p) << pageShift
			copy(d.data[start:], img.data[i])
		}
		d.lastImg = img
		return
	}
	last := d.lastImg
	if last == img {
		for i := range d.dirty {
			w := d.dirty[i]
			if w == 0 {
				continue
			}
			d.dirty[i] = 0
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &^= 1 << b
				copyPage(uint32(i<<6 + b))
			}
		}
		return
	}
	// Image switch: fix every dirtied page, then reconcile the pages the
	// two images deviate on. Where both images intern the identical
	// payload slice the content is already in place and the copy is
	// skipped — the cross-rung benefit of capture-time interning.
	wasDirty := func(p uint32) bool { return d.dirty[p>>6]&(1<<(p&63)) != 0 }
	li, ii := 0, 0
	var lastIdx []uint32
	if last != nil {
		lastIdx = last.idx
	}
	for li < len(lastIdx) || ii < len(img.idx) {
		var p uint32
		inLast, inImg := false, false
		switch {
		case ii >= len(img.idx) || (li < len(lastIdx) && lastIdx[li] < img.idx[ii]):
			p, inLast = lastIdx[li], true
			li++
		case li >= len(lastIdx) || img.idx[ii] < lastIdx[li]:
			p, inImg = img.idx[ii], true
			ii++
		default:
			p, inLast, inImg = lastIdx[li], true, true
			li++
			ii++
		}
		if wasDirty(p) {
			continue // handled by the dirty sweep below
		}
		if inLast && inImg && &last.data[li-1][0] == &img.data[ii-1][0] {
			continue // interned: byte-identical payload already in place
		}
		copyPage(p)
	}
	for i := range d.dirty {
		w := d.dirty[i]
		if w == 0 {
			continue
		}
		d.dirty[i] = 0
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << b
			copyPage(uint32(i<<6 + b))
		}
	}
	d.lastImg = img
}

// EqualBasePages reports whether the DRAM's current content equals base
// with img applied, byte-exactly, without materialising the patched
// image — the non-tracking fallback of the ladder's convergence check.
func (d *DRAM) EqualBasePages(base []byte, img *PageImage) bool {
	prev := 0
	for i, p := range img.idx {
		start := int(p) << pageShift
		end := start + len(img.data[i])
		if !bytes.Equal(d.data[prev:start], base[prev:start]) {
			return false
		}
		if !bytes.Equal(d.data[start:end], img.data[i]) {
			return false
		}
		prev = end
	}
	return bytes.Equal(d.data[prev:], base[prev:])
}
