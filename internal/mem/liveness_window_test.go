package mem

import "testing"

// enumOf collects a bit's quiescent windows as (start, width) pairs.
func enumOf(t *testing.T, enum func(uint64, uint64, func(start, width uint64)) bool, bit, maxCycle uint64) [][2]uint64 {
	t.Helper()
	var wins [][2]uint64
	if !enum(bit, maxCycle, func(start, width uint64) {
		wins = append(wins, [2]uint64{start, width})
	}) {
		t.Fatalf("bit %d: enumeration refused (overflow?)", bit)
	}
	return wins
}

// TestWindowTiling pins the invariant exhaustive sweeps rest on: a bit's
// quiescent windows tile [0, maxCycle) exactly — contiguous, non-empty,
// summing to maxCycle — and every cycle inside one enumerated window maps
// to the same WindowOf index, with distinct windows mapping to distinct
// indices.
func TestWindowTiling(t *testing.T) {
	var now uint64
	c, r := liveCache(&now)
	now = 10
	c.Read(0, 4)
	now = 20
	c.Read(0, 4)
	now = 20
	c.Write(0, 4, 9) // duplicate stamp: the zero-width window must vanish
	now = 35
	c.Read(0, 4)

	const maxCycle = 50
	wins := enumOf(t, r.EnumWindows, way0bit, maxCycle)
	if len(wins) == 0 {
		t.Fatal("no windows")
	}
	var sum, next uint64
	seen := make(map[int]bool)
	var firstSig uint64
	for _, w := range wins {
		start, width := w[0], w[1]
		if start != next {
			t.Fatalf("window at %d: want contiguous start %d", start, next)
		}
		if width == 0 {
			t.Fatalf("zero-width window at %d", start)
		}
		next = start + width
		sum += width
		// Every cycle of the window shares one index; the windows are
		// distinct.
		win0, sig, ok := r.WindowOf(way0bit, start)
		if !ok {
			t.Fatalf("WindowOf refused cycle %d", start)
		}
		winEnd, _, _ := r.WindowOf(way0bit, start+width-1)
		if win0 != winEnd {
			t.Fatalf("window [%d,%d): index %d at start, %d at end", start, start+width, win0, winEnd)
		}
		if seen[win0] {
			t.Fatalf("window index %d repeats", win0)
		}
		seen[win0] = true
		if firstSig == 0 {
			firstSig = sig
		} else if sig != firstSig {
			t.Fatalf("signature varies across a single site: %x vs %x", sig, firstSig)
		}
	}
	if sum != maxCycle {
		t.Fatalf("windows sum to %d, want %d", sum, maxCycle)
	}
	// The three distinct covering stamps split [0,50) into 4 windows; the
	// duplicate stamp at 20 must not contribute an empty one.
	if len(wins) != 4 {
		t.Fatalf("got %d windows, want 4: %v", len(wins), wins)
	}
}

// TestWindowUntouchedWay: a slot no event ever touches has a single
// full-range window — the whole run is one quiescent interval. (A fill
// covers every byte of its line, so only event-free ways qualify.)
func TestWindowUntouchedWay(t *testing.T) {
	var now uint64
	c, r := liveCache(&now)
	now = 10
	c.Read(0, 4) // fills set 0 only

	const set1bit = 2 * 32 * 8 // set 1, way 0, byte 0: untouched
	wins := enumOf(t, r.EnumWindows, set1bit, 100)
	if len(wins) != 1 || wins[0] != [2]uint64{0, 100} {
		t.Fatalf("untouched way windows = %v, want one full-range window", wins)
	}
}

// TestWindowOverflow: once a way's event recording overflows, window
// queries and enumeration refuse rather than guess.
func TestWindowOverflow(t *testing.T) {
	var now uint64
	c, r := liveCache(&now)
	for i := 0; i <= liveEventCap; i++ {
		now = uint64(i)
		c.Read(0, 4)
	}
	if r.Overflowed() == 0 {
		t.Fatal("no overflow after exceeding the event cap")
	}
	if _, _, ok := r.WindowOf(way0bit, 5); ok {
		t.Fatal("WindowOf answered on an overflowed way")
	}
	if ok := r.EnumWindows(way0bit, 10, func(start, width uint64) {
		t.Fatal("EnumWindows visited a window on an overflowed way")
	}); ok {
		t.Fatal("EnumWindows reported ok on an overflowed way")
	}
}

// TestTLBWindowRestriction: TLB window queries answer only inside the
// modelable physical-region bits — VPN-tag and valid-bit flips change
// which entries match, so they carry no quiescent-window structure.
func TestTLBWindowRestriction(t *testing.T) {
	var now uint64
	tlb := NewTLB("t", 4)
	r := tlb.AttachLiveness(&now)
	now = 10
	tlb.Insert(1, 0x40, true, false)
	now = 20
	if _, ok := tlb.Lookup(1); !ok {
		t.Fatal("lookup missed")
	}

	entry := -1
	for i := 0; i < tlb.Entries(); i++ {
		if tlb.EntryValid(i) {
			entry = i
		}
	}
	base := uint64(entry) * TLBEntryBits
	vpnBit := base
	ppnBit := base + TLBPhysRegionStart
	validBit := base + TLBPhysRegionStart + TLBModelBits

	if _, _, ok := r.WindowOf(vpnBit, 5); ok {
		t.Fatal("WindowOf answered for a VPN-tag bit")
	}
	if _, _, ok := r.WindowOf(validBit, 5); ok {
		t.Fatal("WindowOf answered for the valid bit")
	}
	if _, _, ok := r.WindowOf(ppnBit, 5); !ok {
		t.Fatal("WindowOf refused a modelable PPN bit")
	}
	if r.EnumWindows(vpnBit, 50, func(start, width uint64) {}) {
		t.Fatal("EnumWindows enumerated a VPN-tag bit")
	}
	wins := enumOf(t, r.EnumWindows, ppnBit, 50)
	var sum uint64
	for _, w := range wins {
		sum += w[1]
	}
	if sum != 50 {
		t.Fatalf("PPN windows sum to %d, want 50", sum)
	}
	// The lookup at 20 consumes the whole entry: flips before and after it
	// fall in different windows.
	w1, _, _ := r.WindowOf(ppnBit, 15)
	w2, _, _ := r.WindowOf(ppnBit, 25)
	if w1 == w2 {
		t.Fatalf("flips across a consuming lookup share window %d", w1)
	}
}
