package mem

import (
	"encoding/binary"
	"fmt"
)

// CacheConfig describes the geometry and timing of one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes uint32
	LineBytes uint32
	Ways      int
	HitCycles int // latency added on a hit
}

// Validate checks the geometry for internal consistency.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes == 0 || c.LineBytes == 0 || c.Ways <= 0:
		return fmt.Errorf("mem: cache %q has zero-sized geometry", c.Name)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mem: cache %q line size %d not a power of two", c.Name, c.LineBytes)
	case c.SizeBytes%(c.LineBytes*uint32(c.Ways)) != 0:
		return fmt.Errorf("mem: cache %q size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / c.LineBytes / uint32(c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: cache %q set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() uint32 { return c.SizeBytes / c.LineBytes / uint32(c.Ways) }

// cacheLine is one way of one set, including the stored data bits.
type cacheLine struct {
	valid bool
	dirty bool
	tag   uint32
	lru   uint64 // last-touched tick, larger is more recent
	data  []byte
}

// CacheStats counts cache events for the performance-counter comparison of
// Section IV-D.
type CacheStats struct {
	Reads      uint64
	Writes     uint64
	Misses     uint64
	Writebacks uint64
}

// Accesses returns total accesses.
func (s CacheStats) Accesses() uint64 { return s.Reads + s.Writes }

// Backing is the next level below a cache: either another cache or the
// memory bus.
type Backing interface {
	// FetchLine reads the aligned line containing addr into buf and returns
	// the added latency. ok is false on a bus error (nonexistent physical
	// address), which the CPU turns into an abort.
	FetchLine(addr uint32, buf []byte) (lat int, ok bool)
	// WriteBackLine writes an evicted dirty line and returns the added
	// latency.
	WriteBackLine(addr uint32, buf []byte) (lat int, ok bool)
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement that stores real data bits. It implements Backing so caches
// stack into a hierarchy.
type Cache struct {
	cfg     CacheConfig
	sets    uint32
	lines   [][]cacheLine // [set][way]
	below   Backing
	tick    uint64
	stats   CacheStats
	life    *LifetimeTracker
	rec     *CacheLiveness
	offBits uint
	setBits uint

	// Packed mirror of each line's tag and valid bit, indexed set-major
	// (set*Ways + way). The lookup hot path scans these contiguous arrays
	// instead of striding across the much larger cacheLine structs; every
	// tag/valid mutation goes through syncMirror to keep them coherent.
	mirTags  []uint32
	mirValid []bool

	// Single-location taint for the propagation provenance probe: the
	// (set, way, line byte) holding an injected bit. A nil probe means no
	// taint is tracked and every hook reduces to one pointer compare.
	taintProbe *Probe
	taintSet   uint32
	taintWay   int
	taintOff   uint32
}

var _ Backing = (*Cache)(nil)

// NewCache builds a cache over the given backing level. It panics on an
// invalid geometry: configurations are static, in-tree data.
func NewCache(cfg CacheConfig, below Backing) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg, sets: cfg.Sets(), below: below}
	c.offBits = log2(cfg.LineBytes)
	c.setBits = log2(c.sets)
	c.lines = make([][]cacheLine, c.sets)
	for s := range c.lines {
		ways := make([]cacheLine, cfg.Ways)
		for w := range ways {
			ways[w].data = make([]byte, cfg.LineBytes)
		}
		c.lines[s] = ways
	}
	c.mirTags = make([]uint32, int(c.sets)*cfg.Ways)
	c.mirValid = make([]bool, int(c.sets)*cfg.Ways)
	return c
}

// syncMirror refreshes the packed tag/valid mirror of one way; call after
// any mutation of a line's tag or valid bit.
func (c *Cache) syncMirror(set uint32, w int) {
	ln := &c.lines[set][w]
	i := int(set)*c.cfg.Ways + w
	c.mirTags[i] = ln.tag
	c.mirValid[i] = ln.valid
}

// syncMirrorAll rebuilds the whole mirror (bulk restores).
func (c *Cache) syncMirrorAll() {
	for s := range c.lines {
		for w := range c.lines[s] {
			c.syncMirror(uint32(s), w)
		}
	}
}

func log2(v uint32) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// HitCycles returns the hit latency without copying the whole config —
// the fetch stage reads it every simulated cycle.
func (c *Cache) HitCycles() int { return c.cfg.HitCycles }

// Stats returns the event counters accumulated since the last reset.
func (c *Cache) Stats() CacheStats { return c.stats }

// SizeBits returns the number of modeled data bits, the Size(bits) term of
// the paper's FIT_component = FIT_raw * Size * AVF formula.
func (c *Cache) SizeBits() uint64 { return uint64(c.cfg.SizeBytes) * 8 }

func (c *Cache) split(addr uint32) (tag, set, off uint32) {
	off = addr & (c.cfg.LineBytes - 1)
	set = addr >> c.offBits & (c.sets - 1)
	tag = addr >> (c.offBits + c.setBits)
	return tag, set, off
}

// lookup returns the way index holding addr, or -1. It scans the packed
// mirror in way order and returns the FIRST valid match: a tag-array fault
// (FlipTagBit) can create duplicate tags within a set, and which way wins
// is machine-visible state, so any fast path must preserve first-match
// semantics exactly.
func (c *Cache) lookup(tag, set uint32) int {
	base := int(set) * c.cfg.Ways
	tags := c.mirTags[base : base+c.cfg.Ways]
	for w := range tags {
		if tags[w] == tag && c.mirValid[base+w] {
			return w
		}
	}
	return -1
}

// victim picks the LRU way of a set.
func (c *Cache) victim(set uint32) int {
	best, bestTick := 0, ^uint64(0)
	for w := range c.lines[set] {
		ln := &c.lines[set][w]
		if !ln.valid {
			return w
		}
		if ln.lru < bestTick {
			best, bestTick = w, ln.lru
		}
	}
	return best
}

// lineAddr reconstructs the physical address of a line from its tag and set.
func (c *Cache) lineAddr(tag, set uint32) uint32 {
	return tag<<(c.offBits+c.setBits) | set<<c.offBits
}

// fill brings the line containing addr into the cache, evicting as needed.
// It returns the way index, the added latency, and whether the backing
// access succeeded.
func (c *Cache) fill(tag, set uint32, addr uint32) (int, int, bool) {
	w := c.victim(set)
	ln := &c.lines[set][w]
	lat := 0
	if c.life != nil && ln.valid {
		c.life.evict(c.lifeIdx(set, w), ln.dirty)
	}
	if c.rec != nil && ln.valid {
		c.rec.evict(set, w, ln.dirty)
	}
	var probe *Probe
	var probeOff uint32
	if c.taintAt(set, w) {
		// The victim way holds the taint; the refill recycles it either
		// way, so resolve the taint's fate before touching the data.
		probe, probeOff = c.taintProbe, c.taintOff
		c.ClearTaint()
	}
	if ln.valid && ln.dirty {
		wbAddr := c.lineAddr(ln.tag, set)
		wbLat, ok := c.below.WriteBackLine(wbAddr, ln.data)
		lat += wbLat
		if !ok {
			return w, lat, false
		}
		c.stats.Writebacks++
		if probe != nil {
			// Dirty eviction: the corruption travelled down with the line
			// and the level below takes over the taint. The absorb runs
			// after the writeback so the receiving level does not mistake
			// the arriving corrupted data for an overwrite of it.
			probe.NoteWriteback(c.cfg.Name)
			if abs, ok := c.below.(taintAbsorber); ok {
				abs.AbsorbTaint(wbAddr+probeOff, probe)
			}
			probe = nil
		}
	} else if probe != nil && ln.valid {
		probe.NoteCleanEvict(c.cfg.Name)
		probe = nil
	}
	fLat, ok := c.below.FetchLine(addr&^(c.cfg.LineBytes-1), ln.data)
	lat += fLat
	if !ok {
		ln.valid = false
		c.syncMirror(set, w)
		return w, lat, false
	}
	if probe != nil {
		// The flip had landed in an invalid line; the refill replaced the
		// dead corrupted bits with fresh data.
		probe.NoteOverwrite(c.cfg.Name)
	}
	ln.valid = true
	ln.dirty = false
	ln.tag = tag
	c.syncMirror(set, w)
	if c.life != nil {
		c.life.open(c.lifeIdx(set, w), false)
	}
	if c.rec != nil {
		c.rec.fill(set, w, addr&^(c.cfg.LineBytes-1))
	}
	return w, lat, true
}

// access performs a read or write of up to 8 bytes entirely within one line.
func (c *Cache) access(addr uint32, buf []byte, write bool) (int, bool) {
	tag, set, off := c.split(addr)
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	lat := c.cfg.HitCycles
	w := c.lookup(tag, set)
	if w < 0 {
		c.stats.Misses++
		var ok bool
		var fillLat int
		w, fillLat, ok = c.fill(tag, set, addr)
		lat += fillLat
		if !ok {
			return lat, false
		}
	}
	ln := &c.lines[set][w]
	c.tick++
	ln.lru = c.tick
	if write {
		copy(ln.data[off:], buf)
		ln.dirty = true
		if c.life != nil {
			c.life.write(c.lifeIdx(set, w))
		}
		if c.rec != nil {
			c.rec.access(set, w, off, uint32(len(buf)), true)
		}
		if c.taintAt(set, w) && off <= c.taintOff && c.taintOff < off+uint32(len(buf)) {
			c.taintProbe.NoteOverwrite(c.cfg.Name)
			c.ClearTaint()
		}
	} else {
		copy(buf, ln.data[off:int(off)+len(buf)])
		if c.life != nil {
			c.life.read(c.lifeIdx(set, w))
		}
		if c.rec != nil {
			c.rec.access(set, w, off, uint32(len(buf)), false)
		}
		if c.taintAt(set, w) && off <= c.taintOff && c.taintOff < off+uint32(len(buf)) {
			c.taintProbe.NoteRead(c.cfg.Name)
		}
	}
	return lat, true
}

// Read reads size bytes (1, 2, or 4; never crossing a line) at addr.
func (c *Cache) Read(addr uint32, size uint32) (uint32, int, bool) {
	var buf [4]byte
	lat, ok := c.access(addr, buf[:size], false)
	if !ok {
		return 0, lat, false
	}
	switch size {
	case 1:
		return uint32(buf[0]), lat, true
	case 2:
		return uint32(binary.LittleEndian.Uint16(buf[:])), lat, true
	default:
		return binary.LittleEndian.Uint32(buf[:]), lat, true
	}
}

// Write stores size bytes (1, 2, or 4) of val at addr.
func (c *Cache) Write(addr uint32, size uint32, val uint32) (int, bool) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], val)
	return c.access(addr, buf[:size], true)
}

// FetchLine implements Backing for an upper-level cache.
func (c *Cache) FetchLine(addr uint32, buf []byte) (int, bool) {
	tag, set, _ := c.split(addr)
	c.stats.Reads++
	lat := c.cfg.HitCycles
	w := c.lookup(tag, set)
	if w < 0 {
		c.stats.Misses++
		var ok bool
		var fillLat int
		w, fillLat, ok = c.fill(tag, set, addr)
		lat += fillLat
		if !ok {
			return lat, false
		}
	}
	ln := &c.lines[set][w]
	c.tick++
	ln.lru = c.tick
	copy(buf, ln.data)
	if c.life != nil {
		c.life.read(c.lifeIdx(set, w))
	}
	if c.rec != nil {
		c.rec.access(set, w, 0, c.cfg.LineBytes, false)
	}
	if c.taintAt(set, w) {
		// A whole-line fetch always covers the corrupted byte: the upper
		// level (and ultimately the core) consumed the corruption.
		c.taintProbe.NoteRead(c.cfg.Name)
	}
	return lat, true
}

// WriteBackLine implements Backing for an upper-level cache: the victim line
// of the level above is absorbed here (write-allocate).
func (c *Cache) WriteBackLine(addr uint32, buf []byte) (int, bool) {
	tag, set, _ := c.split(addr)
	c.stats.Writes++
	lat := c.cfg.HitCycles
	w := c.lookup(tag, set)
	if w < 0 {
		c.stats.Misses++
		var ok bool
		var fillLat int
		w, fillLat, ok = c.fill(tag, set, addr)
		lat += fillLat
		if !ok {
			return lat, false
		}
	}
	ln := &c.lines[set][w]
	c.tick++
	ln.lru = c.tick
	copy(ln.data, buf)
	ln.dirty = true
	if c.life != nil {
		c.life.write(c.lifeIdx(set, w))
	}
	if c.rec != nil {
		c.rec.access(set, w, 0, c.cfg.LineBytes, true)
	}
	if c.taintAt(set, w) {
		// The upper level's writeback replaces the whole corrupted line.
		c.taintProbe.NoteOverwrite(c.cfg.Name)
		c.ClearTaint()
	}
	return lat, true
}

// InvalidateAll drops every line without writing dirty data back. Used when
// the platform resets between fault-injection runs.
func (c *Cache) InvalidateAll() {
	if p := c.taintProbe; p != nil {
		if c.lines[c.taintSet][c.taintWay].valid {
			p.NoteCleanEvict(c.cfg.Name)
		}
		c.ClearTaint()
	}
	for s := range c.lines {
		for w := range c.lines[s] {
			if c.life != nil && c.lines[s][w].valid {
				c.life.evict(c.lifeIdx(uint32(s), w), false)
			}
			if c.rec != nil && c.lines[s][w].valid {
				// Invalidation discards dirty data without writeback: a
				// clean-discard event, matching the probe's verdict.
				c.rec.evict(uint32(s), w, false)
			}
			c.lines[s][w].valid = false
			c.lines[s][w].dirty = false
		}
	}
	for i := range c.mirValid {
		c.mirValid[i] = false
	}
	c.stats = CacheStats{}
	// With no valid lines left there is no LRU order to preserve, so reset
	// the clock: cold restores become bit-deterministic (equal absolute LRU
	// stamps run over run), which the checkpoint-ladder fingerprints rely on.
	c.tick = 0
}

// FlushAll writes every dirty line back and invalidates the cache.
func (c *Cache) FlushAll() {
	for s := range c.lines {
		for w := range c.lines[s] {
			ln := &c.lines[s][w]
			if c.rec != nil && ln.valid {
				c.rec.evict(uint32(s), w, ln.dirty)
			}
			if ln.valid && ln.dirty {
				wbAddr := c.lineAddr(ln.tag, uint32(s))
				c.below.WriteBackLine(wbAddr, ln.data)
				if c.taintAt(uint32(s), w) {
					p, off := c.taintProbe, c.taintOff
					c.ClearTaint()
					p.NoteWriteback(c.cfg.Name)
					if abs, ok := c.below.(taintAbsorber); ok {
						abs.AbsorbTaint(wbAddr+off, p)
					}
				}
			} else if c.taintAt(uint32(s), w) {
				if ln.valid {
					c.taintProbe.NoteCleanEvict(c.cfg.Name)
				}
				c.ClearTaint()
			}
			ln.valid = false
			ln.dirty = false
		}
	}
	for i := range c.mirValid {
		c.mirValid[i] = false
	}
}

// --- Fault-injection surface ---------------------------------------------

// FlipDataBit inverts one stored data bit, addressed linearly across the
// whole data array: bit / 8 selects the byte in set-major, way-minor,
// line-offset order. The flip lands whether or not the line is valid, just
// as a particle strike does; an invalid or later-refilled line masks it.
func (c *Cache) FlipDataBit(bit uint64) {
	lineBits := uint64(c.cfg.LineBytes) * 8
	wayBits := lineBits * uint64(c.cfg.Ways)
	set := bit / wayBits % uint64(c.sets)
	way := bit % wayBits / lineBits
	off := bit % lineBits
	c.lines[set][way].data[off/8] ^= 1 << (off % 8)
}

// taintAt reports whether the tainted line is (set, w).
func (c *Cache) taintAt(set uint32, w int) bool {
	return c.taintProbe != nil && set == c.taintSet && w == c.taintWay
}

// TaintDataBit marks the line holding a linearly-addressed data bit (same
// addressing as FlipDataBit) as tainted and arms the probe. Called at flip
// time, before the flip lands, so liveness reflects the struck state.
func (c *Cache) TaintDataBit(bit uint64, p *Probe) {
	lineBits := uint64(c.cfg.LineBytes) * 8
	wayBits := lineBits * uint64(c.cfg.Ways)
	c.taintProbe = p
	c.taintSet = uint32(bit / wayBits % uint64(c.sets))
	c.taintWay = int(bit % wayBits / lineBits)
	c.taintOff = uint32(bit % lineBits / 8)
	p.Arm(c.lines[c.taintSet][c.taintWay].valid)
}

// ClearTaint drops any tracked taint without emitting an event.
func (c *Cache) ClearTaint() {
	c.taintProbe = nil
	c.taintSet, c.taintWay, c.taintOff = 0, 0, 0
}

// AbsorbTaint takes over a taint pushed down by the level above's dirty
// writeback. If the corrupted address is not resident here the taint
// continues down the hierarchy.
func (c *Cache) AbsorbTaint(addr uint32, p *Probe) {
	tag, set, off := c.split(addr)
	if w := c.lookup(tag, set); w >= 0 {
		c.taintProbe = p
		c.taintSet, c.taintWay, c.taintOff = set, w, off
		return
	}
	if abs, ok := c.below.(taintAbsorber); ok {
		abs.AbsorbTaint(addr, p)
	}
}

// ValidLines returns how many lines currently hold valid data.
func (c *Cache) ValidLines() int {
	n := 0
	for s := range c.lines {
		for w := range c.lines[s] {
			if c.lines[s][w].valid {
				n++
			}
		}
	}
	return n
}

// DirtyLines returns how many lines are valid and dirty.
func (c *Cache) DirtyLines() int {
	n := 0
	for s := range c.lines {
		for w := range c.lines[s] {
			if c.lines[s][w].valid && c.lines[s][w].dirty {
				n++
			}
		}
	}
	return n
}

// TagBits returns the number of tag bits per line (for the tag-array
// injection ablation).
func (c *Cache) TagBits() uint {
	return 32 - c.offBits - c.setBits
}

// FlipTagBit inverts one bit of a line's tag, addressed linearly across the
// tag array. A tag flip on a clean line turns later hits into misses (the
// fault is usually masked by a refill); on a dirty line it writes the data
// back to the wrong physical address — silent corruption of another line.
func (c *Cache) FlipTagBit(bit uint64) {
	perLine := uint64(c.TagBits())
	line := bit / perLine
	set := line / uint64(c.cfg.Ways) % uint64(c.sets)
	way := line % uint64(c.cfg.Ways)
	c.lines[set][way].tag ^= 1 << (bit % perLine)
	c.syncMirror(uint32(set), int(way))
}

// TotalTagBits returns the size of the tag array in bits.
func (c *Cache) TotalTagBits() uint64 {
	return uint64(c.sets) * uint64(c.cfg.Ways) * uint64(c.TagBits())
}

// CacheState is a deep copy of a cache's content, captured by Machine
// snapshots (the gem5-checkpoint analogue).
type CacheState struct {
	lines [][]cacheLine
	tick  uint64
	stats CacheStats
}

// SaveState deep-copies the cache content.
func (c *Cache) SaveState() *CacheState {
	st := &CacheState{tick: c.tick, stats: c.stats}
	st.lines = make([][]cacheLine, len(c.lines))
	if len(c.lines) == 0 {
		return st
	}
	// The geometry is uniform, so one backing array serves every set and
	// one byte buffer every line: three allocations per save instead of
	// two per set — the checkpoint ladder saves caches thousands of times
	// per campaign.
	nways := len(c.lines[0])
	lineBytes := len(c.lines[0][0].data)
	ways := make([]cacheLine, len(c.lines)*nways)
	buf := make([]byte, len(c.lines)*nways*lineBytes)
	for s := range c.lines {
		set := ways[s*nways : (s+1)*nways : (s+1)*nways]
		for w := range c.lines[s] {
			set[w] = c.lines[s][w]
			data := buf[:lineBytes:lineBytes]
			buf = buf[lineBytes:]
			copy(data, c.lines[s][w].data)
			set[w].data = data
		}
		st.lines[s] = set
	}
	return st
}

// RestoreState restores content captured by SaveState on a cache with the
// same geometry.
func (c *Cache) RestoreState(st *CacheState) {
	for s := range c.lines {
		for w := range c.lines[s] {
			src := st.lines[s][w]
			dst := &c.lines[s][w]
			data := dst.data
			copy(data, src.data)
			*dst = src
			dst.data = data
		}
	}
	c.tick = st.tick
	c.stats = st.stats
	c.syncMirrorAll()
}

// MemoryBytes estimates the retained size of the saved content
// (checkpoint-ladder memory accounting).
func (st *CacheState) MemoryBytes() int {
	total := 0
	for s := range st.lines {
		for w := range st.lines[s] {
			total += len(st.lines[s][w].data) + 48
		}
	}
	return total
}

// FlushInto overlays every valid dirty line onto a raw physical-memory
// image without disturbing cache state. Machine snapshots use it to build a
// coherent DRAM image while the caches keep their (possibly dirty)
// content.
func (c *Cache) FlushInto(dst []byte) {
	for s := range c.lines {
		for w := range c.lines[s] {
			ln := &c.lines[s][w]
			if !ln.valid || !ln.dirty {
				continue
			}
			addr := c.lineAddr(ln.tag, uint32(s))
			if int(addr)+len(ln.data) <= len(dst) {
				copy(dst[addr:], ln.data)
			}
		}
	}
}

// InvalidateRange drops (without writeback) every line whose address falls
// in [base, base+size). Used when a fresh application image is loaded into
// DRAM underneath a live cache hierarchy.
func (c *Cache) InvalidateRange(base, size uint32) {
	for s := range c.lines {
		for w := range c.lines[s] {
			ln := &c.lines[s][w]
			if !ln.valid {
				continue
			}
			addr := c.lineAddr(ln.tag, uint32(s))
			if addr >= base && addr < base+size {
				if c.life != nil {
					c.life.evict(c.lifeIdx(uint32(s), w), false)
				}
				if c.rec != nil {
					c.rec.evict(uint32(s), w, false)
				}
				if c.taintAt(uint32(s), w) {
					c.taintProbe.NoteCleanEvict(c.cfg.Name)
					c.ClearTaint()
				}
				ln.valid = false
				ln.dirty = false
				c.syncMirror(uint32(s), w)
			}
		}
	}
}

// LineInfo resolves a linear data-array bit index to the line's current
// physical address and state — the injector's observability hook ("where
// exactly did the fault strike").
func (c *Cache) LineInfo(bit uint64) (addr uint32, valid, dirty bool) {
	lineBits := uint64(c.cfg.LineBytes) * 8
	wayBits := lineBits * uint64(c.cfg.Ways)
	set := uint32(bit / wayBits % uint64(c.sets))
	way := int(bit % wayBits / lineBits)
	ln := &c.lines[set][way]
	return c.lineAddr(ln.tag, set), ln.valid, ln.dirty
}

// VisitValidLines calls fn for every valid line with its physical address
// and dirty state; used for cache-residency profiling.
func (c *Cache) VisitValidLines(fn func(addr uint32, dirty bool)) {
	for s := range c.lines {
		for w := range c.lines[s] {
			ln := &c.lines[s][w]
			if ln.valid {
				fn(c.lineAddr(ln.tag, uint32(s)), ln.dirty)
			}
		}
	}
}
