package mem

import "testing"

// liveCache builds a tiny instrumented cache: 2 ways x 16 sets x 32 B
// lines, with the test driving the clock stamp directly.
func liveCache(clock *uint64) (*Cache, *CacheLiveness) {
	dram := NewDRAM(1 << 16)
	c := NewCache(CacheConfig{Name: "c", SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, HitCycles: 1}, NewBus(dram))
	return c, c.AttachLiveness(clock)
}

// Bit 0 addresses set 0, way 0, byte 0 — the slot address 0 fills first.
const way0bit = 0

func TestCacheLivenessVerdicts(t *testing.T) {
	var now uint64
	c, r := liveCache(&now)

	now = 10
	c.Read(0, 4) // fill at 10, covering read of bytes [0,4)

	// Flip before the fill: the slot held nothing then.
	if q := r.QueryBit(way0bit, 5); q.Verdict != LiveNeverRead || q.Valid {
		t.Fatalf("pre-fill flip: %+v", q)
	}
	// Flip after the fill with no later events: latent corruption.
	if q := r.QueryBit(way0bit, 11); q.Verdict != LiveLatent || !q.Valid {
		t.Fatalf("latent flip: %+v", q)
	}

	now = 20
	c.Read(0, 4)
	// Now a covering read at 20 follows a flip at 11: undecided.
	if q := r.QueryBit(way0bit, 11); q.Verdict != LiveUndecided || !q.Valid {
		t.Fatalf("consumed flip: %+v", q)
	}
	// A flip of byte 8 is outside every read's [0,4) coverage: latent.
	if q := r.QueryBit(8*8, 11); q.Verdict != LiveLatent {
		t.Fatalf("uncovered byte: %+v", q)
	}
	// A flip stamped exactly at the read lands before it: undecided.
	if q := r.QueryBit(way0bit, 20); q.Verdict != LiveUndecided {
		t.Fatalf("flip at read stamp: %+v", q)
	}

	now = 30
	c.Write(0, 4, 42)
	// Flip between the last read and the write: provably overwritten.
	if q := r.QueryBit(way0bit, 25); q.Verdict != LiveOverwritten {
		t.Fatalf("overwritten flip: %+v", q)
	}

	c.DetachLiveness()
	if r.Overflowed() != 0 {
		t.Fatalf("overflow on %d ways", r.Overflowed())
	}
}

func TestCacheLivenessCleanEviction(t *testing.T) {
	var now uint64
	c, r := liveCache(&now)
	now = 10
	c.Read(0, 4) // clean line
	now = 30
	c.InvalidateAll()
	// Flip after the last read, before the clean eviction: discarded.
	if q := r.QueryBit(way0bit, 15); q.Verdict != LiveEvictedClean || !q.Valid {
		t.Fatalf("clean-evicted flip: %+v", q)
	}
	// Flip after the eviction: nothing lives there any more.
	if q := r.QueryBit(way0bit, 31); q.Verdict != LiveNeverRead {
		t.Fatalf("post-eviction flip: %+v", q)
	}
}

func TestCacheLivenessDirtyEvictionUndecided(t *testing.T) {
	var now uint64
	c, r := liveCache(&now)
	now = 10
	c.Write(0, 4, 7) // fill + dirty
	now = 30
	c.FlushAll() // dirty writeback migrates the corruption below
	if q := r.QueryBit(way0bit, 20); q.Verdict != LiveUndecided || !q.Valid {
		t.Fatalf("dirty-evicted flip: %+v", q)
	}
}

func TestTLBLivenessVerdicts(t *testing.T) {
	var now uint64
	tlb := NewTLB("t", 4)
	r := tlb.AttachLiveness(&now)

	now = 10
	tlb.Insert(1, 0x40, true, false)
	// Find the entry the insert landed in.
	entry := -1
	for i := 0; i < tlb.Entries(); i++ {
		if tlb.EntryValid(i) {
			entry = i
		}
	}
	if entry < 0 {
		t.Fatal("insert left no valid entry")
	}
	ppnBit := uint64(entry)*TLBEntryBits + TLBPhysRegionStart

	// PPN flip with no later events: latent.
	if q := r.QueryBit(ppnBit, 11); q.Verdict != LiveLatent || !q.Valid {
		t.Fatalf("latent PPN flip: %+v", q)
	}
	now = 20
	if _, ok := tlb.Lookup(1); !ok {
		t.Fatal("lookup missed")
	}
	// The hit at 20 consumes the entry: undecided.
	if q := r.QueryBit(ppnBit, 11); q.Verdict != LiveUndecided {
		t.Fatalf("consumed PPN flip: %+v", q)
	}
	now = 30
	tlb.InvalidateAll()
	// Flip after the last hit, before the invalidation: discarded.
	if q := r.QueryBit(ppnBit, 25); q.Verdict != LiveEvictedClean {
		t.Fatalf("invalidated PPN flip: %+v", q)
	}

	// VPN and valid-bit flips change which entries match — never decided.
	vpnBit := uint64(entry) * TLBEntryBits
	validBit := uint64(entry)*TLBEntryBits + TLBPhysRegionStart + TLBPhysRegionBits - 1
	for _, b := range []uint64{vpnBit, validBit} {
		if q := r.QueryBit(b, 11); q.Verdict != LiveUndecided {
			t.Fatalf("bit %d decided: %+v", b, q)
		}
	}
}
