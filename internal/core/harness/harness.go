// Package harness prepares workloads for reliability experiments: it
// boots a machine, stages the workload and its input, captures the
// post-boot snapshot (the gem5-checkpoint analogue), validates the golden
// run against the native reference, and exposes single-fault runs with
// outcome classification. Both the GeFIN-like injection campaigns and the
// beam simulator build on it.
package harness

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"runtime/pprof"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/mem"
	"armsefi/internal/soc"
)

// Phased runs fn under a pprof "phase" label, so -cpuprofile output
// attributes campaign time to its phase — golden replay, ladder capture,
// liveness build, shard execution — instead of one flat profile.
func Phased(phase string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("phase", phase), func(context.Context) { fn() })
}

// Default cycle budgets.
const (
	// BootBudget bounds kernel boot.
	BootBudget = 50_000_000
	// GoldenBudget bounds a fault-free workload run.
	GoldenBudget = 4_000_000_000
)

// Workbench is a machine prepared to run one workload repeatedly.
type Workbench struct {
	Machine *soc.Machine
	Built   *bench.Built
	Snap    *soc.Snapshot
	// Golden is the fault-free run from the cold post-boot snapshot (the
	// conditions of every injection run).
	Golden soc.Result
	// Watchdog is the cycle budget for faulty runs before the host declares
	// a hang.
	Watchdog uint64
	// Ladder is the golden-run checkpoint ladder, built on demand by
	// BuildLadder. When present (and its warm mode matches), fault runs
	// fast-forward to the nearest rung below the injection cycle and exit
	// early on golden convergence. Immutable once built; clones share it.
	Ladder *soc.Ladder
	// Liveness is the instrumented golden replay's liveness log, built on
	// demand by BuildLiveness for campaigns that prune provably-masked
	// injections before simulating. Immutable once built; clones share it.
	Liveness *soc.LivenessLog
}

// New builds a machine for the preset and model, loads the workload, boots,
// snapshots, and validates the golden run bit-for-bit against the native
// reference output.
func New(cfg soc.Config, model soc.ModelKind, built *bench.Built) (*Workbench, error) {
	m, err := soc.NewMachine(cfg, model)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	if err := m.LoadApp(built.Program); err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	if len(built.Input) > 0 {
		if err := m.PokeBytes(built.InputAddr, built.Input); err != nil {
			return nil, fmt.Errorf("harness: staging input: %w", err)
		}
	}
	if err := m.Boot(BootBudget); err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	w := &Workbench{Machine: m, Built: built, Snap: m.SaveSnapshot()}
	Phased("golden-replay", func() {
		m.RestoreSnapshot(w.Snap, false)
		w.Golden = m.Run(GoldenBudget)
	})
	if !w.Golden.CleanExit() {
		return nil, fmt.Errorf("harness: golden run of %s/%s did not exit cleanly: %v code=%#x",
			built.Spec.Name, built.Scale, w.Golden.Outcome, w.Golden.ExitCode)
	}
	if !bytes.Equal(w.Golden.Output, built.Golden) {
		return nil, fmt.Errorf("harness: golden output of %s/%s diverges from the native reference (%d vs %d bytes)",
			built.Spec.Name, built.Scale, len(w.Golden.Output), len(built.Golden))
	}
	w.Watchdog = 2*w.Golden.Cycles + 50*uint64(cfg.TimerPeriod)
	return w, nil
}

// Build assembles a workload spec at the given scale and prepares a
// workbench for it — the spec.Build + New sequence every campaign engine
// opens with, shared so the shard runners of the campaign service set up
// workloads exactly like the in-process engines do.
func Build(cfg soc.Config, model soc.ModelKind, spec bench.Spec, scale bench.Scale) (*Workbench, error) {
	built, err := spec.Build(soc.UserAsmConfig(), scale)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return New(cfg, model, built)
}

// Clone builds a sibling workbench over the same built workload: a fresh
// machine with the original's preset and model, booted to the same
// post-boot point. Because the machine is deterministic, the sibling's
// snapshot is bit-equal to the original's, so the golden run and watchdog
// are inherited rather than re-validated — a clone costs one kernel boot
// instead of a boot plus a full workload run (and no re-assembly: Built is
// shared read-only). Siblings share no mutable state; the parallel
// campaign engines give each worker goroutine its own workbench.
func (w *Workbench) Clone() (*Workbench, error) {
	m, err := soc.NewMachine(w.Machine.Cfg, w.Machine.Model)
	if err != nil {
		return nil, fmt.Errorf("harness: clone: %w", err)
	}
	if err := m.LoadApp(w.Built.Program); err != nil {
		return nil, fmt.Errorf("harness: clone: %w", err)
	}
	if len(w.Built.Input) > 0 {
		if err := m.PokeBytes(w.Built.InputAddr, w.Built.Input); err != nil {
			return nil, fmt.Errorf("harness: clone: staging input: %w", err)
		}
	}
	if err := m.Boot(BootBudget); err != nil {
		return nil, fmt.Errorf("harness: clone: %w", err)
	}
	return &Workbench{
		Machine:  m,
		Built:    w.Built,
		Snap:     m.SaveSnapshot(),
		Golden:   w.Golden,
		Watchdog: w.Watchdog,
		// The ladder and liveness log are immutable after capture and every
		// restore path deep-copies state out of them, so siblings share one
		// of each (their base snapshot is bit-equal to the sibling's own).
		Ladder:   w.Ladder,
		Liveness: w.Liveness,
	}, nil
}

// BuildLadder captures the golden-run checkpoint ladder used to accelerate
// subsequent fault runs: rungs every `every` cycles (zero picks the
// platform default), at most max mid-run rungs — the effective spacing
// grows to fit long golden runs — captured under the given warm mode,
// which must match the warm argument of later fault runs. The capture
// replay's Result is validated against the golden reference before the
// ladder is installed, so a ladder can never change campaign results.
func (w *Workbench) BuildLadder(every uint64, max int, warm bool) error {
	if every == 0 {
		every = soc.DefaultCheckpointEvery
	}
	// Short golden runs shrink the spacing so the ladder still gets ~16
	// rungs to fast-forward and early-exit through: the paper-scale
	// default spacing would otherwise leave a sub-150k-cycle workload with
	// rung 0 alone. Long runs keep the configured spacing, and the
	// MaxCheckpoints bound grows it back if the rung count would exceed
	// the cap.
	if short := w.Golden.Cycles/16 + 1; every > short {
		every = short
	}
	if max > 0 {
		if need := w.Golden.Cycles/uint64(max) + 1; need > every {
			every = need
		}
	}
	var l *soc.Ladder
	Phased("ladder-capture", func() {
		l = w.Machine.CaptureLadder(w.Snap, warm, every, max, GoldenBudget)
	})
	if !l.Final.CleanExit() {
		return fmt.Errorf("harness: ladder capture run of %s/%s did not exit cleanly: %v code=%#x",
			w.Built.Spec.Name, w.Built.Scale, l.Final.Outcome, l.Final.ExitCode)
	}
	if !bytes.Equal(l.Final.Output, w.Built.Golden) {
		return fmt.Errorf("harness: ladder capture output of %s/%s diverges from the native reference",
			w.Built.Spec.Name, w.Built.Scale)
	}
	if !warm && !reflect.DeepEqual(l.Final, w.Golden) {
		return fmt.Errorf("harness: ladder capture of %s/%s is not bit-identical to the golden run (%+v vs %+v)",
			w.Built.Spec.Name, w.Built.Scale, l.Final, w.Golden)
	}
	w.Ladder = l
	return nil
}

// BuildLiveness performs the instrumented golden replay that records
// per-location liveness for the campaign pre-filter, under the given warm
// mode (which must match later fault runs'). Like BuildLadder, the
// replay's Result is validated against the golden reference before the
// log is installed, so a log can never be built from a diverged replay —
// and since decided pre-filter verdicts are exactly what simulation would
// conclude, pruning can then never change campaign results either.
func (w *Workbench) BuildLiveness(warm bool) error {
	var log *soc.LivenessLog
	Phased("liveness-build", func() {
		log = w.Machine.ReplayLiveness(w.Snap, warm, GoldenBudget)
	})
	if !log.Final.CleanExit() {
		return fmt.Errorf("harness: liveness replay of %s/%s did not exit cleanly: %v code=%#x",
			w.Built.Spec.Name, w.Built.Scale, log.Final.Outcome, log.Final.ExitCode)
	}
	if !bytes.Equal(log.Final.Output, w.Built.Golden) {
		return fmt.Errorf("harness: liveness replay output of %s/%s diverges from the native reference",
			w.Built.Spec.Name, w.Built.Scale)
	}
	if !warm && !reflect.DeepEqual(log.Final, w.Golden) {
		return fmt.Errorf("harness: liveness replay of %s/%s is not bit-identical to the golden run (%+v vs %+v)",
			w.Built.Spec.Name, w.Built.Scale, log.Final, w.Golden)
	}
	w.Liveness = log
	return nil
}

// RunFault restores the cold snapshot (caches reset, as GeFIN does on every
// experiment), injects the fault at its cycle, runs to completion or
// watchdog, and classifies the outcome.
func (w *Workbench) RunFault(f fault.Fault) fault.Class {
	return w.runFault(f, false)
}

// RunFaultWarm is the warm-cache ablation: injection runs start from the
// live post-boot cache state instead of reset caches.
func (w *Workbench) RunFaultWarm(f fault.Fault) fault.Class {
	return w.runFault(f, true)
}

func (w *Workbench) runFault(f fault.Fault, warm bool) fault.Class {
	cls, _ := w.RunFaultDetail(f, warm)
	return cls
}

// RunFaultDetail runs one fault and additionally reports what it struck
// (resolved at the injection instant): live vs idle content, kernel vs
// user ownership — the injector-side observability of Section IV-C.
func (w *Workbench) RunFaultDetail(f fault.Fault, warm bool) (fault.Class, fault.Context) {
	cls, ctx, _ := w.RunFaultFull(f, warm)
	return cls, ctx
}

// RunFaultFull runs one fault like RunFaultDetail and additionally
// returns the raw machine-level result (outcome, cycle count, output) —
// the per-injection record the observability trace captures before
// host-side classification collapses it to a class. When a matching
// ladder is installed the run goes through it transparently; the Result
// is bit-identical either way.
func (w *Workbench) RunFaultFull(f fault.Fault, warm bool) (fault.Class, fault.Context, soc.Result) {
	cls, ctx, res, _ := w.RunFaultLadder(f, warm)
	return cls, ctx, res
}

// RunFaultLadder runs one fault like RunFaultFull and additionally reports
// what the checkpoint ladder did for the run (zero stats when no matching
// ladder is installed and the run took the plain path).
func (w *Workbench) RunFaultLadder(f fault.Fault, warm bool) (fault.Class, fault.Context, soc.Result, soc.LadderStats) {
	var ctx fault.Context
	inject := func() {
		ctx = fault.ContextOf(w.Machine, f)
		fault.Apply(w.Machine, f)
	}
	var res soc.Result
	var stats soc.LadderStats
	if w.Ladder != nil && w.Ladder.Warm() == warm {
		res, stats = w.Machine.RunLadderInjection(w.Ladder, w.Watchdog, f.Cycle, inject)
	} else {
		w.Machine.RestoreSnapshot(w.Snap, warm)
		res = w.Machine.RunWithInjection(w.Watchdog, f.Cycle, inject)
	}
	return fault.Classify(res, w.Built.Golden, w.Machine.Cfg.TimerPeriod), ctx, res, stats
}

// RunFaultProv runs one fault like RunFaultLadder with a propagation
// provenance probe attached: the struck location is tainted at the
// injection instant (liveness resolved pre-flip), the memory and CPU
// models report lifecycle events on it into p, and all taint is disarmed
// again before returning — the probe is purely observational and the
// Result is bit-identical to the probe-free paths. The caller reads the
// mechanism verdict via fault.MechanismOf; p.Armed() is false for targets
// without taint support (tag arrays).
func (w *Workbench) RunFaultProv(f fault.Fault, warm bool, p *mem.Probe) (fault.Class, fault.Context, soc.Result, soc.LadderStats) {
	core := w.Machine.Core()
	p.Reset(core.Cycles, core.PC)
	var ctx fault.Context
	inject := func() {
		ctx = fault.ContextOf(w.Machine, f)
		fault.Arm(w.Machine, f, p)
		fault.Apply(w.Machine, f)
	}
	var res soc.Result
	var stats soc.LadderStats
	if w.Ladder != nil && w.Ladder.Warm() == warm {
		res, stats = w.Machine.RunLadderInjection(w.Ladder, w.Watchdog, f.Cycle, inject)
	} else {
		w.Machine.RestoreSnapshot(w.Snap, warm)
		res = w.Machine.RunWithInjection(w.Watchdog, f.Cycle, inject)
	}
	fault.Disarm(w.Machine)
	return fault.Classify(res, w.Built.Golden, w.Machine.Cfg.TimerPeriod), ctx, res, stats
}

// RunClean restores the cold snapshot and runs fault-free; useful for
// timing and determinism checks.
func (w *Workbench) RunClean() soc.Result {
	w.Machine.RestoreSnapshot(w.Snap, false)
	return w.Machine.Run(w.Watchdog)
}
