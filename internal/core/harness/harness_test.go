package harness

import (
	"bytes"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/soc"
)

func newBench(t *testing.T, name string) *bench.Built {
	t.Helper()
	spec, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	built, err := spec.Build(soc.UserAsmConfig(), bench.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	return built
}

func TestWorkbenchGoldenValidation(t *testing.T) {
	wb, err := New(soc.PresetModel(), soc.ModelDetailed, newBench(t, "crc32"))
	if err != nil {
		t.Fatal(err)
	}
	if !wb.Golden.CleanExit() {
		t.Fatal("golden run not clean")
	}
	if !bytes.Equal(wb.Golden.Output, wb.Built.Golden) {
		t.Fatal("golden output mismatch")
	}
	if wb.Watchdog <= wb.Golden.Cycles {
		t.Fatal("watchdog shorter than the golden run")
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	wb, err := New(soc.PresetModel(), soc.ModelDetailed, newBench(t, "crc32"))
	if err != nil {
		t.Fatal(err)
	}
	a := wb.RunClean()
	b := wb.RunClean()
	if a.Cycles != b.Cycles || !bytes.Equal(a.Output, b.Output) {
		t.Fatalf("clean runs diverge: %d vs %d cycles", a.Cycles, b.Cycles)
	}
	if a.Cycles != wb.Golden.Cycles {
		t.Fatalf("restored run (%d cycles) differs from golden (%d)", a.Cycles, wb.Golden.Cycles)
	}
	f := fault.Fault{Comp: fault.CompRegFile, Bit: 101, Cycle: a.Cycles / 2}
	c1 := wb.RunFault(f)
	c2 := wb.RunFault(f)
	if c1 != c2 {
		t.Fatalf("identical faults classified differently: %v vs %v", c1, c2)
	}
}

func TestFaultAtZeroAndLateCycles(t *testing.T) {
	wb, err := New(soc.PresetModel(), soc.ModelAtomic, newBench(t, "crc32"))
	if err != nil {
		t.Fatal(err)
	}
	// Faults at the boundaries must classify without hanging the harness.
	for _, cycle := range []uint64{0, wb.Golden.Cycles - 1, wb.Golden.Cycles + 1000} {
		cls := wb.RunFault(fault.Fault{Comp: fault.CompL2, Bit: 777, Cycle: cycle})
		if cls < fault.ClassMasked || cls > fault.ClassSysCrash {
			t.Fatalf("cycle %d: bad class %v", cycle, cls)
		}
	}
}

func TestAtomicWorkbench(t *testing.T) {
	wb, err := New(soc.PresetModel(), soc.ModelAtomic, newBench(t, "susan_e"))
	if err != nil {
		t.Fatal(err)
	}
	if !wb.Golden.CleanExit() {
		t.Fatal("atomic golden not clean")
	}
}

// TestCloneIsEquivalent verifies the parallel engines' foundation: a
// cloned workbench reproduces the original's snapshot, golden timing, and
// per-fault classifications without re-running the golden validation.
func TestCloneIsEquivalent(t *testing.T) {
	wb, err := New(soc.PresetModel(), soc.ModelDetailed, newBench(t, "crc32"))
	if err != nil {
		t.Fatal(err)
	}
	clone, err := wb.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if clone.Machine == wb.Machine || clone.Snap == wb.Snap {
		t.Fatal("clone shares mutable state with the original")
	}
	if clone.Golden.Cycles != wb.Golden.Cycles || clone.Watchdog != wb.Watchdog {
		t.Fatal("clone did not inherit golden metrics")
	}
	res := clone.RunClean()
	if res.Cycles != wb.Golden.Cycles || !bytes.Equal(res.Output, wb.Golden.Output) {
		t.Fatalf("clone's clean run (%d cycles) diverges from the original golden (%d)",
			res.Cycles, wb.Golden.Cycles)
	}
	for _, f := range []fault.Fault{
		{Comp: fault.CompRegFile, Bit: 77, Cycle: wb.Golden.Cycles / 3},
		{Comp: fault.CompL1D, Bit: 2048, Cycle: wb.Golden.Cycles / 2},
		{Comp: fault.CompDTLB, Bit: 5, Cycle: 1000},
	} {
		a, actx := wb.RunFaultDetail(f, false)
		b, bctx := clone.RunFaultDetail(f, false)
		if a != b || actx != bctx {
			t.Fatalf("fault %v: original %v/%+v vs clone %v/%+v", f, a, actx, b, bctx)
		}
	}
}

// TestKernelResidencyDiffersWarmVsCold verifies the mechanism behind the
// paper's System-Crash analysis: the warm (live-board) state holds many
// more valid cache lines — kernel state included — than the cold
// (injection-run) state.
func TestKernelResidencyDiffersWarmVsCold(t *testing.T) {
	wb, err := New(soc.PresetModel(), soc.ModelAtomic, newBench(t, "susan_e"))
	if err != nil {
		t.Fatal(err)
	}
	wb.Machine.RestoreSnapshot(wb.Snap, false)
	cold := wb.Machine.Mem.L2.ValidLines()
	wb.Machine.RestoreSnapshot(wb.Snap, true)
	warm := wb.Machine.Mem.L2.ValidLines()
	if cold != 0 {
		t.Fatalf("cold restore left %d valid L2 lines", cold)
	}
	if warm == 0 {
		t.Fatal("warm restore has no valid L2 lines")
	}
}
