package harness

import (
	"math/rand"
	"reflect"
	"testing"

	"armsefi/internal/core/fault"
	"armsefi/internal/soc"
)

// ladderBench builds a workbench with a ladder of roughly `rungs` rungs,
// plus a ladder-free sibling over the same workload for reference runs.
func ladderBench(t *testing.T, warm bool, rungs int) (withLadder, plain *Workbench) {
	t.Helper()
	wb, err := New(soc.PresetModel(), soc.ModelDetailed, newBench(t, "crc32"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := wb.Clone() // cloned before BuildLadder: stays ladder-free
	if err != nil {
		t.Fatal(err)
	}
	if err := wb.BuildLadder(wb.Golden.Cycles/uint64(rungs)+1, rungs, warm); err != nil {
		t.Fatal(err)
	}
	if wb.Ladder.Rungs() < 2 {
		t.Fatalf("only %d rungs over %d golden cycles", wb.Ladder.Rungs(), wb.Golden.Cycles)
	}
	return wb, ref
}

// sampleFault draws one uniform fault over the given components.
func sampleFault(rng *rand.Rand, m *soc.Machine, comps []fault.Component, goldenCycles uint64) fault.Fault {
	comp := comps[rng.Intn(len(comps))]
	return fault.Fault{
		Comp:  comp,
		Bit:   uint64(rng.Int63n(int64(fault.SizeBits(m, comp)))),
		Cycle: uint64(rng.Int63n(int64(goldenCycles))),
	}
}

// TestLadderBitIdentityAndEarlyExitSoundness is the ladder's contract test:
// over a random fault sample, every ladder run must return exactly the
// class, context, and raw Result of the plain restore-and-replay path; and
// every fault the ladder exits early on must (by re-execution without the
// ladder) truly be Masked.
func TestLadderBitIdentityAndEarlyExitSoundness(t *testing.T) {
	for _, warm := range []bool{false, true} {
		wb, ref := ladderBench(t, warm, 24)
		rng := rand.New(rand.NewSource(11))
		comps := []fault.Component{fault.CompRegFile, fault.CompL1D, fault.CompDTLB}
		n := 40
		if testing.Short() {
			n = 12
		}
		earlyExits := 0
		for i := 0; i < n; i++ {
			f := sampleFault(rng, wb.Machine, comps, wb.Golden.Cycles)
			cls, ctx, res, stats := wb.RunFaultLadder(f, warm)
			pcls, pctx, pres := ref.RunFaultFull(f, warm)
			if cls != pcls || ctx != pctx || !reflect.DeepEqual(res, pres) {
				t.Fatalf("warm=%v fault %+v: ladder (%v, %+v, %+v) != plain (%v, %+v, %+v)",
					warm, f, cls, ctx, res, pcls, pctx, pres)
			}
			if stats.EarlyExit {
				earlyExits++
				if cls != fault.ClassMasked {
					t.Fatalf("warm=%v fault %+v: early exit classified %v, soundness requires Masked",
						warm, f, cls)
				}
			}
		}
		if earlyExits == 0 {
			t.Errorf("warm=%v: no early exits in %d faults — convergence detection inert?", warm, n)
		}
	}
}

// TestLadderFastForwardsInjections checks that rung restores actually skip
// golden-prefix cycles for late injections.
func TestLadderFastForwardsInjections(t *testing.T) {
	wb, _ := ladderBench(t, false, 16)
	f := fault.Fault{Comp: fault.CompRegFile, Bit: 33, Cycle: wb.Golden.Cycles - 1}
	_, _, _, stats := wb.RunFaultLadder(f, false)
	if stats.FastForwarded == 0 {
		t.Fatal("late injection started from cycle zero despite the ladder")
	}
	if stats.FastForwarded > f.Cycle {
		t.Fatalf("fast-forwarded %d cycles past the injection cycle %d", stats.FastForwarded, f.Cycle)
	}
}

// TestLadderWarmModeMismatchFallsBack pins that a ladder captured for one
// warm mode never serves the other mode's runs.
func TestLadderWarmModeMismatchFallsBack(t *testing.T) {
	wb, ref := ladderBench(t, false, 8)
	f := fault.Fault{Comp: fault.CompRegFile, Bit: 65, Cycle: wb.Golden.Cycles / 2}
	cls, _, res, stats := wb.RunFaultLadder(f, true) // warm run, cold ladder
	if stats != (soc.LadderStats{}) {
		t.Fatalf("mismatched warm mode still used the ladder: %+v", stats)
	}
	pcls, _, pres := ref.RunFaultFull(f, true)
	if cls != pcls || !reflect.DeepEqual(res, pres) {
		t.Fatalf("fallback path diverged: %v vs %v", cls, pcls)
	}
}

// TestCloneSharesLadder verifies clones inherit the ladder and produce the
// primary's exact results through it.
func TestCloneSharesLadder(t *testing.T) {
	wb, _ := ladderBench(t, false, 8)
	clone, err := wb.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if clone.Ladder != wb.Ladder {
		t.Fatal("clone did not inherit the ladder")
	}
	f := fault.Fault{Comp: fault.CompL1D, Bit: 4097, Cycle: wb.Golden.Cycles / 3}
	cls, ctx, res, _ := wb.RunFaultLadder(f, false)
	ccls, cctx, cres, _ := clone.RunFaultLadder(f, false)
	if cls != ccls || ctx != cctx || !reflect.DeepEqual(res, cres) {
		t.Fatalf("clone ladder run diverged: %v vs %v", cls, ccls)
	}
}
