package sched

import (
	"sync"
	"testing"
)

func TestResolve(t *testing.T) {
	if Resolve(0) < 1 || Resolve(-3) < 1 {
		t.Error("non-positive requests must resolve to at least one worker")
	}
	if Resolve(7) != 7 {
		t.Error("explicit worker counts must pass through")
	}
}

func TestPoolBounds(t *testing.T) {
	p := NewPool(2)
	if p.Cap() != 2 {
		t.Fatalf("cap = %d", p.Cap())
	}
	if !p.TryAcquire() || !p.TryAcquire() {
		t.Fatal("fresh pool refused its slots")
	}
	if p.TryAcquire() {
		t.Fatal("pool over-granted")
	}
	p.Release()
	if !p.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

func TestZeroPool(t *testing.T) {
	for _, n := range []int{0, -1} {
		if NewPool(n).TryAcquire() {
			t.Fatalf("NewPool(%d) granted a slot", n)
		}
	}
}

func TestPoolBlockingAcquire(t *testing.T) {
	p := NewPool(1)
	p.Acquire()
	released := make(chan struct{})
	go func() {
		p.Acquire() // blocks until the first slot is released
		close(released)
		p.Release()
	}()
	select {
	case <-released:
		t.Fatal("second Acquire succeeded while the slot was held")
	default:
	}
	p.Release()
	<-released
}

func TestMeterSerialisesAndCounts(t *testing.T) {
	m := NewMeter()
	m.AddTotal(100)
	m.WorkerStarted()
	m.WorkerStarted()

	// Ticks from many goroutines: emissions must be serialised (the
	// unguarded counters below would race otherwise; go test -race is the
	// enforcement) and Done must end exactly at the tick count.
	seen := 0
	maxDone := 0
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				m.Tick(func(s Snapshot) {
					seen++
					if s.Done > maxDone {
						maxDone = s.Done
					}
					if s.Total != 100 || s.Workers != 2 {
						t.Errorf("snapshot = %+v", s)
					}
					if s.Rate < 0 || s.ETA < 0 {
						t.Errorf("negative rate/eta: %+v", s)
					}
				})
			}
		}()
	}
	wg.Wait()
	if seen != 100 || maxDone != 100 {
		t.Fatalf("saw %d emissions, max done %d; want 100/100", seen, maxDone)
	}
	m.WorkerDone()
	m.WorkerDone()
	m.Tick(func(s Snapshot) {
		if s.Workers != 0 {
			t.Errorf("workers = %d after all left", s.Workers)
		}
	})
}

func TestMeterNilEmit(t *testing.T) {
	m := NewMeter()
	m.Tick(nil) // must not panic
}
