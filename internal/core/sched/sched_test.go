package sched

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestResolve(t *testing.T) {
	if Resolve(0) < 1 || Resolve(-3) < 1 {
		t.Error("non-positive requests must resolve to at least one worker")
	}
	if Resolve(7) != 7 {
		t.Error("explicit worker counts must pass through")
	}
}

func TestPoolBounds(t *testing.T) {
	p := NewPool(2)
	if p.Cap() != 2 {
		t.Fatalf("cap = %d", p.Cap())
	}
	if !p.TryAcquire() || !p.TryAcquire() {
		t.Fatal("fresh pool refused its slots")
	}
	if p.TryAcquire() {
		t.Fatal("pool over-granted")
	}
	p.Release()
	if !p.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

func TestZeroPool(t *testing.T) {
	for _, n := range []int{0, -1} {
		if NewPool(n).TryAcquire() {
			t.Fatalf("NewPool(%d) granted a slot", n)
		}
	}
}

func TestPoolBlockingAcquire(t *testing.T) {
	p := NewPool(1)
	p.Acquire()
	released := make(chan struct{})
	go func() {
		p.Acquire() // blocks until the first slot is released
		close(released)
		p.Release()
	}()
	select {
	case <-released:
		t.Fatal("second Acquire succeeded while the slot was held")
	default:
	}
	p.Release()
	<-released
}

func TestMeterSerialisesAndCounts(t *testing.T) {
	m := NewMeter()
	m.AddTotal(100)
	m.WorkerStarted()
	m.WorkerStarted()

	// Ticks from many goroutines: emissions must be serialised (the
	// unguarded counters below would race otherwise; go test -race is the
	// enforcement) and Done must end exactly at the tick count.
	seen := 0
	maxDone := 0
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				m.Tick(func(s Snapshot) {
					seen++
					if s.Done > maxDone {
						maxDone = s.Done
					}
					if s.Total != 100 || s.Workers != 2 {
						t.Errorf("snapshot = %+v", s)
					}
					if s.Rate < 0 || s.ETA < 0 {
						t.Errorf("negative rate/eta: %+v", s)
					}
				})
			}
		}()
	}
	wg.Wait()
	if seen != 100 || maxDone != 100 {
		t.Fatalf("saw %d emissions, max done %d; want 100/100", seen, maxDone)
	}
	m.WorkerDone()
	m.WorkerDone()
	m.Tick(func(s Snapshot) {
		if s.Workers != 0 {
			t.Errorf("workers = %d after all left", s.Workers)
		}
	})
}

func TestMeterNilEmit(t *testing.T) {
	m := NewMeter()
	m.Tick(nil) // must not panic
}

func TestPoolInUse(t *testing.T) {
	p := NewPool(3)
	if p.InUse() != 0 {
		t.Fatalf("fresh pool in-use = %d", p.InUse())
	}
	p.Acquire()
	p.Acquire()
	if p.InUse() != 2 {
		t.Errorf("in-use = %d after two acquires", p.InUse())
	}
	p.Release()
	if p.InUse() != 1 {
		t.Errorf("in-use = %d after release", p.InUse())
	}
}

// TestPoolDrain pins the graceful-shutdown contract: Drain waits for
// every held slot to be released, then leaves the pool starved so no new
// work can be admitted.
func TestPoolDrain(t *testing.T) {
	p := NewPool(3)
	p.Acquire()
	p.Acquire()
	drained := make(chan error, 1)
	go func() { drained <- p.Drain(context.Background()) }()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v while two workers still held slots", err)
	case <-time.After(10 * time.Millisecond):
	}
	p.Release()
	p.Release() // last in-flight worker finishes
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v", err)
	}
	if p.TryAcquire() {
		t.Fatal("drained pool granted a slot")
	}
	if p.InUse() != p.Cap() {
		t.Fatalf("drained pool in-use = %d, want cap %d", p.InUse(), p.Cap())
	}
}

// TestPoolDrainTimeout pins the bounded-shutdown path: an expired context
// aborts the drain and returns the claimed slots, so the pool stays
// usable (the service escalates to a hard stop instead of deadlocking).
func TestPoolDrainTimeout(t *testing.T) {
	p := NewPool(2)
	p.Acquire() // a stuck worker never releases
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	if p.InUse() != 1 {
		t.Fatalf("in-use = %d after aborted drain, want the stuck worker's 1", p.InUse())
	}
	p.Release()
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after release = %v", err)
	}
}

// TestMeterTotalLagClamp pins the late-registration window: in a
// multi-workload campaign a workload's first ticks can land before a
// sibling's AddTotal, so done temporarily exceeds total. The snapshot must
// clamp the remaining-work estimate — ETA zero, never negative.
func TestMeterTotalLagClamp(t *testing.T) {
	m := NewMeter()
	m.AddTotal(1)
	for i := 0; i < 3; i++ { // ticks 2 and 3 overshoot the registered total
		m.Tick(func(s Snapshot) {
			if s.ETA < 0 {
				t.Errorf("tick %d: negative ETA %v", s.Done, s.ETA)
			}
			if s.Done > s.Total && s.ETA != 0 {
				t.Errorf("tick %d: ETA %v while done %d > total %d", s.Done, s.ETA, s.Done, s.Total)
			}
			if s.Rate < 0 {
				t.Errorf("tick %d: negative rate %f", s.Done, s.Rate)
			}
		})
	}
	// Totals catching up must restore a forward ETA.
	m.AddTotal(1000)
	time.Sleep(time.Millisecond) // establish a nonzero elapsed window
	m.Tick(func(s Snapshot) {
		if s.ETA <= 0 {
			t.Errorf("ETA %v after totals caught up, want positive", s.ETA)
		}
	})
}
