// Package sched provides the shared scheduling primitives of the parallel
// campaign engines: a token pool that bounds the number of simultaneously
// live workers across a whole campaign, and a progress meter that
// serialises progress callbacks and tracks aggregate throughput.
//
// Both the injection campaigns (internal/core/gefin) and the beam
// simulator (internal/core/beam) follow the same shape: a top-level Run
// owns one Pool sized to the configured worker budget, every workload
// acquires one token for its primary workbench, and the per-workload
// engine opportunistically grabs extra tokens for clone workbenches while
// any are free. The total number of machines stepping at once therefore
// never exceeds the budget, regardless of how many workloads are in
// flight.
package sched

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Resolve maps a requested worker count to an effective one: values below
// one select runtime.GOMAXPROCS(0).
func Resolve(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Pool is a counting semaphore over campaign worker slots.
type Pool struct {
	tokens chan struct{}
}

// NewPool builds a pool with n slots; n below zero is treated as zero (a
// pool from which TryAcquire never succeeds).
func NewPool(n int) *Pool {
	if n < 0 {
		n = 0
	}
	return &Pool{tokens: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free. It must not be called on a
// zero-capacity pool.
func (p *Pool) Acquire() { p.tokens <- struct{}{} }

// AcquireCtx blocks until a slot is free or ctx is done, reporting
// ctx's error in the latter case (no slot is held on error).
func (p *Pool) AcquireCtx(ctx context.Context) error {
	select {
	case p.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire claims a slot without blocking, reporting success.
func (p *Pool) TryAcquire() bool {
	select {
	case p.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot to the pool.
func (p *Pool) Release() { <-p.tokens }

// Cap returns the pool's slot count.
func (p *Pool) Cap() int { return cap(p.tokens) }

// InUse returns the number of slots currently held — the pool-occupancy
// reading the observability gauges export. It is a racy snapshot by
// nature (tokens move concurrently), which is fine for monitoring.
func (p *Pool) InUse() int { return len(p.tokens) }

// Drain gracefully shuts the pool down: it claims every slot itself, so
// new Acquire/TryAcquire callers are starved while workers already
// holding slots finish and Release them. It returns nil once all slots
// are held (every in-flight worker has finished), or ctx's error if the
// context expires first — in which case the slots claimed so far are
// returned, leaving the pool usable again.
//
// A long-running service calls Drain on SIGTERM: it stops claiming new
// shards, lets in-flight ones complete, and exits cleanly. After a
// successful Drain the pool is permanently empty; it is the caller's
// signal that no worker holds a slot.
func (p *Pool) Drain(ctx context.Context) error {
	held := 0
	for held < cap(p.tokens) {
		select {
		case p.tokens <- struct{}{}:
			held++
		case <-ctx.Done():
			for i := 0; i < held; i++ {
				<-p.tokens
			}
			return ctx.Err()
		}
	}
	return nil
}

// Snapshot is the aggregate state handed to a progress emission.
type Snapshot struct {
	// Done and Total count items (injections, strikes) campaign-wide.
	// Total grows as workloads register their plans.
	Done, Total int
	// Workers is the number of workers live at the instant of the tick.
	Workers int
	// Rate is the aggregate throughput in items per second since the
	// meter was created; divide by Workers for per-worker throughput.
	Rate float64
	// ETA estimates the remaining wall time at the current rate; zero
	// until a rate is established.
	ETA time.Duration
}

// Meter serialises progress accounting for a campaign. Tick holds the
// meter's lock while invoking the emission callback, so emissions never
// run concurrently with one another even when ticks originate from many
// worker goroutines — callback state needs no further locking.
type Meter struct {
	mu      sync.Mutex
	start   time.Time
	done    int
	total   int
	workers int
}

// NewMeter starts a meter; the throughput clock begins now.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// AddTotal registers n more items of expected work.
func (m *Meter) AddTotal(n int) {
	m.mu.Lock()
	m.total += n
	m.mu.Unlock()
}

// WorkerStarted records a worker joining the campaign.
func (m *Meter) WorkerStarted() {
	m.mu.Lock()
	m.workers++
	m.mu.Unlock()
}

// WorkerDone records a worker leaving the campaign.
func (m *Meter) WorkerDone() {
	m.mu.Lock()
	m.workers--
	m.mu.Unlock()
}

// Tick records one completed item and invokes emit (if non-nil) with the
// aggregate snapshot, under the meter's lock.
//
// Workloads register their plans with AddTotal as they start, so early in
// a multi-workload campaign total may lag done (a workload's first ticks
// can land before a sibling's AddTotal). The remaining-work estimate is
// clamped at zero in that window — ETA reads zero rather than negative —
// and recovers as soon as the totals catch up. Rate is measured against
// the meter's creation time, which predates plan registration; it
// therefore slightly underestimates steady-state throughput during
// campaign ramp-up and converges as the campaign runs.
func (m *Meter) Tick(emit func(Snapshot)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done++
	s := Snapshot{Done: m.done, Total: m.total, Workers: m.workers}
	if elapsed := time.Since(m.start).Seconds(); elapsed > 0 {
		s.Rate = float64(m.done) / elapsed
		remaining := m.total - m.done
		if remaining < 0 {
			remaining = 0 // late plan registration: clamp, don't go negative
		}
		if s.Rate > 0 && remaining > 0 {
			s.ETA = time.Duration(float64(remaining) / s.Rate * float64(time.Second))
		}
		if s.ETA < 0 {
			s.ETA = 0 // guard duration overflow at extreme remaining/rate ratios
		}
	}
	if emit != nil {
		emit(s)
	}
}
