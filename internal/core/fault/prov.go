// Propagation provenance: the mechanism taxonomy that explains *why* each
// injected bit produced its outcome class, and the arm/disarm plumbing that
// taints the struck array location so the memory and CPU models can report
// lifecycle events on it (first consuming read, overwrite, clean eviction,
// writeback migration, corrupted commit).
//
// The taxonomy refines the paper's four outcome classes: the dominant
// Masked class decomposes into the masking mechanisms Section IV discusses
// (bits never read, bits overwritten before use, clean corrupted lines
// healed by eviction, corruption read but logically masked), and the error
// classes carry their propagation route. Mechanisms partition the classes
// exactly: summing the masked mechanisms of a traced campaign reproduces
// its Masked count, and likewise for the error classes — the invariant
// cmd/tracestat cross-checks.
package fault

import (
	"fmt"

	"armsefi/internal/mem"
	"armsefi/internal/soc"
)

// Mechanism explains how one injected bit reached its outcome class.
type Mechanism uint8

// The masking/propagation mechanisms. The first five refine ClassMasked;
// the last three carry the error classes.
const (
	// MechNeverRead: the bit landed in dead storage (invalid line/entry,
	// free physical register) and was never consumed.
	MechNeverRead Mechanism = 1 + iota
	// MechOverwritten: live storage, but a write replaced the corrupted
	// value before anything read it.
	MechOverwritten
	// MechEvictedClean: a clean corrupted cache line (or valid TLB entry)
	// was evicted without writeback, discarding the corruption.
	MechEvictedClean
	// MechReadMasked: the corrupted value was consumed, yet the final
	// output still matched golden — logical masking downstream.
	MechReadMasked
	// MechLatentCorrupt: the run finished Masked while the corruption was
	// still sitting unread in the array — latent state the paper's beam
	// runs would carry into the next strike.
	MechLatentCorrupt
	// MechPropagatedSDC: the corruption reached program output.
	MechPropagatedSDC
	// MechPropagatedTrap: the corruption raised a trap/panic (app or
	// system crash via an exception path).
	MechPropagatedTrap
	// MechPropagatedTimeout: the corruption hung the run (crash class via
	// the watchdog).
	MechPropagatedTimeout

	// NumMechanisms is the number of mechanism verdicts.
	NumMechanisms = 8
)

var mechanismNames = map[Mechanism]string{
	MechNeverRead:         "never-read",
	MechOverwritten:       "overwritten",
	MechEvictedClean:      "evicted-clean",
	MechReadMasked:        "read-logically-masked",
	MechLatentCorrupt:     "latent-corrupt",
	MechPropagatedSDC:     "propagated-sdc",
	MechPropagatedTrap:    "propagated-due-trap",
	MechPropagatedTimeout: "propagated-due-timeout",
}

// String returns the mechanism's short name.
func (m Mechanism) String() string {
	if s, ok := mechanismNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mechanism(%d)", uint8(m))
}

// Mechanisms lists the verdicts in presentation order: masking mechanisms
// first, then the propagation routes.
func Mechanisms() []Mechanism {
	return []Mechanism{
		MechNeverRead, MechOverwritten, MechEvictedClean, MechReadMasked,
		MechLatentCorrupt, MechPropagatedSDC, MechPropagatedTrap,
		MechPropagatedTimeout,
	}
}

// MechanismByName resolves a short name.
func MechanismByName(name string) (Mechanism, bool) {
	for m, n := range mechanismNames {
		if n == name {
			return m, true
		}
	}
	return 0, false
}

// MarshalText implements encoding.TextMarshaler.
func (m Mechanism) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *Mechanism) UnmarshalText(b []byte) error {
	v, ok := MechanismByName(string(b))
	if !ok {
		return fmt.Errorf("fault: unknown mechanism %q", b)
	}
	*m = v
	return nil
}

// Masking reports whether the mechanism refines ClassMasked (as opposed to
// carrying one of the propagation routes).
func (m Mechanism) Masking() bool {
	switch m {
	case MechNeverRead, MechOverwritten, MechEvictedClean, MechReadMasked, MechLatentCorrupt:
		return true
	}
	return false
}

// Matches reports whether the mechanism verdict is consistent with the
// outcome class — the partition cmd/tracestat cross-checks against the
// engine's per-class counts. Both crash classes map to the trap/timeout
// mechanisms: the app-vs-system split is the watchdog's heartbeat call,
// orthogonal to the propagation route.
func (m Mechanism) Matches(cls Class) bool {
	switch m {
	case MechPropagatedSDC:
		return cls == ClassSDC
	case MechPropagatedTrap, MechPropagatedTimeout:
		return cls == ClassAppCrash || cls == ClassSysCrash
	case MechNeverRead, MechOverwritten, MechEvictedClean, MechReadMasked, MechLatentCorrupt:
		return cls == ClassMasked
	default:
		return false
	}
}

// regTainter is implemented by both CPU models: taint the register file
// location holding a linearly-addressed bit.
type regTainter interface {
	TaintRegBit(bit uint64, p *mem.Probe)
	ClearRegTaint()
}

// Arm taints the fault's target location in the machine's arrays so that
// subsequent accesses report lifecycle events to the probe. Call it at the
// injection instant, immediately before Apply (liveness is resolved on the
// pre-flip state). It reports false for targets without taint support (the
// ablation-only tag arrays), leaving the probe disarmed.
func Arm(m *soc.Machine, f Fault, p *mem.Probe) bool {
	switch f.Comp {
	case CompRegFile:
		rt, ok := m.Core().(regTainter)
		if !ok {
			return false
		}
		rt.TaintRegBit(f.Bit, p)
	case CompL1I:
		m.Mem.L1I.TaintDataBit(f.Bit, p)
	case CompL1D:
		m.Mem.L1D.TaintDataBit(f.Bit, p)
	case CompL2:
		m.Mem.L2.TaintDataBit(f.Bit, p)
	case CompITLB:
		m.Mem.ITLB.TaintBit(f.Bit, p)
	case CompDTLB:
		m.Mem.DTLB.TaintBit(f.Bit, p)
	default:
		return false
	}
	return true
}

// Disarm removes any taint the machine still tracks, in every array the
// corruption could have migrated to. Call it once the verdict is taken,
// before the harness restores state for the next experiment — restores are
// not lifecycle events.
func Disarm(m *soc.Machine) {
	if rt, ok := m.Core().(regTainter); ok {
		rt.ClearRegTaint()
	}
	m.Mem.L1I.ClearTaint()
	m.Mem.L1D.ClearTaint()
	m.Mem.L2.ClearTaint()
	m.Mem.ITLB.ClearTaint()
	m.Mem.DTLB.ClearTaint()
	m.DRAM.ClearTaint()
}

// MechanismOf takes the verdict for one injection: the outcome class plus
// the probe's observed lifecycle. The mapping partitions the outcome
// classes exactly (Mechanism.Matches holds by construction).
func MechanismOf(cls Class, res soc.Result, p *mem.Probe) Mechanism {
	switch cls {
	case ClassSDC:
		return MechPropagatedSDC
	case ClassAppCrash, ClassSysCrash:
		if res.Outcome == soc.OutcomeTimeout {
			return MechPropagatedTimeout
		}
		return MechPropagatedTrap
	}
	// Masked: order matters. A consuming read dominates (the value was
	// used and logically masked downstream) — checked first because e.g. a
	// valid-bit flip can make a dead TLB entry consumable, so Consumed()
	// can hold even when LiveAtFlip() does not.
	switch {
	case p.Consumed():
		return MechReadMasked
	case !p.LiveAtFlip():
		return MechNeverRead
	case p.Alive():
		return MechLatentCorrupt
	case p.ClearedBy() == mem.ProbeCleanEvict:
		return MechEvictedClean
	default:
		return MechOverwritten
	}
}
