package fault

import (
	"testing"

	"armsefi/internal/mem"
	"armsefi/internal/soc"
)

func TestMechanismNames(t *testing.T) {
	mechs := Mechanisms()
	if len(mechs) != NumMechanisms {
		t.Fatalf("Mechanisms() lists %d verdicts, NumMechanisms is %d", len(mechs), NumMechanisms)
	}
	for _, m := range mechs {
		back, ok := MechanismByName(m.String())
		if !ok || back != m {
			t.Errorf("MechanismByName(%q) = %v, %v", m.String(), back, ok)
		}
		text, err := m.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var mt Mechanism
		if err := mt.UnmarshalText(text); err != nil || mt != m {
			t.Errorf("text round-trip %v: got %v, err %v", m, mt, err)
		}
	}
	if _, ok := MechanismByName("nope"); ok {
		t.Error("unknown mechanism name resolved")
	}
	var mt Mechanism
	if err := mt.UnmarshalText([]byte("nope")); err == nil {
		t.Error("unknown mechanism name unmarshalled")
	}
}

// TestMechanismMatchesPartition pins the partition property behind the
// tracestat cross-check: every mechanism is consistent with exactly the
// outcome classes it refines, and every class is covered.
func TestMechanismMatchesPartition(t *testing.T) {
	want := map[Mechanism][]Class{
		MechNeverRead:         {ClassMasked},
		MechOverwritten:       {ClassMasked},
		MechEvictedClean:      {ClassMasked},
		MechReadMasked:        {ClassMasked},
		MechLatentCorrupt:     {ClassMasked},
		MechPropagatedSDC:     {ClassSDC},
		MechPropagatedTrap:    {ClassAppCrash, ClassSysCrash},
		MechPropagatedTimeout: {ClassAppCrash, ClassSysCrash},
	}
	covered := make(map[Class]bool)
	for _, m := range Mechanisms() {
		allowed := make(map[Class]bool)
		for _, cls := range want[m] {
			allowed[cls] = true
			covered[cls] = true
		}
		if m.Masking() != allowed[ClassMasked] {
			t.Errorf("%v: Masking() = %v, refines Masked = %v", m, m.Masking(), allowed[ClassMasked])
		}
		for _, cls := range Classes() {
			if got := m.Matches(cls); got != allowed[cls] {
				t.Errorf("%v.Matches(%v) = %v, want %v", m, cls, got, allowed[cls])
			}
		}
	}
	for _, cls := range Classes() {
		if !covered[cls] {
			t.Errorf("class %v is not carried by any mechanism", cls)
		}
	}
}

// probeWith builds a probe in a given lifecycle state for the verdict
// table below.
func probeWith(live bool, notes func(p *mem.Probe)) *mem.Probe {
	p := &mem.Probe{}
	p.Reset(nil, nil)
	p.Arm(live)
	if notes != nil {
		notes(p)
	}
	return p
}

// TestMechanismOfTable pins the verdict mapping, including the
// consumed-first ordering on the masked branch: a consuming read
// dominates even when the cell was dead at flip time (a valid-bit flip
// can make a dead TLB entry consumable).
func TestMechanismOfTable(t *testing.T) {
	off := soc.Result{Outcome: soc.OutcomePowerOff}
	hang := soc.Result{Outcome: soc.OutcomeTimeout}
	tests := []struct {
		name  string
		cls   Class
		res   soc.Result
		probe *mem.Probe
		want  Mechanism
	}{
		{"sdc", ClassSDC, off, probeWith(true, nil), MechPropagatedSDC},
		{"app crash via trap", ClassAppCrash, off, probeWith(true, nil), MechPropagatedTrap},
		{"app crash via hang", ClassAppCrash, hang, probeWith(true, nil), MechPropagatedTimeout},
		{"sys crash via trap", ClassSysCrash, soc.Result{Outcome: soc.OutcomeFatal}, probeWith(true, nil), MechPropagatedTrap},
		{"sys crash via hang", ClassSysCrash, hang, probeWith(true, nil), MechPropagatedTimeout},
		{"dead cell, never consumed", ClassMasked, off, probeWith(false, nil), MechNeverRead},
		{"read then masked downstream", ClassMasked, off,
			probeWith(true, func(p *mem.Probe) { p.NoteRead("l1d") }), MechReadMasked},
		{"dead cell made consumable, still read", ClassMasked, off,
			probeWith(false, func(p *mem.Probe) { p.NoteRead("dtlb") }), MechReadMasked},
		{"latent corruption at run end", ClassMasked, off, probeWith(true, nil), MechLatentCorrupt},
		{"latent after writeback migration", ClassMasked, off,
			probeWith(true, func(p *mem.Probe) { p.NoteWriteback("l1d") }), MechLatentCorrupt},
		{"clean eviction healed it", ClassMasked, off,
			probeWith(true, func(p *mem.Probe) { p.NoteCleanEvict("l1d") }), MechEvictedClean},
		{"overwritten before use", ClassMasked, off,
			probeWith(true, func(p *mem.Probe) { p.NoteOverwrite("l1d") }), MechOverwritten},
		{"read wins over later overwrite", ClassMasked, off,
			probeWith(true, func(p *mem.Probe) { p.NoteRead("l1d"); p.NoteOverwrite("l1d") }), MechReadMasked},
	}
	for _, tt := range tests {
		got := MechanismOf(tt.cls, tt.res, tt.probe)
		if got != tt.want {
			t.Errorf("%s: MechanismOf = %v, want %v", tt.name, got, tt.want)
		}
		if !got.Matches(tt.cls) {
			t.Errorf("%s: verdict %v contradicts class %v", tt.name, got, tt.cls)
		}
	}
}

// TestArmTargets: every primary component accepts the taint; the
// ablation-only tag arrays do not (their injections carry no verdict).
// Disarm must leave the machine reusable.
func TestArmTargets(t *testing.T) {
	m := testMachine(t)
	for _, comp := range Components() {
		p := &mem.Probe{}
		p.Reset(nil, nil)
		f := Fault{Comp: comp, Bit: 12345 % SizeBits(m, comp)}
		if !Arm(m, f, p) {
			t.Errorf("%v: Arm refused a primary component", comp)
		}
		if !p.Armed() {
			t.Errorf("%v: probe not armed after Arm", comp)
		}
		Disarm(m)
	}
	for _, comp := range []Component{CompL1DTag, CompL2Tag} {
		p := &mem.Probe{}
		p.Reset(nil, nil)
		if Arm(m, Fault{Comp: comp, Bit: 1}, p) {
			t.Errorf("%v: Arm accepted a tag array", comp)
		}
		if p.Armed() {
			t.Errorf("%v: probe armed for an unsupported target", comp)
		}
	}
}
