package fault

import (
	"testing"

	"armsefi/internal/kernel"
	"armsefi/internal/soc"
)

func testMachine(t *testing.T) *soc.Machine {
	t.Helper()
	m, err := soc.NewMachine(soc.PresetZynq(), soc.ModelDetailed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestComponentNames(t *testing.T) {
	for _, c := range Components() {
		if _, ok := PaperNames[c]; !ok {
			t.Errorf("%v has no paper name", c)
		}
		back, ok := ComponentByName(c.String())
		if !ok || back != c {
			t.Errorf("ComponentByName(%q) = %v, %v", c.String(), back, ok)
		}
	}
	if _, ok := ComponentByName("nope"); ok {
		t.Error("unknown name resolved")
	}
}

func TestSizeBitsMatchPaperGeometry(t *testing.T) {
	m := testMachine(t)
	if got := SizeBits(m, CompL1D); got != 32*1024*8 {
		t.Errorf("L1D bits = %d", got)
	}
	if got := SizeBits(m, CompL2); got != 512*1024*8 {
		t.Errorf("L2 bits = %d", got)
	}
	if got := SizeBits(m, CompRegFile); got != 56*32 {
		t.Errorf("regfile bits = %d", got)
	}
	if got := SizeBits(m, CompITLB); got == 0 {
		t.Error("ITLB bits = 0")
	}
	// The six components must cover most of the modeled cells, as the
	// paper states (>94% including the register file).
	total := TotalBits(m)
	if total < 4_500_000 {
		t.Errorf("total injectable bits = %d, implausibly small", total)
	}
}

func TestApplyIsInvolution(t *testing.T) {
	m := testMachine(t)
	for _, comp := range append(Components(), CompL1DTag, CompL2Tag) {
		f := Fault{Comp: comp, Bit: 12345 % SizeBits(m, comp)}
		Apply(m, f)
		Apply(m, f)
	}
	// No crash and (for the caches) no net state change: verified
	// indirectly by a clean boot afterwards.
	if err := m.Boot(50_000_000); err != nil {
		t.Fatalf("boot after paired flips: %v", err)
	}
}

func TestClassifyTable(t *testing.T) {
	golden := []byte("ok")
	const period = 1000
	tests := []struct {
		name string
		res  soc.Result
		want Class
	}{
		{"clean exit matching output", soc.Result{Outcome: soc.OutcomePowerOff, ExitCode: 0, Output: []byte("ok")}, ClassMasked},
		{"clean exit wrong output", soc.Result{Outcome: soc.OutcomePowerOff, ExitCode: 0, Output: []byte("no")}, ClassSDC},
		{"clean exit truncated output", soc.Result{Outcome: soc.OutcomePowerOff, ExitCode: 0, Output: []byte("o")}, ClassSDC},
		{"app killed by signal", soc.Result{Outcome: soc.OutcomePowerOff, ExitCode: kernel.ExitSignalBase + 4}, ClassAppCrash},
		{"nonzero exit", soc.Result{Outcome: soc.OutcomePowerOff, ExitCode: 7}, ClassAppCrash},
		{"kernel panic", soc.Result{Outcome: soc.OutcomePowerOff, ExitCode: kernel.PanicCode}, ClassSysCrash},
		{"cpu fatal", soc.Result{Outcome: soc.OutcomeFatal}, ClassSysCrash},
		{"hang with fresh heartbeat", soc.Result{Outcome: soc.OutcomeTimeout, Cycles: 100_000, LastBeatCycle: 99_000}, ClassAppCrash},
		{"hang with stale heartbeat", soc.Result{Outcome: soc.OutcomeTimeout, Cycles: 100_000, LastBeatCycle: 10_000}, ClassSysCrash},
	}
	for _, tt := range tests {
		if got := Classify(tt.res, golden, period); got != tt.want {
			t.Errorf("%s: Classify = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestClassesAndStrings(t *testing.T) {
	if len(Classes()) != NumClasses {
		t.Error("Classes() length mismatch")
	}
	if len(ErrorClasses()) != NumClasses-1 {
		t.Error("ErrorClasses() must exclude Masked")
	}
	for _, c := range Classes() {
		if c.String() == "" {
			t.Errorf("class %d has no name", c)
		}
	}
	f := Fault{Comp: CompL1D, Bit: 5, Cycle: 10}
	if f.String() != "l1d bit 5 @ cycle 10" {
		t.Errorf("Fault.String = %q", f.String())
	}
}
