// Package fault defines the transient-fault model shared by the GeFIN-like
// injector and the beam simulator: the six injectable hardware components
// of the paper's Figure 4, single-bit-flip faults, and the outcome
// classification (Masked / SDC / Application Crash / System Crash) used by
// both methodologies.
package fault

import (
	"bytes"
	"fmt"

	"armsefi/internal/mem"
	"armsefi/internal/soc"
)

// Component is one injectable hardware structure.
type Component uint8

// The six fault-injection targets of the paper, covering >94%% of the
// modeled memory cells.
const (
	CompRegFile Component = 1 + iota // physical register file
	CompL1I                          // L1 instruction cache data array
	CompL1D                          // L1 data cache data array
	CompL2                           // unified L2 cache data array
	CompITLB                         // instruction TLB
	CompDTLB                         // data TLB

	// NumComponents is the number of primary injectable components.
	NumComponents = 6

	// Tag-array targets, used only by the ablation benches: the paper's
	// campaigns target data arrays, and notes that (virtual) tag bits are
	// nearly always benign.
	CompL1DTag Component = 10 + iota
	CompL1ITag
	CompL2Tag
)

var componentNames = map[Component]string{
	CompRegFile: "regfile",
	CompL1I:     "l1i",
	CompL1D:     "l1d",
	CompL2:      "l2",
	CompITLB:    "itlb",
	CompDTLB:    "dtlb",
	CompL1DTag:  "l1d-tag",
	CompL1ITag:  "l1i-tag",
	CompL2Tag:   "l2-tag",
}

// PaperNames maps components to the labels used in the paper's Table IV.
var PaperNames = map[Component]string{
	CompRegFile: "Register File",
	CompL1I:     "I$ Cache",
	CompL1D:     "D$ Cache",
	CompL2:      "L2 Cache",
	CompITLB:    "ITLB",
	CompDTLB:    "DTLB",
}

// String returns the short component name.
func (c Component) String() string {
	if s, ok := componentNames[c]; ok {
		return s
	}
	return fmt.Sprintf("component(%d)", uint8(c))
}

// Components lists the injection targets in the paper's presentation order.
func Components() []Component {
	return []Component{CompRegFile, CompL1I, CompL1D, CompL2, CompITLB, CompDTLB}
}

// ComponentByName resolves a short name.
func ComponentByName(name string) (Component, bool) {
	for c, n := range componentNames {
		if n == name {
			return c, true
		}
	}
	return 0, false
}

// SizeBits returns the number of modeled bits of a component on the given
// machine — the Size(bits) term of FIT_component = FIT_raw * Size * AVF.
func SizeBits(m *soc.Machine, c Component) uint64 {
	switch c {
	case CompRegFile:
		return m.Core().RegFileBits()
	case CompL1I:
		return m.Mem.L1I.SizeBits()
	case CompL1D:
		return m.Mem.L1D.SizeBits()
	case CompL2:
		return m.Mem.L2.SizeBits()
	case CompITLB:
		return m.Mem.ITLB.SizeBits()
	case CompDTLB:
		return m.Mem.DTLB.SizeBits()
	case CompL1DTag:
		return m.Mem.L1D.TotalTagBits()
	case CompL1ITag:
		return m.Mem.L1I.TotalTagBits()
	case CompL2Tag:
		return m.Mem.L2.TotalTagBits()
	default:
		return 0
	}
}

// TotalBits sums the injectable bits of all components.
func TotalBits(m *soc.Machine) uint64 {
	var total uint64
	for _, c := range Components() {
		total += SizeBits(m, c)
	}
	return total
}

// Fault is one single-event upset: a bit of a component flipped at a given
// cycle of the run.
type Fault struct {
	Comp  Component
	Bit   uint64 // linear bit index within the component
	Cycle uint64 // cycles after the application entry point
}

// String formats the fault for logs.
func (f Fault) String() string {
	return fmt.Sprintf("%s bit %d @ cycle %d", f.Comp, f.Bit, f.Cycle)
}

// Apply flips the fault's bit in the machine's hardware state.
func Apply(m *soc.Machine, f Fault) {
	switch f.Comp {
	case CompRegFile:
		m.Core().FlipRegFileBit(f.Bit)
	case CompL1I:
		m.Mem.L1I.FlipDataBit(f.Bit)
	case CompL1D:
		m.Mem.L1D.FlipDataBit(f.Bit)
	case CompL2:
		m.Mem.L2.FlipDataBit(f.Bit)
	case CompITLB:
		m.Mem.ITLB.FlipBit(f.Bit)
	case CompDTLB:
		m.Mem.DTLB.FlipBit(f.Bit)
	case CompL1DTag:
		m.Mem.L1D.FlipTagBit(f.Bit)
	case CompL1ITag:
		m.Mem.L1I.FlipTagBit(f.Bit)
	case CompL2Tag:
		m.Mem.L2.FlipTagBit(f.Bit)
	}
}

// Class is the outcome classification shared by fault injection and beam
// experiments.
type Class uint8

// Outcome classes.
const (
	ClassMasked Class = 1 + iota
	ClassSDC
	ClassAppCrash
	ClassSysCrash

	// NumClasses is the number of outcome classes.
	NumClasses = 4
)

var classNames = map[Class]string{
	ClassMasked:   "Masked",
	ClassSDC:      "SDC",
	ClassAppCrash: "AppCrash",
	ClassSysCrash: "SysCrash",
}

// String returns the class name as used in the paper's figures.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Classes lists the outcome classes in presentation order.
func Classes() []Class {
	return []Class{ClassMasked, ClassSDC, ClassAppCrash, ClassSysCrash}
}

// ErrorClasses lists only the non-masked classes (the AVF components).
func ErrorClasses() []Class {
	return []Class{ClassSDC, ClassAppCrash, ClassSysCrash}
}

// Classify maps a machine run result to an outcome class, mirroring the
// beam-side host watchdog of Section IV-B:
//
//   - clean exit(0) with golden output  -> Masked
//   - clean exit(0) with other output   -> SDC
//   - kernel killed the app / app error -> Application Crash
//   - kernel panic or unrecoverable CPU -> System Crash
//   - hang with a fresh kernel heartbeat-> Application Crash (app restartable)
//   - hang with a stale heartbeat       -> System Crash (board unreachable)
func Classify(res soc.Result, golden []byte, timerPeriod uint32) Class {
	switch res.Outcome {
	case soc.OutcomePowerOff:
		if res.KernelPanic() {
			return ClassSysCrash
		}
		if res.ExitCode != 0 {
			return ClassAppCrash
		}
		if bytes.Equal(res.Output, golden) {
			return ClassMasked
		}
		return ClassSDC
	case soc.OutcomeFatal:
		return ClassSysCrash
	default: // OutcomeTimeout: consult the heartbeat, as the host PC does.
		staleAfter := uint64(timerPeriod) * 4
		if res.LastBeatCycle+staleAfter >= res.Cycles {
			return ClassAppCrash
		}
		return ClassSysCrash
	}
}

// MarshalText implements encoding.TextMarshaler so components key JSON
// maps readably in exported campaign results.
func (c Component) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler. The numeric
// fallback form String() prints for unnamed values ("component(N)") is
// accepted too, so every value round-trips.
func (c *Component) UnmarshalText(b []byte) error {
	if v, ok := ComponentByName(string(b)); ok {
		*c = v
		return nil
	}
	var n uint8
	if _, err := fmt.Sscanf(string(b), "component(%d)", &n); err == nil {
		*c = Component(n)
		return nil
	}
	return fmt.Errorf("fault: unknown component %q", b)
}

// MarshalText implements encoding.TextMarshaler for outcome classes.
func (c Class) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler. The numeric
// fallback form String() prints for unnamed values ("class(N)") is
// accepted too, so every value round-trips.
func (c *Class) UnmarshalText(b []byte) error {
	for _, cls := range Classes() {
		if cls.String() == string(b) {
			*c = cls
			return nil
		}
	}
	var n uint8
	if _, err := fmt.Sscanf(string(b), "class(%d)", &n); err == nil {
		*c = Class(n)
		return nil
	}
	return fmt.Errorf("fault: unknown class %q", b)
}

// Context captures what the fault actually struck, resolved at injection
// time — the microarchitectural observability Section IV-C credits fault
// injection with (kernel vs. user state, used vs. idle entries).
type Context struct {
	// LineValid reports whether the struck cache line / TLB entry held
	// live content at injection time (false for the register file, which
	// is always live storage).
	LineValid bool
	// LineDirty reports write-back state (caches only).
	LineDirty bool
	// Owner classifies the struck line's physical address (caches only;
	// OwnerUnknown for other components).
	Owner soc.Owner
}

// KernelOwned reports whether the fault landed in live kernel state.
func (c Context) KernelOwned() bool { return c.LineValid && c.Owner.KernelOwned() }

// ContextOf resolves a fault's context against the machine's current
// state. Call it at the injection instant.
func ContextOf(m *soc.Machine, f Fault) Context {
	cacheOf := func() *mem.Cache {
		switch f.Comp {
		case CompL1I, CompL1ITag:
			return m.Mem.L1I
		case CompL1D, CompL1DTag:
			return m.Mem.L1D
		case CompL2, CompL2Tag:
			return m.Mem.L2
		default:
			return nil
		}
	}
	if c := cacheOf(); c != nil {
		addr, valid, dirty := c.LineInfo(f.Bit)
		ctx := Context{LineValid: valid, LineDirty: dirty, Owner: soc.OwnerUnknown}
		if valid {
			ctx.Owner = soc.OwnerOf(addr)
		}
		return ctx
	}
	if f.Comp == CompRegFile {
		return Context{LineValid: true, Owner: soc.OwnerUnknown}
	}
	// TLBs: entry validity via the entry index.
	tlb := m.Mem.ITLB
	if f.Comp == CompDTLB {
		tlb = m.Mem.DTLB
	}
	entry := int(f.Bit / mem.TLBEntryBits)
	valid := entry < tlb.Entries() && tlb.EntryValid(entry)
	return Context{LineValid: valid, Owner: soc.OwnerUnknown}
}
