// Shard execution API of the campaign service: a beam campaign shards at
// the component-chain boundary. Each chain is a self-contained live-board
// session — its own RNG stream seeded from (campaign seed, workload,
// component), starting from a fresh steady state — so chains can execute
// on different machines without changing any chain's physics, and the
// merged WorkloadResult is bit-identical to an uninterrupted in-process
// run at any node count or interruption pattern.

package beam

import (
	"fmt"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/harness"
	"armsefi/internal/obs"
)

// ShardsPerWorkload is the number of shards a beam workload decomposes
// into: one strike chain per injectable component, in fault.Components()
// order.
const ShardsPerWorkload = fault.NumComponents

// ChainOutcome is the wire record of one executed component chain. It
// round-trips through JSON losslessly (Go prints float64s with exact
// round-trip precision), so chain results can cross node boundaries
// without perturbing the bit-identical merge.
type ChainOutcome struct {
	Events             map[fault.Class]float64 `json:"events"`
	Masked             int                     `json:"masked"`
	Sims               int                     `json:"sims"`
	TotalMismatches    uint64                  `json:"total_mismatches,omitempty"`
	WeightedMismatches float64                 `json:"weighted_mismatches,omitempty"`
	// Counts tallies the chain's strikes by final class (raw, unweighted);
	// Planned and Stopped report the sequential stopping rule's verdict
	// when the campaign set a target margin (Sims is then the truncated
	// strike count).
	Counts  map[fault.Class]int `json:"counts,omitempty"`
	Planned int                 `json:"planned,omitempty"`
	Stopped bool                `json:"stopped,omitempty"`
}

// ShardMeta carries the deterministic per-workload constants the
// assembler needs; every shard of a workload reports the same values.
type ShardMeta struct {
	GoldenCycles uint64  `json:"golden_cycles"`
	ExecSeconds  float64 `json:"exec_seconds"`
	Executions   float64 `json:"executions"`
	Fluence      float64 `json:"fluence"`
	CacheSlack   float64 `json:"cache_slack"`
	PerComp      int     `json:"per_comp"`
}

// ShardRunner executes component-chain shards for one campaign Config,
// caching one prepared workbench per workload. Single-goroutine; run
// several runners for parallelism.
type ShardRunner struct {
	cfg Config
	// Worker tags trace records emitted during chain runs.
	Worker int
	// Ctx is stamped onto every strike record the chain emits
	// (campaign/shard/node/span); the campaign-service worker sets it per
	// assignment. The zero context stamps nothing.
	Ctx obs.TraceContext
	// Conv, when set, receives the chains' streaming convergence
	// estimates (the campaign-service worker shares one registry across
	// its runners and ships the snapshots in telemetry batches).
	Conv    *obs.ConvRegistry
	benches map[string]*shardBench
}

type shardBench struct {
	wb      *harness.Workbench
	res     *WorkloadResult // skeleton: deterministic per-workload constants
	perComp int
}

// NewShardRunner builds a runner for the campaign Config, normalised
// exactly like Run normalises it.
func NewShardRunner(cfg Config) *ShardRunner {
	return &ShardRunner{cfg: cfg.withDefaults(), benches: make(map[string]*shardBench)}
}

func (r *ShardRunner) bench(spec bench.Spec) (*shardBench, error) {
	if b, ok := r.benches[spec.Name]; ok {
		return b, nil
	}
	wb, res, perComp, err := prepareWorkload(r.cfg, spec)
	if err != nil {
		return nil, err
	}
	b := &shardBench{wb: wb, res: res, perComp: perComp}
	r.benches[spec.Name] = b
	return b, nil
}

// RunShard executes the workload's strike chain for component index comp
// (into fault.Components() order) and returns its outcome plus the
// workload meta. The first shard of a workload pays the workbench setup;
// later shards reuse it.
func (r *ShardRunner) RunShard(spec bench.Spec, comp int) (*ChainOutcome, ShardMeta, error) {
	b, err := r.bench(spec)
	if err != nil {
		return nil, ShardMeta{}, err
	}
	comps := fault.Components()
	if comp < 0 || comp >= len(comps) {
		return nil, ShardMeta{}, fmt.Errorf("beam: chain shard %d out of component range [0,%d)", comp, len(comps))
	}
	pr := runChain(r.cfg, b.wb, spec, comps[comp], b.perComp, b.res.Fluence, r.Conv, nil, 0, r.Worker, r.Ctx)
	out := &ChainOutcome{
		Events:             pr.events,
		Masked:             pr.masked,
		Sims:               pr.sims,
		TotalMismatches:    pr.totalMismatches,
		WeightedMismatches: pr.weightedMismatches,
		Counts:             make(map[fault.Class]int, fault.NumClasses),
		Planned:            pr.planned,
		Stopped:            pr.stopped,
	}
	for _, cls := range fault.Classes() {
		if n := pr.counts[int(cls)-1]; n > 0 {
			out.Counts[cls] = n
		}
	}
	return out, r.meta(b), nil
}

func (r *ShardRunner) meta(b *shardBench) ShardMeta {
	return ShardMeta{
		GoldenCycles: b.res.GoldenCycles,
		ExecSeconds:  b.res.ExecSeconds,
		Executions:   b.res.Executions,
		Fluence:      b.res.Fluence,
		CacheSlack:   b.res.CacheSlack,
		PerComp:      b.perComp,
	}
}

// Release drops the cached workbench of a finished workload (or all of
// them for the empty string).
func (r *ShardRunner) Release(workload string) {
	if workload == "" {
		r.benches = make(map[string]*shardBench)
		return
	}
	delete(r.benches, workload)
}

// AssembleWorkload reassembles a workload result from its component-chain
// outcomes, which must cover all components in fault.Components() order.
// It runs the exact merge and platform overlay of the in-process engine,
// so the result is bit-identical to an uninterrupted run.
func AssembleWorkload(cfg Config, workload string, meta ShardMeta, chains []*ChainOutcome) (*WorkloadResult, error) {
	cfg = cfg.withDefaults()
	if len(chains) != ShardsPerWorkload {
		return nil, fmt.Errorf("beam: assemble %s: %d chains, want %d", workload, len(chains), ShardsPerWorkload)
	}
	res := &WorkloadResult{
		Workload:      workload,
		Scale:         cfg.Scale,
		GoldenCycles:  meta.GoldenCycles,
		ExecSeconds:   meta.ExecSeconds,
		Executions:    meta.Executions,
		Fluence:       meta.Fluence,
		CacheSlack:    meta.CacheSlack,
		Events:        make(map[fault.Class]float64, fault.NumClasses),
		ModeledEvents: make(map[fault.Class]float64, fault.NumClasses),
		StrikeCounts:  make(map[fault.Class]int, fault.NumClasses),
	}
	partial := make([]chainResult, len(chains))
	for i, c := range chains {
		if c == nil {
			return nil, fmt.Errorf("beam: assemble %s: missing chain %d", workload, i)
		}
		partial[i] = chainResult{
			events:             c.Events,
			masked:             c.Masked,
			sims:               c.Sims,
			totalMismatches:    c.TotalMismatches,
			weightedMismatches: c.WeightedMismatches,
			planned:            c.Planned,
			stopped:            c.Stopped,
		}
		for _, cls := range fault.Classes() {
			partial[i].counts[int(cls)-1] = c.Counts[cls]
		}
		if partial[i].events == nil {
			partial[i].events = make(map[fault.Class]float64)
		}
	}
	finishWorkload(cfg, res, partial)
	return res, nil
}
