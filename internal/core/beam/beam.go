// Package beam implements a Monte-Carlo neutron-beam experiment over the
// simulated platform, standing in for the LANSCE campaigns of the paper.
//
// Strikes into the six modeled SRAM structures are *really injected* into a
// live, continuously running machine — so they share their physics with
// the fault injector. What distinguishes the beam methodology is modeled
// faithfully:
//
//   - the whole chip is irradiated continuously: the kernel's cache
//     residency is live (no per-run cache reset), and corruption persists
//     across executions until a crash forces a reboot;
//   - structures the simulator does not model (the FPGA-ARM interface,
//     logic latches, the disabled second core, and the resident on-line
//     SDC-check routines of the beam harness) appear as a platform overlay
//     with their own cross-sections, producing the beam-only crash surplus
//     of Figures 7, 8, and 10;
//   - results are event counts per fluence, converted to FIT by scaling to
//     the JEDEC sea-level flux, exactly as in Section IV-B.
package beam

import (
	"fmt"
	"math"
	"math/rand"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/harness"
	"armsefi/internal/soc"
)

// Physical constants of the methodology.
const (
	// FluxNYC is the JEDEC reference sea-level neutron flux (n/cm^2/h).
	FluxNYC = 13.0
	// FITHours converts a cross-section x flux into failures per 1e9 hours.
	FITHours = 1e9
	// LANSCEFlux is the accelerated beam flux of the paper (n/cm^2/s).
	LANSCEFlux = 3.5e5
	// DefaultClockHz is the Cortex-A9 clock of the evaluated board.
	DefaultClockHz = 667e6
	// DefaultBitXS is the per-bit cross-section implied by the paper's
	// measured 2.76e-5 FIT/bit: sigma = FIT / (FluxNYC * 1e9 h).
	DefaultBitXS = 2.76e-5 / (FluxNYC * FITHours)
)

// PlatformXS gathers the cross-sections (cm^2) of board structures outside
// the microarchitectural model.
type PlatformXS struct {
	// SysCrash covers the FPGA-ARM interrupt interface, logic latches, and
	// the disabled second core: upsets make the board unreachable.
	SysCrash float64
	// AppCrash covers intra-chip communication upsets that hang the
	// application while Linux survives.
	AppCrash float64
	// Checker is the exposure of the beam harness's resident on-line
	// SDC-check routines; its effective cross-section scales with the
	// cache space the workload leaves unused (Section VI's explanation of
	// the StringSearch/MatMul/Qsort AppCrash outliers).
	Checker float64
}

// DefaultPlatformXS returns cross-sections calibrated so the beam/injection
// gaps land in the ranges the paper reports (System Crash surplus of one to
// two orders of magnitude; Application Crash surplus growing with the cache
// space left to the resident checker routines).
func DefaultPlatformXS() PlatformXS {
	return PlatformXS{
		SysCrash: 9.0e-11,
		AppCrash: 5.0e-12,
		Checker:  2.3e-11,
	}
}

// Config parameterises one beam campaign.
type Config struct {
	Preset    soc.Config
	Model     soc.ModelKind
	Scale     bench.Scale
	Seed      int64
	Flux      float64 // beam flux, n/cm^2/s
	BeamHours float64 // effective beam time per workload (excludes recovery)
	ClockHz   float64
	BitXS     float64 // cm^2 per modeled SRAM bit
	Platform  PlatformXS
	// StrikesPerComponent stratifies the modeled-strike Monte Carlo: that
	// many strikes are simulated per component and each carries the weight
	// expected_strikes(component)/samples. Zero derives a default from the
	// beam time. Stratification is an unbiased variance reduction — the
	// physical experiment's strikes are bit-weighted, which would drown
	// the small high-AVF structures in L2 samples.
	StrikesPerComponent int
}

func (c Config) withDefaults() Config {
	if c.Preset.Name == "" {
		c.Preset = soc.PresetZynq()
	}
	if c.Model == 0 {
		c.Model = soc.ModelDetailed
	}
	if c.Scale == 0 {
		c.Scale = bench.ScaleTiny
	}
	if c.Flux == 0 {
		c.Flux = LANSCEFlux
	}
	if c.BeamHours == 0 {
		c.BeamHours = 20
	}
	if c.ClockHz == 0 {
		c.ClockHz = DefaultClockHz
	}
	if c.BitXS == 0 {
		c.BitXS = DefaultBitXS
	}
	if c.Platform == (PlatformXS{}) {
		c.Platform = DefaultPlatformXS()
	}
	return c
}

// WorkloadResult is one workload's beam campaign outcome.
type WorkloadResult struct {
	Workload     string
	Scale        bench.Scale
	GoldenCycles uint64
	ExecSeconds  float64
	Executions   float64 // total executions fitting in the beam time
	Fluence      float64 // n/cm^2 accumulated over the beam time
	// Events accumulates observed errors by class (platform overlay
	// included); modeled strikes contribute their stratification weight.
	Events map[fault.Class]float64
	// ModeledEvents accumulates only strikes into modeled arrays.
	ModeledEvents map[fault.Class]float64
	// MaskedStrikes counts simulated strikes with no observable effect.
	MaskedStrikes int
	// SimulatedStrikes counts machine runs with an injected strike.
	SimulatedStrikes int
	// CacheSlack is the fraction of the L2 the workload leaves unused,
	// which scales the resident-checker exposure.
	CacheSlack float64
	// TotalMismatches accumulates the mismatch counts reported by the
	// FIT-raw probe (zero for ordinary workloads).
	TotalMismatches uint64
	// WeightedMismatches is the stratification-weighted mismatch count,
	// the numerator of the FIT-raw estimate.
	WeightedMismatches float64
}

// FIT converts a class's event count into failures in time at the JEDEC
// sea-level flux: FIT = events/fluence * FluxNYC * 1e9.
func (w *WorkloadResult) FIT(c fault.Class) float64 {
	if w.Fluence == 0 {
		return 0
	}
	return w.Events[c] / w.Fluence * FluxNYC * FITHours
}

// TotalFIT sums the FIT of all error classes.
func (w *WorkloadResult) TotalFIT() float64 {
	var t float64
	for _, c := range fault.ErrorClasses() {
		t += w.FIT(c)
	}
	return t
}

// ErrorRatePerExecution reports observed errors per execution; the paper
// keeps this below 1/1000 so that scaling to natural flux is artifact-free.
func (w *WorkloadResult) ErrorRatePerExecution() float64 {
	if w.Executions == 0 {
		return 0
	}
	var n float64
	for _, c := range fault.ErrorClasses() {
		n += w.Events[c]
	}
	return n / w.Executions
}

// Result is a full beam campaign.
type Result struct {
	Config    Config
	Workloads []WorkloadResult
}

// Workload returns a workload's result by name.
func (r *Result) Workload(name string) (*WorkloadResult, bool) {
	for i := range r.Workloads {
		if r.Workloads[i].Workload == name {
			return &r.Workloads[i], true
		}
	}
	return nil, false
}

// Progress receives per-strike progress callbacks.
type Progress func(workload string, strike, totalStrikes int)

// RunWorkload exposes one workload to the simulated beam.
func RunWorkload(cfg Config, spec bench.Spec, progress Progress) (*WorkloadResult, error) {
	cfg = cfg.withDefaults()
	built, err := spec.Build(soc.UserAsmConfig(), cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("beam: %w", err)
	}
	wb, err := harness.New(cfg.Preset, cfg.Model, built)
	if err != nil {
		return nil, fmt.Errorf("beam: %w", err)
	}
	m := wb.Machine

	// Cache occupancy after the cold golden run scales checker residency.
	l2cfg := m.Mem.L2.Config()
	totalLines := int(l2cfg.Sets()) * l2cfg.Ways
	slack := 1 - float64(m.Mem.L2.ValidLines())/float64(totalLines)
	if slack < 0 {
		slack = 0
	}

	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(len(spec.Name))*7919 ^ int64(spec.Name[0])))

	res := &WorkloadResult{
		Workload:      spec.Name,
		Scale:         cfg.Scale,
		GoldenCycles:  wb.Golden.Cycles,
		Events:        make(map[fault.Class]float64, fault.NumClasses),
		ModeledEvents: make(map[fault.Class]float64, fault.NumClasses),
		CacheSlack:    slack,
	}
	res.ExecSeconds = float64(wb.Golden.Cycles) / cfg.ClockHz
	beamSeconds := cfg.BeamHours * 3600
	res.Executions = beamSeconds / res.ExecSeconds
	res.Fluence = cfg.Flux * beamSeconds

	// Stratified Monte Carlo over the modeled arrays: simulate an equal
	// number of strikes per component; each contributes its component's
	// expected physical strike count divided by the sample size. Quiet
	// executions are accounted analytically through the fluence.
	perComp := cfg.StrikesPerComponent
	if perComp <= 0 {
		totalBits := fault.TotalBits(m)
		expect := res.Fluence * float64(totalBits) * cfg.BitXS
		perComp = int(expect/float64(fault.NumComponents)) + 1
		if perComp < 30 {
			perComp = 30
		}
		if perComp > 120 {
			perComp = 120
		}
	}
	totalSims := perComp * fault.NumComponents

	// The board runs the workload in a loop from its warm post-boot state.
	m.RestoreSnapshot(wb.Snap, true)
	m.Run(wb.Watchdog) // reach steady state
	m.RestartApp(wb.Snap)

	sim := 0
	for _, comp := range fault.Components() {
		bits := fault.SizeBits(m, comp)
		weight := res.Fluence * float64(bits) * cfg.BitXS / float64(perComp)
		for s := 0; s < perComp; s++ {
			sim++
			if progress != nil {
				progress(spec.Name, sim, totalSims)
			}
			f := fault.Fault{
				Comp:  comp,
				Bit:   uint64(rng.Int63n(int64(bits))),
				Cycle: uint64(rng.Int63n(int64(wb.Golden.Cycles))),
			}
			runRes := m.RunWithInjection(wb.Watchdog, f.Cycle, func() {
				fault.Apply(m, f)
			})
			class := fault.Classify(runRes, built.Golden, cfg.Preset.TimerPeriod)
			if mm := probeMismatches(spec, runRes.Output); mm > 0 {
				res.TotalMismatches += mm
				// Only strikes into the L1D array count toward the
				// FIT-raw estimate: the probe characterises that array,
				// and the simulated oracle can attribute exactly (the
				// physical experiment relies on the beam spot and timing
				// to do the same).
				if comp == fault.CompL1D {
					res.WeightedMismatches += float64(mm) * weight
				}
			}
			res.SimulatedStrikes++
			if class == fault.ClassMasked {
				res.MaskedStrikes++
				// The corruption may be latent (e.g., a flipped kernel
				// line not yet touched): run one follow-up execution on
				// the live state before declaring it benign.
				m.RestartApp(wb.Snap)
				follow := m.Run(wb.Watchdog)
				fclass := fault.Classify(follow, built.Golden, cfg.Preset.TimerPeriod)
				if fclass != fault.ClassMasked {
					class = fclass
					res.MaskedStrikes--
				}
			}
			if class != fault.ClassMasked {
				res.Events[class] += weight
				res.ModeledEvents[class] += weight
			}
			if class == fault.ClassAppCrash || class == fault.ClassSysCrash {
				// The host power-cycles the board and reboots Linux.
				m.RestoreSnapshot(wb.Snap, true)
				m.Run(wb.Watchdog) // steady-state execution after reboot
			}
			m.RestartApp(wb.Snap)
		}
	}

	// Platform overlay: strikes into unmodelled board structures. The
	// overlay costs nothing to evaluate, so it contributes its expected
	// event count directly; the Monte-Carlo variance stays where the
	// simulation is (the modeled strikes).
	res.Events[fault.ClassSysCrash] += res.Fluence * cfg.Platform.SysCrash
	res.Events[fault.ClassAppCrash] += res.Fluence * cfg.Platform.AppCrash
	res.Events[fault.ClassAppCrash] += res.Fluence * cfg.Platform.Checker * slack
	return res, nil
}

// Run exposes a set of workloads to the beam.
func Run(cfg Config, specs []bench.Spec, progress Progress) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Config: cfg}
	for _, spec := range specs {
		w, err := RunWorkload(cfg, spec, progress)
		if err != nil {
			return nil, err
		}
		res.Workloads = append(res.Workloads, *w)
	}
	return res, nil
}

// probeMismatches extracts the FIT-raw probe's self-reported mismatch
// count when the workload is the probe.
func probeMismatches(spec bench.Spec, output []byte) uint64 {
	if spec.Name != bench.FITRawProbeName || len(output) != 8 {
		return 0
	}
	count, _, err := bench.FITRawMismatches(output)
	if err != nil {
		return 0
	}
	return uint64(count)
}

// poisson draws from a Poisson distribution (Knuth for small means, normal
// approximation above).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		v := rng.NormFloat64()*math.Sqrt(mean) + mean
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// MeasureFITRaw runs the Section VI characterisation: the L1 pattern probe
// under the beam, returning FIT per bit as measured from the probe's own
// mismatch reports.
func MeasureFITRaw(cfg Config, progress Progress) (float64, *WorkloadResult, error) {
	spec, ok := bench.ByName(bench.FITRawProbeName)
	if !ok {
		return 0, nil, fmt.Errorf("beam: probe workload not registered")
	}
	res, err := RunWorkload(cfg, spec, progress)
	if err != nil {
		return 0, nil, err
	}
	bits := float64(bench.FITRawBufBytes) * 8
	if res.Fluence == 0 {
		return 0, res, nil
	}
	sigmaPerBit := res.WeightedMismatches / res.Fluence / bits
	return sigmaPerBit * FluxNYC * FITHours, res, nil
}
