// Package beam implements a Monte-Carlo neutron-beam experiment over the
// simulated platform, standing in for the LANSCE campaigns of the paper.
//
// Strikes into the six modeled SRAM structures are *really injected* into a
// live, continuously running machine — so they share their physics with
// the fault injector. What distinguishes the beam methodology is modeled
// faithfully:
//
//   - the whole chip is irradiated continuously: the kernel's cache
//     residency is live (no per-run cache reset), and corruption persists
//     across executions until a crash forces a reboot;
//   - structures the simulator does not model (the FPGA-ARM interface,
//     logic latches, the disabled second core, and the resident on-line
//     SDC-check routines of the beam harness) appear as a platform overlay
//     with their own cross-sections, producing the beam-only crash surplus
//     of Figures 7, 8, and 10;
//   - results are event counts per fluence, converted to FIT by scaling to
//     the JEDEC sea-level flux, exactly as in Section IV-B.
package beam

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/harness"
	"armsefi/internal/core/sched"
	"armsefi/internal/mem"
	"armsefi/internal/obs"
	"armsefi/internal/soc"
	"armsefi/internal/stats"
)

// Physical constants of the methodology.
const (
	// FluxNYC is the JEDEC reference sea-level neutron flux (n/cm^2/h).
	FluxNYC = 13.0
	// FITHours converts a cross-section x flux into failures per 1e9 hours.
	FITHours = 1e9
	// LANSCEFlux is the accelerated beam flux of the paper (n/cm^2/s).
	LANSCEFlux = 3.5e5
	// DefaultClockHz is the Cortex-A9 clock of the evaluated board.
	DefaultClockHz = 667e6
	// DefaultBitXS is the per-bit cross-section implied by the paper's
	// measured 2.76e-5 FIT/bit: sigma = FIT / (FluxNYC * 1e9 h).
	DefaultBitXS = 2.76e-5 / (FluxNYC * FITHours)
)

// PlatformXS gathers the cross-sections (cm^2) of board structures outside
// the microarchitectural model.
type PlatformXS struct {
	// SysCrash covers the FPGA-ARM interrupt interface, logic latches, and
	// the disabled second core: upsets make the board unreachable.
	SysCrash float64
	// AppCrash covers intra-chip communication upsets that hang the
	// application while Linux survives.
	AppCrash float64
	// Checker is the exposure of the beam harness's resident on-line
	// SDC-check routines; its effective cross-section scales with the
	// cache space the workload leaves unused (Section VI's explanation of
	// the StringSearch/MatMul/Qsort AppCrash outliers).
	Checker float64
}

// DefaultPlatformXS returns cross-sections calibrated so the beam/injection
// gaps land in the ranges the paper reports (System Crash surplus of one to
// two orders of magnitude; Application Crash surplus growing with the cache
// space left to the resident checker routines).
func DefaultPlatformXS() PlatformXS {
	return PlatformXS{
		SysCrash: 9.0e-11,
		AppCrash: 5.0e-12,
		Checker:  2.3e-11,
	}
}

// Config parameterises one beam campaign.
type Config struct {
	Preset    soc.Config
	Model     soc.ModelKind
	Scale     bench.Scale
	Seed      int64
	Flux      float64 // beam flux, n/cm^2/s
	BeamHours float64 // effective beam time per workload (excludes recovery)
	ClockHz   float64
	BitXS     float64 // cm^2 per modeled SRAM bit
	Platform  PlatformXS
	// CheckpointEvery enables the golden-run checkpoint ladder. On a live
	// board the ladder cannot accelerate the strikes themselves: a strike
	// chain's machine state carries corruption from previous strikes, so a
	// strike can neither start from a golden rung nor be reordered by
	// injection cycle without changing its physics. What the ladder does
	// replace — bit-identically — are the fault-free golden replays of a
	// chain: the initial steady-state run and every post-crash reboot run
	// jump straight to the captured end state. Zero (the default) keeps
	// the ladder off; soc.DefaultCheckpointEvery is the recommended value.
	CheckpointEvery uint64
	// MaxCheckpoints caps the rungs a ladder may hold; zero picks
	// soc.DefaultMaxCheckpoints.
	MaxCheckpoints int
	// LadderDebug enables the ladder's debug cross-check: every
	// incremental dirty-page DRAM convergence check also runs the exact
	// full-image comparison and panics on disagreement. Process-wide and
	// sticky once set (it flips soc.LadderDebugCompare); slow — for
	// debugging and tests only.
	LadderDebug bool
	// StrikesPerComponent stratifies the modeled-strike Monte Carlo: that
	// many strikes are simulated per component and each carries the weight
	// expected_strikes(component)/samples. Zero derives a default from the
	// beam time. Stratification is an unbiased variance reduction — the
	// physical experiment's strikes are bit-weighted, which would drown
	// the small high-AVF structures in L2 samples.
	StrikesPerComponent int
	// Workers bounds the campaign's worker pool. Each component's strike
	// chain is a self-contained live-board session (its own RNG stream,
	// starting from a fresh steady state, with corruption persisting
	// between its strikes), so chains shard across workbenches without
	// changing any chain's physics: the Result is bit-identical for every
	// value of Workers. Zero (the default) resolves to
	// runtime.GOMAXPROCS(0); 1 runs the chains sequentially.
	Workers int
	// Obs attaches the campaign observability layer: a per-strike
	// lifecycle trace, outcome/latency metrics, and pool gauges. Nil (the
	// default) disables all instrumentation at zero cost. Tracing does
	// not perturb results: strike chains and their physics are unchanged.
	Obs *obs.Observer `json:"-"`
	// TargetMargin enables deterministic sequential early stopping: each
	// component strike chain streams per-class fraction estimates and is
	// truncated at the first check boundary where every class estimator's
	// Wilson half-width — at an alpha-spending-corrected confidence — is
	// at or below this margin. The chain is a self-contained sequential
	// session, so its cut is a pure function of its own strike sequence
	// and the stopped Result is byte-identical at any worker count.
	// Truncated chains re-weight their surviving strikes by
	// planned/executed, keeping the stratified estimator unbiased. Zero
	// (the default) disables stopping.
	TargetMargin float64
	// Confidence is the two-sided level for the stopping rule and
	// reported margins (zero defaults to 0.99).
	Confidence float64
	// StopCheckEvery is the strike-count check-boundary spacing of the
	// sequential rule. Zero picks DefaultStopCheckEvery. Part of the
	// determinism surface.
	StopCheckEvery int
	// StopShadow simulates every strike while still computing the
	// sequential cuts, then emits the truncated re-weighted result: a
	// shadow run's Workloads are byte-identical to a genuinely stopped
	// run's, which is how tests cross-check the prefix property.
	StopShadow bool
	// Provenance attaches a propagation-provenance probe to every strike:
	// the struck location is tainted at strike time and traced records
	// carry the mechanism verdict plus the lifecycle event chain. The
	// probe stays armed through the masked-path follow-up execution (a
	// latent corruption consumed there is a read), and is disarmed before
	// the post-crash reboot and the inter-strike restart. Each chain owns
	// one probe; Results are byte-identical with provenance on or off.
	Provenance bool
}

func (c Config) withDefaults() Config {
	if c.Preset.Name == "" {
		c.Preset = soc.PresetZynq()
	}
	if c.Model == 0 {
		c.Model = soc.ModelDetailed
	}
	if c.Scale == 0 {
		c.Scale = bench.ScaleTiny
	}
	if c.Flux == 0 {
		c.Flux = LANSCEFlux
	}
	if c.BeamHours == 0 {
		c.BeamHours = 20
	}
	if c.ClockHz == 0 {
		c.ClockHz = DefaultClockHz
	}
	if c.BitXS == 0 {
		c.BitXS = DefaultBitXS
	}
	if c.Platform == (PlatformXS{}) {
		c.Platform = DefaultPlatformXS()
	}
	if c.CheckpointEvery > 0 && c.MaxCheckpoints == 0 {
		c.MaxCheckpoints = soc.DefaultMaxCheckpoints
	}
	if c.TargetMargin > 0 || c.StopShadow {
		// Pin the stop rule's full determinism surface into the config, so
		// a serialized manifest reproduces the identical cuts.
		if c.Confidence == 0 {
			c.Confidence = 0.99
		}
		if c.StopCheckEvery == 0 {
			c.StopCheckEvery = DefaultStopCheckEvery
		}
	}
	if c.LadderDebug {
		// One-way: never cleared here, so concurrent campaigns with the
		// knob off cannot race a debugging campaign's setting away.
		soc.LadderDebugCompare.Store(true)
	}
	c.Workers = sched.Resolve(c.Workers)
	return c
}

// WorkloadResult is one workload's beam campaign outcome.
type WorkloadResult struct {
	Workload     string
	Scale        bench.Scale
	GoldenCycles uint64
	ExecSeconds  float64
	Executions   float64 // total executions fitting in the beam time
	Fluence      float64 // n/cm^2 accumulated over the beam time
	// Events accumulates observed errors by class (platform overlay
	// included); modeled strikes contribute their stratification weight.
	Events map[fault.Class]float64
	// ModeledEvents accumulates only strikes into modeled arrays.
	ModeledEvents map[fault.Class]float64
	// MaskedStrikes counts simulated strikes with no observable effect.
	MaskedStrikes int
	// SimulatedStrikes counts machine runs with an injected strike.
	SimulatedStrikes int
	// StrikeCounts tallies the simulated modeled strikes by final class —
	// raw unweighted counts (after any sequential truncation), the
	// denominators behind the beam-side Poisson confidence intervals.
	StrikeCounts map[fault.Class]int
	// CacheSlack is the fraction of the L2 the workload leaves unused,
	// which scales the resident-checker exposure.
	CacheSlack float64
	// TotalMismatches accumulates the mismatch counts reported by the
	// FIT-raw probe (zero for ordinary workloads).
	TotalMismatches uint64
	// WeightedMismatches is the stratification-weighted mismatch count,
	// the numerator of the FIT-raw estimate.
	WeightedMismatches float64
}

// FIT converts a class's event count into failures in time at the JEDEC
// sea-level flux: FIT = events/fluence * FluxNYC * 1e9.
func (w *WorkloadResult) FIT(c fault.Class) float64 {
	if w.Fluence == 0 {
		return 0
	}
	return w.Events[c] / w.Fluence * FluxNYC * FITHours
}

// TotalFIT sums the FIT of all error classes.
func (w *WorkloadResult) TotalFIT() float64 {
	var t float64
	for _, c := range fault.ErrorClasses() {
		t += w.FIT(c)
	}
	return t
}

// ErrorRatePerExecution reports observed errors per execution; the paper
// keeps this below 1/1000 so that scaling to natural flux is artifact-free.
func (w *WorkloadResult) ErrorRatePerExecution() float64 {
	if w.Executions == 0 {
		return 0
	}
	var n float64
	for _, c := range fault.ErrorClasses() {
		n += w.Events[c]
	}
	return n / w.Executions
}

// Result is a full beam campaign.
type Result struct {
	Config    Config
	Workloads []WorkloadResult
	// Stop summarises the sequential stopping rule's chain cuts and
	// achieved margins (campaigns with TargetMargin set only; nil
	// otherwise). Deliberately outside Workloads.
	Stop *StopSummary `json:",omitempty"`
}

// Workload returns a workload's result by name.
func (r *Result) Workload(name string) (*WorkloadResult, bool) {
	for i := range r.Workloads {
		if r.Workloads[i].Workload == name {
			return &r.Workloads[i], true
		}
	}
	return nil, false
}

// ProgressEvent reports one simulated strike. As in gefin, emissions are
// serialised under a campaign-wide mutex (callback state needs no lock),
// but may originate from any worker goroutine.
type ProgressEvent struct {
	Workload string
	// Strike and Total count strikes into this workload.
	Strike, Total int
	// CampaignDone and CampaignTotal count strikes across every workload
	// of the Run (or just this workload under RunWorkload).
	CampaignDone, CampaignTotal int
	// Workers is the number of live workers at the instant of the event;
	// Rate is the aggregate campaign throughput in strikes/sec, and ETA
	// the remaining wall time it implies.
	Workers int
	Rate    float64
	ETA     time.Duration
}

// Progress receives per-strike progress callbacks; see ProgressEvent for
// the concurrency contract.
type Progress func(ProgressEvent)

// chainResult accumulates one component chain's contribution to the
// workload result.
type chainResult struct {
	events             map[fault.Class]float64
	masked             int
	sims               int
	totalMismatches    uint64
	weightedMismatches float64
	// counts tallies the chain's strikes by final class (raw, unweighted;
	// sims is their sum); the remaining fields report the
	// sequential-stopping outcome (filled by chainStop.finishChain; zero
	// without a monitor).
	counts  [fault.NumClasses]int
	planned int
	looks   int
	margin  float64
	stopped bool
}

// chainSeed derives the per-(workload, component) RNG stream of one strike
// chain from the campaign seed.
func chainSeed(seed int64, workload string, comp fault.Component) int64 {
	h := fnv.New64a()
	io.WriteString(h, workload)
	io.WriteString(h, "/")
	io.WriteString(h, comp.String())
	return seed ^ int64(h.Sum64())
}

// runChain exposes one component to the beam for perComp strikes on one
// workbench. A chain is a self-contained live-board session: it starts by
// bringing the board to steady state, and corruption then persists across
// its strikes until a crash forces a reboot — exactly the physics of the
// sequential simulator, scoped to one component so chains can run
// concurrently on sibling machines. tc stamps distributed trace context
// onto emitted strike records; the zero context stamps nothing.
func runChain(cfg Config, wb *harness.Workbench, spec bench.Spec, comp fault.Component,
	perComp int, fluence float64, conv *obs.ConvRegistry, em *emitter, totalSims, worker int, tc obs.TraceContext) chainResult {
	m := wb.Machine
	built := wb.Built
	bits := fault.SizeBits(m, comp)
	weight := fluence * float64(bits) * cfg.BitXS / float64(perComp)
	rng := rand.New(rand.NewSource(chainSeed(cfg.Seed, spec.Name, comp)))
	out := chainResult{events: make(map[fault.Class]float64, fault.NumClasses), planned: perComp}
	cs := newChainStop(cfg, spec.Name, comp, perComp, conv, tc)

	// The board runs the workload in a loop from its warm post-boot state.
	steadyState(cfg, wb)
	m.RestartApp(wb.Snap)

	// The chain owns its probe: it taints only this workbench's arrays.
	var probe *mem.Probe
	if cfg.Provenance {
		probe = new(mem.Probe)
	}

	for s := 0; s < perComp; s++ {
		f := fault.Fault{
			Comp:  comp,
			Bit:   uint64(rng.Int63n(int64(bits))),
			Cycle: uint64(rng.Int63n(int64(wb.Golden.Cycles))),
		}
		if probe != nil {
			core := m.Core()
			probe.Reset(core.Cycles, core.PC)
		}
		start := time.Now()
		runRes := m.RunWithInjection(wb.Watchdog, f.Cycle, func() {
			if probe != nil {
				fault.Arm(m, f, probe)
			}
			fault.Apply(m, f)
		})
		class := fault.Classify(runRes, built.Golden, cfg.Preset.TimerPeriod)
		if mm := probeMismatches(spec, runRes.Output); mm > 0 {
			out.totalMismatches += mm
			// Only strikes into the L1D array count toward the FIT-raw
			// estimate: the probe characterises that array, and the
			// simulated oracle can attribute exactly (the physical
			// experiment relies on the beam spot and timing to do the
			// same).
			if comp == fault.CompL1D {
				out.weightedMismatches += float64(mm) * weight
			}
		}
		out.sims++
		followup := false
		var follow soc.Result
		if class == fault.ClassMasked {
			out.masked++
			// The corruption may be latent (e.g., a flipped kernel line
			// not yet touched): run one follow-up execution on the live
			// state before declaring it benign. The probe stays armed: a
			// latent corruption consumed here is a genuine read.
			m.RestartApp(wb.Snap)
			follow = m.Run(wb.Watchdog)
			fclass := fault.Classify(follow, built.Golden, cfg.Preset.TimerPeriod)
			if fclass != fault.ClassMasked {
				class = fclass
				followup = true
				out.masked--
			}
		}
		if class != fault.ClassMasked {
			out.events[class] += weight
		}
		out.counts[int(class)-1]++
		if cfg.Obs.On() {
			rec := obs.Record{
				Kind:       obs.KindStrike,
				Workload:   spec.Name,
				Comp:       f.Comp,
				Bit:        f.Bit,
				Cycle:      f.Cycle,
				Worker:     worker,
				ExecCycles: runRes.Cycles,
				Outcome:    runRes.Outcome.String(),
				Class:      class,
				Weight:     weight,
				Followup:   followup,
			}
			if probe.Armed() {
				// The verdict reads the result that produced the final
				// class: the follow-up run when it reclassified.
				vres := runRes
				if followup {
					vres = follow
				}
				mech := fault.MechanismOf(class, vres, probe)
				cfg.Obs.Mechanism(spec.Name, f.Comp, mech)
				rec.Mechanism = mech.String()
				if ev, ok := probe.FirstRead(); ok {
					rec.ReadCycle, rec.ReadPC, rec.ReadReg = ev.Cycle, ev.PC, ev.Reg
				}
				rec.ProvEvents = append([]mem.ProbeEvent(nil), probe.Events()...)
				rec.ProvDropped = probe.Dropped()
			}
			tc.Stamp(&rec)
			cfg.Obs.Record(rec, start, time.Now())
		}
		if probe != nil {
			// Disarm before the reboot/restart below: restores are not
			// lifecycle events.
			fault.Disarm(m)
		}
		if cs.record(&out) {
			// The sequential rule truncated the chain; the next chain on
			// this workbench starts from a fresh steady state anyway.
			em.tick(spec.Name, totalSims)
			break
		}
		if class == fault.ClassAppCrash || class == fault.ClassSysCrash {
			// The host power-cycles the board and reboots Linux, then the
			// board runs back to steady state.
			steadyState(cfg, wb)
		}
		m.RestartApp(wb.Snap)
		em.tick(spec.Name, totalSims)
	}
	cs.finishChain(&out)
	return out
}

// steadyState brings the board to the state the golden run leaves behind:
// through the warm ladder's end checkpoint when one is installed
// (bit-identical, skipping the whole fault-free execution), otherwise by
// restoring the warm snapshot and running to completion.
func steadyState(cfg Config, wb *harness.Workbench) {
	if l := wb.Ladder; l != nil && l.Warm() {
		wb.Machine.FastForwardGolden(l)
		cfg.Obs.LadderRun(soc.LadderStats{FastForwarded: l.Final.Cycles})
		return
	}
	wb.Machine.RestoreSnapshot(wb.Snap, true)
	wb.Machine.Run(wb.Watchdog)
}

// RunWorkload exposes one workload to the simulated beam, using up to
// cfg.Workers parallel workbenches (one component chain at a time each).
func RunWorkload(cfg Config, spec bench.Spec, progress Progress) (*WorkloadResult, error) {
	cfg = cfg.withDefaults()
	pool := sched.NewPool(cfg.Workers - 1)
	cfg.Obs.ObservePool(pool)
	res, _, err := runWorkload(cfg, spec, pool, newEmitter(progress, cfg.Obs))
	return res, err
}

// prepareWorkload builds the workload's workbench and the deterministic
// per-workload skeleton of its result (slack probe, fluence, execution
// budget, stratification size) — the setup shared by the in-process
// engine and the campaign-service shard runner, so a chain executed on a
// remote node starts from the identical state.
func prepareWorkload(cfg Config, spec bench.Spec) (*harness.Workbench, *WorkloadResult, int, error) {
	wb, err := harness.Build(cfg.Preset, cfg.Model, spec, cfg.Scale)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("beam: %w", err)
	}
	m := wb.Machine

	// Cache occupancy after the cold golden run scales checker residency.
	l2cfg := m.Mem.L2.Config()
	totalLines := int(l2cfg.Sets()) * l2cfg.Ways
	slack := 1 - float64(m.Mem.L2.ValidLines())/float64(totalLines)
	if slack < 0 {
		slack = 0
	}

	if cfg.CheckpointEvery > 0 {
		// Captured warm (the chains' restore mode) and only after the slack
		// probe above, which must see the state the cold golden run left.
		if err := wb.BuildLadder(cfg.CheckpointEvery, cfg.MaxCheckpoints, true); err != nil {
			return nil, nil, 0, fmt.Errorf("beam: %w", err)
		}
	}

	res := &WorkloadResult{
		Workload:      spec.Name,
		Scale:         cfg.Scale,
		GoldenCycles:  wb.Golden.Cycles,
		Events:        make(map[fault.Class]float64, fault.NumClasses),
		ModeledEvents: make(map[fault.Class]float64, fault.NumClasses),
		StrikeCounts:  make(map[fault.Class]int, fault.NumClasses),
		CacheSlack:    slack,
	}
	res.ExecSeconds = float64(wb.Golden.Cycles) / cfg.ClockHz
	beamSeconds := cfg.BeamHours * 3600
	res.Executions = beamSeconds / res.ExecSeconds
	res.Fluence = cfg.Flux * beamSeconds

	// Stratified Monte Carlo over the modeled arrays: simulate an equal
	// number of strikes per component; each contributes its component's
	// expected physical strike count divided by the sample size. Quiet
	// executions are accounted analytically through the fluence.
	perComp := cfg.StrikesPerComponent
	if perComp <= 0 {
		totalBits := fault.TotalBits(m)
		expect := res.Fluence * float64(totalBits) * cfg.BitXS
		perComp = int(expect/float64(fault.NumComponents)) + 1
		if perComp < 30 {
			perComp = 30
		}
		if perComp > 120 {
			perComp = 120
		}
	}
	return wb, res, perComp, nil
}

// finishWorkload merges the component chains — always in component order
// with a fixed class order, so the floating-point accumulation is
// identical at every worker count and across in-process vs. sharded
// execution — and applies the platform overlay.
func finishWorkload(cfg Config, res *WorkloadResult, partial []chainResult) {
	for _, pr := range partial {
		res.SimulatedStrikes += pr.sims
		res.MaskedStrikes += pr.masked
		res.TotalMismatches += pr.totalMismatches
		res.WeightedMismatches += pr.weightedMismatches
		for _, cls := range fault.Classes() {
			if v, ok := pr.events[cls]; ok {
				res.Events[cls] += v
				res.ModeledEvents[cls] += v
			}
			if n := pr.counts[int(cls)-1]; n > 0 {
				res.StrikeCounts[cls] += n
			}
		}
	}

	// Platform overlay: strikes into unmodelled board structures. The
	// overlay costs nothing to evaluate, so it contributes its expected
	// event count directly; the Monte-Carlo variance stays where the
	// simulation is (the modeled strikes).
	res.Events[fault.ClassSysCrash] += res.Fluence * cfg.Platform.SysCrash
	res.Events[fault.ClassAppCrash] += res.Fluence * cfg.Platform.AppCrash
	res.Events[fault.ClassAppCrash] += res.Fluence * cfg.Platform.Checker * res.CacheSlack
}

func runWorkload(cfg Config, spec bench.Spec, pool *sched.Pool, em *emitter) (*WorkloadResult, *StopSummary, error) {
	wb, res, perComp, err := prepareWorkload(cfg, spec)
	if err != nil {
		return nil, nil, err
	}
	comps := fault.Components()
	totalSims := perComp * len(comps)
	em.addTotal(totalSims)

	// One estimator registry per workload run, shared by its chains (the
	// registry locks internally); nil without a rule or an observer.
	rule := stats.SeqRule{TargetMargin: cfg.TargetMargin, Confidence: cfg.Confidence}
	var conv *obs.ConvRegistry
	if rule.Enabled() || cfg.Obs.On() {
		conv = obs.NewConvRegistry(rule)
	}

	// Shard the component chains across the primary workbench plus as many
	// clones as the pool grants; chains are claimed off an atomic cursor.
	extras := cfg.Workers - 1
	if extras > len(comps)-1 {
		extras = len(comps) - 1
	}
	var clones []*harness.Workbench
	for len(clones) < extras {
		ok := pool.TryAcquire()
		cfg.Obs.CloneTry(ok)
		if !ok {
			break
		}
		clone, err := wb.Clone()
		if err != nil {
			pool.Release()
			for range clones {
				pool.Release()
			}
			return nil, nil, fmt.Errorf("beam: %w", err)
		}
		clones = append(clones, clone)
	}
	partial := make([]chainResult, len(comps))
	var cursor int64
	drain := func(worker int, w *harness.Workbench) {
		em.workerStarted()
		defer em.workerDone()
		for {
			ci := atomic.AddInt64(&cursor, 1) - 1
			if ci >= int64(len(comps)) {
				return
			}
			partial[ci] = runChain(cfg, w, spec, comps[ci], perComp, res.Fluence, conv, em, totalSims, worker, obs.TraceContext{})
		}
	}
	var wg sync.WaitGroup
	for ci, clone := range clones {
		wg.Add(1)
		go func(worker int, clone *harness.Workbench) {
			defer wg.Done()
			defer pool.Release()
			drain(worker, clone)
		}(ci+1, clone)
	}
	drain(0, wb)
	wg.Wait()

	finishWorkload(cfg, res, partial)
	cfg.Obs.Convergence(conv.Snapshots(), obs.TraceContext{})

	var stop *StopSummary
	if rule.Enabled() {
		stop = &StopSummary{TargetMargin: cfg.TargetMargin, Confidence: cfg.Confidence, Shadow: cfg.StopShadow}
		for ci, pr := range partial {
			stop.Chains = append(stop.Chains, StopChain{
				Workload: spec.Name,
				Comp:     comps[ci],
				Planned:  pr.planned,
				Executed: pr.sims,
				Looks:    pr.looks,
				Margin:   pr.margin,
				Stopped:  pr.stopped,
			})
			stop.Planned += pr.planned
			stop.Executed += pr.sims
		}
		stop.Saved = stop.Planned - stop.Executed
	}
	return res, stop, nil
}

// Run exposes a set of workloads to the beam. Workloads run concurrently,
// bounded — together with their per-workload extra workers — by
// cfg.Workers total live machines.
func Run(cfg Config, specs []bench.Spec, progress Progress) (*Result, error) {
	cfg = cfg.withDefaults()
	pool := sched.NewPool(cfg.Workers)
	cfg.Obs.ObservePool(pool)
	em := newEmitter(progress, cfg.Obs)
	results := make([]*WorkloadResult, len(specs))
	stops := make([]*StopSummary, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec bench.Spec) {
			defer wg.Done()
			pool.Acquire() // the workload's primary worker slot
			defer pool.Release()
			results[i], stops[i], errs[i] = runWorkload(cfg, spec, pool, em)
		}(i, spec)
	}
	wg.Wait()
	res := &Result{Config: cfg}
	for i := range specs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res.Workloads = append(res.Workloads, *results[i])
	}
	// The stop summary merges in spec order, outside Workloads.
	if cfg.TargetMargin > 0 {
		total := &StopSummary{}
		for _, s := range stops {
			total.merge(s)
		}
		res.Stop = total
	}
	return res, nil
}

// emitter adapts the shared meter to beam progress events, adding the
// per-workload strike counts, and feeds every meter snapshot into the
// observability gauges. All mutable state is only touched inside
// Meter.Tick's lock, which also serialises the user callback.
type emitter struct {
	meter *sched.Meter
	fn    Progress
	ob    *obs.Observer
	done  map[string]int
}

// newEmitter returns nil when there is neither a callback nor an
// observer: a nil emitter's methods are no-ops.
func newEmitter(fn Progress, ob *obs.Observer) *emitter {
	if fn == nil && !ob.On() {
		return nil
	}
	return &emitter{meter: sched.NewMeter(), fn: fn, ob: ob, done: make(map[string]int)}
}

func (e *emitter) addTotal(n int) {
	if e != nil {
		e.meter.AddTotal(n)
	}
}

func (e *emitter) workerStarted() {
	if e != nil {
		e.meter.WorkerStarted()
	}
}

func (e *emitter) workerDone() {
	if e != nil {
		e.meter.WorkerDone()
	}
}

func (e *emitter) tick(workload string, totalPerWorkload int) {
	if e == nil {
		return
	}
	e.meter.Tick(func(s sched.Snapshot) {
		e.ob.MeterTick(s)
		if e.fn == nil {
			return
		}
		e.done[workload]++
		e.fn(ProgressEvent{
			Workload:      workload,
			Strike:        e.done[workload],
			Total:         totalPerWorkload,
			CampaignDone:  s.Done,
			CampaignTotal: s.Total,
			Workers:       s.Workers,
			Rate:          s.Rate,
			ETA:           s.ETA,
		})
	})
}

// probeMismatches extracts the FIT-raw probe's self-reported mismatch
// count when the workload is the probe.
func probeMismatches(spec bench.Spec, output []byte) uint64 {
	if spec.Name != bench.FITRawProbeName || len(output) != 8 {
		return 0
	}
	count, _, err := bench.FITRawMismatches(output)
	if err != nil {
		return 0
	}
	return uint64(count)
}

// poisson draws from a Poisson distribution (Knuth for small means, normal
// approximation above).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		v := rng.NormFloat64()*math.Sqrt(mean) + mean
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// MeasureFITRaw runs the Section VI characterisation: the L1 pattern probe
// under the beam, returning FIT per bit as measured from the probe's own
// mismatch reports.
func MeasureFITRaw(cfg Config, progress Progress) (float64, *WorkloadResult, error) {
	spec, ok := bench.ByName(bench.FITRawProbeName)
	if !ok {
		return 0, nil, fmt.Errorf("beam: probe workload not registered")
	}
	res, err := RunWorkload(cfg, spec, progress)
	if err != nil {
		return 0, nil, err
	}
	bits := float64(bench.FITRawBufBytes) * 8
	if res.Fluence == 0 {
		return 0, res, nil
	}
	sigmaPerBit := res.WeightedMismatches / res.Fluence / bits
	return sigmaPerBit * FluxNYC * FITHours, res, nil
}
