package beam

import (
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/soc"
)

// TestBeamLadderInvariance pins the end-state fast-forward contract: a
// beam campaign with the checkpoint ladder replacing its steady-state and
// reboot runs produces exactly the Result of the plain campaign — every
// strike still lands on the identical live-board state.
func TestBeamLadderInvariance(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	cfg := Config{Seed: 9, BeamHours: 1, StrikesPerComponent: 3}
	off, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CheckpointEvery = soc.DefaultCheckpointEvery
	on, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cls := range fault.Classes() {
		if off.Events[cls] != on.Events[cls] {
			t.Errorf("%v: events %v (plain) vs %v (ladder)", cls, off.Events[cls], on.Events[cls])
		}
		if off.ModeledEvents[cls] != on.ModeledEvents[cls] {
			t.Errorf("%v: modeled events %v vs %v", cls, off.ModeledEvents[cls], on.ModeledEvents[cls])
		}
	}
	if off.MaskedStrikes != on.MaskedStrikes || off.SimulatedStrikes != on.SimulatedStrikes {
		t.Errorf("strike accounting differs: %d/%d vs %d/%d masked/simulated",
			off.MaskedStrikes, off.SimulatedStrikes, on.MaskedStrikes, on.SimulatedStrikes)
	}
	if off.TotalMismatches != on.TotalMismatches || off.CacheSlack != on.CacheSlack {
		t.Errorf("mismatch/slack accounting differs: %d/%f vs %d/%f",
			off.TotalMismatches, off.CacheSlack, on.TotalMismatches, on.CacheSlack)
	}
}
