package beam

import (
	"math"
	"math/rand"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
)

func TestFITConversion(t *testing.T) {
	w := &WorkloadResult{
		Fluence: 1e10,
		Events: map[fault.Class]float64{
			fault.ClassSDC: 13, // 13 events per 1e10 n/cm^2
		},
	}
	// FIT = 13/1e10 * 13 * 1e9 = 16.9.
	if got := w.FIT(fault.ClassSDC); math.Abs(got-16.9) > 1e-9 {
		t.Errorf("FIT = %v, want 16.9", got)
	}
	if w.FIT(fault.ClassAppCrash) != 0 {
		t.Error("empty class FIT != 0")
	}
	if got := w.TotalFIT(); math.Abs(got-16.9) > 1e-9 {
		t.Errorf("TotalFIT = %v", got)
	}
	empty := &WorkloadResult{}
	if empty.FIT(fault.ClassSDC) != 0 || empty.ErrorRatePerExecution() != 0 {
		t.Error("zero-fluence results must be zero")
	}
}

func TestDefaultBitXSMatchesPaperFITRaw(t *testing.T) {
	// The default cross-section must invert back to the paper's 2.76e-5
	// FIT/bit under the JEDEC sea-level flux.
	back := DefaultBitXS * FluxNYC * FITHours
	if math.Abs(back-2.76e-5)/2.76e-5 > 1e-12 {
		t.Errorf("DefaultBitXS inverts to %g FIT/bit", back)
	}
}

func TestPoissonSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, mean := range []float64{0, 0.5, 3, 20, 200} {
		var sum float64
		const n = 3000
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, mean))
		}
		got := sum / n
		if mean == 0 && got != 0 {
			t.Errorf("poisson(0) produced %f", got)
			continue
		}
		if mean > 0 && math.Abs(got-mean) > 5*math.Sqrt(mean/n)+0.05*mean {
			t.Errorf("poisson(%f) mean = %f", mean, got)
		}
	}
}

func TestBeamCampaignSmall(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	cfg := Config{Seed: 3, BeamHours: 1, StrikesPerComponent: 4}
	w, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.SimulatedStrikes != 4*fault.NumComponents {
		t.Errorf("simulated strikes = %d", w.SimulatedStrikes)
	}
	if w.Fluence != LANSCEFlux*3600 {
		t.Errorf("fluence = %g", w.Fluence)
	}
	if w.Executions <= 0 || w.ExecSeconds <= 0 {
		t.Error("execution accounting missing")
	}
	if w.CacheSlack < 0 || w.CacheSlack > 1 {
		t.Errorf("slack = %f", w.CacheSlack)
	}
	// The paper's scaling safety check: errors per execution stay tiny.
	if w.ErrorRatePerExecution() > 1e-3 {
		t.Errorf("error rate per execution = %g, violates the <1/1000 rule", w.ErrorRatePerExecution())
	}
}

func TestBeamDeterminism(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	cfg := Config{Seed: 9, BeamHours: 1, StrikesPerComponent: 3}
	a, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cls := range fault.Classes() {
		if a.Events[cls] != b.Events[cls] {
			t.Fatalf("%v: %f vs %f", cls, a.Events[cls], b.Events[cls])
		}
	}
	if a.MaskedStrikes != b.MaskedStrikes {
		t.Fatal("masked counts differ")
	}
}

// TestBeamWorkerCountInvariance pins the parallel engine's contract: each
// component chain is a self-contained live-board session, so sharding the
// chains across workers cannot change any outcome.
func TestBeamWorkerCountInvariance(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	cfg := Config{Seed: 9, BeamHours: 1, StrikesPerComponent: 3}
	cfg.Workers = 1
	a, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	b, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cls := range fault.Classes() {
		if a.Events[cls] != b.Events[cls] {
			t.Errorf("%v: events %v vs %v", cls, a.Events[cls], b.Events[cls])
		}
		if a.ModeledEvents[cls] != b.ModeledEvents[cls] {
			t.Errorf("%v: modeled events %v vs %v", cls, a.ModeledEvents[cls], b.ModeledEvents[cls])
		}
	}
	if a.MaskedStrikes != b.MaskedStrikes || a.SimulatedStrikes != b.SimulatedStrikes {
		t.Errorf("strike accounting differs: %d/%d vs %d/%d masked/simulated",
			a.MaskedStrikes, a.SimulatedStrikes, b.MaskedStrikes, b.SimulatedStrikes)
	}
	if a.TotalMismatches != b.TotalMismatches || a.WeightedMismatches != b.WeightedMismatches {
		t.Error("probe mismatch accounting differs across worker counts")
	}
}

// TestBeamRunParallelWorkloads checks the top-level engine keeps spec
// order and per-workload results under a shared worker budget.
func TestBeamRunParallelWorkloads(t *testing.T) {
	var specs []bench.Spec
	for _, name := range []string{"crc32", "qsort"} {
		s, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		specs = append(specs, s)
	}
	cfg := Config{Seed: 4, BeamHours: 1, StrikesPerComponent: 2, Workers: 4}
	res, err := Run(cfg, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != len(specs) {
		t.Fatalf("workloads = %d", len(res.Workloads))
	}
	for i, spec := range specs {
		if res.Workloads[i].Workload != spec.Name {
			t.Fatalf("workload %d is %q, want %q (order must follow specs)",
				i, res.Workloads[i].Workload, spec.Name)
		}
		if res.Workloads[i].SimulatedStrikes != 2*fault.NumComponents {
			t.Errorf("%s: simulated strikes = %d", spec.Name, res.Workloads[i].SimulatedStrikes)
		}
	}
}

func TestMeasureFITRawPlausible(t *testing.T) {
	if testing.Short() {
		t.Skip("beam probe is slow")
	}
	measured, res, err := MeasureFITRaw(Config{
		Seed: 5, BeamHours: 10, StrikesPerComponent: 25,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMismatches == 0 {
		t.Skip("no probe detections at this exposure (statistical)")
	}
	// The probe can only under-measure the configured technology FIT
	// (evictions and off-window strikes mask), and should be within an
	// order of magnitude of it.
	tech := DefaultBitXS * FluxNYC * FITHours
	if measured > tech*3 || measured < tech/50 {
		t.Errorf("measured FITraw %g vs technology %g", measured, tech)
	}
}
