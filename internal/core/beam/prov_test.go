package beam

import (
	"bytes"
	"fmt"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/obs"
)

// TestBeamProvenancePreservesResults: the provenance probe is purely
// observational for the beam engine too — the same seeded strike chains
// produce a bit-identical Result with the probe attached or absent, at
// any worker count. The probe path runs even without an observer.
func TestBeamProvenancePreservesResults(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	cfg := Config{Seed: 9, BeamHours: 1, StrikesPerComponent: 3, Workers: 1}
	plain, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			pcfg := cfg
			pcfg.Workers = workers
			pcfg.Provenance = true
			prov, err := RunWorkload(pcfg, spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, cls := range fault.Classes() {
				if plain.Events[cls] != prov.Events[cls] {
					t.Errorf("%v: events %v vs %v", cls, plain.Events[cls], prov.Events[cls])
				}
				if plain.ModeledEvents[cls] != prov.ModeledEvents[cls] {
					t.Errorf("%v: modeled %v vs %v", cls, plain.ModeledEvents[cls], prov.ModeledEvents[cls])
				}
			}
			if plain.MaskedStrikes != prov.MaskedStrikes || plain.SimulatedStrikes != prov.SimulatedStrikes {
				t.Error("strike accounting changed under provenance")
			}
		})
	}
}

// TestBeamProvenancePartition: every strike record of a traced
// provenance beam campaign carries a verdict consistent with its class,
// and the per-component mechanism tallies partition the per-class
// record counts exactly — including the masked strikes whose follow-up
// run consumed latent corruption.
func TestBeamProvenancePartition(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	var buf bytes.Buffer
	cfg := Config{Seed: 9, BeamHours: 1, StrikesPerComponent: 3, Workers: 4,
		Provenance: true, Obs: obs.New(obs.Options{TraceWriter: &buf})}
	if _, err := RunWorkload(cfg, spec, nil); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Obs.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ReadSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	groups := 0
	for _, comp := range fault.Components() {
		c := sum.Component(obs.KindStrike, "crc32", comp)
		if c.Records == 0 {
			continue
		}
		groups++
		if c.MechRecords != c.Records {
			t.Errorf("%v: %d of %d strikes carry a mechanism verdict", comp, c.MechRecords, c.Records)
		}
		if c.MechMismatch != 0 {
			t.Errorf("%v: %d verdicts contradict their outcome class", comp, c.MechMismatch)
		}
		masked := 0
		for _, m := range fault.Mechanisms() {
			if m.Masking() {
				masked += c.Mechanisms[m]
			}
		}
		if masked != c.Counts[fault.ClassMasked] {
			t.Errorf("%v: masked mechanisms sum to %d, Masked count is %d",
				comp, masked, c.Counts[fault.ClassMasked])
		}
		if got := c.Mechanisms[fault.MechPropagatedSDC]; got != c.Counts[fault.ClassSDC] {
			t.Errorf("%v: propagated-sdc %d, SDC count %d", comp, got, c.Counts[fault.ClassSDC])
		}
		crash := c.Mechanisms[fault.MechPropagatedTrap] + c.Mechanisms[fault.MechPropagatedTimeout]
		if want := c.Counts[fault.ClassAppCrash] + c.Counts[fault.ClassSysCrash]; crash != want {
			t.Errorf("%v: crash mechanisms sum to %d, crash classes count %d", comp, crash, want)
		}
	}
	if groups == 0 {
		t.Fatal("trace carries no strike records")
	}
}
