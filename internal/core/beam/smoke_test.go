package beam

import (
	"fmt"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
)

func TestSmokeBeam(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	cfg := Config{Seed: 7, BeamHours: 2, StrikesPerComponent: 12}
	w, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("execs=%.0f fluence=%.3g sims=%d masked=%d events: SDC=%.2f AC=%.2f SC=%.2f slack=%.2f\n",
		w.Executions, w.Fluence, w.SimulatedStrikes, w.MaskedStrikes,
		w.Events[fault.ClassSDC], w.Events[fault.ClassAppCrash], w.Events[fault.ClassSysCrash], w.CacheSlack)
	fmt.Printf("FIT: SDC=%.2f AC=%.2f SC=%.2f total=%.2f errRate=%.3g\n",
		w.FIT(fault.ClassSDC), w.FIT(fault.ClassAppCrash), w.FIT(fault.ClassSysCrash), w.TotalFIT(), w.ErrorRatePerExecution())
}
