package beam

import (
	"encoding/json"
	"reflect"
	"testing"

	"armsefi/internal/bench"
)

// TestChainShardAssemblyMatchesRun pins the beam half of the campaign
// service's determinism foundation: executing the six component chains
// as independent shards (out of order, JSON round-tripped) and merging
// must reproduce the in-process WorkloadResult bit-for-bit.
func TestChainShardAssemblyMatchesRun(t *testing.T) {
	spec, ok := bench.ByName("crc32")
	if !ok {
		t.Fatal("crc32 missing")
	}
	cfg := Config{Seed: 321, BeamHours: 1, StrikesPerComponent: 4, Workers: 1}
	direct, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	r := NewShardRunner(cfg)
	chains := make([]*ChainOutcome, ShardsPerWorkload)
	var meta ShardMeta
	// Scrambled execution order: chains are independent sessions.
	for _, ci := range []int{3, 0, 5, 1, 4, 2} {
		out, m, err := r.RunShard(spec, ci)
		if err != nil {
			t.Fatal(err)
		}
		wire, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		var back ChainOutcome
		if err := json.Unmarshal(wire, &back); err != nil {
			t.Fatal(err)
		}
		chains[ci] = &back
		if meta.GoldenCycles == 0 {
			meta = m
		} else if !reflect.DeepEqual(meta, m) {
			t.Fatalf("shard meta diverged: %+v vs %+v", meta, m)
		}
	}
	assembled, err := AssembleWorkload(cfg, spec.Name, meta, chains)
	if err != nil {
		t.Fatal(err)
	}
	dj, _ := json.Marshal(direct)
	aj, _ := json.Marshal(assembled)
	if string(dj) != string(aj) {
		t.Fatalf("assembled result diverges from direct run:\n direct    %s\n assembled %s", dj, aj)
	}
}

// TestChainShardBounds pins component-range validation and the
// incomplete-coverage assembler error.
func TestChainShardBounds(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	cfg := Config{Seed: 5, BeamHours: 1, StrikesPerComponent: 1}
	r := NewShardRunner(cfg)
	if _, _, err := r.RunShard(spec, -1); err == nil {
		t.Error("negative component accepted")
	}
	if _, _, err := r.RunShard(spec, ShardsPerWorkload); err == nil {
		t.Error("component past range accepted")
	}
	if _, err := AssembleWorkload(cfg, "x", ShardMeta{}, make([]*ChainOutcome, ShardsPerWorkload)); err == nil {
		t.Error("nil chain accepted")
	}
	if _, err := AssembleWorkload(cfg, "x", ShardMeta{}, nil); err == nil {
		t.Error("missing chains accepted")
	}
}
