// Deterministic sequential early stopping for beam campaigns. The unit
// of truncation is the component strike chain: a chain is a
// self-contained sequential session with its own RNG stream, so its
// stopping point is a pure function of the chain's own strike sequence —
// trivially identical at every worker count and across in-process vs.
// sharded execution. The rule watches the chain's per-class strike
// fractions and cuts the chain at the first check boundary where every
// class estimator meets the target margin under the alpha-spending
// correction; the surviving strikes are re-weighted so the stratified
// estimator stays unbiased.

package beam

import (
	"armsefi/internal/core/fault"
	"armsefi/internal/obs"
	"armsefi/internal/stats"
)

// DefaultStopCheckEvery is the default strike-count check-boundary
// spacing of the sequential rule.
const DefaultStopCheckEvery = 10

// StopChain reports one strike chain's sequential-stopping outcome.
type StopChain struct {
	Workload string          `json:"workload"`
	Comp     fault.Component `json:"comp"`
	// Planned and Executed count the chain's strikes before and after
	// truncation; Looks the sequential evaluations taken.
	Planned  int `json:"planned"`
	Executed int `json:"executed"`
	Looks    int `json:"looks"`
	// Margin is the achieved margin at the campaign's plain confidence:
	// the widest Wilson half-width across the chain's class estimators.
	Margin float64 `json:"margin"`
	// Stopped reports whether the rule truncated the chain early.
	Stopped bool `json:"stopped"`
}

// StopSummary reports what the sequential stopping rule did to a beam
// campaign. It lives beside Workloads, never inside them.
type StopSummary struct {
	TargetMargin float64 `json:"target_margin"`
	Confidence   float64 `json:"confidence"`
	// Planned, Executed, and Saved count strikes across the summary's
	// scope: budgeted, simulated after truncation, and cut away.
	Planned  int `json:"planned"`
	Executed int `json:"executed"`
	Saved    int `json:"saved"`
	// Shadow marks a run that simulated every strike (Config.StopShadow)
	// while computing the same cuts and emitting the truncated result.
	Shadow bool        `json:"shadow,omitempty"`
	Chains []StopChain `json:"chains,omitempty"`
}

// merge folds another summary into s (chains append in call order).
func (s *StopSummary) merge(o *StopSummary) {
	if o == nil {
		return
	}
	s.TargetMargin = o.TargetMargin
	s.Confidence = o.Confidence
	s.Shadow = o.Shadow
	s.Planned += o.Planned
	s.Executed += o.Executed
	s.Saved += o.Saved
	s.Chains = append(s.Chains, o.Chains...)
}

// chainStop is one strike chain's sequential monitor. Chains are
// single-goroutine, so it needs no locking; a nil monitor is inert.
type chainStop struct {
	rule     stats.SeqRule
	every    int
	shadow   bool
	conv     *obs.ConvRegistry
	ob       *obs.Observer
	tc       obs.TraceContext
	workload string
	comp     fault.Component
	perComp  int

	look int
	cut  int          // strike count at the cut; -1 until the rule fires
	snap *chainResult // chain state at the cut (shadow mode only)
}

// newChainStop builds the monitor for one chain, or nil when neither
// early stopping nor convergence observability is wanted.
func newChainStop(cfg Config, workload string, comp fault.Component, perComp int, conv *obs.ConvRegistry, tc obs.TraceContext) *chainStop {
	rule := stats.SeqRule{TargetMargin: cfg.TargetMargin, Confidence: cfg.Confidence}
	if !rule.Enabled() && !cfg.Obs.On() {
		return nil
	}
	every := cfg.StopCheckEvery
	if every <= 0 {
		every = DefaultStopCheckEvery
	}
	return &chainStop{
		rule:     rule,
		every:    every,
		shadow:   cfg.StopShadow,
		conv:     conv,
		ob:       cfg.Obs,
		tc:       tc,
		workload: workload,
		comp:     comp,
		perComp:  perComp,
		cut:      -1,
	}
}

// record watches the chain after each strike (out already holds the
// strike's class tally in counts/sims) and, at check boundaries, takes a
// sequential look: evaluates the stopping rule, refreshes the
// convergence estimators, and emits their snapshots. It returns true
// when the chain should stop executing — the rule fired and the run is
// not a shadow. Once the cut is set the estimators freeze, so a shadow
// run reports exactly what a genuinely stopped run would.
func (cs *chainStop) record(out *chainResult) bool {
	if cs == nil || cs.cut >= 0 {
		return false
	}
	n := out.sims
	if n%cs.every != 0 && n != cs.perComp {
		return false
	}
	cs.look++
	if cs.rule.Enabled() {
		all := true
		for _, k := range out.counts {
			if !cs.rule.Met(k, n, cs.look) {
				all = false
				break
			}
		}
		if all {
			cs.cut = n
			if cs.shadow {
				cs.snap = snapshotChain(out)
			}
		}
	}
	snaps := make([]obs.ConvSnapshot, 0, fault.NumClasses)
	for _, cls := range fault.Classes() {
		key := obs.ConvKey{Workload: cs.workload, Comp: cs.comp, Class: cls}
		snaps = append(snaps, cs.conv.Update(key, out.counts[int(cls)-1], n, cs.perComp, cs.look, cs.cut >= 0))
	}
	cs.ob.Convergence(snaps, cs.tc)
	return cs.cut >= 0 && !cs.shadow
}

// finishChain folds the monitor's verdict into the chain result: in
// shadow mode it restores the chain state captured at the cut, and for a
// truncated chain it re-weights the surviving strikes so each carries
// expected_strikes/executed — the stratified estimator stays unbiased at
// the reduced sample size.
func (cs *chainStop) finishChain(out *chainResult) {
	if cs == nil {
		return
	}
	if cs.cut >= 0 && cs.shadow {
		*out = *cs.snap
	}
	out.looks = cs.look
	out.stopped = cs.cut >= 0 && cs.cut < cs.perComp
	for _, k := range out.counts {
		if m := cs.rule.Margin(k, out.sims); m > out.margin {
			out.margin = m
		}
	}
	if out.stopped {
		scale := float64(cs.perComp) / float64(out.sims)
		for cls, v := range out.events {
			out.events[cls] = v * scale
		}
		out.weightedMismatches *= scale
	}
}

// snapshotChain deep-copies a chain result (shadow mode captures the
// state at the cut while the chain keeps executing).
func snapshotChain(out *chainResult) *chainResult {
	c := *out
	c.events = make(map[fault.Class]float64, len(out.events))
	for cls, v := range out.events {
		c.events[cls] = v
	}
	return &c
}
