package beam

import (
	"bytes"
	"fmt"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/obs"
)

// TestBeamTraceMatchesResult is the strike-trace consistency contract: the
// per-strike JSONL records recompute to exactly the engine's own strike
// accounting and modeled event sums — including bit-identical
// floating-point weights — at any worker count.
func TestBeamTraceMatchesResult(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var buf bytes.Buffer
			cfg := Config{Seed: 9, BeamHours: 1, StrikesPerComponent: 3, Workers: workers,
				Obs: obs.New(obs.Options{TraceWriter: &buf})}
			w, err := RunWorkload(cfg, spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := cfg.Obs.Close(); err != nil {
				t.Fatal(err)
			}
			sum, err := obs.ReadSummary(&buf)
			if err != nil {
				t.Fatal(err)
			}

			strikes, masked := 0, 0
			for _, comp := range fault.Components() {
				c := sum.Component(obs.KindStrike, "crc32", comp)
				strikes += c.Records
				masked += c.Counts[fault.ClassMasked]
			}
			if strikes != w.SimulatedStrikes {
				t.Errorf("trace has %d strikes, result simulated %d", strikes, w.SimulatedStrikes)
			}
			if masked != w.MaskedStrikes {
				t.Errorf("trace has %d masked strikes, result counted %d", masked, w.MaskedStrikes)
			}
			modeled := sum.ModeledEvents("crc32")
			for _, cls := range fault.Classes() {
				if modeled[cls] != w.ModeledEvents[cls] {
					t.Errorf("%v: trace models %.17g events, result %.17g",
						cls, modeled[cls], w.ModeledEvents[cls])
				}
			}
		})
	}
}

// TestBeamTracingPreservesResults asserts instrumentation is purely
// additive for the beam engine too: the traced campaign's Result is
// bit-identical to the untraced one.
func TestBeamTracingPreservesResults(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	cfg := Config{Seed: 9, BeamHours: 1, StrikesPerComponent: 3}
	plain, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg.Obs = obs.New(obs.Options{TraceWriter: &buf})
	traced, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Obs.Close(); err != nil {
		t.Fatal(err)
	}
	for _, cls := range fault.Classes() {
		if plain.Events[cls] != traced.Events[cls] {
			t.Errorf("%v: events %v vs %v", cls, plain.Events[cls], traced.Events[cls])
		}
		if plain.ModeledEvents[cls] != traced.ModeledEvents[cls] {
			t.Errorf("%v: modeled %v vs %v", cls, plain.ModeledEvents[cls], traced.ModeledEvents[cls])
		}
	}
	if plain.MaskedStrikes != traced.MaskedStrikes || plain.SimulatedStrikes != traced.SimulatedStrikes {
		t.Error("strike accounting changed under tracing")
	}
}
